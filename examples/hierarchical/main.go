// Hierarchical: the §5 "increasing specification expressivity" direction —
// a tenant whose internal policy is itself hierarchical, expressed as a
// PIFO tree (HPFQ: fair queuing between traffic classes, fair queuing
// among flows within each class), running inside the band QVISOR assigned
// to the tenant.
//
// Run with: go run ./examples/hierarchical
package main

import (
	"fmt"
	"log"

	"qvisor/internal/pifotree"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

func main() {
	// An HPFQ tree with two classes: "web" and "analytics". The root
	// shares fairly between the classes; each class shares fairly among
	// its flows.
	classOf := func(p *pkt.Packet) string {
		if p.Tenant == 1 {
			return "web"
		}
		return "analytics"
	}
	tree, err := pifotree.NewHPFQ(sched.Config{}, []string{"web", "analytics"}, classOf)
	if err != nil {
		log.Fatal(err)
	}

	// Backlog: web has four active flows, analytics a single bulk flow.
	for i := 0; i < 12; i++ {
		tree.Enqueue(&pkt.Packet{ID: uint64(100 + i), Tenant: 1, Flow: uint64(1 + i%4), Size: 100})
	}
	for i := 0; i < 12; i++ {
		tree.Enqueue(&pkt.Packet{ID: uint64(200 + i), Tenant: 2, Flow: 9, Size: 100})
	}

	fmt.Println("HPFQ dequeue order (class:flow) — classes alternate, web's flows round-robin:")
	for i := 0; i < 16; i++ {
		p := tree.Dequeue()
		fmt.Printf("  %2d: %s:%d\n", i+1, classOf(p), p.Flow)
	}

	// A three-level hierarchy: production strictly above development,
	// fair sharing inside production.
	fmt.Println("\nthree-level tree: prod (web+db, fair) >> dev (ci):")
	classify := func(p *pkt.Packet) string {
		switch p.Tenant {
		case 1:
			return "prodweb"
		case 2:
			return "proddb"
		default:
			return "ci"
		}
	}
	prodFirst := func(p *pkt.Packet) int64 {
		if p.Tenant <= 2 {
			return 0
		}
		return 1
	}
	t2 := pifotree.NewTree(sched.Config{}, prodFirst, classify)
	fairTx, fairHook := pifotree.FairTx(func(p *pkt.Packet) uint64 { return uint64(p.Tenant) }, nil)
	must(t2.AddInterior("root", "prod", fairTx))
	must(t2.SetPopHook("prod", fairHook))
	must(t2.AddInterior("root", "dev", pifotree.FIFOTransaction))
	must(t2.AddLeaf("prod", "prodweb", pifotree.FIFOTransaction))
	must(t2.AddLeaf("prod", "proddb", pifotree.FIFOTransaction))
	must(t2.AddLeaf("dev", "ci", pifotree.FIFOTransaction))

	for i := 0; i < 4; i++ {
		t2.Enqueue(&pkt.Packet{Tenant: 3, Flow: 30, Size: 100}) // ci first into the queue
	}
	for i := 0; i < 4; i++ {
		t2.Enqueue(&pkt.Packet{Tenant: 1, Flow: 10, Size: 100})
		t2.Enqueue(&pkt.Packet{Tenant: 2, Flow: 20, Size: 100})
	}
	for i := 0; t2.Len() > 0; i++ {
		p := t2.Dequeue()
		fmt.Printf("  %2d: %s\n", i+1, classify(p))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
