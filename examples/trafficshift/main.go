// Trafficshift: the paper's Figure-2 scenario and §2's "Idea 2" — tenant
// activity shifts over time, and the event-driven controller re-synthesizes
// the joint scheduling policy at runtime.
//
// Phase 1: an interactive (pFabric) tenant and a deadline (EDF) tenant
// share the scheduling resources. Phase 2: a background fair-queuing
// tenant joins at strictly lower priority; QVISOR recompiles the joint
// policy without disturbing the top tier. Phase 3: the background tenant
// starts emitting ranks far outside its declared bounds and is flagged as
// adversarial.
//
// Run with: go run ./examples/trafficshift
package main

import (
	"fmt"
	"log"

	"qvisor"
)

func main() {
	pf, _ := qvisor.RankerByName("pfabric")
	edf, _ := qvisor.RankerByName("edf")

	interactive := &qvisor.Tenant{ID: 1, Name: "interactive", Algorithm: pf}
	deadline := &qvisor.Tenant{ID: 2, Name: "deadline", Algorithm: edf}

	spec1, err := qvisor.ParsePolicy("interactive + deadline")
	if err != nil {
		log.Fatal(err)
	}
	ctl, pre, err := qvisor.NewController(
		[]*qvisor.Tenant{interactive, deadline}, spec1,
		qvisor.ControllerOptions{
			MinObservations: 64,
			OnEvent: func(e qvisor.Event) {
				fmt.Printf("  [controller] %v tenant=%q %s\n", e.Kind, e.Tenant, e.Detail)
			},
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase 1: interactive + deadline share the resources")
	fmt.Print(indent(pre.Policy().Describe()))

	// A new background tenant (bulk transfers under fair queuing, as in
	// Figure 2 after t1) joins at strictly lower priority. Declared
	// bounds are deliberately narrow — phase 3 will expose that.
	fmt.Println("\nphase 2: background tenant joins at lower priority")
	background := &qvisor.Tenant{
		ID: 3, Name: "background",
		Bounds: qvisor.Bounds{Lo: 0, Hi: 1000},
	}
	spec2, err := qvisor.ParsePolicy("interactive + deadline >> background")
	if err != nil {
		log.Fatal(err)
	}
	if err := ctl.Join(0, background, spec2); err != nil {
		log.Fatal(err)
	}
	fmt.Print(indent(pre.Policy().Describe()))
	fmt.Printf("  policy version: %d\n", ctl.Version())

	// The top tier's bands are unchanged by the join: the background
	// tenant landed strictly below.
	ti, _ := pre.Policy().TransformOf("interactive")
	tb, _ := pre.Policy().TransformOf("background")
	fmt.Printf("  isolation: interactive band %v ends before background band %v begins\n",
		ti.OutputBounds(), tb.OutputBounds())

	// Phase 3: the background tenant misbehaves, emitting ranks far
	// outside its declared bounds (an adversarial workload, §2). The
	// monitors notice; the controller flags it and re-synthesizes with
	// learned bounds.
	fmt.Println("\nphase 3: background tenant emits out-of-contract ranks")
	for i := int64(0); i < 512; i++ {
		ctl.Observe(3, 50_000+i*100)
	}
	if _, err := ctl.Check(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  flagged adversarial: %v\n", ctl.Flagged("background"))
	fmt.Printf("  policy version after adaptation: %d\n", ctl.Version())
	tb2, _ := pre.Policy().TransformOf("background")
	fmt.Printf("  background transform now covers the observed ranks: %v\n", tb2)

	// Even after adaptation, the strict tier still isolates: verify by
	// pushing one packet per tenant through the pre-processor.
	pi := &qvisor.Packet{Tenant: 1, Rank: 1 << 29} // interactive worst case
	pb := &qvisor.Packet{Tenant: 3, Rank: 0}       // background best case
	pre.Process(pi)
	pre.Process(pb)
	fmt.Printf("\n  worst interactive rank %d < best background rank %d: %v\n",
		pi.Rank, pb.Rank, pi.Rank < pb.Rank)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
