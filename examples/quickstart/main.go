// Quickstart: build a two-tenant scheduling hypervisor, push packets
// through the pre-processor and the deployed PIFO, and watch the operator
// policy take effect.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qvisor"
)

func main() {
	// Tenant algorithms: an interactive tenant minimizing FCTs with
	// pFabric, and a deadline tenant using earliest-deadline-first.
	pfabric, err := qvisor.RankerByName("pfabric")
	if err != nil {
		log.Fatal(err)
	}
	edf, err := qvisor.RankerByName("edf")
	if err != nil {
		log.Fatal(err)
	}

	// The operator gives the interactive tenant strict priority.
	hv, err := qvisor.New([]*qvisor.Tenant{
		{ID: 1, Name: "interactive", Algorithm: pfabric},
		{ID: 2, Name: "deadline", Algorithm: edf},
	}, "interactive >> deadline", qvisor.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthesized joint policy:")
	fmt.Print(hv.Policy.Describe())

	// Packets arrive with tenant labels and tenant-native ranks: the
	// deadline packets carry small microsecond ranks, the interactive
	// packets carry remaining-bytes ranks. Without QVISOR these scales
	// clash (§2 of the paper); with it, each tenant's band is disjoint.
	packets := []*qvisor.Packet{
		{ID: 1, Tenant: 2, Rank: 2_000, Size: 1500},      // deadline, 2 ms slack
		{ID: 2, Tenant: 1, Rank: 1_000_000, Size: 1500},  // interactive, 1 MB left
		{ID: 3, Tenant: 2, Rank: 500, Size: 1500},        // deadline, urgent
		{ID: 4, Tenant: 1, Rank: 20_000, Size: 1500},     // interactive, short flow
		{ID: 5, Tenant: 1, Rank: 80_000_000, Size: 1500}, // interactive, elephant
	}
	for _, p := range packets {
		if !hv.Enqueue(p) {
			log.Fatalf("packet %d dropped", p.ID)
		}
	}

	fmt.Println("\ndequeue order (interactive first, by remaining size; then deadline, by slack):")
	for p := hv.Dequeue(); p != nil; p = hv.Dequeue() {
		tenant := "interactive"
		if p.Tenant == 2 {
			tenant = "deadline"
		}
		fmt.Printf("  packet %d  tenant=%-11s joint-rank=%d\n", p.ID, tenant, p.Rank)
	}
}
