// Compile: the §3.4/§5 compilation story — ask QVISOR what guarantees a
// policy gets on different hardware targets, see it propose a partial
// specification when a device is too small, and plan a whole heterogeneous
// fabric with weakest-link guarantee reporting.
//
// Run with: go run ./examples/compile
package main

import (
	"fmt"
	"log"

	"qvisor"
)

func main() {
	pf, _ := qvisor.RankerByName("pfabric")
	edf, _ := qvisor.RankerByName("edf")
	fq, _ := qvisor.RankerByName("fq")

	hv, err := qvisor.New([]*qvisor.Tenant{
		{ID: 1, Name: "web", Algorithm: pf},
		{ID: 2, Name: "deadline", Algorithm: edf},
		{ID: 3, Name: "backup", Algorithm: fq},
	}, "web >> deadline >> backup", qvisor.Options{})
	if err != nil {
		log.Fatal(err)
	}

	targets := []qvisor.Target{
		{Name: "ideal-pifo", Sorted: true, RankRewrite: true},
		{Name: "commodity-8q", Queues: 8, RankRewrite: true},
		{Name: "legacy-2q", Queues: 2, RankRewrite: true},
		{Name: "fixed-function-4q", Queues: 4},
	}
	for _, target := range targets {
		plan, err := hv.Policy.CompileTo(target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan.Describe())
		fmt.Println()
	}

	// Network-wide: leaves are commodity devices, spines legacy.
	fmt.Println("=== fabric plan (heterogeneous) ===")
	fabric, err := qvisor.PlanFabric(hv.Policy, []qvisor.Device{
		{Name: "leaf0", Role: "leaf", Target: targets[1]},
		{Name: "leaf1", Role: "leaf", Target: targets[1]},
		{Name: "spine0", Role: "spine", Target: targets[2]},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fabric.Describe())
}
