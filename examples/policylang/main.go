// Policylang: explore the operator composition language — parse the
// paper's §3.1 example, inspect tenant relations, and compare how the
// three operators (>> strict, > best-effort, + share) place tenant rank
// bands.
//
// Run with: go run ./examples/policylang
package main

import (
	"fmt"
	"log"

	"qvisor"
)

func main() {
	// The paper's §3.1 example specification.
	const specText = "T1 >> T2 > T3 + T4 >> T5"
	spec, err := qvisor.ParsePolicy(specText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec: %s\n", spec)
	fmt.Printf("tenants (priority order): %v\n\n", spec.Tenants())

	// Pairwise relations encoded by the policy.
	pairs := [][2]string{
		{"T1", "T2"}, {"T2", "T3"}, {"T3", "T4"}, {"T4", "T5"}, {"T1", "T5"},
	}
	for _, pr := range pairs {
		rel, err := spec.Relate(pr[0], pr[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s vs %s: %v\n", pr[0], pr[1], rel)
	}

	// Synthesize with five identical tenants to see how the operators
	// alone shape the joint rank space.
	var tenants []*qvisor.Tenant
	for i, name := range spec.Tenants() {
		tenants = append(tenants, &qvisor.Tenant{
			ID:     qvisor.TenantID(i + 1),
			Name:   name,
			Bounds: qvisor.Bounds{Lo: 0, Hi: 1000},
			Levels: 8,
		})
	}
	jp, err := qvisor.Synthesize(tenants, spec, qvisor.SynthOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\njoint policy (identical tenants, operators only):")
	fmt.Print(jp.Describe())

	fmt.Println("\nobservations:")
	fmt.Println("  - T1's band ends before every other band starts (>> isolates)")
	fmt.Println("  - T2's band starts below T3/T4 but overlaps them (> prefers, best effort)")
	fmt.Println("  - T3 and T4 interleave the same band (+ shares)")
	fmt.Println("  - T5's band starts after all of tier 1 ends (>> isolates)")
}
