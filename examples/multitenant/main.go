// Multitenant: run the paper's §4 evaluation scenario in miniature — a
// leaf-spine data center where a pFabric tenant and an EDF deadline tenant
// share the fabric — and compare the six Figure-4 schemes at one load.
//
// Run with: go run ./examples/multitenant [-load 0.6]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"qvisor/internal/experiments"
	"qvisor/internal/sim"
)

func main() {
	load := flag.Float64("load", 0.6, "pFabric tenant load (0,1]")
	horizon := flag.Duration("horizon", 50*time.Millisecond, "traffic window")
	flag.Parse()

	cfg := experiments.ScaledConfig()
	cfg.Horizon = sim.Time(*horizon)

	fmt.Printf("topology: %d hosts (%d leaves × %d, %d spines), access %.0fG fabric %.0fG\n",
		cfg.Leaves*cfg.HostsPerLeaf, cfg.Leaves, cfg.HostsPerLeaf, cfg.Spines,
		cfg.AccessBps/1e9, cfg.FabricBps/1e9)
	fmt.Printf("tenant 1: data-mining workload (×%g sizes) under pFabric, load %.1f\n",
		cfg.SizeScale, *load)
	fmt.Printf("tenant 2: %d CBR flows × %.1f Gbps under EDF (deadline %v)\n\n",
		cfg.CBRFlows, cfg.CBRBps/1e9, cfg.DeadlineBudget)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tsmall-flow FCT\tlarge-flow FCT\tdeadline met\tdrops")
	for _, s := range experiments.Schemes {
		r, err := experiments.Run(cfg, s, *load)
		if err != nil {
			log.Fatalf("%v: %v", s, err)
		}
		deadline := "-"
		if r.Counters.CBRSent > 0 {
			deadline = fmt.Sprintf("%.1f%%", 100*r.DeadlineMet)
		}
		fmt.Fprintf(tw, "%v\t%v\t%v\t%s\t%d\n",
			s, r.Small.Mean, r.Large.Mean, deadline, r.Counters.Dropped)
	}
	tw.Flush()

	fmt.Println("\nexpected shape (paper Fig. 4): FIFO and QVISOR EDF>>pFabric are the")
	fmt.Println("worst for pFabric; the naive PIFO clash sits in between; QVISOR with")
	fmt.Println("pFabric>>EDF or pFabric+EDF tracks the pFabric-only ideal.")
}
