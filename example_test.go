package qvisor_test

import (
	"fmt"

	"qvisor"
)

// ExampleNew reproduces the paper's Figure 3: three tenants, the operator
// policy "T1 >> T2 + T3", and the synthesized rank transformations.
func ExampleNew() {
	hv, err := qvisor.New([]*qvisor.Tenant{
		{ID: 1, Name: "T1", Bounds: qvisor.Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: qvisor.Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: qvisor.Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}, "T1 >> T2 + T3", qvisor.Options{Synth: qvisor.SynthOptions{Base: 1}})
	if err != nil {
		panic(err)
	}
	for _, tc := range []struct {
		name  string
		ranks []int64
	}{
		{"T1", []int64{7, 8, 9}},
		{"T2", []int64{1, 3}},
		{"T3", []int64{3, 5}},
	} {
		tr, _ := hv.Policy.TransformOf(tc.name)
		fmt.Printf("%s:", tc.name)
		for _, r := range tc.ranks {
			fmt.Printf(" %d→%d", r, tr.Apply(r))
		}
		fmt.Println()
	}
	// Output:
	// T1: 7→1 8→2 9→3
	// T2: 1→4 3→6
	// T3: 3→5 5→7
}

// ExampleParsePolicy shows the composition language: strict priority,
// best-effort preference, and (weighted) sharing.
func ExampleParsePolicy() {
	spec, err := qvisor.ParsePolicy("gold >> silver > bronze*2 + iron")
	if err != nil {
		panic(err)
	}
	fmt.Println(spec)
	rel, _ := spec.Relate("gold", "iron")
	fmt.Println("gold vs iron:", rel)
	rel, _ = spec.Relate("bronze", "iron")
	fmt.Println("bronze vs iron:", rel)
	// Output:
	// gold >> silver > bronze*2 + iron
	// gold vs iron: strictly-above
	// bronze vs iron: shares
}

// ExampleHypervisor_Enqueue pushes packets from two tenants through the
// pre-processor and the deployed PIFO: the strict tier drains first.
func ExampleHypervisor_Enqueue() {
	pfabric, _ := qvisor.RankerByName("pfabric")
	edf, _ := qvisor.RankerByName("edf")
	hv, err := qvisor.New([]*qvisor.Tenant{
		{ID: 1, Name: "web", Algorithm: pfabric},
		{ID: 2, Name: "deadline", Algorithm: edf},
	}, "web >> deadline", qvisor.Options{})
	if err != nil {
		panic(err)
	}
	hv.Enqueue(&qvisor.Packet{ID: 1, Tenant: 2, Rank: 100, Size: 1500})
	hv.Enqueue(&qvisor.Packet{ID: 2, Tenant: 1, Rank: 1 << 20, Size: 1500})
	for p := hv.Dequeue(); p != nil; p = hv.Dequeue() {
		fmt.Println("packet", p.ID)
	}
	// Output:
	// packet 2
	// packet 1
}

// ExampleJointPolicy_CompileTo asks what guarantees a two-tier policy gets
// on a two-queue legacy switch: the isolation survives, the intra-tenant
// order degrades.
func ExampleJointPolicy_CompileTo() {
	pf, _ := qvisor.RankerByName("pfabric")
	fq, _ := qvisor.RankerByName("fq")
	hv, err := qvisor.New([]*qvisor.Tenant{
		{ID: 1, Name: "prod", Algorithm: pf},
		{ID: 2, Name: "bulk", Algorithm: fq},
	}, "prod >> bulk", qvisor.Options{})
	if err != nil {
		panic(err)
	}
	plan, err := hv.Policy.CompileTo(qvisor.Target{Name: "legacy", Queues: 2, RankRewrite: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", plan.Feasible)
	for _, r := range plan.Requirements {
		fmt.Printf("%v %v: %v\n", r.Kind, r.Tenants, r.Level)
	}
	// Output:
	// feasible: true
	// isolation [prod bulk]: exact
	// intra-tenant order [prod]: approximate
	// intra-tenant order [bulk]: approximate
}
