package qvisor

import (
	"testing"
)

func TestHypervisorEndToEnd(t *testing.T) {
	pf, err := RankerByName("pfabric")
	if err != nil {
		t.Fatal(err)
	}
	edf, err := RankerByName("edf")
	if err != nil {
		t.Fatal(err)
	}
	hv, err := New([]*Tenant{
		{ID: 1, Name: "web", Algorithm: pf},
		{ID: 2, Name: "deadline", Algorithm: edf},
	}, "web >> deadline", Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A deadline packet enqueued before a web packet must dequeue after
	// it: the operator gave web strict priority.
	d := &Packet{ID: 1, Tenant: 2, Rank: 100, Size: 100}
	w := &Packet{ID: 2, Tenant: 1, Rank: 500000, Size: 100}
	if !hv.Enqueue(d) || !hv.Enqueue(w) {
		t.Fatal("enqueue failed")
	}
	if got := hv.Dequeue(); got.ID != 2 {
		t.Fatalf("first dequeue = packet %d, want web packet 2", got.ID)
	}
	if got := hv.Dequeue(); got.ID != 1 {
		t.Fatalf("second dequeue = packet %d, want deadline packet 1", got.ID)
	}
	if hv.Dequeue() != nil {
		t.Fatal("empty scheduler should return nil")
	}
}

func TestHypervisorBackends(t *testing.T) {
	pf, _ := RankerByName("pfabric")
	edf, _ := RankerByName("edf")
	tenants := func() []*Tenant {
		return []*Tenant{
			{ID: 1, Name: "a", Algorithm: pf},
			{ID: 2, Name: "b", Algorithm: edf},
		}
	}
	for _, b := range []Backend{BackendPIFO, BackendSPQueues, BackendSPPIFO, BackendAIFO, BackendCalendar, BackendFIFO} {
		hv, err := New(tenants(), "a >> b", Options{Backend: b})
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		p := &Packet{Tenant: 1, Rank: 10, Size: 100}
		if !hv.Enqueue(p) {
			t.Fatalf("backend %v: enqueue failed", b)
		}
		if hv.Dequeue() == nil {
			t.Fatalf("backend %v: packet lost", b)
		}
	}
}

func TestHypervisorErrors(t *testing.T) {
	pf, _ := RankerByName("pfabric")
	if _, err := New(nil, ">>", Options{}); err == nil {
		t.Fatal("bad policy should fail")
	}
	if _, err := New([]*Tenant{{ID: 1, Name: "a", Algorithm: pf}}, "a >> ghost", Options{}); err == nil {
		t.Fatal("undefined tenant should fail")
	}
	if _, err := New([]*Tenant{{ID: 1, Name: "a", Algorithm: pf}}, "a", Options{
		Backend: Backend(99),
	}); err == nil {
		t.Fatal("unknown backend should fail")
	}
}

func TestProcessRewritesRank(t *testing.T) {
	pf, _ := RankerByName("pfabric")
	edf, _ := RankerByName("edf")
	hv, err := New([]*Tenant{
		{ID: 1, Name: "a", Algorithm: pf},
		{ID: 2, Name: "b", Algorithm: edf},
	}, "a >> b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := hv.Policy.TransformOf("a")
	tb, _ := hv.Policy.TransformOf("b")
	// All of a's outputs precede all of b's: strict isolation.
	if ta.OutputBounds().Hi >= tb.OutputBounds().Lo {
		t.Fatalf("bands overlap: %v vs %v", ta.OutputBounds(), tb.OutputBounds())
	}
	p := &Packet{Tenant: 2, Rank: 0}
	if !hv.Process(p) {
		t.Fatal("process failed")
	}
	if !tb.OutputBounds().Contains(p.Rank) {
		t.Fatalf("rank %d outside tenant band %v", p.Rank, tb.OutputBounds())
	}
}

func TestParsePolicyFacade(t *testing.T) {
	spec, err := ParsePolicy("T1 >> T2 + T3")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Tiers) != 2 {
		t.Fatalf("tiers = %d", len(spec.Tiers))
	}
	if _, err := ParsePolicy("++"); err == nil {
		t.Fatal("bad policy should fail")
	}
}

func TestNewSchedulerFacade(t *testing.T) {
	s, err := NewScheduler("sppifo:4", SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sppifo4" {
		t.Fatalf("name = %q", s.Name())
	}
	if _, err := NewScheduler("nope", SchedConfig{}); err == nil {
		t.Fatal("unknown scheduler should fail")
	}
}

func TestControllerFacade(t *testing.T) {
	pf, _ := RankerByName("pfabric")
	spec, _ := ParsePolicy("a")
	ctl, pp, err := NewController([]*Tenant{{ID: 1, Name: "a", Algorithm: pf}}, spec, ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Version() != 1 || pp.Policy() == nil {
		t.Fatal("controller not initialized")
	}
}

func TestFacadeComposite(t *testing.T) {
	fq, _ := RankerByName("fq")
	pf, _ := RankerByName("pfabric")
	c, err := NewComposite(1024, []Ranker{fq, pf}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := &Flow{ID: 1, Size: 1000}
	if r := c.Rank(0, f, 100); !c.Bounds().Contains(r) {
		t.Fatalf("composite rank %d outside bounds", r)
	}
}

func TestFacadePIFOTree(t *testing.T) {
	tree, err := NewHPFQ(SchedConfig{}, []string{"a", "b"}, func(p *Packet) string {
		if p.Tenant == 1 {
			return "a"
		}
		return "b"
	})
	if err != nil {
		t.Fatal(err)
	}
	tree.Enqueue(&Packet{Tenant: 1, Flow: 1, Size: 10})
	tree.Enqueue(&Packet{Tenant: 2, Flow: 2, Size: 10})
	if tree.Dequeue() == nil || tree.Dequeue() == nil {
		t.Fatal("tree lost packets")
	}
	t2 := NewPIFOTree(SchedConfig{}, nil, func(*Packet) string { return "x" })
	if err := t2.AddLeaf("root", "x", nil); err != nil {
		t.Fatal(err)
	}
	if !t2.Enqueue(&Packet{Size: 1}) {
		t.Fatal("plain tree rejected packet")
	}
}

func TestFacadeFabricPlan(t *testing.T) {
	pf, _ := RankerByName("pfabric")
	edf, _ := RankerByName("edf")
	hv, err := New([]*Tenant{
		{ID: 1, Name: "a", Algorithm: pf},
		{ID: 2, Name: "b", Algorithm: edf},
	}, "a >> b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := PlanFabric(hv.Policy, []Device{
		{Name: "leaf0", Role: "leaf", Target: Target{Name: "pifo", Sorted: true, RankRewrite: true}},
		{Name: "spine0", Role: "spine", Target: Target{Name: "8q", Queues: 8, RankRewrite: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Feasible {
		t.Fatal("fabric should be feasible")
	}
}

func TestFacadeCompileTo(t *testing.T) {
	pf, _ := RankerByName("pfabric")
	hv, err := New([]*Tenant{{ID: 1, Name: "a", Algorithm: pf}}, "a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := hv.Policy.CompileTo(Target{Name: "t", Queues: 4, RankRewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("single tenant on 4 queues should be feasible")
	}
}
