// Package qvisor is a scheduling hypervisor for multi-tenant programmable
// packet scheduling, reproducing "QVISOR: Virtualizing Packet Scheduling
// Policies" (Alcoz and Vanbever, HotNets 2023).
//
// Tenants program the scheduling policies for their traffic as rank
// functions (pFabric, EDF, fair queuing, ...); the operator defines how
// tenants share the scheduling resources with a one-line composition policy
// ("T1 >> T2 + T3"); QVISOR synthesizes a joint scheduling function — a set
// of rank-shift and rank-normalization transformations — and deploys it in
// front of a conventional single-tenant scheduler (a PIFO queue or an
// approximation built from strict-priority FIFO queues).
//
// Basic use:
//
//	pf, _ := qvisor.RankerByName("pfabric")
//	edf, _ := qvisor.RankerByName("edf")
//	hv, err := qvisor.New([]*qvisor.Tenant{
//		{ID: 1, Name: "web", Algorithm: pf},
//		{ID: 2, Name: "deadline", Algorithm: edf},
//	}, "web >> deadline", qvisor.Options{})
//	// per packet:
//	hv.Process(p)          // rewrites p.Rank per the joint policy
//	hv.Scheduler.Enqueue(p) // deployed scheduler sorts by joint rank
//
// The subpackages under internal implement the full system: the operator
// policy language, the synthesizer, the pre-processor, the scheduler zoo
// (PIFO, SP-PIFO, AIFO, calendar queues, strict-priority banks), the
// runtime adaptation loop, and the packet-level network simulator used to
// reproduce the paper's evaluation.
package qvisor

import (
	"qvisor/internal/core"
	"qvisor/internal/orchestrator"
	"qvisor/internal/pifotree"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Tenant is one per-tenant scheduling policy: a traffic segment plus
	// its rank function (§3.1 of the paper).
	Tenant = core.Tenant
	// Transform is one rank-transformation function: normalization
	// (bounding + quantization) composed with a shift (§3.2).
	Transform = core.Transform
	// JointPolicy is the synthesized joint scheduling function.
	JointPolicy = core.JointPolicy
	// SynthOptions tune the synthesizer.
	SynthOptions = core.SynthOptions
	// Preprocessor applies the joint policy to packets at line rate
	// (§3.3).
	Preprocessor = core.Preprocessor
	// Controller is the runtime adaptation loop (§2, Idea 2).
	Controller = core.Controller
	// ControllerOptions tune the controller.
	ControllerOptions = core.ControllerOptions
	// Monitor tracks a tenant's observed rank distribution.
	Monitor = core.Monitor
	// Event is a controller notification (re-synthesis, tenant churn,
	// adversarial flag).
	Event = core.Event
	// EventKind classifies controller events.
	EventKind = core.EventKind
	// Backend selects the hardware scheduler model (§3.4).
	Backend = core.Backend
	// DeployOptions tune deployment onto a backend.
	DeployOptions = core.DeployOptions
	// Deployment is a joint policy compiled onto a concrete scheduler.
	Deployment = core.Deployment
	// FidelityProfile is one backend's measured replay fidelity, used by
	// JointPolicy.DeployBest to auto-select the deployment backend.
	FidelityProfile = core.FidelityProfile
	// UnknownTenantAction selects handling of unlabeled traffic.
	UnknownTenantAction = core.UnknownTenantAction

	// TenantID is the packet label identifying a tenant.
	TenantID = pkt.TenantID
	// Packet is the packet model shared with the schedulers.
	Packet = pkt.Packet
	// Label is the 16-byte wire encoding of (tenant, rank).
	Label = pkt.Label
	// PacketPool is a single-threaded packet free list; Get/Put in the
	// data-plane loop instead of allocating per packet. See DESIGN.md
	// ("Memory model & ownership") for the ownership contract.
	PacketPool = pkt.Pool
	// PacketPoolStats is the pool's Get/Put/miss accounting.
	PacketPoolStats = pkt.PoolStats

	// Bounds is a closed rank interval.
	Bounds = rank.Bounds
	// Ranker computes packet ranks (the tenant-side algorithm).
	Ranker = rank.Ranker
	// Flow is the per-flow state rank functions read.
	Flow = rank.Flow

	// Spec is a parsed operator composition policy.
	Spec = policy.Spec

	// Target describes an existing scheduler's capabilities for the
	// compilation analysis (§3.4, §5).
	Target = core.Target
	// Plan is the guarantee report of compiling a policy onto a Target,
	// with a partial-spec proposal when the target is too small.
	Plan = core.Plan
	// Requirement grades one obligation of the operator spec.
	Requirement = core.Requirement
	// GuaranteeLevel grades how faithfully a requirement is realized.
	GuaranteeLevel = core.GuaranteeLevel

	// Scheduler is an egress queueing discipline.
	Scheduler = sched.Scheduler
	// SchedConfig configures scheduler buffers.
	SchedConfig = sched.Config

	// Time is simulated time in nanoseconds (used by rank functions).
	Time = sim.Time
)

// Deployment backends (§3.4).
const (
	// BackendPIFO deploys onto an ideal PIFO queue.
	BackendPIFO = core.BackendPIFO
	// BackendSPQueues deploys onto a bank of strict-priority FIFO queues
	// with synthesized queue allocation.
	BackendSPQueues = core.BackendSPQueues
	// BackendSPPIFO deploys onto an SP-PIFO approximation.
	BackendSPPIFO = core.BackendSPPIFO
	// BackendAIFO deploys onto an admission-controlled FIFO.
	BackendAIFO = core.BackendAIFO
	// BackendCalendar deploys onto a calendar queue.
	BackendCalendar = core.BackendCalendar
	// BackendFIFO deploys onto a plain FIFO (no prioritization).
	BackendFIFO = core.BackendFIFO
	// BackendBucketQ deploys onto the Eiffel-style O(1) FFS bucket queue.
	BackendBucketQ = core.BackendBucketQ
	// BackendAdmission deploys onto the combined admission+scheduling
	// discipline: strict-priority queues with dynamic quantile bounds
	// behind a rank-aware admission gate.
	BackendAdmission = core.BackendAdmission
)

// Unknown-tenant actions for the pre-processor.
const (
	// UnknownWorst re-ranks unlabeled traffic below every tenant.
	UnknownWorst = core.UnknownWorst
	// UnknownPass forwards unlabeled traffic unchanged.
	UnknownPass = core.UnknownPass
	// UnknownDrop rejects unlabeled traffic.
	UnknownDrop = core.UnknownDrop
)

// ParsePolicy parses an operator composition policy such as
// "T1 >> T2 > T3 + T4 >> T5" (§3.1: ">>" strict priority, ">" best-effort
// preference, "+" sharing).
func ParsePolicy(s string) (*Spec, error) { return policy.Parse(s) }

// ParseBackend resolves a backend name ("pifo", "sp-queues", "sp-pifo",
// "aifo", "calendar", "fifo", "bucketq", "admission") to its Backend
// value, accepting the spelling Backend.String prints plus the "sppifo"
// and "spqueues" aliases.
func ParseBackend(name string) (Backend, error) { return core.ParseBackend(name) }

// Synthesize compiles per-tenant policies and an operator spec into the
// joint scheduling function (§3.2).
func Synthesize(tenants []*Tenant, spec *Spec, opts SynthOptions) (*JointPolicy, error) {
	return core.Synthesize(tenants, spec, opts)
}

// NewPreprocessor returns a pre-processor executing a joint policy (§3.3).
func NewPreprocessor(jp *JointPolicy, action UnknownTenantAction) *Preprocessor {
	return core.NewPreprocessor(jp, action)
}

// NewController compiles the initial joint policy and returns the runtime
// controller plus the pre-processor it drives (§2, Idea 2).
func NewController(tenants []*Tenant, spec *Spec, opts ControllerOptions) (*Controller, *Preprocessor, error) {
	return core.NewController(tenants, spec, opts)
}

// RankerByName constructs a tenant rank function: pfabric, srpt, sjf, las,
// edf, lstf, fifo+, fcfs, stfq, or fq.
func RankerByName(name string) (Ranker, error) { return rank.ByName(name) }

// NewPacketPool returns an empty packet free list. Pools are not safe for
// concurrent use; give each worker its own.
func NewPacketPool() *PacketPool { return pkt.NewPool() }

// NewComposite blends several rank functions into one multi-objective
// policy (§5), normalizing each component over its bounds and combining
// them as a weighted sum quantized to levels ranks (0 = default).
func NewComposite(levels int64, components []Ranker, weights []float64) (Ranker, error) {
	return rank.NewComposite(levels, components, weights)
}

// Hierarchical scheduling (§5): PIFO trees.
type (
	// PIFOTree is a tree of PIFOs implementing Scheduler; tenants can
	// run hierarchical policies such as HPFQ inside their band.
	PIFOTree = pifotree.Tree
	// TreeTransaction computes an element's rank within one tree node.
	TreeTransaction = pifotree.Transaction
	// TreeClassifier maps packets to leaf names.
	TreeClassifier = pifotree.Classifier
)

// NewPIFOTree returns a tree whose root orders children with rootTx and
// classifies packets to leaves with classify.
func NewPIFOTree(cfg SchedConfig, rootTx TreeTransaction, classify TreeClassifier) *PIFOTree {
	return pifotree.NewTree(cfg, rootTx, classify)
}

// NewHPFQ builds two-level hierarchical fair queuing over the named groups.
func NewHPFQ(cfg SchedConfig, groups []string, groupOf TreeClassifier) (*PIFOTree, error) {
	return pifotree.NewHPFQ(cfg, groups, groupOf)
}

// Cross-device orchestration (§5).
type (
	// Device is one switch in a heterogeneous fabric.
	Device = orchestrator.Device
	// FabricPlan is the network-wide compilation result with
	// weakest-link guarantees.
	FabricPlan = orchestrator.FabricPlan
)

// PlanFabric compiles the joint policy against every device of a fabric
// and aggregates the network-wide guarantees.
func PlanFabric(jp *JointPolicy, devices []Device) (*FabricPlan, error) {
	return orchestrator.Plan(jp, devices)
}

// NewScheduler constructs a scheduler by name: pifo, fifo, aifo, sppifo:N,
// calendar:N:W, or bucketq:B[,H].
func NewScheduler(name string, cfg SchedConfig) (Scheduler, error) {
	return sched.New(name, cfg)
}

// Options configure the Hypervisor convenience wrapper.
type Options struct {
	// Synth tunes the synthesizer.
	Synth SynthOptions
	// Backend selects the deployed scheduler (default BackendPIFO).
	Backend Backend
	// Deploy tunes the deployment.
	Deploy DeployOptions
	// Unknown selects handling of unlabeled traffic (default
	// UnknownWorst).
	Unknown UnknownTenantAction
}

// Hypervisor bundles the full QVISOR pipeline: synthesizer output,
// pre-processor, and deployed scheduler. It is the one-call entry point;
// use the individual pieces for finer control.
type Hypervisor struct {
	// Policy is the synthesized joint scheduling function.
	Policy *JointPolicy
	// Pre is the data-plane pre-processor.
	Pre *Preprocessor
	// Scheduler is the deployed queueing stage.
	Scheduler Scheduler
	// Deployment describes the queue allocation.
	Deployment *Deployment
}

// New synthesizes the joint policy for the tenants under the operator's
// composition policy and deploys it to the chosen backend.
func New(tenants []*Tenant, operatorPolicy string, opts Options) (*Hypervisor, error) {
	spec, err := ParsePolicy(operatorPolicy)
	if err != nil {
		return nil, err
	}
	if opts.Synth.DefaultLevels == 0 && opts.Backend == BackendPIFO {
		// A PIFO compares arbitrary integers, so rank space costs
		// nothing: default to fine quantization (2^20 levels) and keep
		// coarse defaults only for backends with physical queues.
		opts.Synth.DefaultLevels = 1 << 20
	}
	jp, err := Synthesize(tenants, spec, opts.Synth)
	if err != nil {
		return nil, err
	}
	dep, err := jp.Deploy(opts.Backend, opts.Deploy)
	if err != nil {
		return nil, err
	}
	return &Hypervisor{
		Policy:     jp,
		Pre:        NewPreprocessor(jp, opts.Unknown),
		Scheduler:  dep.Scheduler,
		Deployment: dep,
	}, nil
}

// Process rewrites a packet's rank according to the joint policy and
// returns false if the packet must be dropped.
func (h *Hypervisor) Process(p *Packet) bool { return h.Pre.Process(p) }

// Enqueue pre-processes the packet and offers it to the deployed
// scheduler, returning false if it was dropped at either stage.
func (h *Hypervisor) Enqueue(p *Packet) bool {
	if !h.Pre.Process(p) {
		return false
	}
	return h.Scheduler.Enqueue(p)
}

// Dequeue returns the next packet from the deployed scheduler, or nil.
func (h *Hypervisor) Dequeue() *Packet { return h.Scheduler.Dequeue() }
