module qvisor

go 1.22
