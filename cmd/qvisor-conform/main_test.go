package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenarios", "5", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS: no violations") {
		t.Fatalf("missing PASS line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pifotree") {
		t.Fatalf("missing backend rows:\n%s", out.String())
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-scenarios", "4", "-seed", "11"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenarios", "4", "-seed", "11"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same flags, different output:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestRunBackendFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenarios", "3", "-backend", "fifo,pifo"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "drr") {
		t.Fatalf("unselected backend in output:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-backend", "bogus"}, &out); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"positional"}, &out); err == nil {
		t.Fatal("positional argument accepted")
	}
}
