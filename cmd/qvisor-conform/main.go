// Command qvisor-conform runs the conformance harness: randomized
// differential and metamorphic checks of every scheduler backend and the
// synthesizer against the reference oracles in internal/conform.
//
// The same checks run in `go test ./internal/conform`; this command exists
// for long soaks and CI smokes, where the scenario count and seed are
// chosen at the call site:
//
//	qvisor-conform -scenarios 200 -seed 1
//	qvisor-conform -scenarios 25 -backend pifo,pifotree
//
// The exit status is 1 when any violation is found, so the command can
// gate CI directly. Identical flags reproduce identical reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qvisor/internal/conform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qvisor-conform:", err)
		os.Exit(1)
	}
}

// errViolations signals a completed run that found violations.
type errViolations struct{ n int }

func (e errViolations) Error() string {
	return fmt.Sprintf("%d conformance violations", e.n)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qvisor-conform", flag.ContinueOnError)
	scenarios := fs.Int("scenarios", 50, "number of random scenarios")
	seed := fs.Int64("seed", 1, "base seed (identical seeds reproduce identical reports)")
	backend := fs.String("backend", "all",
		fmt.Sprintf("comma-separated backends to check, or \"all\" (%s)",
			strings.Join(conform.BackendNames(), ", ")))
	maxPackets := fs.Int("max-packets", 0, "per-scenario trace cap (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	opts := conform.Options{
		Scenarios:  *scenarios,
		Seed:       *seed,
		MaxPackets: *maxPackets,
	}
	if *backend != "" && *backend != "all" {
		opts.Backends = strings.Split(*backend, ",")
	}
	r, err := conform.Run(opts)
	if err != nil {
		return err
	}
	fmt.Fprint(out, r.Summary())
	if !r.Passed() {
		return errViolations{r.TotalViolations}
	}
	return nil
}
