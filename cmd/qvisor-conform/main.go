// Command qvisor-conform runs the conformance harness: randomized
// differential and metamorphic checks of every scheduler backend and the
// synthesizer against the reference oracles in internal/conform.
//
// The same checks run in `go test ./internal/conform`; this command exists
// for long soaks and CI smokes, where the scenario count and seed are
// chosen at the call site:
//
//	qvisor-conform -scenarios 200 -seed 1
//	qvisor-conform -scenarios 25 -backend pifo,pifotree
//
// With -replay the command runs the UPS replay oracle instead: each
// scenario's ideal departure schedule is recorded under the exact PIFO
// and the identical arrivals replayed through every scheduling
// discipline, producing the per-backend fidelity scoreboard recorded in
// EXPERIMENTS.md:
//
//	qvisor-conform -replay -scenarios 200 -seed 1
//
// The exit status is 1 when any violation is found, so the command can
// gate CI directly. Identical flags reproduce identical reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qvisor/internal/conform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qvisor-conform:", err)
		os.Exit(1)
	}
}

// errViolations signals a completed run that found violations.
type errViolations struct{ n int }

func (e errViolations) Error() string {
	return fmt.Sprintf("%d conformance violations", e.n)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qvisor-conform", flag.ContinueOnError)
	scenarios := fs.Int("scenarios", 50, "number of random scenarios")
	seed := fs.Int64("seed", 1, "base seed (identical seeds reproduce identical reports)")
	backend := fs.String("backend", "all",
		fmt.Sprintf("comma-separated backends to check, or \"all\" (%s)",
			strings.Join(conform.BackendNames(), ", ")))
	maxPackets := fs.Int("max-packets", 0, "per-scenario trace cap (0 = default)")
	replay := fs.Bool("replay", false,
		fmt.Sprintf("run the UPS replay oracle and print the fidelity scoreboard (backends: %s)",
			strings.Join(conform.ReplayBackendNames(), ", ")))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	var backends []string
	if *backend != "" && *backend != "all" {
		backends = strings.Split(*backend, ",")
	}
	if *replay {
		r, err := conform.RunReplay(conform.ReplayOptions{
			Scenarios:  *scenarios,
			Seed:       *seed,
			MaxPackets: *maxPackets,
			Backends:   backends,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, r.Summary())
		if !r.Passed() {
			return errViolations{r.TotalErrors}
		}
		return nil
	}
	opts := conform.Options{
		Scenarios:  *scenarios,
		Seed:       *seed,
		MaxPackets: *maxPackets,
		Backends:   backends,
	}
	r, err := conform.Run(opts)
	if err != nil {
		return err
	}
	fmt.Fprint(out, r.Summary())
	if !r.Passed() {
		return errViolations{r.TotalViolations}
	}
	return nil
}
