// Command qvisor-trace analyzes a JSON-lines packet trace produced by
// qvisor-sim -trace: per-tenant end-to-end latency, drops, and in-flight
// losses.
//
// Example:
//
//	qvisor-sim -scheme qvisor-share -load 0.6 -trace run.jsonl
//	qvisor-trace run.jsonl
package main

import (
	"fmt"
	"os"

	"qvisor/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qvisor-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	in := os.Stdin
	if len(args) >= 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	an, err := trace.Analyze(in)
	if err != nil {
		return err
	}
	an.WriteReport(os.Stdout)
	return nil
}
