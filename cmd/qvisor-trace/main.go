// Command qvisor-trace analyzes a JSON-lines packet trace produced by
// qvisor-sim -trace: per-tenant end-to-end latency, a drop-cause
// breakdown, and the per-stage latency attribution (queueing vs.
// transform vs. transmission, per hop).
//
// Input may be plain or gzip-compressed (detected by magic bytes, so
// both "run.jsonl" and "run.jsonl.gz" work); "-" or no argument reads
// stdin.
//
// Example:
//
//	qvisor-sim -scheme qvisor-share -load 0.6 -trace run.jsonl
//	qvisor-trace run.jsonl
//	gzip run.jsonl && qvisor-trace -tenant 2 run.jsonl.gz
package main

import (
	"bufio"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"

	"qvisor/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qvisor-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qvisor-trace", flag.ContinueOnError)
	tenant := fs.Int("tenant", -1, "restrict the analysis to this tenant id (-1 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if rest := fs.Args(); len(rest) >= 1 && rest[0] != "-" {
		f, err := os.Open(rest[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rd, err := maybeGunzip(in)
	if err != nil {
		return err
	}
	events, err := trace.ReadEvents(rd)
	if err != nil {
		return err
	}
	if *tenant >= 0 {
		kept := events[:0]
		for _, e := range events {
			if int(e.Tenant) == *tenant {
				kept = append(kept, e)
			}
		}
		events = kept
	}
	trace.AnalyzeEvents(events).WriteReport(os.Stdout)
	fmt.Println()
	trace.Attribute(events).WriteReport(os.Stdout)
	return nil
}

// maybeGunzip sniffs the gzip magic bytes (0x1f 0x8b) and transparently
// decompresses when present, so compressed traces need no flag.
func maybeGunzip(in io.Reader) (io.Reader, error) {
	br := bufio.NewReader(in)
	magic, err := br.Peek(2)
	if err == nil && len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		return gzip.NewReader(br)
	}
	return br, nil
}
