package main

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

const sampleTrace = `{"t":1000,"kind":"emit","where":"host0","id":1,"flow":10,"tenant":1,"rank":7,"size":1500,"src":0,"dst":2,"pkt_kind":"data"}
{"t":1000,"kind":"enqueue","where":"host0→leaf0","id":1,"flow":10,"tenant":1,"rank":7,"size":1500,"src":0,"dst":2,"pkt_kind":"data"}
{"t":3000,"kind":"dequeue","where":"host0→leaf0","id":1,"flow":10,"tenant":1,"rank":7,"size":1500,"src":0,"dst":2,"pkt_kind":"data"}
{"t":4000,"kind":"deliver","where":"host2","id":1,"flow":10,"tenant":1,"rank":7,"size":1500,"src":0,"dst":2,"pkt_kind":"data"}
{"t":2000,"kind":"emit","where":"host1","id":2,"flow":20,"tenant":2,"rank":90,"size":400,"src":1,"dst":3,"pkt_kind":"datagram"}
{"t":2500,"kind":"drop","where":"leaf0","id":2,"flow":20,"tenant":2,"rank":90,"size":400,"src":1,"dst":3,"pkt_kind":"datagram","cause":"admission"}
`

func TestRunPlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "run.jsonl")
	if err := os.WriteFile(plain, []byte(sampleTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "run.jsonl.gz")
	f, err := os.Create(gz)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte(sampleTrace)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Same analysis must come out of the compressed and plain inputs; the
	// gzip path is chosen by magic-byte sniffing, not by file name.
	for _, path := range []string{plain, gz} {
		if err := run([]string{path}); err != nil {
			t.Errorf("run(%s): %v", path, err)
		}
		if err := run([]string{"-tenant", "2", path}); err != nil {
			t.Errorf("run(-tenant 2 %s): %v", path, err)
		}
	}
}

func TestRunRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Fatal("malformed trace accepted")
	}
	if err := run([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Fatal("missing file accepted")
	}
	// A truncated gzip stream must surface as an error, not silence.
	trunc := filepath.Join(dir, "trunc.gz")
	if err := os.WriteFile(trunc, []byte{0x1f, 0x8b}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{trunc}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
}
