// Command qvisor-sim runs a single packet-level simulation of one
// Figure-4 scheme at one load and prints the flow-completion-time
// statistics and packet counters.
//
// Example:
//
//	qvisor-sim -scheme qvisor-share -load 0.6 -horizon 100ms
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"qvisor/internal/core"
	"qvisor/internal/experiments"
	"qvisor/internal/prof"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/trace"
)

var schemeNames = map[string]experiments.Scheme{
	"fifo":           experiments.FIFOBoth,
	"pifo-naive":     experiments.PIFONaive,
	"pifo-ideal":     experiments.PIFOIdeal,
	"qvisor-edf":     experiments.QvisorEDFFirst,
	"qvisor-share":   experiments.QvisorShare,
	"qvisor-pfabric": experiments.QvisorPFabricFirst,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qvisor-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qvisor-sim", flag.ContinueOnError)
	scheme := fs.String("scheme", "qvisor-share",
		"scheme: fifo, pifo-naive, pifo-ideal, qvisor-edf, qvisor-share, qvisor-pfabric")
	load := fs.Float64("load", 0.6, "pFabric tenant load (0,1]")
	horizon := fs.Duration("horizon", 100*time.Millisecond, "traffic generation window")
	paper := fs.Bool("paper", false, "paper-scale topology (144 hosts, unscaled flow sizes; slow)")
	seed := fs.Int64("seed", 1, "workload seed")
	workloadName := fs.String("workload", "datamining", "pFabric tenant workload: datamining or websearch")
	queues := fs.Int("queues", 0, "queues for multi-queue backends")
	shards := fs.Int("shards", 0,
		"partition the fabric into N parallel shards (0 or 1 = single-threaded engine)")
	shardChan := fs.Int("shard-chan", 0, "cross-shard handoff channel capacity (0 = default)")
	backendSP := fs.Bool("sp-queues", false, "deploy QVISOR schemes on strict-priority queues instead of a PIFO")
	ports := fs.Bool("ports", false, "print the busiest ports' telemetry")
	flowsCSV := fs.String("flows", "", "replace the generated pFabric workload with this CSV flow trace")
	tracePath := fs.String("trace", "", "write a JSON-lines packet trace to this file")
	tracePerfetto := fs.String("trace-perfetto", "",
		"write a Chrome trace-event JSON to this file (load in ui.perfetto.dev)")
	traceSample := fs.Uint64("trace-sample", 1, "record only flows with ID %% N == 0")
	sloOn := fs.Bool("slo", false, "run the online fidelity watchdog and print its report")
	sloSample := fs.Uint64("slo-sample", slo.DefaultSampleN,
		"watchdog flow sampling: mirror only flows with ID %% N == 0 (1 = every packet)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "qvisor-sim:", perr)
		}
	}()
	s, ok := schemeNames[*scheme]
	if !ok {
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	cfg := experiments.ScaledConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	cfg.Horizon = sim.Time(*horizon)
	cfg.Seed = *seed
	cfg.Workload = *workloadName
	cfg.FlowsCSV = *flowsCSV
	cfg.Shards = *shards
	cfg.ShardChanCap = *shardChan
	if *backendSP {
		cfg.Backend = core.BackendSPQueues
		cfg.Queues = *queues
	}
	topts := trace.Options{FlowSample: *traceSample}
	if *tracePerfetto != "" {
		// The Perfetto export is rendered from the ring after the run, so
		// size it generously; wrapping loses the oldest events (warned
		// below) — raise -trace-sample to cover longer runs.
		topts.RingSize = 1 << 18
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		cfg.Trace = trace.NewRecorder(w, topts)
		defer func() {
			fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", cfg.Trace.Count(), *tracePath)
		}()
	} else if *tracePerfetto != "" {
		cfg.Trace = trace.NewFlightRecorder(topts)
	}
	if *sloOn {
		cfg.Watch = slo.New(slo.Config{SampleN: *sloSample})
	}

	r, err := experiments.Run(cfg, s, *load)
	if err != nil {
		return err
	}
	if *tracePerfetto != "" {
		events, _ := cfg.Trace.Snapshot(trace.AllEvents)
		if n := cfg.Trace.Count(); n > uint64(len(events)) {
			fmt.Fprintf(os.Stderr,
				"trace: ring wrapped, keeping the most recent %d of %d events; raise -trace-sample\n",
				len(events), n)
		}
		if err := writePerfetto(*tracePerfetto, events); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events rendered to %s\n", len(events), *tracePerfetto)
	}
	fmt.Printf("scheme:   %v\n", r.Scheme)
	fmt.Printf("load:     %.2f\n", r.Load)
	fmt.Printf("flows:    %d completed (pFabric tenant)\n", r.Flows)
	fmt.Printf("small:    %v\n", r.Small)
	fmt.Printf("large:    %v\n", r.Large)
	fmt.Printf("all:      %v\n", r.All)
	if r.Counters.CBRSent > 0 {
		fmt.Printf("deadline: %.1f%% of %d CBR packets on time\n",
			100*r.DeadlineMet, r.Counters.CBRDelivered)
	}
	c := r.Counters
	fmt.Printf("packets:  data=%d retx=%d acks=%d cbr=%d delivered=%d dropped=%d\n",
		c.DataSent, c.Retransmits, c.AcksSent, c.CBRSent, c.Delivered, c.Dropped)
	if *ports {
		fmt.Println("busiest ports:")
		for _, ps := range r.TopPorts {
			fmt.Printf("  %-16s util=%5.1f%%  tx=%d pkts / %d bytes  maxq=%dB\n",
				ps.Name, 100*ps.Utilization, ps.TxPackets, ps.TxBytes, ps.MaxQueuedBytes)
		}
	}
	if cfg.Watch != nil {
		if err := slo.WriteReport(os.Stdout, cfg.Watch.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

// writePerfetto renders events as a Chrome trace-event JSON file.
func writePerfetto(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := trace.WritePerfetto(w, events); err != nil {
		return err
	}
	return w.Flush()
}
