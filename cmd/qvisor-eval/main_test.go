package main

import (
	"testing"
)

func TestParseLoads(t *testing.T) {
	loads, err := parseLoads("0.2, 0.5,0.8")
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 3 || loads[0] != 0.2 || loads[2] != 0.8 {
		t.Fatalf("loads = %v", loads)
	}
	if _, err := parseLoads(""); err == nil {
		t.Fatal("empty loads accepted")
	}
	if _, err := parseLoads("x"); err == nil {
		t.Fatal("bad load accepted")
	}
	// Trailing commas tolerated.
	if loads, err := parseLoads("0.5,"); err != nil || len(loads) != 1 {
		t.Fatalf("trailing comma: %v, %v", loads, err)
	}
}

func TestRunFig3(t *testing.T) {
	// The fig3 experiment is deterministic and fast; exercising it from
	// the CLI entry point covers the wiring.
	if err := run([]string{"-experiment", "fig3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
