package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLoads(t *testing.T) {
	loads, err := parseLoads("0.2, 0.5,0.8")
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 3 || loads[0] != 0.2 || loads[2] != 0.8 {
		t.Fatalf("loads = %v", loads)
	}
	if _, err := parseLoads(""); err == nil {
		t.Fatal("empty loads accepted")
	}
	if _, err := parseLoads("x"); err == nil {
		t.Fatal("bad load accepted")
	}
	// Trailing commas tolerated.
	if loads, err := parseLoads("0.5,"); err != nil || len(loads) != 1 {
		t.Fatalf("trailing comma: %v, %v", loads, err)
	}
}

func TestRunFig3(t *testing.T) {
	// The fig3 experiment is deterministic and fast; exercising it from
	// the CLI entry point covers the wiring.
	if err := run([]string{"-experiment", "fig3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig4Parallel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	csv := filepath.Join(t.TempDir(), "fig4a.csv")
	err := run([]string{
		"-experiment", "fig4a", "-loads", "0.4", "-horizon", "5ms",
		"-workers", "4", "-progress=false", "-csv", csv,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scheme,load,bin") {
		t.Fatalf("csv header missing:\n%s", data)
	}
}

func TestRunFig4Trials(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	csv := filepath.Join(t.TempDir(), "trials.csv")
	err := run([]string{
		"-experiment", "fig4b", "-loads", "0.4", "-horizon", "5ms",
		"-workers", "4", "-seeds", "2", "-progress=false", "-csv", csv,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "stderr_ms") {
		t.Fatalf("trial csv header missing:\n%s", data)
	}
}

func TestRunRejectsBadSeeds(t *testing.T) {
	if err := run([]string{"-experiment", "fig4a", "-seeds", "0"}); err == nil {
		t.Fatal("-seeds 0 accepted")
	}
	if err := run([]string{"-experiment", "fig4a", "-workers", "-3"}); err == nil {
		t.Fatal("negative -workers accepted")
	}
}
