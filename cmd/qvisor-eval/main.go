// Command qvisor-eval regenerates the paper's evaluation artifacts:
//
//	-experiment fig4a     Figure 4a: mean FCT, pFabric flows in (0,100KB)
//	-experiment fig4b     Figure 4b: mean FCT, pFabric flows in [1MB,∞)
//	-experiment fig3      Figure 3: exact rank transformations and PIFO order
//	-experiment quant     Ablation A1: quantization granularity sweep
//	-experiment queues    Ablation A2: strict-priority queue-count sweep
//	-experiment runtime   Ablation A3: static vs runtime-adaptive synthesis
//	-experiment shift     Figure-2 traffic-shift scenario
//	-experiment churn     Control-plane churn vs data-plane disruption (policy epochs)
//	-experiment scaling   Core scaling: sharded engine wall time + fidelity vs shards=1
//
// fig4a/fig4b sweep all six schemes over loads 0.2–0.8 on the scaled
// topology (12 hosts, 1% flow sizes; see DESIGN.md) and print one table row
// per scheme. Pass -paper for the paper-scale topology (slow: hours).
//
// Sweeps fan out over a worker pool (-workers, default GOMAXPROCS); the
// parallel sweep is bit-identical to -workers=1. Pass -seeds N to repeat
// every (scheme, load) cell over N derived workload seeds and report
// mean±stderr instead of a single trial. -progress=false silences the
// per-run progress lines on stderr.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"qvisor"
	"qvisor/internal/experiments"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/prof"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qvisor-eval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qvisor-eval", flag.ContinueOnError)
	exp := fs.String("experiment", "fig4a", "fig4a, fig4b, fig3, quant, queues, backends, runtime, shift, churn, multi, inversions, scaling")
	horizon := fs.Duration("horizon", 100*time.Millisecond, "traffic window per run")
	paper := fs.Bool("paper", false, "paper-scale topology (slow)")
	seed := fs.Int64("seed", 1, "workload seed")
	loadsFlag := fs.String("loads", "0.2,0.3,0.4,0.5,0.6,0.7,0.8", "comma-separated loads")
	csvPath := fs.String("csv", "", "also write the raw series to a CSV file (fig4a/fig4b)")
	workers := fs.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	seeds := fs.Int("seeds", 1, "trials per (scheme, load) cell, over derived seeds (fig4a/fig4b)")
	progress := fs.Bool("progress", true, "report per-run sweep progress on stderr")
	shardsFlag := fs.String("shards", "1,2,4",
		"comma-separated shard counts for -experiment scaling")
	metricsPath := fs.String("metrics", "",
		`write a JSON metrics snapshot after the experiment ("-" = stdout; sweeps aggregate across runs)`)
	tracePerfetto := fs.String("trace-perfetto", "",
		"write a Chrome trace-event JSON of the recorded packet events (load in ui.perfetto.dev)")
	traceSample := fs.Uint64("trace-sample", 64, "record only flows with ID %% N == 0 (with -trace-perfetto)")
	sloOn := fs.Bool("slo", false, "run the online fidelity watchdog and print its report on stderr")
	sloSample := fs.Uint64("slo-sample", slo.DefaultSampleN,
		"watchdog flow sampling: mirror only flows with ID %% N == 0 (1 = every packet)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "qvisor-eval:", perr)
		}
	}()
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, have %d", *seeds)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), have %d", *workers)
	}

	cfg := experiments.ScaledConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	cfg.Horizon = sim.Time(*horizon)
	cfg.Seed = *seed
	if *metricsPath != "" {
		cfg.Registry = obs.NewRegistry()
		defer func() {
			if werr := writeSnapshot(*metricsPath, cfg.Registry); werr != nil {
				fmt.Fprintln(os.Stderr, "qvisor-eval: metrics snapshot:", werr)
			}
		}()
	}

	traced := *tracePerfetto != ""
	if traced {
		cfg.Trace = trace.NewFlightRecorder(trace.Options{FlowSample: *traceSample, RingSize: 1 << 18})
		defer func() {
			events, _ := cfg.Trace.Snapshot(trace.AllEvents)
			if n := cfg.Trace.Count(); n > uint64(len(events)) {
				fmt.Fprintf(os.Stderr,
					"qvisor-eval: trace ring wrapped, keeping the most recent %d of %d events; raise -trace-sample\n",
					len(events), n)
			}
			if werr := writePerfettoFile(*tracePerfetto, events); werr != nil {
				fmt.Fprintln(os.Stderr, "qvisor-eval: perfetto trace:", werr)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", *tracePerfetto, len(events))
		}()
	}

	if *sloOn {
		// One watchdog spans every run of the experiment (sweeps aggregate
		// across cells; the window ring folds restarted clocks into earlier
		// windows), and the report lands on stderr after the tables.
		cfg.Watch = slo.New(slo.Config{SampleN: *sloSample})
		defer func() {
			if werr := slo.WriteReport(os.Stderr, cfg.Watch.Snapshot()); werr != nil {
				fmt.Fprintln(os.Stderr, "qvisor-eval: slo report:", werr)
			}
		}()
	}

	loads, err := parseLoads(*loadsFlag)
	if err != nil {
		return err
	}

	switch *exp {
	case "fig4a", "fig4b":
		bin := experiments.BinSmall
		if *exp == "fig4b" {
			bin = experiments.BinLarge
		}
		rc := experiments.RunnerConfig{Workers: *workers}
		if traced && *workers != 1 {
			// Concurrent runs would interleave nondeterministically in the
			// shared ring; serialize so the trace timeline stays readable.
			rc.Workers = 1
			fmt.Fprintln(os.Stderr, "qvisor-eval: -trace-perfetto forces -workers=1 for a coherent timeline")
		}
		if *sloOn && *workers != 1 {
			// The watchdog is mutex-safe, but concurrent runs interleave
			// their clocks in the shared window ring; serialize so the
			// sweep's SLI report is reproducible.
			rc.Workers = 1
			fmt.Fprintln(os.Stderr, "qvisor-eval: -slo forces -workers=1 for a reproducible report")
		}
		start := time.Now()
		if *progress {
			rc.Progress = func(done, total int, p experiments.Point) {
				fmt.Fprintf(os.Stderr, "[%d/%d] %v (%.1fs)\n",
					done, total, p, time.Since(start).Seconds())
			}
		}
		if *seeds > 1 {
			trialSeeds := experiments.TrialSeeds(cfg.Seed, *seeds)
			trials, err := experiments.RunTrials(cfg, experiments.Schemes, loads, trialSeeds, rc)
			if err != nil {
				return err
			}
			experiments.WriteTrialTable(os.Stdout, trials, bin, loads)
			if *csvPath != "" {
				if err := writeTrialCSV(*csvPath, trials); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
			}
			return nil
		}
		results, err := experiments.SweepParallel(cfg, experiments.Schemes, loads, rc)
		if err != nil {
			return err
		}
		experiments.WriteTable(os.Stdout, results, bin, loads)
		if *csvPath != "" {
			if err := writeCSV(*csvPath, results); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
		return nil
	case "fig3":
		return runFig3()
	case "quant":
		results, err := experiments.AblationQuantization(cfg,
			[]int64{2, 4, 16, 64, 1 << 10, 1 << 20}, 0.6)
		if err != nil {
			return err
		}
		fmt.Println("Ablation A1: quantization levels (QVISOR pfabric + edf, load 0.6)")
		for _, r := range results {
			fmt.Printf("  small-flow mean FCT %v  (n=%d)\n", r.Small.Mean, r.Small.Count)
		}
		return nil
	case "queues":
		queues := []int{2, 4, 8, 16, 32}
		results, err := experiments.AblationQueues(cfg, queues, 0.6)
		if err != nil {
			return err
		}
		fmt.Println("Ablation A2: strict-priority queues (QVISOR pfabric >> edf, load 0.6)")
		for i, r := range results {
			fmt.Printf("  %2d queues: small-flow mean FCT %v  (n=%d)\n",
				queues[i], r.Small.Mean, r.Small.Count)
		}
		return nil
	case "backends":
		results, err := experiments.AblationBackends(cfg, 0.6)
		if err != nil {
			return err
		}
		fmt.Println("Ablation A4: deployment backends (QVISOR pfabric >> edf, load 0.6)")
		for _, br := range results {
			fmt.Printf("  %-10s small-flow mean FCT %v  large %v  drops %d\n",
				br.Backend, br.Result.Small.Mean, br.Result.Large.Mean, br.Result.Counters.Dropped)
		}
		return nil
	case "inversions":
		results, err := experiments.InversionStudy(100_000, *seed)
		if err != nil {
			return err
		}
		fmt.Println("Inversion study: rank-order fidelity per scheduler (QVISOR a + b policy)")
		for _, r := range results {
			fmt.Printf("  %-12s %7d inversions / %7d dequeues (%5.1f%%)  drops %d\n",
				r.Scheduler, r.Inversions, r.Dequeues, 100*r.Rate, r.Drops)
		}
		return nil
	case "multi":
		results, err := experiments.MultiObjective(cfg, 0.85)
		if err != nil {
			return err
		}
		fmt.Println("Ablation A5: multi-objective scheduling (single tenant, load 0.85)")
		for _, r := range results {
			fmt.Printf("  %-10s small-flow mean FCT %v  large-flow %v\n",
				r.Name, r.Small.Mean, r.Large.Mean)
		}
		return nil
	case "runtime":
		res, err := experiments.AblationRuntime(cfg, 0.6)
		if err != nil {
			return err
		}
		fmt.Println("Ablation A3: static vs runtime-adaptive synthesis (mis-declared bounds)")
		fmt.Printf("  static:   %v\n", res.Static)
		fmt.Printf("  adaptive: %v  (resyntheses: %d)\n", res.Adaptive, res.Resyntheses)
		return nil
	case "churn":
		ccfg := experiments.ScaledChurnConfig()
		ccfg.Horizon = sim.Time(*horizon)
		ccfg.Seed = *seed
		// Keep the paper default of ~5k updates/sec at whatever horizon.
		ccfg.Updates = int(float64(ccfg.Horizon) / float64(sim.Second) * 5000)
		res, err := experiments.RunChurn(ccfg)
		if err != nil {
			return err
		}
		rate := float64(res.UpdatesApplied) / (float64(ccfg.Horizon) / float64(sim.Second))
		fmt.Println("Control-plane churn: spec updates racing a live data plane")
		fmt.Printf("  updates applied:     %d/%d (%.0f/sec)\n",
			res.UpdatesApplied, res.UpdatesScheduled, rate)
		fmt.Printf("  epochs published:    %d  (peak draining %d, after run %d)\n",
			res.Generations, res.MaxDraining, res.DrainingAfter)
		fmt.Printf("  delivered/dropped:   %d/%d\n",
			res.Counters.Delivered, res.Counters.Dropped)
		fmt.Printf("  tier cache:          %d hits, %d misses, %d full recompiles\n",
			res.Resynth.TierHits, res.Resynth.TierMisses, res.Resynth.Full)
		fmt.Printf("  epoch conformance:   %s\n", res.Check)
		lat, err := experiments.MeasureResynthLatency(1024, 50, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("  resynthesis latency: incremental %s, full %s (%.1fx) at %d tenants\n",
			time.Duration(lat.IncrementalNs), time.Duration(lat.FullNs),
			lat.Speedup, lat.Tenants)
		return nil
	case "shift":
		res, err := experiments.TrafficShift(cfg, 0.4)
		if err != nil {
			return err
		}
		fmt.Println("Figure-2 traffic shift: interactive + deadline >> background")
		fmt.Printf("  interactive small flows (background active): %v\n", res.InteractiveFCT)
		fmt.Printf("  background bulk flows:                       %v\n", res.BackgroundFCT)
		fmt.Printf("  deadline packets on time:                    %.1f%%\n", 100*res.DeadlineMet)
		return nil
	case "scaling":
		shardCounts, err := parseShards(*shardsFlag)
		if err != nil {
			return err
		}
		// A shard owns at least one leaf pod, so counts beyond the topology
		// can't run — drop them instead of failing the whole sweep.
		kept := shardCounts[:0]
		for _, n := range shardCounts {
			if n > cfg.Leaves {
				fmt.Fprintf(os.Stderr, "qvisor-eval: skipping %d shards (> %d leaves)\n", n, cfg.Leaves)
				continue
			}
			kept = append(kept, n)
		}
		shardCounts = kept
		load := loads[0]
		fmt.Printf("Core scaling: %v at load %.2f (fidelity checked against the single-threaded run)\n",
			experiments.QvisorShare, load)
		points, err := experiments.RunScaling(cfg, experiments.QvisorShare, load, shardCounts)
		if err != nil {
			return err
		}
		experiments.WriteScalingTable(os.Stdout, points)
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

// runFig3 prints the paper's Figure-3 walkthrough: the synthesized
// transformations and the resulting PIFO output order.
func runFig3() error {
	hv, err := qvisor.New([]*qvisor.Tenant{
		{ID: 1, Name: "T1", Bounds: qvisor.Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: qvisor.Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: qvisor.Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}, "T1 >> T2 + T3", qvisor.Options{Synth: qvisor.SynthOptions{Base: 1}})
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: T1 (pFabric) {7,8,9}, T2 (EDF) {1,3}, T3 (FQ) {3,5}")
	fmt.Print(hv.Policy.Describe())
	fmt.Println("transformations:")
	for _, tc := range []struct {
		id    pkt.TenantID
		name  string
		ranks []int64
	}{
		{1, "T1", []int64{7, 8, 9}},
		{2, "T2", []int64{1, 3}},
		{3, "T3", []int64{3, 5}},
	} {
		tr, _ := hv.Policy.TransformOf(tc.name)
		var in, out []string
		for _, r := range tc.ranks {
			in = append(in, strconv.FormatInt(r, 10))
			out = append(out, strconv.FormatInt(tr.Apply(r), 10))
		}
		fmt.Printf("  %s: {%s} -> {%s}\n", tc.name, strings.Join(in, ","), strings.Join(out, ","))
	}
	// Enqueue the example arrival sequence, drain the PIFO.
	arrivals := []struct {
		tenant pkt.TenantID
		rank   int64
	}{
		{2, 3}, {3, 5}, {1, 9}, {1, 7}, {2, 1}, {3, 3}, {1, 8},
	}
	pifo := sched.NewPIFO(sched.Config{})
	for i, a := range arrivals {
		p := &pkt.Packet{ID: uint64(i), Tenant: a.tenant, Rank: a.rank, Size: 100}
		hv.Process(p)
		pifo.Enqueue(p)
	}
	fmt.Print("PIFO output (tenant:joint-rank): ")
	var outs []string
	for p := pifo.Dequeue(); p != nil; p = pifo.Dequeue() {
		outs = append(outs, fmt.Sprintf("T%d:%d", p.Tenant, p.Rank))
	}
	fmt.Println(strings.Join(outs, " "))
	return nil
}

// writeCSV dumps every (scheme, load) cell with both bins and full
// percentile detail, for external plotting.
func writeCSV(path string, results []experiments.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"scheme", "load", "bin", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}
	if err := w.Write(header); err != nil {
		return err
	}
	ms := func(t sim.Time) string {
		return strconv.FormatFloat(float64(t)/float64(sim.Millisecond), 'f', 6, 64)
	}
	for _, r := range results {
		for _, row := range []struct {
			bin string
			sum stats.Summary
		}{
			{"small", r.Small},
			{"large", r.Large},
			{"all", r.All},
		} {
			rec := []string{
				r.Scheme.String(),
				strconv.FormatFloat(r.Load, 'f', 2, 64),
				row.bin,
				strconv.Itoa(row.sum.Count),
				ms(row.sum.Mean),
				ms(row.sum.P50),
				ms(row.sum.P95),
				ms(row.sum.P99),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

// writeTrialCSV dumps every (scheme, load, bin) aggregate of a
// repeated-trial sweep as mean ± stderr rows, for external plotting with
// error bars.
func writeTrialCSV(path string, trials []experiments.Trial) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"scheme", "load", "bin", "trials", "mean_ms", "stderr_ms"}
	if err := w.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, t := range trials {
		for _, row := range []struct {
			bin string
			sum stats.Sample
		}{
			{"small", t.SmallMs},
			{"large", t.LargeMs},
		} {
			rec := []string{
				t.Scheme.String(),
				strconv.FormatFloat(t.Load, 'f', 2, 64),
				row.bin,
				strconv.Itoa(row.sum.N),
				ff(row.sum.Mean),
				ff(row.sum.Stderr),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

// writePerfettoFile renders events as a Chrome trace-event JSON file.
func writePerfettoFile(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := trace.WritePerfetto(w, events); err != nil {
		return err
	}
	return w.Flush()
}

// writeSnapshot dumps the registry as indented JSON to path ("-" =
// stdout).
func writeSnapshot(path string, reg *obs.Registry) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(reg.Snapshot())
}

func parseShards(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("no shard counts given")
	}
	return counts, nil
}

func parseLoads(s string) ([]float64, error) {
	var loads []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		l, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad load %q", part)
		}
		loads = append(loads, l)
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("no loads given")
	}
	return loads, nil
}
