package main

import (
	"os"
	"testing"

	"qvisor"
)

func TestParseTenant(t *testing.T) {
	tn, err := parseTenant("web=pfabric:1")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Name != "web" || tn.ID != 1 || tn.Algorithm.Name() != "pfabric" {
		t.Fatalf("parsed %+v", tn)
	}
	// With bounds and levels.
	tn, err = parseTenant("b=edf:2:0-5000:16")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Bounds != (qvisor.Bounds{Lo: 0, Hi: 5000}) || tn.Levels != 16 {
		t.Fatalf("parsed %+v", tn)
	}
}

func TestParseTenantErrors(t *testing.T) {
	for _, in := range []string{
		"noequals",
		"x=pfabric",         // missing id
		"x=bogus:1",         // unknown algorithm
		"x=pfabric:banana",  // bad id
		"x=pfabric:1:5000",  // bounds without dash
		"x=pfabric:1:a-b",   // non-numeric bounds
		"x=pfabric:1:0-5:z", // bad levels
	} {
		if _, err := parseTenant(in); err == nil {
			t.Errorf("parseTenant(%q) succeeded, want error", in)
		}
	}
}

func TestBackendByName(t *testing.T) {
	for name, want := range map[string]qvisor.Backend{
		"pifo": qvisor.BackendPIFO, "sp-queues": qvisor.BackendSPQueues,
		"sp-pifo": qvisor.BackendSPPIFO, "aifo": qvisor.BackendAIFO,
		"calendar": qvisor.BackendCalendar, "fifo": qvisor.BackendFIFO,
		"bucketq": qvisor.BackendBucketQ, "admission": qvisor.BackendAdmission,
	} {
		got, err := backendByName(name)
		if err != nil || got != want {
			t.Errorf("backendByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := backendByName("bogus"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestParseTarget(t *testing.T) {
	tgt, err := parseTarget("pifo")
	if err != nil || !tgt.Sorted {
		t.Fatalf("pifo target: %+v, %v", tgt, err)
	}
	tgt, err = parseTarget("queues:8:rewrite:admission")
	if err != nil || tgt.Queues != 8 || !tgt.RankRewrite || !tgt.Admission {
		t.Fatalf("queues target: %+v, %v", tgt, err)
	}
	for _, in := range []string{"queues", "queues:x", "queues:0", "queues:4:bogus", "junk"} {
		if _, err := parseTarget(in); err == nil {
			t.Errorf("parseTarget(%q) succeeded, want error", in)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	tmp := t.TempDir()
	err := run([]string{
		"-policy", "a >> b",
		"-tenant", "a=pfabric:1",
		"-tenant", "b=edf:2",
		"-backend", "sp-queues",
		"-target", "queues:4:rewrite",
		"-save", tmp + "/p.json",
	}, devnull(t))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                     // missing policy
		{"-policy", "a"},                       // missing tenants
		{"-policy", ">>", "-tenant", "a=fq:1"}, // bad policy
		{"-policy", "a", "-tenant", "a=fq:1", "-backend", "bogus"},
		{"-policy", "a", "-tenant", "a=fq:1", "-target", "junk"},
	}
	for i, args := range cases {
		if err := run(args, devnull(t)); err == nil {
			t.Errorf("case %d: run(%v) succeeded, want error", i, args)
		}
	}
}

func devnull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
