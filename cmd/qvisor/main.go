// Command qvisor compiles tenant scheduling policies and an operator
// composition policy into QVISOR's joint scheduling function, and shows the
// synthesized rank transformations and (optionally) the queue allocation on
// a hardware backend.
//
// Example:
//
//	qvisor -policy "web >> batch + backup" \
//	       -tenant web=pfabric:1 -tenant batch=edf:2 -tenant backup=fq:3 \
//	       -backend sp-queues -queues 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qvisor"
)

type tenantFlags []string

func (t *tenantFlags) String() string { return strings.Join(*t, ",") }
func (t *tenantFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qvisor:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("qvisor", flag.ContinueOnError)
	var tenants tenantFlags
	policy := fs.String("policy", "", `operator policy, e.g. "T1 >> T2 + T3"`)
	fs.Var(&tenants, "tenant", "tenant spec name=algorithm:id[:lo-hi[:levels]] (repeatable)")
	backend := fs.String("backend", "", "also deploy to a backend: pifo, sp-queues, sp-pifo, aifo, calendar, bucketq, admission, fifo")
	queues := fs.Int("queues", 8, "hardware queues for multi-queue backends")
	base := fs.Int64("base", 0, "lowest output rank")
	save := fs.String("save", "", "write the joint policy as JSON to this file")
	analyze := fs.Bool("analyze", false, "print the worst-case interference analysis")
	target := fs.String("target", "", "also compile for a target: queues:N[:rewrite][:admission] or pifo")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policy == "" {
		fs.Usage()
		return fmt.Errorf("missing -policy")
	}
	if len(tenants) == 0 {
		return fmt.Errorf("missing -tenant definitions")
	}

	defs := make([]*qvisor.Tenant, 0, len(tenants))
	for _, spec := range tenants {
		t, err := parseTenant(spec)
		if err != nil {
			return err
		}
		defs = append(defs, t)
	}

	spec, err := qvisor.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	jp, err := qvisor.Synthesize(defs, spec, qvisor.SynthOptions{Base: *base})
	if err != nil {
		return err
	}
	fmt.Fprint(out, jp.Describe())

	if *analyze {
		fmt.Fprint(out, jp.Analyze().Describe())
	}
	if *backend != "" {
		b, err := backendByName(*backend)
		if err != nil {
			return err
		}
		dep, err := jp.Deploy(b, qvisor.DeployOptions{Queues: *queues})
		if err != nil {
			return err
		}
		fmt.Fprint(out, dep.Describe())
	}
	if *target != "" {
		tgt, err := parseTarget(*target)
		if err != nil {
			return err
		}
		plan, err := jp.CompileTo(tgt)
		if err != nil {
			return err
		}
		fmt.Fprint(out, plan.Describe())
	}
	if *save != "" {
		data, err := json.MarshalIndent(jp, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*save, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved joint policy to %s\n", *save)
	}
	return nil
}

// parseTarget parses "pifo" or "queues:N[:rewrite][:admission]".
func parseTarget(s string) (qvisor.Target, error) {
	if s == "pifo" {
		return qvisor.Target{Name: "pifo", Sorted: true, RankRewrite: true}, nil
	}
	parts := strings.Split(s, ":")
	if parts[0] != "queues" || len(parts) < 2 {
		return qvisor.Target{}, fmt.Errorf("bad target %q (want pifo or queues:N[:rewrite][:admission])", s)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return qvisor.Target{}, fmt.Errorf("bad queue count %q", parts[1])
	}
	t := qvisor.Target{Name: s, Queues: n}
	for _, opt := range parts[2:] {
		switch opt {
		case "rewrite":
			t.RankRewrite = true
		case "admission":
			t.Admission = true
		default:
			return qvisor.Target{}, fmt.Errorf("unknown target option %q", opt)
		}
	}
	return t, nil
}

// parseTenant parses name=algorithm:id[:lo-hi[:levels]].
func parseTenant(s string) (*qvisor.Tenant, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok {
		return nil, fmt.Errorf("tenant %q: want name=algorithm:id[:lo-hi[:levels]]", s)
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("tenant %q: missing id", s)
	}
	ranker, err := qvisor.RankerByName(parts[0])
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", s, err)
	}
	id, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: bad id %q", s, parts[1])
	}
	t := &qvisor.Tenant{ID: qvisor.TenantID(id), Name: name, Algorithm: ranker}
	if len(parts) >= 3 && parts[2] != "" {
		lo, hi, ok := strings.Cut(parts[2], "-")
		if !ok {
			return nil, fmt.Errorf("tenant %q: bounds %q want lo-hi", s, parts[2])
		}
		l, err1 := strconv.ParseInt(lo, 10, 64)
		h, err2 := strconv.ParseInt(hi, 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("tenant %q: bad bounds %q", s, parts[2])
		}
		t.Bounds = qvisor.Bounds{Lo: l, Hi: h}
	}
	if len(parts) >= 4 {
		lv, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: bad levels %q", s, parts[3])
		}
		t.Levels = lv
	}
	return t, nil
}

func backendByName(s string) (qvisor.Backend, error) {
	b, err := qvisor.ParseBackend(s)
	if err != nil {
		return 0, fmt.Errorf("unknown backend %q", s)
	}
	return b, nil
}
