package main

import (
	"net/http/httptest"
	"testing"

	"qvisor/internal/api"
	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/trace"
)

func TestParseBounds(t *testing.T) {
	lo, hi, ok := parseBounds("0-100000")
	if !ok || lo != 0 || hi != 100000 {
		t.Fatalf("parseBounds = %d,%d,%v", lo, hi, ok)
	}
	lo, hi, ok = parseBounds("7-9")
	if !ok || lo != 7 || hi != 9 {
		t.Fatalf("parseBounds = %d,%d,%v", lo, hi, ok)
	}
	// Algorithm names are not bounds.
	for _, in := range []string{"pfabric", "edf", "x-y", "5", "-"} {
		if _, _, ok := parseBounds(in); ok {
			t.Errorf("parseBounds(%q) accepted", in)
		}
	}
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	// Argument validation happens before any network I/O.
	for _, args := range [][]string{
		{"join", "a"},                     // too few args
		{"join", "a", "x", "edf", "spec"}, // bad id
		{"leave"},                         // too few args
		{"monitor"},                       // too few args
		{"compile"},                       // too few args
		{"compile", "x"},                  // bad queue count
		{"compile", "4", "bogus"},         // unknown capability
		{"fabric"},                        // too few args
		{"fabric", "noequals"},            // bad device
		{"fabric", "a=junk"},              // bad target
		{"fabric", "a=queues:x"},          // bad queue count
		{"fabric", "a=queues:4:bogus"},    // unknown option
		{"trace", "junk"},                 // filter missing '='
		{"trace", "tenant=x"},             // bad tenant
		{"trace", "limit=-1"},             // bad limit
		{"trace", "bogus=1"},              // unknown filter key
		{"slo", "bogus"},                  // unknown slo arg
		{"slo", "interval=x"},             // bad interval
		{"slo", "interval=-1s"},           // non-positive interval
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestTraceSubcommand drives the trace subcommand against a live server
// with a populated flight recorder, covering every filter key.
func TestTraceSubcommand(t *testing.T) {
	ctl, _, err := core.NewController([]*core.Tenant{
		{ID: 1, Name: "web", Algorithm: &rank.PFabric{}},
		{ID: 2, Name: "deadline", Algorithm: &rank.EDF{}},
	}, policy.MustParse("web >> deadline"), core.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(ctl, func() sim.Time { return 0 })
	rec := trace.NewFlightRecorder(trace.Options{RingSize: 16})
	p := &pkt.Packet{ID: 1, Flow: 10, Tenant: 1, Rank: 7}
	rec.Record(1000, trace.KindEmit, "host0", p)
	p.Rank = 21
	rec.RecordTransform(2000, "leaf0", p, 7)
	rec.RecordDrop(3000, "leaf0", p, "overflow")
	srv.AttachTrace(rec)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, args := range [][]string{
		{"-server", ts.URL, "trace"},
		{"-server", ts.URL, "trace", "tenant=1", "kind=drop", "limit=1"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestSLOSubcommand drives the slo subcommand against a live server
// with an attached watchdog that has seen some sampled traffic.
func TestSLOSubcommand(t *testing.T) {
	ctl, _, err := core.NewController([]*core.Tenant{
		{ID: 1, Name: "web", Algorithm: &rank.PFabric{}},
	}, policy.MustParse("web"), core.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(ctl, func() sim.Time { return 0 })
	w := slo.New(slo.Config{SampleN: 1})
	pw := w.PortWatch()
	p := &pkt.Packet{ID: 1, Flow: 0, Tenant: 1, Rank: 7, Size: 100}
	pw.OnEnqueue(0, p)
	pw.OnDequeue(10, p)
	srv.AttachSLO(w)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if err := run([]string{"-server", ts.URL, "slo"}); err != nil {
		t.Errorf("run(slo): %v", err)
	}
	// Without a watchdog the endpoint 404s and the error surfaces.
	plain := httptest.NewServer(api.NewServer(ctl, nil))
	defer plain.Close()
	if err := run([]string{"-server", plain.URL, "slo"}); err == nil {
		t.Error("run(slo) against a watchdog-less server succeeded")
	}
}

// TestBulkSubcommands drives the bulk surface — tenant, batch, patch,
// epochs — against a live server.
func TestBulkSubcommands(t *testing.T) {
	ctl, _, err := core.NewController([]*core.Tenant{
		{ID: 1, Name: "web", Algorithm: &rank.PFabric{}},
		{ID: 2, Name: "deadline", Algorithm: &rank.EDF{}},
	}, policy.MustParse("web >> deadline"), core.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := api.NewServer(ctl, func() sim.Time { return 0 })
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, args := range [][]string{
		{"-server", ts.URL, "tenant", "web"},
		{"-server", ts.URL, "tenant", "web", "0-9000"},
		{"-server", ts.URL, "batch",
			"join:bulk:3:fq", "leave:bulk"},
		{"-server", ts.URL, "batch", "spec=web >> deadline >> keep",
			"join:keep:4:0-500"},
		{"-server", ts.URL, "patch", "set_weight:web:2"},
		{"-server", ts.URL, "patch", "remove:keep", "add:keep:tier=2:weight=3"},
		{"-server", ts.URL, "epochs"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if v := ctl.Version(); v != 6 {
		t.Errorf("version = %d after five mutations, want 6", v)
	}

	// Argument validation happens before any network I/O.
	for _, args := range [][]string{
		{"tenant"},                          // too few args
		{"tenant", "web", "levels=x"},       // bad levels
		{"batch", "join:a:b"},               // too few parts
		{"batch", "join:a:x:edf"},           // bad id
		{"batch", "leave:a:b"},              // too many parts
		{"batch", "promote:a"},              // unknown op
		{"patch"},                           // too few args
		{"patch", "set_weight"},             // missing tenant
		{"patch", "set_weight:web:tier=x"},  // bad value
		{"patch", "set_weight:web:depth=3"}, // unknown field
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
