package main

import "testing"

func TestParseBounds(t *testing.T) {
	lo, hi, ok := parseBounds("0-100000")
	if !ok || lo != 0 || hi != 100000 {
		t.Fatalf("parseBounds = %d,%d,%v", lo, hi, ok)
	}
	lo, hi, ok = parseBounds("7-9")
	if !ok || lo != 7 || hi != 9 {
		t.Fatalf("parseBounds = %d,%d,%v", lo, hi, ok)
	}
	// Algorithm names are not bounds.
	for _, in := range []string{"pfabric", "edf", "x-y", "5", "-"} {
		if _, _, ok := parseBounds(in); ok {
			t.Errorf("parseBounds(%q) accepted", in)
		}
	}
}

func TestRunRequiresSubcommand(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	// Argument validation happens before any network I/O.
	for _, args := range [][]string{
		{"join", "a"},                     // too few args
		{"join", "a", "x", "edf", "spec"}, // bad id
		{"leave"},                         // too few args
		{"monitor"},                       // too few args
		{"compile"},                       // too few args
		{"compile", "x"},                  // bad queue count
		{"compile", "4", "bogus"},         // unknown capability
		{"fabric"},                        // too few args
		{"fabric", "noequals"},            // bad device
		{"fabric", "a=junk"},              // bad target
		{"fabric", "a=queues:x"},          // bad queue count
		{"fabric", "a=queues:4:bogus"},    // unknown option
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
