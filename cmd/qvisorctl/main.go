// Command qvisorctl is the command-line client for qvisord's configuration
// API.
//
// Usage:
//
//	qvisorctl [-server URL] policy
//	qvisorctl [-server URL] spec [new-spec]
//	qvisorctl [-server URL] patch <op>:<tenant>[:tier=N][:level=N][:weight=N] ...
//	qvisorctl [-server URL] tenants
//	qvisorctl [-server URL] tenant <name> [algorithm|lo-hi] [levels=<n>]
//	qvisorctl [-server URL] batch [spec=<spec>] <join:name:id:alg|lo-hi> <leave:name> <update:name:id:alg|lo-hi> ...
//	qvisorctl [-server URL] epochs
//	qvisorctl [-server URL] join  <name> <id> <algorithm|lo-hi> <spec>
//	qvisorctl [-server URL] leave <name> <spec>
//	qvisorctl [-server URL] monitor <name>
//
// join and leave are deprecated in favor of batch, which applies any
// number of membership changes as one transaction compiling into a
// single policy epoch. patch edits the spec in place (ops: add, remove,
// set_weight, demote — a bare integer after the tenant is a weight, so
// set_weight:web:3 works). tenant with extra arguments performs a
// conditional update against the registration's content ETag.
//
//	qvisorctl [-server URL] check
//	qvisorctl [-server URL] compile <queues> [sorted|rewrite|admission ...]
//	qvisorctl [-server URL] metrics
//	qvisorctl [-server URL] slo [watch] [interval=<duration>]
//	qvisorctl [-server URL] trace [tenant=<id>] [kind=<kind> ...] [limit=<n>]
//
// slo prints the fidelity watchdog's report (GET /v1/slo); slo watch
// polls on the snapshot's revision ETag and reprints whenever sampled
// events have advanced it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"qvisor/internal/api"
	"qvisor/internal/pkt"
	"qvisor/internal/slo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qvisorctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qvisorctl", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:7474", "qvisord base URL")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("missing subcommand")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := api.NewClient(*server, nil)

	switch rest[0] {
	case "policy":
		p, err := c.Policy(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("spec:    %s\nversion: %d\noutput:  [%d,%d]\n", p.Spec, p.Version, p.OutputLo, p.OutputHi)
		for _, tr := range p.Transforms {
			fmt.Printf("  %-12s [%d,%d] → %d levels ×%d+%d @%d\n",
				tr.Tenant, tr.Lo, tr.Hi, tr.Levels, tr.Stride, tr.Phase, tr.Offset)
		}
		return nil
	case "spec":
		if len(rest) >= 2 {
			if err := c.SetSpec(ctx, strings.Join(rest[1:], " ")); err != nil {
				return err
			}
		}
		spec, err := c.Spec(ctx)
		if err != nil {
			return err
		}
		fmt.Println(spec)
		return nil
	case "tenants":
		tenants, err := c.Tenants(ctx)
		if err != nil {
			return err
		}
		for _, t := range tenants {
			flags := ""
			if t.Flagged {
				flags += " FLAGGED"
			}
			if t.Quarantined {
				flags += " QUARANTINED"
			}
			alg := t.Algorithm
			if alg == "" && t.Bounds != nil {
				alg = fmt.Sprintf("bounds[%d,%d]", t.Bounds.Lo, t.Bounds.Hi)
			}
			fmt.Printf("%-12s id=%-4d %s%s\n", t.Name, t.ID, alg, flags)
		}
		return nil
	case "join":
		if len(rest) < 5 {
			return fmt.Errorf("usage: join <name> <id> <algorithm|lo-hi> <spec>")
		}
		id, err := strconv.ParseUint(rest[2], 10, 16)
		if err != nil {
			return fmt.Errorf("bad id %q", rest[2])
		}
		ti := api.TenantInfo{Name: rest[1], ID: pkt.TenantID(id)}
		if lo, hi, ok := parseBounds(rest[3]); ok {
			ti.Bounds = &api.BoundsInfo{Lo: lo, Hi: hi}
		} else {
			ti.Algorithm = rest[3]
		}
		if err := c.Join(ctx, ti, strings.Join(rest[4:], " ")); err != nil {
			return err
		}
		fmt.Printf("joined %s\n", rest[1])
		return nil
	case "leave":
		if len(rest) < 3 {
			return fmt.Errorf("usage: leave <name> <spec>")
		}
		if err := c.Leave(ctx, rest[1], strings.Join(rest[2:], " ")); err != nil {
			return err
		}
		fmt.Printf("left %s\n", rest[1])
		return nil
	case "tenant":
		if len(rest) < 2 {
			return fmt.Errorf("usage: tenant <name> [algorithm|lo-hi] [levels=<n>]")
		}
		name := rest[1]
		ti, etag, err := c.Tenant(ctx, name)
		if err != nil {
			return err
		}
		if len(rest) == 2 {
			alg := ti.Algorithm
			if alg == "" && ti.Bounds != nil {
				alg = fmt.Sprintf("bounds[%d,%d]", ti.Bounds.Lo, ti.Bounds.Hi)
			}
			fmt.Printf("%-12s id=%-4d %s levels=%d etag=%s\n", ti.Name, ti.ID, alg, ti.Levels, etag)
			return nil
		}
		upd := api.TenantInfo{Name: name, ID: ti.ID, Levels: ti.Levels}
		for _, arg := range rest[2:] {
			if lo, hi, ok := parseBounds(arg); ok {
				upd.Bounds = &api.BoundsInfo{Lo: lo, Hi: hi}
			} else if val, ok := strings.CutPrefix(arg, "levels="); ok {
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return fmt.Errorf("bad levels %q", val)
				}
				upd.Levels = v
			} else {
				upd.Algorithm = arg
			}
		}
		// Conditional on the ETag just read: a concurrent edit turns into a
		// clean version_conflict instead of a lost update.
		out, newTag, err := c.PutTenant(ctx, upd, etag)
		if err != nil {
			return err
		}
		fmt.Printf("updated %s etag=%s\n", out.Name, newTag)
		return nil
	case "batch":
		var req api.BatchRequest
		for _, arg := range rest[1:] {
			if val, ok := strings.CutPrefix(arg, "spec="); ok {
				req.Spec = val
				continue
			}
			parts := strings.Split(arg, ":")
			switch parts[0] {
			case "join", "update":
				if len(parts) != 4 {
					return fmt.Errorf("usage: %s:name:id:algorithm|lo-hi", parts[0])
				}
				id, err := strconv.ParseUint(parts[2], 10, 16)
				if err != nil {
					return fmt.Errorf("bad id %q", parts[2])
				}
				ti := &api.TenantInfo{Name: parts[1], ID: pkt.TenantID(id)}
				if lo, hi, ok := parseBounds(parts[3]); ok {
					ti.Bounds = &api.BoundsInfo{Lo: lo, Hi: hi}
				} else {
					ti.Algorithm = parts[3]
				}
				req.Ops = append(req.Ops, api.BatchOpInfo{Op: parts[0], Tenant: ti})
			case "leave":
				if len(parts) != 2 {
					return fmt.Errorf("usage: leave:name")
				}
				req.Ops = append(req.Ops, api.BatchOpInfo{Op: "leave", Name: parts[1]})
			default:
				return fmt.Errorf("unknown batch op %q (want join, leave, or update)", parts[0])
			}
		}
		resp, err := c.Batch(ctx, req)
		if err != nil {
			var ae *api.APIError
			if errors.As(err, &ae) && len(ae.Items) > 0 {
				for _, it := range ae.Items {
					status := "ok"
					if it.Error != nil {
						status = it.Error.Code + ": " + it.Error.Message
					}
					fmt.Fprintf(os.Stderr, "  %-7s %-12s %s\n", it.Op, it.Name, status)
				}
			}
			return err
		}
		for _, it := range resp.Results {
			fmt.Printf("  %-7s %-12s ok\n", it.Op, it.Name)
		}
		fmt.Printf("spec: %s\nversion: %d  epoch: %d\n", resp.Spec, resp.Version, resp.Epoch)
		return nil
	case "patch":
		if len(rest) < 2 {
			return fmt.Errorf("usage: patch <op>:<tenant>[:tier=N][:level=N][:weight=N] ...")
		}
		var ops []api.SpecOpInfo
		for _, arg := range rest[1:] {
			parts := strings.Split(arg, ":")
			if len(parts) < 2 {
				return fmt.Errorf("bad op %q (want op:tenant[:k=v...])", arg)
			}
			op := api.SpecOpInfo{Op: parts[0], Tenant: parts[1]}
			for _, kv := range parts[2:] {
				key, val, found := strings.Cut(kv, "=")
				if !found {
					// A bare integer is a weight, mirroring the spec's
					// name*weight shorthand.
					key, val = "weight", kv
				}
				v, err := strconv.Atoi(val)
				if err != nil {
					return fmt.Errorf("bad %s %q", key, val)
				}
				switch key {
				case "tier":
					op.Tier = v
				case "level":
					op.Level = v
				case "weight":
					op.Weight = int64(v)
				default:
					return fmt.Errorf("unknown op field %q", key)
				}
			}
			ops = append(ops, op)
		}
		resp, err := c.PatchSpec(ctx, ops)
		if err != nil {
			return err
		}
		fmt.Printf("%s\nversion: %d  epoch: %d\n", resp.Spec, resp.Version, resp.Epoch)
		return nil
	case "epochs":
		g, err := c.Epochs(ctx)
		if err != nil {
			return err
		}
		if g.Current != nil {
			fmt.Printf("current:  gen %-6d inflight %d\n", g.Current.Gen, g.Current.Inflight)
		}
		for _, d := range g.Draining {
			fmt.Printf("draining: gen %-6d inflight %d\n", d.Gen, d.Inflight)
		}
		fmt.Printf("published: %d\n", g.Published)
		return nil
	case "monitor":
		if len(rest) != 2 {
			return fmt.Errorf("usage: monitor <name>")
		}
		m, err := c.Monitor(ctx, rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("tenant:   %s\nobserved: %d ranks, window [%d,%d] p50=%d p95=%d\noutside:  %.2f%%\ndrift:    %.3f\n",
			m.Tenant, m.Count, m.ObservedLo, m.ObservedHi, m.P50, m.P95, 100*m.OutsideFraction, m.Drift)
		return nil
	case "check":
		res, err := c.Check(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("redeployed=%v version=%d\n", res.Redeployed, res.Version)
		return nil
	case "metrics":
		text, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "slo":
		watch := false
		interval := time.Second
		for _, arg := range rest[1:] {
			if arg == "watch" {
				watch = true
			} else if val, ok := strings.CutPrefix(arg, "interval="); ok {
				d, err := time.ParseDuration(val)
				if err != nil || d <= 0 {
					return fmt.Errorf("bad interval %q", val)
				}
				interval = d
			} else {
				return fmt.Errorf("usage: slo [watch] [interval=<duration>]")
			}
		}
		snap, err := c.SLO(ctx)
		if err != nil {
			return err
		}
		if err := slo.WriteReport(os.Stdout, snap); err != nil {
			return err
		}
		if !watch {
			return nil
		}
		// Poll on the snapshot revision: unchanged watchdogs answer 304
		// and print nothing. Ctrl-C ends the watch.
		rev := snap.Revision
		for {
			time.Sleep(interval)
			pollCtx, cancel := context.WithTimeout(context.Background(), *timeout)
			snap, changed, err := c.SLOIfChanged(pollCtx, rev)
			cancel()
			if err != nil {
				return err
			}
			if !changed {
				continue
			}
			rev = snap.Revision
			if err := slo.WriteReport(os.Stdout, snap); err != nil {
				return err
			}
		}
	case "trace":
		f := api.AllTrace
		for _, arg := range rest[1:] {
			key, val, ok := strings.Cut(arg, "=")
			if !ok {
				return fmt.Errorf("bad trace filter %q (want tenant=<id>, kind=<kind>, or limit=<n>)", arg)
			}
			switch key {
			case "tenant":
				v, err := strconv.Atoi(val)
				if err != nil || v < 0 {
					return fmt.Errorf("bad tenant %q", val)
				}
				f.Tenant = v
			case "kind":
				f.Kinds = append(f.Kinds, val)
			case "limit":
				v, err := strconv.Atoi(val)
				if err != nil || v < 0 {
					return fmt.Errorf("bad limit %q", val)
				}
				f.Limit = v
			default:
				return fmt.Errorf("unknown trace filter %q", key)
			}
		}
		tr, err := c.Trace(ctx, f)
		if err != nil {
			return err
		}
		fmt.Printf("seq: %d  events: %d\n", tr.Seq, len(tr.Events))
		for _, e := range tr.Events {
			extra := ""
			if e.Cause != "" {
				extra = "  cause=" + e.Cause
			}
			if e.Kind == "transform" {
				extra = fmt.Sprintf("  pre_rank=%d", e.PreRank)
			}
			fmt.Printf("  %12dns %-9s %-12s pkt=%-8d flow=%-6d tenant=%-4d rank=%d%s\n",
				e.TimeNs, e.Kind, e.Where, e.ID, e.Flow, e.Tenant, e.Rank, extra)
		}
		return nil
	case "compile":
		if len(rest) < 2 {
			return fmt.Errorf("usage: compile <queues> [sorted|rewrite|admission ...]")
		}
		queues, err := strconv.Atoi(rest[1])
		if err != nil {
			return fmt.Errorf("bad queue count %q", rest[1])
		}
		req := api.CompileRequest{Name: "cli-target", Queues: queues}
		for _, opt := range rest[2:] {
			switch opt {
			case "sorted":
				req.Sorted = true
			case "rewrite":
				req.RankRewrite = true
			case "admission":
				req.Admission = true
			default:
				return fmt.Errorf("unknown target capability %q", opt)
			}
		}
		resp, err := c.Compile(ctx, req)
		if err != nil {
			return err
		}
		fmt.Printf("feasible: %v\n", resp.Feasible)
		for _, r := range resp.Requirements {
			fmt.Printf("  %-20s %-24s %-12s %s\n", r.Kind, strings.Join(r.Tenants, ","), r.Level, r.Note)
		}
		if resp.PartialSpec != "" {
			fmt.Printf("proposed partial spec: %s\n", resp.PartialSpec)
			for _, d := range resp.Downgrades {
				fmt.Printf("  downgrade: %s\n", d)
			}
		}
		return nil
	case "analyze":
		ar, err := c.Analyze(ctx)
		if err != nil {
			return err
		}
		for _, p := range ar.Pairs {
			fmt.Printf("  %-12s → %-12s %5.1f%%  (%s)\n", p.From, p.To, 100*p.Fraction, p.Relation)
		}
		if len(ar.Isolated) > 0 {
			fmt.Printf("fully isolated: %s\n", strings.Join(ar.Isolated, ", "))
		}
		return nil
	case "fabric":
		// fabric <name=queues:N[:rewrite]|name=pifo> ...
		if len(rest) < 2 {
			return fmt.Errorf("usage: fabric <name=pifo|name=queues:N[:rewrite][:admission]> ...")
		}
		var devices []api.DeviceInfo
		for _, spec := range rest[1:] {
			name, tgt, ok := strings.Cut(spec, "=")
			if !ok {
				return fmt.Errorf("bad device %q (want name=target)", spec)
			}
			d := api.DeviceInfo{Name: name}
			if tgt == "pifo" {
				d.Target = api.CompileRequest{Name: "pifo", Sorted: true, RankRewrite: true}
			} else {
				parts := strings.Split(tgt, ":")
				if parts[0] != "queues" || len(parts) < 2 {
					return fmt.Errorf("bad target %q", tgt)
				}
				q, err := strconv.Atoi(parts[1])
				if err != nil {
					return fmt.Errorf("bad queue count %q", parts[1])
				}
				d.Target = api.CompileRequest{Name: tgt, Queues: q}
				for _, opt := range parts[2:] {
					switch opt {
					case "rewrite":
						d.Target.RankRewrite = true
					case "admission":
						d.Target.Admission = true
					default:
						return fmt.Errorf("unknown target option %q", opt)
					}
				}
			}
			devices = append(devices, d)
		}
		resp, err := c.Fabric(ctx, devices)
		if err != nil {
			return err
		}
		fmt.Printf("feasible: %v\n", resp.Feasible)
		for kind, lvl := range resp.Guarantees {
			fmt.Printf("  %-20s %-12s (bottleneck: %s)\n", kind, lvl, resp.Bottleneck[kind])
		}
		for _, d := range resp.Devices {
			fmt.Printf("  device %-10s backend=%-10s feasible=%v\n", d.Name, d.Backend, d.Feasible)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// parseBounds parses "lo-hi" (e.g. "0-100000"), returning ok=false when the
// argument is an algorithm name instead.
func parseBounds(s string) (lo, hi int64, ok bool) {
	l, h, found := strings.Cut(s, "-")
	if !found {
		return 0, 0, false
	}
	lv, err1 := strconv.ParseInt(l, 10, 64)
	hv, err2 := strconv.ParseInt(h, 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return lv, hv, true
}
