// Command qvisord serves QVISOR's configuration API (the control-plane
// interface of the paper's Figure 1): tenants register their scheduling
// policies, the operator manages the composition policy, and the daemon
// keeps the synthesized joint policy current.
//
// Example:
//
//	qvisord -listen 127.0.0.1:7474 \
//	        -tenant web=pfabric:1 -tenant batch=fq:2 \
//	        -policy "web >> batch"
//
//	curl -s localhost:7474/v1/policy | jq .
//	curl -s -X POST localhost:7474/v1/tenants -d \
//	  '{"tenant":{"name":"backup","id":3,"algorithm":"edf"},"spec":"web >> batch + backup"}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qvisor"
	"qvisor/internal/api"
	"qvisor/internal/core"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/slo"
	"qvisor/internal/trace"
)

type tenantFlags []string

func (t *tenantFlags) String() string { return strings.Join(*t, ",") }
func (t *tenantFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qvisord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qvisord", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7474", "address to serve the configuration API on")
	policyText := fs.String("policy", "", `initial operator policy, e.g. "web >> batch"`)
	var tenants tenantFlags
	fs.Var(&tenants, "tenant", "initial tenant name=algorithm:id (repeatable)")
	quarantine := fs.Bool("quarantine", false, "demote adversarial tenants automatically")
	metricsPath := fs.String("metrics", "", `write a JSON metrics snapshot on shutdown ("-" = stdout)`)
	traceRing := fs.Int("trace-ring", trace.DefaultRingSize,
		"flight-recorder ring capacity for GET /v1/trace (0 disables the endpoint)")
	sloOn := fs.Bool("slo", true,
		"attach the fidelity watchdog: GET /v1/slo and burn-rate /v1/healthz")
	sloSample := fs.Uint64("slo-sample", slo.DefaultSampleN,
		"watchdog flow sampling: mirror only flows with ID %% N == 0 (1 = every packet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policyText == "" || len(tenants) == 0 {
		fs.Usage()
		return errors.New("missing -policy or -tenant")
	}

	defs := make([]*qvisor.Tenant, 0, len(tenants))
	for _, spec := range tenants {
		t, err := parseTenant(spec)
		if err != nil {
			return err
		}
		defs = append(defs, t)
	}
	spec, err := qvisor.ParsePolicy(*policyText)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "qvisord: ", log.LstdFlags|log.Lmicroseconds)
	// The registry is always created so GET /v1/metrics works; -metrics
	// additionally dumps a JSON snapshot on shutdown.
	reg := obs.NewRegistry()
	// Daemon self-telemetry: heap, GC, and goroutine gauges, refreshed
	// lazily per scrape.
	reg.EnableRuntime()
	ctl, _, err := core.NewController(defs, spec, core.ControllerOptions{
		Quarantine: *quarantine,
		OnEvent: func(e core.Event) {
			logger.Printf("event %v tenant=%q %s", e.Kind, e.Tenant, e.Detail)
		},
		Metrics: reg,
	})
	if err != nil {
		return err
	}

	apiSrv := api.NewServer(ctl, nil)
	if *traceRing > 0 {
		// The daemon itself moves no packets; the recorder is attached so
		// colocated data planes (embedded simulations, tests) can share it
		// and GET /v1/trace serves a live, initially empty ring.
		apiSrv.AttachTrace(trace.NewFlightRecorder(trace.Options{RingSize: *traceRing}))
	}
	if *sloOn {
		// Like the trace ring: the daemon moves no packets itself, so the
		// watchdog starts empty and reports OK. Colocated data planes share
		// it, and /v1/healthz upgrades from a liveness probe to burn-rate
		// health the moment sampled events arrive.
		names := make(map[pkt.TenantID]string, len(defs))
		for _, d := range defs {
			names[d.ID] = d.Name
		}
		apiSrv.AttachSLO(slo.New(slo.Config{SampleN: *sloSample, Tenants: names}))
	}
	srv := &http.Server{
		Handler:           apiSrv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	logger.Printf("serving configuration API on http://%s (policy %q, %d tenants)",
		ln.Addr(), spec, len(defs))

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if *metricsPath != "" {
		return writeSnapshot(*metricsPath, reg)
	}
	return nil
}

// writeSnapshot dumps the registry as indented JSON to path ("-" =
// stdout).
func writeSnapshot(path string, reg *obs.Registry) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(reg.Snapshot())
}

// parseTenant parses name=algorithm:id.
func parseTenant(s string) (*qvisor.Tenant, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok {
		return nil, fmt.Errorf("tenant %q: want name=algorithm:id", s)
	}
	alg, idText, ok := strings.Cut(rest, ":")
	if !ok {
		return nil, fmt.Errorf("tenant %q: missing id", s)
	}
	ranker, err := qvisor.RankerByName(alg)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", s, err)
	}
	id, err := strconv.ParseUint(idText, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: bad id %q", s, idText)
	}
	return &qvisor.Tenant{ID: qvisor.TenantID(id), Name: name, Algorithm: ranker}, nil
}
