package main

import "testing"

func TestParseTenantDaemon(t *testing.T) {
	tn, err := parseTenant("web=pfabric:1")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Name != "web" || tn.ID != 1 || tn.Algorithm.Name() != "pfabric" {
		t.Fatalf("parsed %+v", tn)
	}
	for _, in := range []string{"junk", "x=alg", "x=bogus:1", "x=pfabric:notanum", "x=pfabric:70000"} {
		if _, err := parseTenant(in); err == nil {
			t.Errorf("parseTenant(%q) succeeded, want error", in)
		}
	}
}

func TestRunValidation(t *testing.T) {
	// Missing flags fail fast without binding a socket.
	if err := run([]string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-policy", ">>", "-tenant", "a=fq:1"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-policy", "a", "-tenant", "a=bogus:1"}); err == nil {
		t.Fatal("bad tenant accepted")
	}
	if err := run([]string{"-policy", "a >> ghost", "-tenant", "a=fq:1"}); err == nil {
		t.Fatal("spec with unknown tenant accepted")
	}
	// Unbindable address fails after successful compilation.
	if err := run([]string{"-policy", "a", "-tenant", "a=fq:1", "-listen", "256.0.0.1:1"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
