package qvisor

// Benchmark harness: one benchmark per table/figure of the paper, plus the
// ablations indexed in DESIGN.md. Each Fig-4 benchmark runs the full
// packet-level simulation for every scheme at a representative load and
// reports the measured mean FCTs as custom metrics (ms), so
// `go test -bench` regenerates the paper's series shape.
//
// The topology is the laptop-scaled configuration (see
// experiments.ScaledConfig); cmd/qvisor-eval runs the full load sweep and
// can run the paper-scale topology.

import (
	"fmt"
	"testing"

	"qvisor/internal/experiments"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
)

func benchCfg() experiments.Config {
	cfg := experiments.ScaledConfig()
	cfg.Horizon = 50 * sim.Millisecond
	return cfg
}

func ms(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }

// benchFig4 runs all six schemes at the given load — fanned out over the
// worker pool, one scheme per worker — and reports the chosen bin's mean
// FCT per scheme. The pooled sweep is bit-identical to the serial one (see
// experiments.RunPoints), so the metrics are unchanged from the serial
// harness; only the wall clock shrinks.
func benchFig4(b *testing.B, bin experiments.Bin, load float64) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		results, err := experiments.SweepParallel(cfg, experiments.Schemes,
			[]float64{load}, experiments.RunnerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i != b.N-1 {
			continue
		}
		for _, r := range results {
			sum := r.Small
			if bin == experiments.BinLarge {
				sum = r.Large
			}
			if sum.Count > 0 {
				b.ReportMetric(ms(sum.Mean), fmt.Sprintf("msFCT/%d", int(r.Scheme)))
			}
		}
	}
}

// BenchmarkFig4aSmallFlows regenerates Figure 4a's series (mean FCT of
// pFabric flows under 100 KB) at load 0.6. Metric msFCT/<scheme-index>
// follows the order of experiments.Schemes.
func BenchmarkFig4aSmallFlows(b *testing.B) {
	benchFig4(b, experiments.BinSmall, 0.6)
}

// BenchmarkFig4bLargeFlows regenerates Figure 4b's series (mean FCT of
// pFabric flows of 1 MB and above) at load 0.6.
func BenchmarkFig4bLargeFlows(b *testing.B) {
	benchFig4(b, experiments.BinLarge, 0.6)
}

// benchSweep measures a two-load Fig-4 sweep (12 runs) at a fixed worker
// count; comparing Serial vs Parallel below gives the sweep runner's
// wall-clock speedup on this machine.
func benchSweep(b *testing.B, workers int) {
	cfg := benchCfg()
	cfg.Horizon = 20 * sim.Millisecond
	loads := []float64{0.3, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepParallel(cfg, experiments.Schemes, loads,
			experiments.RunnerConfig{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SweepSerial is the old single-core sweep (workers=1).
func BenchmarkFig4SweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkFig4SweepParallel is the pooled sweep at GOMAXPROCS workers.
func BenchmarkFig4SweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkFig3Transformations measures the pre-processor on the paper's
// Figure-3 joint policy: the per-packet cost of the rank rewrite that runs
// at line rate.
func BenchmarkFig3Transformations(b *testing.B) {
	hv, err := New([]*Tenant{
		{ID: 1, Name: "T1", Bounds: Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}, "T1 >> T2 + T3", Options{Synth: SynthOptions{Base: 1}})
	if err != nil {
		b.Fatal(err)
	}
	p := &Packet{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tenant = pkt.TenantID(1 + i%3)
		p.Rank = int64(1 + i%9)
		hv.Process(p)
	}
}

// benchObsHotPath measures the full per-packet pipeline — pre-process,
// enqueue, dequeue — with observability off (nil registry, the default) or
// on. Comparing the Off/On pair bounds the instrumentation overhead; the
// acceptance bar for the obs layer is < 5% regression.
func benchObsHotPath(b *testing.B, instrument bool) {
	hv, err := New([]*Tenant{
		{ID: 1, Name: "T1", Bounds: Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}, "T1 >> T2 + T3", Options{Synth: SynthOptions{Base: 1}})
	if err != nil {
		b.Fatal(err)
	}
	var m *sched.Metrics
	if instrument {
		reg := obs.NewRegistry()
		hv.Pre.EnableMetrics(reg, nil)
		ms, ok := hv.Scheduler.(sched.MetricsSetter)
		if !ok {
			b.Fatalf("%s does not implement sched.MetricsSetter", hv.Scheduler.Name())
		}
		m = sched.NewMetrics(reg, obs.L("scheduler", hv.Scheduler.Name()))
		ms.SetMetrics(m)
	}
	p := &Packet{Size: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tenant = pkt.TenantID(1 + i%3)
		p.Rank = int64(1 + i%9)
		if hv.Enqueue(p) {
			hv.Dequeue()
		}
	}
	b.StopTimer()
	m.Flush()
}

// BenchmarkObsHotPathOff is the uninstrumented data-plane fast path.
func BenchmarkObsHotPathOff(b *testing.B) { benchObsHotPath(b, false) }

// BenchmarkObsHotPathOn is the same path with a live obs.Registry wired
// into the pre-processor and the deployed scheduler. The delta over Off is
// the absolute per-packet instrument cost (a handful of atomic updates);
// the percentage here overstates the real-world overhead because the loop
// does nothing but touch instruments — BenchmarkObsOverheadSim* measures
// the same instruments under the full simulation pipeline.
func BenchmarkObsHotPathOn(b *testing.B) { benchObsHotPath(b, true) }

// benchObsSim runs one full packet-level simulation (the paper's sharing
// scheme at moderate load) with and without a registry. This is the
// system-level overhead of the observability layer: every port scheduler
// and drop path is instrumented, so the Off/On delta is the acceptance
// number for "instrumentation costs < 5% of the hot path".
func benchObsSim(b *testing.B, instrument bool) {
	cfg := benchCfg()
	cfg.Horizon = 20 * sim.Millisecond
	if instrument {
		cfg.Registry = obs.NewRegistry()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepParallel(cfg, experiments.Schemes[:1],
			[]float64{0.6}, experiments.RunnerConfig{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverheadSimOff is the simulation without a registry.
func BenchmarkObsOverheadSimOff(b *testing.B) { benchObsSim(b, false) }

// BenchmarkObsOverheadSimOn is the simulation with every port instrumented.
func BenchmarkObsOverheadSimOn(b *testing.B) { benchObsSim(b, true) }

// BenchmarkAblationQuantization (A1) compares coarse vs fine quantization
// under the sharing policy; metrics are mean small-flow FCTs in ms.
func BenchmarkAblationQuantization(b *testing.B) {
	cfg := benchCfg()
	cfg.Horizon = 30 * sim.Millisecond
	levels := []int64{2, 16, 1 << 10, 1 << 20}
	for i := 0; i < b.N; i++ {
		results, err := experiments.AblationQuantization(cfg, levels, 0.6)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for j, r := range results {
				if r.Small.Count > 0 {
					b.ReportMetric(ms(r.Small.Mean), fmt.Sprintf("msFCT/L%d", levels[j]))
				}
			}
		}
	}
}

// BenchmarkAblationQueues (A2) sweeps the strict-priority queue count of
// the deployed (non-PIFO) backend.
func BenchmarkAblationQueues(b *testing.B) {
	cfg := benchCfg()
	cfg.Horizon = 30 * sim.Millisecond
	queues := []int{2, 4, 8, 16, 32}
	for i := 0; i < b.N; i++ {
		results, err := experiments.AblationQueues(cfg, queues, 0.6)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for j, r := range results {
				if r.Small.Count > 0 {
					b.ReportMetric(ms(r.Small.Mean), fmt.Sprintf("msFCT/q%d", queues[j]))
				}
			}
		}
	}
}

// BenchmarkAblationRuntime (A3) compares static synthesis against the
// runtime-adaptive controller under mis-declared rank bounds.
func BenchmarkAblationRuntime(b *testing.B) {
	cfg := benchCfg()
	cfg.Horizon = 40 * sim.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRuntime(cfg, 0.6)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			if res.Static.Count > 0 {
				b.ReportMetric(ms(res.Static.Mean), "msFCT/static")
			}
			if res.Adaptive.Count > 0 {
				b.ReportMetric(ms(res.Adaptive.Mean), "msFCT/adaptive")
			}
		}
	}
}

// BenchmarkTrafficShift runs the Figure-2 three-tenant scenario.
func BenchmarkTrafficShift(b *testing.B) {
	cfg := benchCfg()
	cfg.Horizon = 30 * sim.Millisecond
	for i := 0; i < b.N; i++ {
		res, err := experiments.TrafficShift(cfg, 0.4)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && res.InteractiveFCT.Count > 0 {
			b.ReportMetric(ms(res.InteractiveFCT.Mean), "msFCT/interactive")
			b.ReportMetric(res.DeadlineMet, "deadlineMet")
		}
	}
}

// BenchmarkSynthesis measures joint-policy compilation (control-plane
// cost).
func BenchmarkSynthesis(b *testing.B) {
	pf, _ := RankerByName("pfabric")
	edf, _ := RankerByName("edf")
	fq, _ := RankerByName("fq")
	tenants := []*Tenant{
		{ID: 1, Name: "T1", Algorithm: pf},
		{ID: 2, Name: "T2", Algorithm: edf},
		{ID: 3, Name: "T3", Algorithm: fq},
	}
	spec, err := ParsePolicy("T1 >> T2 + T3")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(tenants, spec, SynthOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
