package stats

import (
	"math"
	"testing"
)

func TestNewSampleEmpty(t *testing.T) {
	s := NewSample(nil)
	if s.N != 0 || s.Mean != 0 || s.Stderr != 0 {
		t.Fatalf("empty sample = %+v", s)
	}
	if s.String() != "n/a" {
		t.Fatalf("empty sample string = %q", s.String())
	}
}

func TestNewSampleSingle(t *testing.T) {
	s := NewSample([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single sample = %+v", s)
	}
	if s.Stddev != 0 || s.Stderr != 0 {
		t.Fatalf("single-observation spread must be zero: %+v", s)
	}
}

func TestNewSampleKnownValues(t *testing.T) {
	// 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample stddev sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := NewSample(xs)
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("sample = %+v", s)
	}
	wantSD := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-wantSD) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.Stddev, wantSD)
	}
	wantSE := wantSD / math.Sqrt(8)
	if math.Abs(s.Stderr-wantSE) > 1e-12 {
		t.Fatalf("stderr = %v, want %v", s.Stderr, wantSE)
	}
}

func TestSampleString(t *testing.T) {
	s := NewSample([]float64{1, 3})
	if got := s.String(); got == "" || got == "n/a" {
		t.Fatalf("string = %q", got)
	}
}
