package stats

import (
	"testing"

	"qvisor/internal/sim"
)

func rec(id uint64, tenant string, size int64, fct sim.Time) FlowRecord {
	return FlowRecord{ID: id, Tenant: tenant, Size: size, Start: 0, End: fct}
}

func TestFCT(t *testing.T) {
	r := FlowRecord{Start: 100, End: 350}
	if r.FCT() != 250 {
		t.Fatalf("FCT = %v", r.FCT())
	}
}

func TestSummarize(t *testing.T) {
	var records []FlowRecord
	for i := 1; i <= 100; i++ {
		records = append(records, rec(uint64(i), "a", 10, sim.Time(i)))
	}
	s := Summarize(records)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != sim.Time(50) { // mean of 1..100 = 50.5, truncated
		t.Fatalf("mean = %v, want 50", s.Mean)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 || s.Max != 100 {
		t.Fatalf("percentiles wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]FlowRecord{rec(1, "a", 10, 42)})
	if s.Count != 1 || s.Mean != 42 || s.P50 != 42 || s.P99 != 42 || s.Max != 42 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSizeBins(t *testing.T) {
	cases := []struct {
		bin   SizeBin
		size  int64
		match bool
	}{
		{SmallFlows, 1, true},
		{SmallFlows, 99999, true},
		{SmallFlows, 100000, false},
		{SmallFlows, 0, false},
		{LargeFlows, 999999, false},
		{LargeFlows, 1000000, true},
		{LargeFlows, 1 << 40, true},
		{AllFlows, 0, true},
		{AllFlows, 1 << 40, true},
	}
	for _, c := range cases {
		if got := c.bin.Match(c.size); got != c.match {
			t.Errorf("%v.Match(%d) = %v, want %v", c.bin, c.size, got, c.match)
		}
	}
}

func TestSizeBinString(t *testing.T) {
	for b, want := range map[SizeBin]string{
		AllFlows: "all", SmallFlows: "(0,100KB)", LargeFlows: "[1MB,inf)",
		SizeBin(9): "bin(9)",
	} {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), want)
		}
	}
}

func TestCollectorFiltering(t *testing.T) {
	c := NewCollector()
	c.Add(rec(1, "pfabric", 50000, 10))   // small
	c.Add(rec(2, "pfabric", 2000000, 99)) // large
	c.Add(rec(3, "edf", 50000, 5))
	if c.Len() != 3 || len(c.Records()) != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if got := len(c.Tenant("pfabric")); got != 2 {
		t.Fatalf("tenant filter = %d", got)
	}
	small := c.BinSummary("pfabric", SmallFlows)
	if small.Count != 1 || small.Mean != 10 {
		t.Fatalf("small bin = %+v", small)
	}
	large := c.BinSummary("pfabric", LargeFlows)
	if large.Count != 1 || large.Mean != 99 {
		t.Fatalf("large bin = %+v", large)
	}
	if all := c.BinSummary("pfabric", AllFlows); all.Count != 2 {
		t.Fatalf("all bin = %+v", all)
	}
}

func TestDeadlineMetFraction(t *testing.T) {
	c := NewCollector()
	c.Add(FlowRecord{ID: 1, Tenant: "edf", Deadline: 100, MetDeadline: true})
	c.Add(FlowRecord{ID: 2, Tenant: "edf", Deadline: 100, MetDeadline: false})
	c.Add(FlowRecord{ID: 3, Tenant: "edf", Deadline: 100, MetDeadline: true})
	c.Add(FlowRecord{ID: 4, Tenant: "edf"}) // no deadline: excluded
	c.Add(FlowRecord{ID: 5, Tenant: "other", Deadline: 100, MetDeadline: true})
	frac, n := c.DeadlineMetFraction("edf")
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if frac < 0.66 || frac > 0.67 {
		t.Fatalf("frac = %v, want 2/3", frac)
	}
	if _, n := c.DeadlineMetFraction("none"); n != 0 {
		t.Fatal("unknown tenant should have 0 deadline flows")
	}
}
