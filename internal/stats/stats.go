// Package stats collects flow-completion-time statistics, binned by flow
// size the way the paper's Figure 4 reports them: mean FCT for small flows
// (0, 100 KB) and for large flows [1 MB, ∞).
package stats

import (
	"fmt"
	"math"
	"sort"

	"qvisor/internal/sim"
)

// FlowRecord is one completed (or failed) flow.
type FlowRecord struct {
	// ID is the flow identifier.
	ID uint64
	// Tenant is the owning tenant's name.
	Tenant string
	// Size is the flow size in bytes.
	Size int64
	// Start and End delimit the flow's lifetime; FCT = End - Start.
	Start, End sim.Time
	// MetDeadline reports whether a deadline-constrained flow finished in
	// time (meaningless when Deadline is zero).
	Deadline    sim.Time
	MetDeadline bool
}

// FCT returns the flow completion time.
func (r FlowRecord) FCT() sim.Time { return r.End - r.Start }

// Figure-4 size bins.
const (
	// SmallFlowMax is the upper edge of the paper's small-flow bin.
	SmallFlowMax = 100 * 1000
	// LargeFlowMin is the lower edge of the paper's large-flow bin.
	LargeFlowMin = 1000 * 1000
)

// Collector accumulates flow records.
type Collector struct {
	records []FlowRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records a completed flow.
func (c *Collector) Add(r FlowRecord) { c.records = append(c.records, r) }

// Len returns the number of recorded flows.
func (c *Collector) Len() int { return len(c.records) }

// Records returns all records (not a copy; callers must not mutate).
func (c *Collector) Records() []FlowRecord { return c.records }

// Filter returns the records matching the predicate.
func (c *Collector) Filter(keep func(FlowRecord) bool) []FlowRecord {
	var out []FlowRecord
	for _, r := range c.records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// Tenant returns records belonging to the named tenant.
func (c *Collector) Tenant(name string) []FlowRecord {
	return c.Filter(func(r FlowRecord) bool { return r.Tenant == name })
}

// Summary describes the FCT distribution of a set of flows.
type Summary struct {
	// Count is the number of flows.
	Count int
	// Mean, P50, P95, P99, Max are FCT statistics.
	Mean sim.Time
	P50  sim.Time
	P95  sim.Time
	P99  sim.Time
	Max  sim.Time
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Summarize computes FCT statistics over the given records.
func Summarize(records []FlowRecord) Summary {
	if len(records) == 0 {
		return Summary{}
	}
	fcts := make([]sim.Time, len(records))
	var total float64
	for i, r := range records {
		fcts[i] = r.FCT()
		total += float64(r.FCT())
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	pct := func(p float64) sim.Time {
		i := int(math.Ceil(p*float64(len(fcts)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(fcts) {
			i = len(fcts) - 1
		}
		return fcts[i]
	}
	return Summary{
		Count: len(records),
		Mean:  sim.Time(total / float64(len(records))),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   fcts[len(fcts)-1],
	}
}

// SizeBin selects one of the paper's flow-size bins.
type SizeBin int

const (
	// AllFlows places no size restriction.
	AllFlows SizeBin = iota
	// SmallFlows is (0, 100 KB) — Figure 4a.
	SmallFlows
	// LargeFlows is [1 MB, ∞) — Figure 4b.
	LargeFlows
)

// String implements fmt.Stringer.
func (b SizeBin) String() string {
	switch b {
	case AllFlows:
		return "all"
	case SmallFlows:
		return "(0,100KB)"
	case LargeFlows:
		return "[1MB,inf)"
	default:
		return fmt.Sprintf("bin(%d)", int(b))
	}
}

// Match reports whether a flow size falls in the bin.
func (b SizeBin) Match(size int64) bool {
	switch b {
	case SmallFlows:
		return size > 0 && size < SmallFlowMax
	case LargeFlows:
		return size >= LargeFlowMin
	default:
		return true
	}
}

// BinSummary summarizes the named tenant's flows restricted to a size bin.
func (c *Collector) BinSummary(tenant string, bin SizeBin) Summary {
	return Summarize(c.Filter(func(r FlowRecord) bool {
		return r.Tenant == tenant && bin.Match(r.Size)
	}))
}

// DeadlineMetFraction returns the fraction of deadline-constrained flows of
// the tenant that met their deadline, and the number of such flows.
func (c *Collector) DeadlineMetFraction(tenant string) (float64, int) {
	met, total := 0, 0
	for _, r := range c.records {
		if r.Tenant != tenant || r.Deadline == 0 {
			continue
		}
		total++
		if r.MetDeadline {
			met++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(met) / float64(total), total
}
