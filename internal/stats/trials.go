package stats

import (
	"fmt"
	"math"
)

// Sample aggregates repeated scalar observations — one value per trial of a
// repeated-seed experiment run — into the mean ± stderr form the evaluation
// tables report.
type Sample struct {
	// N is the number of observations.
	N int
	// Mean is the arithmetic mean.
	Mean float64
	// Stddev is the sample standard deviation (Bessel-corrected; zero for
	// N < 2).
	Stddev float64
	// Stderr is the standard error of the mean, Stddev / sqrt(N).
	Stderr float64
	// Min and Max bound the observations.
	Min, Max float64
}

// NewSample aggregates the observations. An empty input yields the zero
// Sample.
func NewSample(xs []float64) Sample {
	if len(xs) == 0 {
		return Sample{}
	}
	s := Sample{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N >= 2 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
		s.Stderr = s.Stddev / math.Sqrt(float64(s.N))
	}
	return s
}

// String implements fmt.Stringer as "mean±stderr (n=N)".
func (s Sample) String() string {
	if s.N == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.6g±%.2g (n=%d)", s.Mean, s.Stderr, s.N)
}
