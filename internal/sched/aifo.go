package sched

import (
	"qvisor/internal/pkt"
)

// AIFO approximates a PIFO with a single FIFO queue plus rank-aware
// admission control (Yu et al., SIGCOMM 2021) — reference [41] of the
// QVISOR paper. Instead of sorting, AIFO drops at enqueue time the packets
// a PIFO would have dropped: it tracks a sliding window of recent ranks and
// admits a packet only if its rank quantile is within the fraction of the
// queue that is still free, inflated by a burstiness allowance.
//
// Admission rule (from the AIFO paper): admit p iff
//
//	quantile(p.Rank) <= (1/(1-k)) * (C - c) / C
//
// where C is the queue capacity, c the current occupancy, and k in [0,1)
// the burstiness parameter.
type AIFO struct {
	cfg    Config
	q      ring
	bytes  int
	window []int64 // circular buffer of recent ranks
	wpos   int
	wfill  int
	k      float64
	stats  Stats
}

// AIFOConfig parametrizes the admission control.
type AIFOConfig struct {
	Config
	// WindowSize is the number of recent ranks used for quantile
	// estimation. Zero means 64 (the sample size used in the AIFO paper's
	// hardware prototype).
	WindowSize int
	// Burst is the burstiness allowance k in [0,1). Larger k admits more
	// aggressively. Zero means 0.1.
	Burst float64
}

// NewAIFO returns an AIFO queue. It panics on Burst outside [0,1).
func NewAIFO(cfg AIFOConfig) *AIFO {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 64
	}
	if cfg.Burst == 0 {
		cfg.Burst = 0.1
	}
	if cfg.Burst < 0 || cfg.Burst >= 1 {
		panic("sched: AIFO burst parameter must be in [0,1)")
	}
	return &AIFO{
		cfg:    cfg.Config,
		window: make([]int64, cfg.WindowSize),
		k:      cfg.Burst,
	}
}

// Name implements Scheduler.
func (q *AIFO) Name() string { return "aifo" }

// Len implements Scheduler.
func (q *AIFO) Len() int { return q.q.n }

// Bytes implements Scheduler.
func (q *AIFO) Bytes() int { return q.bytes }

// Stats returns a snapshot of the scheduler's counters.
func (q *AIFO) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *AIFO) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Enqueue implements Scheduler with quantile-based admission. A refusal
// for lack of buffer space reports CauseOverflow; a refusal decided by
// the quantile rule — the packet would have fit, but its rank is too poor
// for the remaining headroom — reports CauseAdmission.
func (q *AIFO) Enqueue(p *pkt.Packet) bool {
	cap := q.cfg.capacity()
	admit := q.bytes+p.Size <= cap
	cause := CauseOverflow
	if admit && q.wfill == q.cap() {
		// Window warm: apply the quantile admission rule.
		quant := q.quantile(p.Rank)
		headroom := float64(cap-q.bytes) / float64(cap)
		if quant > headroom/(1-q.k) {
			admit = false
			cause = CauseAdmission
		}
	}
	// The rank sample is recorded for every arrival, admitted or not, so
	// the window reflects the offered load.
	q.observe(p.Rank)
	if !admit {
		q.stats.Dropped++
		q.cfg.Metrics.onDrop()
		q.cfg.drop(p, cause)
		return false
	}
	q.q.push(p)
	q.bytes += p.Size
	q.stats.Enqueued++
	q.cfg.Metrics.onEnqueue(p, q.q.n, q.bytes)
	return true
}

func (q *AIFO) cap() int { return len(q.window) }

func (q *AIFO) observe(rank int64) {
	q.window[q.wpos] = rank
	q.wpos = (q.wpos + 1) % len(q.window)
	if q.wfill < len(q.window) {
		q.wfill++
	}
}

// quantile returns the fraction of windowed ranks strictly smaller than r.
func (q *AIFO) quantile(r int64) float64 {
	if q.wfill == 0 {
		return 0
	}
	smaller := 0
	for i := 0; i < q.wfill; i++ {
		if q.window[i] < r {
			smaller++
		}
	}
	return float64(smaller) / float64(q.wfill)
}

// Reset implements Scheduler: the queue, the rank window, and the counters
// all return to their freshly-constructed state (window buffer kept warm).
func (q *AIFO) Reset() {
	q.q.reset()
	q.bytes = 0
	q.wpos = 0
	q.wfill = 0
	q.stats = Stats{}
}

// Dequeue implements Scheduler.
func (q *AIFO) Dequeue() *pkt.Packet {
	p := q.q.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Size
	q.stats.Dequeued++
	q.cfg.Metrics.onDequeue(p, q.q.n, q.bytes)
	return p
}
