package sched

import (
	"math/rand"
	"testing"

	"qvisor/internal/pkt"
)

func TestDRRSingleFlowIsFIFO(t *testing.T) {
	d := NewDRR(DRRConfig{})
	for i := uint64(1); i <= 5; i++ {
		d.Enqueue(&pkt.Packet{ID: i, Flow: 7, Size: 100})
	}
	for i := uint64(1); i <= 5; i++ {
		p := d.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("FIFO within flow broken at %d: %v", i, p)
		}
	}
	if d.Dequeue() != nil {
		t.Fatal("empty DRR should return nil")
	}
}

func TestDRRAlternatesEqualFlows(t *testing.T) {
	d := NewDRR(DRRConfig{QuantumBytes: 100})
	for i := 0; i < 10; i++ {
		d.Enqueue(&pkt.Packet{Flow: 1, Size: 100})
		d.Enqueue(&pkt.Packet{Flow: 2, Size: 100})
	}
	counts := map[uint64]int{}
	for i := 0; i < 10; i++ {
		counts[d.Dequeue().Flow]++
	}
	if counts[1] != 5 || counts[2] != 5 {
		t.Fatalf("unequal service: %v", counts)
	}
}

func TestDRRByteFairnessUnequalSizes(t *testing.T) {
	// Flow 1 sends 1500 B packets, flow 2 sends 300 B packets: byte
	// shares must even out (flow 2 gets ~5 packets per flow-1 packet).
	d := NewDRR(DRRConfig{Config: Config{CapacityBytes: 1 << 30}, QuantumBytes: 1500})
	for i := 0; i < 200; i++ {
		d.Enqueue(&pkt.Packet{Flow: 1, Size: 1500})
	}
	for i := 0; i < 1000; i++ {
		d.Enqueue(&pkt.Packet{Flow: 2, Size: 300})
	}
	bytes := map[uint64]int{}
	served := 0
	for served < 150_000 { // drain half the backlog by bytes
		p := d.Dequeue()
		bytes[p.Flow] += p.Size
		served += p.Size
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("byte shares skewed: %v (ratio %.2f)", bytes, ratio)
	}
}

func TestDRRKeyByTenant(t *testing.T) {
	d := NewDRR(DRRConfig{
		KeyOf:        func(p *pkt.Packet) uint64 { return uint64(p.Tenant) },
		QuantumBytes: 100,
	})
	// Tenant 1 has two flows, tenant 2 one: per-tenant fairness.
	for i := 0; i < 20; i++ {
		d.Enqueue(&pkt.Packet{Tenant: 1, Flow: uint64(i % 2), Size: 100})
		d.Enqueue(&pkt.Packet{Tenant: 2, Flow: 9, Size: 100})
	}
	counts := map[pkt.TenantID]int{}
	for i := 0; i < 20; i++ {
		counts[d.Dequeue().Tenant]++
	}
	if counts[1] != 10 || counts[2] != 10 {
		t.Fatalf("tenant shares: %v", counts)
	}
}

func TestDRRDropWhenFull(t *testing.T) {
	drops := 0
	d := NewDRR(DRRConfig{Config: Config{CapacityBytes: 100, OnDrop: func(*pkt.Packet, DropCause) { drops++ }}})
	d.Enqueue(&pkt.Packet{Flow: 1, Size: 100})
	if d.Enqueue(&pkt.Packet{Flow: 2, Size: 1}) {
		t.Fatal("over-capacity accepted")
	}
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestDRRConservationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	drops := 0
	d := NewDRR(DRRConfig{Config: Config{CapacityBytes: 5000, OnDrop: func(*pkt.Packet, DropCause) { drops++ }}})
	sent, recv := 0, 0
	for i := 0; i < 2000; i++ {
		d.Enqueue(&pkt.Packet{Flow: uint64(rng.Intn(8)), Size: 50 + rng.Intn(200)})
		sent++
		if rng.Intn(2) == 0 && d.Dequeue() != nil {
			recv++
		}
	}
	for d.Dequeue() != nil {
		recv++
	}
	if sent != recv+drops {
		t.Fatalf("conservation: sent=%d recv=%d drops=%d", sent, recv, drops)
	}
	if d.Len() != 0 || d.Bytes() != 0 {
		t.Fatalf("drained DRR not empty: %s", d)
	}
}

func BenchmarkDRR(b *testing.B) {
	d := NewDRR(DRRConfig{Config: Config{CapacityBytes: 1 << 30}})
	rng := rand.New(rand.NewSource(1))
	p := &pkt.Packet{Size: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Flow = uint64(rng.Intn(64))
		d.Enqueue(p)
		if d.Len() > 512 {
			d.Dequeue()
		}
	}
}
