package sched

import (
	"fmt"

	"qvisor/internal/pkt"
)

// QueueMapper assigns a packet to one of n strict-priority queues
// (0 = highest priority). Mappers are synthesized by QVISOR's deployment
// layer (§3.4: "we can map traffic from T1 to the three highest-priority
// queues, and traffic from T2 and T3 to the two lowest-priority queues").
type QueueMapper func(p *pkt.Packet) int

// MQ is a bank of strict-priority FIFO queues — the scheduler shape exposed
// by commodity switch ASICs. Dequeue always serves the lowest-index
// non-empty queue. Each queue gets an equal share of the configured buffer.
type MQ struct {
	cfg    Config
	mapper QueueMapper
	queues []ring
	qbytes []int
	bytes  int
	n      int
	stats  Stats
	// lastRank tracks the rank of the most recent dequeue for inversion
	// accounting.
	lastRank    int64
	hasLast     bool
	perQueueCap int
}

// NewMQ returns a bank of n strict-priority FIFO queues using mapper to
// direct arrivals. It panics if n < 1 or mapper is nil.
func NewMQ(cfg Config, n int, mapper QueueMapper) *MQ {
	if n < 1 {
		panic(fmt.Sprintf("sched: NewMQ with n=%d", n))
	}
	if mapper == nil {
		panic("sched: NewMQ with nil mapper")
	}
	return &MQ{
		cfg:         cfg,
		mapper:      mapper,
		queues:      make([]ring, n),
		qbytes:      make([]int, n),
		n:           n,
		perQueueCap: cfg.capacity() / n,
	}
}

// Name implements Scheduler.
func (q *MQ) Name() string { return fmt.Sprintf("mq%d", q.n) }

// NumQueues returns the number of priority queues.
func (q *MQ) NumQueues() int { return q.n }

// Len implements Scheduler.
func (q *MQ) Len() int {
	total := 0
	for i := range q.queues {
		total += q.queues[i].n
	}
	return total
}

// Bytes implements Scheduler.
func (q *MQ) Bytes() int { return q.bytes }

// QueueLen returns the packet count of queue i.
func (q *MQ) QueueLen(i int) int { return q.queues[i].n }

// Stats returns a snapshot of the scheduler's counters.
func (q *MQ) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *MQ) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Enqueue implements Scheduler. The mapper chooses the queue; out-of-range
// indices clamp to the extremes. A full queue tail-drops.
func (q *MQ) Enqueue(p *pkt.Packet) bool {
	i := q.mapper(p)
	if i < 0 {
		i = 0
	}
	if i >= q.n {
		i = q.n - 1
	}
	if q.qbytes[i]+p.Size > q.perQueueCap {
		q.stats.Dropped++
		q.cfg.Metrics.onDrop()
		q.cfg.drop(p, CauseOverflow)
		return false
	}
	q.queues[i].push(p)
	q.qbytes[i] += p.Size
	q.bytes += p.Size
	q.stats.Enqueued++
	if m := q.cfg.Metrics; m != nil { // guard: Len is O(queues)
		m.onEnqueue(p, q.Len(), q.bytes)
	}
	return true
}

// Dequeue implements Scheduler: strict priority across queues.
func (q *MQ) Dequeue() *pkt.Packet {
	for i := range q.queues {
		if q.queues[i].n == 0 {
			continue
		}
		p := q.queues[i].pop()
		q.qbytes[i] -= p.Size
		q.bytes -= p.Size
		q.stats.Dequeued++
		if m := q.cfg.Metrics; m != nil { // guard: Len is O(queues)
			m.onDequeue(p, q.Len(), q.bytes)
		}
		q.noteDequeue(p.Rank)
		return p
	}
	return nil
}

// Reset implements Scheduler.
func (q *MQ) Reset() {
	for i := range q.queues {
		q.queues[i].reset()
		q.qbytes[i] = 0
	}
	q.bytes = 0
	q.lastRank = 0
	q.hasLast = false
	q.stats = Stats{}
}

// noteDequeue counts rank inversions: a dequeue whose rank exceeds a rank
// still queued anywhere. For efficiency we approximate with the classic
// "scheduled after a better packet arrived earlier" check against the
// minimum queued rank.
func (q *MQ) noteDequeue(rank int64) {
	if min, ok := q.minQueuedRank(); ok && rank > min {
		q.stats.Inversion++
		q.cfg.Metrics.onInversion()
	}
}

func (q *MQ) minQueuedRank() (int64, bool) {
	found := false
	var min int64
	for i := range q.queues {
		r := &q.queues[i]
		for j := 0; j < r.n; j++ {
			p := r.buf[(r.head+j)%len(r.buf)]
			if !found || p.Rank < min {
				min = p.Rank
				found = true
			}
		}
	}
	return min, found
}
