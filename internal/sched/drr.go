package sched

import (
	"fmt"

	"qvisor/internal/pkt"
)

// DRR is deficit round robin (Shreedhar and Varghese, SIGCOMM 1995) —
// reference [29] of the QVISOR paper and the classic O(1) fair queuing
// scheduler on commodity hardware. Packets are hashed to per-key queues
// (by flow, by tenant, ...); the scheduler visits active queues in round
// robin, each visit adding a quantum of byte credit and transmitting while
// credit lasts.
//
// DRR ignores ranks entirely: it is a dequeue-side fairness mechanism, in
// contrast to the rank-based fair queuing (STFQ) QVISOR expresses through
// the pre-processor. Both appear in the paper's lineage of fairness
// schedulers; having both allows head-to-head comparisons.
type DRR struct {
	cfg     Config
	keyOf   func(p *pkt.Packet) uint64
	quantum int

	queues map[uint64]*drrQueue
	active []*drrQueue // round-robin ring of backlogged queues
	free   []*drrQueue // recycled queue structs, reused for new keys
	cur    int
	bytes  int
	count  int
	stats  Stats
}

type drrQueue struct {
	key     uint64
	q       ring
	bytes   int
	deficit int
	queued  bool // present in the active ring
	visited bool // granted its quantum for the current visit
}

// DRRConfig parametrizes DRR.
type DRRConfig struct {
	Config
	// KeyOf maps packets to fairness keys. Nil keys by flow ID.
	KeyOf func(p *pkt.Packet) uint64
	// QuantumBytes is the per-round byte credit. Zero means 1500 (one
	// full-size packet, the paper's recommendation).
	QuantumBytes int
}

// NewDRR returns a deficit-round-robin scheduler.
func NewDRR(cfg DRRConfig) *DRR {
	keyOf := cfg.KeyOf
	if keyOf == nil {
		keyOf = func(p *pkt.Packet) uint64 { return p.Flow }
	}
	quantum := cfg.QuantumBytes
	if quantum <= 0 {
		quantum = 1500
	}
	return &DRR{
		cfg:     cfg.Config,
		keyOf:   keyOf,
		quantum: quantum,
		queues:  make(map[uint64]*drrQueue),
	}
}

// Name implements Scheduler.
func (d *DRR) Name() string { return "drr" }

// Len implements Scheduler.
func (d *DRR) Len() int { return d.count }

// Bytes implements Scheduler.
func (d *DRR) Bytes() int { return d.bytes }

// Stats returns a snapshot of the counters.
func (d *DRR) Stats() Stats { return d.stats }

// SetMetrics implements MetricsSetter.
func (d *DRR) SetMetrics(m *Metrics) { d.cfg.Metrics = m }

// Enqueue implements Scheduler.
func (d *DRR) Enqueue(p *pkt.Packet) bool {
	if d.bytes+p.Size > d.cfg.capacity() {
		d.stats.Dropped++
		d.cfg.Metrics.onDrop()
		d.cfg.drop(p, CauseOverflow)
		return false
	}
	key := d.keyOf(p)
	q, ok := d.queues[key]
	if !ok {
		if n := len(d.free); n > 0 {
			q = d.free[n-1]
			d.free[n-1] = nil
			d.free = d.free[:n-1]
			q.key = key
		} else {
			q = &drrQueue{key: key}
		}
		d.queues[key] = q
	}
	q.q.push(p)
	q.bytes += p.Size
	d.bytes += p.Size
	d.count++
	if !q.queued {
		q.queued = true
		q.deficit = 0
		d.active = append(d.active, q)
	}
	d.stats.Enqueued++
	d.cfg.Metrics.onEnqueue(p, d.count, d.bytes)
	return true
}

// Dequeue implements Scheduler: visit active queues round-robin, spending
// deficit credit.
func (d *DRR) Dequeue() *pkt.Packet {
	if d.count == 0 {
		return nil
	}
	for {
		if d.cur >= len(d.active) {
			d.cur = 0
		}
		q := d.active[d.cur]
		if q.q.n == 0 {
			// Queue drained since its last visit: drop from the ring.
			d.unlink(q)
			continue
		}
		// A visit grants exactly one quantum; the queue then serves
		// packets until its deficit runs out, and yields.
		if !q.visited {
			q.deficit += d.quantum
			q.visited = true
		}
		head := q.q.peek()
		if q.deficit < head.Size {
			q.visited = false // visit over; next arrival grants anew
			d.cur++
			continue
		}
		p := q.q.pop()
		q.deficit -= p.Size
		q.bytes -= p.Size
		d.bytes -= p.Size
		d.count--
		d.stats.Dequeued++
		d.cfg.Metrics.onDequeue(p, d.count, d.bytes)
		if q.q.n == 0 {
			// Empty queues forfeit their deficit (standard DRR).
			d.unlink(q)
			if len(d.queues) > 1024 {
				// Bound idle-state growth; the struct (and its warm ring)
				// is recycled for the next fresh key.
				delete(d.queues, q.key)
				d.free = append(d.free, q)
			}
		}
		return p
	}
}

// unlink removes the queue at the current ring position.
func (d *DRR) unlink(q *drrQueue) {
	q.queued = false
	q.visited = false
	q.deficit = 0
	d.active = append(d.active[:d.cur], d.active[d.cur+1:]...)
}

// Reset implements Scheduler: all per-key queues are emptied and returned
// to the struct free list, so a reused DRR serves fresh keys without
// touching the allocator.
func (d *DRR) Reset() {
	for key, q := range d.queues {
		q.q.reset()
		q.bytes = 0
		q.deficit = 0
		q.queued = false
		q.visited = false
		delete(d.queues, key)
		d.free = append(d.free, q)
	}
	for i := range d.active {
		d.active[i] = nil
	}
	d.active = d.active[:0]
	d.cur = 0
	d.bytes = 0
	d.count = 0
	d.stats = Stats{}
}

// String implements fmt.Stringer for debugging.
func (d *DRR) String() string {
	return fmt.Sprintf("drr{queues=%d active=%d pkts=%d}", len(d.queues), len(d.active), d.count)
}
