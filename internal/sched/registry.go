package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Factory builds a scheduler from a Config. Factories let experiment
// harnesses and CLI tools select schedulers by name.
type Factory func(cfg Config) Scheduler

var factories = map[string]Factory{
	"pifo":      func(cfg Config) Scheduler { return NewPIFO(cfg) },
	"fifo":      func(cfg Config) Scheduler { return NewFIFO(cfg) },
	"aifo":      func(cfg Config) Scheduler { return NewAIFO(AIFOConfig{Config: cfg}) },
	"drr":       func(cfg Config) Scheduler { return NewDRR(DRRConfig{Config: cfg}) },
	"admission": func(cfg Config) Scheduler { return NewAdmission(AdmissionConfig{Config: cfg}) },
	"bucketq":   func(cfg Config) Scheduler { return NewBucketQ(cfg, DefaultBucketQBuckets, 1) },
}

// DefaultBucketQBuckets is the ring size a bare "bucketq" spec gets: 1024
// single-rank buckets, deep enough that typical joint-policy output spans
// fit the horizon without touching the overflow FIFO.
const DefaultBucketQBuckets = 1024

// New builds a scheduler by name. Recognized names:
//
//	pifo              ideal push-in first-out queue
//	fifo              single tail-drop FIFO
//	aifo              admission-controlled FIFO
//	drr               deficit round robin, keyed by flow
//	admission         admission-aware SP queues (8), dynamic bounds
//	admission:N       same, over N strict-priority queues
//	sppifo:N          SP-PIFO over N strict-priority queues
//	calendar:N:W      calendar queue, N buckets of rank width W
//	bucketq           FFS bucket queue, 1024 buckets of rank width 1
//	bucketq:B         same, over B buckets (1 ≤ B ≤ 4096)
//	bucketq:B,H       B buckets covering a rank horizon of H (width ⌈H/B⌉)
//
// Unknown names return an error listing the choices.
func New(name string, cfg Config) (Scheduler, error) {
	if f, ok := factories[name]; ok {
		return f(cfg), nil
	}
	parts := strings.Split(name, ":")
	switch parts[0] {
	case "admission":
		if len(parts) == 2 {
			n, err := strconv.Atoi(parts[1])
			if err == nil && n >= 1 {
				return NewAdmission(AdmissionConfig{Config: cfg, Queues: n}), nil
			}
		}
		return nil, fmt.Errorf("sched: bad admission spec %q (want admission:N)", name)
	case "sppifo":
		if len(parts) == 2 {
			n, err := strconv.Atoi(parts[1])
			if err == nil && n >= 1 {
				return NewSPPIFO(cfg, n), nil
			}
		}
		return nil, fmt.Errorf("sched: bad sppifo spec %q (want sppifo:N)", name)
	case "calendar":
		if len(parts) == 3 {
			n, err1 := strconv.Atoi(parts[1])
			w, err2 := strconv.ParseInt(parts[2], 10, 64)
			if err1 == nil && err2 == nil && n >= 1 && w >= 1 {
				return NewCalendar(cfg, n, w), nil
			}
		}
		return nil, fmt.Errorf("sched: bad calendar spec %q (want calendar:N:W)", name)
	case "bucketq":
		if len(parts) == 2 {
			sub := strings.Split(parts[1], ",")
			b, err := strconv.Atoi(sub[0])
			if err == nil && b >= 1 && b <= maxBucketQBuckets {
				switch len(sub) {
				case 1:
					return NewBucketQ(cfg, b, 1), nil
				case 2:
					h, err := strconv.ParseInt(sub[1], 10, 64)
					if err == nil && h >= 1 {
						width := (h + int64(b) - 1) / int64(b)
						if width < 1 {
							width = 1
						}
						return NewBucketQ(cfg, b, width), nil
					}
				}
			}
		}
		return nil, fmt.Errorf("sched: bad bucketq spec %q (want bucketq:B or bucketq:B,H)", name)
	}
	return nil, fmt.Errorf("sched: unknown scheduler %q (choices: %s, admission:N, sppifo:N, calendar:N:W, bucketq:B[,H])",
		name, strings.Join(Names(), ", "))
}

// Names lists the registered simple scheduler names, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
