package sched

import (
	"fmt"

	"qvisor/internal/pkt"
)

// Calendar approximates a PIFO with rotating priority buckets, in the style
// of programmable calendar queues (Sharma et al., NSDI 2020) — reference
// [28] of the QVISOR paper. Ranks are bucketed at a fixed granularity; the
// scheduler drains the current bucket, then rotates to the next. Packets
// whose rank falls before the current bucket join it (no past buckets);
// ranks beyond the calendar horizon clamp to the last bucket.
type Calendar struct {
	cfg     Config
	buckets []ring
	bbytes  []int
	width   int64 // rank units per bucket
	n       int
	cur     int   // index of the current bucket
	base    int64 // smallest rank mapped to the current bucket
	bytes   int
	stats   Stats
}

// NewCalendar returns a calendar queue with n buckets of the given rank
// width. It panics if n < 1 or width < 1.
func NewCalendar(cfg Config, n int, width int64) *Calendar {
	if n < 1 {
		panic(fmt.Sprintf("sched: NewCalendar with n=%d", n))
	}
	if width < 1 {
		panic(fmt.Sprintf("sched: NewCalendar with width=%d", width))
	}
	return &Calendar{
		cfg:     cfg,
		buckets: make([]ring, n),
		bbytes:  make([]int, n),
		width:   width,
		n:       n,
	}
}

// Name implements Scheduler.
func (q *Calendar) Name() string { return fmt.Sprintf("calendar%d", q.n) }

// Len implements Scheduler.
func (q *Calendar) Len() int {
	total := 0
	for i := range q.buckets {
		total += q.buckets[i].n
	}
	return total
}

// Bytes implements Scheduler.
func (q *Calendar) Bytes() int { return q.bytes }

// Stats returns a snapshot of the scheduler's counters.
func (q *Calendar) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *Calendar) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Enqueue implements Scheduler.
func (q *Calendar) Enqueue(p *pkt.Packet) bool {
	if q.bytes+p.Size > q.cfg.capacity() {
		q.stats.Dropped++
		q.cfg.Metrics.onDrop()
		q.cfg.drop(p, CauseOverflow)
		return false
	}
	off := 0
	if p.Rank > q.base {
		off = int((p.Rank - q.base) / q.width)
		if off >= q.n {
			off = q.n - 1 // beyond horizon: last bucket
		}
	}
	i := (q.cur + off) % q.n
	q.buckets[i].push(p)
	q.bbytes[i] += p.Size
	q.bytes += p.Size
	q.stats.Enqueued++
	if m := q.cfg.Metrics; m != nil { // guard: Len is O(buckets)
		m.onEnqueue(p, q.Len(), q.bytes)
	}
	return true
}

// Dequeue implements Scheduler: drain the current bucket, rotating forward
// past empty buckets.
func (q *Calendar) Dequeue() *pkt.Packet {
	if q.bytes == 0 {
		return nil
	}
	for q.buckets[q.cur].n == 0 {
		q.rotate()
	}
	p := q.buckets[q.cur].pop()
	q.bbytes[q.cur] -= p.Size
	q.bytes -= p.Size
	q.stats.Dequeued++
	if m := q.cfg.Metrics; m != nil { // guard: Len is O(buckets)
		m.onDequeue(p, q.Len(), q.bytes)
	}
	return p
}

func (q *Calendar) rotate() {
	q.cur = (q.cur + 1) % q.n
	q.base += q.width
}

// Reset implements Scheduler: buckets are emptied and the rotation rewinds
// to bucket 0 / base rank 0, with the ring buffers kept warm.
func (q *Calendar) Reset() {
	for i := range q.buckets {
		q.buckets[i].reset()
		q.bbytes[i] = 0
	}
	q.cur = 0
	q.base = 0
	q.bytes = 0
	q.stats = Stats{}
}
