package sched

import (
	"math/rand"
	"strings"
	"testing"

	"qvisor/internal/pkt"
)

// The bucket queue's contract, pinned by the tests below:
//
//   - the two-level FFS bitmap always agrees with a naive linear scan of
//     bucket occupancy, from every start index, across wrap-around and
//     overflow rebasing;
//   - dequeue order is exact up to rank quantization: in batch mode the
//     quantized bucket index is non-decreasing, and packets quantizing to
//     the same bucket leave in arrival order (FIFO within a bucket);
//   - conservation: every offered packet is either dequeued or reported
//     through exactly one drop callback — never both, never neither;
//   - the whole structure behaves identically to a reference model that
//     uses linear scans instead of bitmaps;
//   - the steady-state hot path allocates nothing (TestAllocBudgetSchedulers
//     and TestResetRoundTrip cover this via resetCases).

// naiveScan is the obviously-correct reference for findFirst: a linear walk
// of the per-bucket chain heads.
func naiveScan(q *BucketQ, start int) int {
	for i := start; i < q.nb; i++ {
		if q.head[i] != nil {
			return i
		}
	}
	return -1
}

// TestBucketQFindFirstProperty cross-checks the hierarchical bitmap against
// the naive scan from every possible start index, after every mutation of a
// randomized enqueue/dequeue sequence. Bucket counts straddle the 64-bit
// word boundaries so the summary level and the masked first word are both
// exercised, and enough dequeues run that the ring wraps and the overflow
// FIFO rebases.
func TestBucketQFindFirstProperty(t *testing.T) {
	for _, nb := range []int{1, 63, 64, 65, 130} {
		rng := rand.New(rand.NewSource(int64(nb)))
		q := NewBucketQ(Config{CapacityBytes: 1 << 30}, nb, 3)
		check := func(step int) {
			for start := 0; start < nb; start++ {
				if got, want := q.findFirst(start), naiveScan(q, start); got != want {
					t.Fatalf("nb=%d step %d: findFirst(%d)=%d, naive scan says %d",
						nb, step, start, got, want)
				}
			}
		}
		queued := 0
		for step := 0; step < 4000; step++ {
			if queued == 0 || rng.Intn(3) != 0 {
				// Ranks span several horizons so enqueues hit past-rank
				// clamping, in-ring placement, and the overflow FIFO.
				if q.Enqueue(mkpkt(rng.Int63n(int64(nb)*9), 100)) {
					queued++
				}
			} else {
				if q.Dequeue() == nil {
					t.Fatalf("nb=%d step %d: dequeue returned nil with %d queued", nb, step, queued)
				}
				queued--
			}
			check(step)
		}
	}
}

// naiveBucketQ reimplements BucketQ's exact placement and rotation rules
// with slices and linear scans — no bitmaps, no chains — as a differential
// reference model.
type naiveBucketQ struct {
	nb       int
	width    int64
	base     int64
	cur      int
	buckets  [][]*pkt.Packet
	overflow []*pkt.Packet
}

func (m *naiveBucketQ) enqueue(p *pkt.Packet) {
	off := int64(0)
	if p.Rank > m.base {
		off = (p.Rank - m.base) / m.width
	}
	if off >= int64(m.nb) {
		m.overflow = append(m.overflow, p)
		return
	}
	m.buckets[(m.cur+int(off))%m.nb] = append(m.buckets[(m.cur+int(off))%m.nb], p)
}

func (m *naiveBucketQ) dequeue() *pkt.Packet {
	for tries := 0; tries < 2; tries++ {
		for d := 0; d < m.nb; d++ {
			i := (m.cur + d) % m.nb
			if len(m.buckets[i]) > 0 {
				m.base += int64(d) * m.width
				m.cur = i
				p := m.buckets[i][0]
				m.buckets[i] = m.buckets[i][1:]
				return p
			}
		}
		if len(m.overflow) == 0 {
			return nil
		}
		// Rebase exactly like the real scheduler: width-aligned jump to the
		// earliest overflow rank, re-file in arrival order.
		min := m.overflow[0].Rank
		for _, p := range m.overflow {
			if p.Rank < min {
				min = p.Rank
			}
		}
		m.base += (min - m.base) / m.width * m.width
		m.cur = 0
		pending := m.overflow
		m.overflow = nil
		for _, p := range pending {
			m.enqueue(p)
		}
	}
	return nil
}

// TestBucketQMatchesNaiveModel drives the real scheduler and the linear-
// scan reference model through identical randomized workloads and requires
// identical dequeue sequences — packet for packet, including overflow
// rebases and ring wrap-around.
func TestBucketQMatchesNaiveModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(100)
		width := int64(1 + rng.Intn(16))
		q := NewBucketQ(Config{CapacityBytes: 1 << 30}, nb, width)
		m := &naiveBucketQ{nb: nb, width: width, buckets: make([][]*pkt.Packet, nb)}
		var id uint64
		queued := 0
		for step := 0; step < 5000; step++ {
			if queued == 0 || rng.Intn(3) != 0 {
				id++
				rank := rng.Int63n(int64(nb) * width * 7)
				q.Enqueue(&pkt.Packet{ID: id, Rank: rank, Size: 100})
				m.enqueue(&pkt.Packet{ID: id, Rank: rank, Size: 100})
				queued++
			} else {
				got, want := q.Dequeue(), m.dequeue()
				if got == nil || want == nil {
					t.Fatalf("seed %d step %d: nil dequeue (real=%v model=%v)", seed, step, got, want)
				}
				if got.ID != want.ID {
					t.Fatalf("seed %d step %d: dequeued packet %d (rank %d), model expects %d (rank %d)",
						seed, step, got.ID, got.Rank, want.ID, want.Rank)
				}
				queued--
			}
		}
		for got, want := q.Dequeue(), m.dequeue(); got != nil || want != nil; got, want = q.Dequeue(), m.dequeue() {
			if got == nil || want == nil || got.ID != want.ID {
				t.Fatalf("seed %d drain: real=%v model=%v", seed, got, want)
			}
		}
	}
}

// TestBucketQFIFOWithinBucket: packets quantizing to the same bucket leave
// in arrival order.
func TestBucketQFIFOWithinBucket(t *testing.T) {
	q := NewBucketQ(Config{}, 16, 10)
	for i := uint64(0); i < 20; i++ {
		// Ranks 30..39 all land in bucket 3.
		q.Enqueue(&pkt.Packet{ID: i, Rank: 30 + int64(i)%10, Size: 100})
	}
	for i := uint64(0); i < 20; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("dequeue %d: got %+v, want ID %d (FIFO within bucket)", i, p, i)
		}
	}
}

// TestBucketQBatchDrainOrder: enqueue everything, then drain — the
// quantized bucket index floor(rank/width) must be non-decreasing (the
// structural theorem the conformance suite holds the backend to).
func TestBucketQBatchDrainOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewBucketQ(Config{CapacityBytes: 1 << 30}, 64, 5)
	for i := 0; i < 2000; i++ {
		q.Enqueue(mkpkt(rng.Int63n(64*5), 100))
	}
	prev := int64(-1)
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		b := p.Rank / 5
		if b < prev {
			t.Fatalf("batch drain visited bucket %d after %d (rank %d)", b, prev, p.Rank)
		}
		prev = b
	}
}

// TestBucketQOverflowRebase: ranks beyond the horizon wait in the overflow
// FIFO and come back, bucket-ordered, after the ring drains.
func TestBucketQOverflowRebase(t *testing.T) {
	q := NewBucketQ(Config{}, 8, 1) // horizon covers ranks [0,8)
	q.Enqueue(mkpkt(3, 100))
	q.Enqueue(mkpkt(100, 100))
	q.Enqueue(mkpkt(50, 100))
	q.Enqueue(mkpkt(51, 100))
	if q.OverflowLen() != 3 {
		t.Fatalf("OverflowLen=%d, want 3", q.OverflowLen())
	}
	var got []int64
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		got = append(got, p.Rank)
	}
	want := []int64{3, 50, 51, 100}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
	if q.Len() != 0 || q.Bytes() != 0 || q.OverflowLen() != 0 {
		t.Fatalf("after drain: Len=%d Bytes=%d OverflowLen=%d, want zeros", q.Len(), q.Bytes(), q.OverflowLen())
	}
}

// TestBucketQConservation: with a tight buffer, every offered packet is
// either dequeued or reported through exactly one drop callback, and the
// pool balances.
func TestBucketQConservation(t *testing.T) {
	pool := pkt.NewPool()
	dropped := 0
	q := NewBucketQ(Config{
		CapacityBytes: 16 * 1500,
		OnDrop: func(p *pkt.Packet, cause DropCause) {
			if cause != CauseOverflow {
				t.Fatalf("drop cause %v, want %v", cause, CauseOverflow)
			}
			dropped++
			pool.Put(p)
		},
	}, 32, 4)
	rng := rand.New(rand.NewSource(11))
	offered, dequeued := 0, 0
	for i := 0; i < 3000; i++ {
		p := pool.Get()
		p.Rank = rng.Int63n(500)
		p.Size = 1500
		offered++
		q.Enqueue(p)
		if rng.Intn(4) == 0 {
			if got := q.Dequeue(); got != nil {
				dequeued++
				pool.Put(got)
			}
		}
	}
	for got := q.Dequeue(); got != nil; got = q.Dequeue() {
		dequeued++
		pool.Put(got)
	}
	if dequeued+dropped != offered {
		t.Fatalf("%d dequeued + %d dropped != %d offered", dequeued, dropped, offered)
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("pool leaked %d packets", n)
	}
	if dropped == 0 {
		t.Fatal("tight buffer produced no drops; the test exercised nothing")
	}
}

// TestSchedulerRegistrySpellings is the table-driven parse-coverage wall:
// every registered spelling — simple names and parameterized specs, valid
// and malformed — so a new backend cannot ship without registry coverage.
func TestSchedulerRegistrySpellings(t *testing.T) {
	cases := []struct {
		spec    string
		ok      bool
		errPart string // substring the error must contain when !ok
	}{
		{"pifo", true, ""},
		{"fifo", true, ""},
		{"aifo", true, ""},
		{"drr", true, ""},
		{"admission", true, ""},
		{"admission:4", true, ""},
		{"admission:0", false, "bad admission spec"},
		{"admission:x", false, "bad admission spec"},
		{"admission:", false, "bad admission spec"},
		{"admission:4:4", false, "bad admission spec"},
		{"sppifo:8", true, ""},
		{"sppifo", false, "bad sppifo spec"},
		{"sppifo:0", false, "bad sppifo spec"},
		{"sppifo:x", false, "bad sppifo spec"},
		{"calendar:16:100", true, ""},
		{"calendar", false, "bad calendar spec"},
		{"calendar:16", false, "bad calendar spec"},
		{"calendar:16:0", false, "bad calendar spec"},
		{"calendar:x:1", false, "bad calendar spec"},
		{"bucketq", true, ""},
		{"bucketq:64", true, ""},
		{"bucketq:1", true, ""},
		{"bucketq:4096", true, ""},
		{"bucketq:64,1024", true, ""},
		{"bucketq:64,1", true, ""},
		{"bucketq:0", false, "bad bucketq spec"},
		{"bucketq:4097", false, "bad bucketq spec"},
		{"bucketq:x", false, "bad bucketq spec"},
		{"bucketq:", false, "bad bucketq spec"},
		{"bucketq:64,0", false, "bad bucketq spec"},
		{"bucketq:64,x", false, "bad bucketq spec"},
		{"bucketq:64,8,2", false, "bad bucketq spec"},
		{"bucketq:64:8", false, "bad bucketq spec"},
		{"nope", false, "unknown scheduler"},
		{"", false, "unknown scheduler"},
	}
	for _, tc := range cases {
		s, err := New(tc.spec, Config{})
		if tc.ok {
			if err != nil {
				t.Errorf("New(%q): unexpected error %v", tc.spec, err)
				continue
			}
			if s == nil || s.Name() == "" {
				t.Errorf("New(%q): nil or nameless scheduler", tc.spec)
			}
			continue
		}
		if err == nil {
			t.Errorf("New(%q): want error containing %q, got scheduler %s", tc.spec, tc.errPart, s.Name())
			continue
		}
		if tc.errPart != "" && !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("New(%q): error %q does not contain %q", tc.spec, err, tc.errPart)
		}
	}
}

// TestBucketQSpecSizing: the B,H spelling derives the bucket width from
// the horizon.
func TestBucketQSpecSizing(t *testing.T) {
	s, err := New("bucketq:64,1024", Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := s.(*BucketQ)
	if q.Buckets() != 64 || q.Width() != 16 {
		t.Fatalf("bucketq:64,1024 built %d buckets of width %d, want 64 of 16", q.Buckets(), q.Width())
	}
	s, err = New("bucketq:64,10", Config{}) // horizon narrower than the ring
	if err != nil {
		t.Fatal(err)
	}
	q = s.(*BucketQ)
	if q.Buckets() != 64 || q.Width() != 1 {
		t.Fatalf("bucketq:64,10 built %d buckets of width %d, want 64 of 1", q.Buckets(), q.Width())
	}
}

// BenchmarkBucketQHotPath compares the O(1) bucket queue against the
// heap-based PIFO on the identical steady-state workload with 64k packets
// queued — the regime where the heap's O(log n) per operation shows. Run
// with -benchmem: the budget is 0 allocs/op for both.
func BenchmarkBucketQHotPath(b *testing.B) {
	const backlog = 64 * 1024
	run := func(b *testing.B, s Scheduler) {
		rng := rand.New(rand.NewSource(1))
		pkts := make([]*pkt.Packet, backlog)
		for i := range pkts {
			pkts[i] = &pkt.Packet{ID: uint64(i), Rank: rng.Int63n(1 << 20), Size: 100}
			if !s.Enqueue(pkts[i]) {
				b.Fatal("backlog enqueue refused; raise CapacityBytes")
			}
		}
		// Ranks drift forward by random increments (the timer-wheel
		// workload): the backlog's rank spread stays far below the bucket
		// horizon while the ring rotates through it continuously.
		incs := make([]int64, 4096)
		for i := range incs {
			incs[i] = rng.Int63n(1 << 14)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := s.Dequeue()
			p.Rank += incs[i&4095]
			s.Enqueue(p)
		}
	}
	b.Run("bucketq", func(b *testing.B) {
		run(b, NewBucketQ(Config{CapacityBytes: 1 << 30}, 4096, 256))
	})
	b.Run("pifo", func(b *testing.B) {
		run(b, NewPIFO(Config{CapacityBytes: 1 << 30}))
	})
}
