package sched

import (
	"qvisor/internal/pkt"
)

// PIFO is an ideal push-in first-out queue: packets are dequeued in
// non-decreasing rank order, with FIFO order among equal ranks. This is the
// abstraction QVISOR offers tenants ("tenants have the illusion that their
// traffic is scheduled by a PIFO queue", §1) and the scheduler used in the
// paper's evaluation (§4).
//
// When the buffer is full, PIFO keeps the highest-priority set of packets:
// an arriving packet with a better (lower) rank than the currently worst
// queued packet evicts that packet; otherwise the arrival is dropped. This
// matches pFabric's drop-worst buffer policy.
type PIFO struct {
	cfg   Config
	h     pifoHeap
	seq   uint64
	bytes int
	stats Stats
}

// NewPIFO returns an empty PIFO with the given configuration.
func NewPIFO(cfg Config) *PIFO {
	return &PIFO{cfg: cfg}
}

type pifoEntry struct {
	p   *pkt.Packet
	seq uint64
}

// pifoHeap is a hand-rolled binary min-heap of value entries. The stdlib
// container/heap is avoided on purpose: pushing a value type through its
// `any` interface boxes the entry on every Enqueue — one heap allocation
// per packet — which would break the zero-allocation data-plane budget.
type pifoHeap []pifoEntry

func (h pifoHeap) less(i, j int) bool {
	if h[i].p.Rank != h[j].p.Rank {
		return h[i].p.Rank < h[j].p.Rank
	}
	return h[i].seq < h[j].seq
}

func (h pifoHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h pifoHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h *pifoHeap) push(e pifoEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h *pifoHeap) pop() pifoEntry {
	old := *h
	n := len(old)
	e := old[0]
	old[0] = old[n-1]
	old[n-1] = pifoEntry{}
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return e
}

// remove deletes the entry at index i, preserving heap order.
func (h *pifoHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old[i] = old[n]
	}
	old[n] = pifoEntry{}
	*h = old[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
}

// Name implements Scheduler.
func (q *PIFO) Name() string { return "pifo" }

// Len implements Scheduler.
func (q *PIFO) Len() int { return len(q.h) }

// Bytes implements Scheduler.
func (q *PIFO) Bytes() int { return q.bytes }

// Stats returns a snapshot of the scheduler's counters.
func (q *PIFO) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *PIFO) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Enqueue implements Scheduler.
func (q *PIFO) Enqueue(p *pkt.Packet) bool {
	cap := q.cfg.capacity()
	for q.bytes+p.Size > cap {
		// Buffer full: keep the best-ranked packets. Evict the worst
		// queued packet if the arrival beats it, otherwise drop the
		// arrival. Ties favor the queued packet (FIFO among equals).
		wi := q.worstIndex()
		if wi < 0 || q.h[wi].p.Rank <= p.Rank {
			q.stats.Dropped++
			q.cfg.Metrics.onDrop()
			q.cfg.drop(p, CauseOverflow)
			return false
		}
		ev := q.h[wi].p
		q.h.remove(wi)
		q.bytes -= ev.Size
		q.stats.Evicted++
		q.cfg.Metrics.onEvict()
		q.cfg.drop(ev, CauseEvicted)
	}
	q.h.push(pifoEntry{p: p, seq: q.seq})
	q.seq++
	q.bytes += p.Size
	q.stats.Enqueued++
	q.cfg.Metrics.onEnqueue(p, len(q.h), q.bytes)
	return true
}

// worstIndex returns the heap index of the worst (highest rank, most recent
// among ties) packet, or -1 if empty. Linear scan: buffers are shallow
// (hundreds of packets) and eviction only happens under overload.
func (q *PIFO) worstIndex() int {
	if len(q.h) == 0 {
		return -1
	}
	wi := 0
	for i := 1; i < len(q.h); i++ {
		w := q.h[wi]
		e := q.h[i]
		if e.p.Rank > w.p.Rank || (e.p.Rank == w.p.Rank && e.seq > w.seq) {
			wi = i
		}
	}
	return wi
}

// Dequeue implements Scheduler.
func (q *PIFO) Dequeue() *pkt.Packet {
	if len(q.h) == 0 {
		return nil
	}
	e := q.h.pop()
	q.bytes -= e.p.Size
	q.stats.Dequeued++
	q.cfg.Metrics.onDequeue(e.p, len(q.h), q.bytes)
	return e.p
}

// Reset implements Scheduler: it empties the heap and zeroes the counters
// while keeping the heap slice's capacity for the next run.
func (q *PIFO) Reset() {
	for i := range q.h {
		q.h[i] = pifoEntry{}
	}
	q.h = q.h[:0]
	q.seq = 0
	q.bytes = 0
	q.stats = Stats{}
}

// Peek returns the next packet without removing it, or nil when empty.
func (q *PIFO) Peek() *pkt.Packet {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0].p
}
