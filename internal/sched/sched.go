// Package sched implements the packet schedulers QVISOR targets: the ideal
// PIFO queue the paper assumes as the tenant-facing abstraction (§2, §3),
// and the "existing schedulers" of §3.4 — FIFO queues, banks of
// strict-priority FIFO queues, and published PIFO approximations that run on
// commodity switches (SP-PIFO, AIFO, calendar queues).
//
// All schedulers share the Scheduler interface: Enqueue offers a packet
// (which may be dropped), Dequeue returns the next packet to transmit.
// Lower rank means higher priority throughout.
package sched

import (
	"fmt"

	"qvisor/internal/pkt"
)

// Scheduler is an egress queueing discipline for one output port.
//
// Implementations are not safe for concurrent use; the simulator is
// single-threaded per the discrete-event engine.
//
// # Packet ownership
//
// Packets may come from a pkt.Pool, so exactly one party must release each
// one. The contract every implementation follows:
//
//   - Enqueue(p) == true: the scheduler owns p until it hands it back —
//     either from Dequeue (ownership returns to the caller) or through the
//     configured drop callback when p is evicted to admit a better packet.
//   - Enqueue(p) == false: p was refused. The scheduler invokes the drop
//     callback with p before returning; by convention the drop callback is
//     the single release point for refused and evicted packets, so the
//     enqueueing caller must NOT release p again on a false return.
//   - Dequeue: the returned packet belongs to the caller.
//   - Reset: discards queued packets without invoking the drop callback.
//     Callers that pool packets must drain the scheduler first (or reset
//     the pool alongside), otherwise the queued packets leak from the
//     pool's accounting.
//
// Schedulers never retain a packet after handing it out and never release
// packets to a pool themselves — release policy belongs to the layer that
// acquired the packet (see internal/netsim).
//
// # Policy epochs
//
// Schedulers are epoch-oblivious by design. When the control plane swaps
// in a new policy generation (core.EpochStore), packets already queued
// keep the ranks their start epoch assigned — nothing re-ranks or flushes
// a queue on a policy change. A queued packet therefore drains under its
// old epoch's ordering while newly arriving packets carry the new
// epoch's ranks; both epochs map into the same shared output rank space,
// so interleaving them in one queue is well-defined. The packet's Epoch
// label exists for conformance checking (internal/conform), not for
// scheduling decisions.
type Scheduler interface {
	// Enqueue offers p to the scheduler. It returns false when p was
	// dropped (buffer overflow or admission control). The scheduler may
	// instead evict an already-queued packet; evictions are reported via
	// the drop callback, not the return value.
	Enqueue(p *pkt.Packet) bool
	// Dequeue removes and returns the next packet, or nil when empty.
	Dequeue() *pkt.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int
	// Name returns a short identifier for logs and experiment output.
	Name() string
	// Reset empties the scheduler and zeroes its counters while keeping
	// internal buffers (rings, heap slices, node free lists) warm, so one
	// scheduler instance can be reused across simulation trials without
	// reallocating. See the ownership notes above for queued packets.
	Reset()
}

// DropCause classifies why a packet left the pipeline without being
// delivered. Every drop site — scheduler disciplines, the pifotree
// backend, fault injectors, and the network layer — reports exactly one
// cause, so traces and counters can attribute loss to a pipeline stage
// instead of a single undifferentiated "dropped" count.
type DropCause uint8

const (
	// CauseOverflow is a tail drop: the arrival did not fit in the
	// buffer and nothing queued was worth evicting for it.
	CauseOverflow DropCause = iota
	// CauseEvicted marks an already-queued packet removed to admit a
	// better-ranked arrival (PIFO drop-worst).
	CauseEvicted
	// CauseAdmission is an admission-control rejection decided by the
	// packet's rank rather than by buffer occupancy alone (AIFO's
	// quantile gate, preprocessor drop actions).
	CauseAdmission
	// CauseFault is an injected or structural failure: fault-injector
	// loss, unroutable destinations.
	CauseFault
	// causeMax bounds the enum for per-cause counter arrays.
	causeMax
)

// NumDropCauses is the number of distinct drop causes, for sizing
// per-cause counter arrays.
const NumDropCauses = int(causeMax)

// String returns the stable wire name used in traces, counters, and
// reports. A fifth cause, "in-flight-loss", exists only in trace
// analysis: it labels packets that were emitted but neither delivered
// nor dropped by the time a trace ended, so no callback ever reports it.
func (c DropCause) String() string {
	switch c {
	case CauseOverflow:
		return "overflow"
	case CauseEvicted:
		return "evicted"
	case CauseAdmission:
		return "admission"
	case CauseFault:
		return "fault"
	}
	return "unknown"
}

// DropFn observes packets dropped by a scheduler (on arrival or by
// eviction) together with the cause. It may be nil.
//
// Cause contract: disciplines report CauseOverflow for arrivals refused
// for lack of buffer space, CauseEvicted for queued packets removed to
// admit a better arrival, and CauseAdmission for rank-based rejections
// that would have been refused even with buffer available. Exactly one
// callback fires per dropped packet; the callback is the packet's
// release point (see Scheduler's ownership contract).
type DropFn func(p *pkt.Packet, cause DropCause)

// Stats counts scheduler activity, shared by all implementations.
type Stats struct {
	Enqueued  uint64 // packets accepted
	Dequeued  uint64 // packets transmitted
	Dropped   uint64 // packets rejected on arrival
	Evicted   uint64 // queued packets removed to admit better ones
	Inversion uint64 // dequeues that violated global rank order (approximations)
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("enq=%d deq=%d drop=%d evict=%d inv=%d",
		s.Enqueued, s.Dequeued, s.Dropped, s.Evicted, s.Inversion)
}

// Config carries the knobs common to every scheduler.
type Config struct {
	// CapacityBytes bounds the total queued bytes. Zero means a default of
	// DefaultCapacityBytes.
	CapacityBytes int
	// OnDrop, if non-nil, is invoked for every dropped or evicted packet
	// with the cause of the drop (see DropFn's cause contract).
	OnDrop DropFn
	// Metrics, if non-nil, mirrors the scheduler's counters into an
	// observability registry (see NewMetrics). Nil — the default — keeps
	// the hot path free of atomic operations.
	Metrics *Metrics
}

// DefaultCapacityBytes is the per-port buffer used when Config.CapacityBytes
// is zero: roughly 100 full-size packets, a typical shallow-buffer setting
// in pFabric-style evaluations.
const DefaultCapacityBytes = 150 * 1000

func (c Config) capacity() int {
	if c.CapacityBytes <= 0 {
		return DefaultCapacityBytes
	}
	return c.CapacityBytes
}

func (c Config) drop(p *pkt.Packet, cause DropCause) {
	if c.OnDrop != nil {
		c.OnDrop(p, cause)
	}
}
