package sched

import (
	"fmt"

	"qvisor/internal/pkt"
)

// SPPIFO approximates a PIFO on a bank of strict-priority FIFO queues using
// the SP-PIFO push-up/push-down adaptation (Alcoz et al., NSDI 2020) —
// reference [3] of the QVISOR paper and one of the "existing schedulers"
// QVISOR targets in §3.4.
//
// Each queue i keeps a bound q[i], the rank of the last packet mapped to
// it. An arriving packet scans from the lowest-priority queue towards the
// highest and joins the first queue whose bound does not exceed its rank,
// pushing the bound up to its rank. If even the highest-priority queue's
// bound exceeds the rank (an inversion), the packet joins that queue and
// every bound is decreased by the magnitude of the inversion (push-down).
type SPPIFO struct {
	cfg    Config
	queues []ring
	qbytes []int
	bounds []int64
	bytes  int
	n      int
	stats  Stats
}

// NewSPPIFO returns an SP-PIFO with n strict-priority queues. It panics if
// n < 1.
func NewSPPIFO(cfg Config, n int) *SPPIFO {
	if n < 1 {
		panic(fmt.Sprintf("sched: NewSPPIFO with n=%d", n))
	}
	return &SPPIFO{
		cfg:    cfg,
		queues: make([]ring, n),
		qbytes: make([]int, n),
		bounds: make([]int64, n),
		n:      n,
	}
}

// Name implements Scheduler.
func (q *SPPIFO) Name() string { return fmt.Sprintf("sppifo%d", q.n) }

// NumQueues returns the number of priority queues.
func (q *SPPIFO) NumQueues() int { return q.n }

// Len implements Scheduler.
func (q *SPPIFO) Len() int {
	total := 0
	for i := range q.queues {
		total += q.queues[i].n
	}
	return total
}

// Bytes implements Scheduler.
func (q *SPPIFO) Bytes() int { return q.bytes }

// Stats returns a snapshot of the scheduler's counters.
func (q *SPPIFO) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *SPPIFO) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Bound returns queue i's current rank bound (for tests and inspection).
func (q *SPPIFO) Bound(i int) int64 { return q.bounds[i] }

// Enqueue implements Scheduler using the SP-PIFO mapping algorithm.
func (q *SPPIFO) Enqueue(p *pkt.Packet) bool {
	if q.bytes+p.Size > q.cfg.capacity() {
		q.stats.Dropped++
		q.cfg.Metrics.onDrop()
		q.cfg.drop(p, CauseOverflow)
		return false
	}
	// Scan from the lowest-priority queue (highest index) towards the
	// highest-priority queue (index 0).
	for i := q.n - 1; i >= 0; i-- {
		if q.bounds[i] <= p.Rank {
			q.bounds[i] = p.Rank
			q.put(i, p)
			return true
		}
	}
	// Inversion: even queue 0's bound exceeds the rank. Enqueue at the
	// top and push all bounds down by the inversion magnitude.
	cost := q.bounds[0] - p.Rank
	q.stats.Inversion++
	q.cfg.Metrics.onInversion()
	for i := range q.bounds {
		q.bounds[i] -= cost
	}
	q.put(0, p)
	return true
}

func (q *SPPIFO) put(i int, p *pkt.Packet) {
	q.queues[i].push(p)
	q.qbytes[i] += p.Size
	q.bytes += p.Size
	q.stats.Enqueued++
	if m := q.cfg.Metrics; m != nil { // guard: Len is O(queues)
		m.onEnqueue(p, q.Len(), q.bytes)
	}
}

// Reset implements Scheduler: queues are emptied and all bounds return to
// zero, as if freshly constructed, with the ring buffers kept warm.
func (q *SPPIFO) Reset() {
	for i := range q.queues {
		q.queues[i].reset()
		q.qbytes[i] = 0
		q.bounds[i] = 0
	}
	q.bytes = 0
	q.stats = Stats{}
}

// Dequeue implements Scheduler: strict priority across the queue bank.
func (q *SPPIFO) Dequeue() *pkt.Packet {
	for i := range q.queues {
		if q.queues[i].n == 0 {
			continue
		}
		p := q.queues[i].pop()
		q.qbytes[i] -= p.Size
		q.bytes -= p.Size
		q.stats.Dequeued++
		if m := q.cfg.Metrics; m != nil { // guard: Len is O(queues)
			m.onDequeue(p, q.Len(), q.bytes)
		}
		return p
	}
	return nil
}
