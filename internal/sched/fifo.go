package sched

import "qvisor/internal/pkt"

// FIFO is a single first-in first-out queue with byte-based tail drop — the
// least capable "existing scheduler" of §3.4 and the worst-case baseline in
// the paper's Figure 4 ("the FIFO scheduler can not prioritize traffic, and
// thus the pFabric policy becomes useless").
type FIFO struct {
	cfg   Config
	q     ring
	bytes int
	stats Stats
}

// NewFIFO returns an empty FIFO with the given configuration.
func NewFIFO(cfg Config) *FIFO {
	return &FIFO{cfg: cfg}
}

// ring is a growable circular buffer of packets.
type ring struct {
	buf  []*pkt.Packet
	head int
	n    int
}

func (r *ring) push(p *pkt.Packet) {
	if r.n == len(r.buf) {
		next := make([]*pkt.Packet, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			next[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = next
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *ring) pop() *pkt.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

func (r *ring) peek() *pkt.Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// reset empties the ring, dropping packet references but keeping the
// backing buffer so a reused scheduler starts with a warm ring.
func (r *ring) reset() {
	for r.n > 0 {
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	r.head = 0
}

// Name implements Scheduler.
func (q *FIFO) Name() string { return "fifo" }

// Len implements Scheduler.
func (q *FIFO) Len() int { return q.q.n }

// Bytes implements Scheduler.
func (q *FIFO) Bytes() int { return q.bytes }

// Stats returns a snapshot of the scheduler's counters.
func (q *FIFO) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *FIFO) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Enqueue implements Scheduler. Arrivals that would overflow the buffer are
// tail-dropped.
func (q *FIFO) Enqueue(p *pkt.Packet) bool {
	if q.bytes+p.Size > q.cfg.capacity() {
		q.stats.Dropped++
		q.cfg.Metrics.onDrop()
		q.cfg.drop(p, CauseOverflow)
		return false
	}
	q.q.push(p)
	q.bytes += p.Size
	q.stats.Enqueued++
	q.cfg.Metrics.onEnqueue(p, q.q.n, q.bytes)
	return true
}

// Dequeue implements Scheduler.
func (q *FIFO) Dequeue() *pkt.Packet {
	p := q.q.pop()
	if p == nil {
		return nil
	}
	q.bytes -= p.Size
	q.stats.Dequeued++
	q.cfg.Metrics.onDequeue(p, q.q.n, q.bytes)
	return p
}

// Peek returns the head packet without removing it, or nil when empty.
func (q *FIFO) Peek() *pkt.Packet { return q.q.peek() }

// Reset implements Scheduler.
func (q *FIFO) Reset() {
	q.q.reset()
	q.bytes = 0
	q.stats = Stats{}
}
