package sched

import (
	"fmt"
	"math/bits"

	"qvisor/internal/pkt"
)

// BucketQ approximates a PIFO with an Eiffel-style hierarchical
// find-first-set bucket queue (Saeed et al., NSDI 2019 — the gradient-queue
// structure QVISOR's §3.4 "existing schedulers" family points at for
// software line rate). Ranks are quantized into fixed-width buckets over a
// circular horizon; each bucket keeps a FIFO chain of pooled nodes, and a
// two-level uint64 occupancy bitmap finds the lowest non-empty bucket with
// two TrailingZeros64 instructions, so enqueue and dequeue are O(1)
// regardless of backlog — the heap-based PIFO pays O(log n) per operation
// at the same job.
//
// Approximation contract (checked differentially by internal/conform):
// dequeue order is exact up to rank quantization — packets leave in
// non-decreasing bucket order, FIFO within a bucket. Ranks before the
// current bucket join it (no past buckets, the calendar convention); ranks
// at or beyond the horizon wait in an overflow FIFO that is re-filed into
// the ring, preserving arrival order, once the ring drains past it. The
// horizon base only ever advances by whole bucket widths, so the global
// quantization map stays well-defined across rotations.
type BucketQ struct {
	cfg   Config
	nb    int   // bucket count
	width int64 // rank units per bucket

	cur  int   // physical index of the bucket holding rank base
	base int64 // smallest rank mapped to the bucket at cur

	head, tail []*bqNode // per-bucket FIFO chains, physical index
	words      []uint64  // occupancy bitmap: bit i of words[i>>6] = bucket i non-empty
	summary    uint64    // level-2 bitmap: bit w = words[w] != 0

	// Overflow FIFO for ranks at or beyond base + nb*width, with the
	// minimum queued rank tracked so rebasing lands the earliest overflow
	// packet in bucket 0.
	ovHead, ovTail *bqNode
	ovMin          int64
	ovCount        int

	free  *bqNode // node free list (steady state allocates nothing)
	count int
	bytes int
	stats Stats
}

// bqNode is one link of a bucket's FIFO chain. Nodes are recycled through
// the scheduler's free list so the hot path stays at 0 allocs/op.
type bqNode struct {
	p    *pkt.Packet
	next *bqNode
}

// maxBucketQBuckets bounds the ring so the two-level bitmap (64 words of
// 64 bits) always covers it.
const maxBucketQBuckets = 64 * 64

// NewBucketQ returns a bucket queue with n buckets of the given rank
// width. It panics if n < 1, n > 4096, or width < 1.
func NewBucketQ(cfg Config, n int, width int64) *BucketQ {
	if n < 1 || n > maxBucketQBuckets {
		panic(fmt.Sprintf("sched: NewBucketQ with n=%d (want 1..%d)", n, maxBucketQBuckets))
	}
	if width < 1 {
		panic(fmt.Sprintf("sched: NewBucketQ with width=%d", width))
	}
	return &BucketQ{
		cfg:   cfg,
		nb:    n,
		width: width,
		head:  make([]*bqNode, n),
		tail:  make([]*bqNode, n),
		words: make([]uint64, (n+63)/64),
	}
}

// Name implements Scheduler.
func (q *BucketQ) Name() string { return fmt.Sprintf("bucketq%d", q.nb) }

// Len implements Scheduler.
func (q *BucketQ) Len() int { return q.count }

// Bytes implements Scheduler.
func (q *BucketQ) Bytes() int { return q.bytes }

// Stats returns a snapshot of the scheduler's counters.
func (q *BucketQ) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *BucketQ) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Buckets returns the ring size; Width the rank units per bucket;
// OverflowLen the packets waiting beyond the horizon. Tests use these to
// cross-check the bitmap index and overflow bookkeeping.
func (q *BucketQ) Buckets() int     { return q.nb }
func (q *BucketQ) Width() int64     { return q.width }
func (q *BucketQ) OverflowLen() int { return q.ovCount }
func (q *BucketQ) BaseRank() int64  { return q.base }

// Enqueue implements Scheduler.
func (q *BucketQ) Enqueue(p *pkt.Packet) bool {
	if q.bytes+p.Size > q.cfg.capacity() {
		q.stats.Dropped++
		q.cfg.Metrics.onDrop()
		q.cfg.drop(p, CauseOverflow)
		return false
	}
	q.fileNode(q.node(p))
	q.count++
	q.bytes += p.Size
	q.stats.Enqueued++
	q.cfg.Metrics.onEnqueue(p, q.count, q.bytes)
	return true
}

// fileNode places a chained packet into its bucket (or the overflow FIFO)
// relative to the current base. Shared by Enqueue and the rebase re-file
// so both use identical placement rules.
func (q *BucketQ) fileNode(n *bqNode) {
	off := int64(0)
	if r := n.p.Rank; r > q.base {
		off = (r - q.base) / q.width
	}
	if off >= int64(q.nb) {
		n.next = nil
		if q.ovTail == nil {
			q.ovHead = n
			q.ovMin = n.p.Rank
		} else {
			q.ovTail.next = n
			if n.p.Rank < q.ovMin {
				q.ovMin = n.p.Rank
			}
		}
		q.ovTail = n
		q.ovCount++
		return
	}
	i := q.cur + int(off)
	if i >= q.nb {
		i -= q.nb
	}
	n.next = nil
	if q.tail[i] == nil {
		q.head[i] = n
		q.words[i>>6] |= 1 << uint(i&63)
		q.summary |= 1 << uint(i>>6)
	} else {
		q.tail[i].next = n
	}
	q.tail[i] = n
}

// findFirst returns the lowest occupied physical bucket index ≥ start, or
// -1 when none: one masked TrailingZeros64 over the word holding start,
// then one over the summary for the words above it.
func (q *BucketQ) findFirst(start int) int {
	w := start >> 6
	if masked := q.words[w] &^ (uint64(1)<<uint(start&63) - 1); masked != 0 {
		return w<<6 + bits.TrailingZeros64(masked)
	}
	if rest := q.summary &^ (uint64(1)<<uint(w+1) - 1); rest != 0 {
		w = bits.TrailingZeros64(rest)
		return w<<6 + bits.TrailingZeros64(q.words[w])
	}
	return -1
}

// Dequeue implements Scheduler: pop the FIFO head of the lowest occupied
// bucket at or after the current one, wrapping around the ring; when the
// ring is empty but packets wait beyond the horizon, rebase onto them.
func (q *BucketQ) Dequeue() *pkt.Packet {
	if q.count == 0 {
		return nil
	}
	idx := q.findFirst(q.cur)
	if idx >= 0 {
		q.base += int64(idx-q.cur) * q.width
	} else if idx = q.findFirst(0); idx >= 0 {
		q.base += int64(q.nb-q.cur+idx) * q.width
	} else {
		q.rebase()
		idx = q.findFirst(0) // rebase files the earliest overflow rank into bucket 0
	}
	q.cur = idx

	n := q.head[idx]
	q.head[idx] = n.next
	if n.next == nil {
		q.tail[idx] = nil
		q.words[idx>>6] &^= 1 << uint(idx&63)
		if q.words[idx>>6] == 0 {
			q.summary &^= 1 << uint(idx>>6)
		}
	}
	p := n.p
	q.putNode(n)
	q.count--
	q.bytes -= p.Size
	q.stats.Dequeued++
	q.cfg.Metrics.onDequeue(p, q.count, q.bytes)
	return p
}

// rebase advances the horizon onto the overflow FIFO once the ring is
// empty: base jumps (in whole bucket widths, keeping the global
// quantization map aligned) to cover the earliest overflow rank, and the
// chain is re-filed in arrival order so FIFO-within-bucket survives the
// rotation. Packets still beyond the new horizon re-enter the overflow
// FIFO, again in arrival order.
func (q *BucketQ) rebase() {
	q.base += (q.ovMin - q.base) / q.width * q.width
	q.cur = 0
	n := q.ovHead
	q.ovHead, q.ovTail = nil, nil
	q.ovCount = 0
	q.ovMin = 0
	for n != nil {
		next := n.next
		q.fileNode(n)
		n = next
	}
}

// node takes a link from the free list (or allocates when cold).
func (q *BucketQ) node(p *pkt.Packet) *bqNode {
	n := q.free
	if n == nil {
		n = &bqNode{}
	} else {
		q.free = n.next
	}
	n.p = p
	n.next = nil
	return n
}

// putNode returns a link to the free list.
func (q *BucketQ) putNode(n *bqNode) {
	n.p = nil
	n.next = q.free
	q.free = n
}

// Reset implements Scheduler: chains are discarded (nodes return to the
// free list, packets are dropped silently per the ownership contract), the
// bitmaps clear, and the rotation rewinds to bucket 0 / base rank 0.
func (q *BucketQ) Reset() {
	for i := range q.head {
		for n := q.head[i]; n != nil; {
			next := n.next
			q.putNode(n)
			n = next
		}
		q.head[i], q.tail[i] = nil, nil
	}
	for i := range q.words {
		q.words[i] = 0
	}
	for n := q.ovHead; n != nil; {
		next := n.next
		q.putNode(n)
		n = next
	}
	q.ovHead, q.ovTail = nil, nil
	q.ovMin = 0
	q.ovCount = 0
	q.summary = 0
	q.cur = 0
	q.base = 0
	q.count = 0
	q.bytes = 0
	q.stats = Stats{}
}
