package sched

import (
	"math/rand"
	"testing"

	"qvisor/internal/pkt"
)

// resetCases enumerates every scheduler in the package, so the Reset
// contract and the per-packet allocation budget are pinned down uniformly.
// A new entry here is the price of adding a scheduler — intentional.
func resetCases() []struct {
	name  string
	build func() Scheduler
} {
	return []struct {
		name  string
		build func() Scheduler
	}{
		{"pifo", func() Scheduler { return NewPIFO(Config{}) }},
		{"fifo", func() Scheduler { return NewFIFO(Config{}) }},
		{"sppifo", func() Scheduler { return NewSPPIFO(Config{}, 8) }},
		{"aifo", func() Scheduler { return NewAIFO(AIFOConfig{}) }},
		{"calendar", func() Scheduler { return NewCalendar(Config{}, 16, 100) }},
		{"mq", func() Scheduler {
			return NewMQ(Config{}, 4, func(p *pkt.Packet) int { return int(p.Rank % 4) })
		}},
		{"drr", func() Scheduler { return NewDRR(DRRConfig{}) }},
		{"admission", func() Scheduler { return NewAdmission(AdmissionConfig{}) }},
		{"bucketq", func() Scheduler { return NewBucketQ(Config{}, 128, 8) }},
	}
}

// replay runs a deterministic mixed enqueue/dequeue workload and returns
// the dequeue trace as (rank, size) pairs.
func replay(s Scheduler, seed int64) [][2]int64 {
	rng := rand.New(rand.NewSource(seed))
	var trace [][2]int64
	for i := 0; i < 500; i++ {
		p := &pkt.Packet{
			Rank: rng.Int63n(1000),
			Size: 100 + rng.Intn(1400),
			Flow: uint64(rng.Intn(8)),
		}
		s.Enqueue(p)
		if rng.Intn(3) == 0 {
			if q := s.Dequeue(); q != nil {
				trace = append(trace, [2]int64{q.Rank, int64(q.Size)})
			}
		}
	}
	for q := s.Dequeue(); q != nil; q = s.Dequeue() {
		trace = append(trace, [2]int64{q.Rank, int64(q.Size)})
	}
	return trace
}

// TestResetRoundTrip: after Reset, a scheduler must be indistinguishable
// from a freshly constructed one — same dequeue trace for the same
// workload, empty queue, zeroed byte count.
func TestResetRoundTrip(t *testing.T) {
	for _, tc := range resetCases() {
		t.Run(tc.name, func(t *testing.T) {
			reused := tc.build()
			replay(reused, 1) // dirty it with one full workload
			// Leave packets queued, then Reset mid-backlog.
			for i := 0; i < 50; i++ {
				reused.Enqueue(&pkt.Packet{Rank: int64(i), Size: 200, Flow: uint64(i % 4)})
			}
			reused.Reset()
			if reused.Len() != 0 || reused.Bytes() != 0 {
				t.Fatalf("after Reset: Len=%d Bytes=%d, want 0/0", reused.Len(), reused.Bytes())
			}
			if got := reused.Dequeue(); got != nil {
				t.Fatalf("Dequeue after Reset returned %+v, want nil", got)
			}

			fresh := tc.build()
			got := replay(reused, 42)
			want := replay(fresh, 42)
			if len(got) != len(want) {
				t.Fatalf("trace lengths differ: reused=%d fresh=%d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trace diverges at %d: reused=%v fresh=%v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestResetDoesNotInvokeDropCallback: Reset discards queued packets
// silently; the drop callback is reserved for refused/evicted packets.
func TestResetDoesNotInvokeDropCallback(t *testing.T) {
	drops := 0
	q := NewPIFO(Config{OnDrop: func(*pkt.Packet, DropCause) { drops++ }})
	for i := 0; i < 10; i++ {
		q.Enqueue(mkpkt(int64(i), 100))
	}
	q.Reset()
	if drops != 0 {
		t.Fatalf("Reset invoked the drop callback %d times, want 0", drops)
	}
}

// TestAllocBudgetSchedulers: once warmed, a steady-state enqueue/dequeue
// cycle must not allocate for any scheduler. This is the per-packet budget
// the zero-allocation data plane depends on.
func TestAllocBudgetSchedulers(t *testing.T) {
	for _, tc := range resetCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build()
			p := &pkt.Packet{Rank: 5, Size: 1000, Flow: 3}
			// Warm internal buffers: rings, heap slices, DRR queue structs.
			for i := 0; i < 64; i++ {
				p.Rank = int64(i % 7)
				s.Enqueue(p)
				if q := s.Dequeue(); q == nil {
					t.Fatal("warmup dequeue failed")
				}
			}
			allocs := testing.AllocsPerRun(1000, func() {
				s.Enqueue(p)
				s.Dequeue()
			})
			if allocs != 0 {
				t.Fatalf("%s enqueue/dequeue allocates %.1f objects/op, budget is 0", tc.name, allocs)
			}
		})
	}
}

// TestDRRReusesQueueStructs: Reset returns per-key queue structs to the
// free list; serving the same keys again must not hit the allocator.
func TestDRRReusesQueueStructs(t *testing.T) {
	d := NewDRR(DRRConfig{})
	for flow := uint64(0); flow < 16; flow++ {
		d.Enqueue(&pkt.Packet{Flow: flow, Size: 100})
	}
	for d.Dequeue() != nil {
	}
	d.Reset()
	// Pre-build the packets so the measurement sees only scheduler
	// internals, not the test's own allocations.
	pkts := make([]*pkt.Packet, 16)
	for i := range pkts {
		pkts[i] = &pkt.Packet{Flow: uint64(i), Size: 100, Rank: 1}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range pkts {
			d.Enqueue(p)
		}
		for d.Dequeue() != nil {
		}
		d.Reset()
	})
	if allocs != 0 {
		t.Fatalf("DRR re-serving known keys after Reset allocates %.1f objects/op, budget is 0", allocs)
	}
}
