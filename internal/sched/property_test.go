package sched

import (
	"math/rand"
	"sort"
	"testing"

	"qvisor/internal/pkt"
)

// Property tests pinning the approximation guarantees the experiment
// harness (internal/experiments/inversions.go) measures empirically: the
// ideal PIFO is an exact sort oracle, the calendar queue's inversions are
// bounded by its bucket width, and SP-PIFO's queue bounds keep the
// strict-priority invariant its push-up/push-down adaptation maintains.
// All randomness is drawn from fixed-seed local sources, so failures
// reproduce deterministically.

func randomPackets(rng *rand.Rand, n int, maxRank int64) []*pkt.Packet {
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		ps[i] = &pkt.Packet{
			ID:   uint64(i),
			Rank: rng.Int63n(maxRank),
			Size: 100,
		}
	}
	return ps
}

// TestPropertyPIFOSortsExactly: batch-enqueue a random sequence, then
// drain; the ideal PIFO must emit every packet in non-decreasing rank
// order — zero inversions by construction.
func TestPropertyPIFOSortsExactly(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ps := randomPackets(rng, 1000, 1<<20)
		q := NewPIFO(Config{CapacityBytes: 1 << 30})
		for _, p := range ps {
			if !q.Enqueue(p) {
				t.Fatalf("seed %d: enqueue rejected", seed)
			}
		}
		want := make([]int64, len(ps))
		for i, p := range ps {
			want[i] = p.Rank
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; i < len(ps); i++ {
			p := q.Dequeue()
			if p == nil {
				t.Fatalf("seed %d: queue drained early at %d", seed, i)
			}
			if p.Rank != want[i] {
				t.Fatalf("seed %d: dequeue %d rank %d, sorted oracle %d", seed, i, p.Rank, want[i])
			}
		}
		if q.Dequeue() != nil {
			t.Fatalf("seed %d: extra packet", seed)
		}
	}
}

// TestPropertyCalendarBucketBound: in batch mode (all enqueues before any
// dequeue, base at 0) the calendar drains buckets in ascending index, so
// for any two packets below the clamp horizon dequeued in order (a, b),
// rank(a) - rank(b) < width — an inversion can never exceed one bucket's
// rank span. Packets at or beyond the horizon clamp to the last bucket and
// are exempt from the bound (they share a bucket by design).
func TestPropertyCalendarBucketBound(t *testing.T) {
	const (
		buckets = 32
		width   = int64(1 << 15)
		horizon = int64(buckets-1) * width
	)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ps := randomPackets(rng, 2000, buckets*width+width) // includes clamped ranks
		q := NewCalendar(Config{CapacityBytes: 1 << 30}, buckets, width)
		for _, p := range ps {
			if !q.Enqueue(p) {
				t.Fatalf("seed %d: enqueue rejected", seed)
			}
		}
		var order []int64
		for p := q.Dequeue(); p != nil; p = q.Dequeue() {
			order = append(order, p.Rank)
		}
		if len(order) != len(ps) {
			t.Fatalf("seed %d: drained %d of %d", seed, len(order), len(ps))
		}
		// Bucket indices must be non-decreasing, which implies the width
		// bound for non-clamped pairs.
		prevBucket := int64(-1)
		for i, r := range order {
			b := r / width
			if b > int64(buckets-1) {
				b = int64(buckets - 1)
			}
			if b < prevBucket {
				t.Fatalf("seed %d: dequeue %d went back a bucket (%d after %d)", seed, i, b, prevBucket)
			}
			prevBucket = b
		}
		for i := 0; i < len(order); i++ {
			if order[i] >= horizon {
				continue
			}
			for j := i + 1; j < len(order); j++ {
				if order[j] >= horizon {
					continue
				}
				if inv := order[i] - order[j]; inv >= width {
					t.Fatalf("seed %d: inversion magnitude %d >= bucket width %d (pos %d,%d)",
						seed, inv, width, i, j)
				}
			}
		}
	}
}

// TestPropertySPPIFOBoundInvariant: SP-PIFO's queue bounds must stay
// monotone non-decreasing from the highest-priority queue (index 0) to the
// lowest (index n-1) after every operation — the invariant that makes the
// push-up scan well-defined and that push-down's uniform subtraction
// preserves.
func TestPropertySPPIFOBoundInvariant(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := NewSPPIFO(Config{CapacityBytes: 1 << 30}, 8)
		check := func(step int) {
			for i := 0; i+1 < q.NumQueues(); i++ {
				if q.Bound(i) > q.Bound(i+1) {
					t.Fatalf("seed %d step %d: bounds not monotone: q%d=%d > q%d=%d",
						seed, step, i, q.Bound(i), i+1, q.Bound(i+1))
				}
			}
		}
		for step := 0; step < 5000; step++ {
			if rng.Intn(3) != 0 || q.Len() == 0 {
				q.Enqueue(&pkt.Packet{ID: uint64(step), Rank: rng.Int63n(1 << 16), Size: 100})
			} else {
				q.Dequeue()
			}
			check(step)
		}
	}
}

// countInversions replays a batch trace through a scheduler and counts
// rank inversions against a min-rank oracle over the still-queued packets
// (the SP-PIFO paper's "unpifoness" metric).
func countInversions(t *testing.T, s Scheduler, ps []*pkt.Packet) int {
	t.Helper()
	queued := map[int64]int{}
	for _, p := range ps {
		cp := *p
		if !s.Enqueue(&cp) {
			t.Fatal("enqueue rejected")
		}
		queued[cp.Rank]++
	}
	minQueued := func() (int64, bool) {
		found := false
		var m int64
		for r, c := range queued {
			if c > 0 && (!found || r < m) {
				m, found = r, true
			}
		}
		return m, found
	}
	inv := 0
	for p := s.Dequeue(); p != nil; p = s.Dequeue() {
		if m, ok := minQueued(); ok && p.Rank > m {
			inv++
		}
		queued[p.Rank]--
		if queued[p.Rank] == 0 {
			delete(queued, p.Rank)
		}
	}
	return inv
}

// TestPropertyApproximationsBeatFIFO: on a random heavy trace the ideal
// PIFO has zero inversions, and both approximations (SP-PIFO, calendar)
// stay strictly below the FIFO baseline's inversion count — they must buy
// ordering fidelity with their structure, not merely relabel a FIFO.
func TestPropertyApproximationsBeatFIFO(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ps := randomPackets(rng, 2000, 1<<16)
		pifoInv := countInversions(t, NewPIFO(Config{CapacityBytes: 1 << 30}), ps)
		if pifoInv != 0 {
			t.Fatalf("seed %d: ideal PIFO has %d inversions", seed, pifoInv)
		}
		fifoInv := countInversions(t, NewFIFO(Config{CapacityBytes: 1 << 30}), ps)
		sppifoInv := countInversions(t, NewSPPIFO(Config{CapacityBytes: 1 << 30}, 32), ps)
		calInv := countInversions(t, NewCalendar(Config{CapacityBytes: 1 << 30}, 32, 1<<11), ps)
		if sppifoInv >= fifoInv {
			t.Errorf("seed %d: sppifo32 %d inversions, fifo %d", seed, sppifoInv, fifoInv)
		}
		if calInv >= fifoInv {
			t.Errorf("seed %d: calendar32 %d inversions, fifo %d", seed, calInv, fifoInv)
		}
	}
}
