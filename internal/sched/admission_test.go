package sched

import (
	"math/rand"
	"testing"

	"qvisor/internal/pkt"
)

// The admission backend's contract, pinned by the tests below:
//
//   - dynamic per-queue bounds stay monotone non-decreasing after every
//     operation (they are quantiles of one sorted window by construction);
//   - conservation: every offered packet is either dequeued or reported
//     through exactly one drop callback — never both, never neither;
//   - cold start and no-pressure operation are FIFO-equivalent, like AIFO;
//   - admission rejections report CauseAdmission, buffer rejections
//     CauseOverflow;
//   - the steady-state hot path allocates nothing (TestAllocBudgetSchedulers
//     and TestResetRoundTrip cover this via resetCases).

// TestAdmissionBoundMonotone: after every enqueue and dequeue the dynamic
// bounds must satisfy bounds[0] <= bounds[1] <= ... <= bounds[n-1].
func TestAdmissionBoundMonotone(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := NewAdmission(AdmissionConfig{
			Config:      Config{CapacityBytes: 64 * 1500},
			Queues:      8,
			UpdateEvery: 1 + int(seed)%4, // cover several refresh cadences
		})
		check := func(step int) {
			for i := 0; i+1 < q.NumQueues(); i++ {
				if q.Bound(i) > q.Bound(i+1) {
					t.Fatalf("seed %d step %d: bounds not monotone: q%d=%d > q%d=%d",
						seed, step, i, q.Bound(i), i+1, q.Bound(i+1))
				}
			}
		}
		for step := 0; step < 5000; step++ {
			if rng.Intn(3) != 0 || q.Len() == 0 {
				q.Enqueue(&pkt.Packet{ID: uint64(step), Rank: rng.Int63n(1 << 16), Size: 100})
			} else {
				q.Dequeue()
			}
			check(step)
		}
	}
}

// TestAdmissionConservationAndSingleCallback: on a workload heavy enough to
// force both overflow and admission drops, (dequeued + dropped) must equal
// offered, every dropped ID must be distinct (one callback per packet), and
// no ID may be both dequeued and dropped.
func TestAdmissionConservationAndSingleCallback(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dropped := make(map[uint64]DropCause)
		drops := 0
		q := NewAdmission(AdmissionConfig{
			Config: Config{
				CapacityBytes: 16 * 1500, // tight: real admission pressure
				OnDrop: func(p *pkt.Packet, cause DropCause) {
					if _, dup := dropped[p.ID]; dup {
						t.Fatalf("seed %d: packet %d dropped twice", seed, p.ID)
					}
					dropped[p.ID] = cause
					drops++
				},
			},
		})
		const offered = 5000
		dequeued := make(map[uint64]bool)
		serve := func() {
			p := q.Dequeue()
			if p == nil {
				return
			}
			if dequeued[p.ID] {
				t.Fatalf("seed %d: packet %d dequeued twice", seed, p.ID)
			}
			if _, alsoDropped := dropped[p.ID]; alsoDropped {
				t.Fatalf("seed %d: packet %d both dequeued and dropped", seed, p.ID)
			}
			dequeued[p.ID] = true
		}
		for i := 0; i < offered; i++ {
			p := &pkt.Packet{ID: uint64(i), Rank: rng.Int63n(1 << 16), Size: 200 + rng.Intn(1300)}
			ok := q.Enqueue(p)
			if !ok {
				if _, reported := dropped[p.ID]; !reported {
					t.Fatalf("seed %d: Enqueue returned false without a drop callback for %d", seed, p.ID)
				}
			}
			if rng.Intn(3) == 0 {
				serve()
			}
		}
		for q.Len() > 0 {
			serve()
		}
		if got := len(dequeued) + drops; got != offered {
			t.Fatalf("seed %d: dequeued %d + dropped %d != offered %d",
				seed, len(dequeued), drops, offered)
		}
		if drops == 0 {
			t.Fatalf("seed %d: workload produced no drops; the test is not exercising admission", seed)
		}
		st := q.Stats()
		if st.Dropped != uint64(drops) {
			t.Fatalf("seed %d: Stats.Dropped=%d, callbacks=%d", seed, st.Dropped, drops)
		}
	}
}

// TestAdmissionDropCauses: a rank-based rejection with buffer headroom must
// report CauseAdmission; a rejection for lack of space CauseOverflow.
func TestAdmissionDropCauses(t *testing.T) {
	var causes []DropCause
	q := NewAdmission(AdmissionConfig{
		Config: Config{
			CapacityBytes: 10 * 1000,
			OnDrop:        func(p *pkt.Packet, cause DropCause) { causes = append(causes, cause) },
		},
		WindowSize: 8,
		Burst:      0.1,
	})
	// Warm the window with rank-0 traffic and fill most of the buffer.
	for i := 0; i < 9; i++ {
		if !q.Enqueue(mkpkt(0, 1000)) {
			t.Fatalf("warmup enqueue %d refused", i)
		}
	}
	if !q.Warm() {
		t.Fatal("window not warm after filling")
	}
	// 9000/10000 bytes used: headroom 0.1, admissible quantile 0.111. A
	// maximal rank is above every windowed rank (quantile 1.0) -> admission.
	if q.Enqueue(mkpkt(1<<20, 500)) {
		t.Fatal("poor-rank packet admitted under admission pressure")
	}
	if len(causes) != 1 || causes[0] != CauseAdmission {
		t.Fatalf("causes = %v, want [admission]", causes)
	}
	// A best-rank packet (quantile 0) passes admission but cannot fit.
	if q.Enqueue(mkpkt(-1, 2000)) {
		t.Fatal("oversized packet admitted")
	}
	if len(causes) != 2 || causes[1] != CauseOverflow {
		t.Fatalf("causes = %v, want [admission overflow]", causes)
	}
}

// TestAdmissionNoPressureIsFIFO: with a huge buffer the admission rule
// never fires and — while the traffic keeps the dynamic bounds ahead of it
// — a cold-start Admission behaves as a FIFO: before the window fills,
// everything maps to queue 0 in arrival order.
func TestAdmissionNoPressureIsFIFO(t *testing.T) {
	q := NewAdmission(AdmissionConfig{
		Config:     Config{CapacityBytes: 1 << 30},
		WindowSize: 64,
	})
	rng := rand.New(rand.NewSource(7))
	var want []uint64
	for i := 0; i < 63; i++ { // one short of warm: pure cold start
		p := &pkt.Packet{ID: uint64(i), Rank: rng.Int63n(1 << 16), Size: 100}
		if !q.Enqueue(p) {
			t.Fatalf("no-pressure enqueue %d refused", i)
		}
		want = append(want, p.ID)
	}
	if q.Warm() {
		t.Fatal("window warm too early")
	}
	for i, id := range want {
		p := q.Dequeue()
		if p == nil || p.ID != id {
			t.Fatalf("dequeue %d: got %v, want ID %d (cold start must be FIFO)", i, p, id)
		}
	}
}

// TestAdmissionNeverDropsWithoutPressure: at effectively infinite capacity
// the headroom fraction stays ~1 and the admission quantile test can never
// fail, so no packet may be dropped regardless of its rank.
func TestAdmissionNeverDropsWithoutPressure(t *testing.T) {
	drops := 0
	q := NewAdmission(AdmissionConfig{
		Config: Config{
			CapacityBytes: 1 << 30,
			OnDrop:        func(*pkt.Packet, DropCause) { drops++ },
		},
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if !q.Enqueue(&pkt.Packet{ID: uint64(i), Rank: rng.Int63n(1 << 30), Size: 1500}) {
			t.Fatalf("enqueue %d refused with no buffer pressure", i)
		}
		if rng.Intn(2) == 0 {
			q.Dequeue()
		}
	}
	if drops != 0 {
		t.Fatalf("dropped %d packets with no admission pressure", drops)
	}
}

// TestAdmissionStrictPriorityAcrossBands: once warm, a batch of low-rank
// and high-rank packets (well separated relative to the window) must leave
// strictly low band before high band — the queue mapping must realize the
// priority the dynamic bounds encode.
func TestAdmissionStrictPriorityAcrossBands(t *testing.T) {
	q := NewAdmission(AdmissionConfig{
		Config:      Config{CapacityBytes: 1 << 30},
		Queues:      4,
		WindowSize:  16,
		UpdateEvery: 1,
	})
	// Warm the window with an even mix so the quantile bands split at the
	// midpoint between the two rank populations.
	for i := 0; i < 16; i++ {
		r := int64(10)
		if i%2 == 1 {
			r = 1000
		}
		q.Enqueue(mkpkt(r, 100))
	}
	for q.Dequeue() != nil {
	}
	// Enqueue high-rank first, then low-rank: a FIFO would emit the high
	// ranks first; the admission backend must serve the low band first.
	for i := 0; i < 8; i++ {
		q.Enqueue(&pkt.Packet{ID: uint64(100 + i), Rank: 1000, Size: 100})
	}
	for i := 0; i < 8; i++ {
		q.Enqueue(&pkt.Packet{ID: uint64(200 + i), Rank: 10, Size: 100})
	}
	for i := 0; i < 8; i++ {
		p := q.Dequeue()
		if p == nil || p.Rank != 10 {
			t.Fatalf("dequeue %d: got %+v, want a rank-10 packet first", i, p)
		}
	}
	for i := 0; i < 8; i++ {
		p := q.Dequeue()
		if p == nil || p.Rank != 1000 {
			t.Fatalf("dequeue %d: got %+v, want the rank-1000 band last", 8+i, p)
		}
	}
}

// TestAdmissionRegistry: both registry spellings construct the backend.
func TestAdmissionRegistry(t *testing.T) {
	s, err := New("admission", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "admission8" {
		t.Fatalf("Name() = %q, want admission8", s.Name())
	}
	s, err = New("admission:4", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "admission4" {
		t.Fatalf("Name() = %q, want admission4", s.Name())
	}
	if _, err := New("admission:x", Config{}); err == nil {
		t.Fatal("admission:x accepted")
	}
	if _, err := New("admission:0", Config{}); err == nil {
		t.Fatal("admission:0 accepted")
	}
}

// TestSortInt64s pins the allocation-free sorter used by the bound refresh
// against the obvious oracle, across both the insertion and heapsort paths.
func TestSortInt64s(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 7, 31, 32, 33, 64, 257} {
		s := make([]int64, n)
		for i := range s {
			s[i] = rng.Int63n(1000) - 500
		}
		sortInt64s(s)
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d: %d > %d", n, i, s[i-1], s[i])
			}
		}
	}
}
