package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"qvisor/internal/pkt"
)

func mkpkt(rank int64, size int) *pkt.Packet {
	return &pkt.Packet{Rank: rank, Size: size}
}

func drain(s Scheduler) []int64 {
	var out []int64
	for p := s.Dequeue(); p != nil; p = s.Dequeue() {
		out = append(out, p.Rank)
	}
	return out
}

// --- PIFO ---

func TestPIFOOrdersByRank(t *testing.T) {
	q := NewPIFO(Config{})
	for _, r := range []int64{5, 1, 9, 3, 7} {
		if !q.Enqueue(mkpkt(r, 100)) {
			t.Fatal("enqueue failed")
		}
	}
	got := drain(q)
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

func TestPIFOFIFOAmongTies(t *testing.T) {
	q := NewPIFO(Config{})
	ids := []uint64{1, 2, 3, 4}
	for _, id := range ids {
		q.Enqueue(&pkt.Packet{ID: id, Rank: 7, Size: 10})
	}
	for _, want := range ids {
		p := q.Dequeue()
		if p.ID != want {
			t.Fatalf("tie order violated: got id %d, want %d", p.ID, want)
		}
	}
}

func TestPIFOEvictsWorstWhenFull(t *testing.T) {
	var dropped []int64
	q := NewPIFO(Config{CapacityBytes: 300, OnDrop: func(p *pkt.Packet, _ DropCause) { dropped = append(dropped, p.Rank) }})
	q.Enqueue(mkpkt(10, 100))
	q.Enqueue(mkpkt(20, 100))
	q.Enqueue(mkpkt(30, 100))
	// Better packet arrives into a full buffer: rank 30 is evicted.
	if !q.Enqueue(mkpkt(5, 100)) {
		t.Fatal("better packet should be admitted via eviction")
	}
	if len(dropped) != 1 || dropped[0] != 30 {
		t.Fatalf("dropped %v, want [30]", dropped)
	}
	// Worse packet is rejected outright.
	if q.Enqueue(mkpkt(99, 100)) {
		t.Fatal("worse packet should be dropped")
	}
	got := drain(q)
	want := []int64{5, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remaining %v, want %v", got, want)
		}
	}
	st := q.Stats()
	if st.Evicted != 1 || st.Dropped != 1 {
		t.Fatalf("stats %v, want 1 evict / 1 drop", st)
	}
}

func TestPIFOEvictionTieFavorsQueued(t *testing.T) {
	q := NewPIFO(Config{CapacityBytes: 100})
	q.Enqueue(mkpkt(10, 100))
	if q.Enqueue(mkpkt(10, 100)) {
		t.Fatal("equal-rank arrival into full buffer must be dropped, not evict")
	}
}

func TestPIFOBytesAccounting(t *testing.T) {
	q := NewPIFO(Config{})
	q.Enqueue(mkpkt(1, 100))
	q.Enqueue(mkpkt(2, 250))
	if q.Bytes() != 350 || q.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 350/2", q.Bytes(), q.Len())
	}
	q.Dequeue()
	if q.Bytes() != 250 || q.Len() != 1 {
		t.Fatalf("after dequeue bytes=%d len=%d", q.Bytes(), q.Len())
	}
}

func TestPIFOPeek(t *testing.T) {
	q := NewPIFO(Config{})
	if q.Peek() != nil {
		t.Fatal("peek on empty should be nil")
	}
	q.Enqueue(mkpkt(5, 10))
	q.Enqueue(mkpkt(2, 10))
	if q.Peek().Rank != 2 {
		t.Fatalf("peek rank %d, want 2", q.Peek().Rank)
	}
	if q.Len() != 2 {
		t.Fatal("peek must not remove")
	}
}

func TestPIFOEmptyDequeue(t *testing.T) {
	q := NewPIFO(Config{})
	if q.Dequeue() != nil {
		t.Fatal("dequeue on empty should be nil")
	}
}

// TestPIFOPropertySorted: any enqueue sequence dequeues in sorted order.
func TestPIFOPropertySorted(t *testing.T) {
	f := func(ranks []int16) bool {
		q := NewPIFO(Config{CapacityBytes: 1 << 30})
		for _, r := range ranks {
			q.Enqueue(mkpkt(int64(r), 1))
		}
		out := drain(q)
		return sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPIFOPropertyKeepsBest: under overflow, the set kept is the best-ranked
// prefix of the offered packets.
func TestPIFOPropertyKeepsBest(t *testing.T) {
	f := func(ranks []uint8) bool {
		const keep = 5
		q := NewPIFO(Config{CapacityBytes: keep}) // 1-byte packets
		for _, r := range ranks {
			q.Enqueue(mkpkt(int64(r), 1))
		}
		out := drain(q)
		all := make([]int64, len(ranks))
		for i, r := range ranks {
			all[i] = int64(r)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		want := all
		if len(want) > keep {
			want = want[:keep]
		}
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- FIFO ---

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO(Config{})
	for _, r := range []int64{5, 1, 9} {
		q.Enqueue(mkpkt(r, 10))
	}
	got := drain(q)
	want := []int64{5, 1, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order %v, want %v", got, want)
		}
	}
}

func TestFIFOTailDrop(t *testing.T) {
	drops := 0
	q := NewFIFO(Config{CapacityBytes: 100, OnDrop: func(*pkt.Packet, DropCause) { drops++ }})
	if !q.Enqueue(mkpkt(1, 60)) || !q.Enqueue(mkpkt(2, 40)) {
		t.Fatal("within capacity should be admitted")
	}
	if q.Enqueue(mkpkt(0, 1)) {
		t.Fatal("overflow should tail-drop regardless of rank")
	}
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
}

func TestFIFOPeekAndEmpty(t *testing.T) {
	q := NewFIFO(Config{})
	if q.Peek() != nil || q.Dequeue() != nil {
		t.Fatal("empty FIFO should return nil")
	}
	q.Enqueue(mkpkt(3, 10))
	if q.Peek().Rank != 3 || q.Len() != 1 {
		t.Fatal("peek broken")
	}
}

func TestRingGrowth(t *testing.T) {
	q := NewFIFO(Config{CapacityBytes: 1 << 30})
	const n = 1000
	for i := 0; i < n; i++ {
		q.Enqueue(&pkt.Packet{ID: uint64(i), Size: 1})
	}
	for i := 0; i < n; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != uint64(i) {
			t.Fatalf("ring order broken at %d: %v", i, p)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	q := NewFIFO(Config{CapacityBytes: 1 << 30})
	id := uint64(0)
	next := uint64(0)
	// Interleave pushes and pops to force head wraparound.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Enqueue(&pkt.Packet{ID: id, Size: 1})
			id++
		}
		for i := 0; i < 2; i++ {
			p := q.Dequeue()
			if p.ID != next {
				t.Fatalf("wraparound order broken: got %d, want %d", p.ID, next)
			}
			next++
		}
	}
}

// --- MQ ---

func TestMQStrictPriority(t *testing.T) {
	// Map rank ranges to 3 queues: [0,10) -> 0, [10,20) -> 1, rest -> 2.
	q := NewMQ(Config{}, 3, func(p *pkt.Packet) int { return int(p.Rank / 10) })
	q.Enqueue(mkpkt(25, 10))
	q.Enqueue(mkpkt(5, 10))
	q.Enqueue(mkpkt(15, 10))
	q.Enqueue(mkpkt(7, 10))
	got := drain(q)
	want := []int64{5, 7, 15, 25}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MQ order %v, want %v", got, want)
		}
	}
}

func TestMQMapperClamping(t *testing.T) {
	q := NewMQ(Config{}, 2, func(p *pkt.Packet) int { return int(p.Rank) })
	q.Enqueue(mkpkt(-5, 10)) // clamps to queue 0
	q.Enqueue(mkpkt(99, 10)) // clamps to queue 1
	if q.QueueLen(0) != 1 || q.QueueLen(1) != 1 {
		t.Fatalf("clamping failed: q0=%d q1=%d", q.QueueLen(0), q.QueueLen(1))
	}
}

func TestMQPerQueueCapacity(t *testing.T) {
	q := NewMQ(Config{CapacityBytes: 200}, 2, func(p *pkt.Packet) int { return 0 })
	if !q.Enqueue(mkpkt(1, 100)) {
		t.Fatal("first packet fits in queue 0's 100-byte share")
	}
	if q.Enqueue(mkpkt(1, 50)) {
		t.Fatal("queue 0 share exhausted; should drop")
	}
}

func TestMQInversionCounting(t *testing.T) {
	// All packets into one queue; dequeue of a high rank while a lower
	// rank waits in a lower-priority queue counts as an inversion.
	q := NewMQ(Config{}, 2, func(p *pkt.Packet) int {
		if p.Rank >= 100 {
			return 0 // misconfigured on purpose: high ranks to high priority
		}
		return 1
	})
	q.Enqueue(mkpkt(100, 10))
	q.Enqueue(mkpkt(1, 10))
	q.Dequeue() // dequeues rank 100 while rank 1 waits -> inversion
	if q.Stats().Inversion != 1 {
		t.Fatalf("inversions = %d, want 1", q.Stats().Inversion)
	}
}

func TestMQPanics(t *testing.T) {
	assertPanics(t, func() { NewMQ(Config{}, 0, func(*pkt.Packet) int { return 0 }) })
	assertPanics(t, func() { NewMQ(Config{}, 1, nil) })
}

// --- SP-PIFO ---

func TestSPPIFOSingleQueueIsFIFO(t *testing.T) {
	q := NewSPPIFO(Config{}, 1)
	for _, r := range []int64{5, 1, 9} {
		q.Enqueue(mkpkt(r, 10))
	}
	got := drain(q)
	want := []int64{5, 1, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("1-queue SP-PIFO should be FIFO: %v", got)
		}
	}
}

func TestSPPIFOMappingAndPushUp(t *testing.T) {
	q := NewSPPIFO(Config{}, 2)
	// Bounds start at 0. Rank 5 maps to the lowest-priority queue (index
	// 1) whose bound (0) <= 5, pushing its bound up to 5.
	q.Enqueue(mkpkt(5, 10))
	if q.Bound(1) != 5 {
		t.Fatalf("bound[1] = %d, want 5", q.Bound(1))
	}
	// Rank 3 < bound[1]=5, so it maps to queue 0.
	q.Enqueue(mkpkt(3, 10))
	if q.Bound(0) != 3 {
		t.Fatalf("bound[0] = %d, want 3", q.Bound(0))
	}
	// Dequeue order: queue 0 first.
	if p := q.Dequeue(); p.Rank != 3 {
		t.Fatalf("first dequeue rank %d, want 3", p.Rank)
	}
}

func TestSPPIFOPushDownOnInversion(t *testing.T) {
	q := NewSPPIFO(Config{}, 2)
	q.Enqueue(mkpkt(10, 10)) // queue 1, bound[1]=10
	q.Enqueue(mkpkt(8, 10))  // queue 0, bound[0]=8
	// Rank 2 < bound[0]: inversion. Push-down by 8-2=6.
	q.Enqueue(mkpkt(2, 10))
	if q.Stats().Inversion != 1 {
		t.Fatalf("inversions = %d, want 1", q.Stats().Inversion)
	}
	if q.Bound(0) != 2 || q.Bound(1) != 4 {
		t.Fatalf("bounds after push-down = %d,%d want 2,4", q.Bound(0), q.Bound(1))
	}
}

func TestSPPIFOApproximatesPIFO(t *testing.T) {
	// With monotonically increasing ranks SP-PIFO is exact.
	q := NewSPPIFO(Config{CapacityBytes: 1 << 30}, 8)
	for r := int64(0); r < 100; r++ {
		q.Enqueue(mkpkt(r, 1))
	}
	out := drain(q)
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatal("increasing ranks must dequeue sorted")
	}
}

func TestSPPIFOFewerInversionsWithMoreQueues(t *testing.T) {
	inversions := func(nq int) int {
		rng := rand.New(rand.NewSource(7))
		q := NewSPPIFO(Config{CapacityBytes: 1 << 30}, nq)
		inv := 0
		var prev int64 = -1 << 62
		for i := 0; i < 2000; i++ {
			q.Enqueue(mkpkt(int64(rng.Intn(1000)), 1))
			if i%4 == 3 {
				p := q.Dequeue()
				if p.Rank < prev {
					inv++
				}
				prev = p.Rank
			}
		}
		return inv
	}
	if i8, i1 := inversions(8), inversions(1); i8 >= i1 {
		t.Fatalf("8 queues should invert less than 1 queue: %d vs %d", i8, i1)
	}
}

func TestSPPIFODropWhenFull(t *testing.T) {
	q := NewSPPIFO(Config{CapacityBytes: 10}, 2)
	q.Enqueue(mkpkt(1, 10))
	if q.Enqueue(mkpkt(1, 1)) {
		t.Fatal("full SP-PIFO should drop")
	}
}

func TestSPPIFOPanics(t *testing.T) {
	assertPanics(t, func() { NewSPPIFO(Config{}, 0) })
}

// --- AIFO ---

func TestAIFOAdmitsWhileWindowCold(t *testing.T) {
	q := NewAIFO(AIFOConfig{WindowSize: 8})
	for i := 0; i < 8; i++ {
		if !q.Enqueue(mkpkt(int64(i), 10)) {
			t.Fatalf("cold-window arrival %d dropped", i)
		}
	}
}

func TestAIFORejectsHighRankWhenNearlyFull(t *testing.T) {
	q := NewAIFO(AIFOConfig{
		Config:     Config{CapacityBytes: 1000},
		WindowSize: 4,
		Burst:      0.1,
	})
	// Warm the window with low ranks and fill most of the queue.
	for i := 0; i < 9; i++ {
		q.Enqueue(mkpkt(1, 100))
	}
	// Queue 90% full: headroom 0.1, threshold ~0.11. A rank above the
	// whole window (quantile 1.0) must be rejected.
	if q.Enqueue(mkpkt(100, 100)) {
		t.Fatal("high-rank packet should be rejected by admission control")
	}
	// A rank at the bottom of the window (quantile 0) is admitted.
	if !q.Enqueue(mkpkt(0, 100)) {
		t.Fatal("low-rank packet should be admitted")
	}
}

func TestAIFOFIFOOrderAmongAdmitted(t *testing.T) {
	q := NewAIFO(AIFOConfig{WindowSize: 4})
	for _, r := range []int64{9, 1, 5} {
		q.Enqueue(mkpkt(r, 10))
	}
	got := drain(q)
	want := []int64{9, 1, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AIFO must preserve arrival order: %v", got)
		}
	}
}

func TestAIFOHardCapacity(t *testing.T) {
	q := NewAIFO(AIFOConfig{Config: Config{CapacityBytes: 100}, WindowSize: 4})
	q.Enqueue(mkpkt(1, 100))
	if q.Enqueue(mkpkt(1, 1)) {
		t.Fatal("over-capacity arrival must drop")
	}
}

func TestAIFOPanicsOnBadBurst(t *testing.T) {
	assertPanics(t, func() { NewAIFO(AIFOConfig{Burst: 1.5}) })
	assertPanics(t, func() { NewAIFO(AIFOConfig{Burst: -0.2}) })
}

// --- Calendar ---

func TestCalendarBucketsSortCoarsely(t *testing.T) {
	q := NewCalendar(Config{}, 10, 10)
	for _, r := range []int64{95, 5, 55, 15} {
		q.Enqueue(mkpkt(r, 10))
	}
	got := drain(q)
	want := []int64{5, 15, 55, 95}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("calendar order %v, want %v", got, want)
		}
	}
}

func TestCalendarFIFOWithinBucket(t *testing.T) {
	q := NewCalendar(Config{}, 4, 100)
	q.Enqueue(&pkt.Packet{ID: 1, Rank: 10, Size: 1})
	q.Enqueue(&pkt.Packet{ID: 2, Rank: 90, Size: 1}) // same bucket
	q.Enqueue(&pkt.Packet{ID: 3, Rank: 50, Size: 1}) // same bucket
	for _, want := range []uint64{1, 2, 3} {
		if p := q.Dequeue(); p.ID != want {
			t.Fatalf("within-bucket order: got %d, want %d", p.ID, want)
		}
	}
}

func TestCalendarHorizonClamp(t *testing.T) {
	q := NewCalendar(Config{}, 2, 10)
	q.Enqueue(mkpkt(5, 1))    // bucket 0
	q.Enqueue(mkpkt(1000, 1)) // far beyond horizon: clamps to last bucket
	if p := q.Dequeue(); p.Rank != 5 {
		t.Fatalf("first dequeue %d, want 5", p.Rank)
	}
	if p := q.Dequeue(); p.Rank != 1000 {
		t.Fatalf("second dequeue %d, want 1000", p.Rank)
	}
}

func TestCalendarRotationAdvancesBase(t *testing.T) {
	q := NewCalendar(Config{}, 4, 10)
	q.Enqueue(mkpkt(35, 1)) // last bucket (offset 3)
	if p := q.Dequeue(); p == nil || p.Rank != 35 {
		t.Fatal("should rotate to the occupied bucket")
	}
	// After rotation, base has advanced: a small rank now lands in the
	// current bucket (no past buckets exist).
	q.Enqueue(mkpkt(0, 1))
	if p := q.Dequeue(); p == nil || p.Rank != 0 {
		t.Fatal("past-rank packet should be dequeued from current bucket")
	}
}

func TestCalendarDropWhenFull(t *testing.T) {
	q := NewCalendar(Config{CapacityBytes: 10}, 2, 10)
	q.Enqueue(mkpkt(1, 10))
	if q.Enqueue(mkpkt(1, 1)) {
		t.Fatal("full calendar should drop")
	}
}

func TestCalendarPanics(t *testing.T) {
	assertPanics(t, func() { NewCalendar(Config{}, 0, 10) })
	assertPanics(t, func() { NewCalendar(Config{}, 4, 0) })
}

// --- registry ---

func TestRegistryNames(t *testing.T) {
	for _, name := range []string{"pifo", "fifo", "aifo", "drr", "sppifo:4", "calendar:8:100"} {
		s, err := New(name, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	for _, name := range []string{"bogus", "sppifo", "sppifo:x", "sppifo:0", "calendar:4", "calendar:a:b"} {
		if _, err := New(name, Config{}); err == nil {
			t.Fatalf("New(%q) should fail", name)
		}
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if len(names) != 6 {
		t.Fatalf("Names() = %v, want 6 entries", names)
	}
}

// --- cross-scheduler properties ---

// TestConservation: packets in = packets out + packets dropped, for every
// scheduler type.
func TestConservation(t *testing.T) {
	builders := map[string]func(drop DropFn) Scheduler{
		"pifo":   func(d DropFn) Scheduler { return NewPIFO(Config{CapacityBytes: 50, OnDrop: d}) },
		"fifo":   func(d DropFn) Scheduler { return NewFIFO(Config{CapacityBytes: 50, OnDrop: d}) },
		"sppifo": func(d DropFn) Scheduler { return NewSPPIFO(Config{CapacityBytes: 50, OnDrop: d}, 4) },
		"aifo": func(d DropFn) Scheduler {
			return NewAIFO(AIFOConfig{Config: Config{CapacityBytes: 50, OnDrop: d}, WindowSize: 8})
		},
		"calendar": func(d DropFn) Scheduler { return NewCalendar(Config{CapacityBytes: 50, OnDrop: d}, 4, 25) },
		"mq": func(d DropFn) Scheduler {
			return NewMQ(Config{CapacityBytes: 50, OnDrop: d}, 2, func(p *pkt.Packet) int { return int(p.Rank % 2) })
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			drops := 0
			s := build(func(*pkt.Packet, DropCause) { drops++ })
			sent, recv := 0, 0
			for i := 0; i < 500; i++ {
				s.Enqueue(mkpkt(int64(rng.Intn(100)), 1+rng.Intn(5)))
				sent++
				if rng.Intn(3) == 0 {
					if s.Dequeue() != nil {
						recv++
					}
				}
			}
			for s.Dequeue() != nil {
				recv++
			}
			if sent != recv+drops {
				t.Fatalf("conservation violated: sent=%d recv=%d drops=%d", sent, recv, drops)
			}
			if s.Len() != 0 || s.Bytes() != 0 {
				t.Fatalf("drained scheduler not empty: len=%d bytes=%d", s.Len(), s.Bytes())
			}
		})
	}
}

// TestWorkConservation: a non-empty scheduler always dequeues something.
func TestWorkConservation(t *testing.T) {
	schedulers := []Scheduler{
		NewPIFO(Config{}),
		NewFIFO(Config{}),
		NewSPPIFO(Config{}, 4),
		NewAIFO(AIFOConfig{}),
		NewCalendar(Config{}, 4, 10),
		NewMQ(Config{}, 2, func(p *pkt.Packet) int { return 0 }),
	}
	for _, s := range schedulers {
		s.Enqueue(mkpkt(42, 10))
		if s.Len() > 0 && s.Dequeue() == nil {
			t.Fatalf("%s: non-empty scheduler returned nil", s.Name())
		}
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// --- benchmarks ---

func BenchmarkPIFOEnqueueDequeue(b *testing.B) {
	q := NewPIFO(Config{CapacityBytes: 1 << 30})
	rng := rand.New(rand.NewSource(1))
	ranks := make([]int64, 1024)
	for i := range ranks {
		ranks[i] = int64(rng.Intn(1 << 20))
	}
	p := &pkt.Packet{Size: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rank = ranks[i%1024]
		q.Enqueue(p)
		if q.Len() > 512 {
			q.Dequeue()
		}
	}
}

func BenchmarkSPPIFOEnqueueDequeue(b *testing.B) {
	q := NewSPPIFO(Config{CapacityBytes: 1 << 30}, 8)
	rng := rand.New(rand.NewSource(1))
	p := &pkt.Packet{Size: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rank = int64(rng.Intn(1 << 20))
		q.Enqueue(p)
		if q.Len() > 512 {
			q.Dequeue()
		}
	}
}

func BenchmarkAIFOEnqueue(b *testing.B) {
	q := NewAIFO(AIFOConfig{Config: Config{CapacityBytes: 1 << 30}})
	rng := rand.New(rand.NewSource(1))
	p := &pkt.Packet{Size: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rank = int64(rng.Intn(1 << 20))
		q.Enqueue(p)
		if q.Len() > 512 {
			q.Dequeue()
		}
	}
}
