package sched

import (
	"fmt"

	"qvisor/internal/pkt"
)

// Admission is a combined admission-and-scheduling discipline in the style
// of PACKS ("Everything Matters in Programmable Packet Scheduling", Alcoz
// et al.): a bank of strict-priority FIFO queues fronted by rank-aware
// admission control with *dynamic per-queue bounds*. The insight of that
// work is that under a limited number of queues, admission and scheduling
// must be co-designed — dropping the right packets at enqueue buys more
// ordering fidelity than any queue-mapping rule alone.
//
// Like AIFO, the discipline tracks a sliding window of recently observed
// ranks. The window serves two purposes:
//
//   - Admission: a packet is admitted only if its rank quantile fits the
//     remaining buffer headroom (inflated by a burstiness allowance k),
//     exactly AIFO's rule. Rank-based rejections report CauseAdmission;
//     rejections for lack of buffer space report CauseOverflow.
//   - Mapping: the admitted rank distribution is split into n quantile
//     bands, one per queue; queue i's dynamic bound is the window rank at
//     quantile (i+1)/n. An admitted packet joins the first queue whose
//     bound covers its rank, so the queue boundaries track the offered
//     load instead of being fixed at synthesis time.
//
// Bounds are refreshed every UpdateEvery arrivals from a sorted snapshot
// of the window, amortizing the sort; they are monotone non-decreasing by
// construction (quantiles of one sorted sample). Until the window first
// fills, the discipline admits everything and behaves as a single FIFO
// (queue 0), again like AIFO's cold start.
type Admission struct {
	cfg    Config
	queues []ring
	qbytes []int
	bounds []int64 // bounds[i]: highest rank mapped to queue i (dynamic)
	warm   bool    // window filled at least once; bounds are live
	n      int
	bytes  int

	window  []int64 // circular buffer of recent ranks
	sorted  []int64 // scratch for the quantile refresh (kept warm)
	wpos    int
	wfill   int
	k       float64
	refresh int // arrivals until the next bound refresh
	every   int
	stats   Stats
}

// AdmissionConfig parametrizes the combined admission+scheduling backend.
type AdmissionConfig struct {
	Config
	// Queues is the number of strict-priority FIFO queues. Zero means 8, a
	// common per-port queue count on commodity switches.
	Queues int
	// WindowSize is the number of recent ranks used for quantile
	// estimation. Zero means 64 (the sample size of AIFO's prototype).
	WindowSize int
	// Burst is the admission burstiness allowance k in [0,1); larger k
	// admits more aggressively. Zero means 0.1.
	Burst float64
	// UpdateEvery is the number of arrivals between per-queue bound
	// refreshes. Zero means 16; 1 refreshes on every arrival.
	UpdateEvery int
}

// NewAdmission returns an admission-aware strict-priority scheduler. It
// panics on Queues < 0, Burst outside [0,1), or UpdateEvery < 0.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Queues == 0 {
		cfg.Queues = 8
	}
	if cfg.Queues < 1 {
		panic(fmt.Sprintf("sched: NewAdmission with queues=%d", cfg.Queues))
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 64
	}
	if cfg.Burst == 0 {
		cfg.Burst = 0.1
	}
	if cfg.Burst < 0 || cfg.Burst >= 1 {
		panic("sched: Admission burst parameter must be in [0,1)")
	}
	if cfg.UpdateEvery == 0 {
		cfg.UpdateEvery = 16
	}
	if cfg.UpdateEvery < 0 {
		panic(fmt.Sprintf("sched: NewAdmission with updateEvery=%d", cfg.UpdateEvery))
	}
	return &Admission{
		cfg:    cfg.Config,
		queues: make([]ring, cfg.Queues),
		qbytes: make([]int, cfg.Queues),
		bounds: make([]int64, cfg.Queues),
		n:      cfg.Queues,
		window: make([]int64, cfg.WindowSize),
		sorted: make([]int64, cfg.WindowSize),
		k:      cfg.Burst,
		every:  cfg.UpdateEvery,
	}
}

// Name implements Scheduler.
func (q *Admission) Name() string { return fmt.Sprintf("admission%d", q.n) }

// NumQueues returns the number of strict-priority queues.
func (q *Admission) NumQueues() int { return q.n }

// Len implements Scheduler.
func (q *Admission) Len() int {
	total := 0
	for i := range q.queues {
		total += q.queues[i].n
	}
	return total
}

// Bytes implements Scheduler.
func (q *Admission) Bytes() int { return q.bytes }

// Stats returns a snapshot of the scheduler's counters.
func (q *Admission) Stats() Stats { return q.stats }

// SetMetrics implements MetricsSetter.
func (q *Admission) SetMetrics(m *Metrics) { q.cfg.Metrics = m }

// Bound returns queue i's current dynamic rank bound (the highest rank the
// queue accepts), for tests and inspection. Meaningful once the window has
// filled; before that every packet maps to queue 0.
func (q *Admission) Bound(i int) int64 { return q.bounds[i] }

// Warm reports whether the rank window has filled at least once, i.e. the
// quantile admission rule and the dynamic bounds are active.
func (q *Admission) Warm() bool { return q.warm }

// Enqueue implements Scheduler: quantile admission, then dynamic-bound
// queue mapping. Exactly one drop callback fires for a refused packet —
// CauseOverflow when the buffer lacks space, CauseAdmission when the rank
// quantile exceeds the admissible headroom.
func (q *Admission) Enqueue(p *pkt.Packet) bool {
	cap := q.cfg.capacity()
	admit := q.bytes+p.Size <= cap
	cause := CauseOverflow
	if admit && q.warm {
		// AIFO's admission rule: admit iff the rank's quantile is within
		// the free fraction of the buffer, inflated by 1/(1-k).
		quant := q.quantile(p.Rank)
		headroom := float64(cap-q.bytes) / float64(cap)
		if quant > headroom/(1-q.k) {
			admit = false
			cause = CauseAdmission
		}
	}
	// Observe every arrival, admitted or not, so the window reflects the
	// offered load rather than the survivors.
	q.observe(p.Rank)
	if !admit {
		q.stats.Dropped++
		q.cfg.Metrics.onDrop()
		q.cfg.drop(p, cause)
		return false
	}
	q.put(q.queueFor(p.Rank), p)
	return true
}

// queueFor maps a rank to its strict-priority queue: the first queue whose
// dynamic bound covers the rank; ranks beyond every bound take the last
// queue. Cold start (window not yet filled) maps everything to queue 0.
func (q *Admission) queueFor(rank int64) int {
	if !q.warm {
		return 0
	}
	for i := 0; i < q.n-1; i++ {
		if rank <= q.bounds[i] {
			return i
		}
	}
	return q.n - 1
}

func (q *Admission) put(i int, p *pkt.Packet) {
	q.queues[i].push(p)
	q.qbytes[i] += p.Size
	q.bytes += p.Size
	q.stats.Enqueued++
	if m := q.cfg.Metrics; m != nil { // guard: Len is O(queues)
		m.onEnqueue(p, q.Len(), q.bytes)
	}
}

func (q *Admission) observe(rank int64) {
	q.window[q.wpos] = rank
	q.wpos = (q.wpos + 1) % len(q.window)
	if q.wfill < len(q.window) {
		q.wfill++
	}
	q.refresh--
	if q.refresh <= 0 || (!q.warm && q.wfill == len(q.window)) {
		q.refreshBounds()
		q.refresh = q.every
	}
}

// refreshBounds recomputes the per-queue bounds as quantiles of the sorted
// window snapshot: bound[i] is the window rank at quantile (i+1)/n, so the
// bounds are monotone non-decreasing by construction and the queues split
// the observed rank distribution into n equal-probability bands.
func (q *Admission) refreshBounds() {
	if q.wfill < len(q.window) {
		return // cold: keep FIFO behaviour until the sample is full
	}
	q.warm = true
	copy(q.sorted, q.window)
	sortInt64s(q.sorted)
	n := len(q.sorted)
	for i := 0; i < q.n; i++ {
		// Index of quantile (i+1)/n, clamped to the last sample.
		idx := (i + 1) * n / q.n
		if idx > 0 {
			idx--
		}
		q.bounds[i] = q.sorted[idx]
	}
}

// quantile returns the fraction of windowed ranks strictly smaller than r.
func (q *Admission) quantile(r int64) float64 {
	if q.wfill == 0 {
		return 0
	}
	smaller := 0
	for i := 0; i < q.wfill; i++ {
		if q.window[i] < r {
			smaller++
		}
	}
	return float64(smaller) / float64(q.wfill)
}

// Dequeue implements Scheduler: strict priority across the queue bank.
func (q *Admission) Dequeue() *pkt.Packet {
	for i := range q.queues {
		if q.queues[i].n == 0 {
			continue
		}
		p := q.queues[i].pop()
		q.qbytes[i] -= p.Size
		q.bytes -= p.Size
		q.stats.Dequeued++
		if m := q.cfg.Metrics; m != nil { // guard: Len is O(queues)
			m.onDequeue(p, q.Len(), q.bytes)
		}
		return p
	}
	return nil
}

// Reset implements Scheduler: queues are emptied, the rank window and the
// dynamic bounds return to their cold state, and the counters zero — as if
// freshly constructed, with rings and scratch buffers kept warm.
func (q *Admission) Reset() {
	for i := range q.queues {
		q.queues[i].reset()
		q.qbytes[i] = 0
		q.bounds[i] = 0
	}
	q.warm = false
	q.bytes = 0
	q.wpos = 0
	q.wfill = 0
	q.refresh = 0
	q.stats = Stats{}
}

// sortInt64s sorts s ascending in place without allocating. An insertion
// sort is used below 32 elements (windows are typically 64) and pdq via
// sort.Slice is avoided entirely: its closure forces the slice header to
// escape. sort.Sort on a named slice type would also allocate the
// interface box once per call; the hand-rolled heapsort here stays on the
// stack for any size.
func sortInt64s(s []int64) {
	if len(s) < 32 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	// Heapsort: O(n log n), in place, allocation free.
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownInt64s(s, i, n)
	}
	for end := n - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftDownInt64s(s, 0, end)
	}
}

func siftDownInt64s(s []int64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && s[child+1] > s[child] {
			child++
		}
		if s[root] >= s[child] {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}

var _ Scheduler = (*Admission)(nil)
