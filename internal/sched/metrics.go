package sched

import (
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/sim"
)

// Metric families exported by instrumented schedulers. Every family carries
// at least a scheduler label; callers may add more (netsim adds role).
const (
	MetricEnqueued   = "qvisor_sched_enqueued_total"
	MetricDequeued   = "qvisor_sched_dequeued_total"
	MetricDropped    = "qvisor_sched_dropped_total"
	MetricEvicted    = "qvisor_sched_evicted_total"
	MetricInversions = "qvisor_sched_inversions_total"
	MetricDepthPkts  = "qvisor_sched_queue_depth_packets"
	MetricDepthBytes = "qvisor_sched_queue_depth_bytes"
	MetricSojournNs  = "qvisor_sched_sojourn_ns"
)

// metricsStage is the single-writer staging area: per-event bookkeeping is
// plain arithmetic here, and Flush publishes the accumulated deltas to the
// registry with a handful of atomic adds. This keeps the instrumented hot
// path within a few nanoseconds of the uninstrumented one — per-event
// atomics would cost more than the schedulers' own work (cf. Eiffel's
// insistence on cheap per-packet bookkeeping).
type metricsStage struct {
	enqueued   uint64
	dequeued   uint64
	dropped    uint64
	evicted    uint64
	inversions uint64
	depthPkts  int
	depthBytes int
	sojourn    [obs.HistogramBuckets + 1]uint64
	sojournSum int64
}

// Metrics bundles the registry-backed instruments of one scheduler. Wire it
// through Config.Metrics (or SetMetrics after construction); a nil *Metrics
// — the default — keeps the hot path free of instrumentation, so
// uninstrumented runs pay only a nil check per event. The plain Stats
// counters stay authoritative either way; Metrics mirrors them into the
// registry for export.
//
// A Metrics instance is single-writer: the goroutine driving the scheduler
// owns it and must call Flush to publish staged counts to the registry
// (netsim does this from Run and PortStats). Flushing uses atomic adds, so
// instances registered with identical labels — e.g. one per parallel sweep
// worker — aggregate into shared series safely.
type Metrics struct {
	enqueued   *obs.Counter
	dequeued   *obs.Counter
	dropped    *obs.Counter
	evicted    *obs.Counter
	inversions *obs.Counter
	depthPkts  *obs.Gauge
	depthBytes *obs.Gauge
	sojourn    *obs.Histogram
	clock      func() sim.Time

	st metricsStage
}

// NewMetrics registers the scheduler metric families under the given labels
// (conventionally at least obs.L("scheduler", q.Name())) and returns the
// handle bundle. A nil registry returns nil, which every observation method
// accepts. Two schedulers registered with identical labels share series:
// their counters aggregate, and the depth gauges reflect the most recent
// Flush — pass a distinguishing label (port, role) when that matters.
func NewMetrics(r *obs.Registry, labels ...obs.Label) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		enqueued:   r.Counter(MetricEnqueued, "Packets accepted by the scheduler.", labels...),
		dequeued:   r.Counter(MetricDequeued, "Packets transmitted by the scheduler.", labels...),
		dropped:    r.Counter(MetricDropped, "Packets rejected on arrival.", labels...),
		evicted:    r.Counter(MetricEvicted, "Queued packets removed to admit better-ranked arrivals.", labels...),
		inversions: r.Counter(MetricInversions, "Dequeues that violated global rank order.", labels...),
		depthPkts:  r.Gauge(MetricDepthPkts, "Packets queued at the last metrics flush.", labels...),
		depthBytes: r.Gauge(MetricDepthBytes, "Bytes queued at the last metrics flush.", labels...),
		sojourn:    r.Histogram(MetricSojournNs, "Per-packet queueing delay in simulated nanoseconds (log2 buckets).", labels...),
	}
}

// WithClock attaches a clock used to timestamp enqueues and measure
// per-packet sojourn time on dequeue. Without a clock the sojourn histogram
// stays empty (schedulers have no notion of time of their own; the
// simulator's event engine supplies it).
func (m *Metrics) WithClock(now func() sim.Time) *Metrics {
	if m != nil {
		m.clock = now
	}
	return m
}

// Flush publishes the staged counts to the registry and resets the stage.
// Call it at sync points (end of a run, before a stats read or scrape); the
// registry's series lag the scheduler by at most one flush interval.
func (m *Metrics) Flush() {
	if m == nil {
		return
	}
	st := &m.st
	if st.enqueued != 0 {
		m.enqueued.Add(st.enqueued)
		st.enqueued = 0
	}
	if st.dequeued != 0 {
		m.dequeued.Add(st.dequeued)
		st.dequeued = 0
	}
	if st.dropped != 0 {
		m.dropped.Add(st.dropped)
		st.dropped = 0
	}
	if st.evicted != 0 {
		m.evicted.Add(st.evicted)
		st.evicted = 0
	}
	if st.inversions != 0 {
		m.inversions.Add(st.inversions)
		st.inversions = 0
	}
	m.depthPkts.Set(float64(st.depthPkts))
	m.depthBytes.Set(float64(st.depthBytes))
	m.sojourn.AddBuckets(st.sojourn[:], st.sojournSum)
	st.sojourn = [obs.HistogramBuckets + 1]uint64{}
	st.sojournSum = 0
}

// onEnqueue records an accepted packet and the post-enqueue queue depth.
func (m *Metrics) onEnqueue(p *pkt.Packet, pkts, bytes int) {
	if m == nil {
		return
	}
	m.st.enqueued++
	m.st.depthPkts = pkts
	m.st.depthBytes = bytes
	if m.clock != nil {
		p.EnqueuedAt = m.clock()
	}
}

// onDequeue records a transmitted packet, the post-dequeue queue depth, and
// the packet's sojourn time when a clock is attached.
func (m *Metrics) onDequeue(p *pkt.Packet, pkts, bytes int) {
	if m == nil {
		return
	}
	m.st.dequeued++
	m.st.depthPkts = pkts
	m.st.depthBytes = bytes
	if m.clock != nil {
		d := int64(m.clock() - p.EnqueuedAt)
		m.st.sojourn[obs.BucketIndex(d)]++
		m.st.sojournSum += d
	}
}

// onDrop records an arrival rejected by the scheduler.
func (m *Metrics) onDrop() {
	if m == nil {
		return
	}
	m.st.dropped++
}

// onEvict records a queued packet removed to admit a better-ranked arrival.
func (m *Metrics) onEvict() {
	if m == nil {
		return
	}
	m.st.evicted++
}

// onInversion records a dequeue that violated global rank order.
func (m *Metrics) onInversion() {
	if m == nil {
		return
	}
	m.st.inversions++
}

// MetricsSetter is implemented by every scheduler in this package: it
// attaches an instrument bundle after construction. This lets harnesses
// (netsim ports, experiment runners) instrument schedulers built by opaque
// factories without changing factory signatures.
type MetricsSetter interface {
	SetMetrics(*Metrics)
}
