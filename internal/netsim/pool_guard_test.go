//go:build pktdebug

package netsim

import (
	"testing"
)

// TestOwnershipUnderGuard replays the lossy workload with the pktdebug
// live-set guard active: any double release or foreign Put anywhere in the
// data plane panics, and the accounting must still balance. This is the
// strongest ownership check the simulator has — CI runs it with
// `go test -tags pktdebug`.
func TestOwnershipUnderGuard(t *testing.T) {
	n, err := New(lossyPoisson(t, 17))
	if err != nil {
		t.Fatal(err)
	}
	n.Run() // panics on any ownership violation under pktdebug
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool outstanding = %d after drain, want 0", out)
	}
}
