package netsim

import (
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/trace"
)

// Port is one unidirectional output port: a scheduler feeding a
// store-and-forward transmitter onto a link with fixed rate and propagation
// delay. Dequeue order is entirely up to the scheduler, which is where
// every scheduling policy in the reproduction takes effect.
type Port struct {
	net     *Network
	name    string
	q       sched.Scheduler
	rateBps float64
	busy    bool
	deliver func(now sim.Time, p *pkt.Packet)

	// inflight holds packets serialized onto the wire but not yet
	// delivered, in transmission order. Because the propagation delay is
	// constant and transmissions never overlap, arrivals occur in exactly
	// that order, so two persistent event callbacks (txDone, arrive) can
	// replace the pair of per-packet closures the transmit path used to
	// allocate.
	inflight pktRing
	txDone   sim.Event
	arrive   sim.Event

	// watch mirrors a sampled subset of this port's queue into the
	// fidelity watchdog's shadow oracle; nil (a no-op on every call)
	// when the network runs without one.
	watch *slo.PortWatch

	// Telemetry.
	txBytes   uint64
	txPackets uint64
	drops     uint64
	busyTime  sim.Time
	maxQueued int

	// Registry-backed instruments, nil when the network is uninstrumented.
	// Counters are shared per device role; flushObs publishes the deltas of
	// the plain telemetry fields above (flushed* remember the high-water
	// marks already published), so the data path itself touches no atomics.
	obsTxBytes     *obs.Counter
	obsTxPackets   *obs.Counter
	obsDrops       *obs.Counter
	obsUtil        *obs.Gauge
	obsMaxQueued   *obs.Gauge
	flushedTxBytes uint64
	flushedTxPkts  uint64
	flushedDrops   uint64
}

func (n *Network) newPort(role string, id int, name string, rateBps float64, deliver func(sim.Time, *pkt.Packet)) *Port {
	pt := &Port{
		net:     n,
		name:    name,
		rateBps: rateBps,
		deliver: deliver,
	}
	if reg := n.cfg.Registry; reg != nil {
		rl := obs.L("role", role)
		pt.obsTxBytes = reg.Counter(MetricPortTxBytes,
			"Bytes transmitted onto the wire.", rl)
		pt.obsTxPackets = reg.Counter(MetricPortTxPackets,
			"Packets transmitted onto the wire.", rl)
		pt.obsDrops = reg.Counter(MetricPortDrops,
			"Packets dropped by port schedulers (admission drops and evictions).", rl)
		pl := obs.L("port", name)
		pt.obsUtil = reg.Gauge(MetricPortUtilization,
			"Busy time over elapsed time, 0-1.", pl)
		pt.obsMaxQueued = reg.Gauge(MetricPortMaxQueued,
			"High-water mark of the port's queue in bytes.", pl)
	}
	// The scheduler's drop callback is the single release point for
	// refused and evicted packets (see the ownership contract on
	// sched.Scheduler): nothing downstream sees them again. The cause
	// reported by the scheduler flows into the trace and the per-tenant
	// drop-cause counters.
	pt.watch = n.cfg.Watch.PortWatch()
	drop := sched.DropFn(func(p *pkt.Packet, cause sched.DropCause) {
		n.countDrop(p.Tenant, cause)
		pt.drops++
		n.cfg.Trace.RecordDrop(n.eng.Now(), name, p, cause.String())
		pt.watch.OnDrop(n.eng.Now(), p, cause)
		n.releasePkt(p)
	})
	pt.arrive = func(now sim.Time) {
		pt.deliver(now, pt.inflight.pop())
	}
	pt.txDone = func(end sim.Time) {
		pt.busy = false
		pt.net.eng.After(pt.net.cfg.PropDelay, pt.arrive)
		pt.kick(end)
	}
	if n.cfg.SchedulerFor != nil {
		pt.q = n.cfg.SchedulerFor(role, id, drop)
	}
	if pt.q == nil {
		pt.q = n.cfg.Scheduler(drop)
	}
	if ms, ok := pt.q.(sched.MetricsSetter); ok {
		if m := n.schedMetrics(role, pt.q.Name()); m != nil {
			ms.SetMetrics(m)
		}
	}
	return pt
}

// send enqueues p and starts transmitting if the line is idle. Drops and
// evictions are counted network-wide through the scheduler's drop callback.
func (pt *Port) send(now sim.Time, p *pkt.Packet) {
	if !pt.q.Enqueue(p) {
		return
	}
	pt.net.cfg.Trace.Record(now, trace.KindEnqueue, pt.name, p)
	pt.watch.OnEnqueue(now, p)
	if b := pt.q.Bytes(); b > pt.maxQueued {
		pt.maxQueued = b
	}
	pt.kick(now)
}

// kick starts the next transmission when the line is idle.
func (pt *Port) kick(now sim.Time) {
	if pt.busy {
		return
	}
	p := pt.q.Dequeue()
	if p == nil {
		return
	}
	pt.net.cfg.Trace.Record(now, trace.KindDequeue, pt.name, p)
	pt.watch.OnDequeue(now, p)
	pt.busy = true
	tx := txTime(p.Size, pt.rateBps)
	pt.txBytes += uint64(p.Size)
	pt.txPackets++
	pt.busyTime += tx
	pt.inflight.push(p)
	pt.net.eng.After(tx, pt.txDone)
}

// pktRing is a growable FIFO of packets on the wire.
type pktRing struct {
	buf  []*pkt.Packet
	head int
	n    int
}

func (r *pktRing) push(p *pkt.Packet) {
	if r.n == len(r.buf) {
		next := make([]*pkt.Packet, maxInt(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			next[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = next
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) pop() *pkt.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// newRemotePort builds a port whose receiving device lives on another
// shard: queueing, scheduling, and serialization are all local, but when
// a transmission completes the packet is handed to the shard coordinator
// stamped with its arrival time (tx end plus propagation delay) instead
// of becoming a local arrival event. Because that stamp is always at
// least PropDelay in the future, PropDelay is the conservative lookahead
// that lets shards run a full window in parallel.
func (n *Network) newRemotePort(role string, id int, name string, rateBps float64, link uint64, dst int) *Port {
	pt := n.newPort(role, id, name, rateBps, nil)
	pt.arrive = nil
	pt.txDone = func(end sim.Time) {
		pt.busy = false
		n.part.handoff(end+n.cfg.PropDelay, link, dst, pt.inflight.pop())
		pt.kick(end)
	}
	return pt
}

// Queue exposes the port's scheduler for inspection in tests.
func (pt *Port) Queue() sched.Scheduler { return pt.q }

// PortStats is the telemetry of one output port.
type PortStats struct {
	// Name identifies the port ("leaf0→spine1").
	Name string
	// TxBytes and TxPackets count transmissions.
	TxBytes   uint64
	TxPackets uint64
	// Utilization is busy time over elapsed time, 0–1.
	Utilization float64
	// MaxQueuedBytes is the high-water mark of the port's queue.
	MaxQueuedBytes int
}

func (pt *Port) stats(elapsed sim.Time) PortStats {
	util := 0.0
	if elapsed > 0 {
		util = float64(pt.busyTime) / float64(elapsed)
	}
	return PortStats{
		Name:           pt.name,
		TxBytes:        pt.txBytes,
		TxPackets:      pt.txPackets,
		Utilization:    util,
		MaxQueuedBytes: pt.maxQueued,
	}
}

// flushObs publishes the port's staged telemetry: counter deltas since the
// last flush plus the current gauge values.
func (pt *Port) flushObs(elapsed sim.Time) {
	if pt.obsUtil == nil {
		return
	}
	s := pt.stats(elapsed)
	pt.obsUtil.Set(s.Utilization)
	pt.obsMaxQueued.Set(float64(s.MaxQueuedBytes))
	pt.obsTxBytes.Add(pt.txBytes - pt.flushedTxBytes)
	pt.flushedTxBytes = pt.txBytes
	pt.obsTxPackets.Add(pt.txPackets - pt.flushedTxPkts)
	pt.flushedTxPkts = pt.txPackets
	pt.obsDrops.Add(pt.drops - pt.flushedDrops)
	pt.flushedDrops = pt.drops
}
