package netsim

import (
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
)

// Port is one unidirectional output port: a scheduler feeding a
// store-and-forward transmitter onto a link with fixed rate and propagation
// delay. Dequeue order is entirely up to the scheduler, which is where
// every scheduling policy in the reproduction takes effect.
type Port struct {
	net     *Network
	name    string
	q       sched.Scheduler
	rateBps float64
	busy    bool
	deliver func(now sim.Time, p *pkt.Packet)

	// Telemetry.
	txBytes   uint64
	txPackets uint64
	busyTime  sim.Time
	maxQueued int
}

func (n *Network) newPort(role string, id int, name string, rateBps float64, deliver func(sim.Time, *pkt.Packet)) *Port {
	pt := &Port{
		net:     n,
		name:    name,
		rateBps: rateBps,
		deliver: deliver,
	}
	drop := sched.DropFn(func(p *pkt.Packet) {
		n.count.Dropped++
		n.cfg.Trace.Record(n.eng.Now(), "drop", name, p)
	})
	if n.cfg.SchedulerFor != nil {
		pt.q = n.cfg.SchedulerFor(role, id, drop)
	}
	if pt.q == nil {
		pt.q = n.cfg.Scheduler(drop)
	}
	return pt
}

// send enqueues p and starts transmitting if the line is idle. Drops and
// evictions are counted network-wide through the scheduler's drop callback.
func (pt *Port) send(now sim.Time, p *pkt.Packet) {
	if !pt.q.Enqueue(p) {
		return
	}
	if b := pt.q.Bytes(); b > pt.maxQueued {
		pt.maxQueued = b
	}
	pt.kick(now)
}

// kick starts the next transmission when the line is idle.
func (pt *Port) kick(now sim.Time) {
	if pt.busy {
		return
	}
	p := pt.q.Dequeue()
	if p == nil {
		return
	}
	pt.busy = true
	tx := txTime(p.Size, pt.rateBps)
	prop := pt.net.cfg.PropDelay
	pt.txBytes += uint64(p.Size)
	pt.txPackets++
	pt.busyTime += tx
	pt.net.eng.After(tx, func(end sim.Time) {
		pt.busy = false
		pt.net.eng.After(prop, func(arrive sim.Time) {
			pt.deliver(arrive, p)
		})
		pt.kick(end)
	})
}

// Queue exposes the port's scheduler for inspection in tests.
func (pt *Port) Queue() sched.Scheduler { return pt.q }

// PortStats is the telemetry of one output port.
type PortStats struct {
	// Name identifies the port ("leaf0→spine1").
	Name string
	// TxBytes and TxPackets count transmissions.
	TxBytes   uint64
	TxPackets uint64
	// Utilization is busy time over elapsed time, 0–1.
	Utilization float64
	// MaxQueuedBytes is the high-water mark of the port's queue.
	MaxQueuedBytes int
}

func (pt *Port) stats(elapsed sim.Time) PortStats {
	util := 0.0
	if elapsed > 0 {
		util = float64(pt.busyTime) / float64(elapsed)
	}
	return PortStats{
		Name:           pt.name,
		TxBytes:        pt.txBytes,
		TxPackets:      pt.txPackets,
		Utilization:    util,
		MaxQueuedBytes: pt.maxQueued,
	}
}
