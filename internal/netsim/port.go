package netsim

import (
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
)

// Port is one unidirectional output port: a scheduler feeding a
// store-and-forward transmitter onto a link with fixed rate and propagation
// delay. Dequeue order is entirely up to the scheduler, which is where
// every scheduling policy in the reproduction takes effect.
type Port struct {
	net     *Network
	name    string
	q       sched.Scheduler
	rateBps float64
	busy    bool
	deliver func(now sim.Time, p *pkt.Packet)

	// Telemetry.
	txBytes   uint64
	txPackets uint64
	drops     uint64
	busyTime  sim.Time
	maxQueued int

	// Registry-backed instruments, nil when the network is uninstrumented.
	// Counters are shared per device role; flushObs publishes the deltas of
	// the plain telemetry fields above (flushed* remember the high-water
	// marks already published), so the data path itself touches no atomics.
	obsTxBytes     *obs.Counter
	obsTxPackets   *obs.Counter
	obsDrops       *obs.Counter
	obsUtil        *obs.Gauge
	obsMaxQueued   *obs.Gauge
	flushedTxBytes uint64
	flushedTxPkts  uint64
	flushedDrops   uint64
}

func (n *Network) newPort(role string, id int, name string, rateBps float64, deliver func(sim.Time, *pkt.Packet)) *Port {
	pt := &Port{
		net:     n,
		name:    name,
		rateBps: rateBps,
		deliver: deliver,
	}
	if reg := n.cfg.Registry; reg != nil {
		rl := obs.L("role", role)
		pt.obsTxBytes = reg.Counter(MetricPortTxBytes,
			"Bytes transmitted onto the wire.", rl)
		pt.obsTxPackets = reg.Counter(MetricPortTxPackets,
			"Packets transmitted onto the wire.", rl)
		pt.obsDrops = reg.Counter(MetricPortDrops,
			"Packets dropped by port schedulers (admission drops and evictions).", rl)
		pl := obs.L("port", name)
		pt.obsUtil = reg.Gauge(MetricPortUtilization,
			"Busy time over elapsed time, 0-1.", pl)
		pt.obsMaxQueued = reg.Gauge(MetricPortMaxQueued,
			"High-water mark of the port's queue in bytes.", pl)
	}
	drop := sched.DropFn(func(p *pkt.Packet) {
		n.count.Dropped++
		pt.drops++
		n.cfg.Trace.Record(n.eng.Now(), "drop", name, p)
	})
	if n.cfg.SchedulerFor != nil {
		pt.q = n.cfg.SchedulerFor(role, id, drop)
	}
	if pt.q == nil {
		pt.q = n.cfg.Scheduler(drop)
	}
	if ms, ok := pt.q.(sched.MetricsSetter); ok {
		if m := n.schedMetrics(role, pt.q.Name()); m != nil {
			ms.SetMetrics(m)
		}
	}
	return pt
}

// send enqueues p and starts transmitting if the line is idle. Drops and
// evictions are counted network-wide through the scheduler's drop callback.
func (pt *Port) send(now sim.Time, p *pkt.Packet) {
	if !pt.q.Enqueue(p) {
		return
	}
	if b := pt.q.Bytes(); b > pt.maxQueued {
		pt.maxQueued = b
	}
	pt.kick(now)
}

// kick starts the next transmission when the line is idle.
func (pt *Port) kick(now sim.Time) {
	if pt.busy {
		return
	}
	p := pt.q.Dequeue()
	if p == nil {
		return
	}
	pt.busy = true
	tx := txTime(p.Size, pt.rateBps)
	prop := pt.net.cfg.PropDelay
	pt.txBytes += uint64(p.Size)
	pt.txPackets++
	pt.busyTime += tx
	pt.net.eng.After(tx, func(end sim.Time) {
		pt.busy = false
		pt.net.eng.After(prop, func(arrive sim.Time) {
			pt.deliver(arrive, p)
		})
		pt.kick(end)
	})
}

// Queue exposes the port's scheduler for inspection in tests.
func (pt *Port) Queue() sched.Scheduler { return pt.q }

// PortStats is the telemetry of one output port.
type PortStats struct {
	// Name identifies the port ("leaf0→spine1").
	Name string
	// TxBytes and TxPackets count transmissions.
	TxBytes   uint64
	TxPackets uint64
	// Utilization is busy time over elapsed time, 0–1.
	Utilization float64
	// MaxQueuedBytes is the high-water mark of the port's queue.
	MaxQueuedBytes int
}

func (pt *Port) stats(elapsed sim.Time) PortStats {
	util := 0.0
	if elapsed > 0 {
		util = float64(pt.busyTime) / float64(elapsed)
	}
	return PortStats{
		Name:           pt.name,
		TxBytes:        pt.txBytes,
		TxPackets:      pt.txPackets,
		Utilization:    util,
		MaxQueuedBytes: pt.maxQueued,
	}
}

// flushObs publishes the port's staged telemetry: counter deltas since the
// last flush plus the current gauge values.
func (pt *Port) flushObs(elapsed sim.Time) {
	if pt.obsUtil == nil {
		return
	}
	s := pt.stats(elapsed)
	pt.obsUtil.Set(s.Utilization)
	pt.obsMaxQueued.Set(float64(s.MaxQueuedBytes))
	pt.obsTxBytes.Add(pt.txBytes - pt.flushedTxBytes)
	pt.flushedTxBytes = pt.txBytes
	pt.obsTxPackets.Add(pt.txPackets - pt.flushedTxPkts)
	pt.flushedTxPkts = pt.txPackets
	pt.obsDrops.Add(pt.drops - pt.flushedDrops)
	pt.flushedDrops = pt.drops
}
