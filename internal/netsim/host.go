package netsim

import (
	"fmt"

	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// Host is an end host: it sources flows through a minimal pFabric-style
// transport (window-based, per-packet acks, timeout retransmission — the
// "minimal near-optimal transport" of the pFabric paper that Netbench
// reproduces), computes packet ranks with the tenant's rank function, and
// sinks traffic addressed to it.
type Host struct {
	net     *Network
	id      int
	name    string // precomputed "host<id>" so tracing never allocates per packet
	up      *Port
	sending map[uint64]*sendFlow
	cbrStop bool

	// batch, preRank, and preID are the reusable staging area for
	// Config.HostPreproc: the send window's packets, with their
	// pre-transform ranks and IDs kept aside so the flight recorder can
	// still attribute each rank rewrite after ApplyBatch compacts the
	// batch.
	batch   []*pkt.Packet
	preRank []int64
	preID   []uint64
}

func newHost(n *Network, id int) *Host {
	return &Host{
		net:     n,
		id:      id,
		name:    fmt.Sprintf("host%d", id),
		sending: make(map[uint64]*sendFlow),
	}
}

// packet send-state machine.
const (
	stUnsent uint8 = iota
	stInflight
	stQueued // timed out, waiting for retransmission
	stAcked
)

// sendFlow is the sender side of one size-based flow.
type sendFlow struct {
	host  *Host
	td    *TenantDef
	spec  workload.FlowSpec
	id    uint64
	fl    rank.Flow
	npkts int

	state      []uint8
	retxQueue  []int
	nextUnsent int
	inflight   int
	nAcked     int
	timer      sim.Handle
	rtoFn      sim.Event // onRTO bound once; a fresh method value allocates
	completed  bool
}

// startFlow begins one flow. The flow ID is preassigned at build time
// from the global schedule order, so sharded and single-threaded runs
// agree on it (and hence on the flow's ECMP path).
func (h *Host) startFlow(now sim.Time, td *TenantDef, spec workload.FlowSpec, id uint64) {
	if spec.Rate > 0 {
		h.startCBR(now, td, spec, id)
		return
	}
	mss := h.net.cfg.MSS
	npkts := int((spec.Size + int64(mss) - 1) / int64(mss))
	if npkts == 0 {
		npkts = 1
	}
	sf := &sendFlow{
		host:  h,
		td:    td,
		spec:  spec,
		id:    id,
		npkts: npkts,
		state: make([]uint8, npkts),
		fl: rank.Flow{
			ID:      id,
			Size:    spec.Size,
			Arrival: now,
		},
	}
	sf.rtoFn = sf.onRTO
	h.sending[id] = sf
	sf.trySend(now)
}

// payload returns the payload size of packet idx.
func (sf *sendFlow) payload(idx int) int {
	mss := sf.host.net.cfg.MSS
	if idx == sf.npkts-1 {
		last := int(sf.spec.Size - int64(sf.npkts-1)*int64(mss))
		if last <= 0 {
			last = 1
		}
		return last
	}
	return mss
}

// trySend fills the window: retransmissions first, then new data.
func (sf *sendFlow) trySend(now sim.Time) {
	if sf.completed {
		return
	}
	n := sf.host.net
	if n.cfg.HostPreproc && n.cfg.Preprocessor != nil {
		sf.trySendBatch(now)
		return
	}
	win := n.cfg.Window
	for sf.inflight < win {
		idx, retx := sf.nextToSend()
		if idx < 0 {
			break
		}
		p := sf.build(now, idx, retx)
		sf.host.up.send(now, p)
	}
}

// trySendBatch is trySend under Config.HostPreproc: the window's packets
// are built first, run through the pre-processor in one ApplyBatch call,
// and only the admitted ones enter the host uplink, already tagged and in
// the joint rank space. A rejected packet (unknown tenant under
// UnknownDrop) counts as an admission drop at the host and stays unacked,
// so the transport's RTO path recovers it exactly as it would a switch
// drop.
func (sf *sendFlow) trySendBatch(now sim.Time) {
	h := sf.host
	n := h.net
	win := n.cfg.Window
	h.batch, h.preRank, h.preID = h.batch[:0], h.preRank[:0], h.preID[:0]
	for sf.inflight < win {
		idx, retx := sf.nextToSend()
		if idx < 0 {
			break
		}
		p := sf.build(now, idx, retx)
		p.Tagged = true
		h.batch = append(h.batch, p)
		h.preRank = append(h.preRank, p.Rank)
		h.preID = append(h.preID, p.ID)
	}
	if len(h.batch) == 0 {
		return
	}
	kept := n.cfg.Preprocessor.ApplyBatch(h.batch)
	// The kept prefix preserves the build order, so a single cursor over
	// the pre-transform record recovers each packet's original rank.
	j := 0
	for _, p := range h.batch[:kept] {
		for h.preID[j] != p.ID {
			j++
		}
		n.cfg.Trace.RecordTransform(now, h.name, p, h.preRank[j])
		j++
		h.up.send(now, p)
	}
	for _, p := range h.batch[kept:] {
		n.countDrop(p.Tenant, sched.CauseAdmission)
		n.cfg.Trace.RecordDrop(now, h.name, p, sched.CauseAdmission.String())
		n.cfg.Watch.OnDrop(now, p, sched.CauseAdmission)
		n.releasePkt(p)
	}
	h.batch = h.batch[:0]
}

func (sf *sendFlow) nextToSend() (int, bool) {
	for len(sf.retxQueue) > 0 {
		idx := sf.retxQueue[0]
		sf.retxQueue = sf.retxQueue[1:]
		if sf.state[idx] == stQueued {
			return idx, true
		}
	}
	if sf.nextUnsent < sf.npkts {
		idx := sf.nextUnsent
		sf.nextUnsent++
		return idx, false
	}
	return -1, false
}

// build constructs and books one data packet — rank, counters, send-state,
// timer, emit trace — leaving only the uplink send to the caller.
func (sf *sendFlow) build(now sim.Time, idx int, retx bool) *pkt.Packet {
	n := sf.host.net
	payload := sf.payload(idx)
	r := sf.td.Ranker.Rank(now, &sf.fl, payload)
	if !retx {
		sf.fl.Sent += int64(payload)
		n.count.DataSent++
	} else {
		n.count.Retransmits++
	}
	if n.cfg.Controller != nil {
		n.cfg.Controller.Observe(sf.td.ID, r)
	}
	p := n.pool.Get()
	p.ID = n.pktID()
	p.Flow = sf.id
	p.Tenant = sf.td.ID
	p.Rank = r
	p.Size = payload + n.cfg.HeaderBytes
	p.Src = sf.host.id
	p.Dst = sf.spec.Dst
	p.Seq = int64(idx)
	p.Payload = payload
	p.Kind = pkt.Data
	p.Retx = retx
	p.SentAt = now
	sf.state[idx] = stInflight
	sf.inflight++
	sf.armTimer(now)
	n.cfg.Trace.Record(now, trace.KindEmit, sf.host.name, p)
	return p
}

func (sf *sendFlow) armTimer(now sim.Time) {
	if sf.timer.Pending() || sf.completed {
		return
	}
	sf.timer = sf.host.net.eng.After(sf.host.net.cfg.RTO, sf.rtoFn)
}

// onRTO requeues every in-flight packet for retransmission: the standard
// coarse recovery of packet-level simulators (dropped packets are simply
// never acked).
func (sf *sendFlow) onRTO(now sim.Time) {
	if sf.completed {
		return
	}
	for idx := 0; idx < sf.nextUnsent; idx++ {
		if sf.state[idx] == stInflight {
			sf.state[idx] = stQueued
			sf.retxQueue = append(sf.retxQueue, idx)
			sf.inflight--
		}
	}
	sf.trySend(now)
	if !sf.completed && (sf.inflight > 0 || len(sf.retxQueue) > 0 || sf.nextUnsent < sf.npkts) {
		sf.timer = sf.host.net.eng.After(sf.host.net.cfg.RTO, sf.rtoFn)
	}
}

func (sf *sendFlow) onAck(now sim.Time, idx int) {
	if sf.completed || idx < 0 || idx >= sf.npkts || sf.state[idx] == stAcked {
		return
	}
	if sf.state[idx] == stInflight {
		sf.inflight--
	}
	sf.state[idx] = stAcked
	sf.nAcked++
	if sf.nAcked == sf.npkts {
		sf.complete(now)
		return
	}
	sf.trySend(now)
}

func (sf *sendFlow) complete(now sim.Time) {
	sf.completed = true
	sf.timer.Cancel()
	if fr, ok := sf.td.Ranker.(rank.FlowReleaser); ok {
		fr.Release(sf.id)
	}
	delete(sf.host.sending, sf.id)
	sf.host.net.fcts.Add(stats.FlowRecord{
		ID:     sf.id,
		Tenant: sf.td.Name,
		Size:   sf.spec.Size,
		Start:  sf.fl.Arrival,
		End:    now,
	})
}

// startCBR launches a constant-bit-rate datagram source (the paper's tenant
// 2: open-loop deadline traffic ranked by EDF).
func (h *Host) startCBR(now sim.Time, td *TenantDef, spec workload.FlowSpec, id uint64) {
	n := h.net
	fl := rank.Flow{ID: id, Arrival: now}
	wire := n.cfg.MSS + n.cfg.HeaderBytes
	interval := sim.Time(float64(wire*8) / spec.Rate * 1e9)
	if interval < 1 {
		interval = 1
	}
	stop := spec.Stop
	if stop == 0 {
		stop = n.cfg.Horizon
	}
	var tick func(sim.Time)
	tick = func(tnow sim.Time) {
		if h.cbrStop || tnow > stop {
			return
		}
		if spec.DeadlineBudget > 0 {
			fl.Deadline = tnow + spec.DeadlineBudget
		}
		r := td.Ranker.Rank(tnow, &fl, n.cfg.MSS)
		fl.Sent += int64(n.cfg.MSS) // progress-based rankers (LAS, FQ) see CBR advance
		if n.cfg.Controller != nil {
			n.cfg.Controller.Observe(td.ID, r)
		}
		p := n.pool.Get()
		p.ID = n.pktID()
		p.Flow = id
		p.Tenant = td.ID
		p.Rank = r
		p.Size = wire
		p.Src = h.id
		p.Dst = spec.Dst
		p.Payload = n.cfg.MSS
		p.Kind = pkt.Datagram
		p.SentAt = tnow
		p.Deadline = fl.Deadline
		n.count.CBRSent++
		n.cfg.Trace.Record(tnow, trace.KindEmit, h.name, p)
		h.up.send(tnow, p)
		n.eng.After(interval, tick)
	}
	n.eng.At(now, tick)
}

// stopCBR halts this host's CBR sources (used when draining).
func (h *Host) stopCBR() { h.cbrStop = true }

// receive sinks packets addressed to this host. Delivery is the packet's
// final stop: the host releases it to the pool after consuming its fields.
func (h *Host) receive(now sim.Time, p *pkt.Packet) {
	n := h.net
	n.count.Delivered++
	n.cfg.Trace.Record(now, trace.KindDeliver, h.name, p)
	n.cfg.Watch.OnDeliver(now, p)
	switch p.Kind {
	case pkt.Ack:
		if sf, ok := h.sending[p.Flow]; ok {
			sf.onAck(now, int(p.AckSeq))
		}
	case pkt.Datagram:
		n.count.CBRDelivered++
		if p.Deadline != 0 && now <= p.Deadline {
			n.count.CBROnTime++
		}
	case pkt.Data:
		// Ack every data packet; the sender deduplicates. Acks carry the
		// tenant's best rank (0) so they are never starved within the
		// tenant's band — mirroring pFabric's highest-priority acks.
		ack := n.pool.Get()
		ack.ID = n.pktID()
		ack.Flow = p.Flow
		ack.Tenant = p.Tenant
		ack.Size = n.cfg.HeaderBytes
		ack.Src = h.id
		ack.Dst = p.Src
		ack.Kind = pkt.Ack
		ack.SentAt = now
		ack.AckSeq = p.Seq
		n.count.AcksSent++
		n.cfg.Trace.Record(now, trace.KindEmit, h.name, ack)
		h.up.send(now, ack)
	}
	n.releasePkt(p)
}
