package netsim

import (
	"fmt"

	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/trace"
)

type switchKind int

const (
	leafSwitch switchKind = iota
	spineSwitch
)

// Switch is an output-queued leaf or spine switch. On receive it runs the
// QVISOR pre-processor (once per packet, at the first switch on the path)
// and forwards to the egress port selected by the routing function.
//
// Leaf port layout: ports[0:HostsPerLeaf] go to local hosts,
// ports[HostsPerLeaf:HostsPerLeaf+Spines] go to spines.
// Spine port layout: ports[i] goes to leaf i.
type Switch struct {
	net   *Network
	kind  switchKind
	id    int
	name  string // precomputed "leaf<id>"/"spine<id>" so tracing never allocates
	ports []*Port
}

func newSwitch(n *Network, kind switchKind, id, nports int) *Switch {
	role := "leaf"
	if kind == spineSwitch {
		role = "spine"
	}
	return &Switch{
		net:   n,
		kind:  kind,
		id:    id,
		name:  fmt.Sprintf("%s%d", role, id),
		ports: make([]*Port, nports),
	}
}

// receive handles an arriving packet: pre-process, route, enqueue. The
// flight recorder sees the switch arrival, the rank transform (with the
// pre-transform rank), and any drop the switch itself causes — a
// pre-processor rejection is an admission drop, an unroutable
// destination a fault.
func (sw *Switch) receive(now sim.Time, p *pkt.Packet) {
	n := sw.net
	n.cfg.Trace.Record(now, trace.KindArrive, sw.name, p)
	if pp := n.cfg.Preprocessor; pp != nil && !p.Tagged {
		p.Tagged = true
		pre := p.Rank
		if !pp.Process(p) {
			n.countDrop(p.Tenant, sched.CauseAdmission)
			n.cfg.Trace.RecordDrop(now, sw.name, p, sched.CauseAdmission.String())
			n.releasePkt(p)
			return
		}
		n.cfg.Trace.RecordTransform(now, sw.name, p, pre)
	} else if es := n.cfg.Epochs; es != nil && !p.Tagged {
		p.Tagged = true
		// Pin the packet to the live policy generation: its transforms
		// stay in force for this packet until delivery or drop, even if
		// the control plane publishes newer epochs meanwhile.
		if e := es.Acquire(); e != nil {
			p.Epoch = e.Gen
			pre := p.Rank
			if !e.Process(p) {
				n.countDrop(p.Tenant, sched.CauseAdmission)
				n.cfg.Trace.RecordDrop(now, sw.name, p, sched.CauseAdmission.String())
				n.releasePkt(p)
				return
			}
			n.cfg.Trace.RecordTransform(now, sw.name, p, pre)
		}
	}
	out := sw.route(p)
	if out == nil {
		n.countDrop(p.Tenant, sched.CauseFault)
		n.cfg.Trace.RecordDrop(now, sw.name, p, sched.CauseFault.String())
		n.releasePkt(p)
		return
	}
	out.send(now, p)
}

func (sw *Switch) route(p *pkt.Packet) *Port {
	cfg := &sw.net.cfg
	dstLeaf := sw.net.leafOf(p.Dst)
	switch sw.kind {
	case leafSwitch:
		if dstLeaf == sw.id {
			return sw.ports[p.Dst%cfg.HostsPerLeaf]
		}
		return sw.ports[cfg.HostsPerLeaf+sw.net.ecmp(p.Flow)]
	case spineSwitch:
		return sw.ports[dstLeaf]
	}
	return nil
}
