package netsim

import (
	"qvisor/internal/pkt"
	"qvisor/internal/sim"
)

type switchKind int

const (
	leafSwitch switchKind = iota
	spineSwitch
)

// Switch is an output-queued leaf or spine switch. On receive it runs the
// QVISOR pre-processor (once per packet, at the first switch on the path)
// and forwards to the egress port selected by the routing function.
//
// Leaf port layout: ports[0:HostsPerLeaf] go to local hosts,
// ports[HostsPerLeaf:HostsPerLeaf+Spines] go to spines.
// Spine port layout: ports[i] goes to leaf i.
type Switch struct {
	net   *Network
	kind  switchKind
	id    int
	ports []*Port
}

func newSwitch(n *Network, kind switchKind, id, nports int) *Switch {
	return &Switch{net: n, kind: kind, id: id, ports: make([]*Port, nports)}
}

// receive handles an arriving packet: pre-process, route, enqueue.
func (sw *Switch) receive(now sim.Time, p *pkt.Packet) {
	if pp := sw.net.cfg.Preprocessor; pp != nil && !p.Tagged {
		p.Tagged = true
		if !pp.Process(p) {
			sw.net.count.Dropped++
			sw.net.pool.Put(p)
			return
		}
	}
	out := sw.route(p)
	if out == nil {
		sw.net.count.Dropped++
		sw.net.pool.Put(p)
		return
	}
	out.send(now, p)
}

func (sw *Switch) route(p *pkt.Packet) *Port {
	cfg := &sw.net.cfg
	dstLeaf := sw.net.leafOf(p.Dst)
	switch sw.kind {
	case leafSwitch:
		if dstLeaf == sw.id {
			return sw.ports[p.Dst%cfg.HostsPerLeaf]
		}
		return sw.ports[cfg.HostsPerLeaf+sw.net.ecmp(p.Flow)]
	case spineSwitch:
		return sw.ports[dstLeaf]
	}
	return nil
}
