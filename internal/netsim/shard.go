package netsim

import (
	"qvisor/internal/pkt"
	"qvisor/internal/sim"
)

// partition describes one shard's slice of the leaf-spine topology. The
// partition function is static: shard i owns the contiguous leaf block
// [i*Leaves/Shards, (i+1)*Leaves/Shards) together with those leaves'
// hosts (so access links never cross shards), and every spine s with
// s % Shards == i (so fabric load spreads across shards). Every
// cross-shard link is a fabric link, whose propagation delay is the
// conservative lookahead of the parallel run.
type partition struct {
	shard, shards int
	// leafOwner and spineOwner map device index to owning shard.
	leafOwner  []int
	spineOwner []int
	// handoff forwards a packet whose serialization just finished on a
	// port that transmits to another shard: at is the arrival time (tx
	// end + PropDelay), link the global directed-link id, dst the
	// receiving shard. The cluster points it at the coordinator.
	handoff func(at sim.Time, link uint64, dst int, p *pkt.Packet)
}

// ownsLeaf reports whether this shard owns leaf li. A nil partition (the
// single-threaded build) owns everything.
func (pt *partition) ownsLeaf(li int) bool {
	return pt == nil || pt.leafOwner[li] == pt.shard
}

// ownsSpine reports whether this shard owns spine si.
func (pt *partition) ownsSpine(si int) bool {
	return pt == nil || pt.spineOwner[si] == pt.shard
}

// makeOwners builds the leaf and spine ownership maps for a shard count.
func makeOwners(cfg *Config, shards int) (leafOwner, spineOwner []int) {
	leafOwner = make([]int, cfg.Leaves)
	for i := 0; i < shards; i++ {
		for li := i * cfg.Leaves / shards; li < (i+1)*cfg.Leaves/shards; li++ {
			leafOwner[li] = i
		}
	}
	spineOwner = make([]int, cfg.Spines)
	for si := range spineOwner {
		spineOwner[si] = si % shards
	}
	return leafOwner, spineOwner
}

// Global directed-link ids for the fabric. Leaf->spine links occupy
// [0, Leaves*Spines), spine->leaf links [Leaves*Spines, 2*Leaves*Spines).
// They are dense, so per-link state lives in plain slices, and stable, so
// sorting barrier messages by link id is deterministic across runs.

func linkLeafSpine(cfg *Config, li, si int) uint64 {
	return uint64(li*cfg.Spines + si)
}

func linkSpineLeaf(cfg *Config, si, li int) uint64 {
	return uint64(cfg.Leaves*cfg.Spines + si*cfg.Leaves + li)
}

// inboundRing is the arrival side of one cross-shard link: a FIFO of
// handed-off packets plus one persistent engine event that delivers the
// head. Injection pushes the packet and schedules fire at the message
// timestamp — no per-packet closure, so cross-shard arrivals keep the
// zero-allocation budget. FIFO order is safe because a link's messages
// are injected in (At, Seq) order and the engine breaks timestamp ties by
// insertion order.
type inboundRing struct {
	ring pktRing
	fire sim.Event
}

// armInbound prepares the arrival ring of one receiving link.
func (n *Network) armInbound(link uint64, deliver func(sim.Time, *pkt.Packet)) {
	r := &n.inbound[link]
	r.fire = func(now sim.Time) {
		deliver(now, r.ring.pop())
	}
}

// inject turns one coordinator message into a local arrival. It runs on
// the shard's goroutine between windows, in the deterministic global
// merge order; the pool adopts the packet here, completing the ownership
// transfer the sender's Lend opened.
func (n *Network) inject(m sim.Message) {
	p := m.Data.(*pkt.Packet)
	n.pool.Adopt(p)
	r := &n.inbound[m.Link]
	if r.fire == nil {
		panic("netsim: cross-shard message on a link this shard does not receive")
	}
	r.ring.push(p)
	n.eng.At(m.At, r.fire)
}
