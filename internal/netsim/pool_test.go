package netsim

import (
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/workload"
)

// lossyPoisson returns a moderately overloaded random workload config on
// the tiny topology, used by the pooling equivalence tests.
func lossyPoisson(t testing.TB, seed int64) Config {
	t.Helper()
	flows, err := workload.Poisson(workload.PoissonConfig{
		Hosts: 4, Load: 0.7, AccessBitsPerSec: 1e9,
		Sizes: workload.DataMining().Scaled(0.001), Horizon: 20 * sim.Millisecond, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny([]TenantDef{{ID: 1, Name: "t1", Ranker: &rank.PFabric{}, Flows: flows}},
		20*sim.Millisecond)
	cfg.Scheduler = func(drop sched.DropFn) sched.Scheduler {
		return sched.NewPIFO(sched.Config{CapacityBytes: 15000, OnDrop: drop})
	}
	return cfg
}

// TestPooledVsUnpooledIdentical: packet pooling must be invisible to the
// simulation — identical counters and flow records with pooling on or off.
// This holds because Pool.Put zeroes packets, so a pooled Get returns the
// same zero state a fresh allocation would.
func TestPooledVsUnpooledIdentical(t *testing.T) {
	run := func(disable bool) (Counters, []struct {
		id   uint64
		fct  sim.Time
		size int64
	}) {
		cfg := lossyPoisson(t, 11)
		cfg.DisablePool = disable
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		if disable && n.Pool() != nil {
			t.Fatal("DisablePool did not disable the pool")
		}
		var recs []struct {
			id   uint64
			fct  sim.Time
			size int64
		}
		for _, r := range n.FCTs().Records() {
			recs = append(recs, struct {
				id   uint64
				fct  sim.Time
				size int64
			}{r.ID, r.FCT(), r.Size})
		}
		return n.Counters(), recs
	}
	cp, rp := run(false)
	cu, ru := run(true)
	if cp != cu {
		t.Fatalf("counters diverge:\npooled   %+v\nunpooled %+v", cp, cu)
	}
	if len(rp) != len(ru) {
		t.Fatalf("record counts diverge: %d vs %d", len(rp), len(ru))
	}
	for i := range rp {
		if rp[i] != ru[i] {
			t.Fatalf("record %d diverges: pooled %+v unpooled %+v", i, rp[i], ru[i])
		}
	}
}

// TestEngineAndPoolReuse: passing a warm engine and pool into New must
// reproduce a fresh run exactly — the cross-trial reuse contract the sweep
// runner depends on.
func TestEngineAndPoolReuse(t *testing.T) {
	fresh := func() Counters {
		n, err := New(lossyPoisson(t, 5))
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		return n.Counters()
	}
	want := fresh()

	eng := sim.New()
	pool := pkt.NewPool()
	for trial := 0; trial < 3; trial++ {
		cfg := lossyPoisson(t, 5)
		cfg.Engine = eng
		cfg.Pool = pool
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		if got := n.Counters(); got != want {
			t.Fatalf("trial %d with reused engine+pool diverges:\ngot  %+v\nwant %+v", trial, got, want)
		}
		if out := pool.Outstanding(); out != 0 {
			t.Fatalf("trial %d leaked %d packets", trial, out)
		}
		pool.Reset() // zero the stats between trials; keeps the free list
	}
	if eng.Now() == 0 {
		t.Fatal("reused engine never ran")
	}
}

// steadyState builds a network whose traffic never ends: two CBR sources
// crossing the fabric in opposite directions. Advancing the engine clock
// exercises the full per-packet path — emit, preprocess-free switching,
// scheduling, transmission, delivery, release — forever.
func steadyState(tb testing.TB) *Network {
	tb.Helper()
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "cbr", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Rate: 400e6},
			{Start: 0, Src: 2, Dst: 0, Rate: 400e6},
		},
	}}, sim.MaxTime/4)
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestAllocBudgetSimSteadyState: after warmup, advancing the simulation
// must not allocate — the tentpole guarantee of the zero-allocation data
// plane. A window-limited data flow (with its ack stream) runs alongside
// the CBR sources so the transport's send/ack path is covered too.
func TestAllocBudgetSimSteadyState(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "mix", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Rate: 300e6},
			{Start: 0, Src: 1, Dst: 3, Size: 64 << 20}, // outlasts the measured window
		},
	}}, sim.MaxTime/4)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now) // warm: pools, rings, heaps all at steady capacity
	allocs := testing.AllocsPerRun(200, func() {
		now += 50 * sim.Microsecond
		eng.Run(now)
	})
	if allocs != 0 {
		t.Fatalf("steady-state slice allocates %.1f objects/op, budget is 0", allocs)
	}
}

// BenchmarkSimSteadyState measures the per-packet hot path: each iteration
// advances a warmed, infinitely-running simulation by a fixed slice of
// simulated time (~8 packet services). allocs/op must report 0.
func BenchmarkSimSteadyState(b *testing.B) {
	n := steadyState(b)
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Microsecond
		eng.Run(now)
	}
	b.StopTimer()
	perSlice := float64(eng.Fired()) / float64(b.N)
	b.ReportMetric(perSlice, "events/op")
}
