package netsim

import (
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

// FaultInjector wraps a scheduler and drops packets selected by a
// predicate — deterministic loss injection for exercising the transport's
// recovery paths (timeouts, retransmissions, duplicate suppression) and
// QVISOR's behaviour under loss.
type FaultInjector struct {
	inner sched.Scheduler
	// Drop decides whether an arriving packet is lost before reaching
	// the queue. It sees every packet exactly once per enqueue attempt.
	drop func(p *pkt.Packet) bool
	// onDrop is notified for injected losses, keeping network-wide
	// accounting consistent.
	onDrop sched.DropFn
	// Injected counts the losses this injector caused.
	Injected uint64
}

// NewFaultInjector wraps inner, dropping packets for which drop returns
// true. onDrop may be nil.
func NewFaultInjector(inner sched.Scheduler, drop func(p *pkt.Packet) bool, onDrop sched.DropFn) *FaultInjector {
	return &FaultInjector{inner: inner, drop: drop, onDrop: onDrop}
}

// Name implements sched.Scheduler.
func (f *FaultInjector) Name() string { return "faulty-" + f.inner.Name() }

// Len implements sched.Scheduler.
func (f *FaultInjector) Len() int { return f.inner.Len() }

// Bytes implements sched.Scheduler.
func (f *FaultInjector) Bytes() int { return f.inner.Bytes() }

// Enqueue implements sched.Scheduler.
func (f *FaultInjector) Enqueue(p *pkt.Packet) bool {
	if f.drop != nil && f.drop(p) {
		f.Injected++
		if f.onDrop != nil {
			f.onDrop(p, sched.CauseFault)
		}
		return false
	}
	return f.inner.Enqueue(p)
}

// Dequeue implements sched.Scheduler.
func (f *FaultInjector) Dequeue() *pkt.Packet { return f.inner.Dequeue() }

// Reset implements sched.Scheduler: the wrapped scheduler is reset and the
// injected-loss counter zeroed. The drop predicate keeps whatever state it
// carries; deterministic predicates should be rebuilt per run.
func (f *FaultInjector) Reset() {
	f.inner.Reset()
	f.Injected = 0
}
