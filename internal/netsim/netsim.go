// Package netsim is the packet-level network simulator the reproduction
// uses in place of Netbench (§4 of the paper): a leaf-spine data-center
// fabric with output-queued switches, ECMP routing, a pFabric-style
// transport for size-based flows, and constant-bit-rate sources for
// deadline traffic.
//
// Each switch egress port runs a pluggable scheduler (internal/sched) and,
// when QVISOR is deployed, packets are run through the pre-processor
// (internal/core) at the first switch they traverse, exactly once — the
// rank rewrite that realizes the joint scheduling policy.
package netsim

import (
	"fmt"

	"qvisor/internal/core"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// TenantDef binds a tenant's traffic to its rank function for simulation.
type TenantDef struct {
	// ID is the tenant label carried on packets.
	ID pkt.TenantID
	// Name is the tenant's name in operator specs and statistics.
	Name string
	// Ranker computes packet ranks at the sending host.
	Ranker rank.Ranker
	// Flows is the tenant's traffic.
	Flows []workload.FlowSpec
}

// Config describes a simulation.
type Config struct {
	// Leaves, Spines, HostsPerLeaf shape the leaf-spine topology. The
	// paper uses 9 leaves × 16 hosts and 4 spines.
	Leaves, Spines, HostsPerLeaf int
	// AccessBps and FabricBps are the host-leaf and leaf-spine link
	// rates in bits per second (1 Gbps and 4 Gbps in the paper).
	AccessBps, FabricBps float64
	// PropDelay is the one-way propagation delay of every link. Zero
	// means 1 µs.
	PropDelay sim.Time
	// Scheduler builds the queueing discipline of each switch egress
	// port. The provided drop callback must be wired into the
	// scheduler's configuration so evictions and admission drops are
	// counted. Nil means a default PIFO.
	Scheduler func(drop sched.DropFn) sched.Scheduler
	// SchedulerFor, when non-nil, overrides Scheduler per device — the
	// cross-device orchestration hook (§5): role is "host", "leaf", or
	// "spine", id the device index. Return nil to fall back to
	// Scheduler for that device.
	SchedulerFor func(role string, id int, drop sched.DropFn) sched.Scheduler
	// Preprocessor, when non-nil, rewrites packet ranks at the first
	// switch (QVISOR deployed). Nil simulates the raw single-tenant
	// scheduler.
	Preprocessor *core.Preprocessor
	// Epochs, when non-nil, supplies the rank transformation per-packet
	// from an RCU-style policy-generation store instead of a fixed
	// Preprocessor: each packet pins the current epoch at its first
	// switch, keeps that generation's transforms for its whole flight,
	// and releases the pin at delivery or drop — so control-plane
	// publishes never mix generations mid-flight. Mutually exclusive
	// with Preprocessor (the preprocessor path mutates shared state the
	// epoch path must not). Packets record their generation in
	// Packet.Epoch and trace events.
	Epochs *core.EpochStore
	// Controller, when non-nil, receives rank observations from hosts
	// and runs a drift check every CheckInterval.
	Controller *core.Controller
	// CheckInterval is the controller's check period. Zero means 10 ms.
	CheckInterval sim.Time
	// Tenants is the traffic.
	Tenants []TenantDef
	// Trace, when non-nil, records packet lifecycle events — emit,
	// switch arrival, rank transform, per-port enqueue/dequeue, deliver,
	// and drop (with cause) — into the recorder's ring and/or JSONL
	// stream. With sampling configured, unsampled flows cost one modulo
	// per event site and no allocation.
	Trace *trace.Recorder
	// Registry, when non-nil, exports fabric telemetry (internal/obs):
	// per-role tx/drop counters, per-port utilization and high-water-mark
	// gauges, and the sched.Metrics families (aggregated per device role)
	// on every port scheduler that implements sched.MetricsSetter. All of
	// it is staged on the data path and published by Run/PortStats/
	// FlushMetrics, so instrumentation costs no atomics per packet.
	Registry *obs.Registry
	// Pool, when non-nil, supplies the packet buffers: the network
	// acquires every packet from it and releases each one exactly once —
	// at final delivery or at the drop that removes it from the network.
	// Nil builds a private pool. Sweep harnesses pass one pool per worker
	// so the free list stays warm across trials.
	Pool *pkt.Pool
	// DisablePool turns pooling off: every packet is a fresh allocation
	// left to the garbage collector. Simulation results are byte-identical
	// with pooling on or off (pooled packets are zeroed on release), so
	// this exists for A/B verification and allocation profiling.
	// DisablePool overrides Pool.
	DisablePool bool
	// Engine, when non-nil, is Reset and reused instead of building a new
	// event engine, keeping its item free list and heap capacity warm
	// across trials. The engine must not be shared between concurrently
	// running networks.
	Engine *sim.Engine
	// MSS is the payload bytes per packet. Zero means 1460.
	MSS int
	// HeaderBytes is the per-packet overhead on the wire. Zero means 64
	// (Ethernet + IP + transport + QVISOR label).
	HeaderBytes int
	// Window is the transport's send window in packets. Zero sizes it to
	// twice the access-link bandwidth-delay product.
	Window int
	// RTO is the retransmission timeout. Zero means 3 ms.
	RTO sim.Time
	// Horizon ends the simulation.
	Horizon sim.Time
}

func (c *Config) defaults() error {
	if c.Leaves <= 0 || c.Spines <= 0 || c.HostsPerLeaf <= 0 {
		return fmt.Errorf("netsim: topology must have positive dimensions (%d leaves, %d spines, %d hosts/leaf)",
			c.Leaves, c.Spines, c.HostsPerLeaf)
	}
	if c.AccessBps <= 0 || c.FabricBps <= 0 {
		return fmt.Errorf("netsim: link rates must be positive")
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("netsim: non-positive horizon")
	}
	if c.Epochs != nil && c.Preprocessor != nil {
		return fmt.Errorf("netsim: Epochs and Preprocessor are mutually exclusive")
	}
	if c.PropDelay <= 0 {
		c.PropDelay = sim.Microsecond
	}
	if c.Scheduler == nil {
		c.Scheduler = func(drop sched.DropFn) sched.Scheduler {
			return sched.NewPIFO(sched.Config{OnDrop: drop})
		}
	}
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 64
	}
	if c.RTO <= 0 {
		c.RTO = 3 * sim.Millisecond
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 10 * sim.Millisecond
	}
	if c.Window <= 0 {
		// Two bandwidth-delay products of the access link, assuming an
		// 8-hop round trip of propagation plus ~4 serializations.
		rtt := 8*c.PropDelay + 4*txTime(c.MSS+c.HeaderBytes, c.AccessBps)
		bdpBytes := c.AccessBps / 8 * rtt.Seconds()
		c.Window = int(2 * bdpBytes / float64(c.MSS))
		if c.Window < 2 {
			c.Window = 2
		}
	}
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("netsim: tenant %d has no name", i)
		}
		if t.Ranker == nil {
			return fmt.Errorf("netsim: tenant %q has no ranker", t.Name)
		}
	}
	return nil
}

// Counters aggregates network-wide packet accounting.
type Counters struct {
	// DataSent counts first transmissions of data packets.
	DataSent uint64
	// Retransmits counts retransmitted data packets.
	Retransmits uint64
	// AcksSent counts acknowledgment packets.
	AcksSent uint64
	// Delivered counts packets received by their destination host.
	Delivered uint64
	// Dropped counts packets dropped by switch queues.
	Dropped uint64
	// CBRSent counts constant-bit-rate packets emitted.
	CBRSent uint64
	// CBRDelivered counts CBR packets that arrived.
	CBRDelivered uint64
	// CBROnTime counts CBR packets that arrived before their deadline.
	CBROnTime uint64
}

// Network is one simulation instance.
type Network struct {
	cfg    Config
	eng    *sim.Engine
	pool   *pkt.Pool // nil when pooling is disabled (nil-safe methods)
	hosts  []*Host
	leaves []*Switch
	spines []*Switch
	fcts   *stats.Collector
	count  Counters

	// roleMetrics shares one sched.Metrics bundle per (device role,
	// scheduler name), so the scheduler families aggregate across the
	// role's ports.
	roleMetrics map[string]*sched.Metrics

	// dropStage stages per-(tenant, cause) drop counts on the data path
	// as plain map increments; FlushMetrics publishes the deltas into the
	// registry (nil maps when uninstrumented — the staging is skipped).
	dropStage   map[dropKey]uint64
	dropFlushed map[dropKey]uint64
	tenantNames map[pkt.TenantID]string

	nextPktID  uint64
	nextFlowID uint64
}

// dropKey identifies one per-tenant, per-cause drop counter.
type dropKey struct {
	tenant pkt.TenantID
	cause  sched.DropCause
}

// countDrop books one dropped packet network-wide and stages its
// (tenant, cause) attribution when the network is instrumented.
func (n *Network) countDrop(t pkt.TenantID, cause sched.DropCause) {
	n.count.Dropped++
	if n.dropStage != nil {
		n.dropStage[dropKey{t, cause}]++
	}
}

// tenantName resolves a tenant ID to its configured name for metric
// labels, falling back to "tenant<id>".
func (n *Network) tenantName(id pkt.TenantID) string {
	if name, ok := n.tenantNames[id]; ok {
		return name
	}
	name := fmt.Sprintf("tenant%d", id)
	if n.tenantNames != nil {
		n.tenantNames[id] = name
	}
	return name
}

// Metric families exported by an instrumented network.
const (
	MetricPortTxBytes     = "qvisor_netsim_tx_bytes_total"
	MetricPortTxPackets   = "qvisor_netsim_tx_packets_total"
	MetricPortDrops       = "qvisor_netsim_drops_total"
	MetricPortUtilization = "qvisor_netsim_port_utilization"
	MetricPortMaxQueued   = "qvisor_netsim_port_max_queued_bytes"
	MetricDropsByCause    = "qvisor_netsim_drops_by_cause_total"
)

// schedMetrics returns the shared scheduler instrument bundle for one
// (role, scheduler) pair — nil when the network is uninstrumented. The
// engine clock is attached so instrumented schedulers record per-packet
// sojourn times.
func (n *Network) schedMetrics(role, scheduler string) *sched.Metrics {
	if n.cfg.Registry == nil {
		return nil
	}
	if n.roleMetrics == nil {
		n.roleMetrics = make(map[string]*sched.Metrics)
	}
	key := role + "\x00" + scheduler
	m, ok := n.roleMetrics[key]
	if !ok {
		m = sched.NewMetrics(n.cfg.Registry,
			obs.L("role", role), obs.L("scheduler", scheduler)).WithClock(n.eng.Now)
		n.roleMetrics[key] = m
	}
	return m
}

// New builds the network and schedules all tenant flows. The returned
// network is ready to Run.
func New(cfg Config) (*Network, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	eng := cfg.Engine
	if eng == nil {
		eng = sim.New()
	} else {
		eng.Reset()
	}
	var pool *pkt.Pool
	if !cfg.DisablePool {
		if pool = cfg.Pool; pool == nil {
			pool = pkt.NewPool()
		}
	}
	n := &Network{
		cfg:  cfg,
		eng:  eng,
		pool: pool,
		fcts: stats.NewCollector(),
	}
	if cfg.Registry != nil {
		n.dropStage = make(map[dropKey]uint64)
		n.dropFlushed = make(map[dropKey]uint64)
		n.tenantNames = make(map[pkt.TenantID]string, len(cfg.Tenants))
		for i := range cfg.Tenants {
			n.tenantNames[cfg.Tenants[i].ID] = cfg.Tenants[i].Name
		}
	}
	hostCount := cfg.Leaves * cfg.HostsPerLeaf
	n.hosts = make([]*Host, hostCount)
	n.leaves = make([]*Switch, cfg.Leaves)
	n.spines = make([]*Switch, cfg.Spines)

	for i := range n.spines {
		n.spines[i] = newSwitch(n, spineSwitch, i, cfg.Leaves)
	}
	for i := range n.leaves {
		n.leaves[i] = newSwitch(n, leafSwitch, i, cfg.HostsPerLeaf+cfg.Spines)
	}
	for h := range n.hosts {
		n.hosts[h] = newHost(n, h)
	}

	// Wire ports: host <-> leaf (access rate), leaf <-> spine (fabric).
	for h, host := range n.hosts {
		leaf := n.leaves[h/cfg.HostsPerLeaf]
		local := h % cfg.HostsPerLeaf
		host.up = n.newPort("host", h,
			fmt.Sprintf("host%d→leaf%d", h, leaf.id), cfg.AccessBps, leaf.receive)
		leaf.ports[local] = n.newPort("leaf", leaf.id,
			fmt.Sprintf("leaf%d→host%d", leaf.id, h), cfg.AccessBps, host.receive)
	}
	for li, leaf := range n.leaves {
		for si, spine := range n.spines {
			leaf.ports[cfg.HostsPerLeaf+si] = n.newPort("leaf", li,
				fmt.Sprintf("leaf%d→spine%d", li, si), cfg.FabricBps, spine.receive)
			spine.ports[li] = n.newPort("spine", si,
				fmt.Sprintf("spine%d→leaf%d", si, li), cfg.FabricBps, n.leaves[li].receive)
		}
	}

	// Schedule tenant traffic.
	for ti := range cfg.Tenants {
		td := &cfg.Tenants[ti]
		for _, spec := range td.Flows {
			if spec.Src < 0 || spec.Src >= hostCount || spec.Dst < 0 || spec.Dst >= hostCount {
				return nil, fmt.Errorf("netsim: tenant %q flow endpoints (%d,%d) outside %d hosts",
					td.Name, spec.Src, spec.Dst, hostCount)
			}
			if spec.Src == spec.Dst {
				return nil, fmt.Errorf("netsim: tenant %q flow has src == dst", td.Name)
			}
			spec := spec
			n.eng.At(spec.Start, func(now sim.Time) {
				n.hosts[spec.Src].startFlow(now, td, spec)
			})
		}
	}

	// Controller check loop.
	if cfg.Controller != nil {
		var tick func(sim.Time)
		tick = func(now sim.Time) {
			if _, err := cfg.Controller.Check(now); err == nil {
				if now+cfg.CheckInterval <= cfg.Horizon {
					n.eng.After(cfg.CheckInterval, tick)
				}
			}
		}
		n.eng.After(cfg.CheckInterval, tick)
	}
	return n, nil
}

// Engine exposes the event engine (for tests and custom scenarios).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Pool exposes the packet pool — nil when pooling is disabled. Its
// Outstanding count is the number of packets still inside the network
// (queued or on the wire); after a fully drained run it is zero.
func (n *Network) Pool() *pkt.Pool { return n.pool }

// Hosts returns the number of hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

// FCTs returns the flow-completion-time collector.
func (n *Network) FCTs() *stats.Collector { return n.fcts }

// Counters returns a snapshot of the packet counters.
func (n *Network) Counters() Counters { return n.count }

// Run executes the simulation until the horizon, then lets in-flight
// traffic drain for up to one extra horizon so flows started near the end
// can complete.
func (n *Network) Run() {
	n.eng.Run(n.cfg.Horizon)
	for _, h := range n.hosts {
		h.stopCBR()
	}
	n.eng.Run(2 * n.cfg.Horizon)
	n.FlushMetrics()
}

// RunNoDrain executes strictly to the horizon (tests that need exact
// mid-simulation state).
func (n *Network) RunNoDrain() { n.eng.Run(n.cfg.Horizon) }

// txTime returns the serialization delay of size bytes at rate bps.
func txTime(size int, bps float64) sim.Time {
	t := sim.Time(float64(size*8) / bps * 1e9)
	if t < 1 {
		t = 1
	}
	return t
}

func (n *Network) pktID() uint64 {
	n.nextPktID++
	return n.nextPktID
}

func (n *Network) flowID() uint64 {
	n.nextFlowID++
	return n.nextFlowID
}

// forEachPort visits every output port in stable order: host uplinks, then
// leaf ports, then spine ports.
func (n *Network) forEachPort(f func(*Port)) {
	for _, h := range n.hosts {
		f(h.up)
	}
	for _, sw := range n.leaves {
		for _, p := range sw.ports {
			f(p)
		}
	}
	for _, sw := range n.spines {
		for _, p := range sw.ports {
			f(p)
		}
	}
}

// PortStats returns the telemetry of every output port in the network, in
// a stable order: host uplinks, then leaf ports, then spine ports.
func (n *Network) PortStats() []PortStats {
	elapsed := n.eng.Now()
	var out []PortStats
	n.forEachPort(func(p *Port) {
		out = append(out, p.stats(elapsed))
	})
	n.FlushMetrics()
	return out
}

// FlushMetrics publishes the staged telemetry into the registry: per-port
// tx/drop counter deltas, the lazily computed per-port gauges (utilization,
// queue high-water mark), and the per-role scheduler stages. Run and
// PortStats call it; call it directly only when scraping mid-simulation. A
// no-op without a registry.
func (n *Network) FlushMetrics() {
	if n.cfg.Registry == nil {
		return
	}
	elapsed := n.eng.Now()
	n.forEachPort(func(p *Port) {
		p.flushObs(elapsed)
	})
	for _, m := range n.roleMetrics {
		m.Flush()
	}
	for k, v := range n.dropStage {
		if d := v - n.dropFlushed[k]; d > 0 {
			n.cfg.Registry.Counter(MetricDropsByCause,
				"Packets dropped, attributed to tenant and drop cause.",
				obs.L("tenant", n.tenantName(k.tenant)),
				obs.L("cause", k.cause.String())).Add(d)
			n.dropFlushed[k] = v
		}
	}
}

// releasePkt returns a packet to the pool after unpinning it from its
// policy epoch. Every point where a packet leaves the network — final
// delivery or any drop — must release through here so superseded epochs
// can finish draining.
func (n *Network) releasePkt(p *pkt.Packet) {
	if p.Epoch != 0 && n.cfg.Epochs != nil {
		n.cfg.Epochs.Release(p.Epoch)
	}
	n.pool.Put(p)
}

// leafOf returns the leaf index of a host.
func (n *Network) leafOf(host int) int { return host / n.cfg.HostsPerLeaf }

// ecmp picks a spine for a flow: deterministic per-flow hash, so a flow
// never reorders across paths.
func (n *Network) ecmp(flow uint64) int {
	h := flow * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(n.cfg.Spines))
}
