// Package netsim is the packet-level network simulator the reproduction
// uses in place of Netbench (§4 of the paper): a leaf-spine data-center
// fabric with output-queued switches, ECMP routing, a pFabric-style
// transport for size-based flows, and constant-bit-rate sources for
// deadline traffic.
//
// Each switch egress port runs a pluggable scheduler (internal/sched) and,
// when QVISOR is deployed, packets are run through the pre-processor
// (internal/core) at the first switch they traverse, exactly once — the
// rank rewrite that realizes the joint scheduling policy.
package netsim

import (
	"fmt"
	"sort"

	"qvisor/internal/core"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// TenantDef binds a tenant's traffic to its rank function for simulation.
type TenantDef struct {
	// ID is the tenant label carried on packets.
	ID pkt.TenantID
	// Name is the tenant's name in operator specs and statistics.
	Name string
	// Ranker computes packet ranks at the sending host.
	Ranker rank.Ranker
	// Flows is the tenant's traffic.
	Flows []workload.FlowSpec
}

// Config describes a simulation.
type Config struct {
	// Leaves, Spines, HostsPerLeaf shape the leaf-spine topology. The
	// paper uses 9 leaves × 16 hosts and 4 spines.
	Leaves, Spines, HostsPerLeaf int
	// AccessBps and FabricBps are the host-leaf and leaf-spine link
	// rates in bits per second (1 Gbps and 4 Gbps in the paper).
	AccessBps, FabricBps float64
	// PropDelay is the one-way propagation delay of every link. Zero
	// means 1 µs.
	PropDelay sim.Time
	// Scheduler builds the queueing discipline of each switch egress
	// port. The provided drop callback must be wired into the
	// scheduler's configuration so evictions and admission drops are
	// counted. Nil means a default PIFO.
	Scheduler func(drop sched.DropFn) sched.Scheduler
	// SchedulerFor, when non-nil, overrides Scheduler per device — the
	// cross-device orchestration hook (§5): role is "host", "leaf", or
	// "spine", id the device index. Return nil to fall back to
	// Scheduler for that device.
	SchedulerFor func(role string, id int, drop sched.DropFn) sched.Scheduler
	// Preprocessor, when non-nil, rewrites packet ranks at the first
	// switch (QVISOR deployed). Nil simulates the raw single-tenant
	// scheduler.
	Preprocessor *core.Preprocessor
	// HostPreproc moves the pre-processor to the sending host's NIC for
	// data packets: each send window is run through one
	// Preprocessor.ApplyBatch call (dense-table, branch-free batch path)
	// before entering the host uplink, instead of per-packet Process at
	// the first switch — the §3.3 deployment variant where the rank
	// rewrite happens in the hypervisor/NIC. Unknown-tenant rejections
	// become admission drops at the host, before the packet spends any
	// uplink capacity. Acks and CBR datagrams still transform at the
	// first switch. Ignored without a Preprocessor.
	HostPreproc bool
	// Epochs, when non-nil, supplies the rank transformation per-packet
	// from an RCU-style policy-generation store instead of a fixed
	// Preprocessor: each packet pins the current epoch at its first
	// switch, keeps that generation's transforms for its whole flight,
	// and releases the pin at delivery or drop — so control-plane
	// publishes never mix generations mid-flight. Mutually exclusive
	// with Preprocessor (the preprocessor path mutates shared state the
	// epoch path must not). Packets record their generation in
	// Packet.Epoch and trace events.
	Epochs *core.EpochStore
	// Controller, when non-nil, receives rank observations from hosts
	// and runs a drift check every CheckInterval.
	Controller *core.Controller
	// CheckInterval is the controller's check period. Zero means 10 ms.
	CheckInterval sim.Time
	// Tenants is the traffic.
	Tenants []TenantDef
	// Trace, when non-nil, records packet lifecycle events — emit,
	// switch arrival, rank transform, per-port enqueue/dequeue, deliver,
	// and drop (with cause) — into the recorder's ring and/or JSONL
	// stream. With sampling configured, unsampled flows cost one modulo
	// per event site and no allocation.
	Trace *trace.Recorder
	// Watch, when non-nil, is the online fidelity watchdog
	// (internal/slo): every port mirrors a flow-consistent sample of its
	// traffic into a shadow oracle, and hosts report sampled deliveries
	// and admission drops. In sharded mode the cluster forks one child
	// watchdog per shard and merges them back into Watch after Run, the
	// same lifecycle as Trace — so the caller reads SLIs from Watch in
	// both modes, and the merged snapshot is byte-identical to a
	// single-threaded run of the same traffic.
	Watch *slo.Watchdog
	// Registry, when non-nil, exports fabric telemetry (internal/obs):
	// per-role tx/drop counters, per-port utilization and high-water-mark
	// gauges, and the sched.Metrics families (aggregated per device role)
	// on every port scheduler that implements sched.MetricsSetter. All of
	// it is staged on the data path and published by Run/PortStats/
	// FlushMetrics, so instrumentation costs no atomics per packet.
	Registry *obs.Registry
	// Pool, when non-nil, supplies the packet buffers: the network
	// acquires every packet from it and releases each one exactly once —
	// at final delivery or at the drop that removes it from the network.
	// Nil builds a private pool. Sweep harnesses pass one pool per worker
	// so the free list stays warm across trials.
	Pool *pkt.Pool
	// DisablePool turns pooling off: every packet is a fresh allocation
	// left to the garbage collector. Simulation results are byte-identical
	// with pooling on or off (pooled packets are zeroed on release), so
	// this exists for A/B verification and allocation profiling.
	// DisablePool overrides Pool.
	DisablePool bool
	// Engine, when non-nil, is Reset and reused instead of building a new
	// event engine, keeping its item free list and heap capacity warm
	// across trials. The engine must not be shared between concurrently
	// running networks.
	Engine *sim.Engine
	// MSS is the payload bytes per packet. Zero means 1460.
	MSS int
	// HeaderBytes is the per-packet overhead on the wire. Zero means 64
	// (Ethernet + IP + transport + QVISOR label).
	HeaderBytes int
	// Window is the transport's send window in packets. Zero sizes it to
	// twice the access-link bandwidth-delay product.
	Window int
	// RTO is the retransmission timeout. Zero means 3 ms.
	RTO sim.Time
	// Horizon ends the simulation.
	Horizon sim.Time
	// Shards splits the simulation into partitions that run in parallel
	// under a conservative-lookahead coordinator (Build returns a Cluster
	// when Shards > 1). Each shard owns a contiguous block of leaf pods
	// (the leaves plus their hosts) and every Spines/Shards-th spine, runs
	// its own engine and packet pool, and exchanges cross-shard packets at
	// window barriers whose length is the link propagation delay. Zero or
	// one keeps the single-threaded engine — the byte-identical reference
	// path. A sharded run is deterministic (repeatable at any GOMAXPROCS)
	// and preserves the reference run's counters, flows, and per-flow
	// packet order; same-nanosecond arrivals from different links are the
	// one tie the barrier merge may order differently, shifting individual
	// completion times by nanoseconds (DESIGN.md "Sharded execution
	// model").
	//
	// Constraints in sharded mode: Shards <= Leaves; Controller must be
	// nil (its drift checks read host state across shards); Engine and
	// Pool must be nil (each shard builds private ones); and every
	// tenant's Ranker must either be stateless per Rank call (PFabric,
	// EDF, LAS) or have all of the tenant's flows sourced inside one
	// shard — a shared stateful ranker such as STFQ is a data race when
	// its flows span shards.
	Shards int
	// ShardChanCap bounds the cross-shard handoff channel in sharded mode.
	// Zero means sim.DefaultChanCap.
	ShardChanCap int
}

func (c *Config) defaults() error {
	if c.Leaves <= 0 || c.Spines <= 0 || c.HostsPerLeaf <= 0 {
		return fmt.Errorf("netsim: topology must have positive dimensions (%d leaves, %d spines, %d hosts/leaf)",
			c.Leaves, c.Spines, c.HostsPerLeaf)
	}
	if c.AccessBps <= 0 || c.FabricBps <= 0 {
		return fmt.Errorf("netsim: link rates must be positive")
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("netsim: non-positive horizon")
	}
	if c.Epochs != nil && c.Preprocessor != nil {
		return fmt.Errorf("netsim: Epochs and Preprocessor are mutually exclusive")
	}
	if c.Shards < 0 {
		return fmt.Errorf("netsim: negative shard count %d", c.Shards)
	}
	if c.PropDelay <= 0 {
		c.PropDelay = sim.Microsecond
	}
	if c.Scheduler == nil {
		c.Scheduler = func(drop sched.DropFn) sched.Scheduler {
			return sched.NewPIFO(sched.Config{OnDrop: drop})
		}
	}
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 64
	}
	if c.RTO <= 0 {
		c.RTO = 3 * sim.Millisecond
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = 10 * sim.Millisecond
	}
	if c.Window <= 0 {
		// Two bandwidth-delay products of the access link, assuming an
		// 8-hop round trip of propagation plus ~4 serializations.
		rtt := 8*c.PropDelay + 4*txTime(c.MSS+c.HeaderBytes, c.AccessBps)
		bdpBytes := c.AccessBps / 8 * rtt.Seconds()
		c.Window = int(2 * bdpBytes / float64(c.MSS))
		if c.Window < 2 {
			c.Window = 2
		}
	}
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" {
			return fmt.Errorf("netsim: tenant %d has no name", i)
		}
		if t.Ranker == nil {
			return fmt.Errorf("netsim: tenant %q has no ranker", t.Name)
		}
	}
	return nil
}

// Counters aggregates network-wide packet accounting.
type Counters struct {
	// DataSent counts first transmissions of data packets.
	DataSent uint64
	// Retransmits counts retransmitted data packets.
	Retransmits uint64
	// AcksSent counts acknowledgment packets.
	AcksSent uint64
	// Delivered counts packets received by their destination host.
	Delivered uint64
	// Dropped counts packets dropped by switch queues.
	Dropped uint64
	// CBRSent counts constant-bit-rate packets emitted.
	CBRSent uint64
	// CBRDelivered counts CBR packets that arrived.
	CBRDelivered uint64
	// CBROnTime counts CBR packets that arrived before their deadline.
	CBROnTime uint64
}

// Network is one simulation instance — either the whole topology
// (single-threaded, built by New) or one shard of it (built by a Cluster,
// which leaves the device slices nil at indexes other shards own).
type Network struct {
	cfg    Config
	eng    *sim.Engine
	pool   *pkt.Pool // nil when pooling is disabled (nil-safe methods)
	hosts  []*Host
	leaves []*Switch
	spines []*Switch
	fcts   *stats.Collector
	count  Counters

	// part is the shard this Network embodies; nil for the whole-topology
	// single-threaded build.
	part *partition
	// inbound holds one arrival ring per cross-shard link this shard
	// receives on, indexed by global link id; inject pushes handed-off
	// packets here so their arrival events cost no allocation.
	inbound []inboundRing

	// roleMetrics shares one sched.Metrics bundle per (device role,
	// scheduler name), so the scheduler families aggregate across the
	// role's ports.
	roleMetrics map[string]*sched.Metrics

	// dropStage stages per-(tenant, cause) drop counts on the data path
	// as plain map increments; FlushMetrics publishes the deltas into the
	// registry (nil maps when uninstrumented — the staging is skipped).
	dropStage   map[dropKey]uint64
	dropFlushed map[dropKey]uint64
	tenantNames map[pkt.TenantID]string

	nextPktID uint64
}

// dropKey identifies one per-tenant, per-cause drop counter.
type dropKey struct {
	tenant pkt.TenantID
	cause  sched.DropCause
}

// countDrop books one dropped packet network-wide and stages its
// (tenant, cause) attribution when the network is instrumented.
func (n *Network) countDrop(t pkt.TenantID, cause sched.DropCause) {
	n.count.Dropped++
	if n.dropStage != nil {
		n.dropStage[dropKey{t, cause}]++
	}
}

// tenantName resolves a tenant ID to its configured name for metric
// labels, falling back to "tenant<id>".
func (n *Network) tenantName(id pkt.TenantID) string {
	if name, ok := n.tenantNames[id]; ok {
		return name
	}
	name := fmt.Sprintf("tenant%d", id)
	if n.tenantNames != nil {
		n.tenantNames[id] = name
	}
	return name
}

// Metric families exported by an instrumented network.
const (
	MetricPortTxBytes     = "qvisor_netsim_tx_bytes_total"
	MetricPortTxPackets   = "qvisor_netsim_tx_packets_total"
	MetricPortDrops       = "qvisor_netsim_drops_total"
	MetricPortUtilization = "qvisor_netsim_port_utilization"
	MetricPortMaxQueued   = "qvisor_netsim_port_max_queued_bytes"
	MetricDropsByCause    = "qvisor_netsim_drops_by_cause_total"
)

// schedMetrics returns the shared scheduler instrument bundle for one
// (role, scheduler) pair — nil when the network is uninstrumented. The
// engine clock is attached so instrumented schedulers record per-packet
// sojourn times.
func (n *Network) schedMetrics(role, scheduler string) *sched.Metrics {
	if n.cfg.Registry == nil {
		return nil
	}
	if n.roleMetrics == nil {
		n.roleMetrics = make(map[string]*sched.Metrics)
	}
	key := role + "\x00" + scheduler
	m, ok := n.roleMetrics[key]
	if !ok {
		m = sched.NewMetrics(n.cfg.Registry,
			obs.L("role", role), obs.L("scheduler", scheduler)).WithClock(n.eng.Now)
		n.roleMetrics[key] = m
	}
	return m
}

// New builds the whole network on one engine and schedules all tenant
// flows. The returned network is ready to Run. This is the reference
// path: a Config with Shards <= 1 behaves byte-identically through New
// regardless of the sharding code (use Build to pick New or NewCluster
// from the config).
func New(cfg Config) (*Network, error) {
	return build(cfg, nil)
}

// build constructs a Network. With a nil partition it builds the whole
// topology; with a partition it builds only the devices the shard owns
// (leaving other slots nil), turns egress ports whose receiving device
// lives elsewhere into handoff ports, and arms inbound arrival rings for
// the links this shard receives on. Flow IDs are assigned from the global
// schedule order — (start time, tenant order, flow order) — so every
// shard agrees on them and they match the single-threaded assignment
// exactly; per-flow ECMP therefore picks the same spine in both modes.
func build(cfg Config, part *partition) (*Network, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if part != nil && cfg.Controller != nil {
		return nil, fmt.Errorf("netsim: the controller requires the single-threaded engine (Shards <= 1)")
	}
	eng := cfg.Engine
	if eng == nil {
		eng = sim.New()
	} else {
		eng.Reset()
	}
	var pool *pkt.Pool
	if !cfg.DisablePool {
		if pool = cfg.Pool; pool == nil {
			pool = pkt.NewPool()
		}
	}
	n := &Network{
		cfg:  cfg,
		eng:  eng,
		pool: pool,
		fcts: stats.NewCollector(),
		part: part,
	}
	if part != nil {
		// Disjoint per-shard ID ranges: packet IDs stay globally unique in
		// merged traces without cross-shard coordination. (Flow IDs come
		// from the global schedule order below, not from this base.)
		n.nextPktID = uint64(part.shard) << 48
	}
	if cfg.Registry != nil {
		n.dropStage = make(map[dropKey]uint64)
		n.dropFlushed = make(map[dropKey]uint64)
		n.tenantNames = make(map[pkt.TenantID]string, len(cfg.Tenants))
		for i := range cfg.Tenants {
			n.tenantNames[cfg.Tenants[i].ID] = cfg.Tenants[i].Name
		}
	}
	hostCount := cfg.Leaves * cfg.HostsPerLeaf
	n.hosts = make([]*Host, hostCount)
	n.leaves = make([]*Switch, cfg.Leaves)
	n.spines = make([]*Switch, cfg.Spines)

	for i := range n.spines {
		if part.ownsSpine(i) {
			n.spines[i] = newSwitch(n, spineSwitch, i, cfg.Leaves)
		}
	}
	for i := range n.leaves {
		if part.ownsLeaf(i) {
			n.leaves[i] = newSwitch(n, leafSwitch, i, cfg.HostsPerLeaf+cfg.Spines)
		}
	}
	for h := range n.hosts {
		if part.ownsLeaf(h / cfg.HostsPerLeaf) {
			n.hosts[h] = newHost(n, h)
		}
	}

	// Wire ports: host <-> leaf (access rate), leaf <-> spine (fabric).
	// Hosts always share their leaf's shard, so access links never cross
	// shards; fabric links cross when leaf and spine have different
	// owners, and the egress port then hands off to the coordinator
	// instead of scheduling a local arrival.
	for h, host := range n.hosts {
		if host == nil {
			continue
		}
		leaf := n.leaves[h/cfg.HostsPerLeaf]
		local := h % cfg.HostsPerLeaf
		host.up = n.newPort("host", h,
			fmt.Sprintf("host%d→leaf%d", h, leaf.id), cfg.AccessBps, leaf.receive)
		leaf.ports[local] = n.newPort("leaf", leaf.id,
			fmt.Sprintf("leaf%d→host%d", leaf.id, h), cfg.AccessBps, host.receive)
	}
	if part != nil {
		n.inbound = make([]inboundRing, 2*cfg.Leaves*cfg.Spines)
	}
	for li := range n.leaves {
		for si := range n.spines {
			upName := fmt.Sprintf("leaf%d→spine%d", li, si)
			downName := fmt.Sprintf("spine%d→leaf%d", si, li)
			switch {
			case part.ownsLeaf(li) && part.ownsSpine(si):
				n.leaves[li].ports[cfg.HostsPerLeaf+si] = n.newPort("leaf", li,
					upName, cfg.FabricBps, n.spines[si].receive)
				n.spines[si].ports[li] = n.newPort("spine", si,
					downName, cfg.FabricBps, n.leaves[li].receive)
			case part.ownsLeaf(li):
				n.leaves[li].ports[cfg.HostsPerLeaf+si] = n.newRemotePort("leaf", li,
					upName, cfg.FabricBps, linkLeafSpine(&cfg, li, si), part.spineOwner[si])
				n.armInbound(linkSpineLeaf(&cfg, si, li), n.leaves[li].receive)
			case part.ownsSpine(si):
				n.spines[si].ports[li] = n.newRemotePort("spine", si,
					downName, cfg.FabricBps, linkSpineLeaf(&cfg, si, li), part.leafOwner[li])
				n.armInbound(linkLeafSpine(&cfg, li, si), n.spines[si].receive)
			}
		}
	}

	// Schedule tenant traffic (only flows sourced on owned hosts, but
	// validate and number all of them so shards agree on flow IDs).
	type flowRef struct {
		ti, fi int
	}
	var refs []flowRef
	for ti := range cfg.Tenants {
		td := &cfg.Tenants[ti]
		for fi, spec := range td.Flows {
			if spec.Src < 0 || spec.Src >= hostCount || spec.Dst < 0 || spec.Dst >= hostCount {
				return nil, fmt.Errorf("netsim: tenant %q flow endpoints (%d,%d) outside %d hosts",
					td.Name, spec.Src, spec.Dst, hostCount)
			}
			if spec.Src == spec.Dst {
				return nil, fmt.Errorf("netsim: tenant %q flow has src == dst", td.Name)
			}
			refs = append(refs, flowRef{ti, fi})
		}
	}
	// Number flows the way the single-threaded engine fires their start
	// events: by start time, ties in (tenant, flow) insertion order.
	sort.SliceStable(refs, func(i, j int) bool {
		return cfg.Tenants[refs[i].ti].Flows[refs[i].fi].Start <
			cfg.Tenants[refs[j].ti].Flows[refs[j].fi].Start
	})
	for ord, ref := range refs {
		td := &cfg.Tenants[ref.ti]
		spec := td.Flows[ref.fi]
		if n.hosts[spec.Src] == nil {
			continue
		}
		id := uint64(ord + 1)
		n.eng.At(spec.Start, func(now sim.Time) {
			n.hosts[spec.Src].startFlow(now, td, spec, id)
		})
	}

	// Controller check loop.
	if cfg.Controller != nil {
		var tick func(sim.Time)
		tick = func(now sim.Time) {
			if _, err := cfg.Controller.Check(now); err == nil {
				if now+cfg.CheckInterval <= cfg.Horizon {
					n.eng.After(cfg.CheckInterval, tick)
				}
			}
		}
		n.eng.After(cfg.CheckInterval, tick)
	}
	return n, nil
}

// Engine exposes the event engine (for tests and custom scenarios).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Pool exposes the packet pool — nil when pooling is disabled. Its
// Outstanding count is the number of packets still inside the network
// (queued or on the wire); after a fully drained run it is zero.
func (n *Network) Pool() *pkt.Pool { return n.pool }

// Hosts returns the number of hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

// FCTs returns the flow-completion-time collector.
func (n *Network) FCTs() *stats.Collector { return n.fcts }

// Counters returns a snapshot of the packet counters.
func (n *Network) Counters() Counters { return n.count }

// Run executes the simulation until the horizon, then lets in-flight
// traffic drain for up to one extra horizon so flows started near the end
// can complete.
func (n *Network) Run() {
	n.eng.Run(n.cfg.Horizon)
	n.stopAllCBR()
	n.eng.Run(2 * n.cfg.Horizon)
	n.FlushMetrics()
}

// stopAllCBR halts every owned host's CBR sources (the drain boundary).
func (n *Network) stopAllCBR() {
	for _, h := range n.hosts {
		if h != nil {
			h.stopCBR()
		}
	}
}

// Outstanding is the number of packets currently inside this network
// (queued or on the wire) per the pool's conservation accounting — zero
// after a fully drained run, and zero always when pooling is disabled.
func (n *Network) Outstanding() int { return n.pool.Outstanding() }

// Close releases run resources. The single-threaded Network holds none;
// it exists so Network and Cluster satisfy the same Sim interface.
func (n *Network) Close() {}

// RunNoDrain executes strictly to the horizon (tests that need exact
// mid-simulation state).
func (n *Network) RunNoDrain() { n.eng.Run(n.cfg.Horizon) }

// txTime returns the serialization delay of size bytes at rate bps.
func txTime(size int, bps float64) sim.Time {
	t := sim.Time(float64(size*8) / bps * 1e9)
	if t < 1 {
		t = 1
	}
	return t
}

func (n *Network) pktID() uint64 {
	n.nextPktID++
	return n.nextPktID
}

// forEachPort visits every owned output port in stable order: host
// uplinks, then leaf ports, then spine ports.
func (n *Network) forEachPort(f func(*Port)) {
	for _, h := range n.hosts {
		if h != nil {
			f(h.up)
		}
	}
	for _, sw := range n.leaves {
		if sw == nil {
			continue
		}
		for _, p := range sw.ports {
			f(p)
		}
	}
	for _, sw := range n.spines {
		if sw == nil {
			continue
		}
		for _, p := range sw.ports {
			f(p)
		}
	}
}

// PortStats returns the telemetry of every output port in the network, in
// a stable order: host uplinks, then leaf ports, then spine ports.
func (n *Network) PortStats() []PortStats {
	elapsed := n.eng.Now()
	var out []PortStats
	n.forEachPort(func(p *Port) {
		out = append(out, p.stats(elapsed))
	})
	n.FlushMetrics()
	return out
}

// FlushMetrics publishes the staged telemetry into the registry: per-port
// tx/drop counter deltas, the lazily computed per-port gauges (utilization,
// queue high-water mark), and the per-role scheduler stages. Run and
// PortStats call it; call it directly only when scraping mid-simulation. A
// no-op without a registry.
func (n *Network) FlushMetrics() {
	if n.cfg.Registry == nil {
		return
	}
	elapsed := n.eng.Now()
	n.forEachPort(func(p *Port) {
		p.flushObs(elapsed)
	})
	for _, m := range n.roleMetrics {
		m.Flush()
	}
	for k, v := range n.dropStage {
		if d := v - n.dropFlushed[k]; d > 0 {
			n.cfg.Registry.Counter(MetricDropsByCause,
				"Packets dropped, attributed to tenant and drop cause.",
				obs.L("tenant", n.tenantName(k.tenant)),
				obs.L("cause", k.cause.String())).Add(d)
			n.dropFlushed[k] = v
		}
	}
}

// releasePkt returns a packet to the pool after unpinning it from its
// policy epoch. Every point where a packet leaves the network — final
// delivery or any drop — must release through here so superseded epochs
// can finish draining.
func (n *Network) releasePkt(p *pkt.Packet) {
	if p.Epoch != 0 && n.cfg.Epochs != nil {
		n.cfg.Epochs.Release(p.Epoch)
	}
	n.pool.Put(p)
}

// leafOf returns the leaf index of a host.
func (n *Network) leafOf(host int) int { return host / n.cfg.HostsPerLeaf }

// ecmp picks a spine for a flow: deterministic per-flow hash, so a flow
// never reorders across paths.
func (n *Network) ecmp(flow uint64) int {
	h := flow * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(n.cfg.Spines))
}
