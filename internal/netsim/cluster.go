package netsim

import (
	"fmt"
	"sort"

	"qvisor/internal/core"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
)

// Sim is the common surface of the single-threaded Network and the
// sharded Cluster, so experiment harnesses run either from one Config.
type Sim interface {
	// Run executes the simulation to the horizon and drains in-flight
	// traffic, then publishes metrics (and, for a cluster, merges
	// per-shard results).
	Run()
	// FCTs returns the flow-completion records (for a cluster, merged
	// across shards in a deterministic order; valid after Run).
	FCTs() *stats.Collector
	// Counters returns the summed network-wide packet accounting.
	Counters() Counters
	// PortStats returns every port's telemetry in the global stable
	// order: host uplinks, then leaf ports, then spine ports.
	PortStats() []PortStats
	// Outstanding is the number of packets still inside the network,
	// summed over all packet pools — zero after a drained run.
	Outstanding() int
	// Close releases run resources (shard goroutines). Idempotent.
	Close()
}

// Build constructs the simulation the Config asks for: a sharded Cluster
// when Shards > 1, the single-threaded Network otherwise. The Shards <= 1
// path is byte-identical to calling New directly.
func Build(cfg Config) (Sim, error) {
	if cfg.Shards > 1 {
		return NewCluster(cfg)
	}
	return New(cfg)
}

// Metric families exported by a sharded run.
const (
	MetricShardWindows     = "qvisor_netsim_shard_windows_total"
	MetricShardMessages    = "qvisor_netsim_shard_messages_total"
	MetricShardBarrierWait = "qvisor_netsim_shard_barrier_wait_seconds"
	MetricShardBusy        = "qvisor_netsim_shard_busy_seconds"
	MetricShardChanMax     = "qvisor_netsim_shard_chan_max_occupancy"
)

// Cluster runs one simulation as Shards parallel partitions under a
// conservative-lookahead coordinator (see internal/sim). Each shard is a
// partial Network — its own engine, packet pool, preprocessor clone, and
// trace recorder — and cross-shard packets are exchanged at window
// barriers in a deterministic global order, so a cluster run is
// reproducible regardless of GOMAXPROCS or goroutine scheduling.
type Cluster struct {
	cfg     Config
	nets    []*Network
	coord   *sim.Coordinator
	seqs    []uint64 // per-shard handoff sequence counters
	preps   []*core.Preprocessor
	watches []*slo.Watchdog
	fcts    *stats.Collector

	flushed sim.CoordStats // coordinator counters already published
	merged  bool
	closed  bool
}

// NewCluster builds a sharded simulation. cfg.Shards must be in
// [1, Leaves]; one shard is allowed (it exercises the coordinator path
// and must match New exactly — the determinism regression tests rely on
// it). See Config.Shards for the sharded-mode constraints.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	s := cfg.Shards
	if s < 1 {
		s = 1
	}
	if s > cfg.Leaves {
		return nil, fmt.Errorf("netsim: %d shards exceed %d leaves (a shard owns at least one leaf pod)", s, cfg.Leaves)
	}
	if cfg.Controller != nil {
		return nil, fmt.Errorf("netsim: the controller requires the single-threaded engine (Shards <= 1)")
	}
	if cfg.Engine != nil || cfg.Pool != nil {
		return nil, fmt.Errorf("netsim: Engine and Pool must be nil in sharded mode (each shard builds private ones)")
	}
	leafOwner, spineOwner := makeOwners(&cfg, s)
	c := &Cluster{
		cfg:   cfg,
		nets:  make([]*Network, s),
		seqs:  make([]uint64, s),
		preps: make([]*core.Preprocessor, s),
		fcts:  stats.NewCollector(),
	}
	for i := 0; i < s; i++ {
		i := i
		part := &partition{
			shard:      i,
			shards:     s,
			leafOwner:  leafOwner,
			spineOwner: spineOwner,
			handoff: func(at sim.Time, link uint64, dst int, p *pkt.Packet) {
				c.nets[i].pool.Lend(p)
				c.seqs[i]++
				c.coord.Send(sim.Message{At: at, Dst: dst, Link: link, Seq: c.seqs[i], Data: p})
			},
		}
		scfg := cfg
		scfg.Preprocessor = cfg.Preprocessor.Clone()
		c.preps[i] = scfg.Preprocessor
		if cfg.Watch != nil {
			scfg.Watch = cfg.Watch.Shard(i)
			c.watches = append(c.watches, scfg.Watch)
		}
		if cfg.Trace != nil {
			topts := cfg.Trace.Options()
			topts.Shard = i
			if topts.RingSize <= 0 {
				topts.RingSize = trace.DefaultRingSize
			}
			scfg.Trace = trace.NewFlightRecorder(topts)
		}
		n, err := build(scfg, part)
		if err != nil {
			return nil, err
		}
		c.nets[i] = n
	}
	shards := make([]sim.ShardConfig, s)
	for i, n := range c.nets {
		shards[i] = sim.ShardConfig{Engine: n.eng, Inject: n.inject}
	}
	coord, err := sim.NewCoordinator(sim.CoordConfig{
		Shards:    shards,
		Lookahead: cfg.PropDelay,
		ChanCap:   cfg.ShardChanCap,
	})
	if err != nil {
		return nil, err
	}
	c.coord = coord
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.nets) }

// Shard exposes one shard's partial Network (for tests).
func (c *Cluster) Shard(i int) *Network { return c.nets[i] }

// CoordStats returns the coordinator's synchronization counters: windows,
// cross-shard messages, channel high-water mark, and per-shard busy and
// barrier-wait wall-clock times. Call it between Runs or after Run.
func (c *Cluster) CoordStats() sim.CoordStats { return c.coord.Stats() }

// Run executes the parallel simulation to the horizon, drains in-flight
// traffic (mirroring Network.Run), then merges per-shard results: FCT
// records, trace rings, preprocessor stats, and telemetry.
func (c *Cluster) Run() {
	c.coord.Run(c.cfg.Horizon)
	// Workers are parked between coordinator runs, so touching shard
	// state here is safe (the command channels order the accesses).
	for _, n := range c.nets {
		n.stopAllCBR()
	}
	c.coord.Run(2 * c.cfg.Horizon)
	c.finish()
}

// finish merges per-shard results into cluster-level views. It runs once.
func (c *Cluster) finish() {
	if c.merged {
		return
	}
	c.merged = true
	// Flow records, ordered deterministically: completion time, then
	// start, then flow ID (IDs are globally unique, so the order is
	// total). A shard's collector is already in completion order; the
	// merge makes the global order independent of shard count.
	var recs []stats.FlowRecord
	for _, n := range c.nets {
		recs = append(recs, n.fcts.Records()...)
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].End != recs[j].End {
			return recs[i].End < recs[j].End
		}
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})
	for _, r := range recs {
		c.fcts.Add(r)
	}
	// Trace rings, merged into the parent recorder by (time, shard).
	// Stable sort keeps each shard's own event order for same-nanosecond
	// events. Note the merge sees at most RingSize recent events per
	// shard — the same window a single recorder keeps.
	if c.cfg.Trace != nil {
		var events []trace.Event
		for _, n := range c.nets {
			evs, _ := n.cfg.Trace.Snapshot(trace.AllEvents)
			events = append(events, evs...)
		}
		sort.SliceStable(events, func(i, j int) bool {
			if events[i].TimeNs != events[j].TimeNs {
				return events[i].TimeNs < events[j].TimeNs
			}
			return events[i].Shard < events[j].Shard
		})
		c.cfg.Trace.Append(events)
	}
	// Preprocessor stats roll up into the parent the caller holds.
	if c.cfg.Preprocessor != nil {
		for _, pp := range c.preps {
			c.cfg.Preprocessor.Absorb(pp.Stats())
		}
	}
	// Watchdog SLI state merges into the parent by absolute window index;
	// the merge is commutative, so shard order cannot change the result.
	for _, w := range c.watches {
		c.cfg.Watch.Absorb(w)
	}
	c.FlushMetrics()
}

// FlushMetrics publishes every shard's staged telemetry plus the
// coordinator's synchronization counters into the registry. A no-op
// without a registry.
func (c *Cluster) FlushMetrics() {
	for _, n := range c.nets {
		n.FlushMetrics()
	}
	reg := c.cfg.Registry
	if reg == nil {
		return
	}
	st := c.coord.Stats()
	// The generic coordinator families (qvisor_sim_*) publish alongside
	// the netsim-specific shard gauges below, sharing the same delta
	// baseline so both stay monotonic across repeated flushes.
	st.Export(reg, c.flushed)
	reg.Counter(MetricShardWindows,
		"Parallel windows executed by the shard coordinator.").Add(st.Windows - c.flushed.Windows)
	reg.Counter(MetricShardMessages,
		"Cross-shard packet handoffs exchanged at window barriers.").Add(st.Messages - c.flushed.Messages)
	reg.Gauge(MetricShardChanMax,
		"High-water mark of the cross-shard handoff channel.").Set(float64(st.MaxChanLen))
	for i := range c.nets {
		l := obs.L("shard", fmt.Sprintf("%d", i))
		reg.Gauge(MetricShardBarrierWait,
			"Wall-clock time the shard sat at barriers waiting for other shards.", l).
			Set(st.BarrierWait[i].Seconds())
		reg.Gauge(MetricShardBusy,
			"Wall-clock time the shard spent injecting and running events.", l).
			Set(st.Busy[i].Seconds())
	}
	c.flushed = st
}

// FCTs returns the merged flow-completion collector (populated by Run).
func (c *Cluster) FCTs() *stats.Collector { return c.fcts }

// Counters returns the packet counters summed over all shards. Every
// event is counted on exactly one shard (sends where the source host
// lives, deliveries where the destination lives, drops where the queue
// overflowed), so the sums match a single-threaded run of the same
// traffic.
func (c *Cluster) Counters() Counters {
	var t Counters
	for _, n := range c.nets {
		s := n.count
		t.DataSent += s.DataSent
		t.Retransmits += s.Retransmits
		t.AcksSent += s.AcksSent
		t.Delivered += s.Delivered
		t.Dropped += s.Dropped
		t.CBRSent += s.CBRSent
		t.CBRDelivered += s.CBRDelivered
		t.CBROnTime += s.CBROnTime
	}
	return t
}

// PortStats returns every port's telemetry in the same global stable
// order as Network.PortStats: host uplinks, then leaf ports, then spine
// ports — shard count does not change the order.
func (c *Cluster) PortStats() []PortStats {
	cfg := &c.cfg
	netOfLeaf := func(li int) *Network {
		return c.nets[c.nets[0].part.leafOwner[li]]
	}
	netOfSpine := func(si int) *Network {
		return c.nets[c.nets[0].part.spineOwner[si]]
	}
	var out []PortStats
	for h := 0; h < cfg.Leaves*cfg.HostsPerLeaf; h++ {
		n := netOfLeaf(h / cfg.HostsPerLeaf)
		out = append(out, n.hosts[h].up.stats(n.eng.Now()))
	}
	for li := 0; li < cfg.Leaves; li++ {
		n := netOfLeaf(li)
		for _, p := range n.leaves[li].ports {
			out = append(out, p.stats(n.eng.Now()))
		}
	}
	for si := 0; si < cfg.Spines; si++ {
		n := netOfSpine(si)
		for _, p := range n.spines[si].ports {
			out = append(out, p.stats(n.eng.Now()))
		}
	}
	c.FlushMetrics()
	return out
}

// Outstanding sums packet-conservation accounting over every shard's
// pool. Lend/Adopt keep the sum exact across handoffs, so a drained
// cluster reports zero.
func (c *Cluster) Outstanding() int {
	t := 0
	for _, n := range c.nets {
		t += n.pool.Outstanding()
	}
	return t
}

// Close shuts the shard worker goroutines down. Idempotent.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.coord.Close()
}
