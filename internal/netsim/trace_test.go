package netsim

import (
	"testing"

	"qvisor/internal/rank"
	"qvisor/internal/sim"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// steadyStateTraced is steadyState with a flight recorder attached at
// the given flow-sampling rate.
func steadyStateTraced(tb testing.TB, sample uint64) *Network {
	tb.Helper()
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "cbr", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Rate: 400e6},
			{Start: 0, Src: 2, Dst: 0, Rate: 400e6},
		},
	}}, sim.MaxTime/4)
	cfg.Trace = trace.NewFlightRecorder(trace.Options{FlowSample: sample})
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestTraceLifecycleCoverage: a fully sampled run must record every
// lifecycle stage for a delivered packet — emit, port enqueue/dequeue,
// switch arrival, delivery — in causal order per packet.
func TestTraceLifecycleCoverage(t *testing.T) {
	rec := trace.NewFlightRecorder(trace.Options{RingSize: 1 << 14})
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "cbr", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Rate: 200e6}},
	}}, 2*sim.Millisecond)
	cfg.Trace = rec
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	events, _ := rec.Snapshot(trace.AllEvents)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[string]int{}
	byPkt := map[uint64][]trace.Event{}
	for _, e := range events {
		kinds[e.Kind]++
		byPkt[e.ID] = append(byPkt[e.ID], e)
	}
	for _, k := range []string{trace.KindEmit, trace.KindEnqueue, trace.KindDequeue, trace.KindArrive, trace.KindDeliver} {
		if kinds[k] == 0 {
			t.Fatalf("lifecycle stage %q never recorded (kinds: %v)", k, kinds)
		}
	}
	// Per-packet causal order: timestamps never decrease, spans start
	// with emit, and a resolved packet ends with deliver or drop.
	resolved := 0
	for id, span := range byPkt {
		if span[0].Kind != trace.KindEmit {
			t.Fatalf("packet %d: span starts with %q", id, span[0].Kind)
		}
		for i := 1; i < len(span); i++ {
			if span[i].TimeNs < span[i-1].TimeNs {
				t.Fatalf("packet %d: time regresses at event %d", id, i)
			}
		}
		last := span[len(span)-1].Kind
		if last == trace.KindDeliver || last == trace.KindDrop {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("no packet span resolved with deliver/drop")
	}
}

// TestTraceDropCauses: an overloaded lossy run must attribute every
// drop event to a cause, and the recorded drop count per cause must
// match the per-tenant counters published to the registry.
func TestTraceDropCauses(t *testing.T) {
	// Record only drop events so the ring cannot wrap and the count is
	// exact; this also exercises the kind filter on the production path.
	rec := trace.NewFlightRecorder(trace.Options{Kinds: []string{trace.KindDrop}, RingSize: 1 << 16})
	cfg := lossyPoisson(t, 11)
	cfg.Trace = rec
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	events, _ := rec.Snapshot(trace.AllEvents)
	drops := 0
	for _, e := range events {
		if e.Kind != trace.KindDrop {
			continue
		}
		drops++
		switch e.Cause {
		case "overflow", "evicted", "admission", "fault":
		default:
			t.Fatalf("drop event without a valid cause: %+v", e)
		}
	}
	if drops == 0 {
		t.Fatal("lossy run recorded no drops")
	}
	if want := n.Counters().Dropped; uint64(drops) != want {
		t.Fatalf("traced drops = %d, counters say %d", drops, want)
	}
}

// TestAllocBudgetSimSteadyStateTraced: the zero-allocation guarantee
// must survive an attached flight recorder — unsampled packets cost a
// modulo, sampled ones a value copy into the preallocated ring.
func TestAllocBudgetSimSteadyStateTraced(t *testing.T) {
	n := steadyStateTraced(t, 64)
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now)
	allocs := testing.AllocsPerRun(200, func() {
		now += 50 * sim.Microsecond
		eng.Run(now)
	})
	if allocs != 0 {
		t.Fatalf("traced steady-state slice allocates %.1f objects/op, budget is 0", allocs)
	}
}

// BenchmarkSimSteadyStateTraced is BenchmarkSimSteadyState with an
// always-on flight recorder at 1-in-64 flow sampling — the overhead
// budget is <= 3% over the untraced hot path.
func BenchmarkSimSteadyStateTraced(b *testing.B) {
	n := steadyStateTraced(b, 64)
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Microsecond
		eng.Run(now)
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Fired())/float64(b.N), "events/op")
}
