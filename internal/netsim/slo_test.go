package netsim

import (
	"bytes"
	"encoding/json"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/workload"
)

// steadyStateWatched is steadyState with the fidelity watchdog attached
// at the given sampling rate (nil watchdog when sample is 0).
func steadyStateWatched(tb testing.TB, sample uint64) (*Network, *slo.Watchdog) {
	tb.Helper()
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "cbr", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Rate: 400e6},
			{Start: 0, Src: 2, Dst: 0, Rate: 400e6},
		},
	}}, sim.MaxTime/4)
	var w *slo.Watchdog
	if sample > 0 {
		w = slo.New(slo.Config{SampleN: sample})
		cfg.Watch = w
	}
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return n, w
}

// TestWatchdogHealthyEndToEnd: a clean PIFO run must come out OK on
// every SLO, observe traffic on all hook sites, and drain every shadow.
func TestWatchdogHealthyEndToEnd(t *testing.T) {
	w := slo.New(slo.Config{SampleN: 1})
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Size: 14600},
			{Start: 0, Src: 3, Dst: 1, Size: 29200},
		},
	}}, 10*sim.Millisecond)
	cfg.Watch = w
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	snap := w.Snapshot()
	if snap.State != slo.StateOK {
		t.Fatalf("healthy run state = %s, want ok\nhealth: %+v", snap.State, snap.Health)
	}
	g := snap.Global
	if g.SampledEnqueues == 0 || g.SampledDequeues == 0 || g.SampledDelivered == 0 {
		t.Fatalf("hook sites silent: %+v", g)
	}
	// The ideal PIFO backend can still invert across ports (the shadow
	// is per port, the fabric is not), but a clean run must stay within
	// budget — asserted by StateOK above — and leak nothing.
	if got := w.ShadowPackets(); got != 0 {
		t.Errorf("drained run left %d packets in shadow queues", got)
	}
	if snap.Revision == 0 {
		t.Error("revision did not advance")
	}
	if len(snap.Tenants) != 1 || snap.Tenants[0].Tenant != "tenant1" {
		t.Errorf("tenants = %+v", snap.Tenants)
	}
}

// TestWatchdogFaultScenarioPages: the acceptance scenario — a seeded
// overload on a low-fidelity FIFO backend (pFabric ranks, FIFO service:
// every size inversion is visible) must drive the inversion SLI over
// budget and flip health to PAGE, deterministically.
func TestWatchdogFaultScenarioPages(t *testing.T) {
	w := slo.New(slo.Config{SampleN: 1})
	cfg := lossyPoisson(t, 11)
	cfg.Scheduler = func(drop sched.DropFn) sched.Scheduler {
		return sched.NewFIFO(sched.Config{CapacityBytes: 15000, OnDrop: drop})
	}
	cfg.Watch = w
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	snap := w.Snapshot()
	if snap.State != slo.StatePage {
		t.Fatalf("FIFO overload state = %s, want page\nhealth: %+v", snap.State, snap.Health)
	}
	var inv slo.SLOHealth
	for _, h := range snap.Health {
		if h.Name == slo.SLOInversions {
			inv = h
		}
	}
	if inv.State != slo.StatePage {
		t.Fatalf("inversion SLO = %+v, want page", inv)
	}
	if inv.BurnShort < slo.DefaultPageBurn || inv.BurnLong < slo.DefaultPageBurn {
		t.Errorf("burn rates %g/%g below page threshold", inv.BurnShort, inv.BurnLong)
	}
	if snap.Global.Inversions == 0 || snap.Global.DisplacementP99 <= 0 {
		t.Errorf("inversion SLIs empty: %+v", snap.Global)
	}
	// Determinism: the same seed reproduces the same snapshot bytes.
	w2 := slo.New(slo.Config{SampleN: 1})
	cfg2 := lossyPoisson(t, 11)
	cfg2.Scheduler = cfg.Scheduler
	cfg2.Watch = w2
	n2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	n2.Run()
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(w2.Snapshot())
	if !bytes.Equal(a, b) {
		t.Errorf("same seed, different snapshots:\n%s\n%s", a, b)
	}
}

// TestWatchdogFaultInjectorDivergence: injected faults drop packets the
// ideal would have kept — the drop-divergence SLI must see them.
func TestWatchdogFaultInjectorDivergence(t *testing.T) {
	w := slo.New(slo.Config{SampleN: 1})
	cfg := lossyPoisson(t, 7)
	base := cfg.Scheduler
	count := 0
	cfg.Scheduler = func(drop sched.DropFn) sched.Scheduler {
		return NewFaultInjector(base(drop), func(p *pkt.Packet) bool {
			if p.Kind != pkt.Data {
				return false
			}
			count++
			return count%20 == 0
		}, drop)
	}
	cfg.Watch = w
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	snap := w.Snapshot()
	if snap.Global.DropDiverged == 0 {
		t.Fatalf("fault injector produced no drop divergence: %+v", snap.Global)
	}
	found := false
	for _, ts := range snap.Tenants {
		if ts.Drops["fault"] > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no tenant attributed fault drops: %+v", snap.Tenants)
	}
}

// runWatched executes one lossyPoisson run at the given seed, sampling
// rate, and shard count and returns the marshalled SLI snapshot.
func runWatched(t *testing.T, seed int64, sampleN uint64, shards int) []byte {
	t.Helper()
	w := slo.New(slo.Config{SampleN: sampleN})
	cfg := lossyPoisson(t, seed)
	cfg.Shards = shards
	cfg.Watch = w
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Run()
	out, err := json.Marshal(w.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterWatchdogSLIEquality: the acceptance bar for shard-aware
// aggregation — a 2-shard run reports a byte-identical SLI snapshot to
// the single-threaded reference, including burn-rate health and the
// per-tenant table, at full sampling and 1-in-4 flow sampling.
//
// Scope: the rank-fidelity SLIs (inversions, displacement, divergence)
// are tie-order independent by construction and merge exactly at any
// shard count. The delay SLIs measure real per-packet waiting, so they
// inherit the engine's ordering of same-nanosecond events, which the
// sharded engine only guarantees per shard (the repo-wide contract is
// counters + flow records, see TestClusterMatchesSingleThreaded); this
// scenario has no cross-shard same-ns tie, so the full snapshot matches
// byte for byte. (TestCluster prefix: the CI race job's shard
// determinism steps run this at GOMAXPROCS 1 and 4.)
func TestClusterWatchdogSLIEquality(t *testing.T) {
	for _, sampleN := range []uint64{1, 4} {
		single := runWatched(t, 23, sampleN, 1)
		double := runWatched(t, 23, sampleN, 2)
		if !bytes.Equal(single, double) {
			t.Fatalf("sampleN=%d: sharded SLI snapshot differs from single-threaded:\nsingle: %s\nsharded: %s",
				sampleN, single, double)
		}
	}
}

// TestClusterWatchdogRepeatDeterminism: the unconditional half of the
// determinism story — a 2-shard run must reproduce its own SLI snapshot
// byte for byte across repeats regardless of goroutine interleaving,
// including on a seed whose same-ns tie ordering differs from the
// single-threaded engine's.
func TestClusterWatchdogRepeatDeterminism(t *testing.T) {
	first := runWatched(t, 29, 1, 2)
	for i := 0; i < 3; i++ {
		if again := runWatched(t, 29, 1, 2); !bytes.Equal(first, again) {
			t.Fatalf("repeat %d: sharded SLI snapshot not reproducible:\n%s\n%s", i, first, again)
		}
	}
}

// TestAllocBudgetSimSteadyStateWatchdog: the watchdog's unsampled path
// (no flow hits the 1-in-64 sample in this workload) must keep the
// steady-state slice at zero allocations per op.
func TestAllocBudgetSimSteadyStateWatchdog(t *testing.T) {
	n, _ := steadyStateWatched(t, 64)
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now)
	allocs := testing.AllocsPerRun(200, func() {
		now += 50 * sim.Microsecond
		eng.Run(now)
	})
	if allocs != 0 {
		t.Fatalf("watchdog steady-state slice allocates %.1f objects/op, budget is 0", allocs)
	}
}

// BenchmarkWatchdogOff is the baseline half of the watchdog overhead
// pair: the identical steady-state slice with no watchdog attached.
func BenchmarkWatchdogOff(b *testing.B) {
	n, _ := steadyStateWatched(b, 0)
	benchSteady(b, n)
}

// BenchmarkWatchdogSampled attaches the watchdog at the default 1-in-64
// flow sampling (no flow of this workload is mirrored, so this measures
// the per-event sampling predicate — the overhead budget is <= 3% over
// BenchmarkWatchdogOff, same convention as BenchmarkSimSteadyStateTraced).
func BenchmarkWatchdogSampled(b *testing.B) {
	n, _ := steadyStateWatched(b, 64)
	benchSteady(b, n)
}

// BenchmarkWatchdogMirrored samples every flow — the upper bound where
// 100% of traffic runs through the shadow oracle, not a configuration
// the 3% budget applies to.
func BenchmarkWatchdogMirrored(b *testing.B) {
	n, _ := steadyStateWatched(b, 1)
	benchSteady(b, n)
}

func benchSteady(b *testing.B, n *Network) {
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Microsecond
		eng.Run(now)
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Fired())/float64(b.N), "events/op")
}
