package netsim

import (
	"reflect"
	"strings"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// hostPreprocScenario builds a two-tenant cross-leaf workload whose send
// windows hold several packets, with rank-oblivious (FIFO) host uplinks so
// moving the rank rewrite from the first switch to the host NIC cannot
// change uplink service order. Rankers are constructed fresh per call so
// back-to-back runs never share state.
func hostPreprocScenario(t *testing.T) (Config, *core.JointPolicy) {
	t.Helper()
	pf1 := &rank.PFabric{MaxFlowBytes: 1 << 20}
	pf2 := &rank.PFabric{MaxFlowBytes: 1 << 20}
	jp, err := core.Synthesize([]*core.Tenant{
		{ID: 1, Name: "a", Algorithm: pf1},
		{ID: 2, Name: "b", Algorithm: pf2},
	}, policy.MustParse("a >> b"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(src, dst int) []workload.FlowSpec {
		var fs []workload.FlowSpec
		for i := 0; i < 6; i++ {
			fs = append(fs, workload.FlowSpec{
				Start: sim.Time(i) * sim.Millisecond / 2,
				Src:   src, Dst: dst,
				Size: int64(20000 + 7300*i),
			})
		}
		return fs
	}
	cfg := tiny([]TenantDef{
		{ID: 1, Name: "a", Ranker: pf1, Flows: mk(0, 2)},
		{ID: 2, Name: "b", Ranker: pf2, Flows: mk(1, 3)},
	}, 30*sim.Millisecond)
	cfg.SchedulerFor = func(role string, id int, d sched.DropFn) sched.Scheduler {
		if role == "host" {
			return sched.NewFIFO(sched.Config{OnDrop: d})
		}
		return sched.NewPIFO(sched.Config{OnDrop: d})
	}
	return cfg, jp
}

func runHostPreproc(t *testing.T, hostPre bool) (Counters, []stats.FlowRecord) {
	t.Helper()
	cfg, jp := hostPreprocScenario(t)
	cfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
	cfg.HostPreproc = hostPre
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if out := n.Outstanding(); out != 0 {
		t.Fatalf("outstanding = %d after drained run, want 0", out)
	}
	return n.Counters(), n.FCTs().Records()
}

// TestHostPreprocEquivalence: with full policy coverage and FIFO host
// uplinks, rewriting ranks at the host NIC (one ApplyBatch per send
// window) is observationally identical to rewriting them per-packet at
// the first switch — same counters, same flow-completion records.
func TestHostPreprocEquivalence(t *testing.T) {
	switchC, switchF := runHostPreproc(t, false)
	hostC, hostF := runHostPreproc(t, true)
	if switchC != hostC {
		t.Fatalf("counters diverge:\nswitch %+v\nhost   %+v", switchC, hostC)
	}
	if !reflect.DeepEqual(switchF, hostF) {
		t.Fatalf("FCT records diverge: switch %d records, host %d records\nswitch %+v\nhost   %+v",
			len(switchF), len(hostF), switchF, hostF)
	}
	if switchC.DataSent == 0 || len(switchF) != 12 {
		t.Fatalf("scenario degenerate: %+v, %d flows", switchC, len(switchF))
	}
}

// TestHostPreprocDeterminism: two identical HostPreproc runs agree
// byte-for-byte.
func TestHostPreprocDeterminism(t *testing.T) {
	c1, f1 := runHostPreproc(t, true)
	c2, f2 := runHostPreproc(t, true)
	if c1 != c2 {
		t.Fatalf("counters diverge across identical runs:\n%+v\n%+v", c1, c2)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("FCT records diverge across identical runs")
	}
}

// TestHostPreprocTransformAttribution: the flight recorder sees the same
// (pre-rank → rank) rewrite per packet ID in both deployments; only the
// location moves from the first switch to the sending host. This pins the
// cursor-based pre-rank recovery in trySendBatch.
func TestHostPreprocTransformAttribution(t *testing.T) {
	collect := func(hostPre bool) (map[uint64][2]int64, map[uint64]string) {
		cfg, jp := hostPreprocScenario(t)
		cfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
		cfg.HostPreproc = hostPre
		rec := trace.NewFlightRecorder(trace.Options{RingSize: 1 << 16})
		cfg.Trace = rec
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		ranks := make(map[uint64][2]int64)
		where := make(map[uint64]string)
		ev, _ := rec.Snapshot(trace.AllEvents)
		for _, e := range ev {
			if e.Kind != trace.KindTransform || e.PktKind != "data" {
				continue
			}
			ranks[e.ID] = [2]int64{e.PreRank, e.Rank}
			where[e.ID] = e.Where
		}
		return ranks, where
	}
	swRanks, swWhere := collect(false)
	hoRanks, hoWhere := collect(true)
	if len(swRanks) == 0 {
		t.Fatal("no data transform events recorded")
	}
	if !reflect.DeepEqual(swRanks, hoRanks) {
		t.Fatalf("transform rewrites diverge: switch %d, host %d", len(swRanks), len(hoRanks))
	}
	for id, w := range swWhere {
		if !strings.HasPrefix(w, "leaf") {
			t.Fatalf("switch-mode transform of %d at %q, want a leaf", id, w)
		}
	}
	for id, w := range hoWhere {
		if !strings.HasPrefix(w, "host") {
			t.Fatalf("host-mode transform of %d at %q, want a host", id, w)
		}
	}
}

// TestHostPreprocUnknownDrop: a tenant outside the joint policy is
// rejected by ApplyBatch at the host NIC — an admission drop before the
// packet spends any uplink capacity. The flow never completes, the
// transport keeps retrying via RTO, and packet conservation still holds.
func TestHostPreprocUnknownDrop(t *testing.T) {
	pfA := &rank.PFabric{MaxFlowBytes: 1 << 20}
	jp, err := core.Synthesize([]*core.Tenant{
		{ID: 1, Name: "a", Algorithm: pfA},
	}, policy.MustParse("a"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pfB := &rank.PFabric{MaxFlowBytes: 1 << 20}
	cfg := tiny([]TenantDef{
		{ID: 1, Name: "a", Ranker: pfA, Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Size: 30000},
		}},
		{ID: 2, Name: "b", Ranker: pfB, Flows: []workload.FlowSpec{
			{Start: 0, Src: 1, Dst: 3, Size: 30000},
		}},
	}, 10*sim.Millisecond)
	pp := core.NewPreprocessor(jp, core.UnknownDrop)
	cfg.Preprocessor = pp
	cfg.HostPreproc = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if got := n.FCTs().Tenant("a"); len(got) != 1 {
		t.Fatalf("known tenant completed %d flows, want 1", len(got))
	}
	if got := n.FCTs().Tenant("b"); len(got) != 0 {
		t.Fatalf("unknown tenant completed %d flows, want 0", len(got))
	}
	c := n.Counters()
	if c.Dropped == 0 {
		t.Fatal("unknown tenant produced no admission drops")
	}
	if c.Retransmits == 0 {
		t.Fatal("RTO never fired for the dropped tenant's flow")
	}
	if st := pp.Stats(); st.Unknown == 0 {
		t.Fatalf("preprocessor saw no unknown packets: %+v", st)
	}
	if out := n.Outstanding(); out != 0 {
		t.Fatalf("outstanding = %d after run, want 0 (host drop leaked)", out)
	}
}
