package netsim

import (
	"testing"

	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/workload"
)

// steadyStateAdmission is steadyState with the combined
// admission+scheduling backend on every port: the per-packet path adds
// the quantile admission gate, the rank-window update, and the periodic
// dynamic-bound refresh, all of which must stay inside the
// zero-allocation budget.
func steadyStateAdmission(tb testing.TB) *Network {
	tb.Helper()
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "cbr", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Rate: 400e6},
			{Start: 0, Src: 2, Dst: 0, Rate: 400e6},
		},
	}}, sim.MaxTime/4)
	cfg.Scheduler = func(drop sched.DropFn) sched.Scheduler {
		return sched.NewAdmission(sched.AdmissionConfig{
			Config: sched.Config{OnDrop: drop},
		})
	}
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestAllocBudgetSimSteadyStateAdmission: advancing a warmed simulation
// running on the admission backend must not allocate, matching the other
// seven disciplines' budget (the admission window, scratch sort buffer,
// and queue rings are all preallocated and kept warm).
func TestAllocBudgetSimSteadyStateAdmission(t *testing.T) {
	n := steadyStateAdmission(t)
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now) // warm: pools, rings, the rank window, and the bound refresh
	allocs := testing.AllocsPerRun(200, func() {
		now += 50 * sim.Microsecond
		eng.Run(now)
	})
	if allocs != 0 {
		t.Fatalf("admission steady-state slice allocates %.1f objects/op, budget is 0", allocs)
	}
}

// BenchmarkSimSteadyStateAdmission is BenchmarkSimSteadyState on the
// admission+scheduling backend; allocs/op must report 0 (recorded in
// BENCH_hotpath.json, gated by the CI bench-smoke job).
func BenchmarkSimSteadyStateAdmission(b *testing.B) {
	n := steadyStateAdmission(b)
	eng := n.Engine()
	now := 5 * sim.Millisecond
	eng.Run(now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * sim.Microsecond
		eng.Run(now)
	}
	b.StopTimer()
	perSlice := float64(eng.Fired()) / float64(b.N)
	b.ReportMetric(perSlice, "events/op")
}
