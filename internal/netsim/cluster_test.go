package netsim

import (
	"fmt"
	"sort"
	"testing"

	"qvisor/internal/leaktest"
	"qvisor/internal/obs"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// shardScenario is the reference workload of the sharding tests: a
// 4-leaf/2-spine fabric with Poisson size-based traffic crossing leaf
// pods plus a CBR deadline tenant, so handoffs carry data, acks, and
// datagrams in both directions.
func shardScenario(t testing.TB, horizon sim.Time) Config {
	t.Helper()
	flows, err := workload.Poisson(workload.PoissonConfig{
		Hosts: 8, Load: 0.35, AccessBitsPerSec: 1e9,
		Sizes: workload.DataMining().Scaled(0.001), Horizon: horizon, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Leaves:       4,
		Spines:       2,
		HostsPerLeaf: 2,
		AccessBps:    1e9,
		FabricBps:    4e9,
		Horizon:      horizon,
		Tenants: []TenantDef{
			{ID: 1, Name: "t1", Ranker: &rank.PFabric{}, Flows: flows},
			{ID: 2, Name: "t2", Ranker: &rank.EDF{}, Flows: []workload.FlowSpec{
				{Start: 0, Src: 0, Dst: 6, Rate: 2e8, DeadlineBudget: sim.Millisecond},
				{Start: 0, Src: 5, Dst: 1, Rate: 2e8, DeadlineBudget: sim.Millisecond},
			}},
		},
	}
}

// sortedRecords returns the FCT records in the deterministic global
// order (End, Start, ID) so single- and multi-shard runs compare 1:1.
func sortedRecords(c *stats.Collector) []stats.FlowRecord {
	recs := append([]stats.FlowRecord(nil), c.Records()...)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].End != recs[j].End {
			return recs[i].End < recs[j].End
		}
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// TestClusterMatchesSingleThreaded is the fidelity contract of the
// tentpole: the sharded engine is an execution strategy, not a model
// change. Every flow must complete with the same completion time, and
// the network-wide counters must agree exactly, at every shard count.
func TestClusterMatchesSingleThreaded(t *testing.T) {
	horizon := 20 * sim.Millisecond
	ref, err := New(shardScenario(t, horizon))
	if err != nil {
		t.Fatal(err)
	}
	ref.Run()
	refRecs := sortedRecords(ref.FCTs())
	if len(refRecs) == 0 {
		t.Fatal("reference run completed no flows")
	}
	for _, shards := range []int{2, 3, 4} {
		cfg := shardScenario(t, horizon)
		cfg.Shards = shards
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Run()
		if got, want := c.Counters(), ref.Counters(); got != want {
			t.Fatalf("shards=%d counters diverge:\n got %+v\nwant %+v", shards, got, want)
		}
		recs := sortedRecords(c.FCTs())
		if len(recs) != len(refRecs) {
			t.Fatalf("shards=%d completed %d flows, reference %d", shards, len(recs), len(refRecs))
		}
		for i := range recs {
			if recs[i] != refRecs[i] {
				t.Fatalf("shards=%d record %d diverges:\n got %+v\nwant %+v", shards, i, recs[i], refRecs[i])
			}
		}
		if st := c.CoordStats(); st.Messages == 0 {
			t.Fatalf("shards=%d exchanged no cross-shard messages — partitioning is broken", shards)
		}
		c.Close()
	}
}

// TestClusterOneShardByteIdentical pins the degenerate case: one shard
// under the coordinator must reproduce the plain Network exactly,
// including per-port telemetry — the coordinator only chops Run into
// windows, it must not change what runs.
func TestClusterOneShardByteIdentical(t *testing.T) {
	horizon := 10 * sim.Millisecond
	ref, err := New(shardScenario(t, horizon))
	if err != nil {
		t.Fatal(err)
	}
	ref.Run()

	cfg := shardScenario(t, horizon)
	cfg.Shards = 1
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run()

	if got, want := c.Counters(), ref.Counters(); got != want {
		t.Fatalf("counters diverge:\n got %+v\nwant %+v", got, want)
	}
	ra, rb := ref.FCTs().Records(), c.FCTs().Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	pa, pb := ref.PortStats(), c.PortStats()
	if len(pa) != len(pb) {
		t.Fatalf("port counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("port %d stats differ:\n got %+v\nwant %+v", i, pb[i], pa[i])
		}
	}
}

// TestClusterDeterministicRepeat: two runs of the same sharded config
// are identical. CI runs this under -race at GOMAXPROCS=1 and 4; the
// results must not depend on goroutine interleaving.
func TestClusterDeterministicRepeat(t *testing.T) {
	run := func() (Counters, []stats.FlowRecord) {
		cfg := shardScenario(t, 15*sim.Millisecond)
		cfg.Shards = 4
		cfg.ShardChanCap = 8 // tiny channel: exercise mid-window draining
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Run()
		return c.Counters(), c.FCTs().Records()
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 {
		t.Fatalf("counters nondeterministic: %+v vs %+v", c1, c2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d nondeterministic: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestClusterHandoffConservation: under drop-heavy load, packet
// conservation must hold globally with ownership transfers in flight —
// every wire packet delivered or dropped exactly once, every pool
// drained, and the Lend/Adopt ledgers balanced across shards.
func TestClusterHandoffConservation(t *testing.T) {
	cfg := shardScenario(t, 20*sim.Millisecond)
	cfg.Shards = 2
	cfg.Scheduler = func(drop sched.DropFn) sched.Scheduler {
		return sched.NewPIFO(sched.Config{CapacityBytes: 20000, OnDrop: drop})
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run()
	ct := c.Counters()
	sent := ct.DataSent + ct.Retransmits + ct.AcksSent + ct.CBRSent
	if got := ct.Delivered + ct.Dropped; got != sent {
		t.Fatalf("conservation violated: sent=%d delivered+dropped=%d (%+v)", sent, got, ct)
	}
	if ct.Dropped == 0 {
		t.Fatal("test meant to exercise drops but none occurred")
	}
	if out := c.Outstanding(); out != 0 {
		t.Fatalf("outstanding = %d after drain, want 0 (leak or double release across handoff)", out)
	}
	var lent, adopted uint64
	for i := 0; i < c.Shards(); i++ {
		st := c.Shard(i).Pool().Stats()
		lent += st.Lent
		adopted += st.Adopted
	}
	if lent == 0 {
		t.Fatal("no cross-shard handoffs happened — scenario does not exercise the transfer path")
	}
	if lent != adopted {
		t.Fatalf("transfer ledger unbalanced: lent=%d adopted=%d (a packet was lost on the wire between pools)", lent, adopted)
	}
}

// TestClusterNoGoroutineLeak: building, running, and closing a cluster
// must release every shard worker.
func TestClusterNoGoroutineLeak(t *testing.T) {
	defer leaktest.Check(t)()
	cfg := shardScenario(t, 5*sim.Millisecond)
	cfg.Shards = 3
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	c.Close()
	c.Close() // idempotent
}

// TestClusterTraceMerge: per-shard flight recorders merge into the
// parent in (time, shard) order, with shard ids stamped on the events.
func TestClusterTraceMerge(t *testing.T) {
	cfg := shardScenario(t, 5*sim.Millisecond)
	cfg.Shards = 2
	rec := trace.NewFlightRecorder(trace.Options{})
	cfg.Trace = rec
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run()
	events, _ := rec.Snapshot(trace.AllEvents)
	if len(events) == 0 {
		t.Fatal("no events merged into the parent recorder")
	}
	shardsSeen := map[int]bool{}
	for i, e := range events {
		shardsSeen[e.Shard] = true
		if i > 0 {
			prev := events[i-1]
			if e.TimeNs < prev.TimeNs || (e.TimeNs == prev.TimeNs && e.Shard < prev.Shard) {
				t.Fatalf("merge order violated at %d: (%d,%d) after (%d,%d)",
					i, e.TimeNs, e.Shard, prev.TimeNs, prev.Shard)
			}
		}
	}
	if !shardsSeen[0] || !shardsSeen[1] {
		t.Fatalf("expected events from both shards, saw %v", shardsSeen)
	}
}

// TestClusterValidation pins the sharded-mode constraint errors.
func TestClusterValidation(t *testing.T) {
	base := func() Config { return shardScenario(t, sim.Millisecond) }

	cfg := base()
	cfg.Shards = cfg.Leaves + 1
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("shards > leaves must be rejected")
	}

	cfg = base()
	cfg.Shards = 2
	cfg.Engine = sim.New()
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("shared Engine must be rejected in sharded mode")
	}

	cfg = base()
	cfg.Shards = 2
	cfg.Pool = nil
	cfg.Engine = nil
	cfg.Controller = nil
	if _, err := NewCluster(cfg); err != nil {
		t.Fatalf("valid sharded config rejected: %v", err)
	}

	cfg = base()
	cfg.Shards = -1
	if _, err := Build(cfg); err == nil {
		t.Fatal("negative shard count must be rejected")
	}
}

// TestBuildFacade: Build picks the engine from the config.
func TestBuildFacade(t *testing.T) {
	cfg := shardScenario(t, sim.Millisecond)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Network); !ok {
		t.Fatalf("Shards=0 built %T, want *Network", s)
	}
	s.Close()
	cfg.Shards = 2
	s, err = Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Cluster); !ok {
		t.Fatalf("Shards=2 built %T, want *Cluster", s)
	}
	s.Close()
}

// BenchmarkClusterScaling is the 1-vs-N-shard pair bench-smoke runs; the
// committed numbers live in BENCH_shard.json. On a multi-core machine
// N-shard wall time should shrink toward 1/N of single-shard; on one
// core it measures the coordinator's overhead instead.
func BenchmarkClusterScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := shardScenario(b, 20*sim.Millisecond)
				cfg.Shards = shards
				var s Sim
				var err error
				if shards == 1 {
					s, err = New(cfg)
				} else {
					s, err = NewCluster(cfg)
				}
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				s.Run()
				b.StopTimer()
				s.Close()
			}
		})
	}
}

// TestClusterShardMetrics: a sharded run with a registry publishes the
// coordinator telemetry families, and FlushMetrics between runs reports
// deltas, not cumulative re-counts.
func TestClusterShardMetrics(t *testing.T) {
	cfg := shardScenario(t, 5*sim.Millisecond)
	cfg.Shards = 2
	cfg.Registry = obs.NewRegistry()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run()

	snap := cfg.Registry.Snapshot()
	got := map[string]float64{}
	for _, f := range snap.Families {
		for _, m := range f.Metrics {
			got[f.Name] += m.Value
		}
	}
	if got[MetricShardWindows] <= 0 {
		t.Fatalf("no shard windows published: %v", got)
	}
	if got[MetricShardMessages] <= 0 {
		t.Fatalf("no shard messages published: %v", got)
	}
	for _, name := range []string{MetricShardBarrierWait, MetricShardBusy, MetricShardChanMax} {
		if _, ok := got[name]; !ok {
			t.Fatalf("family %s missing from snapshot", name)
		}
	}
	windows := got[MetricShardWindows]
	// A second flush with no new coordinator work must add zero.
	c.FlushMetrics()
	snap = cfg.Registry.Snapshot()
	again := 0.0
	for _, f := range snap.Families {
		if f.Name == MetricShardWindows {
			for _, m := range f.Metrics {
				again += m.Value
			}
		}
	}
	if again != windows {
		t.Fatalf("idle FlushMetrics re-counted windows: %v -> %v", windows, again)
	}
}

// TestNetworkSimSurface: the single-threaded Network satisfies the same
// Sim surface the cluster does — drained Outstanding, no-op Close, host
// count.
func TestNetworkSimSurface(t *testing.T) {
	cfg := shardScenario(t, 2*sim.Millisecond)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if got := n.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after drained run = %d, want 0", got)
	}
	if got := n.Hosts(); got != cfg.Leaves*cfg.HostsPerLeaf {
		t.Fatalf("Hosts = %d, want %d", got, cfg.Leaves*cfg.HostsPerLeaf)
	}
	n.Close() // no-op, must not disturb results
	if n.FCTs().Len() == 0 {
		t.Fatal("no flows completed")
	}
}
