package netsim

import (
	"bufio"
	"bytes"
	"encoding/json"

	"qvisor/internal/trace"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
	"qvisor/internal/workload"
)

// tiny returns a 2-leaf/1-spine/2-hosts-per-leaf test topology.
func tiny(tenants []TenantDef, horizon sim.Time) Config {
	return Config{
		Leaves:       2,
		Spines:       1,
		HostsPerLeaf: 2,
		AccessBps:    1e9,
		FabricBps:    4e9,
		Tenants:      tenants,
		Horizon:      horizon,
	}
}

func TestSingleFlowCompletes(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Size: 14600}},
	}}, 10*sim.Millisecond)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	recs := n.FCTs().Records()
	if len(recs) != 1 {
		t.Fatalf("completed flows = %d, want 1", len(recs))
	}
	fct := recs[0].FCT()
	// 10 packets over a 1 Gbps access link: ~150 µs analytically.
	if fct < 100*sim.Microsecond || fct > 500*sim.Microsecond {
		t.Fatalf("FCT = %v, want ~150µs", fct)
	}
	if recs[0].Tenant != "t1" || recs[0].Size != 14600 {
		t.Fatalf("record fields wrong: %+v", recs[0])
	}
	c := n.Counters()
	if c.DataSent < 10 {
		t.Fatalf("data sent = %d, want >= 10", c.DataSent)
	}
	if c.Dropped != 0 {
		t.Fatalf("unexpected drops: %d", c.Dropped)
	}
}

func TestSameLeafFlowIsFaster(t *testing.T) {
	run := func(dst int) sim.Time {
		cfg := tiny([]TenantDef{{
			ID: 1, Name: "t1", Ranker: &rank.PFabric{},
			Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: dst, Size: 14600}},
		}}, 10*sim.Millisecond)
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		return n.FCTs().Records()[0].FCT()
	}
	same := run(1)  // host 1 shares leaf 0
	cross := run(2) // host 2 is on leaf 1
	if same >= cross {
		t.Fatalf("same-leaf FCT %v should beat cross-fabric FCT %v", same, cross)
	}
}

func TestPacketConservation(t *testing.T) {
	// Overload one destination so queues drop, then drain: every emitted
	// packet must be delivered or dropped, none lost or duplicated.
	var flows []workload.FlowSpec
	for src := 1; src < 4; src++ {
		flows = append(flows, workload.FlowSpec{Start: 0, Src: src, Dst: 0, Size: 300000})
	}
	cfg := tiny([]TenantDef{{ID: 1, Name: "t1", Ranker: &rank.PFabric{}, Flows: flows}}, 50*sim.Millisecond)
	cfg.Scheduler = func(drop sched.DropFn) sched.Scheduler {
		return sched.NewPIFO(sched.Config{CapacityBytes: 15000, OnDrop: drop})
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	c := n.Counters()
	sent := c.DataSent + c.Retransmits + c.AcksSent + c.CBRSent
	if got := c.Delivered + c.Dropped; got != sent {
		t.Fatalf("conservation violated: sent=%d delivered+dropped=%d (%+v)", sent, got, c)
	}
	if len(n.FCTs().Records()) != 3 {
		t.Fatalf("flows completed = %d, want 3 (retransmission must recover drops)", len(n.FCTs().Records()))
	}
	if c.Dropped == 0 {
		t.Fatal("test meant to exercise drops but none occurred")
	}
	// Pool ownership: after a fully drained run every pooled packet has
	// been released exactly once, so none remain outstanding.
	if out := n.Pool().Outstanding(); out != 0 {
		t.Fatalf("pool outstanding = %d after drain, want 0 (leak or double release)", out)
	}
	if gets := n.Pool().Stats().Gets; gets != sent {
		t.Fatalf("pool gets = %d, wire packets = %d: some packets bypassed the pool", gets, sent)
	}
}

func TestPFabricSmallFlowPreemptsLarge(t *testing.T) {
	// A large flow saturates the path; a small flow arriving later must
	// finish far sooner than the large one under pFabric-on-PIFO.
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Size: 3_000_000},
			{Start: 5 * sim.Millisecond, Src: 1, Dst: 2, Size: 14600},
		},
	}}, 100*sim.Millisecond)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	recs := n.FCTs().Records()
	if len(recs) != 2 {
		t.Fatalf("completed = %d, want 2", len(recs))
	}
	var small, large sim.Time
	for _, r := range recs {
		if r.Size == 14600 {
			small = r.FCT()
		} else {
			large = r.FCT()
		}
	}
	if small == 0 || large == 0 {
		t.Fatal("missing record")
	}
	// The small flow shares a bottleneck with a 3 MB elephant; pFabric
	// must keep its FCT within a small multiple of the unloaded ~150 µs.
	if small > sim.Millisecond {
		t.Fatalf("small-flow FCT %v too slow under pFabric priority", small)
	}
	if large < 10*small {
		t.Fatalf("large flow (%v) should be much slower than small (%v)", large, small)
	}
}

func TestFIFOHurtsSmallFlow(t *testing.T) {
	// Same scenario on a FIFO, with deep windows so the elephants build a
	// standing queue: the small flow queues (or drops) behind them.
	run := func(factory func(sched.DropFn) sched.Scheduler) sim.Time {
		cfg := tiny([]TenantDef{{
			ID: 1, Name: "t1", Ranker: &rank.PFabric{},
			Flows: []workload.FlowSpec{
				{Start: 0, Src: 0, Dst: 2, Size: 3_000_000},
				{Start: 0, Src: 1, Dst: 2, Size: 3_000_000},
				{Start: 0, Src: 3, Dst: 2, Size: 3_000_000},
				{Start: 5 * sim.Millisecond, Src: 1, Dst: 2, Size: 14600},
			},
		}}, 200*sim.Millisecond)
		cfg.Window = 64
		cfg.Scheduler = factory
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		for _, r := range n.FCTs().Records() {
			if r.Size == 14600 {
				return r.FCT()
			}
		}
		t.Fatal("small flow did not complete")
		return 0
	}
	pifo := run(func(d sched.DropFn) sched.Scheduler { return sched.NewPIFO(sched.Config{OnDrop: d}) })
	fifo := run(func(d sched.DropFn) sched.Scheduler { return sched.NewFIFO(sched.Config{OnDrop: d}) })
	if fifo <= 2*pifo {
		t.Fatalf("FIFO small-flow FCT %v should be much worse than PIFO %v", fifo, pifo)
	}
}

func TestCBRDeliveryAndDeadlines(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 2, Name: "edf", Ranker: &rank.EDF{},
		Flows: []workload.FlowSpec{{
			Start: 0, Src: 0, Dst: 3,
			Rate:           100e6, // 100 Mbps, well under capacity
			DeadlineBudget: 5 * sim.Millisecond,
		}},
	}}, 10*sim.Millisecond)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	c := n.Counters()
	if c.CBRSent == 0 {
		t.Fatal("no CBR packets sent")
	}
	if c.CBRDelivered != c.CBRSent {
		t.Fatalf("CBR delivered %d of %d", c.CBRDelivered, c.CBRSent)
	}
	if c.CBROnTime != c.CBRDelivered {
		t.Fatalf("unloaded network should meet all deadlines: %d of %d", c.CBROnTime, c.CBRDelivered)
	}
	// Rate sanity: 100 Mbps of 1524 B frames over 10 ms ≈ 82 packets.
	if c.CBRSent < 70 || c.CBRSent > 95 {
		t.Fatalf("CBR sent = %d, want ~82", c.CBRSent)
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	cfg := tiny(nil, sim.Millisecond)
	cfg.Spines = 4
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for f := uint64(0); f < 64; f++ {
		s := n.ecmp(f)
		if s < 0 || s >= 4 {
			t.Fatalf("ecmp out of range: %d", s)
		}
		seen[s] = true
	}
	if len(seen) < 3 {
		t.Fatalf("ECMP uses only %d of 4 spines over 64 flows", len(seen))
	}
	// Deterministic per flow.
	if n.ecmp(7) != n.ecmp(7) {
		t.Fatal("ecmp not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Leaves = 0 },
		func(c *Config) { c.Spines = 0 },
		func(c *Config) { c.HostsPerLeaf = 0 },
		func(c *Config) { c.AccessBps = 0 },
		func(c *Config) { c.FabricBps = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Tenants = []TenantDef{{ID: 1, Ranker: &rank.PFabric{}}} },            // no name
		func(c *Config) { c.Tenants = []TenantDef{{ID: 1, Name: "x"}} },                          // no ranker
		func(c *Config) { c.Tenants[0].Flows = []workload.FlowSpec{{Src: 0, Dst: 99, Size: 1}} }, // bad endpoint
	}
	for i, mutate := range bad {
		cfg := tiny([]TenantDef{{ID: 1, Name: "t", Ranker: &rank.PFabric{},
			Flows: []workload.FlowSpec{{Src: 0, Dst: 1, Size: 100}}}}, sim.Second)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New succeeded, want error", i)
		}
	}
	cfg := tiny([]TenantDef{{ID: 1, Name: "t", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Src: 1, Dst: 1, Size: 100}}}}, sim.Second)
	if _, err := New(cfg); err == nil {
		t.Error("src==dst: New succeeded, want error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	build := func() *Network {
		flows, err := workload.Poisson(workload.PoissonConfig{
			Hosts: 4, Load: 0.4, AccessBitsPerSec: 1e9,
			Sizes: workload.DataMining().Scaled(0.001), Horizon: 20 * sim.Millisecond, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(tiny([]TenantDef{{ID: 1, Name: "t1", Ranker: &rank.PFabric{}, Flows: flows}},
			20*sim.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := build(), build()
	a.Run()
	b.Run()
	ca, cb := a.Counters(), b.Counters()
	if ca != cb {
		t.Fatalf("nondeterministic counters: %+v vs %+v", ca, cb)
	}
	ra, rb := a.FCTs().Records(), b.FCTs().Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestQVISORStrictPriorityBlocksLowTier is the §2 scenario in miniature:
// with EDF >> pFabric, CBR deadline traffic saturating the path starves the
// pFabric tenant; with pFabric >> EDF, the pFabric flow is protected.
func TestQVISORStrictPriorityBlocksLowTier(t *testing.T) {
	run := func(spec string) sim.Time {
		pf := &rank.PFabric{MaxFlowBytes: 1 << 20}
		edf := &rank.EDF{MaxSlack: 10 * sim.Millisecond}
		tenants := []*core.Tenant{
			{ID: 1, Name: "pfabric", Algorithm: pf},
			{ID: 2, Name: "edf", Algorithm: edf},
		}
		jp, err := core.Synthesize(tenants, policy.MustParse(spec), core.SynthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := tiny([]TenantDef{
			{
				ID: 1, Name: "pfabric", Ranker: pf,
				Flows: []workload.FlowSpec{{Start: sim.Millisecond, Src: 0, Dst: 2, Size: 150000}},
			},
			{
				ID: 2, Name: "edf", Ranker: edf,
				Flows: []workload.FlowSpec{
					// Two CBR flows saturate host 2's access link.
					{Start: 0, Src: 1, Dst: 2, Rate: 0.6e9, DeadlineBudget: 5 * sim.Millisecond},
					{Start: 0, Src: 3, Dst: 2, Rate: 0.6e9, DeadlineBudget: 5 * sim.Millisecond},
				},
			},
		}, 40*sim.Millisecond)
		cfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		recs := n.FCTs().Tenant("pfabric")
		if len(recs) == 0 {
			return 2 * 40 * sim.Millisecond // did not complete: worst case
		}
		return recs[0].FCT()
	}
	protected := run("pfabric >> edf")
	blocked := run("edf >> pfabric")
	if blocked < 2*protected {
		t.Fatalf("EDF>>pFabric (%v) should be much worse for pFabric than pFabric>>EDF (%v)",
			blocked, protected)
	}
}

func TestControllerIntegration(t *testing.T) {
	// A tenant whose declared bounds are far too narrow: the controller
	// must detect drift mid-run and re-synthesize.
	pf := &rank.PFabric{}
	tenants := []*core.Tenant{
		{ID: 1, Name: "t1", Bounds: rank.Bounds{Lo: 0, Hi: 10}}, // declared narrow
	}
	var events []core.Event
	ctl, pp, err := core.NewController(tenants, policy.MustParse("t1"), core.ControllerOptions{
		MinObservations: 50,
		WindowSize:      128,
		OnEvent:         func(e core.Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := workload.Poisson(workload.PoissonConfig{
		Hosts: 4, Load: 0.3, AccessBitsPerSec: 1e9,
		Sizes: workload.Fixed(50000), Horizon: 50 * sim.Millisecond, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny([]TenantDef{{ID: 1, Name: "t1", Ranker: pf, Flows: flows}}, 50*sim.Millisecond)
	cfg.Preprocessor = pp
	cfg.Controller = ctl
	cfg.CheckInterval = 5 * sim.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if ctl.Version() < 2 {
		t.Fatalf("controller never re-synthesized (version=%d)", ctl.Version())
	}
	tr, ok := ctl.Policy().TransformOf("t1")
	if !ok {
		t.Fatal("t1 missing from adapted policy")
	}
	if tr.Hi <= 10 {
		t.Fatalf("adapted bounds %v still narrow", tr)
	}
}

func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flows, err := workload.Poisson(workload.PoissonConfig{
			Hosts: 4, Load: 0.5, AccessBitsPerSec: 1e9,
			Sizes: workload.DataMining().Scaled(0.001), Horizon: 10 * sim.Millisecond, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		n, err := New(tiny([]TenantDef{{ID: 1, Name: "t1", Ranker: &rank.PFabric{}, Flows: flows}},
			10*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		n.Run()
	}
}

func TestPortStatsTelemetry(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Size: 146000}},
	}}, 50*sim.Millisecond)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	stats := n.PortStats()
	// 4 host uplinks + 2 leaves × (2 host + 1 spine) + 1 spine × 2 = 12.
	if len(stats) != 12 {
		t.Fatalf("ports = %d, want 12", len(stats))
	}
	var active, totalTx uint64
	for _, ps := range stats {
		if ps.Name == "" {
			t.Fatal("unnamed port")
		}
		if ps.Utilization < 0 || ps.Utilization > 1 {
			t.Fatalf("utilization out of range: %+v", ps)
		}
		if ps.TxPackets > 0 {
			active++
			totalTx += ps.TxBytes
		}
	}
	// The flow's path touches host0 uplink, leaf0→spine, spine→leaf1,
	// leaf1→host2, plus the ack reverse path: at least 8 active ports.
	if active < 8 {
		t.Fatalf("active ports = %d, want >= 8", active)
	}
	if totalTx == 0 {
		t.Fatal("no bytes recorded")
	}
}

// TestHeterogeneousFabric runs QVISOR across a fabric where leaves are
// commodity strict-priority devices and spines are ideal PIFOs — the §5
// cross-device orchestration scenario. Strict tier isolation must survive
// the weakest device.
func TestHeterogeneousFabric(t *testing.T) {
	pf := &rank.PFabric{MaxFlowBytes: 1 << 20}
	edf := &rank.EDF{MaxSlack: 10 * sim.Millisecond}
	tenants := []*core.Tenant{
		{ID: 1, Name: "pfabric", Algorithm: pf},
		{ID: 2, Name: "edf", Algorithm: edf},
	}
	jp, err := core.Synthesize(tenants, policy.MustParse("pfabric >> edf"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiny([]TenantDef{
		{
			ID: 1, Name: "pfabric", Ranker: pf,
			Flows: []workload.FlowSpec{{Start: sim.Millisecond, Src: 0, Dst: 2, Size: 150000}},
		},
		{
			ID: 2, Name: "edf", Ranker: edf,
			Flows: []workload.FlowSpec{
				{Start: 0, Src: 1, Dst: 2, Rate: 0.6e9, DeadlineBudget: 5 * sim.Millisecond},
				{Start: 0, Src: 3, Dst: 2, Rate: 0.6e9, DeadlineBudget: 5 * sim.Millisecond},
			},
		},
	}, 40*sim.Millisecond)
	cfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
	// Heterogeneous deployment: hosts/leaves strict-priority queues,
	// spines PIFO.
	cfg.SchedulerFor = func(role string, id int, drop sched.DropFn) sched.Scheduler {
		if role == "spine" {
			return sched.NewPIFO(sched.Config{OnDrop: drop})
		}
		dep, err := jp.Deploy(core.BackendSPQueues, core.DeployOptions{
			Queues: 8, Sched: sched.Config{OnDrop: drop},
		})
		if err != nil {
			t.Fatalf("deploy: %v", err)
		}
		return dep.Scheduler
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	recs := n.FCTs().Tenant("pfabric")
	if len(recs) != 1 {
		t.Fatalf("pfabric flows completed = %d, want 1", len(recs))
	}
	// Strict priority protects the pFabric flow even on the commodity
	// leaves: its FCT stays close to the 150 KB serialization time
	// (~1.9 ms at 1 Gbps against saturated CBR interference).
	if fct := recs[0].FCT(); fct > 10*sim.Millisecond {
		t.Fatalf("pFabric FCT %v: isolation lost on heterogeneous fabric", fct)
	}
}

func TestTraceIntegration(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, trace.Options{})
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Size: 2920}},
	}}, 10*sim.Millisecond)
	cfg.Trace = rec
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if rec.Count() == 0 {
		t.Fatal("no trace events recorded")
	}
	// Every emitted data packet has a matching delivery (no drops here).
	emits, delivers := 0, 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		switch e.Kind {
		case "emit":
			emits++
		case "deliver":
			delivers++
		}
	}
	if emits == 0 || emits != delivers {
		t.Fatalf("emit/deliver mismatch: %d vs %d", emits, delivers)
	}
}

// TestPreprocessorRunsOncePerPacket: the rank rewrite happens at the first
// switch only; the Tagged flag prevents double transformation on
// multi-hop paths.
func TestPreprocessorRunsOncePerPacket(t *testing.T) {
	pf := &rank.PFabric{MaxFlowBytes: 1 << 20}
	tenants := []*core.Tenant{{ID: 1, Name: "t1", Algorithm: pf}}
	jp, err := core.Synthesize(tenants, policy.MustParse("t1"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pp := core.NewPreprocessor(jp, core.UnknownWorst)
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: pf,
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Size: 14600}}, // 3-hop path
	}}, 20*sim.Millisecond)
	cfg.Preprocessor = pp
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	c := n.Counters()
	wirePackets := c.DataSent + c.Retransmits + c.AcksSent
	st := pp.Stats()
	if st.Processed != wirePackets {
		t.Fatalf("preprocessor ran %d times for %d packets (must be exactly once each)",
			st.Processed, wirePackets)
	}
}

func TestStopAndWaitWindowOne(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Size: 7300}}, // 5 packets
	}}, 100*sim.Millisecond)
	cfg.Window = 1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	recs := n.FCTs().Records()
	if len(recs) != 1 {
		t.Fatal("stop-and-wait flow did not complete")
	}
	// 5 packets × ~1 RTT each: strictly slower than the pipelined case
	// but well-defined. RTT ≈ 35µs: FCT ≥ 5 RTTs ≈ 175µs.
	if recs[0].FCT() < 150*sim.Microsecond {
		t.Fatalf("window=1 FCT %v implausibly fast", recs[0].FCT())
	}
	if n.Counters().Retransmits != 0 {
		t.Fatal("no loss: no retransmits expected")
	}
}

func TestSinglePacketFlow(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 1, Size: 1}}, // 1 byte
	}}, 10*sim.Millisecond)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	recs := n.FCTs().Records()
	if len(recs) != 1 || recs[0].Size != 1 {
		t.Fatalf("single-byte flow records: %+v", recs)
	}
	if n.Counters().DataSent != 1 {
		t.Fatalf("data packets = %d, want 1", n.Counters().DataSent)
	}
}

func TestCBRStopTime(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 2, Name: "edf", Ranker: &rank.EDF{},
		Flows: []workload.FlowSpec{{
			Start: 0, Src: 0, Dst: 3,
			Rate: 100e6,
			Stop: 5 * sim.Millisecond,
		}},
	}}, 20*sim.Millisecond)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	c := n.Counters()
	// 100 Mbps × 5 ms of 1524 B frames ≈ 41 packets; a 20 ms horizon
	// would have produced ~164. The Stop time must cap it.
	if c.CBRSent < 35 || c.CBRSent > 50 {
		t.Fatalf("CBR sent %d packets, want ~41 (stop at 5ms)", c.CBRSent)
	}
}

// TestPreferenceIsBestEffortNotStarvation: under "a > b" with equal
// workloads, the preferred tenant gets better FCTs, but the dominated
// tenant still completes its flows (no starvation) — the §3.1 semantics of
// ">" vs ">>".
func TestPreferenceIsBestEffortNotStarvation(t *testing.T) {
	pf1 := &rank.PFabric{MaxFlowBytes: 1 << 20}
	pf2 := &rank.PFabric{MaxFlowBytes: 1 << 20}
	coreTenants := []*core.Tenant{
		{ID: 1, Name: "a", Algorithm: pf1, Levels: 1 << 16},
		{ID: 2, Name: "b", Algorithm: pf2, Levels: 1 << 16},
	}
	jp, err := core.Synthesize(coreTenants, policy.MustParse("a > b"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mkflows := func(seed int64) []workload.FlowSpec {
		flows, err := workload.Poisson(workload.PoissonConfig{
			Hosts: 4, Load: 0.45, AccessBitsPerSec: 1e9,
			Sizes: workload.Fixed(30000), Horizon: 40 * sim.Millisecond, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return flows
	}
	cfg := tiny([]TenantDef{
		{ID: 1, Name: "a", Ranker: pf1, Flows: mkflows(21)},
		{ID: 2, Name: "b", Ranker: pf2, Flows: mkflows(22)},
	}, 40*sim.Millisecond)
	cfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	sa := stats.Summarize(n.FCTs().Tenant("a"))
	sb := stats.Summarize(n.FCTs().Tenant("b"))
	if sa.Count == 0 || sb.Count == 0 {
		t.Fatal("missing samples")
	}
	t.Logf("preferred a: %v   dominated b: %v", sa.Mean, sb.Mean)
	// Preferred tenant does at least as well.
	if sa.Mean > sb.Mean {
		t.Errorf("preferred tenant slower: a=%v b=%v", sa.Mean, sb.Mean)
	}
	// Dominated tenant completes a comparable number of flows: best
	// effort, not starvation.
	if sb.Count*10 < sa.Count*9 {
		t.Errorf("b starved: %d flows vs a's %d", sb.Count, sa.Count)
	}
}

// TestWeightedShareThroughputRatioTraced: two window-controlled bulk flows
// under "a*2 + b" with LAS (attained-service) ranks. LAS plus the weighted
// slot interleave implements weighted fairness: service equalizes
// weight-scaled attained service, so while both flows are active the
// delivered-byte ratio tracks the 2:1 weights.
func TestWeightedShareThroughputRatioTraced(t *testing.T) {
	maxSent := int64(8 << 20)
	coreTenants := []*core.Tenant{
		{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: maxSent}, Levels: 1 << 12},
		{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: maxSent}, Levels: 1 << 12},
	}
	jp, err := core.Synthesize(coreTenants, policy.MustParse("a*2 + b"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	las1 := &rank.LAS{MaxFlowBytes: maxSent}
	las2 := &rank.LAS{MaxFlowBytes: maxSent}
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, trace.Options{Kinds: []string{"deliver"}})
	cfg := tiny([]TenantDef{
		{ID: 1, Name: "a", Ranker: las1, Flows: []workload.FlowSpec{
			{Start: 0, Src: 0, Dst: 2, Size: 4 << 20},
		}},
		{ID: 2, Name: "b", Ranker: las2, Flows: []workload.FlowSpec{
			{Start: 0, Src: 1, Dst: 2, Size: 4 << 20},
		}},
	}, 15*sim.Millisecond)
	cfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
	cfg.Trace = rec
	cfg.Window = 64
	cfg.Scheduler = func(d sched.DropFn) sched.Scheduler {
		return sched.NewPIFO(sched.Config{CapacityBytes: 1 << 20, OnDrop: d})
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.RunNoDrain()
	bytesBy := map[uint16]int{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.PktKind == "data" {
			bytesBy[e.Tenant] += e.Size
		}
	}
	if bytesBy[1] == 0 || bytesBy[2] == 0 {
		t.Fatalf("deliveries: %v", bytesBy)
	}
	ratio := float64(bytesBy[1]) / float64(bytesBy[2])
	t.Logf("delivered bytes a=%d b=%d ratio=%.2f", bytesBy[1], bytesBy[2], ratio)
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("weighted share ratio %.2f, want ~2.0", ratio)
	}
}
