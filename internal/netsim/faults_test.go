package netsim

import (
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/workload"
)

// TestRecoveryFromInjectedDataLoss drops the first transmission of every
// data packet of one flow; the transport must recover every byte via
// timeout retransmission and still complete.
func TestRecoveryFromInjectedDataLoss(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Size: 14600}},
	}}, 200*sim.Millisecond)
	seen := map[int64]bool{}
	cfg.SchedulerFor = func(role string, id int, drop sched.DropFn) sched.Scheduler {
		inner := sched.NewPIFO(sched.Config{OnDrop: drop})
		if role != "host" || id != 0 {
			return inner
		}
		// Drop the first copy of each data packet at the source uplink.
		return NewFaultInjector(inner, func(p *pkt.Packet) bool {
			if p.Kind != pkt.Data || seen[p.Seq] {
				return false
			}
			seen[p.Seq] = true
			return true
		}, drop)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	recs := n.FCTs().Records()
	if len(recs) != 1 {
		t.Fatalf("flow did not complete under 100%% first-copy loss (completed %d)", len(recs))
	}
	c := n.Counters()
	if c.Retransmits < 10 {
		t.Fatalf("retransmits = %d, want >= 10 (every packet lost once)", c.Retransmits)
	}
	// FCT includes at least one RTO (3 ms default).
	if fct := recs[0].FCT(); fct < cfg.RTO {
		t.Fatalf("FCT %v below one RTO; loss not exercised", fct)
	}
	sent := c.DataSent + c.Retransmits + c.AcksSent
	if c.Delivered+c.Dropped != sent {
		t.Fatalf("conservation with injected faults: sent=%d delivered+dropped=%d", sent, c.Delivered+c.Dropped)
	}
}

// TestRecoveryFromAckLoss drops every first ack; cumulative retransmission
// must still complete the flow, and duplicate data at the receiver must
// not corrupt accounting.
func TestRecoveryFromAckLoss(t *testing.T) {
	cfg := tiny([]TenantDef{{
		ID: 1, Name: "t1", Ranker: &rank.PFabric{},
		Flows: []workload.FlowSpec{{Start: 0, Src: 0, Dst: 2, Size: 7300}},
	}}, 200*sim.Millisecond)
	dropped := map[int64]bool{}
	cfg.SchedulerFor = func(role string, id int, drop sched.DropFn) sched.Scheduler {
		inner := sched.NewPIFO(sched.Config{OnDrop: drop})
		if role != "host" || id != 2 {
			return inner
		}
		return NewFaultInjector(inner, func(p *pkt.Packet) bool {
			if p.Kind != pkt.Ack || dropped[p.AckSeq] {
				return false
			}
			dropped[p.AckSeq] = true
			return true
		}, drop)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	if len(n.FCTs().Records()) != 1 {
		t.Fatal("flow did not complete under first-ack loss")
	}
	if n.Counters().Retransmits == 0 {
		t.Fatal("ack loss should force retransmissions")
	}
}

func TestFaultInjectorPassThrough(t *testing.T) {
	inner := sched.NewFIFO(sched.Config{})
	fi := NewFaultInjector(inner, nil, nil)
	p := &pkt.Packet{Size: 10, Rank: 1}
	if !fi.Enqueue(p) {
		t.Fatal("nil predicate must pass packets")
	}
	if fi.Len() != 1 || fi.Bytes() != 10 {
		t.Fatalf("len/bytes: %d/%d", fi.Len(), fi.Bytes())
	}
	if fi.Dequeue() != p {
		t.Fatal("dequeue mismatch")
	}
	if fi.Name() != "faulty-fifo" {
		t.Fatalf("name = %q", fi.Name())
	}
	if fi.Injected != 0 {
		t.Fatal("spurious injected count")
	}
}
