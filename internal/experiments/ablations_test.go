package experiments

import (
	"os"

	"qvisor/internal/workload"
	"testing"

	"qvisor/internal/sim"
)

func TestAblationQuantization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 20 * sim.Millisecond
	results, err := AblationQuantization(cfg, []int64{2, 1 << 20}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	coarse, fine := results[0].Small, results[1].Small
	if coarse.Count == 0 || fine.Count == 0 {
		t.Fatal("missing samples")
	}
	t.Logf("levels=2: %v  levels=2^20: %v", coarse.Mean, fine.Mean)
	// Two levels collapse pFabric's intra-tenant order; fine quantization
	// must not be worse.
	if fine.Mean > coarse.Mean {
		t.Errorf("fine quantization (%v) should not exceed coarse (%v)", fine.Mean, coarse.Mean)
	}
}

func TestAblationQueues(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 20 * sim.Millisecond
	results, err := AblationQueues(cfg, []int{2, 32}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	few, many := results[0].Small, results[1].Small
	if few.Count == 0 || many.Count == 0 {
		t.Fatal("missing samples")
	}
	t.Logf("queues=2: %v  queues=32: %v", few.Mean, many.Mean)
	// More queues preserve more rank order; allow equality but not a
	// large regression.
	if many.Mean > 2*few.Mean {
		t.Errorf("32 queues (%v) dramatically worse than 2 (%v)", many.Mean, few.Mean)
	}
}

func TestAblationRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 40 * sim.Millisecond
	res, err := AblationRuntime(cfg, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.Count == 0 || res.Adaptive.Count == 0 {
		t.Fatal("missing samples")
	}
	t.Logf("static: %v  adaptive: %v (resyntheses=%d)",
		res.Static.Mean, res.Adaptive.Mean, res.Resyntheses)
	if res.Resyntheses < 2 {
		t.Errorf("controller never adapted (version=%d)", res.Resyntheses)
	}
}

func TestTrafficShift(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 30 * sim.Millisecond
	res, err := TrafficShift(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if res.InteractiveFCT.Count == 0 {
		t.Fatal("no interactive flows during the background phase")
	}
	t.Logf("interactive small-flow FCT with background active: %v (deadline met %.0f%%)",
		res.InteractiveFCT.Mean, 100*res.DeadlineMet)
	// The background tier must not destroy interactive latency: small
	// flows stay under a millisecond at this scale.
	if res.InteractiveFCT.Mean > sim.Millisecond {
		t.Errorf("interactive FCT %v degraded by background tier", res.InteractiveFCT.Mean)
	}
	// Deadline traffic shares the top tier and keeps meeting deadlines.
	if res.DeadlineMet < 0.9 {
		t.Errorf("deadline-met fraction %.2f below 0.9", res.DeadlineMet)
	}
}

func TestAblationBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 20 * sim.Millisecond
	results, err := AblationBackends(cfg, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("backends = %d, want 7", len(results))
	}
	byName := map[string]Result{}
	for _, br := range results {
		if br.Result.Small.Count == 0 {
			t.Fatalf("%v: no samples", br.Backend)
		}
		byName[br.Backend.String()] = br.Result
		t.Logf("%-10s small-flow mean FCT %v", br.Backend, br.Result.Small.Mean)
	}
	// The ideal PIFO backend should be at least as good as the plain
	// strict-priority bank (approximations cannot beat the real thing by
	// much; allow generous noise).
	if byName["pifo"].Small.Mean > 3*byName["sp-queues"].Small.Mean {
		t.Errorf("PIFO backend (%v) much worse than SP queues (%v)?",
			byName["pifo"].Small.Mean, byName["sp-queues"].Small.Mean)
	}
}

func TestMultiObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 30 * sim.Millisecond
	results, err := MultiObjective(cfg, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]ObjectiveResult{}
	for _, r := range results {
		if r.Small.Count == 0 {
			t.Fatalf("%s: no samples", r.Name)
		}
		byName[r.Name] = r
		t.Logf("%-10s small %v  large %v", r.Name, r.Small.Mean, r.Large.Mean)
	}
	// pFabric is the small-flow optimum; pure FQ the slowest; the
	// composite must land at or below FQ.
	if byName["pfabric"].Small.Mean > byName["fq"].Small.Mean {
		t.Error("pFabric should beat FQ on small flows")
	}
	if byName["composite"].Small.Mean > byName["fq"].Small.Mean {
		t.Errorf("composite (%v) should not be worse than pure FQ (%v) for small flows",
			byName["composite"].Small.Mean, byName["fq"].Small.Mean)
	}
}

func TestInversionStudy(t *testing.T) {
	results, err := InversionStudy(20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]InversionResult{}
	for _, r := range results {
		byName[r.Scheduler] = r
		if r.Dequeues == 0 {
			t.Fatalf("%s: no dequeues", r.Scheduler)
		}
		t.Logf("%-12s inversions %6d / %6d (%.1f%%)  drops %d",
			r.Scheduler, r.Inversions, r.Dequeues, 100*r.Rate, r.Drops)
	}
	if byName["pifo"].Inversions != 0 {
		t.Error("ideal PIFO must have zero inversions")
	}
	// More SP-PIFO queues → fewer inversions; FIFO worst of all.
	if byName["sppifo:32"].Rate >= byName["sppifo:8"].Rate {
		t.Errorf("sppifo:32 (%.3f) should invert less than sppifo:8 (%.3f)",
			byName["sppifo:32"].Rate, byName["sppifo:8"].Rate)
	}
	if byName["fifo"].Rate <= byName["sppifo:8"].Rate {
		t.Errorf("FIFO (%.3f) should invert more than sppifo:8 (%.3f)",
			byName["fifo"].Rate, byName["sppifo:8"].Rate)
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InversionStudy(0, 1); err == nil {
		t.Fatal("zero packets accepted")
	}
}

func TestRunFromCSVTrace(t *testing.T) {
	// Export a generated workload, re-import it via FlowsCSV, and verify
	// the simulation result is identical to the generated run.
	cfg := ciConfig()
	cfg.Horizon = 10 * sim.Millisecond
	direct, err := Run(cfg, PIFOIdeal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := cfg.sizes()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := workload.Poisson(workload.PoissonConfig{
		Hosts: cfg.Leaves * cfg.HostsPerLeaf, Load: 0.5,
		AccessBitsPerSec: cfg.AccessBps, Sizes: sizes,
		Horizon: cfg.Horizon, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/flows.csv"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteCSV(f, flows); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg.FlowsCSV = path
	fromCSV, err := Run(cfg, PIFOIdeal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if fromCSV.Counters != direct.Counters {
		t.Fatalf("CSV-driven run diverged: %+v vs %+v", fromCSV.Counters, direct.Counters)
	}
	if fromCSV.Small.Mean != direct.Small.Mean {
		t.Fatalf("FCTs diverged: %v vs %v", fromCSV.Small.Mean, direct.Small.Mean)
	}
}
