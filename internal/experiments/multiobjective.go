package experiments

import (
	"fmt"

	"qvisor/internal/netsim"
	"qvisor/internal/rank"
	"qvisor/internal/stats"
	"qvisor/internal/workload"
)

// ObjectiveResult pairs a rank function with its measured FCTs.
type ObjectiveResult struct {
	Name         string
	Small, Large stats.Summary
}

// MultiObjective (A5) explores §5's "multi-objective scheduling
// algorithms": the same traffic scheduled by pure fair queuing, pure
// pFabric, and a weighted composite of the two. The paper's observation —
// "Fair Queuing schemes enforce fairness, but also help in reducing FCTs,
// since they implicitly prioritize short flows" — suggests a blended
// policy can approach pFabric's small-flow FCTs while retaining FQ's
// fairness pressure on elephants.
func MultiObjective(cfg Config, load float64) ([]ObjectiveResult, error) {
	sizes := workload.DataMining()
	if cfg.SizeScale != 1.0 {
		sizes = sizes.Scaled(cfg.SizeScale)
	}
	flows, err := workload.Poisson(workload.PoissonConfig{
		Hosts:            cfg.hosts(),
		Load:             load,
		AccessBitsPerSec: cfg.AccessBps,
		Sizes:            sizes,
		Horizon:          cfg.Horizon,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	maxFlow := int64(float64(300_000_000) * cfg.SizeScale)
	build := func() (map[string]rank.Ranker, error) {
		fqOnly := rank.NewFQ()
		pfOnly := &rank.PFabric{MaxFlowBytes: maxFlow}
		fqPart := rank.NewFQ()
		fqPart.MaxBacklog = maxFlow // common scale with pFabric
		comp, err := rank.NewComposite(1<<20,
			[]rank.Ranker{fqPart, &rank.PFabric{MaxFlowBytes: maxFlow}},
			[]float64{0.5, 0.5})
		if err != nil {
			return nil, err
		}
		return map[string]rank.Ranker{
			"fq":        fqOnly,
			"pfabric":   pfOnly,
			"composite": comp,
		}, nil
	}
	rankers, err := build()
	if err != nil {
		return nil, err
	}

	order := []string{"fq", "composite", "pfabric"}
	var out []ObjectiveResult
	smallMax, largeMin := cfg.SmallBinFor()
	for _, name := range order {
		n, err := netsim.New(netsim.Config{
			Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
			AccessBps: cfg.AccessBps, FabricBps: cfg.FabricBps,
			Horizon: cfg.Horizon,
			Tenants: []netsim.TenantDef{
				{ID: 1, Name: "t", Ranker: rankers[name], Flows: flows},
			},
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		n.Run()
		out = append(out, ObjectiveResult{
			Name: name,
			Small: stats.Summarize(n.FCTs().Filter(func(r stats.FlowRecord) bool {
				return r.Size > 0 && r.Size < smallMax
			})),
			Large: stats.Summarize(n.FCTs().Filter(func(r stats.FlowRecord) bool {
				return r.Size >= largeMin
			})),
		})
	}
	return out, nil
}
