package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"qvisor/internal/netsim"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
)

// Fidelity grades a sharded run against the single-threaded reference.
type Fidelity int

const (
	// FidelityExact: flow records are byte-identical to the reference.
	FidelityExact Fidelity = iota
	// FidelityEquivalent: the ISSUE-level contract — packet counters and
	// the multiset of completed flows (ID, tenant, size, start, deadline
	// outcome) match exactly, but some completion times shifted by a
	// same-nanosecond arrival-tie reorder (see DESIGN.md "Sharded
	// execution model"; MaxEndDelta bounds the shift).
	FidelityEquivalent
	// FidelityDiverged: the sharded run lost, duplicated, or re-timed
	// flows beyond a tie reorder — a real bug.
	FidelityDiverged
)

func (f Fidelity) String() string {
	switch f {
	case FidelityExact:
		return "exact"
	case FidelityEquivalent:
		return "equivalent"
	default:
		return "DIVERGED"
	}
}

// ScalingPoint is one shard count's measurement in a core-scaling sweep.
type ScalingPoint struct {
	// Shards is the partition count (1 = the single-threaded engine).
	Shards int
	// Wall is the wall-clock time of the run.
	Wall time.Duration
	// Speedup is point[0].Wall / Wall — relative to the sweep's first
	// (single-threaded) entry.
	Speedup float64
	// Fidelity grades this run against the single-threaded reference.
	Fidelity Fidelity
	// MaxEndDelta is the largest per-flow completion-time shift vs the
	// reference (zero when exact; the tie-reorder bound when equivalent).
	MaxEndDelta sim.Time
	// Matches reports whether the run upholds the fidelity contract
	// (exact or equivalent — anything but diverged).
	Matches bool
	// Result carries the scheduling-quality metrics of the run.
	Result Result
	// Windows and Messages are the coordinator's synchronization
	// counters (zero for the single-threaded run).
	Windows, Messages uint64
	// MaxChanLen is the handoff channel's high-water mark.
	MaxChanLen int
	// BarrierWait is the summed per-shard wall-clock barrier wait — the
	// load-imbalance signal.
	BarrierWait time.Duration
}

// RunScaling executes one (scheme, load) scenario at each shard count and
// reports wall time, speedup over the single-threaded engine, coordinator
// telemetry, and a fidelity verdict per point. shardCounts should start
// at 1 so every later point is compared against the reference run; a
// leading 1 is inserted if missing.
func RunScaling(cfg Config, scheme Scheme, load float64, shardCounts []int) ([]ScalingPoint, error) {
	if len(shardCounts) == 0 || shardCounts[0] != 1 {
		shardCounts = append([]int{1}, shardCounts...)
	}
	var points []ScalingPoint
	var refRecs []stats.FlowRecord
	var ref Result
	for i, shards := range shardCounts {
		runCfg := cfg
		runCfg.Shards = shards
		if shards > 1 {
			// Sharded runs build per-shard pools and engines.
			runCfg.Pool = nil
			runCfg.Engine = nil
		}
		start := time.Now()
		res, recs, tel, err := runWithCoordStats(runCfg, scheme, load)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling at %d shards: %w", shards, err)
		}
		p := ScalingPoint{
			Shards:      shards,
			Wall:        time.Since(start),
			Result:      res,
			Windows:     tel.windows,
			Messages:    tel.messages,
			MaxChanLen:  tel.maxChanLen,
			BarrierWait: tel.barrierWait,
		}
		if i == 0 {
			ref, refRecs = res, recs
			p.Fidelity = FidelityExact
			p.Speedup = 1
		} else {
			p.Fidelity, p.MaxEndDelta = gradeFidelity(ref, refRecs, res, recs)
			if p.Wall > 0 {
				p.Speedup = float64(points[0].Wall) / float64(p.Wall)
			}
		}
		p.Matches = p.Fidelity != FidelityDiverged
		points = append(points, p)
	}
	return points, nil
}

// gradeFidelity compares a sharded run's flow records against the
// single-threaded reference. Exact = identical records. Equivalent =
// identical counters and identical flows up to completion-time shifts
// (the same-nanosecond arrival-tie reorder the barrier merge permits);
// anything else is a divergence.
func gradeFidelity(ref Result, refRecs []stats.FlowRecord, res Result, recs []stats.FlowRecord) (Fidelity, sim.Time) {
	if res.Counters != ref.Counters || len(recs) != len(refRecs) {
		return FidelityDiverged, 0
	}
	a := append([]stats.FlowRecord(nil), refRecs...)
	b := append([]stats.FlowRecord(nil), recs...)
	byID := func(r []stats.FlowRecord) func(i, j int) bool {
		return func(i, j int) bool { return r[i].ID < r[j].ID }
	}
	sort.Slice(a, byID(a))
	sort.Slice(b, byID(b))
	exact := true
	var maxDelta sim.Time
	for i := range a {
		ra, rb := a[i], b[i]
		delta := rb.End - ra.End
		if delta < 0 {
			delta = -delta
		}
		ra.End, rb.End = 0, 0
		if ra != rb {
			return FidelityDiverged, 0
		}
		if delta != 0 {
			exact = false
			if delta > maxDelta {
				maxDelta = delta
			}
		}
	}
	if exact {
		return FidelityExact, 0
	}
	return FidelityEquivalent, maxDelta
}

// coordTelemetry is the subset of sim.CoordStats the scaling table shows.
type coordTelemetry struct {
	windows, messages uint64
	maxChanLen        int
	barrierWait       time.Duration
}

// runWithCoordStats is Run plus the artifacts the scaling sweep grades:
// flow records for the fidelity check and, when the build produced a
// sharded cluster, the coordinator counters — both read before closing.
func runWithCoordStats(cfg Config, scheme Scheme, load float64) (Result, []stats.FlowRecord, coordTelemetry, error) {
	res, s, err := run(cfg, scheme, load)
	if err != nil {
		return Result{}, nil, coordTelemetry{}, err
	}
	defer s.Close()
	recs := append([]stats.FlowRecord(nil), s.FCTs().Records()...)
	var tel coordTelemetry
	if cluster, ok := s.(*netsim.Cluster); ok {
		st := cluster.CoordStats()
		tel = coordTelemetry{windows: st.Windows, messages: st.Messages, maxChanLen: st.MaxChanLen}
		for _, w := range st.BarrierWait {
			tel.barrierWait += w
		}
	}
	return res, recs, tel, nil
}

// WriteScalingTable renders the sweep as an aligned text table.
func WriteScalingTable(w io.Writer, points []ScalingPoint) {
	fmt.Fprintf(w, "%-7s %-12s %-8s %-8s %-9s %-10s %-9s %-8s\n",
		"shards", "wall", "speedup", "windows", "messages", "chan-peak", "barrier", "fidelity")
	for _, p := range points {
		fid := p.Fidelity.String()
		if p.Fidelity == FidelityEquivalent {
			fid = fmt.Sprintf("equivalent(ties<=%dns)", int64(p.MaxEndDelta))
		}
		fmt.Fprintf(w, "%-7d %-12s %-8.2f %-8d %-9d %-10d %-9s %-8s\n",
			p.Shards, p.Wall.Round(time.Microsecond), p.Speedup,
			p.Windows, p.Messages, p.MaxChanLen,
			p.BarrierWait.Round(time.Microsecond), fid)
	}
}
