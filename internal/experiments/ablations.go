package experiments

import (
	"fmt"

	"qvisor/internal/core"
	"qvisor/internal/netsim"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/stats"
	"qvisor/internal/workload"
)

// AblationQuantization (A1) sweeps the synthesizer's quantization
// granularity under the sharing policy: coarse levels erase intra-tenant
// rank order (pFabric degenerates toward FIFO within its band), fine levels
// approach the unquantized joint policy. One Result per level count.
func AblationQuantization(cfg Config, levels []int64, load float64) ([]Result, error) {
	var out []Result
	for _, l := range levels {
		c := cfg
		c.Levels = l
		r, err := Run(c, QvisorShare, load)
		if err != nil {
			return nil, fmt.Errorf("levels %d: %w", l, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationQueues (A2) sweeps the number of strict-priority hardware queues
// when the joint policy deploys onto BackendSPQueues instead of a PIFO —
// the §3.4 scenario. More queues preserve more of the synthesized rank
// order; two queues only preserve tier isolation.
func AblationQueues(cfg Config, queues []int, load float64) ([]Result, error) {
	var out []Result
	for _, q := range queues {
		c := cfg
		c.Backend = core.BackendSPQueues
		c.Queues = q
		r, err := Run(c, QvisorPFabricFirst, load)
		if err != nil {
			return nil, fmt.Errorf("queues %d: %w", q, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RuntimeResult compares static synthesis against runtime adaptation (A3).
type RuntimeResult struct {
	// Static is the large-flow FCT summary with mis-declared bounds and
	// no controller. Large flows are where the mis-declaration bites:
	// every flow above the declared ceiling clamps to the same top rank,
	// so SRPT order among them is lost.
	Static stats.Summary
	// Adaptive is the same workload with the runtime controller
	// re-synthesizing from observed ranks.
	Adaptive stats.Summary
	// Resyntheses counts the controller's recompilations.
	Resyntheses uint64
}

// AblationRuntime (A3) quantifies §2's Idea 2: the pFabric tenant declares
// rank bounds that are far too narrow (as if its traffic mix had shifted
// after deployment), which collapses its quantized ranks and destroys
// intra-tenant SRPT order. The static joint policy is stuck with it; the
// event-driven controller detects the drift from the rank monitors and
// re-synthesizes with learned bounds.
func AblationRuntime(cfg Config, load float64) (RuntimeResult, error) {
	run := func(adaptive bool) (stats.Summary, uint64, error) {
		sizes := workload.DataMining()
		if cfg.SizeScale != 1.0 {
			sizes = sizes.Scaled(cfg.SizeScale)
		}
		flows, err := workload.Poisson(workload.PoissonConfig{
			Hosts:            cfg.hosts(),
			Load:             load,
			AccessBitsPerSec: cfg.AccessBps,
			Sizes:            sizes,
			Horizon:          cfg.Horizon,
			Seed:             cfg.Seed,
		})
		if err != nil {
			return stats.Summary{}, 0, err
		}
		cbr, err := workload.CBR(workload.CBRConfig{
			Hosts: cfg.hosts(), Flows: cfg.CBRFlows, BitsPerSec: cfg.CBRBps,
			DeadlineBudget: cfg.DeadlineBudget, Seed: cfg.Seed + 1,
		})
		if err != nil {
			return stats.Summary{}, 0, err
		}
		maxFlow := int64(float64(300_000_000) * cfg.SizeScale)
		var pf rank.Ranker = &rank.PFabric{MaxFlowBytes: maxFlow}
		if cfg.SizeScale != 1.0 {
			pf = scaledRanker{inner: pf, mult: int64(1.0/cfg.SizeScale + 0.5)}
		}
		edf := &rank.EDF{MaxSlack: 2 * cfg.DeadlineBudget}

		// The mis-declaration: pFabric claims its ranks stay below 1/1000
		// of the true domain.
		misdeclared := rank.Bounds{Lo: 0, Hi: pf.Bounds().Hi / 1000}
		tenants := []*core.Tenant{
			{ID: pfabricID, Name: "pfabric", Algorithm: pf, Bounds: misdeclared, Levels: 1 << 20},
			{ID: edfID, Name: "edf", Algorithm: edf, Levels: 1 << 20},
		}
		spec := policy.MustParse("pfabric + edf")

		ncfg := netsim.Config{
			Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
			AccessBps: cfg.AccessBps, FabricBps: cfg.FabricBps,
			Horizon: cfg.Horizon,
			Tenants: []netsim.TenantDef{
				{ID: pfabricID, Name: "pfabric", Ranker: pf, Flows: flows},
				{ID: edfID, Name: "edf", Ranker: edf, Flows: cbr},
			},
		}
		var versions uint64
		if adaptive {
			ctl, pp, err := core.NewController(tenants, spec, core.ControllerOptions{
				MinObservations: 200,
				WindowSize:      512,
			})
			if err != nil {
				return stats.Summary{}, 0, err
			}
			ncfg.Preprocessor = pp
			ncfg.Controller = ctl
			ncfg.CheckInterval = cfg.Horizon / 20
			defer func() { versions = ctl.Version() }()
			n, err := netsim.New(ncfg)
			if err != nil {
				return stats.Summary{}, 0, err
			}
			n.Run()
			_, largeMin := cfg.SmallBinFor()
			return stats.Summarize(n.FCTs().Filter(func(r stats.FlowRecord) bool {
				return r.Tenant == "pfabric" && r.Size >= largeMin
			})), ctl.Version(), nil
		}
		jp, err := core.Synthesize(tenants, spec, core.SynthOptions{})
		if err != nil {
			return stats.Summary{}, 0, err
		}
		ncfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
		n, err := netsim.New(ncfg)
		if err != nil {
			return stats.Summary{}, 0, err
		}
		n.Run()
		_, largeMin := cfg.SmallBinFor()
		return stats.Summarize(n.FCTs().Filter(func(r stats.FlowRecord) bool {
			return r.Tenant == "pfabric" && r.Size >= largeMin
		})), versions, nil
	}

	static, _, err := run(false)
	if err != nil {
		return RuntimeResult{}, err
	}
	adaptive, versions, err := run(true)
	if err != nil {
		return RuntimeResult{}, err
	}
	return RuntimeResult{Static: static, Adaptive: adaptive, Resyntheses: versions}, nil
}

// TrafficShiftResult is the Figure-2 scenario outcome (used by the
// trafficshift example and bench).
type TrafficShiftResult struct {
	// InteractiveFCT is the small-flow FCT of the interactive tenant
	// while the background tenant is active.
	InteractiveFCT stats.Summary
	// BackgroundFCT is the background tenant's overall FCT summary.
	BackgroundFCT stats.Summary
	// DeadlineMet is tenant 2's on-time fraction.
	DeadlineMet float64
}

// TrafficShift runs the paper's Figure-2 workload: interactive pFabric
// traffic (T1) and deadline EDF traffic (T2) sharing the high tier, with
// background fair-queued bulk transfers (T3) arriving mid-run at strictly
// lower priority ("T1 and T2 should share the resources fairly, and should
// have priority over T3").
func TrafficShift(cfg Config, load float64) (TrafficShiftResult, error) {
	sizes := workload.DataMining()
	if cfg.SizeScale != 1.0 {
		sizes = sizes.Scaled(cfg.SizeScale)
	}
	interactive, err := workload.Poisson(workload.PoissonConfig{
		Hosts: cfg.hosts(), Load: load, AccessBitsPerSec: cfg.AccessBps,
		Sizes: sizes, Horizon: cfg.Horizon, Seed: cfg.Seed,
	})
	if err != nil {
		return TrafficShiftResult{}, err
	}
	deadline, err := workload.CBR(workload.CBRConfig{
		Hosts: cfg.hosts(), Flows: cfg.CBRFlows, BitsPerSec: cfg.CBRBps,
		DeadlineBudget: cfg.DeadlineBudget, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return TrafficShiftResult{}, err
	}
	// Background bulk transfers start at t0 = Horizon/2 (the Figure-2
	// shift) from every host to a neighbour.
	var background []workload.FlowSpec
	bulk := int64(float64(10_000_000) * cfg.SizeScale * 10)
	for h := 0; h < cfg.hosts(); h++ {
		background = append(background, workload.FlowSpec{
			Start: cfg.Horizon / 2,
			Src:   h,
			Dst:   (h + 1) % cfg.hosts(),
			Size:  bulk,
		})
	}

	maxFlow := int64(float64(300_000_000) * cfg.SizeScale)
	var pf rank.Ranker = &rank.PFabric{MaxFlowBytes: maxFlow}
	if cfg.SizeScale != 1.0 {
		pf = scaledRanker{inner: pf, mult: int64(1.0/cfg.SizeScale + 0.5)}
	}
	edf := &rank.EDF{MaxSlack: 2 * cfg.DeadlineBudget}
	fq := rank.NewFQ()

	const bgID = 3
	coreTenants := []*core.Tenant{
		{ID: pfabricID, Name: "interactive", Algorithm: pf, Levels: 1 << 20},
		{ID: edfID, Name: "deadline", Algorithm: edf, Levels: 1 << 20},
		{ID: bgID, Name: "background", Algorithm: fq, Levels: 1 << 10},
	}
	jp, err := core.Synthesize(coreTenants, policy.MustParse("interactive + deadline >> background"),
		core.SynthOptions{})
	if err != nil {
		return TrafficShiftResult{}, err
	}
	n, err := netsim.New(netsim.Config{
		Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
		AccessBps: cfg.AccessBps, FabricBps: cfg.FabricBps,
		Horizon:      cfg.Horizon,
		Preprocessor: core.NewPreprocessor(jp, core.UnknownWorst),
		Tenants: []netsim.TenantDef{
			{ID: pfabricID, Name: "interactive", Ranker: pf, Flows: interactive},
			{ID: edfID, Name: "deadline", Ranker: edf, Flows: deadline},
			{ID: bgID, Name: "background", Ranker: fq, Flows: background},
		},
	})
	if err != nil {
		return TrafficShiftResult{}, err
	}
	n.Run()

	smallMax, _ := cfg.SmallBinFor()
	res := TrafficShiftResult{
		InteractiveFCT: stats.Summarize(n.FCTs().Filter(func(r stats.FlowRecord) bool {
			return r.Tenant == "interactive" && r.Size > 0 && r.Size < smallMax &&
				r.Start >= cfg.Horizon/2 // while background is active
		})),
		BackgroundFCT: stats.Summarize(n.FCTs().Tenant("background")),
	}
	if c := n.Counters(); c.CBRDelivered > 0 {
		res.DeadlineMet = float64(c.CBROnTime) / float64(c.CBRDelivered)
	}
	return res, nil
}
