package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"qvisor/internal/pkt"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
)

// This file is the parallel sweep runner: the Figure-4 evaluation is a grid
// of independent (scheme, load, seed) simulations, so the runner fans the
// grid out over a worker pool and collects results order-independently.
//
// Determinism contract: Run is a pure function of (Config, Scheme, load) —
// all randomness flows from Config.Seed through private *rand.Rand sources
// (see the seeding note in package workload) and no production path reads
// the global math/rand source. Each worker therefore computes its points in
// isolation, results land in a slice slot keyed by point index, and a sweep
// with Workers=N is byte-identical to Workers=1 for every N. The workload
// is deliberately seeded from the run seed only — never from the scheme —
// so all schemes at a given (load, seed) face identical traffic, which is
// what makes the Figure-4 curves comparable.

// Point identifies one independent simulation of a sweep grid.
type Point struct {
	// Scheme is the Figure-4 scheme to run.
	Scheme Scheme
	// Load is the offered pFabric load.
	Load float64
	// Seed is the workload seed for this run (overrides Config.Seed).
	Seed int64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("%v load=%.2f seed=%d", p.Scheme, p.Load, p.Seed)
}

// Points expands the sweep grid in deterministic scheme-major order:
// scheme, then load, then seed. This is the order RunPoints returns
// results in, regardless of worker count, and matches the serial Sweep.
func Points(schemes []Scheme, loads []float64, seeds []int64) []Point {
	pts := make([]Point, 0, len(schemes)*len(loads)*len(seeds))
	for _, s := range schemes {
		for _, l := range loads {
			for _, sd := range seeds {
				pts = append(pts, Point{Scheme: s, Load: l, Seed: sd})
			}
		}
	}
	return pts
}

// TrialSeeds derives n decorrelated workload seeds from a base seed with a
// SplitMix64 mix. The first seed is the base itself, so a one-trial run
// reproduces the plain (unrepeated) sweep exactly; subsequent seeds are
// mixed rather than incremented because the harness reserves seed+1 for the
// CBR tenant (see experiments.Run) and adjacent raw seeds would correlate
// trials.
func TrialSeeds(base int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	seeds := make([]int64, n)
	seeds[0] = base
	x := uint64(base)
	for i := 1; i < n; i++ {
		// SplitMix64 (Steele et al.): a bijective avalanche mix.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		seeds[i] = int64(z)
	}
	return seeds
}

// RunnerConfig parametrizes a parallel sweep.
type RunnerConfig struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each point completes with
	// the number of finished points, the grid size, and the point.
	// Invocations are serialized but arrive in completion order, which
	// under Workers > 1 is not the grid order.
	Progress func(done, total int, p Point)
}

func (rc RunnerConfig) workers() int {
	if rc.Workers > 0 {
		return rc.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunPoints executes every point on a pool of Workers goroutines and
// returns results in grid order: out[i] is the result of points[i],
// whatever the completion order. Aggregation is order-independent, so the
// returned slice is byte-identical to a serial run. On failure it returns
// the error of the lowest-indexed failing point (also worker-count
// independent).
//
// When Config leaves Pool and Engine nil, each worker builds one of each
// and reuses them across all its points, so trial N+1 runs on trial N's
// warm free lists. Pooling never affects results (packets are zeroed on
// release), which is what keeps Workers=N byte-identical to Workers=1.
// Callers that set Pool or Engine themselves must use Workers == 1 —
// neither is safe for concurrent use.
func RunPoints(cfg Config, points []Point, rc RunnerConfig) ([]Result, error) {
	out := make([]Result, len(points))
	errs := make([]error, len(points))
	jobs := make(chan int)
	var done int
	var mu sync.Mutex
	var wg sync.WaitGroup

	workers := rc.workers()
	if workers > len(points) {
		workers = len(points)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wcfg := cfg
			if wcfg.Pool == nil && !wcfg.DisablePool {
				wcfg.Pool = pkt.NewPool()
			}
			if wcfg.Engine == nil {
				wcfg.Engine = sim.New()
			}
			for i := range jobs {
				p := points[i]
				runCfg := wcfg
				runCfg.Seed = p.Seed
				// Zero the pool's accounting between trials; its free
				// list (the warm buffers) survives.
				runCfg.Pool.Reset()
				r, err := Run(runCfg, p.Scheme, p.Load)
				if err != nil {
					errs[i] = fmt.Errorf("scheme %v load %v seed %d: %w",
						p.Scheme, p.Load, p.Seed, err)
				} else {
					out[i] = r
				}
				if rc.Progress != nil {
					mu.Lock()
					done++
					rc.Progress(done, len(points), p)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepParallel runs every (scheme, load) cell at Config.Seed over a worker
// pool, returning results in the serial Sweep's scheme-major order.
func SweepParallel(cfg Config, schemes []Scheme, loads []float64, rc RunnerConfig) ([]Result, error) {
	return RunPoints(cfg, Points(schemes, loads, []int64{cfg.Seed}), rc)
}

// Trial is the repeated-seed aggregate of one (scheme, load) cell: the
// per-trial scalar metrics reduced to mean ± stderr. Times are in
// milliseconds.
type Trial struct {
	// Scheme and Load identify the cell.
	Scheme Scheme
	Load   float64
	// Seeds lists the workload seeds of the trials, in trial order.
	Seeds []int64
	// SmallMs and LargeMs aggregate the Figure-4a/4b mean FCTs (ms).
	SmallMs, LargeMs stats.Sample
	// DeadlineMet aggregates the CBR on-time fraction.
	DeadlineMet stats.Sample
	// Flows aggregates the completed pFabric flow count.
	Flows stats.Sample
	// Results holds the underlying per-trial results, in trial order.
	Results []Result
}

// RunTrials runs every (scheme, load) cell once per seed over a worker pool
// and reduces each cell's trials to mean ± stderr summaries. Cells are
// returned in scheme-major order; trials within a cell stay in seed order.
// The serial harness was too slow to offer repeated trials at all — with
// the pool, N seeds cost N/Workers sweeps of wall clock.
func RunTrials(cfg Config, schemes []Scheme, loads []float64, seeds []int64, rc RunnerConfig) ([]Trial, error) {
	if len(seeds) == 0 {
		seeds = []int64{cfg.Seed}
	}
	points := Points(schemes, loads, seeds)
	results, err := RunPoints(cfg, points, rc)
	if err != nil {
		return nil, err
	}
	ms := func(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }
	var out []Trial
	// points is scheme-major with seeds innermost, so each cell's trials
	// are a contiguous block of len(seeds) results.
	for i := 0; i < len(results); i += len(seeds) {
		block := results[i : i+len(seeds)]
		tr := Trial{
			Scheme:  points[i].Scheme,
			Load:    points[i].Load,
			Seeds:   append([]int64(nil), seeds...),
			Results: append([]Result(nil), block...),
		}
		var small, large, ddl, flows []float64
		for _, r := range block {
			if r.Small.Count > 0 {
				small = append(small, ms(r.Small.Mean))
			}
			if r.Large.Count > 0 {
				large = append(large, ms(r.Large.Mean))
			}
			ddl = append(ddl, r.DeadlineMet)
			flows = append(flows, float64(r.Flows))
		}
		tr.SmallMs = stats.NewSample(small)
		tr.LargeMs = stats.NewSample(large)
		tr.DeadlineMet = stats.NewSample(ddl)
		tr.Flows = stats.NewSample(flows)
		out = append(out, tr)
	}
	return out, nil
}
