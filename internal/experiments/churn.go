package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"qvisor/internal/conform"
	"qvisor/internal/core"
	"qvisor/internal/netsim"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sim"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// Churn load test: drive a stream of control-plane spec updates against a
// live simulation and verify the RCU epoch contract holds under fire —
// every in-flight packet finishes on the generation it started under, no
// adaptation event is lost, and the data plane's throughput stays within
// a bounded distance of an update-free baseline.

// ChurnConfig parametrizes a churn run. Zero value is invalid; start from
// ScaledChurnConfig.
type ChurnConfig struct {
	// Topology (see experiments.Config).
	Leaves, Spines, HostsPerLeaf int
	AccessBps, FabricBps         float64
	// SizeScale shrinks the data-mining flow sizes (see Config.SizeScale).
	SizeScale float64
	// CBRFlows and CBRBps shape the deadline tenant's load.
	CBRFlows int
	CBRBps   float64
	// DeadlineBudget is the per-packet EDF deadline.
	DeadlineBudget sim.Time
	// Horizon is the traffic window; updates are spread uniformly over it.
	Horizon sim.Time
	// Load is the pFabric tenant's offered load fraction.
	Load float64
	// Seed seeds the workload and the update sequence.
	Seed int64
	// Updates is the number of control-plane updates scheduled over the
	// horizon (0 = baseline run without churn). Roughly 80% are
	// single-tenant redefinitions (bounds nudges, the incremental
	// synthesizer's fast path), 20% spec weight changes.
	Updates int
	// BulkTenants is the number of extra traffic-less tenants registered
	// with the controller to make the policy wide enough that churn is
	// interesting (they occupy lower tiers in groups of four). Zero
	// means 8.
	BulkTenants int
	// FullResynthesis forces every recompilation through a full
	// Synthesize, for A/B comparison against the incremental path.
	FullResynthesis bool
	// RingSize overrides the flight-recorder ring (0 = 1<<17 events).
	RingSize int
	// EpochDeploy, when true, compiles every published epoch onto
	// sp-queues so deployments ride the epoch store too.
	EpochDeploy bool
}

// ScaledChurnConfig returns a laptop-scale churn setup: the Figure-4
// scaled topology, a 50 ms horizon, and 250 updates — a sustained
// 5,000 updates/sec against the control plane.
func ScaledChurnConfig() ChurnConfig {
	return ChurnConfig{
		Leaves: 3, Spines: 2, HostsPerLeaf: 4,
		AccessBps: 1e9, FabricBps: 2e9,
		SizeScale: 0.01,
		CBRFlows:  8, CBRBps: 0.5e9,
		DeadlineBudget: 5 * sim.Millisecond,
		Horizon:        50 * sim.Millisecond,
		Load:           0.6,
		Seed:           1,
		Updates:        250,
		BulkTenants:    8,
	}
}

// ChurnResult reports one churn run.
type ChurnResult struct {
	// UpdatesScheduled and UpdatesApplied count the attempted and
	// successfully compiled control-plane updates.
	UpdatesScheduled int
	UpdatesApplied   int
	// AdaptationEvents counts EventResynthesized notifications observed;
	// the epoch contract requires it to equal UpdatesApplied (plus one
	// for the initial compile counted by Generations).
	AdaptationEvents int
	// Generations is the epoch store's lifetime publish count.
	Generations uint64
	// MaxDraining is the peak number of superseded epochs still holding
	// in-flight packets, sampled at each update.
	MaxDraining int
	// DrainingAfter is the count of undrained epochs after the run (must
	// be 0: every packet released its pin).
	DrainingAfter int
	// Check is the epoch-conformance verdict over the recorded events.
	Check *conform.EpochCheck
	// Counters are the network-wide packet counters.
	Counters netsim.Counters
	// Resynth are the incremental synthesizer's cache counters.
	Resynth core.ResynthStats
}

// churnSpec builds the operator spec: the two traffic tenants share the
// top tier, bulk tenants occupy lower tiers in groups of four.
func churnSpec(bulk int) (string, []string) {
	var b strings.Builder
	b.WriteString("pfabric + edf")
	names := make([]string, bulk)
	for i := 0; i < bulk; i++ {
		names[i] = fmt.Sprintf("b%d", i)
		if i%4 == 0 {
			b.WriteString(" >> ")
		} else {
			b.WriteString(" + ")
		}
		b.WriteString(names[i])
	}
	return b.String(), names
}

// RunChurn executes one churn run and returns its result. With
// cfg.Updates == 0 it is the no-churn baseline under the same epoch
// machinery.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	if cfg.BulkTenants == 0 {
		cfg.BulkTenants = 8
	}
	fig4 := Config{
		Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
		AccessBps: cfg.AccessBps, FabricBps: cfg.FabricBps,
		SizeScale: cfg.SizeScale, Horizon: cfg.Horizon, Seed: cfg.Seed,
	}
	sizes, err := fig4.sizes()
	if err != nil {
		return ChurnResult{}, err
	}
	pfFlows, err := workload.Poisson(workload.PoissonConfig{
		Hosts:            fig4.hosts(),
		Load:             cfg.Load,
		AccessBitsPerSec: cfg.AccessBps,
		Sizes:            sizes,
		Horizon:          cfg.Horizon,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return ChurnResult{}, err
	}
	cbrFlows, err := workload.CBR(workload.CBRConfig{
		Hosts:          fig4.hosts(),
		Flows:          cfg.CBRFlows,
		BitsPerSec:     cfg.CBRBps,
		DeadlineBudget: cfg.DeadlineBudget,
		Seed:           cfg.Seed + 1,
	})
	if err != nil {
		return ChurnResult{}, err
	}

	maxFlow := int64(float64(300_000_000) * cfg.SizeScale)
	var pfRanker rank.Ranker = &rank.PFabric{MaxFlowBytes: maxFlow}
	if cfg.SizeScale != 1.0 {
		pfRanker = scaledRanker{inner: pfRanker, mult: int64(1.0/cfg.SizeScale + 0.5)}
	}
	edfRanker := &rank.EDF{MaxSlack: 2 * cfg.DeadlineBudget}

	specStr, bulkNames := churnSpec(cfg.BulkTenants)
	spec, err := policy.Parse(specStr)
	if err != nil {
		return ChurnResult{}, err
	}
	const levels = 1 << 12
	coreTenants := []*core.Tenant{
		{ID: pfabricID, Name: "pfabric", Algorithm: pfRanker, Levels: levels},
		{ID: edfID, Name: "edf", Algorithm: edfRanker, Levels: levels},
	}
	for i, name := range bulkNames {
		coreTenants = append(coreTenants, &core.Tenant{
			ID:     pkt.TenantID(10 + i),
			Name:   name,
			Bounds: rank.Bounds{Lo: 0, Hi: 4096},
			Levels: 64,
		})
	}

	var res ChurnResult
	opts := core.ControllerOptions{
		FullResynthesis: cfg.FullResynthesis,
		OnEvent: func(e core.Event) {
			if e.Kind == core.EventResynthesized {
				res.AdaptationEvents++
			}
		},
	}
	if cfg.EpochDeploy {
		opts.EpochDeploy = &core.EpochDeploy{Backend: core.BackendSPQueues}
	}
	ctl, _, err := core.NewController(coreTenants, spec, opts)
	if err != nil {
		return ChurnResult{}, err
	}
	// policies maps every published generation to its joint policy, so the
	// conformance check can replay each packet's rewrite under the
	// generation it was pinned to.
	policies := make(map[uint64]*core.JointPolicy)
	cur := ctl.Epochs().Current()
	policies[cur.Gen] = cur.Policy

	ring := cfg.RingSize
	if ring == 0 {
		ring = 1 << 17
	}
	rec := trace.NewFlightRecorder(trace.Options{
		Kinds:    []string{trace.KindTransform, trace.KindDeliver, trace.KindDrop},
		RingSize: ring,
	})

	n, err := netsim.New(netsim.Config{
		Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
		AccessBps: cfg.AccessBps, FabricBps: cfg.FabricBps,
		Tenants: []netsim.TenantDef{
			{ID: pfabricID, Name: "pfabric", Ranker: pfRanker, Flows: pfFlows},
			{ID: edfID, Name: "edf", Ranker: edfRanker, Flows: cbrFlows},
		},
		Horizon: cfg.Horizon,
		Trace:   rec,
		Epochs:  ctl.Epochs(),
	})
	if err != nil {
		return ChurnResult{}, err
	}

	// Schedule the update stream on the simulation engine so churn and
	// traffic interleave in virtual time exactly as they would against a
	// live controller.
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	interval := sim.Time(0)
	if cfg.Updates > 0 {
		interval = cfg.Horizon / sim.Time(cfg.Updates+1)
	}
	for i := 1; i <= cfg.Updates; i++ {
		i := i
		n.Engine().At(sim.Time(i)*interval, func(now sim.Time) {
			res.UpdatesScheduled++
			var err error
			if i%25 == 0 {
				// Live-tenant redefinition: widen the deadline tenant's
				// declared bounds, changing its transform — the update
				// whose disruption the epoch store bounds. Packets in
				// flight keep the old generation's rewrite.
				old, _ := ctl.Tenant("edf")
				b, berr := old.EffectiveBounds()
				if berr == nil {
					nt := *old
					nt.Bounds = rank.Bounds{Lo: b.Lo, Hi: b.Hi + int64(1+i%11)}
					err = ctl.UpdateTenant(now, &nt)
				} else {
					err = berr
				}
			} else if i%5 == 0 {
				// Structural-ish update: toggle a bulk tenant's share
				// weight, recompiling its tier.
				name := bulkNames[rng.Intn(len(bulkNames))]
				w := int64(1 + i%2)
				var next *policy.Spec
				next, err = ctl.Spec().Apply([]policy.Op{
					{Kind: policy.OpSetWeight, Tenant: name, Weight: w},
				})
				if err == nil {
					err = ctl.UpdateSpec(now, next)
				}
			} else {
				// Single-tenant redefinition: nudge one bulk tenant's
				// declared bounds. Only its tier recompiles on the
				// incremental path.
				name := bulkNames[rng.Intn(len(bulkNames))]
				old, _ := ctl.Tenant(name)
				nt := *old
				nt.Bounds = rank.Bounds{Lo: 0, Hi: 4096 + int64(i%7)}
				err = ctl.UpdateTenant(now, &nt)
			}
			if err == nil {
				res.UpdatesApplied++
				if e := ctl.Epochs().Current(); e != nil {
					policies[e.Gen] = e.Policy
				}
			}
			if d := ctl.Epochs().Draining(); d > res.MaxDraining {
				res.MaxDraining = d
			}
		})
	}

	n.Run()

	events, _ := rec.Snapshot(trace.AllEvents)
	res.Check = conform.CheckEpochs(events, policies)
	res.Counters = n.Counters()
	res.Generations = ctl.Epochs().Generations().Published
	res.DrainingAfter = ctl.Epochs().Draining()
	res.Resynth = ctl.ResynthStats()
	return res, nil
}

// ResynthLatency reports the incremental-vs-full synthesis comparison of
// MeasureResynthLatency.
type ResynthLatency struct {
	// Tenants and Tiers shape the measured policy.
	Tenants, Tiers int
	// Rounds is the number of single-tenant updates timed per mode.
	Rounds int
	// IncrementalNs and FullNs are the mean per-update synthesis times.
	IncrementalNs, FullNs int64
	// Speedup is FullNs / IncrementalNs.
	Speedup float64
	// Stats are the incremental synthesizer's cache counters after the
	// run.
	Stats core.ResynthStats
}

// MeasureResynthLatency times single-tenant policy updates at scale: a
// spec of nTenants across 32-wide shared tiers, each round nudging one
// tenant's bounds and recompiling — once through the incremental
// Resynthesizer, once through the full Synthesize — over the identical
// mutation sequence.
func MeasureResynthLatency(nTenants, rounds int, seed int64) (ResynthLatency, error) {
	if nTenants < 2 || rounds < 1 {
		return ResynthLatency{}, fmt.Errorf("experiments: need at least 2 tenants and 1 round")
	}
	const tierWidth = 32
	tenants := make([]*core.Tenant, nTenants)
	var b strings.Builder
	for i := range tenants {
		name := fmt.Sprintf("t%d", i)
		tenants[i] = &core.Tenant{
			ID:     pkt.TenantID(i + 1),
			Name:   name,
			Bounds: rank.Bounds{Lo: 0, Hi: 65535},
			Levels: 256,
		}
		if i > 0 {
			if i%tierWidth == 0 {
				b.WriteString(" >> ")
			} else {
				b.WriteString(" + ")
			}
		}
		b.WriteString(name)
	}
	spec, err := policy.Parse(b.String())
	if err != nil {
		return ResynthLatency{}, err
	}

	// Precompute the mutation sequence so both modes replay the same
	// updates against the same tenant slices.
	rng := rand.New(rand.NewSource(seed))
	victims := make([]int, rounds)
	nudges := make([]int64, rounds)
	for r := range victims {
		victims[r] = rng.Intn(nTenants)
		nudges[r] = int64(1 + r%63)
	}
	mutate := func(ts []*core.Tenant, r int) {
		old := ts[victims[r]]
		nt := *old
		nt.Bounds = rank.Bounds{Lo: 0, Hi: 65535 + nudges[r]}
		ts[victims[r]] = &nt
	}

	opts := core.SynthOptions{}
	rs := core.NewResynthesizer(opts)
	if _, err := rs.Resynthesize(tenants, spec); err != nil {
		return ResynthLatency{}, err
	}
	incTenants := append([]*core.Tenant(nil), tenants...)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		mutate(incTenants, r)
		if _, err := rs.Resynthesize(incTenants, spec); err != nil {
			return ResynthLatency{}, err
		}
	}
	incNs := time.Since(start).Nanoseconds() / int64(rounds)

	fullTenants := append([]*core.Tenant(nil), tenants...)
	start = time.Now()
	for r := 0; r < rounds; r++ {
		mutate(fullTenants, r)
		if _, err := core.Synthesize(fullTenants, spec, opts); err != nil {
			return ResynthLatency{}, err
		}
	}
	fullNs := time.Since(start).Nanoseconds() / int64(rounds)

	res := ResynthLatency{
		Tenants:       nTenants,
		Tiers:         (nTenants + tierWidth - 1) / tierWidth,
		Rounds:        rounds,
		IncrementalNs: incNs,
		FullNs:        fullNs,
		Stats:         rs.Stats(),
	}
	if incNs > 0 {
		res.Speedup = float64(fullNs) / float64(incNs)
	}
	return res, nil
}
