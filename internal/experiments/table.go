package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"qvisor/internal/sim"
)

// DefaultLoads are the x-axis values of Figure 4: load 0.2 through 0.8.
var DefaultLoads = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// Sweep runs every scheme at every load and returns results in
// scheme-major order. It is the single-worker case of SweepParallel; use
// that (or RunPoints) to saturate all cores.
func Sweep(cfg Config, schemes []Scheme, loads []float64) ([]Result, error) {
	return SweepParallel(cfg, schemes, loads, RunnerConfig{Workers: 1})
}

// Bin selects which Figure-4 panel a table reports.
type Bin int

const (
	// BinSmall is Figure 4a: flows in (0, 100 KB), mean FCT.
	BinSmall Bin = iota
	// BinLarge is Figure 4b: flows in [1 MB, ∞), mean FCT.
	BinLarge
)

// String implements fmt.Stringer.
func (b Bin) String() string {
	if b == BinLarge {
		return "[1MB,inf): mean FCTs"
	}
	return "(0,100KB): mean FCTs"
}

// WriteTable renders the Figure-4 series as a table: one row per scheme,
// one column per load, mean FCT in milliseconds — the same series the
// paper plots.
func WriteTable(w io.Writer, results []Result, bin Bin, loads []float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "pFabric %v\n", bin)
	fmt.Fprint(tw, "scheme")
	for _, l := range loads {
		fmt.Fprintf(tw, "\t%.1f", l)
	}
	fmt.Fprintln(tw)
	bySchemeLoad := make(map[Scheme]map[float64]Result)
	for _, r := range results {
		if bySchemeLoad[r.Scheme] == nil {
			bySchemeLoad[r.Scheme] = make(map[float64]Result)
		}
		bySchemeLoad[r.Scheme][r.Load] = r
	}
	for _, s := range Schemes {
		row, ok := bySchemeLoad[s]
		if !ok {
			continue
		}
		fmt.Fprint(tw, s)
		for _, l := range loads {
			r, ok := row[l]
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			sum := r.Small
			if bin == BinLarge {
				sum = r.Large
			}
			if sum.Count == 0 {
				fmt.Fprint(tw, "\tn/a")
			} else {
				fmt.Fprintf(tw, "\t%.3f", float64(sum.Mean)/float64(sim.Millisecond))
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// WriteTrialTable renders a repeated-trial sweep as one row per scheme and
// one "mean±stderr" column per load, in milliseconds, for the chosen bin.
func WriteTrialTable(w io.Writer, trials []Trial, bin Bin, loads []float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	n := 0
	if len(trials) > 0 {
		n = len(trials[0].Seeds)
	}
	fmt.Fprintf(tw, "pFabric %v, %d trials (mean±stderr)\n", bin, n)
	fmt.Fprint(tw, "scheme")
	for _, l := range loads {
		fmt.Fprintf(tw, "\t%.1f", l)
	}
	fmt.Fprintln(tw)
	byCell := make(map[Scheme]map[float64]Trial)
	for _, t := range trials {
		if byCell[t.Scheme] == nil {
			byCell[t.Scheme] = make(map[float64]Trial)
		}
		byCell[t.Scheme][t.Load] = t
	}
	for _, s := range Schemes {
		row, ok := byCell[s]
		if !ok {
			continue
		}
		fmt.Fprint(tw, s)
		for _, l := range loads {
			t, ok := row[l]
			if !ok {
				fmt.Fprint(tw, "\t-")
				continue
			}
			sum := t.SmallMs
			if bin == BinLarge {
				sum = t.LargeMs
			}
			if sum.N == 0 {
				fmt.Fprint(tw, "\tn/a")
			} else {
				fmt.Fprintf(tw, "\t%.3f±%.3f", sum.Mean, sum.Stderr)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// MeanFor extracts the mean FCT of a (scheme, load) cell from a result set,
// in the given bin. It returns false if absent or empty.
func MeanFor(results []Result, s Scheme, load float64, bin Bin) (sim.Time, bool) {
	for _, r := range results {
		if r.Scheme != s || r.Load != load {
			continue
		}
		sum := r.Small
		if bin == BinLarge {
			sum = r.Large
		}
		if sum.Count == 0 {
			return 0, false
		}
		return sum.Mean, true
	}
	return 0, false
}
