package experiments

import (
	"strings"
	"testing"

	"qvisor/internal/netsim"
	"qvisor/internal/sim"
	"qvisor/internal/stats"
)

func scalingTestConfig() Config {
	cfg := ScaledConfig()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 4, 2, 2
	cfg.FabricBps = 2e9
	cfg.CBRFlows = 4
	cfg.Horizon = 20 * sim.Millisecond
	return cfg
}

// TestRunScalingFidelity: every shard count in a scaling sweep must
// reproduce the single-threaded run's counters and FCT summaries
// exactly, and sharded points must show real coordinator activity.
func TestRunScalingFidelity(t *testing.T) {
	points, err := RunScaling(scalingTestConfig(), QvisorShare, 0.4, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for _, p := range points {
		if !p.Matches {
			t.Fatalf("shards=%d diverged from the single-threaded reference: %+v", p.Shards, p.Result.Counters)
		}
		if p.Fidelity != FidelityExact {
			t.Fatalf("shards=%d fidelity = %v (max end delta %v), want exact on this scenario",
				p.Shards, p.Fidelity, p.MaxEndDelta)
		}
		if p.Shards > 1 && (p.Windows == 0 || p.Messages == 0) {
			t.Fatalf("shards=%d reports no coordinator activity (windows=%d messages=%d)",
				p.Shards, p.Windows, p.Messages)
		}
		if p.Result.Flows == 0 {
			t.Fatalf("shards=%d completed no flows", p.Shards)
		}
	}
}

// TestRunScalingInsertsReference: a sweep without a leading 1 gets one.
func TestRunScalingInsertsReference(t *testing.T) {
	cfg := scalingTestConfig()
	cfg.Horizon = 5 * sim.Millisecond
	points, err := RunScaling(cfg, PIFONaive, 0.3, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Shards != 1 || points[1].Shards != 2 {
		t.Fatalf("unexpected sweep shape: %+v", points)
	}
	var sb strings.Builder
	WriteScalingTable(&sb, points)
	out := sb.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "exact") {
		t.Fatalf("table missing expected columns:\n%s", out)
	}
}

// TestGradeFidelity pins the three verdict levels on hand-built records.
func TestGradeFidelity(t *testing.T) {
	ref := Result{Counters: netsim.Counters{Delivered: 10}}
	recs := []stats.FlowRecord{
		{ID: 1, Tenant: "a", Size: 100, Start: 5, End: 50},
		{ID: 2, Tenant: "a", Size: 200, Start: 7, End: 90},
	}
	same := append([]stats.FlowRecord(nil), recs...)
	if f, d := gradeFidelity(ref, recs, ref, same); f != FidelityExact || d != 0 {
		t.Fatalf("identical records graded %v (delta %d)", f, d)
	}

	// A completion-time shift alone (either direction) is equivalent,
	// bounded by the largest shift.
	shifted := append([]stats.FlowRecord(nil), recs...)
	shifted[0].End -= 2
	shifted[1].End += 3
	if f, d := gradeFidelity(ref, recs, ref, shifted); f != FidelityEquivalent || d != 3 {
		t.Fatalf("end-shifted records graded %v (delta %d), want equivalent/3", f, d)
	}

	// Counter mismatch, record-count mismatch, or any non-End field
	// change is a divergence.
	if f, _ := gradeFidelity(ref, recs, Result{}, same); f != FidelityDiverged {
		t.Fatal("counter mismatch not flagged as divergence")
	}
	if f, _ := gradeFidelity(ref, recs, ref, recs[:1]); f != FidelityDiverged {
		t.Fatal("missing flow not flagged as divergence")
	}
	resized := append([]stats.FlowRecord(nil), recs...)
	resized[1].Size = 999
	if f, _ := gradeFidelity(ref, recs, ref, resized); f != FidelityDiverged {
		t.Fatal("size change not flagged as divergence")
	}
}
