package experiments

import (
	"strings"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/sim"
)

// ciConfig shrinks the scaled config further so the shape test runs in CI
// time: 8 hosts, 30 ms of traffic, 1% flow sizes.
func ciConfig() Config {
	c := ScaledConfig()
	c.Leaves = 2
	c.Spines = 2
	c.HostsPerLeaf = 4
	c.FabricBps = 2e9
	c.CBRFlows = 5
	c.Horizon = 30 * sim.Millisecond
	return c
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range Schemes {
		if s.String() == "" || strings.HasPrefix(s.String(), "scheme(") {
			t.Fatalf("scheme %d has no legend string", int(s))
		}
	}
	if Scheme(99).String() != "scheme(99)" {
		t.Fatal("unknown scheme string")
	}
	if QvisorShare.OperatorSpec() != "pfabric + edf" {
		t.Fatalf("share spec = %q", QvisorShare.OperatorSpec())
	}
	if FIFOBoth.OperatorSpec() != "" {
		t.Fatal("baselines have no operator spec")
	}
}

func TestRunSingle(t *testing.T) {
	r, err := Run(ciConfig(), PIFOIdeal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flows == 0 {
		t.Fatal("no pFabric flows completed")
	}
	if r.Small.Count == 0 {
		t.Fatal("no small flows in the sample")
	}
	if r.Counters.DataSent == 0 || r.Counters.Delivered == 0 {
		t.Fatalf("counters empty: %+v", r.Counters)
	}
	// PIFOIdeal runs without the EDF tenant.
	if r.Counters.CBRSent != 0 {
		t.Fatal("ideal scheme must not carry CBR traffic")
	}
}

// TestFig4Shape verifies the qualitative result of Figure 4a at one load:
//
//   - QVISOR pFabric>>EDF ≈ ideal (within 2×),
//   - QVISOR share close to ideal (within 4×),
//   - EDF>>pFabric and FIFO clearly worse than pFabric>>EDF,
//   - naive PIFO worse than QVISOR pFabric>>EDF.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	const load = 0.6
	mean := make(map[Scheme]sim.Time)
	for _, s := range Schemes {
		r, err := Run(cfg, s, load)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.Small.Count == 0 {
			t.Fatalf("%v: no small-flow samples", s)
		}
		mean[s] = r.Small.Mean
		t.Logf("%-26s small-flow mean FCT %v (n=%d)", s, r.Small.Mean, r.Small.Count)
	}
	// The ideal curve carries no CBR traffic at all, so QVISOR schemes pay
	// unavoidable head-of-line blocking behind in-service CBR packets
	// (~one 12 µs serialization per hop). "Near ideal" therefore means
	// within that physics margin, not equality: on the paper's
	// millisecond axis both curves sit at ≈0.
	ideal := mean[PIFOIdeal]
	holMargin := 6 * sim.Time(12*sim.Microsecond)
	if m := mean[QvisorPFabricFirst]; m > ideal+holMargin {
		t.Errorf("pFabric>>EDF mean %v should be near ideal %v (margin %v)", m, ideal, holMargin)
	}
	if m := mean[QvisorShare]; m > ideal+2*holMargin {
		t.Errorf("pFabric+EDF mean %v should be close to ideal %v", m, ideal)
	}
	if mean[QvisorPFabricFirst] >= mean[PIFONaive] {
		t.Errorf("pFabric>>EDF (%v) should beat the naive rank clash (%v)",
			mean[QvisorPFabricFirst], mean[PIFONaive])
	}
	if mean[QvisorEDFFirst] < 2*mean[QvisorPFabricFirst] {
		t.Errorf("EDF>>pFabric (%v) should be much worse than pFabric>>EDF (%v)",
			mean[QvisorEDFFirst], mean[QvisorPFabricFirst])
	}
	if mean[FIFOBoth] < 2*mean[QvisorPFabricFirst] {
		t.Errorf("FIFO (%v) should be much worse than pFabric>>EDF (%v)",
			mean[FIFOBoth], mean[QvisorPFabricFirst])
	}
	if mean[PIFONaive] <= mean[QvisorPFabricFirst] {
		t.Errorf("naive PIFO (%v) should be worse than QVISOR pFabric>>EDF (%v)",
			mean[PIFONaive], mean[QvisorPFabricFirst])
	}
}

func TestSweepAndTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 10 * sim.Millisecond
	loads := []float64{0.3, 0.6}
	results, err := Sweep(cfg, []Scheme{PIFOIdeal, QvisorShare}, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	var b strings.Builder
	WriteTable(&b, results, BinSmall, loads)
	out := b.String()
	for _, want := range []string{"PIFO: pFabric", "QVISOR: pFabric + EDF", "0.3", "0.6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var lb strings.Builder
	WriteTable(&lb, results, BinLarge, loads)
	if !strings.Contains(lb.String(), "[1MB,inf)") {
		t.Fatalf("large table header wrong:\n%s", lb.String())
	}
	if _, ok := MeanFor(results, PIFOIdeal, 0.3, BinSmall); !ok {
		t.Fatal("MeanFor missed an existing cell")
	}
	if _, ok := MeanFor(results, FIFOBoth, 0.3, BinSmall); ok {
		t.Fatal("MeanFor found a scheme that was not run")
	}
}

func TestRunOnSPQueuesBackend(t *testing.T) {
	cfg := ciConfig()
	cfg.Horizon = 10 * sim.Millisecond
	cfg.Backend = core.BackendSPQueues
	cfg.Queues = 8
	r, err := Run(cfg, QvisorPFabricFirst, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flows == 0 {
		t.Fatal("no flows completed on SP-queues backend")
	}
}

func TestBinString(t *testing.T) {
	if BinSmall.String() != "(0,100KB): mean FCTs" || BinLarge.String() != "[1MB,inf): mean FCTs" {
		t.Fatal("bin strings wrong")
	}
}

func TestPaperConfigValues(t *testing.T) {
	p := PaperConfig()
	if p.hosts() != 144 || p.Spines != 4 || p.Leaves != 9 {
		t.Fatalf("paper topology wrong: %+v", p)
	}
	if p.AccessBps != 1e9 || p.FabricBps != 4e9 {
		t.Fatal("paper link rates wrong")
	}
	if p.CBRFlows != 100 || p.CBRBps != 0.5e9 {
		t.Fatal("paper CBR tenant wrong")
	}
}

func TestScaledConfigPreservesRatios(t *testing.T) {
	p, s := PaperConfig(), ScaledConfig()
	// CBR share of aggregate access capacity within a few percent.
	share := func(c Config) float64 {
		return float64(c.CBRFlows) * c.CBRBps / (float64(c.hosts()) * c.AccessBps)
	}
	if d := share(p) - share(s); d > 0.05 || d < -0.05 {
		t.Fatalf("CBR share drifted: paper %.2f vs scaled %.2f", share(p), share(s))
	}
	// Full bisection in both: hosts×access == spines×fabric per leaf.
	bisect := func(c Config) float64 {
		return float64(c.HostsPerLeaf) * c.AccessBps / (float64(c.Spines) * c.FabricBps)
	}
	if bisect(p) != 1 || bisect(s) != 1 {
		t.Fatalf("bisection ratios: paper %v scaled %v", bisect(p), bisect(s))
	}
}
