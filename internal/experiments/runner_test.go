package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"qvisor/internal/sim"
)

// TestParallelSweepMatchesSerial is the determinism regression test: a
// parallel sweep (workers=8) must produce byte-identical Results to the
// serial sweep (workers=1) for every scheme at two loads. Run is a pure
// function of (Config, Scheme, load) and the runner aggregates
// order-independently, so any divergence means shared state leaked in.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 10 * sim.Millisecond
	loads := []float64{0.3, 0.6}

	serial, err := SweepParallel(cfg, Schemes, loads, RunnerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepParallel(cfg, Schemes, loads, RunnerConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(Schemes)*len(loads) || len(serial) != len(parallel) {
		t.Fatalf("result counts: serial %d parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d (%v load %v): parallel result diverged from serial\nserial:   %+v\nparallel: %+v",
				i, serial[i].Scheme, serial[i].Load, serial[i], parallel[i])
		}
	}
}

func TestPointsOrder(t *testing.T) {
	pts := Points([]Scheme{FIFOBoth, PIFOIdeal}, []float64{0.2, 0.4}, []int64{1, 2})
	want := []Point{
		{FIFOBoth, 0.2, 1}, {FIFOBoth, 0.2, 2},
		{FIFOBoth, 0.4, 1}, {FIFOBoth, 0.4, 2},
		{PIFOIdeal, 0.2, 1}, {PIFOIdeal, 0.2, 2},
		{PIFOIdeal, 0.4, 1}, {PIFOIdeal, 0.4, 2},
	}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("points = %v, want %v", pts, want)
	}
	if s := pts[0].String(); !strings.Contains(s, "load=0.20") || !strings.Contains(s, "seed=1") {
		t.Fatalf("point string = %q", s)
	}
}

func TestTrialSeeds(t *testing.T) {
	if TrialSeeds(7, 0) != nil {
		t.Fatal("zero trials must yield no seeds")
	}
	seeds := TrialSeeds(7, 5)
	if len(seeds) != 5 {
		t.Fatalf("len = %d", len(seeds))
	}
	if seeds[0] != 7 {
		t.Fatalf("first trial seed %d must equal the base so one-trial runs match plain sweeps", seeds[0])
	}
	seen := map[int64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d in %v", s, seeds)
		}
		seen[s] = true
		// seed+1 is reserved for the CBR tenant; derived seeds must not
		// collide with any trial's CBR seed.
		if s != 7 && seen[s+1] {
			t.Fatalf("seed %d collides with another trial's CBR offset", s)
		}
	}
	if !reflect.DeepEqual(seeds, TrialSeeds(7, 5)) {
		t.Fatal("TrialSeeds must be deterministic")
	}
	if reflect.DeepEqual(seeds[1:], TrialSeeds(8, 5)[1:]) {
		t.Fatal("different bases must derive different seed tails")
	}
}

func TestRunPointsErrorIsDeterministic(t *testing.T) {
	cfg := ciConfig()
	cfg.Horizon = 5 * sim.Millisecond
	cfg.Workload = "bogus" // every point fails in workload selection
	pts := Points([]Scheme{PIFOIdeal, FIFOBoth}, []float64{0.3, 0.5}, []int64{1})
	for _, workers := range []int{1, 4} {
		_, err := RunPoints(cfg, pts, RunnerConfig{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		// Lowest-indexed failing point wins regardless of worker count.
		if !strings.Contains(err.Error(), "load 0.3") || !strings.Contains(err.Error(), pts[0].Scheme.String()) {
			t.Fatalf("workers=%d: error %q is not the lowest-indexed point's", workers, err)
		}
	}
}

func TestRunPointsProgress(t *testing.T) {
	cfg := ciConfig()
	cfg.Horizon = 5 * sim.Millisecond
	pts := Points([]Scheme{PIFOIdeal}, []float64{0.3, 0.5}, []int64{1, 2})
	var mu sync.Mutex
	var calls []int
	_, err := RunPoints(cfg, pts, RunnerConfig{
		Workers: 4,
		Progress: func(done, total int, p Point) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(pts) {
				t.Errorf("total = %d, want %d", total, len(pts))
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(pts) {
		t.Fatalf("progress calls = %d, want %d", len(calls), len(pts))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("done sequence %v must count up monotonically", calls)
		}
	}
}

func TestRunTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := ciConfig()
	cfg.Horizon = 10 * sim.Millisecond
	seeds := TrialSeeds(cfg.Seed, 3)
	loads := []float64{0.4}
	trials, err := RunTrials(cfg, []Scheme{PIFOIdeal, QvisorShare}, loads, seeds, RunnerConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 2 {
		t.Fatalf("trials = %d, want 2", len(trials))
	}
	for _, tr := range trials {
		if tr.Load != 0.4 || len(tr.Seeds) != 3 || len(tr.Results) != 3 {
			t.Fatalf("trial cell malformed: %+v", tr)
		}
		if tr.SmallMs.N == 0 || tr.SmallMs.Mean <= 0 {
			t.Fatalf("%v: no small-flow aggregate: %+v", tr.Scheme, tr.SmallMs)
		}
		if tr.Flows.N != 3 || tr.Flows.Mean <= 0 {
			t.Fatalf("%v: flow aggregate wrong: %+v", tr.Scheme, tr.Flows)
		}
		for i, r := range tr.Results {
			if r.Scheme != tr.Scheme || r.Load != tr.Load {
				t.Fatalf("result %d mislabeled: %+v", i, r)
			}
		}
	}
	// Trial order within a cell is seed order, and the first trial equals
	// a plain single run at the base seed.
	single, err := Run(cfg, PIFOIdeal, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trials[0].Results[0], single) {
		t.Fatal("first trial at base seed must equal the plain run")
	}
	var b strings.Builder
	WriteTrialTable(&b, trials, BinSmall, loads)
	out := b.String()
	if !strings.Contains(out, "3 trials") || !strings.Contains(out, "±") {
		t.Fatalf("trial table:\n%s", out)
	}
}
