package experiments

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestInversionPropertyAcrossSeeds drives the inversion study over many
// random traces and asserts the bounds every trace must respect: the ideal
// PIFO scores exactly zero inversions, every scheduler conserves packets
// (dequeues + residual drops = arrivals), and rates stay in [0, 1]. This is
// the property-level counterpart of the single-seed TestInversionStudy.
func TestInversionPropertyAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed property sweep in -short mode")
	}
	const packets = 5000
	for seed := int64(0); seed < 8; seed++ {
		results, err := InversionStudyRng(packets, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Scheduler == "pifo" && r.Inversions != 0 {
				t.Errorf("seed %d: ideal PIFO has %d inversions", seed, r.Inversions)
			}
			if r.Dequeues+r.Drops != packets {
				t.Errorf("seed %d: %s lost packets: %d dequeued + %d dropped != %d",
					seed, r.Scheduler, r.Dequeues, r.Drops, packets)
			}
			if r.Rate < 0 || r.Rate > 1 {
				t.Errorf("seed %d: %s rate %v outside [0,1]", seed, r.Scheduler, r.Rate)
			}
			if r.Inversions > r.Dequeues {
				t.Errorf("seed %d: %s more inversions (%d) than dequeues (%d)",
					seed, r.Scheduler, r.Inversions, r.Dequeues)
			}
		}
	}
}

// TestInversionStudyRngDeterminism: equivalent sources produce
// byte-identical studies, and the seed-based wrapper matches the explicit
// form — the contract that lets the runner fan studies out over workers.
func TestInversionStudyRngDeterminism(t *testing.T) {
	a, err := InversionStudyRng(3000, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := InversionStudyRng(3000, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical sources produced different studies")
	}
	c, err := InversionStudy(3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("seed wrapper diverged from explicit rng")
	}
	if _, err := InversionStudyRng(100, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
