// Package experiments reproduces the paper's evaluation (§4): the six
// scheduling schemes of Figure 4 on the leaf-spine data-center workload —
// tenant 1 running a data-mining workload under pFabric, tenant 2 running
// constant-bit-rate deadline flows under EDF — plus the ablations listed in
// DESIGN.md.
package experiments

import (
	"fmt"
	"os"
	"sort"

	"qvisor/internal/core"
	"qvisor/internal/netsim"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
	"qvisor/internal/slo"
	"qvisor/internal/stats"
	"qvisor/internal/trace"
	"qvisor/internal/workload"
)

// Scheme is one of the six configurations compared in Figure 4.
type Scheme int

const (
	// FIFOBoth: both tenants through a FIFO queue ("FIFO: pFabric and
	// EDF").
	FIFOBoth Scheme = iota
	// PIFONaive: both tenants' raw ranks into a PIFO ("PIFO: pFabric and
	// EDF") — the §2 clash: EDF's numerically small deadline ranks beat
	// pFabric's byte-denominated ranks.
	PIFONaive
	// PIFOIdeal: only the pFabric tenant, on a PIFO ("PIFO: pFabric") —
	// the isolation ideal the QVISOR curves are compared against.
	PIFOIdeal
	// QvisorEDFFirst: QVISOR with operator policy "edf >> pfabric".
	QvisorEDFFirst
	// QvisorShare: QVISOR with operator policy "pfabric + edf".
	QvisorShare
	// QvisorPFabricFirst: QVISOR with operator policy "pfabric >> edf".
	QvisorPFabricFirst
)

// Schemes lists all six Figure-4 schemes in the paper's legend order.
var Schemes = []Scheme{
	FIFOBoth, PIFONaive, PIFOIdeal, QvisorEDFFirst, QvisorShare, QvisorPFabricFirst,
}

// String implements fmt.Stringer, matching the paper's legend.
func (s Scheme) String() string {
	switch s {
	case FIFOBoth:
		return "FIFO: pFabric and EDF"
	case PIFONaive:
		return "PIFO: pFabric and EDF"
	case PIFOIdeal:
		return "PIFO: pFabric"
	case QvisorEDFFirst:
		return "QVISOR: EDF >> pFabric"
	case QvisorShare:
		return "QVISOR: pFabric + EDF"
	case QvisorPFabricFirst:
		return "QVISOR: pFabric >> EDF"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// OperatorSpec returns the QVISOR operator policy for the scheme, or ""
// for the non-QVISOR baselines.
func (s Scheme) OperatorSpec() string {
	switch s {
	case QvisorEDFFirst:
		return "edf >> pfabric"
	case QvisorShare:
		return "pfabric + edf"
	case QvisorPFabricFirst:
		return "pfabric >> edf"
	default:
		return ""
	}
}

// Config parametrizes a Figure-4 run. The zero value is invalid; use
// PaperConfig for the paper's topology or ScaledConfig for a laptop-scale
// run with the same shape.
type Config struct {
	// Topology.
	Leaves, Spines, HostsPerLeaf int
	AccessBps, FabricBps         float64
	// SizeScale multiplies the data-mining flow sizes (1.0 = paper
	// scale). Smaller values keep the distribution's shape while making
	// runs tractable.
	SizeScale float64
	// CBRFlows and CBRBps define tenant 2 (paper: 100 flows × 0.5 Gbps).
	CBRFlows int
	CBRBps   float64
	// DeadlineBudget is the per-packet EDF deadline (5 ms default).
	DeadlineBudget sim.Time
	// Horizon is the traffic-generation window.
	Horizon sim.Time
	// Seed seeds workload generation.
	Seed int64
	// Backend is the scheduler the joint policy deploys to for QVISOR
	// schemes (default PIFO, as in the paper). Non-QVISOR schemes ignore
	// it.
	Backend core.Backend
	// Queues is the queue count for multi-queue backends.
	Queues int
	// Levels is the synthesizer quantization granularity (0 = default).
	Levels int64
	// Trace, when non-nil, records packet events during the run.
	Trace *trace.Recorder
	// Watch, when non-nil, is the online fidelity watchdog (internal/slo)
	// observing the run: shadow-oracle sampling, per-tenant SLIs, and
	// burn-rate health. Sharded runs fork and re-merge it like Trace.
	Watch *slo.Watchdog
	// Workload selects the pFabric tenant's flow-size distribution:
	// "datamining" (paper default) or "websearch".
	Workload string
	// FlowsCSV, when set, replaces the generated pFabric workload with
	// the flow trace read from this CSV file (see workload.ReadCSV).
	FlowsCSV string
	// Registry, when non-nil, collects metrics (internal/obs) from the
	// run's pre-processor, port schedulers, and fabric. The registry is
	// safe for concurrent use, so sweeps may share one across runs — the
	// counters then aggregate over every run.
	Registry *obs.Registry
	// Pool, when non-nil, supplies the simulation's packet buffers and is
	// kept warm across runs (see netsim.Config.Pool). Pools are
	// single-threaded: a pool must never be shared by concurrent runs.
	// RunPoints creates one per worker when this is nil.
	Pool *pkt.Pool
	// Engine, when non-nil, is reset and reused by the simulation instead
	// of building a fresh event engine (see netsim.Config.Engine). Same
	// single-threaded caveat as Pool.
	Engine *sim.Engine
	// DisablePool turns off packet pooling for A/B verification; results
	// are byte-identical either way.
	DisablePool bool
	// Shards runs the simulation on the sharded parallel engine with this
	// many partitions (see netsim.Config.Shards). Zero or one uses the
	// single-threaded engine. Sharded runs must not set Pool or Engine
	// (each shard builds private ones).
	Shards int
	// ShardChanCap bounds the cross-shard handoff channel (0 = default).
	ShardChanCap int
}

func (c Config) sizes() (workload.SizeDist, error) {
	var dist *workload.Empirical
	switch c.Workload {
	case "", "datamining":
		dist = workload.DataMining()
	case "websearch":
		dist = workload.WebSearch()
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", c.Workload)
	}
	if c.SizeScale != 1.0 {
		return dist.Scaled(c.SizeScale), nil
	}
	return dist, nil
}

// PaperConfig returns the paper's exact evaluation setup: 144 servers on 9
// leaves and 4 spines, 1 Gbps access and 4 Gbps fabric links, a data-mining
// tenant and 100 × 0.5 Gbps CBR flows. Running all loads at this scale
// takes hours; see ScaledConfig.
func PaperConfig() Config {
	return Config{
		Leaves: 9, Spines: 4, HostsPerLeaf: 16,
		AccessBps: 1e9, FabricBps: 4e9,
		SizeScale: 1.0,
		CBRFlows:  100, CBRBps: 0.5e9,
		DeadlineBudget: 5 * sim.Millisecond,
		Horizon:        sim.Second,
		Seed:           1,
	}
}

// ScaledConfig returns a laptop-scale configuration preserving the paper's
// ratios: 12 hosts on 3 leaves and 2 spines with full bisection bandwidth,
// flow sizes scaled to 1%, and CBR load scaled to the same ~35% share of
// aggregate access capacity.
func ScaledConfig() Config {
	return Config{
		Leaves: 3, Spines: 2, HostsPerLeaf: 4,
		AccessBps: 1e9, FabricBps: 2e9,
		SizeScale: 0.01,
		CBRFlows:  8, CBRBps: 0.5e9,
		DeadlineBudget: 5 * sim.Millisecond,
		Horizon:        100 * sim.Millisecond,
		Seed:           1,
	}
}

func (c Config) hosts() int { return c.Leaves * c.HostsPerLeaf }

// Result is one (scheme, load) data point.
type Result struct {
	Scheme Scheme
	Load   float64
	// Small and Large are the Figure-4a and 4b FCT summaries of the
	// pFabric tenant.
	Small, Large stats.Summary
	// All summarizes every pFabric flow.
	All stats.Summary
	// DeadlineMet is the fraction of delivered CBR packets on time.
	DeadlineMet float64
	// Counters are the network-wide packet counters.
	Counters netsim.Counters
	// Flows is the number of completed pFabric flows.
	Flows int
	// TopPorts is the port telemetry sorted by utilization, busiest
	// first (capped at ten entries).
	TopPorts []netsim.PortStats
}

// tenant labels used throughout the experiments.
const (
	pfabricID pkt.TenantID = 1
	edfID     pkt.TenantID = 2
)

// scaledRanker multiplies a ranker's output (and bounds) by a constant, so
// runs with scaled-down flow sizes emit ranks in the paper's original
// units.
type scaledRanker struct {
	inner rank.Ranker
	mult  int64
}

// Name implements rank.Ranker.
func (r scaledRanker) Name() string { return r.inner.Name() }

// Rank implements rank.Ranker.
func (r scaledRanker) Rank(now sim.Time, f *rank.Flow, payload int) int64 {
	return r.inner.Rank(now, f, payload) * r.mult
}

// Bounds implements rank.Ranker.
func (r scaledRanker) Bounds() rank.Bounds {
	b := r.inner.Bounds()
	return rank.Bounds{Lo: b.Lo * r.mult, Hi: b.Hi * r.mult}
}

// Run executes one (scheme, load) simulation and returns its result.
func Run(cfg Config, scheme Scheme, load float64) (Result, error) {
	res, s, err := run(cfg, scheme, load)
	if s != nil {
		s.Close()
	}
	return res, err
}

// run is Run without the Close: the scaling sweep needs the live
// simulation to read coordinator telemetry before shutdown.
func run(cfg Config, scheme Scheme, load float64) (Result, netsim.Sim, error) {
	var pfFlows []workload.FlowSpec
	if cfg.FlowsCSV != "" {
		f, err := os.Open(cfg.FlowsCSV)
		if err != nil {
			return Result{}, nil, err
		}
		pfFlows, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			return Result{}, nil, err
		}
	} else {
		sizes, err := cfg.sizes()
		if err != nil {
			return Result{}, nil, err
		}
		pfFlows, err = workload.Poisson(workload.PoissonConfig{
			Hosts:            cfg.hosts(),
			Load:             load,
			AccessBitsPerSec: cfg.AccessBps,
			Sizes:            sizes,
			Horizon:          cfg.Horizon,
			Seed:             cfg.Seed,
		})
		if err != nil {
			return Result{}, nil, err
		}
	}
	cbrFlows, err := workload.CBR(workload.CBRConfig{
		Hosts:          cfg.hosts(),
		Flows:          cfg.CBRFlows,
		BitsPerSec:     cfg.CBRBps,
		DeadlineBudget: cfg.DeadlineBudget,
		Seed:           cfg.Seed + 1,
	})
	if err != nil {
		return Result{}, nil, err
	}

	maxFlow := int64(float64(300_000_000) * cfg.SizeScale)
	var pfRanker rank.Ranker = &rank.PFabric{MaxFlowBytes: maxFlow}
	if cfg.SizeScale != 1.0 {
		// Scaled runs shrink flow sizes but keep pFabric ranks in the
		// paper's (unscaled) byte units, preserving the §2 rank clash:
		// EDF's microsecond-denominated ranks numerically beat the ranks
		// of all but the smallest pFabric flows.
		pfRanker = scaledRanker{inner: pfRanker, mult: int64(1.0/cfg.SizeScale + 0.5)}
	}
	edfRanker := &rank.EDF{MaxSlack: 2 * cfg.DeadlineBudget}

	tenants := []netsim.TenantDef{
		{ID: pfabricID, Name: "pfabric", Ranker: pfRanker, Flows: pfFlows},
		{ID: edfID, Name: "edf", Ranker: edfRanker, Flows: cbrFlows},
	}
	if scheme == PIFOIdeal {
		tenants = tenants[:1] // pFabric alone in the network
	}

	ncfg := netsim.Config{
		Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
		AccessBps: cfg.AccessBps, FabricBps: cfg.FabricBps,
		Tenants:      tenants,
		Horizon:      cfg.Horizon,
		Trace:        cfg.Trace,
		Watch:        cfg.Watch,
		Registry:     cfg.Registry,
		Pool:         cfg.Pool,
		Engine:       cfg.Engine,
		DisablePool:  cfg.DisablePool,
		Shards:       cfg.Shards,
		ShardChanCap: cfg.ShardChanCap,
	}

	switch scheme {
	case FIFOBoth:
		ncfg.Scheduler = func(d sched.DropFn) sched.Scheduler {
			return sched.NewFIFO(sched.Config{OnDrop: d})
		}
	case PIFONaive, PIFOIdeal:
		// Default PIFO, no pre-processing: raw tenant ranks compete.
	default:
		spec, err := policy.Parse(scheme.OperatorSpec())
		if err != nil {
			return Result{}, nil, err
		}
		levels := cfg.Levels
		if levels == 0 {
			// On a PIFO backend rank space is cheap; 2^20 levels keep
			// ~300-byte resolution on the pFabric tenant's heavy-tailed
			// rank domain.
			levels = 1 << 20
		}
		coreTenants := []*core.Tenant{
			{ID: pfabricID, Name: "pfabric", Algorithm: pfRanker, Levels: levels},
			{ID: edfID, Name: "edf", Algorithm: edfRanker, Levels: levels},
		}
		jp, err := core.Synthesize(coreTenants, spec, core.SynthOptions{})
		if err != nil {
			return Result{}, nil, err
		}
		ncfg.Preprocessor = core.NewPreprocessor(jp, core.UnknownWorst)
		ncfg.Preprocessor.EnableMetrics(cfg.Registry, tenantNames(tenants))
		backend := cfg.Backend // zero value is BackendPIFO
		dep, err := jp.Deploy(backend, core.DeployOptions{Queues: cfg.Queues})
		if err != nil {
			return Result{}, nil, err
		}
		_ = dep // prototype the deployment once to validate the config
		ncfg.Scheduler = func(d sched.DropFn) sched.Scheduler {
			dd, err := jp.Deploy(backend, core.DeployOptions{
				Queues: cfg.Queues,
				Sched:  sched.Config{OnDrop: d},
			})
			if err != nil {
				panic(err) // validated above; cannot fail here
			}
			return dd.Scheduler
		}
	}

	n, err := netsim.Build(ncfg)
	if err != nil {
		return Result{}, nil, err
	}
	n.Run()

	col := n.FCTs()
	// The paper bins flows by their unscaled sizes; scaled runs therefore
	// bin by proportionally scaled edges.
	smallMax, largeMin := cfg.SmallBinFor()
	res := Result{
		Scheme: scheme,
		Load:   load,
		Small: stats.Summarize(col.Filter(func(r stats.FlowRecord) bool {
			return r.Tenant == "pfabric" && r.Size > 0 && r.Size < smallMax
		})),
		Large: stats.Summarize(col.Filter(func(r stats.FlowRecord) bool {
			return r.Tenant == "pfabric" && r.Size >= largeMin
		})),
		All:      col.BinSummary("pfabric", stats.AllFlows),
		Counters: n.Counters(),
		Flows:    len(col.Tenant("pfabric")),
	}
	if c := res.Counters; c.CBRDelivered > 0 {
		res.DeadlineMet = float64(c.CBROnTime) / float64(c.CBRDelivered)
	}
	ports := n.PortStats()
	sort.Slice(ports, func(i, j int) bool { return ports[i].Utilization > ports[j].Utilization })
	if len(ports) > 10 {
		ports = ports[:10]
	}
	res.TopPorts = ports
	return res, n, nil
}

// SmallBinFor returns the flow-size bin edges adjusted for SizeScale: the
// paper bins by the unscaled sizes, so scaled runs bin by scaled edges.
// (Figure 4a uses (0, 100 KB); 4b uses [1 MB, ∞).)
func (c Config) SmallBinFor() (int64, int64) {
	return int64(float64(stats.SmallFlowMax) * c.SizeScale),
		int64(float64(stats.LargeFlowMin) * c.SizeScale)
}

// tenantNames builds the tenant-ID → name lookup used for metric labels.
func tenantNames(defs []netsim.TenantDef) func(pkt.TenantID) string {
	byID := make(map[pkt.TenantID]string, len(defs))
	for _, td := range defs {
		byID[td.ID] = td.Name
	}
	return func(id pkt.TenantID) string {
		if name, ok := byID[id]; ok {
			return name
		}
		return fmt.Sprintf("tenant-%d", id)
	}
}
