package experiments

import (
	"fmt"
	"math/rand"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
	"qvisor/internal/trace"
)

// InversionResult reports how faithfully one scheduler realizes the joint
// policy's rank order — the metric the SP-PIFO paper popularized: a
// dequeue is an inversion ("unpifoness") when a packet with a lower rank
// is still queued.
type InversionResult struct {
	// Scheduler names the discipline.
	Scheduler string
	// Dequeues counts serviced packets.
	Dequeues int
	// Inversions counts order-violating dequeues.
	Inversions int
	// Rate is Inversions / Dequeues.
	Rate float64
	// Drops counts packets rejected (admission/capacity).
	Drops int
}

// InversionStudy replays an identical QVISOR-transformed arrival trace
// (two tenants sharing under the joint policy, randomized enqueue/dequeue
// interleaving) through each scheduler and measures its inversion rate
// against a rank oracle. The ideal PIFO scores zero by construction;
// approximations trade inversions for hardware simplicity (§3.4).
//
// The trace is drawn from a private deterministic source derived from seed,
// so concurrent studies never share RNG state; use InversionStudyRng to
// inject the source explicitly.
func InversionStudy(packets int, seed int64) ([]InversionResult, error) {
	return InversionStudyRng(packets, rand.New(rand.NewSource(seed)))
}

// InversionStudyRng is InversionStudy with an explicit random source. The
// caller owns rng; passing sources seeded identically yields byte-identical
// results.
func InversionStudyRng(count int, rng *rand.Rand) ([]InversionResult, error) {
	if count <= 0 {
		return nil, fmt.Errorf("experiments: non-positive packet count")
	}
	if rng == nil {
		return nil, fmt.Errorf("experiments: nil rng")
	}
	// Joint policy: two sharing tenants with heterogeneous rank scales.
	tenants := []*core.Tenant{
		{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: 1 << 20}, Levels: 1 << 10},
		{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: 10000}, Levels: 1 << 10},
	}
	jp, err := core.Synthesize(tenants, policy.MustParse("a + b"), core.SynthOptions{})
	if err != nil {
		return nil, err
	}
	pp := core.NewPreprocessor(jp, core.UnknownWorst)

	// Pre-generate the transformed trace so every scheduler sees
	// identical input.
	packets := make([]*pkt.Packet, count)
	for i := range packets {
		p := &pkt.Packet{
			ID:     uint64(i),
			Tenant: pkt.TenantID(1 + rng.Intn(2)),
			Size:   1500,
		}
		if p.Tenant == 1 {
			p.Rank = int64(rng.Intn(1 << 20))
		} else {
			p.Rank = int64(rng.Intn(10001))
		}
		pp.Process(p)
		packets[i] = p
	}
	// Identical randomized service pattern; occupancy is additionally
	// bounded to ~64 packets so the rates reflect realistic queue depths
	// rather than unbounded backlogs.
	serve := make([]bool, count)
	for i := range serve {
		serve[i] = rng.Intn(2) == 0
	}
	const maxOccupancy = 64

	builders := []struct {
		name  string
		build func(drop sched.DropFn) sched.Scheduler
	}{
		{"pifo", func(d sched.DropFn) sched.Scheduler {
			return sched.NewPIFO(sched.Config{CapacityBytes: 1 << 30, OnDrop: d})
		}},
		{"sppifo:8", func(d sched.DropFn) sched.Scheduler {
			return sched.NewSPPIFO(sched.Config{CapacityBytes: 1 << 30, OnDrop: d}, 8)
		}},
		{"sppifo:32", func(d sched.DropFn) sched.Scheduler {
			return sched.NewSPPIFO(sched.Config{CapacityBytes: 1 << 30, OnDrop: d}, 32)
		}},
		{"calendar:32", func(d sched.DropFn) sched.Scheduler {
			width := (jp.Output.Span() + 31) / 32
			return sched.NewCalendar(sched.Config{CapacityBytes: 1 << 30, OnDrop: d}, 32, width)
		}},
		{"bucketq:128", func(d sched.DropFn) sched.Scheduler {
			width := (jp.Output.Span() + 127) / 128
			if width < 1 {
				width = 1
			}
			return sched.NewBucketQ(sched.Config{CapacityBytes: 1 << 30, OnDrop: d}, 128, width)
		}},
		{"aifo", func(d sched.DropFn) sched.Scheduler {
			return sched.NewAIFO(sched.AIFOConfig{Config: sched.Config{CapacityBytes: 256 * 1500, OnDrop: d}})
		}},
		{"admission:8", func(d sched.DropFn) sched.Scheduler {
			return sched.NewAdmission(sched.AdmissionConfig{
				Config: sched.Config{CapacityBytes: 256 * 1500, OnDrop: d},
			})
		}},
		{"fifo", func(d sched.DropFn) sched.Scheduler {
			return sched.NewFIFO(sched.Config{CapacityBytes: 1 << 30, OnDrop: d})
		}},
	}

	// Per-run packet copies come from a pool that is drained back between
	// schedulers: the drop callback releases refused packets, the dequeue
	// loop releases serviced ones.
	pool := pkt.NewPool()
	release := func(p *pkt.Packet, _ sched.DropCause) { pool.Put(p) }

	var out []InversionResult
	for _, b := range builders {
		s := b.build(release)
		res := InversionResult{Scheduler: b.name}
		counter := trace.NewInversionCounter()
		for i, p := range packets {
			cp := pool.Get()
			*cp = *p // schedulers may be destructive; copy per run
			if s.Enqueue(cp) {
				counter.OnEnqueue(cp.Rank)
			} else {
				res.Drops++
			}
			for serveOne := serve[i] || s.Len() > maxOccupancy; serveOne; serveOne = s.Len() > maxOccupancy {
				got := s.Dequeue()
				if got == nil {
					break
				}
				counter.OnDequeue(got.Rank)
				pool.Put(got)
			}
		}
		for got := s.Dequeue(); got != nil; got = s.Dequeue() {
			counter.OnDequeue(got.Rank)
			pool.Put(got)
		}
		res.Dequeues = counter.Dequeues
		res.Inversions = counter.Inversions
		if n := pool.Outstanding(); n != 0 {
			return nil, fmt.Errorf("experiments: %s leaked %d packets", b.name, n)
		}
		pool.Reset()
		if res.Dequeues > 0 {
			res.Rate = float64(res.Inversions) / float64(res.Dequeues)
		}
		out = append(out, res)
	}
	return out, nil
}
