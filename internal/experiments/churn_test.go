package experiments

import "testing"

// testChurnConfig is a small-budget churn run for CI: ~20 ms of traffic
// with 100 updates (5,000/sec).
func testChurnConfig() ChurnConfig {
	cfg := ScaledChurnConfig()
	cfg.Horizon = cfg.Horizon / 2 // 25 ms
	cfg.Updates = 100
	return cfg
}

// TestChurnEpochContract drives thousands of control-plane updates per
// second against a live simulation and verifies the RCU epoch contract:
// every update publishes a generation, no packet observes two
// generations, every rank rewrite matches its pinned generation's table,
// and the store fully drains.
func TestChurnEpochContract(t *testing.T) {
	cfg := testChurnConfig()
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if res.UpdatesScheduled != cfg.Updates {
		t.Errorf("scheduled %d updates, want %d", res.UpdatesScheduled, cfg.Updates)
	}
	if res.UpdatesApplied != res.UpdatesScheduled {
		t.Errorf("applied %d of %d updates; churn ops should always compile",
			res.UpdatesApplied, res.UpdatesScheduled)
	}
	// No adaptation event may be dropped: one resynthesis notification per
	// applied update, one generation per compile plus the initial one.
	if res.AdaptationEvents != res.UpdatesApplied {
		t.Errorf("adaptation events = %d, want %d", res.AdaptationEvents, res.UpdatesApplied)
	}
	if want := uint64(res.UpdatesApplied) + 1; res.Generations != want {
		t.Errorf("generations published = %d, want %d", res.Generations, want)
	}
	if res.Check.Transforms == 0 {
		t.Fatal("no transform events recorded; epoch path did not run")
	}
	if !res.Check.Passed() {
		t.Errorf("epoch conformance failed: %s", res.Check)
		for _, d := range res.Check.Details {
			t.Log("  " + d)
		}
	}
	if res.Check.MixedEpochPackets != 0 {
		t.Errorf("%d packets observed a mixed epoch", res.Check.MixedEpochPackets)
	}
	if res.DrainingAfter != 0 {
		t.Errorf("%d epochs still draining after the run", res.DrainingAfter)
	}
	// The incremental path must actually be exercised: bulk-tier updates
	// recompile one tier and reuse the rest.
	if res.Resynth.TierHits == 0 {
		t.Errorf("resynth cache never hit: %+v", res.Resynth)
	}
	if res.Resynth.Full != 0 {
		t.Errorf("resynth fell back to full synthesis %d times: %+v", res.Resynth.Full, res.Resynth)
	}
}

// TestChurnBoundedDisruption compares the churn run against an
// update-free baseline on the identical workload: sustained policy churn
// must not melt the data plane.
func TestChurnBoundedDisruption(t *testing.T) {
	cfg := testChurnConfig()
	base := cfg
	base.Updates = 0
	bres, err := RunChurn(base)
	if err != nil {
		t.Fatalf("baseline RunChurn: %v", err)
	}
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatalf("churn RunChurn: %v", err)
	}
	if bres.Counters.Delivered == 0 {
		t.Fatal("baseline delivered nothing")
	}
	ratio := float64(res.Counters.Delivered) / float64(bres.Counters.Delivered)
	if ratio < 0.90 || ratio > 1.10 {
		t.Errorf("churn delivered %d packets vs baseline %d (ratio %.3f); disruption unbounded",
			res.Counters.Delivered, bres.Counters.Delivered, ratio)
	}
	t.Logf("baseline delivered=%d dropped=%d; churn delivered=%d dropped=%d (ratio %.3f, %d updates, max draining %d)",
		bres.Counters.Delivered, bres.Counters.Dropped,
		res.Counters.Delivered, res.Counters.Dropped, ratio,
		res.UpdatesApplied, res.MaxDraining)
}

// TestChurnFullResynthesisParity runs the same churn under
// FullResynthesis and checks the epoch contract is mode-independent.
func TestChurnFullResynthesisParity(t *testing.T) {
	cfg := testChurnConfig()
	cfg.Updates = 50
	cfg.FullResynthesis = true
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if !res.Check.Passed() {
		t.Errorf("epoch conformance failed under full resynthesis: %s", res.Check)
	}
	if res.UpdatesApplied != cfg.Updates {
		t.Errorf("applied %d of %d updates", res.UpdatesApplied, cfg.Updates)
	}
}

// TestChurnEpochDeploy exercises the per-epoch deployment path: every
// generation carries a compiled sp-queues deployment.
func TestChurnEpochDeploy(t *testing.T) {
	cfg := testChurnConfig()
	cfg.Updates = 50
	cfg.EpochDeploy = true
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if !res.Check.Passed() {
		t.Errorf("epoch conformance failed with per-epoch deployment: %s", res.Check)
	}
}

// TestMeasureResynthLatency sanity-checks the latency harness at a CI
// scale; the 1k-tenant measurement lives in BENCH_churn.json.
func TestMeasureResynthLatency(t *testing.T) {
	res, err := MeasureResynthLatency(128, 20, 1)
	if err != nil {
		t.Fatalf("MeasureResynthLatency: %v", err)
	}
	if res.IncrementalNs <= 0 || res.FullNs <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	if res.Stats.TierHits == 0 {
		t.Errorf("incremental path never hit the tier cache: %+v", res.Stats)
	}
	if res.Speedup <= 1.0 {
		t.Errorf("incremental resynthesis not faster than full: %.2fx (%+v)", res.Speedup, res)
	}
	t.Logf("%d tenants, %d rounds: incremental %d ns/update, full %d ns/update (%.1fx)",
		res.Tenants, res.Rounds, res.IncrementalNs, res.FullNs, res.Speedup)
}
