package experiments

import (
	"fmt"

	"qvisor/internal/core"
)

// BackendResult pairs a deployment backend with its Figure-4 measurement.
type BackendResult struct {
	Backend core.Backend
	Result  Result
}

// AblationBackends (A4) runs the QVISOR pfabric>>edf policy deployed on
// each hardware model of §3.4 — the ideal PIFO and the commodity
// approximations — under the same workload, quantifying what each
// "existing scheduler" costs relative to the PIFO the paper evaluates on.
func AblationBackends(cfg Config, load float64) ([]BackendResult, error) {
	backends := []core.Backend{
		core.BackendPIFO,
		core.BackendSPQueues,
		core.BackendSPPIFO,
		core.BackendCalendar,
		core.BackendBucketQ,
		core.BackendAIFO,
		core.BackendAdmission,
	}
	var out []BackendResult
	for _, b := range backends {
		c := cfg
		c.Backend = b
		if c.Queues == 0 {
			c.Queues = 8
		}
		r, err := Run(c, QvisorPFabricFirst, load)
		if err != nil {
			return nil, fmt.Errorf("backend %v: %w", b, err)
		}
		out = append(out, BackendResult{Backend: b, Result: r})
	}
	return out, nil
}
