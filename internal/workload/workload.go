// Package workload generates the traffic of the paper's evaluation (§4):
// the pFabric data-mining workload (Poisson flow arrivals with an empirical
// heavy-tailed size distribution) for tenant 1, and constant-bit-rate
// deadline flows for tenant 2.
//
// The flow-size distributions are the standard piecewise CDFs from the
// pFabric paper's evaluation, as reused by Netbench and later reproductions
// (SP-PIFO, PIAS, ...). They substitute for the original production traces,
// which are not public; the published CDFs are the community's standard
// stand-in and preserve the property Figure 4 depends on — most flows are
// small while most bytes belong to giant flows.
//
// # Determinism and seeding
//
// Nothing in this package touches the global math/rand source: every
// generator draws from an explicit per-call *rand.Rand, either injected via
// the config's Rng field or constructed locally from the config's Seed as
// rand.New(rand.NewSource(seed)). Two calls with the same config therefore
// produce byte-identical flow sets, and concurrent calls never share RNG
// state — the property the parallel sweep runner in internal/experiments
// relies on for bit-identical parallel-vs-serial results. By convention the
// experiment harness seeds the pFabric tenant with the run seed and the CBR
// tenant with seed+1; repeated-trial seeds are derived with a SplitMix64
// mix (see experiments.TrialSeeds) so trials are decorrelated without
// colliding with the seed+1 offset.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qvisor/internal/sim"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	// Sample draws one flow size.
	Sample(rng *rand.Rand) int64
	// Mean returns the distribution mean in bytes.
	Mean() float64
	// Name identifies the distribution.
	Name() string
}

// CDFPoint is one point of an empirical CDF: P(size <= Bytes) = F.
type CDFPoint struct {
	Bytes int64
	F     float64
}

// Empirical is a piecewise-linear empirical flow-size distribution.
type Empirical struct {
	name   string
	points []CDFPoint
	mean   float64
}

// NewEmpirical builds an empirical distribution from CDF points. Points
// must be strictly increasing in both coordinates, start at F=0, and end at
// F=1.
func NewEmpirical(name string, points []CDFPoint) (*Empirical, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 CDF points, have %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Bytes <= points[i-1].Bytes || points[i].F < points[i-1].F {
			return nil, fmt.Errorf("workload: CDF not monotone at point %d", i)
		}
	}
	if points[0].F != 0 {
		return nil, fmt.Errorf("workload: CDF must start at F=0, starts at %v", points[0].F)
	}
	last := points[len(points)-1]
	if last.F != 1 {
		return nil, fmt.Errorf("workload: CDF must end at F=1, ends at %v", last.F)
	}
	e := &Empirical{name: name, points: points}
	e.mean = e.computeMean()
	return e, nil
}

func mustEmpirical(name string, points []CDFPoint) *Empirical {
	e, err := NewEmpirical(name, points)
	if err != nil {
		panic(err)
	}
	return e
}

// computeMean integrates the piecewise-linear inverse CDF.
func (e *Empirical) computeMean() float64 {
	mean := 0.0
	for i := 1; i < len(e.points); i++ {
		a, b := e.points[i-1], e.points[i]
		w := b.F - a.F
		mean += w * float64(a.Bytes+b.Bytes) / 2
	}
	return mean
}

// Name implements SizeDist.
func (e *Empirical) Name() string { return e.name }

// Mean implements SizeDist.
func (e *Empirical) Mean() float64 { return e.mean }

// Sample implements SizeDist via inverse-transform sampling with linear
// interpolation between CDF points.
func (e *Empirical) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.Search(len(e.points), func(i int) bool { return e.points[i].F >= u })
	if i == 0 {
		return e.points[0].Bytes
	}
	if i == len(e.points) {
		return e.points[len(e.points)-1].Bytes
	}
	a, b := e.points[i-1], e.points[i]
	if b.F == a.F {
		return b.Bytes
	}
	frac := (u - a.F) / (b.F - a.F)
	size := float64(a.Bytes) + frac*float64(b.Bytes-a.Bytes)
	if size < 1 {
		size = 1
	}
	return int64(size)
}

// Scaled returns a copy with every flow size multiplied by factor (> 0),
// used to shrink the heavy-tailed workloads for fast runs while keeping
// their shape.
func (e *Empirical) Scaled(factor float64) *Empirical {
	if factor <= 0 {
		panic(fmt.Sprintf("workload: non-positive scale factor %v", factor))
	}
	pts := make([]CDFPoint, len(e.points))
	prev := int64(0)
	for i, p := range e.points {
		b := int64(float64(p.Bytes) * factor)
		if b <= prev {
			b = prev + 1 // keep strict monotonicity for tiny factors
		}
		pts[i] = CDFPoint{Bytes: b, F: p.F}
		prev = b
	}
	return mustEmpirical(fmt.Sprintf("%s×%g", e.name, factor), pts)
}

// DataMining returns the pFabric data-mining flow-size distribution — the
// workload of the paper's tenant 1. Roughly half the flows are under 3 KB
// while the top few percent reach hundreds of megabytes. Because this
// implementation interpolates linearly between CDF points, the extreme tail
// is truncated at 300 MB and calibrated so the mean matches the published
// value of ≈ 7.4 MB; the original trace's 1 GB outliers are unsimulatable
// at the paper's link speeds anyway (8+ seconds of serialization).
func DataMining() *Empirical {
	return mustEmpirical("datamining", []CDFPoint{
		{100, 0},
		{180, 0.10},
		{250, 0.20},
		{560, 0.30},
		{900, 0.35},
		{1100, 0.40},
		{1870, 0.45},
		{3160, 0.50},
		{10000, 0.60},
		{400000, 0.70},
		{3160000, 0.80},
		{10000000, 0.90},
		{35000000, 0.97},
		{300000000, 1.00},
	})
}

// WebSearch returns the DCTCP web-search flow-size distribution (mean
// ≈ 1.6 MB), provided for additional experiments.
func WebSearch() *Empirical {
	return mustEmpirical("websearch", []CDFPoint{
		{6000, 0},
		{10000, 0.15},
		{13000, 0.20},
		{19000, 0.30},
		{33000, 0.40},
		{53000, 0.53},
		{133000, 0.60},
		{667000, 0.70},
		{1333000, 0.80},
		{3333000, 0.90},
		{6667000, 0.95},
		{20000000, 1.00},
	})
}

// Fixed is a degenerate distribution: every flow has the same size. For
// tests and microbenchmarks.
type Fixed int64

// Sample implements SizeDist.
func (f Fixed) Sample(*rand.Rand) int64 { return int64(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

// Name implements SizeDist.
func (f Fixed) Name() string { return fmt.Sprintf("fixed%d", int64(f)) }

// FlowSpec describes one flow to inject.
type FlowSpec struct {
	// Start is the flow's arrival time.
	Start sim.Time
	// Src and Dst are host indices.
	Src, Dst int
	// Size is the flow size in bytes (size-based flows).
	Size int64
	// Rate, when nonzero, makes this a constant-bit-rate flow of the
	// given bits per second, lasting until Stop.
	Rate float64
	// Stop ends a CBR flow (zero = run to the simulation horizon).
	Stop sim.Time
	// DeadlineBudget is the per-packet deadline offset for EDF ranking
	// (zero = no deadline).
	DeadlineBudget sim.Time
}

// PoissonConfig drives the open-loop flow generator.
type PoissonConfig struct {
	// Hosts is the number of hosts; flows pick distinct src/dst uniformly.
	Hosts int
	// Load is the target utilization of each host's access link, 0–1.
	Load float64
	// AccessBitsPerSec is the access-link rate.
	AccessBitsPerSec float64
	// Sizes is the flow-size distribution.
	Sizes SizeDist
	// Horizon is the time range over which arrivals are generated.
	Horizon sim.Time
	// Seed seeds the generator when Rng is nil.
	Seed int64
	// Rng, when non-nil, is the random source used for generation and
	// takes precedence over Seed. Callers running concurrent generations
	// must pass distinct Rng instances (or rely on Seed, which constructs
	// a private source per call).
	Rng *rand.Rand
}

// rngFor returns the explicit source if given, else a fresh deterministic
// source derived from seed.
func rngFor(rng *rand.Rand, seed int64) *rand.Rand {
	if rng != nil {
		return rng
	}
	return rand.New(rand.NewSource(seed))
}

// Poisson generates open-loop Poisson flow arrivals: each host sources
// flows at rate λ = load × access / mean(size), the standard methodology of
// pFabric-style evaluations. Destinations are uniform over the other hosts.
func Poisson(cfg PoissonConfig) ([]FlowSpec, error) {
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts, have %d", cfg.Hosts)
	}
	if cfg.Load <= 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("workload: load %v outside (0,1]", cfg.Load)
	}
	if cfg.AccessBitsPerSec <= 0 {
		return nil, fmt.Errorf("workload: non-positive access rate")
	}
	if cfg.Sizes == nil {
		return nil, fmt.Errorf("workload: nil size distribution")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon")
	}
	rng := rngFor(cfg.Rng, cfg.Seed)
	bytesPerSec := cfg.AccessBitsPerSec / 8
	lambda := cfg.Load * bytesPerSec / cfg.Sizes.Mean() // flows per second per host
	meanGapNs := float64(sim.Second) / lambda

	var flows []FlowSpec
	for src := 0; src < cfg.Hosts; src++ {
		t := sim.Time(0)
		for {
			gap := sim.Time(rng.ExpFloat64() * meanGapNs)
			t += gap
			if t > cfg.Horizon {
				break
			}
			dst := rng.Intn(cfg.Hosts - 1)
			if dst >= src {
				dst++
			}
			flows = append(flows, FlowSpec{
				Start: t,
				Src:   src,
				Dst:   dst,
				Size:  cfg.Sizes.Sample(rng),
			})
		}
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].Start < flows[j].Start })
	return flows, nil
}

// CBRConfig drives the constant-bit-rate generator for the paper's tenant
// 2: "100 flows that transmit at a constant bit-rate of 0.5 Gbps between
// pairs of servers picked uniformly at random".
type CBRConfig struct {
	// Hosts is the number of hosts.
	Hosts int
	// Flows is the number of CBR flows.
	Flows int
	// BitsPerSec is each flow's rate.
	BitsPerSec float64
	// DeadlineBudget is the per-packet EDF deadline offset.
	DeadlineBudget sim.Time
	// Stop ends the flows (zero = simulation horizon).
	Stop sim.Time
	// Seed seeds the host-pair selection when Rng is nil.
	Seed int64
	// Rng, when non-nil, is the random source for host-pair selection and
	// takes precedence over Seed.
	Rng *rand.Rand
}

// CBR generates the constant-bit-rate flow set.
func CBR(cfg CBRConfig) ([]FlowSpec, error) {
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts, have %d", cfg.Hosts)
	}
	if cfg.Flows < 0 {
		return nil, fmt.Errorf("workload: negative flow count")
	}
	if cfg.Flows > 0 && cfg.BitsPerSec <= 0 {
		return nil, fmt.Errorf("workload: non-positive CBR rate")
	}
	rng := rngFor(cfg.Rng, cfg.Seed)
	flows := make([]FlowSpec, 0, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		src := rng.Intn(cfg.Hosts)
		dst := rng.Intn(cfg.Hosts - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, FlowSpec{
			Start:          0,
			Src:            src,
			Dst:            dst,
			Rate:           cfg.BitsPerSec,
			Stop:           cfg.Stop,
			DeadlineBudget: cfg.DeadlineBudget,
		})
	}
	return flows, nil
}

// TotalBytes sums the sizes of size-based flows (CBR flows contribute 0).
func TotalBytes(flows []FlowSpec) int64 {
	var total int64
	for _, f := range flows {
		total += f.Size
	}
	return total
}

// OfferedLoad estimates the fraction of aggregate access capacity the
// size-based flows consume over the horizon.
func OfferedLoad(flows []FlowSpec, hosts int, accessBitsPerSec float64, horizon sim.Time) float64 {
	if hosts == 0 || horizon <= 0 || accessBitsPerSec <= 0 {
		return math.NaN()
	}
	bits := float64(TotalBytes(flows)) * 8
	capacity := accessBitsPerSec * float64(hosts) * horizon.Seconds()
	return bits / capacity
}
