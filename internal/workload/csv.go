package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"qvisor/internal/sim"
)

// WriteCSV serializes flow specs as CSV with the header
// start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns — the interchange
// format for feeding externally generated traces into the simulator and
// for inspecting generated workloads.
func WriteCSV(w io.Writer, flows []FlowSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_ns", "src", "dst", "size", "rate_bps", "stop_ns", "deadline_ns"}); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatInt(int64(f.Start), 10),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatInt(f.Size, 10),
			strconv.FormatFloat(f.Rate, 'f', -1, 64),
			strconv.FormatInt(int64(f.Stop), 10),
			strconv.FormatInt(int64(f.DeadlineBudget), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses flow specs written by WriteCSV (or produced externally in
// the same format). The header row is required; column order is fixed.
func ReadCSV(r io.Reader) ([]FlowSpec, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 7
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	if header[0] != "start_ns" {
		return nil, fmt.Errorf("workload: unexpected CSV header %v", header)
	}
	var flows []FlowSpec
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		f, err := parseCSVRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: %w", line, err)
		}
		flows = append(flows, f)
	}
	return flows, nil
}

func parseCSVRecord(rec []string) (FlowSpec, error) {
	var f FlowSpec
	start, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return f, fmt.Errorf("bad start %q", rec[0])
	}
	src, err := strconv.Atoi(rec[1])
	if err != nil {
		return f, fmt.Errorf("bad src %q", rec[1])
	}
	dst, err := strconv.Atoi(rec[2])
	if err != nil {
		return f, fmt.Errorf("bad dst %q", rec[2])
	}
	size, err := strconv.ParseInt(rec[3], 10, 64)
	if err != nil {
		return f, fmt.Errorf("bad size %q", rec[3])
	}
	rate, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return f, fmt.Errorf("bad rate %q", rec[4])
	}
	stop, err := strconv.ParseInt(rec[5], 10, 64)
	if err != nil {
		return f, fmt.Errorf("bad stop %q", rec[5])
	}
	deadline, err := strconv.ParseInt(rec[6], 10, 64)
	if err != nil {
		return f, fmt.Errorf("bad deadline %q", rec[6])
	}
	if start < 0 || size < 0 || rate < 0 || stop < 0 || deadline < 0 {
		return f, fmt.Errorf("negative field in record %v", rec)
	}
	if size == 0 && rate == 0 {
		return f, fmt.Errorf("record %v has neither size nor rate", rec)
	}
	f = FlowSpec{
		Start:          sim.Time(start),
		Src:            src,
		Dst:            dst,
		Size:           size,
		Rate:           rate,
		Stop:           sim.Time(stop),
		DeadlineBudget: sim.Time(deadline),
	}
	return f, nil
}
