package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"qvisor/internal/sim"
)

func TestDataMiningShape(t *testing.T) {
	d := DataMining()
	// Mean ≈ 7.4 MB, matching the published data-mining workload mean.
	if d.Mean() < 6.5e6 || d.Mean() > 8.5e6 {
		t.Fatalf("data-mining mean = %.0f, want ~7.4e6", d.Mean())
	}
	rng := rand.New(rand.NewSource(1))
	small, large, n := 0, 0, 100000
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s <= 0 {
			t.Fatal("non-positive sample")
		}
		if s < 100*1000 {
			small++
		}
		if s >= 1000*1000 {
			large++
		}
	}
	// ~65% of flows are under 100 KB; ~25% are at or above 1 MB.
	if f := float64(small) / float64(n); f < 0.55 || f < 0.5 {
		t.Fatalf("small-flow fraction = %v, want > 0.55", f)
	}
	if f := float64(large) / float64(n); f < 0.15 || f > 0.35 {
		t.Fatalf("large-flow fraction = %v, want ~0.25", f)
	}
}

func TestWebSearchShape(t *testing.T) {
	d := WebSearch()
	if d.Mean() < 1e6 || d.Mean() > 3e6 {
		t.Fatalf("web-search mean = %.0f, want ~1.6e6", d.Mean())
	}
}

func TestEmpiricalSampleMeanMatches(t *testing.T) {
	d := DataMining()
	rng := rand.New(rand.NewSource(2))
	var sum float64
	n := 2_000_000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	got := sum / float64(n)
	if math.Abs(got-d.Mean())/d.Mean() > 0.05 {
		t.Fatalf("sample mean %.0f deviates from analytic mean %.0f", got, d.Mean())
	}
}

func TestEmpiricalValidation(t *testing.T) {
	cases := [][]CDFPoint{
		{},
		{{100, 0}},
		{{100, 0}, {50, 1}},                // sizes not increasing
		{{100, 0}, {200, 0.5}},             // doesn't end at 1
		{{100, 0.1}, {200, 1}},             // doesn't start at 0
		{{100, 0}, {200, 0.5}, {300, 0.4}}, // F not monotone
	}
	for i, pts := range cases {
		if _, err := NewEmpirical("bad", pts); err == nil {
			t.Errorf("case %d: NewEmpirical succeeded, want error", i)
		}
	}
}

func TestScaled(t *testing.T) {
	d := DataMining()
	s := d.Scaled(0.1)
	if math.Abs(s.Mean()-d.Mean()*0.1)/(d.Mean()*0.1) > 0.01 {
		t.Fatalf("scaled mean %.0f, want %.0f", s.Mean(), d.Mean()*0.1)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if s.Sample(rng) <= 0 {
			t.Fatal("scaled sample non-positive")
		}
	}
}

func TestScaledTinyFactorKeepsMonotone(t *testing.T) {
	d := DataMining()
	s := d.Scaled(1e-7) // collapses small points; must stay strictly monotone
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if s.Sample(rng) < 1 {
			t.Fatal("degenerate scaled sample")
		}
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DataMining().Scaled(0)
}

func TestFixed(t *testing.T) {
	f := Fixed(1500)
	if f.Sample(nil) != 1500 || f.Mean() != 1500 || f.Name() != "fixed1500" {
		t.Fatal("Fixed distribution wrong")
	}
}

func TestPoissonLoadAccuracy(t *testing.T) {
	cfg := PoissonConfig{
		Hosts:            16,
		Load:             0.5,
		AccessBitsPerSec: 1e9,
		Sizes:            Fixed(100000),
		Horizon:          2 * sim.Second,
		Seed:             5,
	}
	flows, err := Poisson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	load := OfferedLoad(flows, cfg.Hosts, cfg.AccessBitsPerSec, cfg.Horizon)
	if math.Abs(load-0.5) > 0.05 {
		t.Fatalf("offered load = %v, want ~0.5", load)
	}
}

func TestPoissonFlowsSortedAndValid(t *testing.T) {
	cfg := PoissonConfig{
		Hosts:            8,
		Load:             0.8,
		AccessBitsPerSec: 1e9,
		Sizes:            DataMining().Scaled(0.01),
		Horizon:          sim.Second,
		Seed:             7,
	}
	flows, err := Poisson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	var prev sim.Time
	for i, f := range flows {
		if f.Start < prev {
			t.Fatalf("flow %d out of order", i)
		}
		prev = f.Start
		if f.Src == f.Dst {
			t.Fatalf("flow %d has src == dst", i)
		}
		if f.Src < 0 || f.Src >= 8 || f.Dst < 0 || f.Dst >= 8 {
			t.Fatalf("flow %d endpoints out of range: %+v", i, f)
		}
		if f.Size <= 0 {
			t.Fatalf("flow %d non-positive size", i)
		}
		if f.Start > cfg.Horizon {
			t.Fatalf("flow %d beyond horizon", i)
		}
	}
}

func TestPoissonDeterministic(t *testing.T) {
	cfg := PoissonConfig{
		Hosts: 4, Load: 0.5, AccessBitsPerSec: 1e9,
		Sizes: Fixed(10000), Horizon: sim.Second, Seed: 42,
	}
	a, _ := Poisson(cfg)
	b, _ := Poisson(cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic flow count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs between identical runs", i)
		}
	}
}

// TestExplicitRngMatchesSeed pins the injection contract the parallel
// sweep runner relies on: passing Rng seeded with S is byte-identical to
// passing Seed S, and an injected Rng takes precedence over the seed.
func TestExplicitRngMatchesSeed(t *testing.T) {
	pcfg := PoissonConfig{
		Hosts: 4, Load: 0.5, AccessBitsPerSec: 1e9,
		Sizes: DataMining(), Horizon: 50 * sim.Millisecond, Seed: 42,
	}
	bySeed, err := Poisson(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg.Seed = 999 // must be ignored when Rng is set
	pcfg.Rng = rand.New(rand.NewSource(42))
	byRng, err := Poisson(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySeed) != len(byRng) {
		t.Fatalf("flow counts differ: seed %d rng %d", len(bySeed), len(byRng))
	}
	for i := range bySeed {
		if bySeed[i] != byRng[i] {
			t.Fatalf("flow %d differs between Seed and equivalent Rng", i)
		}
	}

	ccfg := CBRConfig{Hosts: 16, Flows: 10, BitsPerSec: 1e8, Seed: 7}
	cbrSeed, err := CBR(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg.Seed = 999
	ccfg.Rng = rand.New(rand.NewSource(7))
	cbrRng, err := CBR(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cbrSeed {
		if cbrSeed[i] != cbrRng[i] {
			t.Fatalf("CBR flow %d differs between Seed and equivalent Rng", i)
		}
	}
}

func TestPoissonErrors(t *testing.T) {
	good := PoissonConfig{Hosts: 4, Load: 0.5, AccessBitsPerSec: 1e9, Sizes: Fixed(1), Horizon: 1}
	cases := []func(*PoissonConfig){
		func(c *PoissonConfig) { c.Hosts = 1 },
		func(c *PoissonConfig) { c.Load = 0 },
		func(c *PoissonConfig) { c.Load = 1.5 },
		func(c *PoissonConfig) { c.AccessBitsPerSec = 0 },
		func(c *PoissonConfig) { c.Sizes = nil },
		func(c *PoissonConfig) { c.Horizon = 0 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if _, err := Poisson(c); err == nil {
			t.Errorf("case %d: Poisson succeeded, want error", i)
		}
	}
}

func TestCBR(t *testing.T) {
	flows, err := CBR(CBRConfig{
		Hosts:          144,
		Flows:          100,
		BitsPerSec:     0.5e9,
		DeadlineBudget: 5 * sim.Millisecond,
		Seed:           9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 100 {
		t.Fatalf("flows = %d, want 100", len(flows))
	}
	for i, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("flow %d src == dst", i)
		}
		if f.Rate != 0.5e9 {
			t.Fatalf("flow %d rate %v", i, f.Rate)
		}
		if f.DeadlineBudget != 5*sim.Millisecond {
			t.Fatalf("flow %d deadline budget %v", i, f.DeadlineBudget)
		}
	}
}

func TestCBRErrors(t *testing.T) {
	if _, err := CBR(CBRConfig{Hosts: 1, Flows: 1, BitsPerSec: 1}); err == nil {
		t.Fatal("1 host should fail")
	}
	if _, err := CBR(CBRConfig{Hosts: 4, Flows: -1}); err == nil {
		t.Fatal("negative flows should fail")
	}
	if _, err := CBR(CBRConfig{Hosts: 4, Flows: 1, BitsPerSec: 0}); err == nil {
		t.Fatal("zero rate should fail")
	}
	if flows, err := CBR(CBRConfig{Hosts: 4, Flows: 0}); err != nil || len(flows) != 0 {
		t.Fatal("zero flows should succeed with empty set")
	}
}

func TestTotalBytesAndOfferedLoadEdge(t *testing.T) {
	flows := []FlowSpec{{Size: 100}, {Size: 200}, {Rate: 1e9}}
	if TotalBytes(flows) != 300 {
		t.Fatalf("TotalBytes = %d", TotalBytes(flows))
	}
	if !math.IsNaN(OfferedLoad(flows, 0, 1e9, sim.Second)) {
		t.Fatal("zero hosts should yield NaN")
	}
}

// TestPropertySampleInRange: samples never exceed the CDF's extremes.
func TestPropertySampleInRange(t *testing.T) {
	d := DataMining()
	lo, hi := int64(100), int64(300000000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := d.Sample(rng)
			if s < lo || s > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDataMiningSample(b *testing.B) {
	d := DataMining()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	flows := []FlowSpec{
		{Start: 1000, Src: 0, Dst: 5, Size: 123456},
		{Start: 0, Src: 3, Dst: 1, Rate: 0.5e9, Stop: 2 * sim.Second, DeadlineBudget: 5 * sim.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, flows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(flows) {
		t.Fatalf("rows = %d", len(back))
	}
	for i := range flows {
		if back[i] != flows[i] {
			t.Fatalf("row %d: %+v != %+v", i, back[i], flows[i])
		}
	}
}

func TestCSVGeneratedWorkloadRoundTrip(t *testing.T) {
	flows, err := Poisson(PoissonConfig{
		Hosts: 8, Load: 0.5, AccessBitsPerSec: 1e9,
		Sizes: DataMining().Scaled(0.01), Horizon: 50 * sim.Millisecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, flows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(flows) {
		t.Fatalf("rows = %d vs %d", len(back), len(flows))
	}
	for i := range flows {
		if back[i] != flows[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"bogus,a,b,c,d,e,f\n", // wrong header
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\nx,0,1,1,0,0,0\n",  // bad start
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,x,1,1,0,0,0\n",  // bad src
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,0,x,1,0,0,0\n",  // bad dst
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,0,1,x,0,0,0\n",  // bad size
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,0,1,1,x,0,0\n",  // bad rate
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,0,1,1,0,x,0\n",  // bad stop
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,0,1,1,0,0,x\n",  // bad deadline
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n-5,0,1,1,0,0,0\n", // negative
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,0,1,0,0,0,0\n",  // no size or rate
		"start_ns,src,dst,size,rate_bps,stop_ns,deadline_ns\n0,0,1\n",          // short row
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: ReadCSV succeeded, want error", i)
		}
	}
}
