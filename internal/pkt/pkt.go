// Package pkt defines the packet model shared by the schedulers, the QVISOR
// pre-processor, and the network simulator.
//
// Following §3.1 of the paper, every packet that reaches QVISOR carries two
// labels: the tenant identifier and the packet rank. The rank is computed by
// the tenant's scheduling algorithm (at the end host or an upstream switch);
// lower ranks are scheduled earlier.
package pkt

import (
	"fmt"

	"qvisor/internal/sim"
)

// TenantID identifies a traffic segment. A "tenant" in QVISOR is a traffic
// segment (e.g., one application), not necessarily a physical tenant.
type TenantID uint16

// NoTenant marks packets that carry no QVISOR label.
const NoTenant TenantID = 0xFFFF

// Kind distinguishes packet roles in the simulator's transports.
type Kind uint8

const (
	// Data carries flow payload and is acknowledged.
	Data Kind = iota
	// Ack acknowledges received data.
	Ack
	// Datagram carries open-loop payload (constant-bit-rate traffic);
	// it is never acknowledged or retransmitted.
	Datagram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Datagram:
		return "datagram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Packet is one simulated packet. Fields are plain values so packets can be
// pooled and copied cheaply.
type Packet struct {
	// ID is unique per simulation run, assigned at creation.
	ID uint64
	// Flow identifies the flow the packet belongs to.
	Flow uint64
	// Tenant is the QVISOR tenant label.
	Tenant TenantID
	// Rank is the scheduling priority; lower is served earlier. Set by the
	// tenant's rank function, rewritten by the QVISOR pre-processor.
	Rank int64
	// Size is the wire size in bytes, headers included.
	Size int
	// Src and Dst are host indices in the simulated topology.
	Src, Dst int
	// Seq is the first payload byte offset carried (data packets).
	Seq int64
	// Payload is the number of payload bytes carried (data packets).
	Payload int
	// Kind is the packet role.
	Kind Kind
	// Retx marks retransmissions.
	Retx bool
	// Tagged marks packets whose rank the QVISOR pre-processor has
	// already rewritten; the transformation is applied once, at the
	// first switch the packet traverses.
	Tagged bool
	// Epoch is the policy generation the packet was transformed under
	// when the sim runs with an epoch store (zero otherwise). The packet
	// stays pinned to this generation until delivered or dropped.
	Epoch uint64
	// SentAt is when the transport first emitted the packet.
	SentAt sim.Time
	// EnqueuedAt is when the packet entered its current scheduler queue;
	// set by instrumented schedulers (internal/sched.Metrics) to measure
	// per-packet sojourn time.
	EnqueuedAt sim.Time
	// Deadline is the absolute deadline for deadline-constrained traffic.
	Deadline sim.Time
	// AckSeq is the cumulative acknowledgment (ack packets).
	AckSeq int64
}

// String implements fmt.Stringer for debug output.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d flow=%d tenant=%d rank=%d %s seq=%d size=%d}",
		p.ID, p.Flow, p.Tenant, p.Rank, p.Kind, p.Seq, p.Size)
}
