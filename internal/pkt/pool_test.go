package pkt

import "testing"

func TestPoolReusesPackets(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.ID = 42
	p.Rank = 7
	pl.Put(p)
	q := pl.Get()
	if q != p {
		t.Fatal("pool did not reuse the freed packet")
	}
	if *q != (Packet{}) {
		t.Fatalf("reused packet not zeroed: %+v", *q)
	}
	st := pl.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.News != 1 {
		t.Fatalf("stats = %+v, want Gets=2 Puts=1 News=1", st)
	}
	if pl.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", pl.Outstanding())
	}
}

func TestPoolNilSafe(t *testing.T) {
	var pl *Pool
	p := pl.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pl.Put(p) // must not panic
	if pl.Outstanding() != 0 || pl.FreeLen() != 0 {
		t.Fatal("nil pool should report zeroes")
	}
	if pl.Stats() != (PoolStats{}) {
		t.Fatal("nil pool stats non-zero")
	}
	pl.Reset() // must not panic
}

func TestPoolPutNilIsNoop(t *testing.T) {
	pl := NewPool()
	pl.Put(nil)
	if pl.Stats().Puts != 0 || pl.FreeLen() != 0 {
		t.Fatal("Put(nil) must be a no-op")
	}
}

func TestPoolLIFOOrder(t *testing.T) {
	// LIFO reuse keeps the hottest packet in cache; assert the order so a
	// refactor to FIFO (worse locality) is a conscious choice.
	pl := NewPool()
	a, b := pl.Get(), pl.Get()
	pl.Put(a)
	pl.Put(b)
	if got := pl.Get(); got != b {
		t.Fatal("pool is not LIFO")
	}
}

func TestPoolResetKeepsFreeList(t *testing.T) {
	pl := NewPool()
	pl.Put(pl.Get())
	pl.Reset()
	if pl.FreeLen() != 1 {
		t.Fatalf("free list length = %d after Reset, want 1", pl.FreeLen())
	}
	if pl.Stats() != (PoolStats{}) {
		t.Fatalf("stats not zeroed: %+v", pl.Stats())
	}
	pl.Get()
	if pl.Stats().News != 0 {
		t.Fatal("Get after Reset should hit the warm free list, not the allocator")
	}
}

// TestAllocBudgetPool: a warmed Get/Put cycle must not touch the Go
// allocator at all — this is the per-packet budget the whole data plane
// builds on.
func TestAllocBudgetPool(t *testing.T) {
	pl := NewPool()
	pl.Put(pl.Get()) // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		p := pl.Get()
		p.Size = 1500
		pl.Put(p)
	})
	if allocs != 0 {
		t.Fatalf("pool Get/Put cycle allocates %.1f objects/op, budget is 0", allocs)
	}
}
