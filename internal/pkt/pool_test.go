package pkt

import "testing"

func TestPoolReusesPackets(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.ID = 42
	p.Rank = 7
	pl.Put(p)
	q := pl.Get()
	if q != p {
		t.Fatal("pool did not reuse the freed packet")
	}
	if *q != (Packet{}) {
		t.Fatalf("reused packet not zeroed: %+v", *q)
	}
	st := pl.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.News != 1 {
		t.Fatalf("stats = %+v, want Gets=2 Puts=1 News=1", st)
	}
	if pl.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", pl.Outstanding())
	}
}

func TestPoolNilSafe(t *testing.T) {
	var pl *Pool
	p := pl.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pl.Put(p) // must not panic
	if pl.Outstanding() != 0 || pl.FreeLen() != 0 {
		t.Fatal("nil pool should report zeroes")
	}
	if pl.Stats() != (PoolStats{}) {
		t.Fatal("nil pool stats non-zero")
	}
	pl.Reset() // must not panic
}

func TestPoolPutNilIsNoop(t *testing.T) {
	pl := NewPool()
	pl.Put(nil)
	if pl.Stats().Puts != 0 || pl.FreeLen() != 0 {
		t.Fatal("Put(nil) must be a no-op")
	}
}

func TestPoolLIFOOrder(t *testing.T) {
	// LIFO reuse keeps the hottest packet in cache; assert the order so a
	// refactor to FIFO (worse locality) is a conscious choice.
	pl := NewPool()
	a, b := pl.Get(), pl.Get()
	pl.Put(a)
	pl.Put(b)
	if got := pl.Get(); got != b {
		t.Fatal("pool is not LIFO")
	}
}

func TestPoolResetKeepsFreeList(t *testing.T) {
	pl := NewPool()
	pl.Put(pl.Get())
	pl.Reset()
	if pl.FreeLen() != 1 {
		t.Fatalf("free list length = %d after Reset, want 1", pl.FreeLen())
	}
	if pl.Stats() != (PoolStats{}) {
		t.Fatalf("stats not zeroed: %+v", pl.Stats())
	}
	pl.Get()
	if pl.Stats().News != 0 {
		t.Fatal("Get after Reset should hit the warm free list, not the allocator")
	}
}

// TestAllocBudgetPool: a warmed Get/Put cycle must not touch the Go
// allocator at all — this is the per-packet budget the whole data plane
// builds on.
func TestAllocBudgetPool(t *testing.T) {
	pl := NewPool()
	pl.Put(pl.Get()) // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		p := pl.Get()
		p.Size = 1500
		pl.Put(p)
	})
	if allocs != 0 {
		t.Fatalf("pool Get/Put cycle allocates %.1f objects/op, budget is 0", allocs)
	}
}

// TestPoolCrossPoolTransfer walks a packet through a full shard handoff —
// Get on pool A, Lend, Adopt on pool B, Put on B — and checks the
// conservation math at every step: each pool's Outstanding counts the
// packet only while that pool owns it, and the sum across pools is the
// number of packets in flight.
func TestPoolCrossPoolTransfer(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Get()
	if a.Outstanding() != 1 || b.Outstanding() != 0 {
		t.Fatalf("after Get: a=%d b=%d, want 1 0", a.Outstanding(), b.Outstanding())
	}

	a.Lend(p)
	if a.Outstanding() != 0 {
		t.Fatalf("after Lend: lender outstanding = %d, want 0", a.Outstanding())
	}
	// Mid-flight: the packet is on the wire between shards; the adopter has
	// not seen it yet, so the cross-pool sum dips to zero exactly while
	// neither pool owns it — the coordinator's channel holds the reference.
	b.Adopt(p)
	if b.Outstanding() != 1 {
		t.Fatalf("after Adopt: adopter outstanding = %d, want 1", b.Outstanding())
	}
	if got := a.Outstanding() + b.Outstanding(); got != 1 {
		t.Fatalf("cross-pool sum = %d, want 1 (packet counted exactly once)", got)
	}

	b.Put(p)
	if a.Outstanding() != 0 || b.Outstanding() != 0 {
		t.Fatalf("after Put: a=%d b=%d, want 0 0", a.Outstanding(), b.Outstanding())
	}
	// The packet landed on the adopter's free list, not the lender's.
	if a.FreeLen() != 0 || b.FreeLen() != 1 {
		t.Fatalf("free lists a=%d b=%d, want 0 1", a.FreeLen(), b.FreeLen())
	}

	sa, sb := a.Stats(), b.Stats()
	if sa.Lent != 1 || sa.Adopted != 0 || sb.Adopted != 1 || sb.Lent != 0 {
		t.Fatalf("transfer stats: lender=%+v adopter=%+v", sa, sb)
	}
}

// TestPoolTransferChain hands the same packet across three pools
// (A -> B -> C) and returns it on C; every intermediate pool must net to
// zero and only C's free list grows.
func TestPoolTransferChain(t *testing.T) {
	a, b, c := NewPool(), NewPool(), NewPool()
	p := a.Get()
	a.Lend(p)
	b.Adopt(p)
	b.Lend(p)
	c.Adopt(p)
	c.Put(p)
	for i, pl := range []*Pool{a, b, c} {
		if pl.Outstanding() != 0 {
			t.Fatalf("pool %d outstanding = %d, want 0", i, pl.Outstanding())
		}
	}
	if a.FreeLen() != 0 || b.FreeLen() != 0 || c.FreeLen() != 1 {
		t.Fatalf("free lists = %d %d %d, want 0 0 1", a.FreeLen(), b.FreeLen(), c.FreeLen())
	}
	if st := b.Stats(); st.Lent != 1 || st.Adopted != 1 {
		t.Fatalf("middle pool stats = %+v, want Lent=1 Adopted=1", st)
	}
}

// TestPoolLendAdoptNilSafe: nil pools and nil packets are no-ops, matching
// the rest of the Pool API (a nil pool means "pooling off", where packets
// have no owner to transfer).
func TestPoolLendAdoptNilSafe(t *testing.T) {
	var np *Pool
	np.Lend(&Packet{})
	np.Adopt(&Packet{})
	if np.Outstanding() != 0 {
		t.Fatal("nil pool outstanding non-zero after Lend/Adopt")
	}
	pl := NewPool()
	pl.Lend(nil)
	pl.Adopt(nil)
	if pl.Stats() != (PoolStats{}) {
		t.Fatalf("Lend(nil)/Adopt(nil) touched stats: %+v", pl.Stats())
	}
}

// TestPoolResetClearsTransferCounters: Reset starts a fresh trial, so the
// transfer counters zero along with the rest of the stats.
func TestPoolResetClearsTransferCounters(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Get()
	a.Lend(p)
	b.Adopt(p)
	b.Put(p)
	a.Reset()
	b.Reset()
	if a.Stats() != (PoolStats{}) || b.Stats() != (PoolStats{}) {
		t.Fatalf("Reset left transfer stats: a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

// TestAllocBudgetTransfer: a warmed handoff cycle (Get, Lend, Adopt, Put)
// must stay allocation-free — cross-shard handoff rides the same
// zero-alloc budget as the local hot path.
func TestAllocBudgetTransfer(t *testing.T) {
	a, b := NewPool(), NewPool()
	// Warm both free lists and (under pktdebug) the live-set maps.
	pw := a.Get()
	a.Lend(pw)
	b.Adopt(pw)
	b.Put(pw)
	a.Put(a.Get())
	allocs := testing.AllocsPerRun(1000, func() {
		p := a.Get()
		a.Lend(p)
		b.Adopt(p)
		b.Put(p)
		q := b.Get()
		b.Lend(q)
		a.Adopt(q)
		a.Put(q)
	})
	if allocs != 0 {
		t.Fatalf("handoff cycle allocates %.1f objects/op, budget is 0", allocs)
	}
}
