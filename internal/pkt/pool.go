package pkt

// Pool is a free-list allocator for Packets, the backbone of the
// zero-allocation data plane: a steady-state simulation acquires every
// packet from a Pool at emit time and releases it exactly once — at
// delivery or at the drop/evict point — so the per-packet hot path touches
// the Go allocator only while the free list warms up.
//
// A Pool is intentionally single-threaded: the discrete-event simulator is
// single-threaded per run, and the parallel sweep runner gives each worker
// its own Pool (see internal/experiments). Sharing one Pool across
// goroutines is a data race.
//
// All methods are nil-safe: a nil *Pool degrades to plain allocation
// (Get returns a fresh Packet, Put is a no-op), so "pooling off" is just a
// nil pool — behaviourally byte-identical because Put zeroes packets
// before reuse.
//
// Building with -tags pktdebug arms a double-free guard: Put panics on a
// packet that is already free or that never came from the pool. See
// pool_guard_on.go.
type Pool struct {
	free  []*Packet
	stats PoolStats
	dbg   poolDebug
}

// PoolStats counts pool activity.
type PoolStats struct {
	// Gets counts packets handed out.
	Gets uint64
	// Puts counts packets returned.
	Puts uint64
	// News counts Gets that missed the free list and hit the allocator.
	News uint64
	// Lent counts packets whose ownership left this pool (Lend) — a
	// cross-shard handoff's departure side.
	Lent uint64
	// Adopted counts packets whose ownership this pool took over (Adopt)
	// — the handoff's arrival side. An adopted packet is released with a
	// normal Put and joins this pool's free list.
	Adopted uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, reusing a freed one when available. On a
// nil pool it falls back to plain allocation.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return new(Packet)
	}
	pl.stats.Gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.dbg.onGet(p)
		return p
	}
	pl.stats.News++
	p := new(Packet)
	pl.dbg.onGet(p)
	return p
}

// Put returns p to the pool, zeroing it so the next Get observes a fresh
// packet (this is what makes pooled and unpooled runs byte-identical).
// Putting the same packet twice without an intervening Get corrupts the
// free list; build with -tags pktdebug to turn that into a panic. On a nil
// pool Put is a no-op.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.dbg.onPut(p)
	pl.stats.Puts++
	*p = Packet{}
	pl.free = append(pl.free, p)
}

// Lend releases ownership of a live packet without returning it to the
// free list: the packet is about to cross to another shard's pool, which
// will Adopt it. After Lend this pool must never see p again — in a
// pktdebug build a later Put of p here panics. On a nil pool Lend is a
// no-op (unpooled packets have no owner to transfer).
//
// Lend/Adopt keep the conservation invariant additive across shards:
// each pool's Outstanding is Gets + Adopted - Puts - Lent, so a packet
// in flight between pools is counted exactly once (by the lender until
// Adopt runs, then by the adopter). Both calls must happen on their
// pool's own goroutine; the cross-shard channel provides the
// happens-before edge between them.
func (pl *Pool) Lend(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.dbg.onLend(p)
	pl.stats.Lent++
}

// Adopt takes ownership of a packet lent by another pool. The packet
// stays live; the adopting shard releases it with a normal Put when it
// leaves the network. On a nil pool Adopt is a no-op.
func (pl *Pool) Adopt(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.dbg.onAdopt(p)
	pl.stats.Adopted++
}

// Stats returns a snapshot of the pool's counters (zero value on nil).
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return pl.stats
}

// Outstanding is the number of packets this pool currently owns outside
// its free list: Gets + Adopted - Puts - Lent. A drained simulation must
// end at zero — the packet-conservation invariant the netsim tests
// assert. Summing Outstanding over every shard's pool gives the number
// of packets inside a sharded network, because a handed-off packet is
// counted by exactly one pool at a time.
func (pl *Pool) Outstanding() int {
	if pl == nil {
		return 0
	}
	return int(pl.stats.Gets + pl.stats.Adopted - pl.stats.Puts - pl.stats.Lent)
}

// FreeLen reports the current free-list length (for tests).
func (pl *Pool) FreeLen() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}

// Reset zeroes the counters while keeping the free list warm, so a pool
// reused across sweep trials starts each trial with Outstanding() == 0 and
// no cold-start allocations.
func (pl *Pool) Reset() {
	if pl == nil {
		return
	}
	pl.stats = PoolStats{}
	pl.dbg.reset()
}
