package pkt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" {
		t.Fatalf("kind strings wrong: %v %v", Data, Ack)
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatalf("unknown kind string: %v", Kind(9))
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 1, Flow: 2, Tenant: 3, Rank: 4, Size: 1500, Kind: Data, Seq: 100}
	want := "pkt{id=1 flow=2 tenant=3 rank=4 data seq=100 size=1500}"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestLabelRoundTrip(t *testing.T) {
	in := Label{Version: LabelVersion, Flags: FlagRetx, Tenant: 7, Rank: -123456789}
	buf, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != LabelSize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), LabelSize)
	}
	var out Label
	if err := out.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestLabelRoundTripProperty(t *testing.T) {
	f := func(flags uint8, tenant uint16, rank int64) bool {
		in := Label{Version: LabelVersion, Flags: flags, Tenant: TenantID(tenant), Rank: rank}
		buf, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Label
		if err := out.UnmarshalBinary(buf); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelEncodeShortBuffer(t *testing.T) {
	var l Label
	if err := l.Encode(make([]byte, LabelSize-1)); !errors.Is(err, ErrLabelShort) {
		t.Fatalf("Encode short buffer err = %v, want ErrLabelShort", err)
	}
}

func TestLabelUnmarshalErrors(t *testing.T) {
	var l Label
	if err := l.UnmarshalBinary(make([]byte, 3)); !errors.Is(err, ErrLabelShort) {
		t.Fatalf("short: %v", err)
	}
	buf := make([]byte, LabelSize)
	buf[0] = 99
	if err := l.UnmarshalBinary(buf); !errors.Is(err, ErrLabelVersion) {
		t.Fatalf("version: %v", err)
	}
	buf[0] = LabelVersion
	buf[13] = 1
	if err := l.UnmarshalBinary(buf); !errors.Is(err, ErrLabelTrailer) {
		t.Fatalf("trailer: %v", err)
	}
}

func TestLabelEncodeClearsReserved(t *testing.T) {
	buf := bytes.Repeat([]byte{0xAA}, LabelSize)
	l := Label{Version: LabelVersion, Tenant: 1, Rank: 5}
	if err := l.Encode(buf); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 16; i++ {
		if buf[i] != 0 {
			t.Fatalf("reserved byte %d not cleared: %x", i, buf[i])
		}
	}
}

func TestLabelOfAndApply(t *testing.T) {
	p := &Packet{Tenant: 9, Rank: 42, Retx: true, Deadline: 1000}
	l := LabelOf(p)
	if l.Tenant != 9 || l.Rank != 42 {
		t.Fatalf("LabelOf = %+v", l)
	}
	if l.Flags&FlagRetx == 0 || l.Flags&FlagDeadline == 0 {
		t.Fatalf("flags not set: %x", l.Flags)
	}
	var q Packet
	l.Apply(&q)
	if q.Tenant != 9 || q.Rank != 42 || !q.Retx {
		t.Fatalf("Apply produced %+v", q)
	}
}

func BenchmarkLabelEncode(b *testing.B) {
	l := Label{Version: LabelVersion, Tenant: 3, Rank: 123456}
	buf := make([]byte, LabelSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Encode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabelDecode(b *testing.B) {
	l := Label{Version: LabelVersion, Tenant: 3, Rank: 123456}
	buf, _ := l.MarshalBinary()
	var out Label
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := out.UnmarshalBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}
