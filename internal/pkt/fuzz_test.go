package pkt

import "testing"

// FuzzLabelUnmarshal checks the label decoder never panics and that every
// accepted buffer re-encodes to identical bytes.
func FuzzLabelUnmarshal(f *testing.F) {
	good, _ := Label{Version: LabelVersion, Flags: FlagRetx, Tenant: 7, Rank: -5}.MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, LabelSize))
	f.Add(make([]byte, LabelSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		var l Label
		if err := l.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := l.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted label fails to encode: %v", err)
		}
		for i := 0; i < LabelSize; i++ {
			if out[i] != data[i] {
				t.Fatalf("byte %d: re-encode %x != input %x", i, out[i], data[i])
			}
		}
	})
}
