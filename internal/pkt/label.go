package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Label is the QVISOR packet label (§3.1): the on-the-wire encoding of the
// tenant identifier and packet rank. In a hardware deployment this would be
// a small shim header (or reuse of an existing field such as the IPv4 TOS or
// a tunnel tag); here it is a 16-byte header the pre-processor parses.
//
// Wire format (big endian):
//
//	offset 0: version  (1 byte, currently 1)
//	offset 1: flags    (1 byte)
//	offset 2: tenant   (2 bytes)
//	offset 4: rank     (8 bytes, two's complement)
//	offset 12: reserved (4 bytes, must be zero)
type Label struct {
	Version uint8
	Flags   uint8
	Tenant  TenantID
	Rank    int64
}

// LabelSize is the encoded size of a Label in bytes.
const LabelSize = 16

// LabelVersion is the current wire version.
const LabelVersion = 1

// Label flag bits.
const (
	// FlagRetx marks a retransmitted packet.
	FlagRetx uint8 = 1 << iota
	// FlagDeadline marks rank as an absolute deadline (EDF-style).
	FlagDeadline
)

// Errors returned by UnmarshalBinary.
var (
	ErrLabelShort   = errors.New("pkt: label buffer too short")
	ErrLabelVersion = errors.New("pkt: unsupported label version")
	ErrLabelTrailer = errors.New("pkt: nonzero reserved label bytes")
)

// MarshalBinary encodes the label into a fresh 16-byte slice.
func (l Label) MarshalBinary() ([]byte, error) {
	buf := make([]byte, LabelSize)
	if err := l.Encode(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Encode writes the label into buf, which must be at least LabelSize bytes.
func (l Label) Encode(buf []byte) error {
	if len(buf) < LabelSize {
		return fmt.Errorf("%w: have %d bytes, need %d", ErrLabelShort, len(buf), LabelSize)
	}
	buf[0] = l.Version
	buf[1] = l.Flags
	binary.BigEndian.PutUint16(buf[2:4], uint16(l.Tenant))
	binary.BigEndian.PutUint64(buf[4:12], uint64(l.Rank))
	for i := 12; i < 16; i++ {
		buf[i] = 0
	}
	return nil
}

// UnmarshalBinary decodes a label from data.
func (l *Label) UnmarshalBinary(data []byte) error {
	if len(data) < LabelSize {
		return fmt.Errorf("%w: have %d bytes, need %d", ErrLabelShort, len(data), LabelSize)
	}
	if data[0] != LabelVersion {
		return fmt.Errorf("%w: %d", ErrLabelVersion, data[0])
	}
	for i := 12; i < 16; i++ {
		if data[i] != 0 {
			return ErrLabelTrailer
		}
	}
	l.Version = data[0]
	l.Flags = data[1]
	l.Tenant = TenantID(binary.BigEndian.Uint16(data[2:4]))
	l.Rank = int64(binary.BigEndian.Uint64(data[4:12]))
	return nil
}

// LabelOf builds the wire label for a packet.
func LabelOf(p *Packet) Label {
	var flags uint8
	if p.Retx {
		flags |= FlagRetx
	}
	if p.Deadline != 0 {
		flags |= FlagDeadline
	}
	return Label{Version: LabelVersion, Flags: flags, Tenant: p.Tenant, Rank: p.Rank}
}

// Apply copies the label's tenant and rank onto a packet.
func (l Label) Apply(p *Packet) {
	p.Tenant = l.Tenant
	p.Rank = l.Rank
	p.Retx = l.Flags&FlagRetx != 0
}
