//go:build pktdebug

package pkt

import "testing"

// The ownership guard only exists under -tags pktdebug; these tests pin
// down the exact failure modes it must catch.

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under pktdebug", what)
		}
	}()
	f()
}

func TestGuardDoubleFreePanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Put(p)
	mustPanic(t, "double Put", func() { pl.Put(p) })
}

func TestGuardForeignPacketPanics(t *testing.T) {
	pl := NewPool()
	mustPanic(t, "Put of a packet the pool never issued", func() { pl.Put(&Packet{}) })
}

func TestGuardCleanLifecyclePasses(t *testing.T) {
	pl := NewPool()
	for i := 0; i < 100; i++ {
		a, b := pl.Get(), pl.Get()
		pl.Put(b)
		pl.Put(a)
	}
	if pl.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", pl.Outstanding())
	}
}
