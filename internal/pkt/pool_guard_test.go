//go:build pktdebug

package pkt

import "testing"

// The ownership guard only exists under -tags pktdebug; these tests pin
// down the exact failure modes it must catch.

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under pktdebug", what)
		}
	}()
	f()
}

func TestGuardDoubleFreePanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Put(p)
	mustPanic(t, "double Put", func() { pl.Put(p) })
}

func TestGuardForeignPacketPanics(t *testing.T) {
	pl := NewPool()
	mustPanic(t, "Put of a packet the pool never issued", func() { pl.Put(&Packet{}) })
}

func TestGuardCleanLifecyclePasses(t *testing.T) {
	pl := NewPool()
	for i := 0; i < 100; i++ {
		a, b := pl.Get(), pl.Get()
		pl.Put(b)
		pl.Put(a)
	}
	if pl.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", pl.Outstanding())
	}
}

func TestGuardHandoffLifecyclePasses(t *testing.T) {
	a, b := NewPool(), NewPool()
	for i := 0; i < 100; i++ {
		p := a.Get()
		a.Lend(p)
		b.Adopt(p)
		b.Put(p)
	}
	if a.Outstanding() != 0 || b.Outstanding() != 0 {
		t.Fatalf("outstanding a=%d b=%d, want 0 0", a.Outstanding(), b.Outstanding())
	}
}

func TestGuardPutAfterLendPanics(t *testing.T) {
	// Once lent, the packet belongs to the other shard; returning it to the
	// lender is the classic use-after-handoff bug.
	pl := NewPool()
	p := pl.Get()
	pl.Lend(p)
	mustPanic(t, "Put after Lend on the lender", func() { pl.Put(p) })
}

func TestGuardLendForeignPanics(t *testing.T) {
	pl := NewPool()
	mustPanic(t, "Lend of a packet the pool does not own", func() { pl.Lend(&Packet{}) })
}

func TestGuardDoubleLendPanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	pl.Lend(p)
	mustPanic(t, "double Lend", func() { pl.Lend(p) })
}

func TestGuardDoubleAdoptPanics(t *testing.T) {
	a, b := NewPool(), NewPool()
	p := a.Get()
	a.Lend(p)
	b.Adopt(p)
	mustPanic(t, "double Adopt", func() { b.Adopt(p) })
}

func TestGuardAdoptOfOwnLivePacketPanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	mustPanic(t, "Adopt of an already-owned packet", func() { pl.Adopt(p) })
}
