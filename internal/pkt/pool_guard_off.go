//go:build !pktdebug

package pkt

// PoolDebug reports whether the pktdebug double-free guard is compiled in.
const PoolDebug = false

// poolDebug is a zero-cost stub; build with -tags pktdebug for the real
// guard.
type poolDebug struct{}

func (poolDebug) onGet(*Packet)   {}
func (poolDebug) onPut(*Packet)   {}
func (poolDebug) onLend(*Packet)  {}
func (poolDebug) onAdopt(*Packet) {}
func (poolDebug) reset()          {}
