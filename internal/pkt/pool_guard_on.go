//go:build pktdebug

package pkt

import "fmt"

// PoolDebug reports whether the pktdebug double-free guard is compiled in.
const PoolDebug = true

// poolDebug tracks the checked-out set so ownership bugs fail loudly:
// returning a packet twice, or returning one the pool never handed out,
// panics at the faulty Put instead of silently corrupting the free list.
type poolDebug struct {
	live map[*Packet]bool
}

func (d *poolDebug) onGet(p *Packet) {
	if d.live == nil {
		d.live = make(map[*Packet]bool)
	}
	if d.live[p] {
		panic(fmt.Sprintf("pkt: pool handed out a live packet %p (free-list corruption)", p))
	}
	d.live[p] = true
}

func (d *poolDebug) onPut(p *Packet) {
	if !d.live[p] {
		panic(fmt.Sprintf("pkt: double free or foreign packet %p returned to pool", p))
	}
	delete(d.live, p)
}

// onLend removes p from the live set: ownership moves to another pool,
// and a later Put here would be a foreign-packet error.
func (d *poolDebug) onLend(p *Packet) {
	if !d.live[p] {
		panic(fmt.Sprintf("pkt: lending packet %p this pool does not own", p))
	}
	delete(d.live, p)
}

// onAdopt adds p to the live set: this pool now owns the packet and must
// see exactly one Put (or a further Lend) for it.
func (d *poolDebug) onAdopt(p *Packet) {
	if d.live == nil {
		d.live = make(map[*Packet]bool)
	}
	if d.live[p] {
		panic(fmt.Sprintf("pkt: adopting packet %p this pool already owns", p))
	}
	d.live[p] = true
}

func (d *poolDebug) reset() { d.live = nil }
