// Package core implements QVISOR itself: the control-plane synthesizer that
// turns per-tenant scheduling policies plus an operator composition policy
// into a joint scheduling function (§3.2), the data-plane pre-processor
// that applies it to packets at line rate (§3.3), deployment onto existing
// schedulers (§3.4), and the runtime monitoring/adaptation loop sketched in
// §2 (Idea 2) and §5.
package core

import (
	"fmt"

	"qvisor/internal/pkt"
	"qvisor/internal/rank"
)

// Tenant is one per-tenant scheduling policy (§3.1): a traffic subset plus
// the scheduling algorithm that should schedule it, written
// T = {P, algorithm}. The traffic subset is identified by the tenant label
// carried on packets; the algorithm is the rank function that computed the
// incoming ranks.
//
// A tenant is a traffic segment (e.g., one application), not necessarily a
// physical tenant.
type Tenant struct {
	// ID is the label value carried in packets.
	ID pkt.TenantID
	// Name is the identifier used in the operator's specification string.
	Name string
	// Algorithm is the rank function the tenant uses. Its declared bounds
	// feed the synthesizer's static worst-case analysis. Optional if
	// Bounds is set explicitly.
	Algorithm rank.Ranker
	// Bounds overrides the algorithm's declared rank bounds; used when
	// the tenant knows a tighter distribution (or the runtime monitor
	// has learned one). Zero value means "use Algorithm.Bounds()".
	Bounds rank.Bounds
	// Levels is the number of quantization levels the synthesizer uses
	// for this tenant's rank normalization. Zero selects automatically:
	// min(DefaultLevels, declared span+1).
	Levels int64
}

// EffectiveBounds returns the rank bounds the synthesizer analyzes: the
// explicit override when set, otherwise the algorithm's declaration.
func (t *Tenant) EffectiveBounds() (rank.Bounds, error) {
	b := t.Bounds
	if b == (rank.Bounds{}) {
		if t.Algorithm == nil {
			return b, fmt.Errorf("core: tenant %q has neither bounds nor algorithm", t.Name)
		}
		b = t.Algorithm.Bounds()
	}
	if b.Hi < b.Lo {
		return b, fmt.Errorf("core: tenant %q has inverted bounds %v", t.Name, b)
	}
	return b, nil
}

// AlgorithmName returns the tenant's algorithm name, or "-" when only
// bounds were declared.
func (t *Tenant) AlgorithmName() string {
	if t.Algorithm == nil {
		return "-"
	}
	return t.Algorithm.Name()
}

// String implements fmt.Stringer.
func (t *Tenant) String() string {
	return fmt.Sprintf("tenant{%s id=%d alg=%s}", t.Name, t.ID, t.AlgorithmName())
}
