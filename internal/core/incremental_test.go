package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

// randomChurnState is one evolving (tenants, spec) pair driven through a
// seeded mutation sequence by the differential test.
type randomChurnState struct {
	rng     *rand.Rand
	tenants []*Tenant
	spec    *policy.Spec
	nextID  pkt.TenantID
}

// rebuildSpec assigns the current tenants, in slice order, to a fresh
// random tier/level/weight structure.
func (st *randomChurnState) rebuildSpec(t *testing.T) {
	var b strings.Builder
	for i, tn := range st.tenants {
		if i > 0 {
			switch st.rng.Intn(4) {
			case 0:
				b.WriteString(" >> ")
			case 1:
				b.WriteString(" > ")
			default:
				b.WriteString(" + ")
			}
		}
		b.WriteString(tn.Name)
		if w := st.rng.Intn(4); w > 1 {
			fmt.Fprintf(&b, "*%d", w)
		}
	}
	spec, err := policy.Parse(b.String())
	if err != nil {
		t.Fatalf("generated unparsable spec %q: %v", b.String(), err)
	}
	st.spec = spec
}

func (st *randomChurnState) addTenant(t *testing.T) {
	id := st.nextID
	st.nextID++
	st.tenants = append(st.tenants, &Tenant{
		ID:     id,
		Name:   fmt.Sprintf("t%d", id),
		Bounds: rank.Bounds{Lo: 0, Hi: 100 + int64(st.rng.Intn(10_000))},
		Levels: int64(1 << (2 + st.rng.Intn(7))),
	})
	st.rebuildSpec(t)
}

// mutate applies one random churn step. Most steps are the single-tenant
// edits the memoized fast path is built for; the rest change structure.
func (st *randomChurnState) mutate(t *testing.T) {
	switch op := st.rng.Intn(10); {
	case op < 5: // bounds nudge (the common churn op)
		i := st.rng.Intn(len(st.tenants))
		nt := *st.tenants[i]
		nt.Bounds.Hi += int64(1 + st.rng.Intn(64))
		st.tenants[i] = &nt
	case op < 6: // quantization change
		i := st.rng.Intn(len(st.tenants))
		nt := *st.tenants[i]
		nt.Levels = int64(1 << (2 + st.rng.Intn(8)))
		st.tenants[i] = &nt
	case op < 8: // structural: same tenants, new tiers/levels/weights
		st.rebuildSpec(t)
	case op < 9: // membership: join
		st.addTenant(t)
	default: // membership: leave (keep at least two)
		if len(st.tenants) <= 2 {
			st.addTenant(t)
			return
		}
		i := st.rng.Intn(len(st.tenants))
		st.tenants = append(st.tenants[:i], st.tenants[i+1:]...)
		st.rebuildSpec(t)
	}
}

// policiesEqual compares every synthesized field (Spec identity aside —
// both paths store the given pointer).
func policiesEqual(a, b *JointPolicy) bool {
	return a.Spec == b.Spec &&
		reflect.DeepEqual(a.Transforms, b.Transforms) &&
		reflect.DeepEqual(a.ByName, b.ByName) &&
		reflect.DeepEqual(a.Tiers, b.Tiers) &&
		a.Output == b.Output
}

// TestResynthesizeDifferential is the incremental synthesizer's
// correctness proof: over hundreds of seeded churn sequences — bounds
// nudges, level changes, weight edits, tier restructurings, tenant
// joins/leaves — every Resynthesize result is identical to a fresh full
// Synthesize of the same inputs, including the serialized bytes.
func TestResynthesizeDifferential(t *testing.T) {
	const sequences = 220
	const steps = 12
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(seq)))
		st := &randomChurnState{rng: rng, nextID: 1}
		for i := 0; i < 2+rng.Intn(10); i++ {
			st.addTenant(t)
		}
		opts := SynthOptions{}
		if seq%3 == 1 {
			opts = SynthOptions{DefaultLevels: 16, PreferenceBias: 0.25, Base: 1}
		}
		rs := NewResynthesizer(opts)
		for s := 0; s < steps; s++ {
			st.mutate(t)
			inc, incErr := rs.Resynthesize(st.tenants, st.spec)
			full, fullErr := Synthesize(st.tenants, st.spec, opts)
			if (incErr == nil) != (fullErr == nil) {
				t.Fatalf("seq %d step %d: error divergence: incremental %v, full %v (spec %s)",
					seq, s, incErr, fullErr, st.spec)
			}
			if incErr != nil {
				if incErr.Error() != fullErr.Error() {
					t.Fatalf("seq %d step %d: different errors: %q vs %q", seq, s, incErr, fullErr)
				}
				continue
			}
			if !policiesEqual(inc, full) {
				t.Fatalf("seq %d step %d: policies diverge for spec %s\nincremental:\n%s\nfull:\n%s",
					seq, s, st.spec, inc.Describe(), full.Describe())
			}
			if inc.Describe() != full.Describe() {
				t.Fatalf("seq %d step %d: serialized output differs", seq, s)
			}
		}
		if stats := rs.Stats(); seq == 0 && stats.TierHits == 0 {
			t.Errorf("differential churn never hit the tier cache: %+v", stats)
		}
	}
}

// TestResynthesizeFallbacks drives the inputs the fast path must refuse
// and checks each produces the canonical full-synthesis behavior.
func TestResynthesizeFallbacks(t *testing.T) {
	mk := func() []*Tenant {
		return []*Tenant{
			{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
			{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
		}
	}
	spec, err := policy.Parse("a >> b")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("nil spec", func(t *testing.T) {
		rs := NewResynthesizer(SynthOptions{})
		_, err := rs.Resynthesize(mk(), nil)
		if err == nil {
			t.Fatal("nil spec accepted")
		}
		if rs.Stats().Full != 1 {
			t.Errorf("expected full fallback, got %+v", rs.Stats())
		}
	})
	t.Run("invalid options", func(t *testing.T) {
		rs := NewResynthesizer(SynthOptions{PreferenceBias: 2})
		_, err := rs.Resynthesize(mk(), spec)
		if err == nil {
			t.Fatal("invalid PreferenceBias accepted")
		}
	})
	t.Run("out-of-order tenants", func(t *testing.T) {
		rs := NewResynthesizer(SynthOptions{})
		ts := mk()
		ts[0], ts[1] = ts[1], ts[0] // not in spec order: fast path bails
		jp, err := rs.Resynthesize(ts, spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Synthesize(ts, spec, SynthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !policiesEqual(jp, want) {
			t.Error("fallback result diverges from Synthesize")
		}
		if rs.Stats().Full != 1 {
			t.Errorf("expected full fallback, got %+v", rs.Stats())
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		rs := NewResynthesizer(SynthOptions{})
		ts := mk()
		ts[1] = &Tenant{ID: 2, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: 1}}
		_, incErr := rs.Resynthesize(ts, spec)
		_, fullErr := Synthesize(ts, spec, SynthOptions{})
		if incErr == nil || fullErr == nil || incErr.Error() != fullErr.Error() {
			t.Errorf("duplicate-name errors differ: %v vs %v", incErr, fullErr)
		}
	})
	t.Run("duplicate ids", func(t *testing.T) {
		rs := NewResynthesizer(SynthOptions{})
		ts := mk()
		ts[1] = &Tenant{ID: 1, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: 1}}
		_, incErr := rs.Resynthesize(ts, spec)
		_, fullErr := Synthesize(ts, spec, SynthOptions{})
		if incErr == nil || fullErr == nil || incErr.Error() != fullErr.Error() {
			t.Errorf("duplicate-id errors differ: %v vs %v", incErr, fullErr)
		}
	})
	t.Run("unregistered spec tenant", func(t *testing.T) {
		rs := NewResynthesizer(SynthOptions{})
		_, incErr := rs.Resynthesize(mk()[:1], spec)
		_, fullErr := Synthesize(mk()[:1], spec, SynthOptions{})
		if incErr == nil || fullErr == nil || incErr.Error() != fullErr.Error() {
			t.Errorf("missing-tenant errors differ: %v vs %v", incErr, fullErr)
		}
	})
	t.Run("extra registered tenant", func(t *testing.T) {
		rs := NewResynthesizer(SynthOptions{})
		ts := append(mk(), &Tenant{ID: 3, Name: "c", Bounds: rank.Bounds{Lo: 0, Hi: 1}})
		_, incErr := rs.Resynthesize(ts, spec)
		_, fullErr := Synthesize(ts, spec, SynthOptions{})
		// Full synthesis tolerates registered-but-unreferenced tenants; the
		// fast path routes through it, so behavior matches either way.
		if (incErr == nil) != (fullErr == nil) {
			t.Errorf("extra-tenant divergence: %v vs %v", incErr, fullErr)
		}
	})
}

// TestResynthesizeCacheBehavior checks hit/miss accounting: an unchanged
// input is all hits, a one-tenant edit misses exactly one tier.
func TestResynthesizeCacheBehavior(t *testing.T) {
	tenants := []*Tenant{
		{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
		{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
		{ID: 3, Name: "c", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
	}
	spec, err := policy.Parse("a >> b >> c")
	if err != nil {
		t.Fatal(err)
	}
	rs := NewResynthesizer(SynthOptions{})
	if _, err := rs.Resynthesize(tenants, spec); err != nil {
		t.Fatal(err)
	}
	if s := rs.Stats(); s.TierMisses != 3 || s.TierHits != 0 {
		t.Fatalf("cold run: %+v, want 3 misses", s)
	}
	if _, err := rs.Resynthesize(tenants, spec); err != nil {
		t.Fatal(err)
	}
	if s := rs.Stats(); s.TierMisses != 3 || s.TierHits != 3 {
		t.Fatalf("warm run: %+v, want 3 hits", s)
	}
	nt := *tenants[1]
	nt.Bounds.Hi = 200
	tenants[1] = &nt
	if _, err := rs.Resynthesize(tenants, spec); err != nil {
		t.Fatal(err)
	}
	if s := rs.Stats(); s.TierMisses != 4 || s.TierHits != 5 {
		t.Fatalf("single-tenant edit: %+v, want exactly one new miss", s)
	}
}

// benchPolicy builds an n-tenant policy across 32-wide shared tiers.
func benchPolicy(b *testing.B, n int) ([]*Tenant, *policy.Spec) {
	tenants := make([]*Tenant, n)
	var sb strings.Builder
	for i := range tenants {
		name := fmt.Sprintf("t%d", i)
		tenants[i] = &Tenant{
			ID:     pkt.TenantID(i + 1),
			Name:   name,
			Bounds: rank.Bounds{Lo: 0, Hi: 65535},
			Levels: 256,
		}
		if i > 0 {
			if i%32 == 0 {
				sb.WriteString(" >> ")
			} else {
				sb.WriteString(" + ")
			}
		}
		sb.WriteString(name)
	}
	spec, err := policy.Parse(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return tenants, spec
}

// BenchmarkIncrementalResynth measures a single-tenant bounds update at
// 1024 tenants through the memoizing path (one tier recompiles, 31 hit).
func BenchmarkIncrementalResynth(b *testing.B) {
	tenants, spec := benchPolicy(b, 1024)
	rs := NewResynthesizer(SynthOptions{})
	if _, err := rs.Resynthesize(tenants, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nt := *tenants[7]
		nt.Bounds.Hi = 65536 + int64(i%63)
		tenants[7] = &nt
		if _, err := rs.Resynthesize(tenants, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullResynth is the same update through a full Synthesize.
func BenchmarkFullResynth(b *testing.B) {
	tenants, spec := benchPolicy(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nt := *tenants[7]
		nt.Bounds.Hi = 65536 + int64(i%63)
		tenants[7] = &nt
		if _, err := Synthesize(tenants, spec, SynthOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
