package core

import (
	"fmt"
	"sort"
	"strings"

	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

// Backend selects the hardware scheduler model a joint policy deploys to
// (§3.4): the ideal PIFO, or one of the "existing schedulers" built from
// FIFO and strict-priority queues.
type Backend int

const (
	// BackendPIFO deploys onto an ideal PIFO queue: transformed ranks are
	// used directly. This is the configuration of the paper's evaluation.
	BackendPIFO Backend = iota
	// BackendSPQueues deploys onto a bank of strict-priority FIFO queues:
	// QVISOR allocates dedicated queues to each strict tier
	// (guaranteeing isolation) and splits each tier's rank band evenly
	// across its queues — the §3.4 example ("map traffic from T1 to the
	// three highest-priority queues, and traffic from T2 and T3 to the
	// two lowest-priority queues").
	BackendSPQueues
	// BackendSPPIFO deploys onto an SP-PIFO, which adapts queue bounds
	// dynamically instead of using the synthesized static mapping.
	BackendSPPIFO
	// BackendAIFO deploys onto an admission-controlled single FIFO.
	BackendAIFO
	// BackendCalendar deploys onto a calendar queue sized to the joint
	// policy's output rank range.
	BackendCalendar
	// BackendFIFO deploys onto a plain FIFO (no prioritization at all);
	// the baseline the paper's Figure 4 shows as the worst case.
	BackendFIFO
	// BackendAdmission deploys onto the combined admission+scheduling
	// discipline (PACKS-style): strict-priority queues with dynamic
	// quantile bounds fronted by AIFO's rank-aware admission gate —
	// admission and scheduling co-designed under limited queues.
	BackendAdmission
	// BackendBucketQ deploys onto the Eiffel-style hierarchical FFS
	// bucket queue: O(1) enqueue/dequeue, exact up to rank quantization
	// at bucket granularity, sized to the joint policy's output range.
	BackendBucketQ
	// numBackends bounds the enum for iteration.
	numBackends
)

// Backends lists every deployable backend in enum order.
func Backends() []Backend {
	out := make([]Backend, 0, int(numBackends))
	for b := Backend(0); b < numBackends; b++ {
		out = append(out, b)
	}
	return out
}

// ParseBackend resolves a backend name as printed by Backend.String
// ("pifo", "sp-queues", "sp-pifo", "aifo", "calendar", "fifo",
// "admission", "bucketq"), accepting "sppifo" and "spqueues" as aliases.
func ParseBackend(name string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "pifo":
		return BackendPIFO, nil
	case "sp-queues", "spqueues":
		return BackendSPQueues, nil
	case "sp-pifo", "sppifo":
		return BackendSPPIFO, nil
	case "aifo":
		return BackendAIFO, nil
	case "calendar":
		return BackendCalendar, nil
	case "fifo":
		return BackendFIFO, nil
	case "admission":
		return BackendAdmission, nil
	case "bucketq":
		return BackendBucketQ, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q", name)
}

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendPIFO:
		return "pifo"
	case BackendSPQueues:
		return "sp-queues"
	case BackendSPPIFO:
		return "sp-pifo"
	case BackendAIFO:
		return "aifo"
	case BackendCalendar:
		return "calendar"
	case BackendFIFO:
		return "fifo"
	case BackendAdmission:
		return "admission"
	case BackendBucketQ:
		return "bucketq"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// bucketQDeployBuckets is the ring size BackendBucketQ deploys with: 1024
// buckets keeps the quantization granularity at ≤0.1% of the output range
// while the two-level bitmap still covers the ring in one summary word.
const bucketQDeployBuckets = 1024

// DeployOptions tune the deployment.
type DeployOptions struct {
	// Queues is the number of hardware queues available (BackendSPQueues,
	// BackendSPPIFO, BackendCalendar buckets). Zero means 8, a common
	// per-port queue count on commodity switches.
	Queues int
	// Sched is the buffer configuration passed to the scheduler.
	Sched sched.Config
}

func (o DeployOptions) defaults() DeployOptions {
	if o.Queues <= 0 {
		o.Queues = 8
	}
	return o
}

// QueueRange records which output ranks one hardware queue serves.
type QueueRange struct {
	// Queue is the queue index (0 = highest priority).
	Queue int
	// Lo and Hi are the inclusive output rank bounds mapped to the queue.
	Lo, Hi int64
	// Tier is the strict tier the queue is dedicated to.
	Tier int
}

// Deployment is a joint policy compiled onto a concrete scheduler.
type Deployment struct {
	// Backend identifies the hardware model.
	Backend Backend
	// Scheduler is the configured scheduler instance.
	Scheduler sched.Scheduler
	// Ranges describes the queue allocation (BackendSPQueues only).
	Ranges []QueueRange
}

// Describe renders the deployment's queue allocation.
func (d *Deployment) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "backend: %s (%s)\n", d.Backend, d.Scheduler.Name())
	for _, r := range d.Ranges {
		fmt.Fprintf(&b, "  queue %d (tier %d): ranks [%d,%d]\n", r.Queue, r.Tier, r.Lo, r.Hi)
	}
	return b.String()
}

// Deploy compiles the joint policy onto the chosen backend, returning the
// ready-to-use scheduler. The pre-processor must still run in front of it;
// Deploy only configures the queueing stage.
func (jp *JointPolicy) Deploy(backend Backend, opts DeployOptions) (*Deployment, error) {
	opts = opts.defaults()
	switch backend {
	case BackendPIFO:
		return &Deployment{Backend: backend, Scheduler: sched.NewPIFO(opts.Sched)}, nil
	case BackendFIFO:
		return &Deployment{Backend: backend, Scheduler: sched.NewFIFO(opts.Sched)}, nil
	case BackendSPPIFO:
		return &Deployment{Backend: backend, Scheduler: sched.NewSPPIFO(opts.Sched, opts.Queues)}, nil
	case BackendAIFO:
		return &Deployment{Backend: backend, Scheduler: sched.NewAIFO(sched.AIFOConfig{Config: opts.Sched})}, nil
	case BackendAdmission:
		return &Deployment{
			Backend:   backend,
			Scheduler: sched.NewAdmission(sched.AdmissionConfig{Config: opts.Sched, Queues: opts.Queues}),
		}, nil
	case BackendCalendar:
		span := jp.Output.Span() + 1
		width := (span + int64(opts.Queues) - 1) / int64(opts.Queues)
		if width < 1 {
			width = 1
		}
		return &Deployment{
			Backend:   backend,
			Scheduler: sched.NewCalendar(opts.Sched, opts.Queues, width),
		}, nil
	case BackendBucketQ:
		// A software structure, not a hardware queue bank: the ring is
		// fixed at 1024 buckets regardless of opts.Queues, and the width
		// stretches the joint output range (plus the UnknownWorst rank)
		// across the horizon so steady traffic never touches the
		// overflow FIFO.
		span := jp.Output.Span() + 2
		width := (span + bucketQDeployBuckets - 1) / bucketQDeployBuckets
		if width < 1 {
			width = 1
		}
		return &Deployment{
			Backend:   backend,
			Scheduler: sched.NewBucketQ(opts.Sched, bucketQDeployBuckets, width),
		}, nil
	case BackendSPQueues:
		return jp.deploySPQueues(opts)
	default:
		return nil, fmt.Errorf("core: unknown backend %v", backend)
	}
}

// DeploySPActive deploys onto strict-priority queues like BackendSPQueues,
// but allocates queues only to the tiers that contain at least one of the
// named active tenants — the §5 runtime optimization "reallocating queues
// mapped to a tenant if the tenant is not transmitting". Packets from
// inactive tiers still map (coarsely) onto the nearest active tier's
// lowest queue, so late traffic is not lost, merely unprioritized until
// the next reallocation.
func (jp *JointPolicy) DeploySPActive(opts DeployOptions, active []string) (*Deployment, error) {
	opts = opts.defaults()
	activeSet := make(map[string]bool, len(active))
	for _, name := range active {
		activeSet[name] = true
	}
	keep := make([]bool, len(jp.Tiers))
	any := false
	for ti, tp := range jp.Tiers {
		for _, name := range tp.Tenants {
			if activeSet[name] {
				keep[ti] = true
				any = true
				break
			}
		}
	}
	if !any {
		// Nothing active: fall back to the full allocation.
		return jp.deploySPQueuesFiltered(opts, nil)
	}
	return jp.deploySPQueuesFiltered(opts, keep)
}

// deploySPQueues allocates strict-priority queues to tiers proportionally
// to their rank-band widths (each tier gets at least one queue) and splits
// each tier's band evenly across its queues.
func (jp *JointPolicy) deploySPQueues(opts DeployOptions) (*Deployment, error) {
	return jp.deploySPQueuesFiltered(opts, nil)
}

// deploySPQueuesFiltered implements deploySPQueues over the subset of
// tiers marked in keep (nil = all tiers).
func (jp *JointPolicy) deploySPQueuesFiltered(opts DeployOptions, keep []bool) (*Deployment, error) {
	tiers := jp.Tiers
	tierIdx := make([]int, 0, len(tiers))
	for ti := range tiers {
		if keep == nil || keep[ti] {
			tierIdx = append(tierIdx, ti)
		}
	}
	nt := len(tierIdx)
	if nt == 0 {
		return nil, fmt.Errorf("core: joint policy has no tiers")
	}
	if opts.Queues < nt {
		return nil, fmt.Errorf("core: %d queues cannot isolate %d strict tiers", opts.Queues, nt)
	}
	// Proportional allocation with one-queue floors (largest remainder).
	total := int64(0)
	widths := make([]int64, nt)
	for i, ti := range tierIdx {
		widths[i] = tiers[ti].Bounds.Span() + 1
		total += widths[i]
	}
	alloc := make([]int, nt)
	remaining := opts.Queues - nt // after the floors
	type frac struct {
		i    int
		frac float64
	}
	fracs := make([]frac, nt)
	for i := range alloc {
		alloc[i] = 1
		exact := float64(remaining) * float64(widths[i]) / float64(total)
		extra := int(exact)
		alloc[i] += extra
		fracs[i] = frac{i, exact - float64(extra)}
		remaining -= extra
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].frac != fracs[b].frac {
			return fracs[a].frac > fracs[b].frac
		}
		return fracs[a].i < fracs[b].i
	})
	for r := 0; r < remaining; r++ {
		alloc[fracs[r%nt].i]++
	}

	// Build the per-queue rank ranges, highest-priority tier first.
	var ranges []QueueRange
	q := 0
	for i, ti := range tierIdx {
		tp := tiers[ti]
		n := int64(alloc[i])
		width := tp.Bounds.Span() + 1
		per := (width + n - 1) / n
		lo := tp.Bounds.Lo
		for j := int64(0); j < n; j++ {
			hi := lo + per - 1
			if hi > tp.Bounds.Hi || j == n-1 {
				hi = tp.Bounds.Hi
			}
			ranges = append(ranges, QueueRange{Queue: q, Lo: lo, Hi: hi, Tier: ti})
			q++
			lo = hi + 1
			if lo > tp.Bounds.Hi {
				// Tier band narrower than its queue count: remaining
				// queues duplicate the last range (harmlessly unused).
				lo = tp.Bounds.Hi
			}
		}
	}

	// The mapper binary-searches the ordered ranges. Out-of-band ranks
	// (e.g. UnknownWorst traffic) fall into the last queue.
	bounds := make([]int64, len(ranges))
	for i, r := range ranges {
		bounds[i] = r.Hi
	}
	mapper := func(p *pkt.Packet) int {
		i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= p.Rank })
		if i == len(bounds) {
			i = len(bounds) - 1
		}
		return i
	}
	return &Deployment{
		Backend:   BackendSPQueues,
		Scheduler: sched.NewMQ(opts.Sched, len(ranges), mapper),
		Ranges:    ranges,
	}, nil
}
