package core

import (
	"math/rand"
	"reflect"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
)

// FuzzSynthesize drives the synthesizer with fuzzer-mutated policy strings
// and seeded random tenant bounds: it must never panic, and every accepted
// synthesis must satisfy the metamorphic invariants the conformance
// harness checks — output containment, per-tenant monotonicity, disjoint
// ordered tier bands, re-synthesis idempotence, rank-shift invariance, and
// deployability: the joint policy deploys onto every backend (including
// the combined admission+scheduling discipline) and each deployment
// conserves probe packets. (FuzzSpecOps caught the Demote
// weight-normalization bug the same way; this target watches the layer
// above it.)
func FuzzSynthesize(f *testing.F) {
	seeds := []struct {
		spec string
		seed int64
	}{
		{"T1", 1},
		{"T1 >> T2", 2},
		{"T1 >> T2 > T3 + T4 >> T5", 3},
		{"a + b", 4},
		{"a*3 + b*2 > c", 5},
		{"x > y > z", 6},
		{"t1 + t2 + t3 + t4 + t5 + t6 + t7 + t8", 7},
		{"w >> w", 8},   // duplicate tenant: must be rejected, not panic
		{"", 9},         // empty spec
		{"a*0 + b", 10}, // zero weight
		// Shapes that stress the admission deployment: a deep strict
		// chain (every tier its own queue band), a wide share tier under
		// a latency tier, and the float-fallback regime seed.
		{"lat >> s1 + s2 + s3 + s4 + s5 + s6 + s7", 11},
		{"a > b >> c > d >> e", 12},
		{"T1 >> T2", 1 << 45},
	}
	for _, s := range seeds {
		f.Add(s.spec, s.seed)
	}
	f.Fuzz(func(t *testing.T, specStr string, seed int64) {
		spec, err := policy.Parse(specStr)
		if err != nil {
			return // parser rejection is fine
		}
		rng := rand.New(rand.NewSource(seed))
		names := spec.Tenants()
		if len(names) > 64 {
			return // keep the per-input cost bounded
		}
		tenants := make([]*Tenant, len(names))
		for i, name := range names {
			lo := int64(rng.Intn(2001) - 1000)
			span := int64(rng.Intn(1_000_000))
			if rng.Intn(8) == 0 {
				span = 1 << 45 // float-fallback quantization regime
			}
			if lo == 0 && span == 0 {
				lo = 1 // Bounds{} means "ask the algorithm"
			}
			tenants[i] = &Tenant{
				ID:     pkt.TenantID(i + 1),
				Name:   name,
				Bounds: rank.Bounds{Lo: lo, Hi: lo + span},
				Levels: int64(rng.Intn(100)), // 0 = auto
			}
		}
		jp, err := Synthesize(tenants, spec, SynthOptions{})
		if err != nil {
			return // rejection is fine; panics and bad output are not
		}

		// Invariant 1+2: containment and monotonicity on probe ranks.
		for _, tn := range tenants {
			tr, ok := jp.Transforms[tn.ID]
			if !ok {
				t.Fatalf("tenant %q has no transform (spec %q)", tn.Name, specStr)
			}
			prev := int64(-1 << 62)
			b := tn.Bounds
			for _, in := range []int64{b.Lo - 10, b.Lo, (b.Lo + b.Hi) / 2, b.Hi, b.Hi + 10} {
				out := tr.Apply(in)
				if !jp.Output.Contains(out) {
					t.Fatalf("tenant %q Apply(%d)=%d outside output %v (spec %q)",
						tn.Name, in, out, jp.Output, specStr)
				}
				if out < prev {
					t.Fatalf("tenant %q transform not monotone (spec %q)", tn.Name, specStr)
				}
				prev = out
			}
		}

		// Invariant 3: strict tiers occupy disjoint, ordered bands.
		for i := 0; i+1 < len(jp.Tiers); i++ {
			if jp.Tiers[i].Bounds.Hi >= jp.Tiers[i+1].Bounds.Lo {
				t.Fatalf("tier %d band %v overlaps tier %d band %v (spec %q)",
					i, jp.Tiers[i].Bounds, i+1, jp.Tiers[i+1].Bounds, specStr)
			}
		}

		// Invariant 4: idempotence — synthesis is a pure function.
		jp2, err := Synthesize(tenants, spec, SynthOptions{})
		if err != nil {
			t.Fatalf("re-synthesis failed: %v (spec %q)", err, specStr)
		}
		if !reflect.DeepEqual(jp.Transforms, jp2.Transforms) || jp.Output != jp2.Output {
			t.Fatalf("re-synthesis differs (spec %q)", specStr)
		}

		// Invariant 6: deployability — the joint policy deploys onto every
		// backend, and a probe packet per tenant per tier boundary flows
		// through each deployment unharmed (no backend may panic, refuse,
		// or leak; with no buffer pressure the admission gate admits all).
		queues := 8
		if nt := len(jp.Tiers); nt > queues {
			queues = nt // SP queues need one per strict tier
		}
		for _, backend := range Backends() {
			dep, err := jp.Deploy(backend, DeployOptions{
				Queues: queues,
				Sched:  sched.Config{CapacityBytes: 1 << 30},
			})
			if err != nil {
				t.Fatalf("deploy %v failed: %v (spec %q)", backend, err, specStr)
			}
			probes := 0
			for _, tn := range tenants {
				tr := jp.Transforms[tn.ID]
				for _, in := range []int64{tn.Bounds.Lo, (tn.Bounds.Lo + tn.Bounds.Hi) / 2, tn.Bounds.Hi} {
					p := &pkt.Packet{ID: uint64(probes + 1), Tenant: tn.ID, Rank: tr.Apply(in), Size: 100}
					if !dep.Scheduler.Enqueue(p) {
						t.Fatalf("%v refused probe rank %d with no pressure (spec %q)",
							backend, p.Rank, specStr)
					}
					probes++
				}
			}
			for i := 0; i < probes; i++ {
				if dep.Scheduler.Dequeue() == nil {
					t.Fatalf("%v lost probes: %d of %d dequeued (spec %q)",
						backend, i, probes, specStr)
				}
			}
			if dep.Scheduler.Dequeue() != nil {
				t.Fatalf("%v conjured a packet (spec %q)", backend, specStr)
			}
		}

		// Invariant 5: rank-shift invariance — synthesis depends only on
		// bound spans, so shifting one tenant's bounds by c shifts its
		// transform input by c and changes nothing else.
		if len(tenants) > 0 {
			k := int(seed&0x7fffffff) % len(tenants)
			const c = int64(4096)
			shifted := make([]*Tenant, len(tenants))
			copy(shifted, tenants)
			tk := *tenants[k]
			tk.Bounds = rank.Bounds{Lo: tk.Bounds.Lo + c, Hi: tk.Bounds.Hi + c}
			shifted[k] = &tk
			jp3, err := Synthesize(shifted, spec, SynthOptions{})
			if err != nil {
				t.Fatalf("shifted synthesis failed: %v (spec %q)", err, specStr)
			}
			for j, tn := range tenants {
				t1 := jp.Transforms[tn.ID]
				t3 := jp3.Transforms[tn.ID]
				if j != k {
					if t1 != t3 {
						t.Fatalf("shifting tenant %d changed tenant %q (spec %q)", k, tn.Name, specStr)
					}
					continue
				}
				for _, in := range []int64{t1.Lo, (t1.Lo + t1.Hi) / 2, t1.Hi} {
					if t3.Apply(in+c) != t1.Apply(in) {
						t.Fatalf("shift invariance broken for tenant %q at %d (spec %q)",
							tn.Name, in, specStr)
					}
				}
			}
		}
	})
}
