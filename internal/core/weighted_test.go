package core

import (
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
)

// TestWeightedShareSlots: with "A*2 + B", A owns slots {0,1} of every
// 3-slot cycle and B owns slot {2}.
func TestWeightedShareSlots(t *testing.T) {
	tenants := []*Tenant{
		{ID: 1, Name: "A", Bounds: rank.Bounds{Lo: 0, Hi: 5}, Levels: 6},
		{ID: 2, Name: "B", Bounds: rank.Bounds{Lo: 0, Hi: 5}, Levels: 6},
	}
	jp := mustSynth(t, tenants, "A*2 + B", SynthOptions{})
	ta, _ := jp.TransformOf("A")
	tb, _ := jp.TransformOf("B")
	if ta.Stride != 3 || tb.Stride != 3 {
		t.Fatalf("cycle width: %d/%d, want 3", ta.Stride, tb.Stride)
	}
	if ta.Weight != 2 || tb.Weight != 1 {
		t.Fatalf("weights: %d/%d", ta.Weight, tb.Weight)
	}
	// A's levels 0..5 map to 0,1,3,4,6,7; B's to 2,5,8,...
	wantA := []int64{0, 1, 3, 4, 6, 7}
	for lvl, want := range wantA {
		if got := ta.Apply(int64(lvl)); got != want {
			t.Fatalf("A level %d → %d, want %d", lvl, got, want)
		}
	}
	wantB := []int64{2, 5, 8, 11, 14, 17}
	for lvl, want := range wantB {
		if got := tb.Apply(int64(lvl)); got != want {
			t.Fatalf("B level %d → %d, want %d", lvl, got, want)
		}
	}
}

// TestWeightedShareServiceRatio: a PIFO draining equal backlogs of A and B
// under "A*2 + B" serves A twice as often in every prefix.
func TestWeightedShareServiceRatio(t *testing.T) {
	tenants := []*Tenant{
		{ID: 1, Name: "A", Bounds: rank.Bounds{Lo: 0, Hi: 99}, Levels: 100},
		{ID: 2, Name: "B", Bounds: rank.Bounds{Lo: 0, Hi: 99}, Levels: 100},
	}
	jp := mustSynth(t, tenants, "A*2 + B", SynthOptions{})
	pp := NewPreprocessor(jp, UnknownWorst)
	pifo := sched.NewPIFO(sched.Config{CapacityBytes: 1 << 30})
	// Equal backlogs with identical intra-tenant rank sequences.
	for r := int64(0); r < 60; r++ {
		for _, id := range []pkt.TenantID{1, 2} {
			p := &pkt.Packet{Tenant: id, Rank: r, Size: 1}
			pp.Process(p)
			pifo.Enqueue(p)
		}
	}
	served := map[pkt.TenantID]int{}
	for i := 0; i < 30; i++ {
		p := pifo.Dequeue()
		served[p.Tenant]++
	}
	// Of the first 30 slots, A should take ~20 and B ~10.
	if served[1] < 18 || served[1] > 22 {
		t.Fatalf("weighted service skewed: %v (want ~20/10)", served)
	}
}

// TestWeightedMonotone: the weighted transform remains monotone.
func TestWeightedMonotone(t *testing.T) {
	tr := Transform{Lo: 0, Hi: 1000, Levels: 500, Stride: 7, Phase: 2, Weight: 3, Offset: 50}
	prev := int64(-1)
	for r := int64(0); r <= 1000; r++ {
		out := tr.Apply(r)
		if out < prev {
			t.Fatalf("not monotone at %d: %d < %d", r, out, prev)
		}
		prev = out
		if !tr.OutputBounds().Contains(out) {
			t.Fatalf("Apply(%d)=%d outside %v", r, out, tr.OutputBounds())
		}
	}
}

// TestWeightedIsolationStillHolds: weights inside a tier do not break
// strict isolation between tiers.
func TestWeightedIsolationStillHolds(t *testing.T) {
	tenants := []*Tenant{
		{ID: 1, Name: "A", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
		{ID: 2, Name: "B", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
		{ID: 3, Name: "C", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
	}
	jp := mustSynth(t, tenants, "A*3 + B >> C", SynthOptions{})
	ta, _ := jp.TransformOf("A")
	tb, _ := jp.TransformOf("B")
	tc, _ := jp.TransformOf("C")
	worstUpper := ta.OutputBounds().Hi
	if tb.OutputBounds().Hi > worstUpper {
		worstUpper = tb.OutputBounds().Hi
	}
	if worstUpper >= tc.OutputBounds().Lo {
		t.Fatalf("isolation broken: upper tier ends %d, lower starts %d",
			worstUpper, tc.OutputBounds().Lo)
	}
}
