package core

import (
	"fmt"
	"strings"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

// SynthOptions tune the synthesizer.
type SynthOptions struct {
	// DefaultLevels is the quantization granularity used for tenants that
	// do not set Tenant.Levels. Zero means 64. Tenants whose declared
	// rank span is narrower than this use span+1 levels (finer makes no
	// difference).
	DefaultLevels int64
	// PreferenceBias is the fraction of a preference level's output band
	// that the next (less preferred) level in the same tier is shifted
	// by. 0 < bias ≤ 1. At 1.0, ">" behaves like ">>" (disjoint bands);
	// small values approach pure sharing. Zero means 0.5: the preferred
	// level's lower half always beats the dominated level, its upper half
	// competes — "priority applied in a best-effort manner" (§3.1).
	PreferenceBias float64
	// Base is the smallest output rank the joint policy emits. The
	// paper's Figure 3 uses 1; the default is 0.
	Base int64
}

func (o SynthOptions) defaults() SynthOptions {
	if o.DefaultLevels <= 0 {
		o.DefaultLevels = 64
	}
	if o.PreferenceBias == 0 {
		o.PreferenceBias = 0.5
	}
	return o
}

func (o SynthOptions) validate() error {
	if o.PreferenceBias < 0 || o.PreferenceBias > 1 {
		return fmt.Errorf("core: PreferenceBias %v outside (0,1]", o.PreferenceBias)
	}
	if o.DefaultLevels < 0 {
		return fmt.Errorf("core: negative DefaultLevels %d", o.DefaultLevels)
	}
	return nil
}

// TierPlan records the output rank band of one strict-priority tier, for
// deployment (§3.4: strict tiers map to dedicated queues).
type TierPlan struct {
	// Bounds is the closed output rank interval the tier occupies.
	Bounds rank.Bounds
	// Tenants are the tenant names in this tier, preference order.
	Tenants []string
}

// JointPolicy is the synthesizer's output: the joint scheduling function,
// expressed as one rank transformation per tenant (§3.2), plus the layout
// information deployment needs.
type JointPolicy struct {
	// Spec is the operator policy the joint function realizes.
	Spec *policy.Spec
	// Transforms maps each tenant label to its transformation function.
	Transforms map[pkt.TenantID]Transform
	// ByName maps tenant names to labels, for inspection tools.
	ByName map[string]pkt.TenantID
	// Tiers records the rank band of each strict tier, highest first.
	Tiers []TierPlan
	// Output is the closed interval of all output ranks.
	Output rank.Bounds
	// Version is set by the runtime controller on re-synthesis.
	Version uint64
}

// TransformOf returns the transformation for a tenant name.
func (jp *JointPolicy) TransformOf(name string) (Transform, bool) {
	id, ok := jp.ByName[name]
	if !ok {
		return Transform{}, false
	}
	tr, ok := jp.Transforms[id]
	return tr, ok
}

// Describe renders a human-readable summary of the joint policy, one
// tenant per line, in spec order.
func (jp *JointPolicy) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy: %s\noutput ranks: %v\n", jp.Spec, jp.Output)
	for ti, tier := range jp.Tiers {
		fmt.Fprintf(&b, "tier %d: %v\n", ti, tier.Bounds)
		for _, name := range tier.Tenants {
			tr, _ := jp.TransformOf(name)
			fmt.Fprintf(&b, "  %-12s %s\n", name, tr)
		}
	}
	return b.String()
}

// Synthesize compiles the tenants' scheduling policies and the operator's
// composition policy into a joint scheduling function (§3.2).
//
// The construction follows the paper's two primitives:
//
//   - Tenants in the same sharing level ("+") are normalized to a common
//     number of levels and interleaved: tenant i of k gets output slots
//     offset + level*k + i, so a PIFO round-robins among them at equal
//     normalized priority (this reproduces Figure 3 exactly).
//   - Preference levels (">") within a tier are shifted by
//     PreferenceBias × the preceding level's band, overlapping bands so the
//     preferred tenants usually, but not always, win.
//   - Tiers (">>") are shifted past the entire band of every higher tier,
//     so no lower-tier packet can ever beat a higher-tier one: isolation by
//     worst-case analysis ("we can shift all the priorities from T3's
//     scheduling policy such that, even in the worst case, it does not
//     impact the performance of the other tenants", §2).
func Synthesize(tenants []*Tenant, spec *policy.Spec, opts SynthOptions) (*JointPolicy, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.defaults()
	if spec == nil {
		return nil, fmt.Errorf("core: nil operator spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	byName := make(map[string]*Tenant, len(tenants))
	for _, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("core: tenant with label %d has empty name", t.ID)
		}
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("core: duplicate tenant name %q", t.Name)
		}
		byName[t.Name] = t
	}
	ids := make(map[pkt.TenantID]string, len(tenants))
	for _, t := range tenants {
		if prev, dup := ids[t.ID]; dup {
			return nil, fmt.Errorf("core: tenants %q and %q share label %d", prev, t.Name, t.ID)
		}
		ids[t.ID] = t.Name
	}
	for _, name := range spec.Tenants() {
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("core: spec references undefined tenant %q", name)
		}
	}

	jp := &JointPolicy{
		Spec:       spec,
		Transforms: make(map[pkt.TenantID]Transform),
		ByName:     make(map[string]pkt.TenantID),
	}

	base := opts.Base
	var scratch []*Tenant
	for _, tier := range spec.Tiers {
		scratch = scratch[:0]
		for _, lvl := range tier.Levels {
			for _, name := range lvl.Tenants {
				scratch = append(scratch, byName[name])
			}
		}
		ts, err := synthesizeTier(tier, scratch, opts)
		if err != nil {
			return nil, err
		}
		for i, id := range ts.ids {
			tr := ts.rel[i]
			tr.Offset += base
			jp.Transforms[id] = tr
			jp.ByName[ts.names[i]] = id
		}
		jp.Tiers = append(jp.Tiers, TierPlan{
			Bounds:  rank.Bounds{Lo: base, Hi: base + ts.width - 1},
			Tenants: ts.names,
		})
		base += ts.width // strict isolation: next tier starts past this one
	}
	jp.Output = rank.Bounds{Lo: opts.Base, Hi: base - 1}
	return jp, nil
}

// tierSynth is one strict tier synthesized with its base at rank 0:
// per-tenant transforms whose Offset is still tier-relative, the tier's
// total band width, and the tenant names/IDs in preference order. Only
// Transform.Offset depends on where the tier lands in the output range,
// so shifting every Offset by the tier's absolute base reproduces exactly
// what an in-place synthesis computes — which is what makes per-tier
// results cacheable across re-syntheses (see incremental.go).
type tierSynth struct {
	width int64
	names []string
	ids   []pkt.TenantID
	rel   []Transform
}

// synthesizeTier compiles one tier at base 0. ts holds the tier's tenants
// in declaration order (levels concatenated), resolved by the caller.
func synthesizeTier(tier policy.Tier, ts []*Tenant, opts SynthOptions) (*tierSynth, error) {
	out := &tierSynth{}
	levelOffset := int64(0)
	tierEnd := int64(0) // exclusive
	k := 0
	for li, lvl := range tier.Levels {
		// The interleave cycle width is the level's total share
		// weight ("T1*2 + T2" → cycle of 3 slots, two owned by T1).
		W := lvl.TotalWeight()
		// All tenants of a sharing level use a common level count:
		// the maximum of their individual choices, so no tenant
		// loses resolution to a coarser neighbour.
		L := int64(1)
		for i := range lvl.Tenants {
			lt, err := tenantLevels(ts[k+i], opts.DefaultLevels)
			if err != nil {
				return nil, err
			}
			if lt > L {
				L = lt
			}
		}
		var width int64 // slots occupied by this sharing group
		phase := int64(0)
		for i, name := range lvl.Tenants {
			t := ts[k+i]
			b, err := t.EffectiveBounds()
			if err != nil {
				return nil, err
			}
			w := lvl.WeightOf(i)
			tr := Transform{
				Lo:     b.Lo,
				Hi:     b.Hi,
				Levels: L,
				Stride: W,
				Phase:  phase,
				Weight: w,
				Offset: levelOffset,
			}
			phase += w
			if end := tr.OutputBounds().Hi - levelOffset + 1; end > width {
				width = end
			}
			out.rel = append(out.rel, tr)
			out.ids = append(out.ids, t.ID)
			out.names = append(out.names, name)
		}
		k += len(lvl.Tenants)
		if end := levelOffset + width; end > tierEnd {
			tierEnd = end
		}
		if li < len(tier.Levels)-1 {
			// Best-effort preference: the next level starts part-way
			// into this one's band.
			shift := int64(float64(width) * opts.PreferenceBias)
			if shift < 1 {
				shift = 1
			}
			levelOffset += shift
		}
	}
	out.width = tierEnd
	return out, nil
}

func tenantLevels(t *Tenant, def int64) (int64, error) {
	if t.Levels < 0 {
		return 0, fmt.Errorf("core: tenant %q has negative Levels", t.Name)
	}
	if t.Levels > 0 {
		return t.Levels, nil
	}
	b, err := t.EffectiveBounds()
	if err != nil {
		return 0, err
	}
	if s := b.Span() + 1; s < def {
		return s, nil
	}
	return def, nil
}
