package core

import (
	"fmt"
	"strings"

	"qvisor/internal/policy"
)

// Target describes the capabilities of an existing scheduler, the "design
// space" §3.4 and §5 say QVISOR must receive to compile policies onto real
// hardware: "in order for QVISOR to run on existing schedulers, it should
// know what packet-processing operations they support and what guarantees
// they provide".
type Target struct {
	// Name identifies the device model.
	Name string
	// Sorted reports a true PIFO: perfect rank ordering.
	Sorted bool
	// Queues is the number of strict-priority FIFO queues (ignored when
	// Sorted).
	Queues int
	// RankRewrite reports whether the device can run QVISOR's
	// pre-processor (match-action stages that rewrite the rank field).
	RankRewrite bool
	// Admission reports rank-aware admission control (AIFO-style),
	// which recovers some ordering on shallow queue counts by dropping
	// what a PIFO would have dropped.
	Admission bool
}

// Common targets.
var (
	// TargetPIFO is the ideal device the paper's evaluation assumes.
	TargetPIFO = Target{Name: "ideal-pifo", Sorted: true, RankRewrite: true}
	// TargetCommodity8Q models a commodity switch: 8 strict-priority
	// queues and programmable stages for the rank rewrite.
	TargetCommodity8Q = Target{Name: "commodity-8q", Queues: 8, RankRewrite: true}
	// TargetLegacy4Q models a fixed-function switch: 4 priority queues,
	// no programmable rank rewrite.
	TargetLegacy4Q = Target{Name: "legacy-4q", Queues: 4}
)

// GuaranteeLevel grades how faithfully a requirement is realized.
type GuaranteeLevel int

const (
	// GuaranteeNone: the requirement is not realized at all.
	GuaranteeNone GuaranteeLevel = iota
	// GuaranteeApprox: realized approximately (bounded inversions,
	// coarse fairness, or best-effort preference).
	GuaranteeApprox
	// GuaranteeExact: realized exactly, including worst cases.
	GuaranteeExact
)

// String implements fmt.Stringer.
func (g GuaranteeLevel) String() string {
	switch g {
	case GuaranteeExact:
		return "exact"
	case GuaranteeApprox:
		return "approximate"
	default:
		return "none"
	}
}

// ReqKind classifies the requirements a joint policy imposes.
type ReqKind int

const (
	// ReqIsolation: a ">>" boundary (strict priority).
	ReqIsolation ReqKind = iota
	// ReqPreference: a ">" relation (best-effort priority).
	ReqPreference
	// ReqSharing: a "+" group (fair sharing with interleaving).
	ReqSharing
	// ReqIntraOrder: a tenant's own rank order must be preserved.
	ReqIntraOrder
)

// String implements fmt.Stringer.
func (k ReqKind) String() string {
	switch k {
	case ReqIsolation:
		return "isolation"
	case ReqPreference:
		return "preference"
	case ReqSharing:
		return "sharing"
	case ReqIntraOrder:
		return "intra-tenant order"
	default:
		return fmt.Sprintf("req(%d)", int(k))
	}
}

// Requirement is one obligation the operator's specification imposes,
// graded with the guarantee level the target can offer.
type Requirement struct {
	// Kind classifies the obligation.
	Kind ReqKind
	// Tenants are the tenants involved.
	Tenants []string
	// Level is the achievable guarantee on the target.
	Level GuaranteeLevel
	// Note explains the grade.
	Note string
}

// Plan is the result of compiling a joint policy onto a target: the
// achievable guarantees, and — when the full specification does not fit —
// a proposed partial specification that does (§5: "QVISOR would not just
// fail if the desired policy could not be compiled, but would propose
// partial specifications implementable on the available resources").
type Plan struct {
	// Target is the device compiled for.
	Target Target
	// Feasible reports whether the full specification is realizable with
	// at least approximate guarantees everywhere.
	Feasible bool
	// Requirements grades every obligation.
	Requirements []Requirement
	// QueuesPerTier is the dedicated-queue allocation (nil when Sorted).
	QueuesPerTier []int
	// Partial, when not nil, is a downgraded specification that fits the
	// target (strict boundaries relaxed to best-effort preferences).
	Partial *policy.Spec
	// Downgrades lists the relaxations applied to produce Partial.
	Downgrades []string
}

// Describe renders the plan as a human-readable report.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target: %s (sorted=%v queues=%d rank-rewrite=%v admission=%v)\n",
		p.Target.Name, p.Target.Sorted, p.Target.Queues, p.Target.RankRewrite, p.Target.Admission)
	fmt.Fprintf(&b, "feasible: %v\n", p.Feasible)
	for _, r := range p.Requirements {
		fmt.Fprintf(&b, "  %-20s %-24s %s  (%s)\n",
			r.Kind, strings.Join(r.Tenants, ","), r.Level, r.Note)
	}
	if p.Partial != nil {
		fmt.Fprintf(&b, "proposed partial spec: %s\n", p.Partial)
		for _, d := range p.Downgrades {
			fmt.Fprintf(&b, "  downgrade: %s\n", d)
		}
	}
	return b.String()
}

// CompileTo analyzes whether the joint policy's specification can run on
// the target and with what guarantees. It never modifies the policy; when
// the target cannot realize every strict boundary it proposes a partial
// specification with the lowest boundaries relaxed.
func (jp *JointPolicy) CompileTo(t Target) (*Plan, error) {
	if !t.Sorted && t.Queues < 1 {
		return nil, fmt.Errorf("core: target %q has no scheduling resources", t.Name)
	}
	plan := &Plan{Target: t, Feasible: true}
	spec := jp.Spec
	nt := len(spec.Tiers)

	// A device without rank rewriting cannot execute the pre-processor:
	// only whole-tier isolation via dedicated queues remains; intra-order
	// and sharing degrade.
	rewrite := t.Sorted || t.RankRewrite

	// Queue allocation: dedicated queues per tier (as deploySPQueues).
	if !t.Sorted {
		if t.Queues >= nt {
			plan.QueuesPerTier = make([]int, nt)
			base := t.Queues / nt
			extra := t.Queues % nt
			for i := range plan.QueuesPerTier {
				plan.QueuesPerTier[i] = base
				if i < extra {
					plan.QueuesPerTier[i]++
				}
			}
		} else {
			// Not enough queues to isolate every tier: propose a partial
			// spec that merges the lowest strict boundaries into
			// best-effort preferences until it fits.
			plan.Feasible = false
			partial := clone(spec)
			for len(partial.Tiers) > t.Queues {
				n := len(partial.Tiers)
				lo, lower := partial.Tiers[n-2], partial.Tiers[n-1]
				plan.Downgrades = append(plan.Downgrades, fmt.Sprintf(
					"strict boundary %q >> %q relaxed to best-effort preference",
					tierName(lo), tierName(lower)))
				merged := Tier2(lo, lower)
				partial.Tiers = append(partial.Tiers[:n-2], merged)
			}
			plan.Partial = partial
		}
	}

	// Grade the requirements.
	for i := 0; i < nt-1; i++ {
		upper, lower := spec.Tiers[i], spec.Tiers[i+1]
		req := Requirement{
			Kind:    ReqIsolation,
			Tenants: []string{tierName(upper), tierName(lower)},
		}
		switch {
		case t.Sorted:
			req.Level = GuaranteeExact
			req.Note = "disjoint rank bands on a sorting scheduler"
		case plan.QueuesPerTier != nil:
			req.Level = GuaranteeExact
			req.Note = "dedicated strict-priority queues per tier"
		case i < t.Queues-1:
			// The partial spec keeps the highest t.Queues-1 boundaries
			// strict; only the lowest ones are relaxed.
			req.Level = GuaranteeExact
			req.Note = "dedicated strict-priority queues per tier"
		default:
			req.Level = GuaranteeApprox
			req.Note = "relaxed to preference in the partial spec"
		}
		plan.Requirements = append(plan.Requirements, req)
	}
	for _, tier := range spec.Tiers {
		for li, lvl := range tier.Levels {
			if li < len(tier.Levels)-1 {
				plan.Requirements = append(plan.Requirements, Requirement{
					Kind:    ReqPreference,
					Tenants: []string{strings.Join(lvl.Tenants, "+"), strings.Join(tier.Levels[li+1].Tenants, "+")},
					Level:   prefLevel(t, rewrite),
					Note:    prefNote(t, rewrite),
				})
			}
			if len(lvl.Tenants) > 1 {
				req := Requirement{Kind: ReqSharing, Tenants: lvl.Tenants}
				switch {
				case t.Sorted && rewrite:
					req.Level = GuaranteeExact
					req.Note = "slot interleaving on a sorting scheduler"
				case rewrite:
					req.Level = GuaranteeApprox
					req.Note = "interleaved ranks coarsened by shared FIFO queues"
				default:
					req.Level = GuaranteeApprox
					req.Note = "FIFO mixing only; no rank interleaving without rewrite"
				}
				plan.Requirements = append(plan.Requirements, req)
			}
			for _, tenant := range lvl.Tenants {
				req := Requirement{Kind: ReqIntraOrder, Tenants: []string{tenant}}
				switch {
				case t.Sorted:
					req.Level = GuaranteeExact
					req.Note = "perfect rank sorting"
				case !rewrite:
					req.Level = GuaranteeNone
					req.Note = "no rank rewrite: tenant ranks are invisible to the device"
					plan.Feasible = false
				case t.Admission:
					req.Level = GuaranteeApprox
					req.Note = "rank range split across queues, admission trims inversions"
				default:
					req.Level = GuaranteeApprox
					req.Note = "rank range split across the tier's queues; inversions within a queue"
				}
				plan.Requirements = append(plan.Requirements, req)
			}
		}
	}
	return plan, nil
}

func prefLevel(t Target, rewrite bool) GuaranteeLevel {
	if t.Sorted && rewrite {
		return GuaranteeExact
	}
	if rewrite {
		return GuaranteeApprox
	}
	return GuaranteeNone
}

func prefNote(t Target, rewrite bool) string {
	if t.Sorted && rewrite {
		return "synthesized band overlap realized exactly"
	}
	if rewrite {
		return "band overlap coarsened by queue granularity"
	}
	return "preference needs the rank rewrite"
}

func tierName(t policy.Tier) string {
	var names []string
	for _, lvl := range t.Levels {
		names = append(names, lvl.Tenants...)
	}
	return strings.Join(names, "+")
}

// Tier2 merges two tiers into one, preserving each tier's internal
// preference order and relating the two by best-effort preference (the
// upper tier's levels come first).
func Tier2(upper, lower policy.Tier) policy.Tier {
	var out policy.Tier
	out.Levels = append(out.Levels, upper.Levels...)
	out.Levels = append(out.Levels, lower.Levels...)
	return out
}

func clone(s *policy.Spec) *policy.Spec {
	out := &policy.Spec{Tiers: make([]policy.Tier, len(s.Tiers))}
	for i, tier := range s.Tiers {
		out.Tiers[i].Levels = make([]policy.Level, len(tier.Levels))
		for j, lvl := range tier.Levels {
			out.Tiers[i].Levels[j].Tenants = append([]string(nil), lvl.Tenants...)
		}
	}
	return out
}
