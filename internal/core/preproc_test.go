package core

import (
	"errors"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
)

func fig3Policy(t *testing.T) *JointPolicy {
	t.Helper()
	tenants := []*Tenant{
		{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: rank.Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: rank.Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}
	return mustSynth(t, tenants, "T1 >> T2 + T3", SynthOptions{Base: 1})
}

// TestFigure3PIFOOrder drives the paper's Figure 3 end to end: the
// pre-processor transforms the arriving packets, the PIFO sorts them, and
// the output sequence satisfies the spec — all T1 packets first, then T2
// and T3 alternating.
func TestFigure3PIFOOrder(t *testing.T) {
	pp := NewPreprocessor(fig3Policy(t), UnknownWorst)
	pifo := sched.NewPIFO(sched.Config{})

	arrivals := []struct {
		tenant pkt.TenantID
		rank   int64
	}{
		{2, 3}, {3, 5}, {1, 9}, {1, 7}, {2, 1}, {3, 3}, {1, 8},
	}
	for i, a := range arrivals {
		p := &pkt.Packet{ID: uint64(i), Tenant: a.tenant, Rank: a.rank, Size: 100}
		if !pp.Process(p) {
			t.Fatalf("packet %d dropped", i)
		}
		pifo.Enqueue(p)
	}

	type out struct {
		tenant pkt.TenantID
		rank   int64
	}
	var got []out
	for p := pifo.Dequeue(); p != nil; p = pifo.Dequeue() {
		got = append(got, out{p.Tenant, p.Rank})
	}
	want := []out{
		{1, 1}, {1, 2}, {1, 3}, // all of T1, in pFabric order
		{2, 4}, {3, 5}, {2, 6}, {3, 7}, // T2 and T3 interleaved
	}
	if len(got) != len(want) {
		t.Fatalf("dequeued %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %+v, want %+v (full: %+v)", i, got[i], want[i], got)
		}
	}
	if st := pp.Stats(); st.Processed != 7 || st.Unknown != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownTenantWorst(t *testing.T) {
	jp := fig3Policy(t)
	pp := NewPreprocessor(jp, UnknownWorst)
	p := &pkt.Packet{Tenant: 99, Rank: 0}
	if !pp.Process(p) {
		t.Fatal("UnknownWorst must not drop")
	}
	if p.Rank != jp.Output.Hi+1 {
		t.Fatalf("unknown rank = %d, want %d", p.Rank, jp.Output.Hi+1)
	}
	if pp.Stats().Unknown != 1 {
		t.Fatalf("unknown count = %d", pp.Stats().Unknown)
	}
}

func TestUnknownTenantPass(t *testing.T) {
	pp := NewPreprocessor(fig3Policy(t), UnknownPass)
	p := &pkt.Packet{Tenant: 99, Rank: 1234}
	if !pp.Process(p) || p.Rank != 1234 {
		t.Fatalf("UnknownPass changed the packet: %+v", p)
	}
}

func TestUnknownTenantDrop(t *testing.T) {
	pp := NewPreprocessor(fig3Policy(t), UnknownDrop)
	if pp.Process(&pkt.Packet{Tenant: 99}) {
		t.Fatal("UnknownDrop must drop")
	}
}

func TestClampedCounting(t *testing.T) {
	pp := NewPreprocessor(fig3Policy(t), UnknownWorst)
	// T1 declared [7,9]: rank 100 is out of bounds.
	p := &pkt.Packet{Tenant: 1, Rank: 100}
	pp.Process(p)
	if pp.Stats().Clamped != 1 {
		t.Fatalf("clamped = %d, want 1", pp.Stats().Clamped)
	}
	// The transformed rank stays inside T1's band (isolation holds even
	// against out-of-contract ranks).
	tr := pp.Policy().Transforms[1]
	if !tr.OutputBounds().Contains(p.Rank) {
		t.Fatalf("clamped output %d outside band %v", p.Rank, tr.OutputBounds())
	}
}

func TestUpdateSwapsPolicy(t *testing.T) {
	jp1 := fig3Policy(t)
	pp := NewPreprocessor(jp1, UnknownWorst)
	tenants := []*Tenant{{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 7, Hi: 9}}}
	jp2, err := Synthesize(tenants, policy.MustParse("T1"), SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pp.Update(jp2)
	if pp.Policy() != jp2 {
		t.Fatal("Update did not swap the policy")
	}
	p := &pkt.Packet{Tenant: 2, Rank: 1}
	pp.Process(p)
	if p.Rank != jp2.Output.Hi+1 {
		t.Fatalf("tenant 2 should now be unknown; rank = %d", p.Rank)
	}
}

func TestProcessFrame(t *testing.T) {
	pp := NewPreprocessor(fig3Policy(t), UnknownDrop)
	l := pkt.Label{Version: pkt.LabelVersion, Tenant: 2, Rank: 3}
	frame := make([]byte, pkt.LabelSize+100) // label + payload
	if err := l.Encode(frame); err != nil {
		t.Fatal(err)
	}
	if err := pp.ProcessFrame(frame); err != nil {
		t.Fatal(err)
	}
	var out pkt.Label
	if err := out.UnmarshalBinary(frame); err != nil {
		t.Fatal(err)
	}
	if out.Rank != 6 { // T2: 3 → 6 per Figure 3
		t.Fatalf("frame rank = %d, want 6", out.Rank)
	}
	if out.Tenant != 2 {
		t.Fatalf("tenant changed: %d", out.Tenant)
	}
}

func TestProcessFrameErrors(t *testing.T) {
	pp := NewPreprocessor(fig3Policy(t), UnknownDrop)
	if err := pp.ProcessFrame(make([]byte, 3)); err == nil {
		t.Fatal("short frame should error")
	}
	l := pkt.Label{Version: pkt.LabelVersion, Tenant: 99, Rank: 1}
	frame := make([]byte, pkt.LabelSize)
	l.Encode(frame)
	err := pp.ProcessFrame(frame)
	var ut *ErrUnknownTenant
	if !errors.As(err, &ut) || ut.Tenant != 99 {
		t.Fatalf("err = %v, want ErrUnknownTenant{99}", err)
	}
	if ut.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestUnknownTenantActionString(t *testing.T) {
	for a, want := range map[UnknownTenantAction]string{
		UnknownWorst: "worst", UnknownPass: "pass", UnknownDrop: "drop",
		UnknownTenantAction(9): "unknown-action(9)",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func BenchmarkPreprocessorProcess(b *testing.B) {
	tenants := []*Tenant{
		{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 0, Hi: 1 << 20}},
		{ID: 2, Name: "T2", Bounds: rank.Bounds{Lo: 0, Hi: 10000}},
		{ID: 3, Name: "T3", Bounds: rank.Bounds{Lo: 0, Hi: 1 << 16}},
	}
	jp, err := Synthesize(tenants, policy.MustParse("T1 >> T2 + T3"), SynthOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pp := NewPreprocessor(jp, UnknownWorst)
	p := &pkt.Packet{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Tenant = pkt.TenantID(1 + i%3)
		p.Rank = int64(i & 8191)
		pp.Process(p)
	}
}

func BenchmarkPreprocessorFrame(b *testing.B) {
	pp := NewPreprocessor(fig3Benchmark(b), UnknownWorst)
	l := pkt.Label{Version: pkt.LabelVersion, Tenant: 2, Rank: 2}
	frame := make([]byte, pkt.LabelSize)
	l.Encode(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame[0] = pkt.LabelVersion // reset version (Encode rewrites it anyway)
		if err := pp.ProcessFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func fig3Benchmark(b *testing.B) *JointPolicy {
	b.Helper()
	tenants := []*Tenant{
		{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: rank.Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: rank.Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}
	jp, err := Synthesize(tenants, policy.MustParse("T1 >> T2 + T3"), SynthOptions{Base: 1})
	if err != nil {
		b.Fatal(err)
	}
	return jp
}
