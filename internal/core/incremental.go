package core

import (
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

// Resynthesizer produces the same joint policies as Synthesize while
// memoizing per-tier results, so that a single-tenant change recompiles
// only the tiers it touches. The unit of caching is one strict tier
// synthesized relative to base 0 (tierSynth): tiers are laid out
// contiguously and only Transform.Offset depends on where a tier lands,
// so a cached tier is re-shifted by the running base during assembly and
// the output is byte-identical to a full synthesis (proven by the
// differential test over seeded churn sequences).
//
// The cache key is a content hash over everything one tier's synthesis
// consumes: the level structure, each tenant's share weight, and each
// tenant's name, ID, resolved level count, and effective bounds. Any
// change to a tier — a tenant's bounds drifting, a weight edit, a
// structural rearrangement — changes its key and forces that tier (and
// only that tier) to recompute; untouched tiers hit the cache.
//
// Anything the fast path cannot prove valid (tenants out of spec order,
// structural anomalies a full synthesis would reject, invalid options)
// falls back to Synthesize wholesale, so error behavior is identical by
// construction.
//
// A Resynthesizer is not safe for concurrent use; the runtime controller
// owns one and serializes recompilations (the API server's mutex at
// control-plane rate).
type Resynthesizer struct {
	opts  SynthOptions // as given; defaults applied per call like Synthesize
	cache map[tierKey]*tierSynth

	// lastIdentity/lastByName reuse the previous ByName map when the
	// (name, ID) sequence is unchanged — the common case of a bounds or
	// weight edit — skipping the only O(tenants) string-keyed pass left.
	lastIdentity uint64
	lastByName   map[string]pkt.TenantID

	// scratch buffers reused across calls.
	keys   []tierKey
	counts []int

	stats ResynthStats
}

// ResynthStats counts Resynthesizer activity.
type ResynthStats struct {
	// Calls counts Resynthesize invocations.
	Calls uint64
	// Full counts calls that fell back to a full Synthesize.
	Full uint64
	// TierHits and TierMisses count per-tier cache outcomes on the
	// incremental path.
	TierHits   uint64
	TierMisses uint64
}

// tierKey identifies a cached tier: a content hash plus the tier's tenant
// count as a cheap collision guard (a colliding entry with a different
// tenant count is treated as a miss).
type tierKey struct {
	hash uint64
	n    int
}

// maxCachedTiers bounds the cache; on overflow the whole cache is
// dropped and repopulated by subsequent calls (simple and O(1) amortized
// — an LRU would buy little at control-plane rates).
const maxCachedTiers = 4096

// NewResynthesizer returns a memoizing synthesizer with the given
// options. The options are fixed for the Resynthesizer's lifetime (they
// feed the cache keys implicitly).
func NewResynthesizer(opts SynthOptions) *Resynthesizer {
	return &Resynthesizer{opts: opts, cache: make(map[tierKey]*tierSynth)}
}

// Stats returns a snapshot of the cache counters.
func (rs *Resynthesizer) Stats() ResynthStats { return rs.stats }

// full delegates to Synthesize, which reproduces the canonical error (or
// result) for inputs the fast path would not certify.
func (rs *Resynthesizer) full(tenants []*Tenant, spec *policy.Spec) (*JointPolicy, error) {
	rs.stats.Full++
	rs.lastByName = nil // conservatively drop map reuse across anomalies
	return Synthesize(tenants, spec, rs.opts)
}

// Resynthesize is Synthesize with per-tier memoization: identical
// results, identical errors. tenants must be the registered tenant set;
// the fast path additionally expects them in spec order (as the runtime
// controller builds them) and falls back to a full synthesis otherwise.
func (rs *Resynthesizer) Resynthesize(tenants []*Tenant, spec *policy.Spec) (*JointPolicy, error) {
	rs.stats.Calls++
	if err := rs.opts.validate(); err != nil {
		return rs.full(tenants, spec)
	}
	if spec == nil {
		return rs.full(tenants, spec)
	}
	opts := rs.opts.defaults()

	// Hashing walk: one pass over the spec computing each tier's content
	// key, verifying as it goes that the tenant slice is exactly the spec
	// order and that per-tier synthesis cannot fail. Any anomaly — and
	// any input a full synthesis would reject — bails out.
	if cap(rs.keys) < len(spec.Tiers) {
		rs.keys = make([]tierKey, len(spec.Tiers))
		rs.counts = make([]int, len(spec.Tiers))
	}
	keys := rs.keys[:len(spec.Tiers)]
	counts := rs.counts[:len(spec.Tiers)]
	identity := uint64(fnvOffset)
	k := 0
	for ti, tier := range spec.Tiers {
		if len(tier.Levels) == 0 {
			return rs.full(tenants, spec)
		}
		h := uint64(fnvOffset)
		nt := 0
		for _, lvl := range tier.Levels {
			if len(lvl.Tenants) == 0 {
				return rs.full(tenants, spec)
			}
			if lvl.Weights != nil && len(lvl.Weights) != len(lvl.Tenants) {
				return rs.full(tenants, spec)
			}
			h = fnvU64(h, uint64(len(lvl.Tenants)))
			for i, name := range lvl.Tenants {
				if name == "" || k >= len(tenants) || tenants[k].Name != name {
					return rs.full(tenants, spec)
				}
				if lvl.Weights != nil && lvl.Weights[i] < 1 {
					return rs.full(tenants, spec)
				}
				t := tenants[k]
				lt, err := tenantLevels(t, opts.DefaultLevels)
				if err != nil {
					return rs.full(tenants, spec)
				}
				b, err := t.EffectiveBounds()
				if err != nil {
					return rs.full(tenants, spec)
				}
				h = fnvStr(h, name)
				h = fnvU64(h, uint64(t.ID))
				h = fnvU64(h, uint64(b.Lo))
				h = fnvU64(h, uint64(b.Hi))
				h = fnvU64(h, uint64(lt))
				h = fnvU64(h, uint64(lvl.WeightOf(i)))
				identity = fnvStr(identity, name)
				identity = fnvU64(identity, uint64(t.ID))
				k++
				nt++
			}
		}
		keys[ti] = tierKey{hash: h, n: nt}
		counts[ti] = nt
	}
	if k != len(tenants) {
		// Registered tenants the spec does not reference: canonical error
		// via the full path.
		return rs.full(tenants, spec)
	}

	// ByName: reuse the previous map when the (name, ID) sequence is
	// unchanged (its content would be rebuilt identically; JointPolicy
	// maps are read-only once published). Otherwise rebuild with the
	// duplicate checks a full synthesis performs.
	byName := rs.lastByName
	reuse := byName != nil && identity == rs.lastIdentity
	if !reuse {
		byName = make(map[string]pkt.TenantID, len(tenants))
		seenID := make(map[pkt.TenantID]bool, len(tenants))
		for _, t := range tenants {
			if _, dup := byName[t.Name]; dup {
				return rs.full(tenants, spec)
			}
			if seenID[t.ID] {
				return rs.full(tenants, spec)
			}
			byName[t.Name] = t.ID
			seenID[t.ID] = true
		}
	}

	// Assembly: shift each tier (cached or freshly synthesized) onto the
	// running base.
	jp := &JointPolicy{
		Spec:       spec,
		Transforms: make(map[pkt.TenantID]Transform, len(tenants)),
		ByName:     byName,
		Tiers:      make([]TierPlan, 0, len(spec.Tiers)),
	}
	base := opts.Base
	k = 0
	for ti, tier := range spec.Tiers {
		ts, ok := rs.cache[keys[ti]]
		if ok && len(ts.ids) == counts[ti] {
			rs.stats.TierHits++
		} else {
			var err error
			ts, err = synthesizeTier(tier, tenants[k:k+counts[ti]], opts)
			if err != nil {
				// Unreachable: the hashing walk performed the same calls.
				return rs.full(tenants, spec)
			}
			if len(rs.cache) >= maxCachedTiers {
				rs.cache = make(map[tierKey]*tierSynth)
			}
			rs.cache[keys[ti]] = ts
			rs.stats.TierMisses++
		}
		k += counts[ti]
		for i, id := range ts.ids {
			tr := ts.rel[i]
			tr.Offset += base
			jp.Transforms[id] = tr
		}
		jp.Tiers = append(jp.Tiers, TierPlan{
			Bounds:  rank.Bounds{Lo: base, Hi: base + ts.width - 1},
			Tenants: ts.names,
		})
		base += ts.width
	}
	jp.Output = rank.Bounds{Lo: opts.Base, Hi: base - 1}
	rs.lastIdentity = identity
	rs.lastByName = byName
	return jp, nil
}

// The tier content keys mix with FNV-1a for strings and a
// splitmix64-style round for integers. The hashing walk runs on every
// recompilation, so the integer path is three multiplies instead of
// FNV's eight byte rounds — it showed up as a third of the incremental
// profile before. Both are order-sensitive; a 64-bit key over a cache
// capped at 4096 entries makes accidental collisions (which the n guard
// further narrows) negligible.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	v *= 0x9e3779b97f4a7c15 // splitmix64 finalizer on the value...
	v ^= v >> 29
	v *= 0xbf58476d1ce4e5b9
	return (h ^ v) * fnvPrime // ...then an order-sensitive combine
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return (h ^ 0xff) * fnvPrime // terminator: ("ab","c") ≠ ("a","bc")
}
