package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run %s -update` to create it)", err, t.Name())
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file %s:\n--- got\n%s--- want\n%s", t.Name(), path, got, want)
	}
}

// TestDescribeGolden pins the human-readable rendering of representative
// joint policies: the paper's Figure 3 sharing example, a full three-tier
// composition, and a weighted share. Operators read this output (and the
// docs quote it), so it must not drift silently.
func TestDescribeGolden(t *testing.T) {
	cases := []struct {
		name    string
		tenants []*Tenant
		spec    string
		opts    SynthOptions
	}{
		{
			// Figure 3: two tenants sharing, interleaved slots, base 1.
			name: "describe_share",
			tenants: []*Tenant{
				{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 1, Hi: 4}},
				{ID: 2, Name: "T2", Bounds: rank.Bounds{Lo: 1, Hi: 2}},
			},
			spec: "T1 + T2",
			opts: SynthOptions{Base: 1},
		},
		{
			name: "describe_three_tier",
			tenants: []*Tenant{
				{ID: 1, Name: "gold", Bounds: rank.Bounds{Lo: 0, Hi: 1000}, Levels: 16},
				{ID: 2, Name: "silver", Bounds: rank.Bounds{Lo: 0, Hi: 500}, Levels: 8},
				{ID: 3, Name: "bronze", Bounds: rank.Bounds{Lo: 0, Hi: 100}, Levels: 4},
				{ID: 4, Name: "scavenger", Bounds: rank.Bounds{Lo: 0, Hi: 10}},
			},
			spec: "gold >> silver > bronze >> scavenger",
			opts: SynthOptions{},
		},
		{
			name: "describe_weighted",
			tenants: []*Tenant{
				{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: 63}, Levels: 8},
				{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: 63}, Levels: 8},
			},
			spec: "a*3 + b",
			opts: SynthOptions{},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			jp, err := Synthesize(c.tenants, policy.MustParse(c.spec), c.opts)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, jp.Describe())
		})
	}
}

// TestDescribeUnknownTenant: TransformOf on an undefined name must report
// absence, and Describe must stay well-formed for single-tenant policies.
func TestDescribeUnknownTenant(t *testing.T) {
	jp, err := Synthesize([]*Tenant{
		{ID: pkt.TenantID(1), Name: "solo", Bounds: rank.Bounds{Lo: 0, Hi: 9}},
	}, policy.MustParse("solo"), SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := jp.TransformOf("ghost"); ok {
		t.Fatal("TransformOf found an undefined tenant")
	}
	if jp.Describe() == "" {
		t.Fatal("empty Describe output")
	}
}
