package core

import (
	"testing"
	"testing/quick"

	"qvisor/internal/rank"
)

func TestIdentityTransform(t *testing.T) {
	tr := IdentityTransform(rank.Bounds{Lo: 5, Hi: 15})
	for r := int64(5); r <= 15; r++ {
		if got := tr.Apply(r); got != r {
			t.Fatalf("identity Apply(%d) = %d", r, got)
		}
	}
	if got := tr.Apply(0); got != 5 {
		t.Fatalf("below-range Apply(0) = %d, want clamp to 5", got)
	}
	if got := tr.Apply(99); got != 15 {
		t.Fatalf("above-range Apply(99) = %d, want clamp to 15", got)
	}
}

func TestQuantizeAffineStretch(t *testing.T) {
	tr := Transform{Lo: 0, Hi: 9, Levels: 5, Stride: 1}
	// Affine stretch of [0,9] onto [0,4]: level = r*4/9.
	wants := []int64{0, 0, 0, 1, 1, 2, 2, 3, 3, 4}
	for r, want := range wants {
		if got := tr.Quantize(int64(r)); got != want {
			t.Fatalf("Quantize(%d) = %d, want %d", r, got, want)
		}
	}
	// Lo maps to 0 and Hi maps exactly to Levels-1.
	if tr.Quantize(0) != 0 || tr.Quantize(9) != 4 {
		t.Fatal("edges must map to the extreme levels")
	}
}

func TestQuantizeStretchesNarrowOntoWide(t *testing.T) {
	// A narrow distribution occupies the full normalized scale — the
	// property that lets heterogeneous tenants be "fairly compared".
	narrow := Transform{Lo: 0, Hi: 10, Levels: 1000, Stride: 1}
	if got := narrow.Quantize(10); got != 999 {
		t.Fatalf("narrow Hi → %d, want 999", got)
	}
	if got := narrow.Quantize(5); got < 450 || got > 550 {
		t.Fatalf("narrow midpoint → %d, want ~500", got)
	}
}

func TestQuantizeExtremeSpansNoOverflow(t *testing.T) {
	tr := Transform{Lo: 0, Hi: 1 << 50, Levels: 1 << 40, Stride: 1}
	if got := tr.Quantize(1 << 50); got != (1<<40)-1 {
		t.Fatalf("extreme Hi → %d, want %d", got, int64(1<<40)-1)
	}
	mid := tr.Quantize(1 << 49)
	if mid < (1<<39)-(1<<20) || mid > (1<<39)+(1<<20) {
		t.Fatalf("extreme midpoint → %d, want ~%d", mid, int64(1)<<39)
	}
}

func TestQuantizeSingleLevel(t *testing.T) {
	tr := Transform{Lo: 0, Hi: 100, Levels: 1, Stride: 1}
	for _, r := range []int64{0, 50, 100} {
		if got := tr.Quantize(r); got != 0 {
			t.Fatalf("Quantize(%d) = %d, want 0", r, got)
		}
	}
}

func TestQuantizeDegenerateBounds(t *testing.T) {
	tr := Transform{Lo: 7, Hi: 7, Levels: 4, Stride: 1}
	if got := tr.Quantize(7); got != 0 {
		t.Fatalf("Quantize on point bounds = %d, want 0", got)
	}
}

func TestApplyInterleaving(t *testing.T) {
	// Two sharing tenants, stride 2: phases 0 and 1 interleave.
	a := Transform{Lo: 0, Hi: 1, Levels: 2, Stride: 2, Phase: 0, Offset: 10}
	b := Transform{Lo: 0, Hi: 1, Levels: 2, Stride: 2, Phase: 1, Offset: 10}
	if a.Apply(0) != 10 || b.Apply(0) != 11 || a.Apply(1) != 12 || b.Apply(1) != 13 {
		t.Fatalf("interleaving wrong: %d %d %d %d",
			a.Apply(0), b.Apply(0), a.Apply(1), b.Apply(1))
	}
}

func TestOutputBounds(t *testing.T) {
	tr := Transform{Lo: 0, Hi: 9, Levels: 4, Stride: 3, Phase: 2, Offset: 100}
	want := rank.Bounds{Lo: 102, Hi: 100 + 3*3 + 2}
	if got := tr.OutputBounds(); got != want {
		t.Fatalf("OutputBounds = %v, want %v", got, want)
	}
	// Every applied rank falls inside the declared output bounds.
	for r := int64(-5); r < 20; r++ {
		if out := tr.Apply(r); !want.Contains(out) {
			t.Fatalf("Apply(%d) = %d outside %v", r, out, want)
		}
	}
}

// TestPropertyTransformMonotone: transforms never invert intra-tenant rank
// order — the paper's requirement that normalization preserves each
// tenant's scheduling behaviour ("without loosing their intra-tenant
// scheduling behavior", §3.2).
func TestPropertyTransformMonotone(t *testing.T) {
	f := func(lo int32, span uint16, levels uint8, stride uint8, r1, r2 int32) bool {
		tr := Transform{
			Lo:     int64(lo),
			Hi:     int64(lo) + int64(span),
			Levels: int64(levels%64) + 1,
			Stride: int64(stride%8) + 1,
			Offset: 1000,
		}
		a, b := int64(r1), int64(r2)
		if a > b {
			a, b = b, a
		}
		return tr.Apply(a) <= tr.Apply(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQuantizeWithinLevels: quantization always lands in
// [0, Levels).
func TestPropertyQuantizeWithinLevels(t *testing.T) {
	f := func(lo int32, span uint16, levels uint8, r int32) bool {
		tr := Transform{
			Lo:     int64(lo),
			Hi:     int64(lo) + int64(span),
			Levels: int64(levels%100) + 1,
			Stride: 1,
		}
		q := tr.Quantize(int64(r))
		return q >= 0 && q < tr.Levels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformString(t *testing.T) {
	tr := Transform{Lo: 1, Hi: 3, Levels: 2, Stride: 2, Phase: 1, Offset: 4}
	if s := tr.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkTransformApply(b *testing.B) {
	tr := Transform{Lo: 0, Hi: 1 << 20, Levels: 64, Stride: 2, Phase: 1, Offset: 128}
	b.ReportAllocs()
	acc := int64(0)
	for i := 0; i < b.N; i++ {
		acc += tr.Apply(int64(i) & (1<<20 - 1))
	}
	_ = acc
}
