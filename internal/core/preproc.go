package core

import (
	"fmt"

	"qvisor/internal/obs"
	"qvisor/internal/pkt"
)

// UnknownTenantAction selects what the pre-processor does with packets
// whose tenant label has no transformation.
type UnknownTenantAction int

const (
	// UnknownWorst re-ranks unknown traffic to one past the joint
	// policy's worst rank, so it only uses leftover capacity (default).
	UnknownWorst UnknownTenantAction = iota
	// UnknownPass forwards the packet with its rank unchanged.
	UnknownPass
	// UnknownDrop rejects the packet.
	UnknownDrop
)

// String implements fmt.Stringer.
func (a UnknownTenantAction) String() string {
	switch a {
	case UnknownWorst:
		return "worst"
	case UnknownPass:
		return "pass"
	case UnknownDrop:
		return "drop"
	default:
		return fmt.Sprintf("unknown-action(%d)", int(a))
	}
}

// ErrUnknownTenant is reported by Process when a packet's tenant has no
// transformation and the action is UnknownDrop.
type ErrUnknownTenant struct {
	Tenant pkt.TenantID
}

// Error implements error.
func (e *ErrUnknownTenant) Error() string {
	return fmt.Sprintf("core: no transformation for tenant %d", e.Tenant)
}

// PreprocStats counts pre-processor activity.
type PreprocStats struct {
	// Processed counts packets whose rank was rewritten.
	Processed uint64
	// Unknown counts packets with an unrecognized tenant label.
	Unknown uint64
	// Clamped counts packets whose incoming rank fell outside the
	// tenant's declared bounds (a signal the monitor uses for
	// adversarial-workload detection, §2).
	Clamped uint64
}

// Preprocessor is QVISOR's data-plane component (§3.3): for each incoming
// packet it extracts the tenant identifier and packet rank, looks up the
// tenant's transformation functions, rewrites the rank, and forwards the
// packet to the hardware scheduler.
//
// The transform table is swapped atomically (from the simulator's
// perspective) by Update when the runtime controller re-synthesizes the
// joint policy.
type Preprocessor struct {
	jp     *JointPolicy
	action UnknownTenantAction
	stats  PreprocStats
	obs    *preprocObs

	// flat is the joint policy compiled to a dense per-tenant transform
	// array for the batched path (see ApplyBatch); nil when the tenant ID
	// range is too sparse to justify a dense table.
	flat *flatTable
	// dropScratch is ApplyBatch's reusable staging area for dropped
	// packets, so the batched path stays allocation-free in steady state.
	dropScratch []*pkt.Packet
}

// flatTransform is one slot of the dense transform table: Transform's
// fields pre-resolved (weight defaulted, quantization regime chosen, the
// degenerate span/levels cases folded into m=0/div=1) so the per-packet
// rewrite is branch-free arithmetic with no map access.
type flatTransform struct {
	lo, hi   int64 // original clamp bounds (for the Clamped counter)
	span     int64 // hi-lo: upper clamp of d
	m        int64 // Levels-1: quantization numerator
	w        int64 // weight, defaulted to 1
	stride   int64
	phase    int64
	offset   int64
	constOut int64 // precomputed output when the quantizer is degenerate
	floatQ   bool  // quantize via the monotone float fallback
	isConst  bool  // degenerate quantizer (span ≤ 0 or Levels ≤ 1)
	valid    bool  // false = no transform for this tenant slot
}

// flatTable is the compiled joint policy: slot i holds the transform of
// tenant min+i.
type flatTable struct {
	min   pkt.TenantID
	slots []flatTransform
}

// maxFlatTenantSpan bounds the dense table: a tenant ID range wider than
// this (possible only with adversarially sparse IDs — synthesis assigns
// them densely) falls back to the map-based per-packet path.
const maxFlatTenantSpan = 1 << 14

// buildFlatTable compiles the joint policy's transform map into the dense
// array, or returns nil when the ID range exceeds maxFlatTenantSpan.
func buildFlatTable(jp *JointPolicy) *flatTable {
	if jp == nil || len(jp.Transforms) == 0 {
		return nil
	}
	first := true
	var min, max pkt.TenantID
	for id := range jp.Transforms {
		if first {
			min, max = id, id
			first = false
			continue
		}
		if id < min {
			min = id
		}
		if id > max {
			max = id
		}
	}
	if int(max-min) >= maxFlatTenantSpan {
		return nil
	}
	ft := &flatTable{min: min, slots: make([]flatTransform, int(max-min)+1)}
	for id, tr := range jp.Transforms {
		s := &ft.slots[id-min]
		s.lo, s.hi = tr.Lo, tr.Hi
		s.w = 1
		if tr.Weight > 0 {
			s.w = tr.Weight
		}
		s.stride, s.phase, s.offset = tr.Stride, tr.Phase, tr.Offset
		span, m := tr.Hi-tr.Lo, tr.Levels-1
		if span <= 0 || m <= 0 {
			// Degenerate quantizer: Quantize pins the level to 0, which
			// Apply then clamps to Levels-1 when that is lower, so the
			// output is one constant rank — precompute it with the same
			// truncating div/mod Apply uses.
			s.isConst = true
			lvl := int64(0)
			if m < 0 {
				lvl = m
			}
			s.constOut = tr.Offset + (lvl/s.w)*tr.Stride + tr.Phase + lvl%s.w
		} else {
			s.span, s.m = span, m
			s.floatQ = m > (1<<62)/(span+1)
		}
		s.valid = true
	}
	return ft
}

// Metric families exported by an instrumented pre-processor.
const (
	MetricPreprocProcessed = "qvisor_preproc_processed_total"
	MetricPreprocClamped   = "qvisor_preproc_clamped_total"
	MetricPreprocUnknown   = "qvisor_preproc_unknown_total"
	MetricPreprocRankShift = "qvisor_preproc_rank_shift"
)

// preprocObs holds the registry-backed instruments of one pre-processor:
// per-tenant counters plus a rank-shift magnitude histogram, resolved to
// direct handles per tenant ID so the per-packet cost is one map lookup.
type preprocObs struct {
	reg     *obs.Registry
	nameOf  func(pkt.TenantID) string
	unknown *obs.Counter
	tenants map[pkt.TenantID]preprocTenantObs
}

type preprocTenantObs struct {
	processed *obs.Counter
	clamped   *obs.Counter
	shift     *obs.Histogram
}

// EnableMetrics mirrors the pre-processor's counters into reg, labeled per
// tenant. nameOf maps tenant IDs to the names used as label values; nil
// falls back to "tenant-<id>". A nil registry disables instrumentation
// (the default, zero-overhead state). The instrument table is rebuilt on
// every Update so re-synthesized policies keep their series.
func (pp *Preprocessor) EnableMetrics(reg *obs.Registry, nameOf func(pkt.TenantID) string) {
	if reg == nil {
		pp.obs = nil
		return
	}
	if nameOf == nil {
		nameOf = func(id pkt.TenantID) string { return fmt.Sprintf("tenant-%d", id) }
	}
	pp.obs = &preprocObs{
		reg:    reg,
		nameOf: nameOf,
		unknown: reg.Counter(MetricPreprocUnknown,
			"Packets whose tenant label has no transformation."),
	}
	pp.obs.rebuild(pp.jp)
}

func (o *preprocObs) rebuild(jp *JointPolicy) {
	o.tenants = make(map[pkt.TenantID]preprocTenantObs, len(jp.Transforms))
	for id := range jp.Transforms {
		l := obs.L("tenant", o.nameOf(id))
		o.tenants[id] = preprocTenantObs{
			processed: o.reg.Counter(MetricPreprocProcessed,
				"Packets whose rank the pre-processor rewrote.", l),
			clamped: o.reg.Counter(MetricPreprocClamped,
				"Packets whose incoming rank fell outside the tenant's declared bounds.", l),
			shift: o.reg.Histogram(MetricPreprocRankShift,
				"Absolute rank-rewrite magnitude |joint - tenant| (log2 buckets).", l),
		}
	}
}

// NewPreprocessor returns a pre-processor executing the given joint policy.
func NewPreprocessor(jp *JointPolicy, action UnknownTenantAction) *Preprocessor {
	return &Preprocessor{jp: jp, action: action, flat: buildFlatTable(jp)}
}

// Policy returns the joint policy currently deployed.
func (pp *Preprocessor) Policy() *JointPolicy { return pp.jp }

// Update deploys a new joint policy. Packets processed afterwards use the
// new transformations — the event-driven reconfiguration of §2 (Idea 2).
func (pp *Preprocessor) Update(jp *JointPolicy) {
	pp.jp = jp
	pp.flat = buildFlatTable(jp)
	if pp.obs != nil {
		pp.obs.rebuild(jp)
	}
}

// Stats returns a snapshot of the counters.
func (pp *Preprocessor) Stats() PreprocStats { return pp.stats }

// Clone returns a pre-processor with private stats counters that shares
// this one's joint policy and registry instruments. The sharded simulator
// gives each shard a clone so Process never writes shared plain memory:
// the policy is read-only during a run and the registry instruments are
// atomic. Update must not run concurrently with clones processing
// packets. Clone of nil is nil.
func (pp *Preprocessor) Clone() *Preprocessor {
	if pp == nil {
		return nil
	}
	// The flat table is read-only during a run, so clones share it; the
	// drop scratch is per-clone written state and stays private.
	return &Preprocessor{jp: pp.jp, action: pp.action, obs: pp.obs, flat: pp.flat}
}

// Absorb folds another pre-processor's counters into this one — how
// per-shard clone stats roll back up into the parent after a sharded run.
func (pp *Preprocessor) Absorb(st PreprocStats) {
	pp.stats.Processed += st.Processed
	pp.stats.Unknown += st.Unknown
	pp.stats.Clamped += st.Clamped
}

// Process rewrites p.Rank according to the joint policy. It returns false
// if the packet must be dropped (unknown tenant under UnknownDrop).
func (pp *Preprocessor) Process(p *pkt.Packet) bool {
	tr, ok := pp.jp.Transforms[p.Tenant]
	if !ok {
		pp.stats.Unknown++
		if pp.obs != nil {
			pp.obs.unknown.Inc()
		}
		switch pp.action {
		case UnknownPass:
			return true
		case UnknownDrop:
			return false
		default: // UnknownWorst
			p.Rank = pp.jp.Output.Hi + 1
			return true
		}
	}
	clamped := p.Rank < tr.Lo || p.Rank > tr.Hi
	if clamped {
		pp.stats.Clamped++
	}
	in := p.Rank
	p.Rank = tr.Apply(p.Rank)
	pp.stats.Processed++
	if pp.obs != nil {
		if to, ok := pp.obs.tenants[p.Tenant]; ok {
			to.processed.Inc()
			if clamped {
				to.clamped.Inc()
			}
			shift := p.Rank - in
			if shift < 0 {
				shift = -shift
			}
			to.shift.Observe(shift)
		}
	}
	return true
}

// ApplyBatch rewrites the ranks of a whole batch of packets in one pass,
// byte-identical to calling Process on each packet in order (same ranks,
// same stats, same drop decisions) but without per-packet map lookups:
// tenants resolve through the dense flat table and the quantize+placement
// arithmetic is branch-free (the clamp rides the clamp-statistics check). It returns the number of packets kept:
// ps[:kept] holds them in their original relative order, ps[kept:] the
// dropped packets (unknown tenant under UnknownDrop), also in order, for
// the caller to release. Steady state allocates nothing.
//
// The instrumented (EnableMetrics) and sparse-tenant configurations fall
// back to per-packet Process calls — identical observable behaviour,
// amortization lost.
func (pp *Preprocessor) ApplyBatch(ps []*pkt.Packet) int {
	if pp.flat == nil || pp.obs != nil {
		return pp.applyBatchSlow(ps)
	}
	t := pp.flat
	unknownRank := pp.jp.Output.Hi + 1
	kept := 0
	for _, p := range ps {
		i := int(p.Tenant) - int(t.min)
		if i < 0 || i >= len(t.slots) || !t.slots[i].valid {
			pp.stats.Unknown++
			switch pp.action {
			case UnknownPass:
			case UnknownDrop:
				pp.dropScratch = append(pp.dropScratch, p)
				continue
			default: // UnknownWorst
				p.Rank = unknownRank
			}
			ps[kept] = p
			kept++
			continue
		}
		s := &t.slots[i]
		r := p.Rank
		// The clamp is folded into the mandatory clamp-statistics check:
		// in-range ranks (the hot path) take one predicted-not-taken
		// compare and a subtraction, and out-of-range ranks pin d to the
		// boundary without ever subtracting (overflow-safe for extreme
		// ranks, matching Quantize's clamp-before-subtract order).
		d := r - s.lo
		if r < s.lo || r > s.hi {
			pp.stats.Clamped++
			d = 0
			if r > s.hi {
				d = s.span
			}
		}
		if s.isConst {
			p.Rank = s.constOut
		} else {
			var lvl int64
			if s.floatQ {
				lvl = int64(float64(d) / float64(s.span) * float64(s.m))
				if lvl > s.m {
					lvl = s.m
				}
			} else {
				lvl = d * s.m / s.span
			}
			p.Rank = s.offset + (lvl/s.w)*s.stride + s.phase + lvl%s.w
		}
		pp.stats.Processed++
		ps[kept] = p
		kept++
	}
	if len(pp.dropScratch) > 0 {
		copy(ps[kept:], pp.dropScratch)
		pp.dropScratch = pp.dropScratch[:0]
	}
	return kept
}

// applyBatchSlow is ApplyBatch's fallback: per-packet Process calls with
// the same kept/dropped compaction contract.
func (pp *Preprocessor) applyBatchSlow(ps []*pkt.Packet) int {
	kept := 0
	for _, p := range ps {
		if pp.Process(p) {
			ps[kept] = p
			kept++
		} else {
			pp.dropScratch = append(pp.dropScratch, p)
		}
	}
	if len(pp.dropScratch) > 0 {
		copy(ps[kept:], pp.dropScratch)
		pp.dropScratch = pp.dropScratch[:0]
	}
	return kept
}

// ProcessFrame parses a wire-format QVISOR label at the start of frame,
// applies the transformation, and writes the updated label back in place.
// This is the path a hardware deployment would take; the simulator uses
// Process directly on packet structs.
func (pp *Preprocessor) ProcessFrame(frame []byte) error {
	var l pkt.Label
	if err := l.UnmarshalBinary(frame); err != nil {
		return err
	}
	p := pkt.Packet{Tenant: l.Tenant, Rank: l.Rank}
	if !pp.Process(&p) {
		return &ErrUnknownTenant{Tenant: l.Tenant}
	}
	l.Rank = p.Rank
	return l.Encode(frame)
}
