package core

import (
	"fmt"

	"qvisor/internal/obs"
	"qvisor/internal/pkt"
)

// UnknownTenantAction selects what the pre-processor does with packets
// whose tenant label has no transformation.
type UnknownTenantAction int

const (
	// UnknownWorst re-ranks unknown traffic to one past the joint
	// policy's worst rank, so it only uses leftover capacity (default).
	UnknownWorst UnknownTenantAction = iota
	// UnknownPass forwards the packet with its rank unchanged.
	UnknownPass
	// UnknownDrop rejects the packet.
	UnknownDrop
)

// String implements fmt.Stringer.
func (a UnknownTenantAction) String() string {
	switch a {
	case UnknownWorst:
		return "worst"
	case UnknownPass:
		return "pass"
	case UnknownDrop:
		return "drop"
	default:
		return fmt.Sprintf("unknown-action(%d)", int(a))
	}
}

// ErrUnknownTenant is reported by Process when a packet's tenant has no
// transformation and the action is UnknownDrop.
type ErrUnknownTenant struct {
	Tenant pkt.TenantID
}

// Error implements error.
func (e *ErrUnknownTenant) Error() string {
	return fmt.Sprintf("core: no transformation for tenant %d", e.Tenant)
}

// PreprocStats counts pre-processor activity.
type PreprocStats struct {
	// Processed counts packets whose rank was rewritten.
	Processed uint64
	// Unknown counts packets with an unrecognized tenant label.
	Unknown uint64
	// Clamped counts packets whose incoming rank fell outside the
	// tenant's declared bounds (a signal the monitor uses for
	// adversarial-workload detection, §2).
	Clamped uint64
}

// Preprocessor is QVISOR's data-plane component (§3.3): for each incoming
// packet it extracts the tenant identifier and packet rank, looks up the
// tenant's transformation functions, rewrites the rank, and forwards the
// packet to the hardware scheduler.
//
// The transform table is swapped atomically (from the simulator's
// perspective) by Update when the runtime controller re-synthesizes the
// joint policy.
type Preprocessor struct {
	jp     *JointPolicy
	action UnknownTenantAction
	stats  PreprocStats
	obs    *preprocObs
}

// Metric families exported by an instrumented pre-processor.
const (
	MetricPreprocProcessed = "qvisor_preproc_processed_total"
	MetricPreprocClamped   = "qvisor_preproc_clamped_total"
	MetricPreprocUnknown   = "qvisor_preproc_unknown_total"
	MetricPreprocRankShift = "qvisor_preproc_rank_shift"
)

// preprocObs holds the registry-backed instruments of one pre-processor:
// per-tenant counters plus a rank-shift magnitude histogram, resolved to
// direct handles per tenant ID so the per-packet cost is one map lookup.
type preprocObs struct {
	reg     *obs.Registry
	nameOf  func(pkt.TenantID) string
	unknown *obs.Counter
	tenants map[pkt.TenantID]preprocTenantObs
}

type preprocTenantObs struct {
	processed *obs.Counter
	clamped   *obs.Counter
	shift     *obs.Histogram
}

// EnableMetrics mirrors the pre-processor's counters into reg, labeled per
// tenant. nameOf maps tenant IDs to the names used as label values; nil
// falls back to "tenant-<id>". A nil registry disables instrumentation
// (the default, zero-overhead state). The instrument table is rebuilt on
// every Update so re-synthesized policies keep their series.
func (pp *Preprocessor) EnableMetrics(reg *obs.Registry, nameOf func(pkt.TenantID) string) {
	if reg == nil {
		pp.obs = nil
		return
	}
	if nameOf == nil {
		nameOf = func(id pkt.TenantID) string { return fmt.Sprintf("tenant-%d", id) }
	}
	pp.obs = &preprocObs{
		reg:    reg,
		nameOf: nameOf,
		unknown: reg.Counter(MetricPreprocUnknown,
			"Packets whose tenant label has no transformation."),
	}
	pp.obs.rebuild(pp.jp)
}

func (o *preprocObs) rebuild(jp *JointPolicy) {
	o.tenants = make(map[pkt.TenantID]preprocTenantObs, len(jp.Transforms))
	for id := range jp.Transforms {
		l := obs.L("tenant", o.nameOf(id))
		o.tenants[id] = preprocTenantObs{
			processed: o.reg.Counter(MetricPreprocProcessed,
				"Packets whose rank the pre-processor rewrote.", l),
			clamped: o.reg.Counter(MetricPreprocClamped,
				"Packets whose incoming rank fell outside the tenant's declared bounds.", l),
			shift: o.reg.Histogram(MetricPreprocRankShift,
				"Absolute rank-rewrite magnitude |joint - tenant| (log2 buckets).", l),
		}
	}
}

// NewPreprocessor returns a pre-processor executing the given joint policy.
func NewPreprocessor(jp *JointPolicy, action UnknownTenantAction) *Preprocessor {
	return &Preprocessor{jp: jp, action: action}
}

// Policy returns the joint policy currently deployed.
func (pp *Preprocessor) Policy() *JointPolicy { return pp.jp }

// Update deploys a new joint policy. Packets processed afterwards use the
// new transformations — the event-driven reconfiguration of §2 (Idea 2).
func (pp *Preprocessor) Update(jp *JointPolicy) {
	pp.jp = jp
	if pp.obs != nil {
		pp.obs.rebuild(jp)
	}
}

// Stats returns a snapshot of the counters.
func (pp *Preprocessor) Stats() PreprocStats { return pp.stats }

// Clone returns a pre-processor with private stats counters that shares
// this one's joint policy and registry instruments. The sharded simulator
// gives each shard a clone so Process never writes shared plain memory:
// the policy is read-only during a run and the registry instruments are
// atomic. Update must not run concurrently with clones processing
// packets. Clone of nil is nil.
func (pp *Preprocessor) Clone() *Preprocessor {
	if pp == nil {
		return nil
	}
	return &Preprocessor{jp: pp.jp, action: pp.action, obs: pp.obs}
}

// Absorb folds another pre-processor's counters into this one — how
// per-shard clone stats roll back up into the parent after a sharded run.
func (pp *Preprocessor) Absorb(st PreprocStats) {
	pp.stats.Processed += st.Processed
	pp.stats.Unknown += st.Unknown
	pp.stats.Clamped += st.Clamped
}

// Process rewrites p.Rank according to the joint policy. It returns false
// if the packet must be dropped (unknown tenant under UnknownDrop).
func (pp *Preprocessor) Process(p *pkt.Packet) bool {
	tr, ok := pp.jp.Transforms[p.Tenant]
	if !ok {
		pp.stats.Unknown++
		if pp.obs != nil {
			pp.obs.unknown.Inc()
		}
		switch pp.action {
		case UnknownPass:
			return true
		case UnknownDrop:
			return false
		default: // UnknownWorst
			p.Rank = pp.jp.Output.Hi + 1
			return true
		}
	}
	clamped := p.Rank < tr.Lo || p.Rank > tr.Hi
	if clamped {
		pp.stats.Clamped++
	}
	in := p.Rank
	p.Rank = tr.Apply(p.Rank)
	pp.stats.Processed++
	if pp.obs != nil {
		if to, ok := pp.obs.tenants[p.Tenant]; ok {
			to.processed.Inc()
			if clamped {
				to.clamped.Inc()
			}
			shift := p.Rank - in
			if shift < 0 {
				shift = -shift
			}
			to.shift.Observe(shift)
		}
	}
	return true
}

// ProcessFrame parses a wire-format QVISOR label at the start of frame,
// applies the transformation, and writes the updated label back in place.
// This is the path a hardware deployment would take; the simulator uses
// Process directly on packet structs.
func (pp *Preprocessor) ProcessFrame(frame []byte) error {
	var l pkt.Label
	if err := l.UnmarshalBinary(frame); err != nil {
		return err
	}
	p := pkt.Packet{Tenant: l.Tenant, Rank: l.Rank}
	if !pp.Process(&p) {
		return &ErrUnknownTenant{Tenant: l.Tenant}
	}
	l.Rank = p.Rank
	return l.Encode(frame)
}
