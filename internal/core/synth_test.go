package core

import (
	"encoding/json"
	"strings"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

func tenant(id pkt.TenantID, name string, lo, hi int64) *Tenant {
	return &Tenant{ID: id, Name: name, Bounds: rank.Bounds{Lo: lo, Hi: hi}}
}

func mustSynth(t *testing.T, tenants []*Tenant, spec string, opts SynthOptions) *JointPolicy {
	t.Helper()
	jp, err := Synthesize(tenants, policy.MustParse(spec), opts)
	if err != nil {
		t.Fatal(err)
	}
	return jp
}

// TestFigure3 reproduces the paper's Figure 3 exactly: operator policy
// "T1 >> T2 + T3"; T1 (pFabric) emits ranks {7,8,9}, T2 (EDF) {1,3},
// T3 (FQ) {3,5}. The synthesized transformations must map
// T1: {7,8,9}→{1,2,3},  T2: {1,3}→{4,6},  T3: {3,5}→{5,7}.
func TestFigure3(t *testing.T) {
	tenants := []*Tenant{
		{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: rank.Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: rank.Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}
	jp := mustSynth(t, tenants, "T1 >> T2 + T3", SynthOptions{Base: 1})

	cases := []struct {
		tenant pkt.TenantID
		in     []int64
		want   []int64
	}{
		{1, []int64{7, 8, 9}, []int64{1, 2, 3}},
		{2, []int64{1, 3}, []int64{4, 6}},
		{3, []int64{3, 5}, []int64{5, 7}},
	}
	for _, c := range cases {
		tr := jp.Transforms[c.tenant]
		for i, in := range c.in {
			if got := tr.Apply(in); got != c.want[i] {
				t.Errorf("tenant %d: Apply(%d) = %d, want %d", c.tenant, in, got, c.want[i])
			}
		}
	}
	if jp.Output != (rank.Bounds{Lo: 1, Hi: 7}) {
		t.Fatalf("output bounds %v, want [1,7]", jp.Output)
	}
}

func TestStrictIsolationWorstCase(t *testing.T) {
	// §2: "we can shift all the priorities from T3's scheduling policy
	// such that, even in the worst case, it does not impact the
	// performance of the other tenants." Every transformed rank of a
	// higher tier must beat every transformed rank of a lower tier, for
	// all in-bounds inputs.
	tenants := []*Tenant{
		tenant(1, "hi", 0, 1000),
		tenant(2, "mid", 0, 50),
		tenant(3, "lo", 0, 999999),
	}
	jp := mustSynth(t, tenants, "hi >> mid >> lo", SynthOptions{})
	for i := 0; i < len(jp.Tiers)-1; i++ {
		upper, lower := jp.Tiers[i].Bounds, jp.Tiers[i+1].Bounds
		if upper.Hi >= lower.Lo {
			t.Fatalf("tier %d band %v overlaps tier %d band %v", i, upper, i+1, lower)
		}
	}
	// Exhaustive check at the band edges.
	hiTr, _ := jp.TransformOf("hi")
	loTr, _ := jp.TransformOf("lo")
	if hiTr.Apply(1000) >= loTr.Apply(0) {
		t.Fatalf("worst high-tier rank %d does not beat best low-tier rank %d",
			hiTr.Apply(1000), loTr.Apply(0))
	}
}

func TestSharingFullOverlap(t *testing.T) {
	tenants := []*Tenant{
		tenant(1, "a", 0, 100),
		tenant(2, "b", 500, 900),
	}
	jp := mustSynth(t, tenants, "a + b", SynthOptions{})
	ta, _ := jp.TransformOf("a")
	tb, _ := jp.TransformOf("b")
	// Same level count, same offset, interleaved phases.
	if ta.Levels != tb.Levels || ta.Offset != tb.Offset || ta.Stride != 2 || tb.Stride != 2 {
		t.Fatalf("sharing group shape wrong: %v / %v", ta, tb)
	}
	if ta.Phase == tb.Phase {
		t.Fatal("sharing tenants must have distinct phases")
	}
	// Their output bands overlap almost completely (off by one slot).
	ba, bb := ta.OutputBounds(), tb.OutputBounds()
	if ba.Lo > bb.Hi || bb.Lo > ba.Hi {
		t.Fatalf("sharing bands disjoint: %v / %v", ba, bb)
	}
}

func TestPreferencePartialOverlap(t *testing.T) {
	tenants := []*Tenant{
		tenant(1, "pref", 0, 100),
		tenant(2, "rest", 0, 100),
	}
	jp := mustSynth(t, tenants, "pref > rest", SynthOptions{})
	tp, _ := jp.TransformOf("pref")
	tr, _ := jp.TransformOf("rest")
	bp, br := tp.OutputBounds(), tr.OutputBounds()
	// Best-effort preference: the preferred band starts strictly lower…
	if bp.Lo >= br.Lo {
		t.Fatalf("preferred band %v does not start below %v", bp, br)
	}
	// …but the bands overlap (not strict isolation).
	if bp.Hi < br.Lo {
		t.Fatalf("preference bands are disjoint (%v / %v); that is >> semantics", bp, br)
	}
}

func TestPreferenceBiasOneIsDisjoint(t *testing.T) {
	tenants := []*Tenant{
		tenant(1, "pref", 0, 100),
		tenant(2, "rest", 0, 100),
	}
	jp := mustSynth(t, tenants, "pref > rest", SynthOptions{PreferenceBias: 1.0})
	tp, _ := jp.TransformOf("pref")
	tr, _ := jp.TransformOf("rest")
	if tp.OutputBounds().Hi >= tr.OutputBounds().Lo {
		t.Fatalf("bias 1.0 should produce disjoint bands: %v / %v",
			tp.OutputBounds(), tr.OutputBounds())
	}
}

func TestPaperSpecEndToEnd(t *testing.T) {
	// The §3.1 example: T1 >> T2 > T3 + T4 >> T5.
	tenants := []*Tenant{
		tenant(1, "T1", 0, 100),
		tenant(2, "T2", 0, 100),
		tenant(3, "T3", 0, 100),
		tenant(4, "T4", 0, 100),
		tenant(5, "T5", 0, 100),
	}
	jp := mustSynth(t, tenants, "T1 >> T2 > T3 + T4 >> T5", SynthOptions{})
	if len(jp.Tiers) != 3 {
		t.Fatalf("tiers = %d, want 3", len(jp.Tiers))
	}
	get := func(name string) rank.Bounds {
		tr, ok := jp.TransformOf(name)
		if !ok {
			t.Fatalf("missing transform for %s", name)
		}
		return tr.OutputBounds()
	}
	// T1 strictly above everything.
	for _, other := range []string{"T2", "T3", "T4", "T5"} {
		if get("T1").Hi >= get(other).Lo {
			t.Errorf("T1 band %v not strictly above %s band %v", get("T1"), other, get(other))
		}
	}
	// T2..T4 strictly above T5.
	for _, upper := range []string{"T2", "T3", "T4"} {
		if get(upper).Hi >= get("T5").Lo {
			t.Errorf("%s band %v not strictly above T5 band %v", upper, get(upper), get("T5"))
		}
	}
	// T2 preferred over T3/T4: starts lower, overlaps.
	if get("T2").Lo >= get("T3").Lo {
		t.Error("T2 should start below T3")
	}
	if get("T2").Hi < get("T3").Lo {
		t.Error("T2 and T3 should overlap (best-effort preference)")
	}
}

func TestSynthesizeUsesAlgorithmBounds(t *testing.T) {
	tenants := []*Tenant{
		{ID: 1, Name: "a", Algorithm: &rank.EDF{MaxSlack: 10 * 1000 * 1000}}, // 10 ms → [0,10000] µs
		{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: 7}},
	}
	jp := mustSynth(t, tenants, "a + b", SynthOptions{DefaultLevels: 16})
	ta, _ := jp.TransformOf("a")
	if ta.Lo != 0 || ta.Hi != 10000 {
		t.Fatalf("algorithm bounds not used: %v", ta)
	}
	if ta.Levels != 16 {
		t.Fatalf("levels = %d, want default 16", ta.Levels)
	}
	// Narrow tenant b auto-reduces its level count to span+1 — but the
	// sharing group harmonizes both to the max, 16.
	tb, _ := jp.TransformOf("b")
	if tb.Levels != 16 {
		t.Fatalf("sharing group must harmonize levels: got %d", tb.Levels)
	}
}

func TestAutoLevelsNarrowSpan(t *testing.T) {
	tenants := []*Tenant{tenant(1, "a", 0, 3)}
	jp := mustSynth(t, tenants, "a", SynthOptions{DefaultLevels: 64})
	tr, _ := jp.TransformOf("a")
	if tr.Levels != 4 {
		t.Fatalf("narrow tenant levels = %d, want span+1 = 4", tr.Levels)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	a := tenant(1, "a", 0, 10)
	cases := []struct {
		name    string
		tenants []*Tenant
		spec    string
		opts    SynthOptions
	}{
		{"missing tenant", []*Tenant{a}, "a >> ghost", SynthOptions{}},
		{"dup names", []*Tenant{a, tenant(2, "a", 0, 5)}, "a", SynthOptions{}},
		{"dup ids", []*Tenant{a, tenant(1, "b", 0, 5)}, "a >> b", SynthOptions{}},
		{"empty name", []*Tenant{{ID: 3}}, "a", SynthOptions{}},
		{"bad bias", []*Tenant{a}, "a", SynthOptions{PreferenceBias: 2}},
		{"negative bias", []*Tenant{a}, "a", SynthOptions{PreferenceBias: -1}},
	}
	for _, c := range cases {
		if _, err := Synthesize(c.tenants, policy.MustParse(c.spec), c.opts); err == nil {
			t.Errorf("%s: Synthesize succeeded, want error", c.name)
		}
	}
	if _, err := Synthesize([]*Tenant{a}, nil, SynthOptions{}); err == nil {
		t.Error("nil spec: Synthesize succeeded, want error")
	}
	bad := &Tenant{ID: 9, Name: "bad", Bounds: rank.Bounds{Lo: 10, Hi: 5}}
	if _, err := Synthesize([]*Tenant{bad}, policy.MustParse("bad"), SynthOptions{}); err == nil {
		t.Error("inverted bounds: Synthesize succeeded, want error")
	}
	neg := &Tenant{ID: 9, Name: "neg", Bounds: rank.Bounds{Lo: 0, Hi: 5}, Levels: -1}
	if _, err := Synthesize([]*Tenant{neg}, policy.MustParse("neg"), SynthOptions{}); err == nil {
		t.Error("negative levels: Synthesize succeeded, want error")
	}
}

func TestTenantHelpers(t *testing.T) {
	tn := &Tenant{ID: 1, Name: "x", Algorithm: &rank.PFabric{}}
	if tn.AlgorithmName() != "pfabric" {
		t.Fatalf("AlgorithmName = %q", tn.AlgorithmName())
	}
	if !strings.Contains(tn.String(), "pfabric") {
		t.Fatalf("String() = %q", tn.String())
	}
	if (&Tenant{Name: "y"}).AlgorithmName() != "-" {
		t.Fatal("bounds-only tenant AlgorithmName should be -")
	}
	if _, err := (&Tenant{Name: "z"}).EffectiveBounds(); err == nil {
		t.Fatal("tenant with neither bounds nor algorithm should error")
	}
}

func TestDescribe(t *testing.T) {
	jp := mustSynth(t, []*Tenant{tenant(1, "a", 0, 10), tenant(2, "b", 0, 10)},
		"a >> b", SynthOptions{})
	d := jp.Describe()
	for _, want := range []string{"a >> b", "tier 0", "tier 1", "a", "b"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe() missing %q:\n%s", want, d)
		}
	}
	if _, ok := jp.TransformOf("ghost"); ok {
		t.Fatal("TransformOf on unknown tenant should fail")
	}
}

func BenchmarkSynthesize(b *testing.B) {
	tenants := []*Tenant{
		tenant(1, "T1", 0, 1<<20),
		tenant(2, "T2", 0, 10000),
		tenant(3, "T3", 0, 1<<24),
		tenant(4, "T4", 0, 500),
		tenant(5, "T5", 0, 1<<16),
	}
	spec := policy.MustParse("T1 >> T2 > T3 + T4 >> T5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(tenants, spec, SynthOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJointPolicyJSONRoundTrip(t *testing.T) {
	tenants := []*Tenant{
		{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: rank.Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: rank.Bounds{Lo: 3, Hi: 5}, Levels: 2},
	}
	jp := mustSynth(t, tenants, "T1 >> T2 + T3", SynthOptions{Base: 1})
	jp.Version = 7
	data, err := json.Marshal(jp)
	if err != nil {
		t.Fatal(err)
	}
	var back JointPolicy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.String() != jp.Spec.String() || back.Version != 7 || back.Output != jp.Output {
		t.Fatalf("metadata mismatch: %+v", back)
	}
	for id, tr := range jp.Transforms {
		if back.Transforms[id] != tr {
			t.Fatalf("transform %d mismatch: %v vs %v", id, back.Transforms[id], tr)
		}
	}
	if len(back.Tiers) != len(jp.Tiers) {
		t.Fatalf("tiers = %d", len(back.Tiers))
	}
	// The deserialized policy drives a pre-processor identically.
	pp := NewPreprocessor(&back, UnknownWorst)
	p := &pkt.Packet{Tenant: 2, Rank: 3}
	pp.Process(p)
	if p.Rank != 6 { // Figure-3 mapping
		t.Fatalf("deserialized policy transforms wrong: %d", p.Rank)
	}
}

func TestJointPolicyUnmarshalErrors(t *testing.T) {
	var jp JointPolicy
	if err := json.Unmarshal([]byte(`{bad`), &jp); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := json.Unmarshal([]byte(`{"spec":">>"}`), &jp); err == nil {
		t.Fatal("bad embedded spec accepted")
	}
}
