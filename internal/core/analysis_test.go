package core

import (
	"strings"
	"testing"
)

func analysisPolicy(t *testing.T, spec string) *JointPolicy {
	t.Helper()
	tenants := []*Tenant{
		tenant(1, "A", 0, 100),
		tenant(2, "B", 0, 100),
		tenant(3, "C", 0, 100),
	}
	names := map[string]bool{}
	for _, n := range tenants {
		names[n.Name] = true
	}
	return mustSynth(t, tenants, spec, SynthOptions{DefaultLevels: 16})
}

func pair(r *AnalysisReport, from, to string) (Interference, bool) {
	for _, p := range r.Pairs {
		if p.From == from && p.To == to {
			return p, true
		}
	}
	return Interference{}, false
}

func TestAnalyzeStrictIsolation(t *testing.T) {
	r := analysisPolicy(t, "A >> B >> C").Analyze()
	// A preempts 100% of B and C; nothing preempts A.
	for _, victim := range []string{"B", "C"} {
		p, ok := pair(r, "A", victim)
		if !ok || p.Fraction != 1.0 {
			t.Fatalf("A→%s interference = %+v, want 100%%", victim, p)
		}
	}
	if _, ok := pair(r, "B", "A"); ok {
		t.Fatal("B must not preempt A under strict priority")
	}
	if len(r.Isolated) != 1 || r.Isolated[0] != "A" {
		t.Fatalf("isolated = %v, want [A]", r.Isolated)
	}
}

func TestAnalyzeSharing(t *testing.T) {
	r := analysisPolicy(t, "A + B >> C").Analyze()
	// Sharing tenants fully interfere both ways (by design: they split
	// capacity), and both dominate C.
	ab, ok1 := pair(r, "A", "B")
	ba, ok2 := pair(r, "B", "A")
	if !ok1 || !ok2 {
		t.Fatal("sharing pair missing")
	}
	if ab.Fraction < 0.9 || ba.Fraction < 0.9 {
		t.Fatalf("sharing fractions: %v / %v, want ~1.0", ab.Fraction, ba.Fraction)
	}
	if ab.Relation != "shares" {
		t.Fatalf("relation = %q", ab.Relation)
	}
	if len(r.Isolated) != 0 {
		t.Fatalf("isolated = %v, want none (A and B preempt each other)", r.Isolated)
	}
}

func TestAnalyzePreferenceAsymmetric(t *testing.T) {
	r := analysisPolicy(t, "A > B >> C").Analyze()
	ab, ok1 := pair(r, "A", "B")
	ba, ok2 := pair(r, "B", "A")
	if !ok1 || !ok2 {
		t.Fatal("preference pairs missing")
	}
	// A can preempt all of B; B can only reach A's upper half (default
	// bias 0.5).
	if ab.Fraction != 1.0 {
		t.Fatalf("A→B = %v, want 1.0", ab.Fraction)
	}
	if ba.Fraction <= 0 || ba.Fraction >= 1 {
		t.Fatalf("B→A = %v, want partial", ba.Fraction)
	}
	if ab.Relation != "prefers" || ba.Relation != "preferred-by" {
		t.Fatalf("relations: %q / %q", ab.Relation, ba.Relation)
	}
}

func TestAnalyzeDescribe(t *testing.T) {
	r := analysisPolicy(t, "A >> B + C").Analyze()
	d := r.Describe()
	for _, want := range []string{"A", "B", "C", "isolated", "%"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}
