package core

import (
	"strings"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
)

func compilePolicy(t *testing.T, spec string) *JointPolicy {
	t.Helper()
	names := policy.MustParse(spec).Tenants()
	tenants := make([]*Tenant, len(names))
	for i, n := range names {
		tenants[i] = tenant(pkt.TenantID(i+1), n, 0, 1000)
	}
	return mustSynth(t, tenants, spec, SynthOptions{DefaultLevels: 16})
}

func find(plan *Plan, kind ReqKind) []Requirement {
	var out []Requirement
	for _, r := range plan.Requirements {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

func TestCompileToPIFOAllExact(t *testing.T) {
	jp := compilePolicy(t, "T1 >> T2 > T3 + T4 >> T5")
	plan, err := jp.CompileTo(TargetPIFO)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("ideal PIFO must be feasible")
	}
	for _, r := range plan.Requirements {
		if r.Level != GuaranteeExact {
			t.Errorf("%v %v: level %v, want exact", r.Kind, r.Tenants, r.Level)
		}
	}
	if plan.Partial != nil {
		t.Fatal("no partial spec needed on an ideal PIFO")
	}
}

func TestCompileToCommodityEnoughQueues(t *testing.T) {
	jp := compilePolicy(t, "T1 >> T2 + T3")
	plan, err := jp.CompileTo(TargetCommodity8Q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("8 queues for 2 tiers must be feasible")
	}
	iso := find(plan, ReqIsolation)
	if len(iso) != 1 || iso[0].Level != GuaranteeExact {
		t.Fatalf("isolation reqs: %+v", iso)
	}
	// Intra-tenant order only approximate on FIFO queue banks.
	for _, r := range find(plan, ReqIntraOrder) {
		if r.Level != GuaranteeApprox {
			t.Errorf("intra-order %v: %v, want approximate", r.Tenants, r.Level)
		}
	}
	// Queue allocation covers both tiers.
	if len(plan.QueuesPerTier) != 2 || plan.QueuesPerTier[0]+plan.QueuesPerTier[1] != 8 {
		t.Fatalf("queue allocation %v", plan.QueuesPerTier)
	}
}

func TestCompileToTooFewQueuesProposesPartial(t *testing.T) {
	// Five strict tiers on a 4-queue device: the lowest boundary must be
	// relaxed.
	jp := compilePolicy(t, "T1 >> T2 >> T3 >> T4 >> T5")
	plan, err := jp.CompileTo(TargetLegacy4Q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("5 tiers on 4 queues must be infeasible as specified")
	}
	if plan.Partial == nil {
		t.Fatal("must propose a partial spec")
	}
	if got := len(plan.Partial.Tiers); got != 4 {
		t.Fatalf("partial spec has %d tiers, want 4", got)
	}
	if err := plan.Partial.Validate(); err != nil {
		t.Fatalf("partial spec invalid: %v", err)
	}
	// The merged tiers keep all tenants, related by preference.
	if got, want := plan.Partial.String(), "T1 >> T2 >> T3 >> T4 > T5"; got != want {
		t.Fatalf("partial = %q, want %q", got, want)
	}
	if len(plan.Downgrades) != 1 {
		t.Fatalf("downgrades = %v", plan.Downgrades)
	}
}

func TestCompileNoRewriteLosesIntraOrder(t *testing.T) {
	jp := compilePolicy(t, "T1 >> T2")
	plan, err := jp.CompileTo(Target{Name: "fixed", Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("no rank rewrite: intra-tenant order unachievable, must be infeasible")
	}
	for _, r := range find(plan, ReqIntraOrder) {
		if r.Level != GuaranteeNone {
			t.Errorf("intra-order %v without rewrite: %v, want none", r.Tenants, r.Level)
		}
	}
	// Isolation still works via dedicated queues.
	for _, r := range find(plan, ReqIsolation) {
		if r.Level != GuaranteeExact {
			t.Errorf("isolation %v: %v, want exact", r.Tenants, r.Level)
		}
	}
}

func TestCompileAdmissionImprovesNote(t *testing.T) {
	jp := compilePolicy(t, "T1")
	plan, err := jp.CompileTo(Target{Name: "aifo-like", Queues: 1, RankRewrite: true, Admission: true})
	if err != nil {
		t.Fatal(err)
	}
	intra := find(plan, ReqIntraOrder)
	if len(intra) != 1 || !strings.Contains(intra[0].Note, "admission") {
		t.Fatalf("admission note missing: %+v", intra)
	}
}

func TestCompilePreferenceGrades(t *testing.T) {
	jp := compilePolicy(t, "T1 > T2")
	sorted, _ := jp.CompileTo(TargetPIFO)
	if p := find(sorted, ReqPreference); len(p) != 1 || p[0].Level != GuaranteeExact {
		t.Fatalf("preference on PIFO: %+v", p)
	}
	queues, _ := jp.CompileTo(TargetCommodity8Q)
	if p := find(queues, ReqPreference); len(p) != 1 || p[0].Level != GuaranteeApprox {
		t.Fatalf("preference on queues: %+v", p)
	}
	fixed, _ := jp.CompileTo(Target{Name: "f", Queues: 2})
	if p := find(fixed, ReqPreference); len(p) != 1 || p[0].Level != GuaranteeNone {
		t.Fatalf("preference without rewrite: %+v", p)
	}
}

func TestCompileBadTarget(t *testing.T) {
	jp := compilePolicy(t, "T1")
	if _, err := jp.CompileTo(Target{Name: "broken"}); err == nil {
		t.Fatal("target with no resources should error")
	}
}

func TestPlanDescribe(t *testing.T) {
	jp := compilePolicy(t, "T1 >> T2 >> T3")
	plan, err := jp.CompileTo(Target{Name: "2q", Queues: 2, RankRewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	for _, want := range []string{"2q", "feasible: false", "partial spec", "downgrade"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestGuaranteeAndReqStrings(t *testing.T) {
	if GuaranteeExact.String() != "exact" || GuaranteeApprox.String() != "approximate" ||
		GuaranteeNone.String() != "none" {
		t.Fatal("guarantee strings")
	}
	for k, want := range map[ReqKind]string{
		ReqIsolation: "isolation", ReqPreference: "preference",
		ReqSharing: "sharing", ReqIntraOrder: "intra-tenant order",
		ReqKind(9): "req(9)",
	} {
		if k.String() != want {
			t.Errorf("%d: %q != %q", int(k), k.String(), want)
		}
	}
}
