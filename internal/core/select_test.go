package core

import (
	"reflect"
	"testing"
)

// profile builds a FidelityProfile with the given deviation figures.
func profile(b Backend, exact, inv, disp, drop float64) FidelityProfile {
	return FidelityProfile{
		Backend:               b,
		ExactReplayRate:       exact,
		InversionsPerPacket:   inv,
		DisplacementPerPacket: disp,
		DropDivergenceRate:    drop,
	}
}

func TestFidelityScore(t *testing.T) {
	// A perfect replay scores exactly 1.0; each deviation subtracts with
	// its documented weight.
	if got := profile(BackendPIFO, 1, 0, 0, 0).Score(); got != 1.0 {
		t.Fatalf("perfect profile scores %v, want 1.0", got)
	}
	p := profile(BackendSPPIFO, 0.5, 2, 4, 0.25)
	want := 0.5 - 2 - 0.5*4 - 2*0.25
	if got := p.Score(); got != want {
		t.Fatalf("Score() = %v, want %v", got, want)
	}
}

func TestSupportedBackends(t *testing.T) {
	cases := []struct {
		name   string
		target Target
		want   []Backend
	}{
		{"fifo-only", Target{Queues: 1},
			[]Backend{BackendFIFO}},
		{"sorted", Target{Sorted: true},
			[]Backend{BackendPIFO, BackendFIFO}},
		{"queue-bank", Target{Queues: 8},
			[]Backend{BackendSPQueues, BackendSPPIFO, BackendFIFO, BackendCalendar, BackendBucketQ}},
		{"admission-1q", Target{Queues: 1, Admission: true},
			[]Backend{BackendFIFO, BackendAIFO}},
		{"admission-bank", Target{Queues: 8, Admission: true},
			[]Backend{BackendSPQueues, BackendSPPIFO, BackendFIFO, BackendCalendar, BackendAIFO, BackendAdmission, BackendBucketQ}},
	}
	for _, c := range cases {
		got := c.target.SupportedBackends()
		want := append([]Backend(nil), c.want...)
		sortBackends(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: SupportedBackends() = %v, want %v", c.name, got, want)
		}
	}
}

func TestSelectBackend(t *testing.T) {
	profiles := []FidelityProfile{
		profile(BackendFIFO, 0, 8.9, 15.3, 0.47),
		profile(BackendSPPIFO, 0, 8.8, 13.9, 0.47),
		profile(BackendAdmission, 0, 8.8, 13.0, 0.18),
		profile(BackendPIFO, 1, 0, 0, 0),
	}
	// Unrestricted, the exact PIFO wins.
	best, ok := SelectBackend(profiles, nil)
	if !ok || best.Backend != BackendPIFO {
		t.Fatalf("best = %v, want pifo", best.Backend)
	}
	// Without a sorted queue the admission backend's drop profile wins.
	noPIFO := func(b Backend) bool { return b != BackendPIFO }
	best, ok = SelectBackend(profiles, noPIFO)
	if !ok || best.Backend != BackendAdmission {
		t.Fatalf("best = %v, want admission", best.Backend)
	}
	// Nothing feasible.
	if _, ok := SelectBackend(profiles, func(Backend) bool { return false }); ok {
		t.Fatal("selection from an empty feasible set succeeded")
	}
	// Equal scores break toward the lower enum value, both directions.
	tied := []FidelityProfile{
		profile(BackendCalendar, 0.5, 0, 0, 0),
		profile(BackendSPQueues, 0.5, 0, 0, 0),
	}
	best, _ = SelectBackend(tied, nil)
	if best.Backend != BackendSPQueues {
		t.Fatalf("tie broke to %v, want the lower enum sp-queues", best.Backend)
	}
	tied[0], tied[1] = tied[1], tied[0]
	best, _ = SelectBackend(tied, nil)
	if best.Backend != BackendSPQueues {
		t.Fatalf("tie (reordered) broke to %v, want sp-queues", best.Backend)
	}
}

func TestDeployBest(t *testing.T) {
	jp := twoTierPolicy(t)
	profiles := []FidelityProfile{
		profile(BackendPIFO, 1, 0, 0, 0),
		profile(BackendSPQueues, 0, 5.2, 8.5, 0.18),
		profile(BackendAdmission, 0, 8.8, 13.0, 0.18),
	}
	dep, err := jp.DeployBest(profiles, DeployOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Backend != BackendPIFO {
		t.Fatalf("deployed %v, want pifo", dep.Backend)
	}
	// Without the PIFO profile, SP queues win — unless the queue budget
	// cannot isolate every strict tier, which removes them from the
	// feasible set and falls through to admission.
	rest := profiles[1:]
	dep, err = jp.DeployBest(rest, DeployOptions{Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Backend != BackendSPQueues {
		t.Fatalf("deployed %v, want sp-queues", dep.Backend)
	}
	dep, err = jp.DeployBest([]FidelityProfile{
		profile(BackendSPQueues, 0, 5.2, 8.5, 0.18),
		profile(BackendAdmission, 0, 8.8, 13.0, 0.18),
	}, DeployOptions{Queues: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Backend != BackendAdmission {
		t.Fatalf("deployed %v, want admission (sp-queues infeasible at 1 queue)", dep.Backend)
	}
	if _, err := jp.DeployBest(nil, DeployOptions{}); err == nil {
		t.Fatal("DeployBest accepted an empty profile set")
	}
}

func TestBackendsAndParse(t *testing.T) {
	all := Backends()
	if len(all) != int(numBackends) {
		t.Fatalf("Backends() = %d entries, want %d", len(all), int(numBackends))
	}
	for _, b := range all {
		name := b.String()
		got, err := ParseBackend(name)
		if err != nil {
			t.Fatalf("ParseBackend(%q): %v", name, err)
		}
		if got != b {
			t.Fatalf("ParseBackend(%q) = %v, want %v", name, got, b)
		}
	}
	if _, err := ParseBackend("nope"); err == nil {
		t.Fatal("unknown backend name accepted")
	}
}

// sortBackends orders a backend list by enum value, matching
// SupportedBackends' deterministic order.
func sortBackends(bs []Backend) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j] < bs[j-1]; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
