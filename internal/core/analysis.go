package core

import (
	"fmt"
	"sort"
	"strings"
)

// Interference quantifies how one tenant's rank band can affect another's
// under the joint policy — the offline, worst-case flavor of §2's Idea 2:
// "we can develop analysis techniques to evaluate how different scheduling
// policies may work together ... theoretically, offline (e.g., based on
// worst-case analysis from the given specification)".
type Interference struct {
	// From can preempt To: a From packet can be scheduled ahead of a
	// queued To packet.
	From, To string
	// Fraction is the fraction of To's output band that From's band
	// overlaps or precedes — 1.0 means From can always preempt To
	// (strict priority), 0 means never.
	Fraction float64
	// Relation names the policy relation that produced this exposure.
	Relation string
}

// AnalysisReport is the full pairwise interference matrix plus derived
// worst-case facts.
type AnalysisReport struct {
	// Pairs holds every ordered tenant pair with nonzero interference.
	Pairs []Interference
	// Isolated lists tenants that no other tenant can preempt (top
	// strict tier members with no sharing partners).
	Isolated []string
}

// Describe renders the report.
func (r *AnalysisReport) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "worst-case interference (fraction of victim band preemptable):\n")
	for _, p := range r.Pairs {
		fmt.Fprintf(&b, "  %-12s → %-12s %5.1f%%  (%s)\n", p.From, p.To, 100*p.Fraction, p.Relation)
	}
	if len(r.Isolated) > 0 {
		fmt.Fprintf(&b, "fully isolated: %s\n", strings.Join(r.Isolated, ", "))
	}
	return b.String()
}

// Analyze computes the pairwise worst-case interference of a joint policy
// from the synthesized bands alone — no traffic needed.
func (jp *JointPolicy) Analyze() *AnalysisReport {
	report := &AnalysisReport{}
	names := jp.Spec.Tenants()
	preempted := make(map[string]bool)
	for _, from := range names {
		for _, to := range names {
			if from == to {
				continue
			}
			frac := preemptFraction(jp, from, to)
			if frac <= 0 {
				continue
			}
			rel, _ := jp.Spec.Relate(from, to)
			report.Pairs = append(report.Pairs, Interference{
				From:     from,
				To:       to,
				Fraction: frac,
				Relation: rel.String(),
			})
			preempted[to] = true
		}
	}
	sort.Slice(report.Pairs, func(i, j int) bool {
		if report.Pairs[i].Fraction != report.Pairs[j].Fraction {
			return report.Pairs[i].Fraction > report.Pairs[j].Fraction
		}
		if report.Pairs[i].From != report.Pairs[j].From {
			return report.Pairs[i].From < report.Pairs[j].From
		}
		return report.Pairs[i].To < report.Pairs[j].To
	})
	for _, name := range names {
		if !preempted[name] {
			report.Isolated = append(report.Isolated, name)
		}
	}
	return report
}

// preemptFraction returns the fraction of to's output band at or after
// from's best (lowest) output rank — the share of to's packets a queued
// from packet can beat in the worst case.
func preemptFraction(jp *JointPolicy, from, to string) float64 {
	tf, ok1 := jp.TransformOf(from)
	tt, ok2 := jp.TransformOf(to)
	if !ok1 || !ok2 {
		return 0
	}
	bf, bt := tf.OutputBounds(), tt.OutputBounds()
	if bf.Lo > bt.Hi {
		return 0 // from's best never beats to's worst
	}
	span := bt.Span() + 1
	exposed := bt.Hi - max64(bf.Lo, bt.Lo) + 1
	if exposed > span {
		exposed = span
	}
	return float64(exposed) / float64(span)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
