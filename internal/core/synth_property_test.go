package core

import (
	"fmt"
	"math/rand"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

// randomScenario builds a random tenant set and operator spec.
func randomScenario(rng *rand.Rand) ([]*Tenant, *policy.Spec) {
	var tenants []*Tenant
	spec := &policy.Spec{}
	id := pkt.TenantID(1)
	tiers := 1 + rng.Intn(3)
	for i := 0; i < tiers; i++ {
		var tier policy.Tier
		levels := 1 + rng.Intn(2)
		for j := 0; j < levels; j++ {
			var lvl policy.Level
			share := 1 + rng.Intn(3)
			weighted := rng.Intn(2) == 0
			for k := 0; k < share; k++ {
				name := fmt.Sprintf("t%d", id)
				lo := int64(rng.Intn(1000))
				hi := lo + 1 + int64(rng.Intn(1_000_000))
				tenants = append(tenants, &Tenant{
					ID:     id,
					Name:   name,
					Bounds: rank.Bounds{Lo: lo, Hi: hi},
					Levels: int64(rng.Intn(100)), // 0 = auto
				})
				lvl.Tenants = append(lvl.Tenants, name)
				if weighted {
					lvl.Weights = append(lvl.Weights, 1+int64(rng.Intn(4)))
				}
				id++
			}
			tier.Levels = append(tier.Levels, lvl)
		}
		spec.Tiers = append(spec.Tiers, tier)
	}
	return tenants, spec
}

// TestSynthesizeRandomScenarios checks the synthesizer's core invariants on
// hundreds of random tenant sets and specs:
//
//  1. every transformed rank lies inside the policy's output interval;
//  2. strict tiers occupy disjoint, ordered bands (worst-case isolation);
//  3. transforms are monotone within each tenant;
//  4. tenants sharing a level have identical offsets and level counts, and
//     distinct phases under a common stride.
func TestSynthesizeRandomScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for iter := 0; iter < 300; iter++ {
		tenants, spec := randomScenario(rng)
		jp, err := Synthesize(tenants, spec, SynthOptions{})
		if err != nil {
			t.Fatalf("iter %d: %v (spec %s)", iter, err, spec)
		}
		byName := make(map[string]*Tenant)
		for _, tn := range tenants {
			byName[tn.Name] = tn
		}

		// (1) and (3): sample ranks across and beyond the declared bounds.
		for _, tn := range tenants {
			tr := jp.Transforms[tn.ID]
			b, _ := tn.EffectiveBounds()
			prevOut := int64(-1 << 62)
			for _, r := range []int64{b.Lo - 10, b.Lo, (b.Lo + b.Hi) / 2, b.Hi, b.Hi + 10} {
				out := tr.Apply(r)
				if !jp.Output.Contains(out) {
					t.Fatalf("iter %d: tenant %s Apply(%d)=%d outside %v",
						iter, tn.Name, r, out, jp.Output)
				}
				if out < prevOut {
					t.Fatalf("iter %d: tenant %s transform not monotone", iter, tn.Name)
				}
				prevOut = out
			}
		}

		// (2): tier bands disjoint and ordered.
		for i := 0; i < len(jp.Tiers)-1; i++ {
			if jp.Tiers[i].Bounds.Hi >= jp.Tiers[i+1].Bounds.Lo {
				t.Fatalf("iter %d: tier %d band %v overlaps tier %d band %v (spec %s)",
					iter, i, jp.Tiers[i].Bounds, i+1, jp.Tiers[i+1].Bounds, spec)
			}
		}
		// Strict isolation at the packet level: worst rank of any tenant
		// in tier i beats best rank of any tenant in tier i+1.
		for ti := 0; ti < len(spec.Tiers)-1; ti++ {
			worstUpper := int64(-1 << 62)
			bestLower := int64(1 << 62)
			for _, lvl := range spec.Tiers[ti].Levels {
				for _, name := range lvl.Tenants {
					tr := jp.Transforms[byName[name].ID]
					if hi := tr.OutputBounds().Hi; hi > worstUpper {
						worstUpper = hi
					}
				}
			}
			for _, lvl := range spec.Tiers[ti+1].Levels {
				for _, name := range lvl.Tenants {
					tr := jp.Transforms[byName[name].ID]
					if lo := tr.OutputBounds().Lo; lo < bestLower {
						bestLower = lo
					}
				}
			}
			if worstUpper >= bestLower {
				t.Fatalf("iter %d: isolation broken between tiers %d and %d (%d >= %d)",
					iter, ti, ti+1, worstUpper, bestLower)
			}
		}

		// (4): sharing-group shape.
		for _, tier := range spec.Tiers {
			for _, lvl := range tier.Levels {
				if len(lvl.Tenants) < 2 {
					continue
				}
				first := jp.Transforms[byName[lvl.Tenants[0]].ID]
				phases := map[int64]bool{}
				for i, name := range lvl.Tenants {
					tr := jp.Transforms[byName[name].ID]
					if tr.Offset != first.Offset || tr.Levels != first.Levels ||
						tr.Stride != lvl.TotalWeight() {
						t.Fatalf("iter %d: sharing group shape mismatch: %v vs %v",
							iter, tr, first)
					}
					if phases[tr.Phase] {
						t.Fatalf("iter %d: duplicate phase %d in sharing group", iter, tr.Phase)
					}
					phases[tr.Phase] = true
					if w := lvl.WeightOf(i); tr.Weight != w && !(w == 1 && tr.Weight <= 1) {
						t.Fatalf("iter %d: weight mismatch: %d vs %d", iter, tr.Weight, w)
					}
				}
			}
		}
	}
}

// TestSynthesizeDeterministic: identical inputs produce identical policies.
func TestSynthesizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tenants, spec := randomScenario(rng)
	a, err := Synthesize(tenants, spec, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(tenants, spec, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for id, tra := range a.Transforms {
		if trb := b.Transforms[id]; tra != trb {
			t.Fatalf("tenant %d transform differs: %v vs %v", id, tra, trb)
		}
	}
	if a.Output != b.Output {
		t.Fatalf("outputs differ: %v vs %v", a.Output, b.Output)
	}
}
