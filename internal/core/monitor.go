package core

import (
	"fmt"
	"sort"

	"qvisor/internal/rank"
)

// Monitor tracks the rank distribution one tenant actually emits, using a
// sliding window of recent observations. The runtime controller uses it to
// (a) learn bounds for tenants whose distribution was not declared or has
// drifted ("online at runtime, based on the latest packets received", §2),
// and (b) detect adversarial workloads that emit ranks far outside their
// declared bounds (§2: "prevent adversarial workloads from potentially
// malicious tenants").
type Monitor struct {
	declared rank.Bounds
	window   []int64
	pos      int
	fill     int
	total    uint64
	outside  uint64
}

// NewMonitor returns a monitor with the given sliding-window size (zero
// means 1024) checking against the declared bounds.
func NewMonitor(declared rank.Bounds, windowSize int) *Monitor {
	if windowSize <= 0 {
		windowSize = 1024
	}
	return &Monitor{declared: declared, window: make([]int64, windowSize)}
}

// Observe records one emitted rank.
func (m *Monitor) Observe(r int64) {
	m.window[m.pos] = r
	m.pos = (m.pos + 1) % len(m.window)
	if m.fill < len(m.window) {
		m.fill++
	}
	m.total++
	if !m.declared.Contains(r) {
		m.outside++
	}
}

// Count returns the total observations.
func (m *Monitor) Count() uint64 { return m.total }

// Declared returns the bounds the monitor checks against.
func (m *Monitor) Declared() rank.Bounds { return m.declared }

// OutsideFraction returns the fraction of all observations that fell
// outside the declared bounds.
func (m *Monitor) OutsideFraction() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.outside) / float64(m.total)
}

// Snapshot summarizes the current window.
type Snapshot struct {
	// Count is the number of ranks in the window.
	Count int
	// Observed is the min/max of the window.
	Observed rank.Bounds
	// P5, P50, P95 are window percentiles.
	P5, P50, P95 int64
}

// String implements fmt.Stringer.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d obs=%v p5=%d p50=%d p95=%d", s.Count, s.Observed, s.P5, s.P50, s.P95)
}

// Snapshot computes window statistics. It returns false when the window is
// empty.
func (m *Monitor) Snapshot() (Snapshot, bool) {
	if m.fill == 0 {
		return Snapshot{}, false
	}
	buf := make([]int64, m.fill)
	copy(buf, m.window[:m.fill])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(buf)-1))
		return buf[i]
	}
	return Snapshot{
		Count:    m.fill,
		Observed: rank.Bounds{Lo: buf[0], Hi: buf[len(buf)-1]},
		P5:       pct(0.05),
		P50:      pct(0.50),
		P95:      pct(0.95),
	}, true
}

// Drift quantifies how far the observed distribution has moved from the
// declared bounds: 0 when the observed 5th–95th percentile band lies inside
// the declared bounds, growing with the excursion relative to the declared
// span. The controller re-synthesizes when Drift exceeds its threshold.
func (m *Monitor) Drift() float64 {
	s, ok := m.Snapshot()
	if !ok {
		return 0
	}
	span := m.declared.Span()
	if span <= 0 {
		span = 1
	}
	var excess int64
	if s.P5 < m.declared.Lo {
		excess += m.declared.Lo - s.P5
	}
	if s.P95 > m.declared.Hi {
		excess += s.P95 - m.declared.Hi
	}
	return float64(excess) / float64(span)
}

// LearnedBounds proposes bounds from the observed window, padded by 10% of
// the observed span on each side so minor jitter does not immediately
// re-trigger drift.
func (m *Monitor) LearnedBounds() (rank.Bounds, bool) {
	s, ok := m.Snapshot()
	if !ok {
		return rank.Bounds{}, false
	}
	pad := s.Observed.Span() / 10
	lo := s.Observed.Lo - pad
	if lo < 0 && s.Observed.Lo >= 0 {
		lo = 0 // ranks are conventionally non-negative; don't invent negatives
	}
	return rank.Bounds{Lo: lo, Hi: s.Observed.Hi + pad}, true
}
