package core

import (
	"testing"

	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sim"
)

func TestMonitorBasics(t *testing.T) {
	m := NewMonitor(rank.Bounds{Lo: 0, Hi: 100}, 8)
	for i := int64(0); i < 10; i++ {
		m.Observe(i * 10)
	}
	if m.Count() != 10 {
		t.Fatalf("Count = %d", m.Count())
	}
	s, ok := m.Snapshot()
	if !ok {
		t.Fatal("snapshot on non-empty monitor failed")
	}
	if s.Count != 8 { // window size caps the snapshot
		t.Fatalf("snapshot count = %d, want 8", s.Count)
	}
	if s.Observed.Lo != 20 || s.Observed.Hi != 90 { // window holds last 8
		t.Fatalf("observed = %v, want [20,90]", s.Observed)
	}
	if s.P50 < s.P5 || s.P95 < s.P50 {
		t.Fatalf("percentiles unordered: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestMonitorEmptySnapshot(t *testing.T) {
	m := NewMonitor(rank.Bounds{}, 4)
	if _, ok := m.Snapshot(); ok {
		t.Fatal("snapshot on empty monitor should report false")
	}
	if m.Drift() != 0 || m.OutsideFraction() != 0 {
		t.Fatal("empty monitor should report zero drift and outside fraction")
	}
	if _, ok := m.LearnedBounds(); ok {
		t.Fatal("LearnedBounds on empty monitor should fail")
	}
}

func TestMonitorOutsideFraction(t *testing.T) {
	m := NewMonitor(rank.Bounds{Lo: 0, Hi: 10}, 16)
	for i := 0; i < 8; i++ {
		m.Observe(5)
	}
	for i := 0; i < 2; i++ {
		m.Observe(100)
	}
	if got := m.OutsideFraction(); got != 0.2 {
		t.Fatalf("OutsideFraction = %v, want 0.2", got)
	}
	if m.Declared() != (rank.Bounds{Lo: 0, Hi: 10}) {
		t.Fatal("Declared wrong")
	}
}

func TestMonitorDrift(t *testing.T) {
	m := NewMonitor(rank.Bounds{Lo: 0, Hi: 100}, 64)
	for i := 0; i < 64; i++ {
		m.Observe(50)
	}
	if d := m.Drift(); d != 0 {
		t.Fatalf("in-bounds drift = %v, want 0", d)
	}
	// Shift the whole distribution to ~300: drift grows past 1.
	for i := 0; i < 64; i++ {
		m.Observe(300)
	}
	if d := m.Drift(); d < 1 {
		t.Fatalf("shifted drift = %v, want >= 1", d)
	}
}

func TestMonitorLearnedBounds(t *testing.T) {
	m := NewMonitor(rank.Bounds{Lo: 0, Hi: 10}, 32)
	for i := int64(0); i < 32; i++ {
		m.Observe(200 + i) // observed [200, 231]
	}
	lb, ok := m.LearnedBounds()
	if !ok {
		t.Fatal("LearnedBounds failed")
	}
	if lb.Lo > 200 || lb.Hi < 231 {
		t.Fatalf("learned %v must cover observed [200,231]", lb)
	}
	if lb.Lo < 0 {
		t.Fatalf("learned lower bound went negative: %v", lb)
	}
}

func ctlTenants() []*Tenant {
	return []*Tenant{
		{ID: 1, Name: "A", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
		{ID: 2, Name: "B", Bounds: rank.Bounds{Lo: 0, Hi: 100}},
	}
}

func TestControllerInitialCompile(t *testing.T) {
	c, pp, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Policy() == nil || c.Version() != 1 {
		t.Fatalf("initial compile missing: version=%d", c.Version())
	}
	if c.Policy() != pp.Policy() {
		t.Fatal("controller and preprocessor disagree on policy")
	}
}

func TestControllerJoinLeave(t *testing.T) {
	var events []Event
	c, pp, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{
		OnEvent: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	nc := &Tenant{ID: 3, Name: "C", Bounds: rank.Bounds{Lo: 0, Hi: 50}}
	if err := c.Join(1000, nc, policy.MustParse("A >> B + C")); err != nil {
		t.Fatal(err)
	}
	if _, ok := pp.Policy().Transforms[3]; !ok {
		t.Fatal("joined tenant missing from deployed policy")
	}
	if c.Version() != 2 {
		t.Fatalf("version = %d, want 2", c.Version())
	}
	if err := c.Leave(2000, "C", policy.MustParse("A >> B")); err != nil {
		t.Fatal(err)
	}
	if _, ok := pp.Policy().Transforms[3]; ok {
		t.Fatal("left tenant still in deployed policy")
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[EventTenantJoined] != 1 || kinds[EventTenantLeft] != 1 || kinds[EventResynthesized] != 2 {
		t.Fatalf("event mix wrong: %+v", kinds)
	}
}

func TestControllerJoinErrors(t *testing.T) {
	c, _, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dup := &Tenant{ID: 9, Name: "A", Bounds: rank.Bounds{Lo: 0, Hi: 1}}
	if err := c.Join(0, dup, policy.MustParse("A >> B")); err == nil {
		t.Fatal("duplicate join should fail")
	}
	if err := c.Leave(0, "ghost", policy.MustParse("A")); err == nil {
		t.Fatal("leaving unknown tenant should fail")
	}
	// Join with a spec that omits the new tenant: compile fails, tenant
	// rolled back.
	nc := &Tenant{ID: 3, Name: "C", Bounds: rank.Bounds{Lo: 0, Hi: 1}}
	if err := c.Join(0, nc, policy.MustParse("A >> B")); err == nil {
		t.Fatal("join without spec entry should fail")
	}
	if c.Monitor("C") != nil {
		t.Fatal("failed join left a monitor behind")
	}
}

func TestControllerDriftTriggersResynthesis(t *testing.T) {
	var events []Event
	c, _, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{
		MinObservations: 10,
		WindowSize:      32,
		DriftThreshold:  0.25,
		OnEvent:         func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tenant A emits ranks far above its declared [0,100].
	for i := 0; i < 64; i++ {
		c.Observe(1, 5000+int64(i))
	}
	changed, err := c.Check(sim.Time(1))
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("drift should trigger re-synthesis")
	}
	tr, ok := c.Policy().TransformOf("A")
	if !ok {
		t.Fatal("A missing after re-synthesis")
	}
	if tr.Hi < 5000 {
		t.Fatalf("re-synthesized bounds %v do not cover the observed ranks", tr)
	}
	// Second check with no new evidence: stable.
	changed, err = c.Check(sim.Time(2))
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("no new drift; policy should be stable")
	}
}

func TestControllerAdversarialFlag(t *testing.T) {
	var events []Event
	c, _, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{
		MinObservations:     10,
		AdversarialFraction: 0.05,
		OnEvent:             func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Observe(2, 10) // in bounds
	}
	for i := 0; i < 50; i++ {
		c.Observe(2, 100000) // way out of bounds
	}
	if _, err := c.Check(0); err != nil {
		t.Fatal(err)
	}
	if !c.Flagged("B") {
		t.Fatal("B should be flagged adversarial")
	}
	if c.Flagged("A") {
		t.Fatal("A should not be flagged")
	}
	found := false
	for _, e := range events {
		if e.Kind == EventAdversarial && e.Tenant == "B" {
			found = true
		}
	}
	if !found {
		t.Fatal("no adversarial event emitted")
	}
}

func TestControllerObserveUnknownTenant(t *testing.T) {
	c, _, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(99, 5) // silently ignored
	if _, err := c.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestControllerMinObservationsGate(t *testing.T) {
	c, _, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{
		MinObservations: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Observe(1, 99999)
	}
	changed, err := c.Check(0)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("below MinObservations, no re-synthesis should happen")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventResynthesized: "resynthesized",
		EventTenantJoined:  "tenant-joined",
		EventTenantLeft:    "tenant-left",
		EventAdversarial:   "adversarial",
		EventKind(7):       "event(7)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestControllerQuarantine(t *testing.T) {
	var events []Event
	c, pp, err := NewController(ctlTenants(), policy.MustParse("A + B"), ControllerOptions{
		MinObservations:     10,
		AdversarialFraction: 0.05,
		Quarantine:          true,
		OnEvent:             func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tenant B floods out-of-contract ranks (declared [0,100]).
	for i := 0; i < 100; i++ {
		c.Observe(2, 1_000_000)
	}
	changed, err := c.Check(0)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("quarantine should redeploy the policy")
	}
	if !c.Quarantined("B") || c.Quarantined("A") {
		t.Fatal("B should be quarantined, A not")
	}
	// B now sits in a strictly lower tier: even its best rank is worse
	// than A's worst in-bounds rank.
	ta, _ := pp.Policy().TransformOf("A")
	tb, _ := pp.Policy().TransformOf("B")
	if ta.OutputBounds().Hi >= tb.OutputBounds().Lo {
		t.Fatalf("quarantined band %v not strictly below %v", tb.OutputBounds(), ta.OutputBounds())
	}
	// Quarantine is sticky: another check does not re-demote or learn
	// bounds from the adversary.
	changed, err = c.Check(1)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("second check should be a no-op")
	}
	seen := map[EventKind]int{}
	for _, e := range events {
		seen[e.Kind]++
	}
	if seen[EventQuarantined] != 1 || seen[EventAdversarial] != 1 {
		t.Fatalf("event mix: %v", seen)
	}
}

func TestControllerNoQuarantineWithoutOption(t *testing.T) {
	c, _, err := NewController(ctlTenants(), policy.MustParse("A + B"), ControllerOptions{
		MinObservations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Observe(2, 1_000_000)
	}
	if _, err := c.Check(0); err != nil {
		t.Fatal(err)
	}
	if c.Quarantined("B") {
		t.Fatal("quarantine disabled; B must not be demoted")
	}
	if !c.Flagged("B") {
		t.Fatal("B should still be flagged")
	}
}

func TestActiveTenantsTracking(t *testing.T) {
	c, _, err := NewController(ctlTenants(), policy.MustParse("A >> B"), ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Before any check: everyone active.
	if got := c.ActiveTenants(); len(got) != 2 {
		t.Fatalf("initial active = %v", got)
	}
	// A transmits, B stays silent.
	for i := 0; i < 10; i++ {
		c.Observe(1, 5)
	}
	if _, err := c.Check(0); err != nil {
		t.Fatal(err)
	}
	got := c.ActiveTenants()
	if len(got) != 1 || got[0] != "A" {
		t.Fatalf("active after check = %v, want [A]", got)
	}
	// Next interval: nobody transmits — fall back to everyone.
	if _, err := c.Check(1); err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveTenants(); len(got) != 2 {
		t.Fatalf("all-idle fallback = %v", got)
	}
	// B wakes up.
	c.Observe(2, 7)
	if _, err := c.Check(2); err != nil {
		t.Fatal(err)
	}
	got = c.ActiveTenants()
	if len(got) != 1 || got[0] != "B" {
		t.Fatalf("active = %v, want [B]", got)
	}
}
