package core

import (
	"math"
	"math/rand"
	"testing"

	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

// Satellite tests for the batched pre-processor path: ApplyBatch must be
// byte-identical to calling Process on each packet in order — same output
// ranks, same stats counters, same drop decisions — across every
// UnknownTenantAction, on both the dense flat table and the sparse-tenant
// fallback, and regardless of where batch boundaries fall.

// batchPolicy synthesizes a policy exercising every flat-table regime:
// weighted sharing (Weight > 1), a strict tier, a single-level tenant
// (degenerate quantizer → constant output), and a wide span.
func batchPolicy(t testing.TB) *JointPolicy {
	t.Helper()
	tenants := []*Tenant{
		{ID: 1, Name: "T1", Bounds: rank.Bounds{Lo: 7, Hi: 9}, Levels: 3},
		{ID: 2, Name: "T2", Bounds: rank.Bounds{Lo: 1, Hi: 3}, Levels: 2},
		{ID: 3, Name: "T3", Bounds: rank.Bounds{Lo: 0, Hi: 1 << 16}, Levels: 64},
		{ID: 4, Name: "T4", Bounds: rank.Bounds{Lo: 5, Hi: 5}, Levels: 1},
	}
	jp, err := Synthesize(tenants, policy.MustParse("T1 >> T2*2 + T3 >> T4"), SynthOptions{Base: 1})
	if err != nil {
		t.Fatal(err)
	}
	return jp
}

// sparsePolicy has tenant IDs far enough apart that buildFlatTable refuses
// a dense table, forcing the per-packet fallback.
func sparsePolicy(t *testing.T) *JointPolicy {
	t.Helper()
	tenants := []*Tenant{
		{ID: 1, Name: "A", Bounds: rank.Bounds{Lo: 0, Hi: 100}, Levels: 8},
		{ID: 1 + maxFlatTenantSpan, Name: "B", Bounds: rank.Bounds{Lo: 0, Hi: 100}, Levels: 8},
	}
	return mustSynth(t, tenants, "A >> B", SynthOptions{Base: 1})
}

// mixPackets builds a seeded random packet mix over the policy's tenants
// plus unknown tenants, with ranks spanning in-bounds, clamped-low,
// clamped-high, and int64-extreme values.
func mixPackets(jp *JointPolicy, rng *rand.Rand, n int) []*pkt.Packet {
	ids := make([]pkt.TenantID, 0, len(jp.Transforms)+2)
	for id := range jp.Transforms {
		ids = append(ids, id)
	}
	ids = append(ids, 999, pkt.NoTenant) // unknown tenants
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		var r int64
		switch rng.Intn(8) {
		case 0:
			r = rng.Int63n(1 << 40)
		case 1:
			r = -rng.Int63n(1 << 40)
		case 2:
			r = math.MaxInt64 - rng.Int63n(4)
		case 3:
			r = -(int64(1) << 62)
		default:
			r = rng.Int63n(1 << 17)
		}
		ps[i] = &pkt.Packet{
			ID:     uint64(i),
			Tenant: ids[rng.Intn(len(ids))],
			Rank:   r,
			Size:   64,
		}
	}
	return ps
}

// copyPackets deep-copies a batch so both processing paths see identical
// inputs.
func copyPackets(ps []*pkt.Packet) []*pkt.Packet {
	out := make([]*pkt.Packet, len(ps))
	for i, p := range ps {
		c := *p
		out[i] = &c
	}
	return out
}

// referenceBatch is the spec: per-packet Process with ApplyBatch's
// kept/dropped compaction contract.
func referenceBatch(pp *Preprocessor, ps []*pkt.Packet) int {
	kept := 0
	var dropped []*pkt.Packet
	for _, p := range ps {
		if pp.Process(p) {
			ps[kept] = p
			kept++
		} else {
			dropped = append(dropped, p)
		}
	}
	copy(ps[kept:], dropped)
	return kept
}

// TestApplyBatchMatchesProcess: differential check across every unknown-
// tenant action and several seeds — the batched fast path must reproduce
// the per-packet path exactly (ranks, order, drop set, stats).
func TestApplyBatchMatchesProcess(t *testing.T) {
	jp := batchPolicy(t)
	if buildFlatTable(jp) == nil {
		t.Fatal("batchPolicy unexpectedly fell back to the sparse path")
	}
	for _, action := range []UnknownTenantAction{UnknownWorst, UnknownPass, UnknownDrop} {
		for seed := int64(1); seed <= 4; seed++ {
			got := NewPreprocessor(jp, action)
			want := NewPreprocessor(jp, action)
			ps := mixPackets(jp, rand.New(rand.NewSource(seed)), 500)
			ref := copyPackets(ps)

			keptGot := got.ApplyBatch(ps)
			keptWant := referenceBatch(want, ref)

			if keptGot != keptWant {
				t.Fatalf("%v seed %d: kept %d, want %d", action, seed, keptGot, keptWant)
			}
			for i := range ps {
				if ps[i].ID != ref[i].ID || ps[i].Rank != ref[i].Rank {
					t.Fatalf("%v seed %d: packet[%d] = id %d rank %d, want id %d rank %d",
						action, seed, i, ps[i].ID, ps[i].Rank, ref[i].ID, ref[i].Rank)
				}
			}
			if got.Stats() != want.Stats() {
				t.Fatalf("%v seed %d: stats %+v, want %+v", action, seed, got.Stats(), want.Stats())
			}
		}
	}
}

// TestApplyBatchSparseFallback: a sparse tenant-ID range disables the dense
// table; ApplyBatch must still match Process exactly via the fallback.
func TestApplyBatchSparseFallback(t *testing.T) {
	jp := sparsePolicy(t)
	pp := NewPreprocessor(jp, UnknownDrop)
	if pp.flat != nil {
		t.Fatalf("flat table built over tenant span %d, want sparse fallback", maxFlatTenantSpan)
	}
	want := NewPreprocessor(jp, UnknownDrop)
	ps := mixPackets(jp, rand.New(rand.NewSource(7)), 300)
	ref := copyPackets(ps)
	kept := pp.ApplyBatch(ps)
	keptWant := referenceBatch(want, ref)
	if kept != keptWant {
		t.Fatalf("kept %d, want %d", kept, keptWant)
	}
	for i := range ps {
		if ps[i].ID != ref[i].ID || ps[i].Rank != ref[i].Rank {
			t.Fatalf("packet[%d] = id %d rank %d, want id %d rank %d",
				i, ps[i].ID, ps[i].Rank, ref[i].ID, ref[i].Rank)
		}
	}
	if pp.Stats() != want.Stats() {
		t.Fatalf("stats %+v, want %+v", pp.Stats(), want.Stats())
	}
}

// TestApplyBatchInstrumentedFallback: an instrumented pre-processor must
// keep its per-tenant counters exact, so ApplyBatch falls back to Process.
func TestApplyBatchInstrumentedFallback(t *testing.T) {
	jp := batchPolicy(t)
	pp := NewPreprocessor(jp, UnknownWorst)
	pp.EnableMetrics(obs.NewRegistry(), nil)
	want := NewPreprocessor(jp, UnknownWorst)
	ps := mixPackets(jp, rand.New(rand.NewSource(11)), 200)
	ref := copyPackets(ps)
	if kept := pp.ApplyBatch(ps); kept != referenceBatch(want, ref) {
		t.Fatal("instrumented batch diverged from reference in kept count")
	}
	for i := range ps {
		if ps[i].Rank != ref[i].Rank {
			t.Fatalf("packet[%d] rank %d, want %d", i, ps[i].Rank, ref[i].Rank)
		}
	}
}

// TestApplyBatchBoundaryMetamorphic: splitting one stream into batches at
// any boundary must not change any packet's output rank or the aggregate
// stats — batching is an amortization, never a semantic boundary.
func TestApplyBatchBoundaryMetamorphic(t *testing.T) {
	jp := batchPolicy(t)
	base := mixPackets(jp, rand.New(rand.NewSource(21)), 96)
	whole := NewPreprocessor(jp, UnknownDrop)
	wholePs := copyPackets(base)
	whole.ApplyBatch(wholePs)
	rankOf := make(map[uint64]int64, len(wholePs))
	for _, p := range wholePs {
		rankOf[p.ID] = p.Rank
	}
	for cut := 0; cut <= len(base); cut += 7 {
		split := NewPreprocessor(jp, UnknownDrop)
		ps := copyPackets(base)
		split.ApplyBatch(ps[:cut])
		split.ApplyBatch(ps[cut:])
		for _, p := range ps {
			if p.Rank != rankOf[p.ID] {
				t.Fatalf("cut %d: packet %d rank %d, want %d", cut, p.ID, p.Rank, rankOf[p.ID])
			}
		}
		if split.Stats() != whole.Stats() {
			t.Fatalf("cut %d: stats %+v, want %+v", cut, split.Stats(), whole.Stats())
		}
	}
}

// TestAllocBudgetPreprocBatch pins the batched pre-processor at 0 allocs
// per batch once the drop scratch has warmed.
func TestAllocBudgetPreprocBatch(t *testing.T) {
	jp := batchPolicy(t)
	pp := NewPreprocessor(jp, UnknownDrop)
	ps := mixPackets(jp, rand.New(rand.NewSource(31)), 256)
	batch := make([]*pkt.Packet, len(ps))
	run := func() {
		copy(batch, ps)
		pp.ApplyBatch(batch)
	}
	run() // warm the drop scratch
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("ApplyBatch allocates %.1f times per batch, want 0", avg)
	}
}

// BenchmarkPreprocBatch measures the batched path against the equivalent
// per-packet Process loop over the same 256-packet batch.
func BenchmarkPreprocBatch(b *testing.B) {
	jp := batchPolicy(b)
	ps := mixPackets(jp, rand.New(rand.NewSource(41)), 256)
	batch := make([]*pkt.Packet, len(ps))
	b.Run("batch", func(b *testing.B) {
		pp := NewPreprocessor(jp, UnknownWorst)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(batch, ps)
			pp.ApplyBatch(batch)
		}
	})
	b.Run("process", func(b *testing.B) {
		pp := NewPreprocessor(jp, UnknownWorst)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(batch, ps)
			for _, p := range batch {
				pp.Process(p)
			}
		}
	})
}
