package core

import (
	"encoding/json"
	"fmt"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

// jointPolicyJSON is the serialized form of a JointPolicy: the artifact a
// control plane ships to pre-processors (the paper's Fig. 1 arrow from the
// synthesizer to the data plane). Everything needed to execute the policy
// is value data — no rank-function code crosses the wire, only the
// synthesized transformations.
type jointPolicyJSON struct {
	Spec       string            `json:"spec"`
	Version    uint64            `json:"version"`
	Output     [2]int64          `json:"output"`
	Transforms []transformJSON   `json:"transforms"`
	Tiers      []tierPlanJSON    `json:"tiers"`
	Names      map[string]uint16 `json:"names"`
}

type transformJSON struct {
	Tenant uint16 `json:"tenant"`
	Lo     int64  `json:"lo"`
	Hi     int64  `json:"hi"`
	Levels int64  `json:"levels"`
	Stride int64  `json:"stride"`
	Phase  int64  `json:"phase"`
	Weight int64  `json:"weight,omitempty"`
	Offset int64  `json:"offset"`
}

type tierPlanJSON struct {
	Lo      int64    `json:"lo"`
	Hi      int64    `json:"hi"`
	Tenants []string `json:"tenants"`
}

// MarshalJSON implements json.Marshaler.
func (jp *JointPolicy) MarshalJSON() ([]byte, error) {
	out := jointPolicyJSON{
		Spec:    jp.Spec.String(),
		Version: jp.Version,
		Output:  [2]int64{jp.Output.Lo, jp.Output.Hi},
		Names:   make(map[string]uint16, len(jp.ByName)),
	}
	// Deterministic order: spec order.
	for _, name := range jp.Spec.Tenants() {
		id, ok := jp.ByName[name]
		if !ok {
			continue
		}
		tr := jp.Transforms[id]
		out.Transforms = append(out.Transforms, transformJSON{
			Tenant: uint16(id), Lo: tr.Lo, Hi: tr.Hi, Levels: tr.Levels,
			Stride: tr.Stride, Phase: tr.Phase, Weight: tr.Weight, Offset: tr.Offset,
		})
		out.Names[name] = uint16(id)
	}
	for _, tp := range jp.Tiers {
		out.Tiers = append(out.Tiers, tierPlanJSON{
			Lo: tp.Bounds.Lo, Hi: tp.Bounds.Hi, Tenants: tp.Tenants,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (jp *JointPolicy) UnmarshalJSON(data []byte) error {
	var in jointPolicyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	spec, err := policy.Parse(in.Spec)
	if err != nil {
		return fmt.Errorf("core: joint policy spec: %w", err)
	}
	jp.Spec = spec
	jp.Version = in.Version
	jp.Output = rank.Bounds{Lo: in.Output[0], Hi: in.Output[1]}
	jp.Transforms = make(map[pkt.TenantID]Transform, len(in.Transforms))
	jp.ByName = make(map[string]pkt.TenantID, len(in.Names))
	for _, tr := range in.Transforms {
		jp.Transforms[pkt.TenantID(tr.Tenant)] = Transform{
			Lo: tr.Lo, Hi: tr.Hi, Levels: tr.Levels,
			Stride: tr.Stride, Phase: tr.Phase, Weight: tr.Weight, Offset: tr.Offset,
		}
	}
	for name, id := range in.Names {
		jp.ByName[name] = pkt.TenantID(id)
	}
	jp.Tiers = jp.Tiers[:0]
	for _, tp := range in.Tiers {
		jp.Tiers = append(jp.Tiers, TierPlan{
			Bounds:  rank.Bounds{Lo: tp.Lo, Hi: tp.Hi},
			Tenants: tp.Tenants,
		})
	}
	return nil
}
