package core

import (
	"fmt"
	"sort"
)

// Replay-fidelity-driven backend selection.
//
// Universal Packet Scheduling (Mittal et al.) frames scheduler quality as
// a replay question: record the departure schedule an ideal PIFO produces,
// feed the identical arrivals to the approximation, and measure how far
// its schedule deviates. internal/conform implements that oracle and
// distills each backend's measurements into the FidelityProfile below;
// this file implements the policy side — given profiles and a device's
// capabilities, pick the backend to deploy.

// FidelityProfile summarizes one backend's measured replay fidelity and
// drop profile, aggregated over a scenario sweep (see
// conform.ReplayReport.Profiles). All per-packet figures are normalized by
// the ideal schedule's delivered-packet count, so profiles from sweeps of
// different sizes are comparable.
type FidelityProfile struct {
	// Backend is the deployment backend the profile describes.
	Backend Backend
	// ExactReplayRate is the fraction of scenarios whose delivered
	// schedule (order and drop set) exactly reproduced the ideal PIFO's.
	ExactReplayRate float64
	// InversionsPerPacket is the mean number of UPS pair inversions —
	// packet pairs delivered in the opposite relative order from the
	// ideal schedule — per delivered packet.
	InversionsPerPacket float64
	// DisplacementPerPacket is the mean |actual position − ideal
	// position| per delivered packet.
	DisplacementPerPacket float64
	// DropDivergenceRate is the fraction of offered packets delivered by
	// exactly one of {backend, ideal} — the drop-profile disagreement.
	DropDivergenceRate float64
}

// Selection weights: inversions and displacement are the two deviation
// axes of the replay test and count equally per unit; drop divergence is
// weighted heaviest because a diverging drop profile loses packets the
// ideal schedule would have delivered (an isolation violation, not a mere
// reordering); the exact-replay rate breaks ties among backends whose
// deviation measures round to equal.
const (
	weightExact        = 1.0
	weightInversions   = 1.0
	weightDisplacement = 0.5
	weightDropDiverge  = 2.0
)

// Score folds the profile into one comparable figure; higher is better.
// An exact backend (PIFO) scores 1.0; every deviation subtracts.
func (p FidelityProfile) Score() float64 {
	return weightExact*p.ExactReplayRate -
		weightInversions*p.InversionsPerPacket -
		weightDisplacement*p.DisplacementPerPacket -
		weightDropDiverge*p.DropDivergenceRate
}

// SupportedBackends lists the deployment backends a device target can
// realize: every device has at least a FIFO; a sorted queue realizes the
// ideal PIFO; a bank of priority queues realizes the static SP mapping,
// the adaptive SP-PIFO, a calendar, and the FFS bucket queue (a rotating
// bucket bank, like the calendar but indexed in O(1)); an admission stage
// realizes AIFO, and combined with a queue bank the admission+scheduling
// discipline.
func (t Target) SupportedBackends() []Backend {
	out := []Backend{BackendFIFO}
	if t.Sorted {
		out = append(out, BackendPIFO)
	}
	if t.Queues > 1 {
		out = append(out, BackendSPQueues, BackendSPPIFO, BackendCalendar, BackendBucketQ)
	}
	if t.Admission {
		out = append(out, BackendAIFO)
		if t.Queues > 1 {
			out = append(out, BackendAdmission)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SelectBackend returns the highest-scoring profile whose backend passes
// the feasible filter (nil = all feasible). Ties break toward the lower
// enum value, so selection is deterministic for equal measurements. The
// second return is false when no profile is feasible.
func SelectBackend(profiles []FidelityProfile, feasible func(Backend) bool) (FidelityProfile, bool) {
	best := FidelityProfile{}
	found := false
	for _, p := range profiles {
		if feasible != nil && !feasible(p.Backend) {
			continue
		}
		if !found || p.Score() > best.Score() ||
			(p.Score() == best.Score() && p.Backend < best.Backend) {
			best = p
			found = true
		}
	}
	return best, found
}

// DeployBest deploys the joint policy onto the best-scoring backend the
// deployment options can realize: BackendSPQueues is feasible only when
// opts.Queues (defaulted) can isolate every strict tier; every other
// backend always deploys. Profiles typically come from a conformance
// replay sweep (conform.ReplayReport.Profiles); an empty slice is an
// error — callers without measurements should pick a backend explicitly.
func (jp *JointPolicy) DeployBest(profiles []FidelityProfile, opts DeployOptions) (*Deployment, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("core: DeployBest needs at least one fidelity profile")
	}
	queues := opts.defaults().Queues
	p, ok := SelectBackend(profiles, func(b Backend) bool {
		if b == BackendSPQueues {
			return queues >= len(jp.Tiers)
		}
		return b >= 0 && b < numBackends
	})
	if !ok {
		return nil, fmt.Errorf("core: no feasible backend among %d profiles", len(profiles))
	}
	return jp.Deploy(p.Backend, opts)
}
