package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"qvisor/internal/pkt"
)

// Epoch is one immutable published policy generation: the joint policy,
// an optional deployment compiled from it, and an in-flight packet
// refcount. Everything except the refcount is frozen at publish time;
// readers never see a partially-updated epoch (the store swaps whole
// *Epoch pointers).
type Epoch struct {
	// Gen is the generation number, strictly increasing across publishes.
	Gen uint64
	// Policy is the joint policy of this generation.
	Policy *JointPolicy
	// Deployment is the scheduler compiled for this generation, when the
	// publisher deploys (nil otherwise). Note the scheduler instance
	// itself is stateful; the sim decides whether to swap it in.
	Deployment *Deployment

	action   UnknownTenantAction
	inflight atomic.Int64
}

// Inflight returns the number of packets currently pinned to this epoch
// (acquired at the pre-processing point, released at delivery or drop).
func (e *Epoch) Inflight() int64 { return e.inflight.Load() }

// Process rewrites p.Rank under this epoch's joint policy, mirroring
// Preprocessor.Process but stat-free and read-only, so any number of
// data-plane readers can call it concurrently against an immutable
// epoch. It returns false if the packet must be dropped (unknown tenant
// under UnknownDrop).
func (e *Epoch) Process(p *pkt.Packet) bool {
	tr, ok := e.Policy.Transforms[p.Tenant]
	if !ok {
		switch e.action {
		case UnknownPass:
			return true
		case UnknownDrop:
			return false
		default: // UnknownWorst
			p.Rank = e.Policy.Output.Hi + 1
			return true
		}
	}
	p.Rank = tr.Apply(p.Rank)
	return true
}

// EpochInfo is a read-only snapshot of one epoch's state.
type EpochInfo struct {
	// Gen is the epoch's generation number.
	Gen uint64 `json:"gen"`
	// Inflight is the pinned-packet count at snapshot time.
	Inflight int64 `json:"inflight"`
}

// EpochGenerations is a consistent snapshot of the store: the current
// epoch, every epoch still draining in-flight packets, and the lifetime
// publish count.
type EpochGenerations struct {
	// Current is the live epoch (nil before the first publish).
	Current *EpochInfo `json:"current,omitempty"`
	// Draining lists superseded epochs with packets still in flight,
	// ascending by generation.
	Draining []EpochInfo `json:"draining,omitempty"`
	// Published is the total number of epochs ever published.
	Published uint64 `json:"published"`
}

// EpochStore publishes policy generations RCU-style: writers build a
// complete immutable Epoch and swap it in with one atomic pointer store;
// readers pin the epoch they started under with Acquire and keep using
// its transforms until Release, so a packet never observes a mix of two
// generations mid-flight. Superseded epochs are kept in a draining set
// until their in-flight count returns to zero.
//
// The data-plane path (Current/Acquire/Release fast path) is lock-free;
// Publish and the draining-set bookkeeping take a mutex, which is fine at
// control-plane rates.
type EpochStore struct {
	action UnknownTenantAction
	cur    atomic.Pointer[Epoch]

	mu        sync.Mutex
	draining  map[uint64]*Epoch
	published uint64
}

// NewEpochStore returns an empty store. Epochs published through it
// handle unknown tenants with the given action (matching the runtime
// controller's pre-processor so both paths agree).
func NewEpochStore(action UnknownTenantAction) *EpochStore {
	return &EpochStore{action: action, draining: make(map[uint64]*Epoch)}
}

// Publish installs a new generation built from jp (and an optional
// deployment) and returns it. The previous epoch moves to the draining
// set until its in-flight packets finish. Generation numbers follow
// jp.Version when it keeps them strictly increasing, and self-increment
// otherwise (e.g. policies synthesized outside the controller).
func (s *EpochStore) Publish(jp *JointPolicy, d *Deployment) *Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.cur.Load()
	prevGen := uint64(0)
	if prev != nil {
		prevGen = prev.Gen
	}
	gen := jp.Version
	if gen == 0 || gen <= prevGen {
		gen = prevGen + 1
	}
	e := &Epoch{Gen: gen, Policy: jp, Deployment: d, action: s.action}
	s.cur.Store(e)
	s.published++
	if prev != nil && prev.Inflight() > 0 {
		s.draining[prev.Gen] = prev
	}
	// Lazy sweep: drop drained epochs whose last packet released while
	// they sat in the set.
	for g, old := range s.draining {
		if old.Inflight() <= 0 {
			delete(s.draining, g)
		}
	}
	return e
}

// Current returns the live epoch without pinning it (nil before the
// first publish). Use Acquire for per-packet reads.
func (s *EpochStore) Current() *Epoch { return s.cur.Load() }

// Acquire pins the live epoch for one in-flight packet and returns it
// (nil before the first publish). The caller must pair it with
// Release(e.Gen) when the packet leaves the data plane — delivered or
// dropped — so superseded epochs can finish draining.
func (s *EpochStore) Acquire() *Epoch {
	e := s.cur.Load()
	if e == nil {
		return nil
	}
	e.inflight.Add(1)
	// A Publish may have swapped cur between the load and the Add; that
	// is fine — the packet is correctly pinned to the epoch it read, which
	// Publish either already moved to draining (sweep finds the count) or
	// is about to (Inflight() > 0 keeps it there).
	return e
}

// Release unpins one packet from generation gen. Unknown generations are
// ignored (a packet acquired before the store existed, or a double
// release — both benign).
func (s *EpochStore) Release(gen uint64) {
	if e := s.cur.Load(); e != nil && e.Gen == gen {
		e.inflight.Add(-1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// cur may have changed between the fast-path load and taking the
	// lock; re-check both places.
	if e := s.cur.Load(); e != nil && e.Gen == gen {
		e.inflight.Add(-1)
		return
	}
	if e, ok := s.draining[gen]; ok {
		if e.inflight.Add(-1) <= 0 {
			delete(s.draining, gen)
		}
	}
}

// Generations returns a snapshot of the store's state.
func (s *EpochStore) Generations() EpochGenerations {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := EpochGenerations{Published: s.published}
	if e := s.cur.Load(); e != nil {
		out.Current = &EpochInfo{Gen: e.Gen, Inflight: e.Inflight()}
	}
	for _, e := range s.draining {
		if e.Inflight() > 0 {
			out.Draining = append(out.Draining, EpochInfo{Gen: e.Gen, Inflight: e.Inflight()})
		}
	}
	sort.Slice(out.Draining, func(i, j int) bool { return out.Draining[i].Gen < out.Draining[j].Gen })
	return out
}

// Draining returns the number of superseded epochs still holding
// in-flight packets.
func (s *EpochStore) Draining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.draining {
		if e.Inflight() > 0 {
			n++
		}
	}
	return n
}
