package core

import (
	"fmt"

	"qvisor/internal/rank"
)

// Transform is one rank-transformation function of the joint scheduling
// policy (§3.2). It composes the paper's two primitives:
//
//   - rank normalization: the tenant's declared rank interval [Lo, Hi] is
//     bounded (clamped) and quantized into Levels discrete levels, so
//     heterogeneous policies become comparable on a common scale;
//   - rank shift: the quantized level is placed into the joint rank space
//     at Offset, optionally interleaved with the other tenants of a
//     sharing group (stride Stride, phase Phase).
//
// The output rank is
//
//	Offset + quantize(clamp(r)) * Stride + Phase
//
// which reproduces the paper's Figure 3 exactly (see TestFigure3): sharing
// tenants map to interleaved rank slots, so a PIFO alternates between them,
// while shifted groups sit in disjoint rank bands.
type Transform struct {
	// Lo and Hi bound the input ranks; out-of-range ranks clamp.
	Lo, Hi int64
	// Levels is the number of quantization levels (≥ 1).
	Levels int64
	// Stride is the sharing group's interleave cycle width: the total
	// share weight of the group (k for k equal tenants).
	Stride int64
	// Phase is the first slot this tenant owns within each cycle
	// (0 ≤ Phase < Stride).
	Phase int64
	// Weight is the number of consecutive slots the tenant owns per
	// cycle (weighted sharing, "T1*2 + T2"). Zero means 1.
	Weight int64
	// Offset is the base of the group's output band.
	Offset int64
}

// IdentityTransform passes ranks through unchanged over the given bounds.
func IdentityTransform(b rank.Bounds) Transform {
	return Transform{Lo: b.Lo, Hi: b.Hi, Levels: b.Span() + 1, Stride: 1, Phase: 0, Offset: b.Lo}
}

// Quantize maps an input rank to its level in [0, Levels): the affine
// stretch of [Lo, Hi] onto [0, Levels-1]. Stretching (rather than fixed-
// width bucketing) is what makes heterogeneous rank distributions "fairly
// compared" (§3.2): a tenant whose ranks span [0, 10^4] and one spanning
// [0, 10^8] both occupy the full normalized scale.
func (t Transform) Quantize(r int64) int64 {
	if r < t.Lo {
		r = t.Lo
	}
	if r > t.Hi {
		r = t.Hi
	}
	span := t.Hi - t.Lo
	if span <= 0 || t.Levels <= 1 {
		return 0
	}
	d, m := r-t.Lo, t.Levels-1
	// Integer math while d*m fits; monotone float fallback for extreme
	// spans (the map stays monotone either way).
	if m <= (1<<62)/(span+1) {
		return d * m / span
	}
	return int64(float64(d) / float64(span) * float64(m))
}

func (t Transform) weight() int64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Apply returns the transformed (output) rank for input rank r. A tenant
// with weight w owns w consecutive slots per cycle of Stride, so across a
// backlog it receives w of every Stride dequeue slots.
func (t Transform) Apply(r int64) int64 {
	lvl := t.Quantize(r)
	if max := t.Levels - 1; lvl > max {
		lvl = max
	}
	w := t.weight()
	return t.Offset + (lvl/w)*t.Stride + t.Phase + lvl%w
}

// OutputBounds returns the closed interval of possible output ranks.
func (t Transform) OutputBounds() rank.Bounds {
	w := t.weight()
	last := t.Levels - 1
	return rank.Bounds{
		Lo: t.Offset + t.Phase,
		Hi: t.Offset + (last/w)*t.Stride + t.Phase + last%w,
	}
}

// String implements fmt.Stringer.
func (t Transform) String() string {
	if t.weight() > 1 {
		return fmt.Sprintf("[%d,%d]→%d levels ×%d+%d(w%d) @%d ⇒ %v",
			t.Lo, t.Hi, t.Levels, t.Stride, t.Phase, t.Weight, t.Offset, t.OutputBounds())
	}
	return fmt.Sprintf("[%d,%d]→%d levels ×%d+%d @%d ⇒ %v",
		t.Lo, t.Hi, t.Levels, t.Stride, t.Phase, t.Offset, t.OutputBounds())
}
