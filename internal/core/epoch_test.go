package core

import (
	"sync"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

func epochTestPolicy(t *testing.T, version uint64, hi int64) *JointPolicy {
	t.Helper()
	spec, err := policy.Parse("a >> b")
	if err != nil {
		t.Fatal(err)
	}
	jp, err := Synthesize([]*Tenant{
		{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: hi}},
		{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: hi}},
	}, spec, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jp.Version = version
	return jp
}

func TestEpochStoreLifecycle(t *testing.T) {
	s := NewEpochStore(UnknownWorst)
	if s.Current() != nil {
		t.Fatal("empty store has a current epoch")
	}
	if s.Acquire() != nil {
		t.Fatal("empty store acquired an epoch")
	}
	s.Release(7) // unknown generation: benign no-op

	e1 := s.Publish(epochTestPolicy(t, 1, 100), nil)
	if e1.Gen != 1 {
		t.Fatalf("first generation = %d, want 1", e1.Gen)
	}
	a := s.Acquire()
	if a != e1 || a.Inflight() != 1 {
		t.Fatalf("acquire: epoch %v inflight %d", a.Gen, a.Inflight())
	}

	// Supersede while a packet is still pinned: e1 drains.
	e2 := s.Publish(epochTestPolicy(t, 2, 100), nil)
	if e2.Gen != 2 {
		t.Fatalf("second generation = %d, want 2", e2.Gen)
	}
	if got := s.Current(); got != e2 {
		t.Fatalf("current = gen %d, want 2", got.Gen)
	}
	if s.Draining() != 1 {
		t.Fatalf("draining = %d, want 1", s.Draining())
	}
	g := s.Generations()
	if g.Published != 2 || g.Current == nil || g.Current.Gen != 2 {
		t.Fatalf("generations snapshot: %+v", g)
	}
	if len(g.Draining) != 1 || g.Draining[0].Gen != 1 || g.Draining[0].Inflight != 1 {
		t.Fatalf("draining snapshot: %+v", g.Draining)
	}

	// The pinned packet finishes on its start epoch; the store drains.
	s.Release(1)
	if s.Draining() != 0 {
		t.Fatalf("draining = %d after release, want 0", s.Draining())
	}
	if e1.Inflight() != 0 {
		t.Fatalf("e1 inflight = %d, want 0", e1.Inflight())
	}

	// Release on the live epoch takes the lock-free path.
	s.Acquire()
	s.Release(2)
	if e2.Inflight() != 0 {
		t.Fatalf("e2 inflight = %d, want 0", e2.Inflight())
	}
}

func TestEpochStoreGenerationNumbers(t *testing.T) {
	s := NewEpochStore(UnknownWorst)
	// Version 0 (policies synthesized outside the controller): the store
	// self-increments.
	if e := s.Publish(epochTestPolicy(t, 0, 100), nil); e.Gen != 1 {
		t.Fatalf("gen = %d, want 1", e.Gen)
	}
	// Version follows jp.Version when strictly increasing.
	if e := s.Publish(epochTestPolicy(t, 7, 100), nil); e.Gen != 7 {
		t.Fatalf("gen = %d, want 7", e.Gen)
	}
	// Non-increasing versions self-increment rather than colliding.
	if e := s.Publish(epochTestPolicy(t, 7, 100), nil); e.Gen != 8 {
		t.Fatalf("gen = %d, want 8", e.Gen)
	}
	if e := s.Publish(epochTestPolicy(t, 3, 100), nil); e.Gen != 9 {
		t.Fatalf("gen = %d, want 9", e.Gen)
	}
	if g := s.Generations(); g.Published != 4 {
		t.Fatalf("published = %d, want 4", g.Published)
	}
}

func TestEpochProcess(t *testing.T) {
	jp := epochTestPolicy(t, 1, 100)
	for _, tc := range []struct {
		action   UnknownTenantAction
		keep     bool
		wantRank int64
	}{
		{UnknownWorst, true, jp.Output.Hi + 1},
		{UnknownPass, true, 42},
		{UnknownDrop, false, 42},
	} {
		s := NewEpochStore(tc.action)
		e := s.Publish(jp, nil)
		// Known tenant: the transform applies exactly as the
		// pre-processor's would.
		p := &pkt.Packet{Tenant: 1, Rank: 10}
		want := jp.Transforms[1].Apply(10)
		if !e.Process(p) || p.Rank != want {
			t.Fatalf("known tenant: rank %d, want %d", p.Rank, want)
		}
		// Unknown tenant follows the configured action.
		p = &pkt.Packet{Tenant: 99, Rank: 42}
		if keep := e.Process(p); keep != tc.keep || p.Rank != tc.wantRank {
			t.Errorf("action %v: keep=%v rank=%d, want keep=%v rank=%d",
				tc.action, keep, p.Rank, tc.keep, tc.wantRank)
		}
	}
}

// TestEpochStoreConcurrent hammers Acquire/Release from many goroutines
// racing a publisher, then checks conservation: every pin released, no
// epoch stuck draining. Run with -race in CI.
func TestEpochStoreConcurrent(t *testing.T) {
	s := NewEpochStore(UnknownWorst)
	s.Publish(epochTestPolicy(t, 1, 100), nil)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e := s.Acquire()
				if e == nil {
					t.Error("nil epoch after first publish")
					return
				}
				if e.Policy == nil {
					t.Error("epoch without policy")
					return
				}
				p := &pkt.Packet{Tenant: 1, Rank: int64(i % 100)}
				e.Process(p)
				s.Release(e.Gen)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := uint64(2); v <= 50; v++ {
			s.Publish(epochTestPolicy(t, v, 100+int64(v)), nil)
		}
	}()
	wg.Wait()
	<-done

	if d := s.Draining(); d != 0 {
		t.Errorf("draining = %d after all releases, want 0", d)
	}
	if cur := s.Current(); cur.Inflight() != 0 {
		t.Errorf("current inflight = %d, want 0", cur.Inflight())
	}
	if g := s.Generations(); g.Published != 50 {
		t.Errorf("published = %d, want 50", g.Published)
	}
}
