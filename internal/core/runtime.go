package core

import (
	"errors"
	"fmt"

	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/sim"
)

// EventKind classifies controller events.
type EventKind int

const (
	// EventResynthesized: the joint policy was recompiled.
	EventResynthesized EventKind = iota
	// EventTenantJoined: a tenant was added at runtime.
	EventTenantJoined
	// EventTenantLeft: a tenant was removed at runtime.
	EventTenantLeft
	// EventAdversarial: a tenant exceeded the out-of-bounds tolerance.
	EventAdversarial
	// EventQuarantined: an adversarial tenant was demoted to a dedicated
	// lowest-priority tier.
	EventQuarantined
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventResynthesized:
		return "resynthesized"
	case EventTenantJoined:
		return "tenant-joined"
	case EventTenantLeft:
		return "tenant-left"
	case EventAdversarial:
		return "adversarial"
	case EventQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is a controller notification.
type Event struct {
	Kind   EventKind
	Tenant string
	At     sim.Time
	Detail string
}

// ControllerOptions tune the runtime controller.
type ControllerOptions struct {
	// Synth are the synthesis options used at every (re)compilation.
	Synth SynthOptions
	// DriftThreshold triggers re-synthesis when any tenant's Monitor
	// drift exceeds it. Zero means 0.25.
	DriftThreshold float64
	// AdversarialFraction flags a tenant whose out-of-bounds fraction
	// exceeds it. Zero means 0.05.
	AdversarialFraction float64
	// MinObservations gates drift checks until a tenant has emitted this
	// many ranks. Zero means 256.
	MinObservations uint64
	// WindowSize is each tenant monitor's sliding window. Zero means
	// 1024.
	WindowSize int
	// Quarantine, when true, demotes tenants flagged as adversarial: the
	// joint policy is re-synthesized with the offender moved into a
	// strictly lowest-priority tier of its own, so out-of-contract ranks
	// can no longer displace compliant tenants (§2: monitoring
	// techniques to "identify such adversarial workloads ... and
	// automatically stop them").
	Quarantine bool
	// FullResynthesis disables the incremental per-tier memoization and
	// forces every recompilation through a full Synthesize. Off by
	// default; useful for A/B measurement (the churn benchmark) and as an
	// escape hatch.
	FullResynthesis bool
	// EpochDeploy, if non-nil, compiles each published epoch onto the
	// given backend so Epoch.Deployment is populated alongside the joint
	// policy. Without it epochs carry the policy only.
	EpochDeploy *EpochDeploy
	// OnEvent, if non-nil, observes controller events.
	OnEvent func(Event)
	// Metrics, if non-nil, exports controller activity (adaptation
	// events, re-synthesis count, quarantine transitions) and the
	// pre-processor's per-tenant counters into this registry; the
	// API server serves it at GET /v1/metrics.
	Metrics *obs.Registry
}

func (o ControllerOptions) defaults() ControllerOptions {
	if o.DriftThreshold == 0 {
		o.DriftThreshold = 0.25
	}
	if o.AdversarialFraction == 0 {
		o.AdversarialFraction = 0.05
	}
	if o.MinObservations == 0 {
		o.MinObservations = 256
	}
	if o.WindowSize == 0 {
		o.WindowSize = 1024
	}
	return o
}

// Controller is QVISOR's event-driven control loop (§2, Idea 2): it holds
// the current tenant set and operator spec, watches per-tenant rank
// monitors, and re-synthesizes the joint policy when tenants join or leave
// or when observed rank distributions drift from the declared bounds —
// "similarly to how we deploy forwarding rules when a packet from a new
// flow arrives to a software-defined-networking switch".
type Controller struct {
	opts        ControllerOptions
	spec        *policy.Spec
	tenants     map[string]*Tenant
	monitors    map[string]*Monitor
	flagged     map[string]bool
	quarantined map[string]bool
	// lastCount is each monitor's observation count at the previous
	// Check, for idle-tenant detection (§5 queue reallocation).
	lastCount map[string]uint64
	active    map[string]bool
	pp        *Preprocessor
	version   uint64
	resynth   *Resynthesizer
	epochs    *EpochStore
	obs       *controllerObs
}

// EpochDeploy configures per-epoch deployment (ControllerOptions).
type EpochDeploy struct {
	// Backend is the hardware model each epoch is compiled onto.
	Backend Backend
	// Options tune the deployment.
	Options DeployOptions
}

// Metric families exported by an instrumented controller.
const (
	MetricCtlResyntheses = "qvisor_controller_resyntheses_total"
	MetricCtlEvents      = "qvisor_controller_events_total"
	MetricCtlVersion     = "qvisor_controller_policy_version"
	MetricCtlTenants     = "qvisor_controller_tenants"
	MetricCtlFlagged     = "qvisor_controller_flagged_tenants"
	MetricCtlQuarantined = "qvisor_controller_quarantined_tenants"
)

// controllerObs holds the controller's registry-backed instruments. Event
// counters are pre-registered for every EventKind so the exported series
// set is stable from startup.
type controllerObs struct {
	resyntheses *obs.Counter
	events      map[EventKind]*obs.Counter
	version     *obs.Gauge
	tenants     *obs.Gauge
	flagged     *obs.Gauge
	quarantined *obs.Gauge
}

func newControllerObs(reg *obs.Registry) *controllerObs {
	if reg == nil {
		return nil
	}
	o := &controllerObs{
		resyntheses: reg.Counter(MetricCtlResyntheses,
			"Joint-policy compilations performed."),
		events: make(map[EventKind]*obs.Counter),
		version: reg.Gauge(MetricCtlVersion,
			"Version of the currently deployed joint policy."),
		tenants: reg.Gauge(MetricCtlTenants,
			"Tenants currently registered."),
		flagged: reg.Gauge(MetricCtlFlagged,
			"Tenants currently flagged as adversarial."),
		quarantined: reg.Gauge(MetricCtlQuarantined,
			"Tenants currently demoted to the bottom tier."),
	}
	for _, k := range []EventKind{
		EventResynthesized, EventTenantJoined, EventTenantLeft,
		EventAdversarial, EventQuarantined,
	} {
		o.events[k] = reg.Counter(MetricCtlEvents,
			"Controller adaptation events by kind.", obs.L("kind", k.String()))
	}
	return o
}

// sync refreshes the controller gauges after any state change.
func (c *Controller) syncObs() {
	if c.obs == nil {
		return
	}
	c.obs.version.Set(float64(c.version))
	c.obs.tenants.Set(float64(len(c.tenants)))
	c.obs.flagged.Set(float64(len(c.flagged)))
	c.obs.quarantined.Set(float64(len(c.quarantined)))
}

// Typed sentinel errors reported by Join and Leave, so callers (notably
// the API server) can map failures to status codes with errors.Is instead
// of string matching.
var (
	// ErrTenantExists: Join with a name that is already registered.
	ErrTenantExists = errors.New("tenant already present")
	// ErrTenantNotFound: Leave (or a lookup) named an unknown tenant.
	ErrTenantNotFound = errors.New("tenant not present")
)

// NewController compiles the initial joint policy and returns the
// controller together with the pre-processor executing it.
func NewController(tenants []*Tenant, spec *policy.Spec, opts ControllerOptions) (*Controller, *Preprocessor, error) {
	opts = opts.defaults()
	c := &Controller{
		opts:        opts,
		spec:        spec,
		tenants:     make(map[string]*Tenant),
		monitors:    make(map[string]*Monitor),
		flagged:     make(map[string]bool),
		quarantined: make(map[string]bool),
		lastCount:   make(map[string]uint64),
		active:      make(map[string]bool),
		resynth:     NewResynthesizer(opts.Synth),
		epochs:      NewEpochStore(UnknownWorst),
		obs:         newControllerObs(opts.Metrics),
	}
	for _, t := range tenants {
		c.tenants[t.Name] = t
	}
	jp, err := c.compile()
	if err != nil {
		return nil, nil, err
	}
	if err := c.publish(jp); err != nil {
		return nil, nil, err
	}
	c.pp = NewPreprocessor(jp, UnknownWorst)
	c.pp.EnableMetrics(opts.Metrics, c.tenantName)
	c.resetMonitors()
	c.syncObs()
	return c, c.pp, nil
}

// Registry returns the metrics registry the controller was built with, or
// nil when uninstrumented. The API server exposes it at GET /v1/metrics.
func (c *Controller) Registry() *obs.Registry { return c.opts.Metrics }

// tenantName maps a tenant ID back to its registered name for metric
// labels; unregistered IDs fall back to a synthetic name.
func (c *Controller) tenantName(id pkt.TenantID) string {
	for name, t := range c.tenants {
		if t.ID == id {
			return name
		}
	}
	return fmt.Sprintf("tenant-%d", id)
}

// Policy returns the currently deployed joint policy.
func (c *Controller) Policy() *JointPolicy { return c.pp.Policy() }

// Version returns the number of compilations performed.
func (c *Controller) Version() uint64 { return c.version }

// Monitor returns the rank monitor for a tenant name, or nil.
func (c *Controller) Monitor(name string) *Monitor { return c.monitors[name] }

// Observe records a rank emitted by a tenant (before transformation). The
// simulator calls this from the pre-processor path.
func (c *Controller) Observe(tenant pkt.TenantID, r int64) {
	for name, t := range c.tenants {
		if t.ID == tenant {
			if m := c.monitors[name]; m != nil {
				m.Observe(r)
			}
			return
		}
	}
}

func (c *Controller) compile() (*JointPolicy, error) {
	names := c.spec.Tenants()
	inSpec := make(map[string]bool, len(names))
	list := make([]*Tenant, 0, len(c.tenants))
	for _, name := range names {
		t, ok := c.tenants[name]
		if !ok {
			return nil, fmt.Errorf("core: spec tenant %q not registered", name)
		}
		inSpec[name] = true
		list = append(list, t)
	}
	for name := range c.tenants {
		if !inSpec[name] {
			return nil, fmt.Errorf("core: tenant %q missing from operator spec %q", name, c.spec)
		}
	}
	var jp *JointPolicy
	var err error
	if c.opts.FullResynthesis {
		jp, err = Synthesize(list, c.spec, c.opts.Synth)
	} else {
		jp, err = c.resynth.Resynthesize(list, c.spec)
	}
	if err != nil {
		return nil, err
	}
	c.version++
	jp.Version = c.version
	if c.obs != nil {
		c.obs.resyntheses.Inc()
	}
	return jp, nil
}

// publish compiles the optional per-epoch deployment and installs jp as
// the next policy generation. On deployment failure the version bump is
// rolled back so epoch generations stay aligned with Version.
func (c *Controller) publish(jp *JointPolicy) error {
	var d *Deployment
	if ed := c.opts.EpochDeploy; ed != nil {
		var err error
		d, err = jp.Deploy(ed.Backend, ed.Options)
		if err != nil {
			c.version--
			return err
		}
	}
	c.epochs.Publish(jp, d)
	return nil
}

func (c *Controller) recompile(now sim.Time, reason string) error {
	jp, err := c.compile()
	if err != nil {
		return err
	}
	if err := c.publish(jp); err != nil {
		return err
	}
	c.pp.Update(jp)
	c.emit(Event{Kind: EventResynthesized, At: now, Detail: reason})
	return nil
}

func (c *Controller) resetMonitors() {
	for name, t := range c.tenants {
		b, err := t.EffectiveBounds()
		if err != nil {
			continue
		}
		c.monitors[name] = NewMonitor(b, c.opts.WindowSize)
	}
}

func (c *Controller) emit(e Event) {
	if c.obs != nil {
		c.obs.events[e.Kind].Inc()
		c.syncObs()
	}
	if c.opts.OnEvent != nil {
		c.opts.OnEvent(e)
	}
}

// Join adds a tenant at runtime, updates the operator spec, and
// re-synthesizes.
func (c *Controller) Join(now sim.Time, t *Tenant, spec *policy.Spec) error {
	if _, dup := c.tenants[t.Name]; dup {
		return fmt.Errorf("core: tenant %q: %w", t.Name, ErrTenantExists)
	}
	c.tenants[t.Name] = t
	c.spec = spec
	if err := c.recompile(now, "tenant "+t.Name+" joined"); err != nil {
		delete(c.tenants, t.Name)
		return err
	}
	b, err := t.EffectiveBounds()
	if err == nil {
		c.monitors[t.Name] = NewMonitor(b, c.opts.WindowSize)
	}
	c.emit(Event{Kind: EventTenantJoined, Tenant: t.Name, At: now})
	return nil
}

// Leave removes a tenant at runtime, updates the operator spec, and
// re-synthesizes.
func (c *Controller) Leave(now sim.Time, name string, spec *policy.Spec) error {
	t, ok := c.tenants[name]
	if !ok {
		return fmt.Errorf("core: tenant %q: %w", name, ErrTenantNotFound)
	}
	delete(c.tenants, name)
	delete(c.monitors, name)
	delete(c.flagged, name)
	delete(c.quarantined, name)
	c.spec = spec
	if err := c.recompile(now, "tenant "+name+" left"); err != nil {
		c.tenants[name] = t
		return err
	}
	c.emit(Event{Kind: EventTenantLeft, Tenant: name, At: now})
	return nil
}

// Check runs one control-loop iteration: flags (and optionally
// quarantines) adversarial tenants, and re-synthesizes with learned bounds
// when a tenant's rank distribution has drifted. It returns true when a
// new joint policy was deployed.
func (c *Controller) Check(now sim.Time) (bool, error) {
	drifted := false
	var quarantine []string
	for name, m := range c.monitors {
		// Activity between checks drives the §5 queue-reallocation
		// decision: a tenant that emitted nothing since the last check
		// is considered idle.
		c.active[name] = m.Count() > c.lastCount[name]
		c.lastCount[name] = m.Count()
		if m.Count() < c.opts.MinObservations {
			continue
		}
		if f := m.OutsideFraction(); f > c.opts.AdversarialFraction && !c.flagged[name] {
			c.flagged[name] = true
			c.emit(Event{
				Kind:   EventAdversarial,
				Tenant: name,
				At:     now,
				Detail: fmt.Sprintf("%.1f%% of ranks outside declared %v", 100*f, m.Declared()),
			})
			if c.opts.Quarantine {
				quarantine = append(quarantine, name)
			}
		}
		// Quarantined tenants keep their declared bounds: learning from
		// an adversary would let it steer the policy.
		if c.quarantined[name] || (c.opts.Quarantine && c.flagged[name]) {
			continue
		}
		if m.Drift() > c.opts.DriftThreshold {
			if lb, ok := m.LearnedBounds(); ok {
				c.tenants[name].Bounds = lb
				c.monitors[name] = NewMonitor(lb, c.opts.WindowSize)
				drifted = true
			}
		}
	}
	for _, name := range quarantine {
		if c.quarantined[name] {
			continue
		}
		c.spec = c.spec.Demote(name)
		c.quarantined[name] = true
		drifted = true
		c.emit(Event{
			Kind:   EventQuarantined,
			Tenant: name,
			At:     now,
			Detail: fmt.Sprintf("demoted to dedicated bottom tier: %s", c.spec),
		})
	}
	if !drifted {
		return false, nil
	}
	if err := c.recompile(now, "rank distribution drift"); err != nil {
		return false, err
	}
	return true, nil
}

// Quarantined reports whether a tenant has been demoted to the bottom
// tier.
func (c *Controller) Quarantined(name string) bool { return c.quarantined[name] }

// ActiveTenants returns the tenants that emitted at least one rank between
// the two most recent Check calls, in spec order. Before the first Check
// every tenant is considered active. Feed the result to
// JointPolicy.DeploySPActive to reallocate hardware queues away from idle
// tenants (§5).
func (c *Controller) ActiveTenants() []string {
	var out []string
	for _, name := range c.spec.Tenants() {
		if len(c.active) == 0 || c.active[name] {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		// Nothing transmitted at all: treat everyone as active rather
		// than deploying an empty allocation.
		return c.spec.Tenants()
	}
	return out
}

// Flagged reports whether a tenant has been flagged as adversarial.
func (c *Controller) Flagged(name string) bool { return c.flagged[name] }

// Spec returns the operator specification currently in force.
func (c *Controller) Spec() *policy.Spec { return c.spec }

// Tenants returns the registered tenants in spec order.
func (c *Controller) Tenants() []*Tenant {
	out := make([]*Tenant, 0, len(c.tenants))
	for _, name := range c.spec.Tenants() {
		if t, ok := c.tenants[name]; ok {
			out = append(out, t)
		}
	}
	return out
}

// UpdateSpec replaces the operator specification over the existing tenant
// set and re-synthesizes. The previous spec is restored on failure.
func (c *Controller) UpdateSpec(now sim.Time, spec *policy.Spec) error {
	old := c.spec
	c.spec = spec
	if err := c.recompile(now, "operator spec updated"); err != nil {
		c.spec = old
		return err
	}
	return nil
}

// Epochs returns the controller's policy-generation store. The data
// plane reads it per-packet (Acquire/Release); the API exposes it at
// GET /v1/epochs.
func (c *Controller) Epochs() *EpochStore { return c.epochs }

// ResynthStats returns the incremental synthesizer's cache counters.
func (c *Controller) ResynthStats() ResynthStats { return c.resynth.Stats() }

// Tenant returns the registered tenant with the given name.
func (c *Controller) Tenant(name string) (*Tenant, bool) {
	t, ok := c.tenants[name]
	return t, ok
}

// UpdateTenant replaces a registered tenant's definition (bounds,
// algorithm, levels — the name must match an existing tenant and the ID
// must stay unique) and re-synthesizes. The previous definition is
// restored on failure.
func (c *Controller) UpdateTenant(now sim.Time, t *Tenant) error {
	old, ok := c.tenants[t.Name]
	if !ok {
		return fmt.Errorf("core: tenant %q: %w", t.Name, ErrTenantNotFound)
	}
	c.tenants[t.Name] = t
	if err := c.recompile(now, "tenant "+t.Name+" updated"); err != nil {
		c.tenants[t.Name] = old
		return err
	}
	if b, err := t.EffectiveBounds(); err == nil {
		c.monitors[t.Name] = NewMonitor(b, c.opts.WindowSize)
	}
	return nil
}

// TenantOpKind classifies one entry of a batch mutation.
type TenantOpKind int

const (
	// OpJoin registers Tenant.
	OpJoin TenantOpKind = iota
	// OpLeave removes the tenant named Name.
	OpLeave
	// OpUpdate replaces the definition of the tenant named Tenant.Name.
	OpUpdate
)

// String implements fmt.Stringer.
func (k TenantOpKind) String() string {
	switch k {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// TenantOp is one entry of an ApplyBatch mutation.
type TenantOp struct {
	// Kind selects the operation.
	Kind TenantOpKind
	// Tenant is the definition for OpJoin/OpUpdate.
	Tenant *Tenant
	// Name names the tenant for OpLeave.
	Name string
}

// ErrBatchFailed wraps ApplyBatch failures caused by individual
// operations; the per-item errors carry the detail.
var ErrBatchFailed = errors.New("batch mutation failed")

// ApplyBatch applies a set of tenant mutations and one spec replacement
// as a single transaction: either every operation validates and the
// whole batch compiles into ONE new policy generation, or nothing
// changes. The returned slice has one entry per op (nil on success);
// when any entry is non-nil the batch was not applied and the error
// wraps ErrBatchFailed. Item errors wrap ErrTenantExists /
// ErrTenantNotFound so callers can classify them.
func (c *Controller) ApplyBatch(now sim.Time, ops []TenantOp, spec *policy.Spec) ([]error, error) {
	if len(ops) == 0 && spec == nil {
		return nil, fmt.Errorf("core: empty batch: %w", ErrBatchFailed)
	}
	// Stage the mutations on a copy of the tenant map, collecting
	// per-item errors without touching controller state.
	staged := make(map[string]*Tenant, len(c.tenants))
	for name, t := range c.tenants {
		staged[name] = t
	}
	itemErrs := make([]error, len(ops))
	failed := false
	var joined, left, updated []string
	for i, op := range ops {
		switch op.Kind {
		case OpJoin:
			if op.Tenant == nil {
				itemErrs[i] = fmt.Errorf("core: join op without tenant")
				failed = true
				continue
			}
			if _, dup := staged[op.Tenant.Name]; dup {
				itemErrs[i] = fmt.Errorf("core: tenant %q: %w", op.Tenant.Name, ErrTenantExists)
				failed = true
				continue
			}
			staged[op.Tenant.Name] = op.Tenant
			joined = append(joined, op.Tenant.Name)
		case OpLeave:
			if _, ok := staged[op.Name]; !ok {
				itemErrs[i] = fmt.Errorf("core: tenant %q: %w", op.Name, ErrTenantNotFound)
				failed = true
				continue
			}
			delete(staged, op.Name)
			left = append(left, op.Name)
		case OpUpdate:
			if op.Tenant == nil {
				itemErrs[i] = fmt.Errorf("core: update op without tenant")
				failed = true
				continue
			}
			if _, ok := staged[op.Tenant.Name]; !ok {
				itemErrs[i] = fmt.Errorf("core: tenant %q: %w", op.Tenant.Name, ErrTenantNotFound)
				failed = true
				continue
			}
			staged[op.Tenant.Name] = op.Tenant
			updated = append(updated, op.Tenant.Name)
		default:
			itemErrs[i] = fmt.Errorf("core: unknown op kind %v", op.Kind)
			failed = true
		}
	}
	if failed {
		return itemErrs, fmt.Errorf("core: %w", ErrBatchFailed)
	}
	oldTenants, oldSpec := c.tenants, c.spec
	c.tenants = staged
	if spec != nil {
		c.spec = spec
	}
	if err := c.recompile(now, fmt.Sprintf("batch of %d ops", len(ops))); err != nil {
		c.tenants, c.spec = oldTenants, oldSpec
		return nil, err
	}
	// The batch is live: fix up per-tenant tracking state and emit the
	// membership events.
	for _, name := range left {
		delete(c.monitors, name)
		delete(c.flagged, name)
		delete(c.quarantined, name)
		delete(c.lastCount, name)
		delete(c.active, name)
		c.emit(Event{Kind: EventTenantLeft, Tenant: name, At: now})
	}
	for _, name := range joined {
		// A tenant joined and removed by the same batch has no final
		// state to track; the membership events still tell the story.
		if t, ok := c.tenants[name]; ok {
			if b, err := t.EffectiveBounds(); err == nil {
				c.monitors[name] = NewMonitor(b, c.opts.WindowSize)
			}
		}
		c.emit(Event{Kind: EventTenantJoined, Tenant: name, At: now})
	}
	for _, name := range updated {
		if t, ok := c.tenants[name]; ok {
			if b, err := t.EffectiveBounds(); err == nil {
				c.monitors[name] = NewMonitor(b, c.opts.WindowSize)
			}
		}
	}
	return itemErrs, nil
}
