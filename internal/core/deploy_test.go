package core

import (
	"strings"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
)

func twoTierPolicy(t *testing.T) *JointPolicy {
	t.Helper()
	tenants := []*Tenant{
		tenant(1, "hi", 0, 100),
		tenant(2, "lo", 0, 100),
	}
	return mustSynth(t, tenants, "hi >> lo", SynthOptions{DefaultLevels: 16})
}

func TestDeployAllBackends(t *testing.T) {
	jp := twoTierPolicy(t)
	for _, b := range []Backend{
		BackendPIFO, BackendSPQueues, BackendSPPIFO, BackendAIFO, BackendCalendar, BackendFIFO,
	} {
		d, err := jp.Deploy(b, DeployOptions{})
		if err != nil {
			t.Fatalf("Deploy(%v): %v", b, err)
		}
		if d.Scheduler == nil {
			t.Fatalf("Deploy(%v): nil scheduler", b)
		}
		// Smoke: a packet flows through.
		p := &pkt.Packet{Rank: 5, Size: 100}
		d.Scheduler.Enqueue(p)
		if got := d.Scheduler.Dequeue(); got == nil {
			t.Fatalf("Deploy(%v): packet lost", b)
		}
	}
}

func TestDeployUnknownBackend(t *testing.T) {
	if _, err := twoTierPolicy(t).Deploy(Backend(99), DeployOptions{}); err == nil {
		t.Fatal("unknown backend should error")
	}
}

func TestBackendString(t *testing.T) {
	for b, want := range map[Backend]string{
		BackendPIFO: "pifo", BackendSPQueues: "sp-queues", BackendSPPIFO: "sp-pifo",
		BackendAIFO: "aifo", BackendCalendar: "calendar", BackendFIFO: "fifo",
		Backend(42): "backend(42)",
	} {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), want)
		}
	}
}

func TestSPQueuesTierIsolation(t *testing.T) {
	// §3.4: strict tiers get dedicated queues. Every queue serves exactly
	// one tier, and higher tiers get lower-index (higher-priority) queues.
	jp := twoTierPolicy(t)
	d, err := jp.Deploy(BackendSPQueues, DeployOptions{Queues: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ranges) != 5 {
		t.Fatalf("ranges = %d, want 5", len(d.Ranges))
	}
	seenTier1 := false
	for _, r := range d.Ranges {
		if r.Tier == 1 {
			seenTier1 = true
		}
		if seenTier1 && r.Tier == 0 {
			t.Fatal("tier 0 queue after tier 1 queue")
		}
	}
	if !seenTier1 {
		t.Fatal("tier 1 got no queues")
	}
	// Ranges must cover each tier's band contiguously.
	for _, tp := range jp.Tiers {
		lo := tp.Bounds.Lo
		for _, r := range d.Ranges {
			if r.Lo == lo && r.Tier >= 0 {
				lo = r.Hi + 1
			}
		}
		if lo <= tp.Bounds.Hi {
			t.Fatalf("tier band %v not fully covered (reached %d)", tp.Bounds, lo)
		}
	}
}

func TestSPQueuesMapperRoutesByRank(t *testing.T) {
	jp := twoTierPolicy(t)
	pp := NewPreprocessor(jp, UnknownWorst)
	d, err := jp.Deploy(BackendSPQueues, DeployOptions{Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	mq := d.Scheduler.(*sched.MQ)
	// A hi-tier packet must land in a queue serving tier 0.
	p := &pkt.Packet{Tenant: 1, Rank: 0, Size: 10}
	pp.Process(p)
	mq.Enqueue(p)
	// A lo-tier packet lands strictly later in the queue order.
	p2 := &pkt.Packet{Tenant: 2, Rank: 0, Size: 10}
	pp.Process(p2)
	mq.Enqueue(p2)
	first := mq.Dequeue()
	if first.Tenant != 1 {
		t.Fatalf("hi-tier packet should dequeue first, got tenant %d", first.Tenant)
	}
}

func TestSPQueuesStrictIsolationUnderLoad(t *testing.T) {
	// Even with many lo-tier packets queued first, hi-tier packets always
	// dequeue first — the worst-case guarantee of >>.
	jp := twoTierPolicy(t)
	pp := NewPreprocessor(jp, UnknownWorst)
	d, err := jp.Deploy(BackendSPQueues, DeployOptions{Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := d.Scheduler
	for i := 0; i < 50; i++ {
		p := &pkt.Packet{Tenant: 2, Rank: int64(i % 100), Size: 10}
		pp.Process(p)
		s.Enqueue(p)
	}
	for i := 0; i < 50; i++ {
		p := &pkt.Packet{Tenant: 1, Rank: int64(i % 100), Size: 10}
		pp.Process(p)
		s.Enqueue(p)
	}
	for i := 0; i < 50; i++ {
		p := s.Dequeue()
		if p.Tenant != 1 {
			t.Fatalf("dequeue %d: tenant %d before all hi-tier traffic drained", i, p.Tenant)
		}
	}
}

func TestSPQueuesTooFewQueues(t *testing.T) {
	jp := twoTierPolicy(t)
	if _, err := jp.Deploy(BackendSPQueues, DeployOptions{Queues: 1}); err == nil {
		t.Fatal("1 queue cannot isolate 2 tiers; want error")
	}
}

func TestSPQueuesProportionalAllocation(t *testing.T) {
	// A tier with a much wider band gets more queues.
	tenants := []*Tenant{
		{ID: 1, Name: "wide", Bounds: rank.Bounds{Lo: 0, Hi: 1000}, Levels: 60},
		{ID: 2, Name: "narrow", Bounds: rank.Bounds{Lo: 0, Hi: 1000}, Levels: 4},
	}
	jp := mustSynth(t, tenants, "wide >> narrow", SynthOptions{})
	d, err := jp.Deploy(BackendSPQueues, DeployOptions{Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, r := range d.Ranges {
		count[r.Tier]++
	}
	if count[0] <= count[1] {
		t.Fatalf("wide tier got %d queues, narrow %d; want wide > narrow", count[0], count[1])
	}
}

func TestDeployDescribe(t *testing.T) {
	jp := twoTierPolicy(t)
	d, err := jp.Deploy(BackendSPQueues, DeployOptions{Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	desc := d.Describe()
	if !strings.Contains(desc, "sp-queues") || !strings.Contains(desc, "queue 0") {
		t.Fatalf("Describe() = %q", desc)
	}
}

func TestCalendarBackendWidth(t *testing.T) {
	jp := twoTierPolicy(t)
	d, err := jp.Deploy(BackendCalendar, DeployOptions{Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Packets across the whole output range must be accepted.
	for r := jp.Output.Lo; r <= jp.Output.Hi; r += 3 {
		if !d.Scheduler.Enqueue(&pkt.Packet{Rank: r, Size: 1}) {
			t.Fatalf("calendar rejected in-range rank %d", r)
		}
	}
}

func TestDeploySPActiveReallocation(t *testing.T) {
	jp := twoTierPolicy(t)
	// Both active: tier 1 gets some queues.
	both, err := jp.DeploySPActive(DeployOptions{Queues: 8}, []string{"hi", "lo"})
	if err != nil {
		t.Fatal(err)
	}
	tiers := map[int]int{}
	for _, r := range both.Ranges {
		tiers[r.Tier]++
	}
	if tiers[0] == 0 || tiers[1] == 0 {
		t.Fatalf("both-active allocation: %v", tiers)
	}
	// Only "lo" active: all 8 queues go to its tier.
	only, err := jp.DeploySPActive(DeployOptions{Queues: 8}, []string{"lo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(only.Ranges) != 8 {
		t.Fatalf("ranges = %d, want 8", len(only.Ranges))
	}
	for _, r := range only.Ranges {
		if r.Tier != 1 {
			t.Fatalf("idle tier still holds queue %d: %+v", r.Queue, r)
		}
	}
	// Finer division: the active tier's band is split across 8 queues,
	// versus fewer in the shared allocation.
	if len(only.Ranges) <= tiers[1] {
		t.Fatalf("reallocation did not add queues: %d vs %d", len(only.Ranges), tiers[1])
	}
	// No active tenants named: fall back to the full allocation.
	fallback, err := jp.DeploySPActive(DeployOptions{Queues: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tiersFB := map[int]int{}
	for _, r := range fallback.Ranges {
		tiersFB[r.Tier]++
	}
	if tiersFB[0] == 0 || tiersFB[1] == 0 {
		t.Fatalf("fallback allocation: %v", tiersFB)
	}
}

func TestDeploySPActivePacketsStillFlow(t *testing.T) {
	// With only the low tier active, a stray high-tier packet coarsely
	// maps into the active allocation instead of being lost.
	jp := twoTierPolicy(t)
	pp := NewPreprocessor(jp, UnknownWorst)
	dep, err := jp.DeploySPActive(DeployOptions{Queues: 4}, []string{"lo"})
	if err != nil {
		t.Fatal(err)
	}
	p := &pkt.Packet{Tenant: 1, Rank: 0, Size: 10} // "hi" tenant
	pp.Process(p)
	if !dep.Scheduler.Enqueue(p) {
		t.Fatal("stray high-tier packet dropped")
	}
	if dep.Scheduler.Dequeue() == nil {
		t.Fatal("packet lost")
	}
}

// TestPIFOBufferPressureFavorsHighTier: under >>, when the shared PIFO
// buffer overflows, evictions fall on the lower tier first — the transformed
// ranks make the drop-worst policy tier-aware automatically.
func TestPIFOBufferPressureFavorsHighTier(t *testing.T) {
	jp := twoTierPolicy(t)
	pp := NewPreprocessor(jp, UnknownWorst)
	var evictedLo, evictedHi int
	pifo := sched.NewPIFO(sched.Config{
		CapacityBytes: 1000, // ten 100-byte packets
		OnDrop: func(p *pkt.Packet, _ sched.DropCause) {
			if p.Tenant == 2 {
				evictedLo++
			} else {
				evictedHi++
			}
		},
	})
	// Fill with low-tier packets, then offer high-tier traffic.
	for i := 0; i < 10; i++ {
		p := &pkt.Packet{Tenant: 2, Rank: int64(i * 10), Size: 100}
		pp.Process(p)
		pifo.Enqueue(p)
	}
	for i := 0; i < 10; i++ {
		p := &pkt.Packet{Tenant: 1, Rank: int64(i * 10), Size: 100}
		pp.Process(p)
		if !pifo.Enqueue(p) {
			t.Fatalf("high-tier packet %d rejected", i)
		}
	}
	if evictedLo != 10 || evictedHi != 0 {
		t.Fatalf("evictions lo=%d hi=%d, want 10/0", evictedLo, evictedHi)
	}
	// The buffer now holds only high-tier traffic.
	for p := pifo.Dequeue(); p != nil; p = pifo.Dequeue() {
		if p.Tenant != 1 {
			t.Fatalf("low-tier packet survived: %v", p)
		}
	}
}
