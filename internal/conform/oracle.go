package conform

import (
	"math/big"
	"sort"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

// RefPIFO is the reference oracle for the ideal PIFO: a sorted list kept in
// non-decreasing (rank, arrival) order by plain insertion. It is O(n) per
// enqueue and makes no attempt to be fast — its only job is to be obviously
// correct, so the production heap-based sched.PIFO (and every approximation)
// can be differentially tested against it.
//
// The buffer semantics mirror sched.PIFO exactly, clause for clause:
// when an arrival would overflow the byte capacity, the worst queued packet
// (highest rank, most recent among ties) is evicted if the arrival beats it,
// otherwise the arrival is dropped; ties favor the queued packet.
type RefPIFO struct {
	capacity int
	entries  []refEntry // sorted ascending by (rank, seq)
	seq      uint64
	bytes    int
	onDrop   sched.DropFn
}

type refEntry struct {
	p   *pkt.Packet
	seq uint64
}

// NewRefPIFO returns an empty reference PIFO with the given byte capacity.
// onDrop, if non-nil, observes dropped and evicted packets with their
// cause — the same callback and cause contract as sched.Config.OnDrop
// (CauseOverflow for refused arrivals, CauseEvicted for evictions).
func NewRefPIFO(capacityBytes int, onDrop sched.DropFn) *RefPIFO {
	return &RefPIFO{capacity: capacityBytes, onDrop: onDrop}
}

// Len returns the number of queued packets.
func (r *RefPIFO) Len() int { return len(r.entries) }

// Bytes returns the number of queued bytes.
func (r *RefPIFO) Bytes() int { return r.bytes }

func (r *RefPIFO) drop(p *pkt.Packet, cause sched.DropCause) {
	if r.onDrop != nil {
		r.onDrop(p, cause)
	}
}

// Enqueue offers p; it returns false when p was dropped. The semantics
// match sched.PIFO: evict-worst under overflow, ties favor the queued
// packet (FIFO among equal ranks).
func (r *RefPIFO) Enqueue(p *pkt.Packet) bool {
	for r.bytes+p.Size > r.capacity {
		n := len(r.entries)
		if n == 0 {
			r.drop(p, sched.CauseOverflow)
			return false
		}
		// The worst packet (max rank, max seq among ties) is the last
		// entry of the sorted list by construction.
		worst := r.entries[n-1]
		if worst.p.Rank <= p.Rank {
			r.drop(p, sched.CauseOverflow)
			return false
		}
		r.entries[n-1] = refEntry{}
		r.entries = r.entries[:n-1]
		r.bytes -= worst.p.Size
		r.drop(worst.p, sched.CauseEvicted)
	}
	e := refEntry{p: p, seq: r.seq}
	r.seq++
	// Insertion sort: find the first entry ordered after e. New arrivals
	// have the highest seq, so among equal ranks they insert last — FIFO
	// order among equals.
	i := sort.Search(len(r.entries), func(i int) bool {
		q := r.entries[i]
		if q.p.Rank != e.p.Rank {
			return q.p.Rank > e.p.Rank
		}
		return q.seq > e.seq
	})
	r.entries = append(r.entries, refEntry{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = e
	r.bytes += p.Size
	return true
}

// MinRank returns the lowest queued rank — the packet an ideal PIFO
// would dequeue next. ok is false when the queue is empty. The online
// watchdog (internal/slo) compares this against what the production
// backend actually dequeued to count scheduling inversions.
func (r *RefPIFO) MinRank() (rank int64, ok bool) {
	if len(r.entries) == 0 {
		return 0, false
	}
	return r.entries[0].p.Rank, true
}

// MaxRank returns the highest queued rank — the packet an ideal PIFO
// would evict first under overflow. ok is false when the queue is empty.
func (r *RefPIFO) MaxRank() (rank int64, ok bool) {
	if len(r.entries) == 0 {
		return 0, false
	}
	return r.entries[len(r.entries)-1].p.Rank, true
}

// RemoveByID removes and returns the queued packet with the given packet
// ID, or (nil, false) when no such packet is queued. The scan is linear:
// the oracle trades speed for obviousness, and its watchdog-shadow use
// keeps the queue to the sampled subset of one port's buffer.
func (r *RefPIFO) RemoveByID(id uint64) (*pkt.Packet, bool) {
	for i, e := range r.entries {
		if e.p.ID != id {
			continue
		}
		copy(r.entries[i:], r.entries[i+1:])
		r.entries[len(r.entries)-1] = refEntry{}
		r.entries = r.entries[:len(r.entries)-1]
		r.bytes -= e.p.Size
		return e.p, true
	}
	return nil, false
}

// Dequeue removes and returns the lowest-(rank, arrival) packet, or nil.
func (r *RefPIFO) Dequeue() *pkt.Packet {
	if len(r.entries) == 0 {
		return nil
	}
	e := r.entries[0]
	copy(r.entries, r.entries[1:])
	r.entries[len(r.entries)-1] = refEntry{}
	r.entries = r.entries[:len(r.entries)-1]
	r.bytes -= e.p.Size
	return e.p
}

// RefApply is the brute-force reference evaluator for a rank
// transformation (§3.2): it recomputes clamp → quantize → slot placement
// with arbitrary-precision integer arithmetic instead of the production
// code's overflow-guarded int64 fast path.
//
// The returned exact flag reports whether the transform is in the regime
// where the production Quantize uses exact integer math. Outside it
// (extreme spans where d*(Levels-1) would overflow int64) the production
// code documents only a monotone float fallback, so the oracle value and
// the production value may legitimately differ; callers must then check
// monotonicity and range containment instead of equality.
func RefApply(t core.Transform, r int64) (out int64, exact bool) {
	// Clamp, textually following the §3.2 bounding primitive.
	if r < t.Lo {
		r = t.Lo
	}
	if r > t.Hi {
		r = t.Hi
	}
	span := t.Hi - t.Lo
	var lvl int64
	if span <= 0 || t.Levels <= 1 {
		lvl = 0
		exact = true
	} else {
		m := t.Levels - 1
		exact = m <= (1<<62)/(span+1)
		// lvl = floor((r-Lo) * (Levels-1) / span), computed exactly.
		num := new(big.Int).Mul(big.NewInt(r-t.Lo), big.NewInt(m))
		num.Quo(num, big.NewInt(span))
		lvl = num.Int64()
	}
	if max := t.Levels - 1; lvl > max {
		lvl = max
	}
	w := t.Weight
	if w <= 0 {
		w = 1
	}
	// Slot placement: the tenant owns w consecutive slots per Stride-wide
	// cycle, starting at Phase.
	return t.Offset + (lvl/w)*t.Stride + t.Phase + lvl%w, exact
}

// CheckTransform verifies a production Transform against the reference
// evaluator on a deterministic sample of input ranks spanning (and
// exceeding) its input bounds. It returns the first disagreement found,
// or nil. In the exact integer regime outputs must be identical; in the
// float-fallback regime only monotonicity and output-bounds containment
// are required (matching the production contract).
func CheckTransform(t core.Transform, samples []int64) *Violation {
	ob := t.OutputBounds()
	prev := int64(-1 << 62)
	prevIn := int64(0)
	for i, r := range samples {
		got := t.Apply(r)
		want, exact := RefApply(t, r)
		if exact && got != want {
			return &Violation{
				Kind:   ViolationTransformMismatch,
				Detail: violationf("Apply(%d) = %d, reference %d (transform %v)", r, got, want, t),
			}
		}
		if got < ob.Lo || got > ob.Hi {
			return &Violation{
				Kind:   ViolationTransformRange,
				Detail: violationf("Apply(%d) = %d outside declared output bounds %v", r, got, ob),
			}
		}
		if i > 0 && r >= prevIn && got < prev {
			return &Violation{
				Kind:   ViolationTransformMonotone,
				Detail: violationf("Apply not monotone: Apply(%d)=%d after Apply(%d)=%d", r, got, prevIn, prev),
			}
		}
		prev, prevIn = got, r
	}
	return nil
}

// TransformSamples returns a deterministic set of probe ranks for a
// transform: the bounds, points outside them, and a spread of interior
// points including quantization-level edges.
func TransformSamples(t core.Transform) []int64 {
	span := t.Hi - t.Lo
	s := []int64{t.Lo - 1000, t.Lo - 1, t.Lo, t.Hi, t.Hi + 1, t.Hi + 1000}
	for i := int64(1); i <= 16; i++ {
		s = append(s, t.Lo+span*i/17)
	}
	// Level-boundary probes: the first few exact quantization edges.
	if t.Levels > 1 && span > 0 {
		for l := int64(1); l <= 4 && l < t.Levels; l++ {
			s = append(s, t.Lo+span*l/(t.Levels-1))
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
