package conform

import (
	"fmt"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/trace"
)

// Epoch conformance: given a flight-recorder event stream from a sim
// driven by a core.EpochStore, plus the joint policy of every generation
// published during the run, verify the RCU contract — each packet is
// transformed exactly once, under exactly one generation, and its rank
// rewrite matches that generation's transform table even if newer
// epochs were published while it was in flight.

// maxEpochDetails caps the retained human-readable failure details.
const maxEpochDetails = 20

// EpochCheck is the result of CheckEpochs.
type EpochCheck struct {
	// Packets counts distinct packet IDs that saw a transform event.
	Packets int
	// Transforms counts transform events checked.
	Transforms int
	// MixedEpochPackets counts packets whose events name more than one
	// generation — the violation the epoch store exists to prevent.
	MixedEpochPackets int
	// DuplicateTransforms counts packets transformed more than once.
	DuplicateTransforms int
	// Unpinned counts transform events carrying no generation.
	Unpinned int
	// UnknownGeneration counts events naming a generation absent from
	// the policies map (an adaptation event was dropped or unrecorded).
	UnknownGeneration int
	// RankMismatches counts transform events whose rank rewrite does not
	// match the pinned generation's transform table.
	RankMismatches int
	// Details retains the first maxEpochDetails failure descriptions.
	Details []string
}

// Passed reports whether every check held.
func (c *EpochCheck) Passed() bool {
	return c.MixedEpochPackets == 0 && c.DuplicateTransforms == 0 &&
		c.Unpinned == 0 && c.UnknownGeneration == 0 && c.RankMismatches == 0
}

// Violations sums the failure counters.
func (c *EpochCheck) Violations() int {
	return c.MixedEpochPackets + c.DuplicateTransforms + c.Unpinned +
		c.UnknownGeneration + c.RankMismatches
}

// String summarizes the check.
func (c *EpochCheck) String() string {
	return fmt.Sprintf("epoch check: %d packets, %d transforms, %d mixed, %d dup, %d unpinned, %d unknown-gen, %d rank-mismatch",
		c.Packets, c.Transforms, c.MixedEpochPackets, c.DuplicateTransforms,
		c.Unpinned, c.UnknownGeneration, c.RankMismatches)
}

func (c *EpochCheck) fail(counter *int, format string, args ...any) {
	*counter++
	if len(c.Details) < maxEpochDetails {
		c.Details = append(c.Details, fmt.Sprintf(format, args...))
	}
}

// CheckEpochs verifies the epoch-pinning contract over a recorded event
// stream. policies maps each published generation to its joint policy
// (record them as the control plane publishes). The recorder must have
// captured transform events; capturing the other kinds as well
// strengthens the mixed-epoch check (every post-transform event of a
// packet must name the packet's pinned generation).
func CheckEpochs(events []trace.Event, policies map[uint64]*core.JointPolicy) *EpochCheck {
	c := &EpochCheck{}
	// gens tracks the one generation each packet is pinned to;
	// transformed tracks transform-event multiplicity per packet.
	gens := make(map[uint64]uint64)
	transformed := make(map[uint64]int)
	for _, e := range events {
		if e.Epoch != 0 {
			if prev, ok := gens[e.ID]; !ok {
				gens[e.ID] = e.Epoch
			} else if prev != e.Epoch {
				c.fail(&c.MixedEpochPackets,
					"packet %d observed generations %d and %d (%s at %s)",
					e.ID, prev, e.Epoch, e.Kind, e.Where)
				gens[e.ID] = e.Epoch // report each mixed packet once per switch
			}
		}
		if e.Kind != trace.KindTransform {
			continue
		}
		c.Transforms++
		transformed[e.ID]++
		if transformed[e.ID] == 2 {
			c.fail(&c.DuplicateTransforms, "packet %d transformed more than once", e.ID)
		}
		if e.Epoch == 0 {
			c.fail(&c.Unpinned, "packet %d transformed without an epoch pin at %s", e.ID, e.Where)
			continue
		}
		jp, ok := policies[e.Epoch]
		if !ok {
			c.fail(&c.UnknownGeneration,
				"packet %d pinned to unrecorded generation %d", e.ID, e.Epoch)
			continue
		}
		// Replay the rewrite under the pinned generation's table.
		want := e.Rank
		if tr, ok := jp.Transforms[pkt.TenantID(e.Tenant)]; ok {
			want = tr.Apply(e.PreRank)
		} else {
			want = jp.Output.Hi + 1 // UnknownWorst
		}
		if want != e.Rank {
			c.fail(&c.RankMismatches,
				"packet %d (tenant %d, gen %d): rank %d -> %d, generation's table says %d",
				e.ID, e.Tenant, e.Epoch, e.PreRank, e.Rank, want)
		}
	}
	c.Packets = len(transformed)
	return c
}
