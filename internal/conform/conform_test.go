package conform

import (
	"math/rand"
	"sort"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
)

// TestRunClean is the conformance suite's main entry: a batch of random
// scenarios across every backend must produce zero violations.
func TestRunClean(t *testing.T) {
	opts := Options{Scenarios: 40, Seed: 1}
	if testing.Short() {
		opts.Scenarios = 8
	}
	r, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Fatalf("conformance violations:\n%s", r.Summary())
	}
	if r.Scenarios != opts.Scenarios {
		t.Fatalf("executed %d scenarios, want %d", r.Scenarios, opts.Scenarios)
	}
	if r.Packets == 0 || r.TransformChecks == 0 || r.MetamorphicChecks == 0 {
		t.Fatalf("degenerate run: %+v", r)
	}
	for _, bs := range r.Backends {
		if bs.Enqueued == 0 {
			t.Errorf("backend %s never enqueued a packet", bs.Backend)
		}
		// Only the rank-order-exact backends must be inversion-free;
		// fifo/drr/sp-queues are exact w.r.t. their own discipline but
		// invert ranks by design.
		if (bs.Backend == "pifo" || bs.Backend == "pifotree") && bs.Inversions != 0 {
			t.Errorf("backend %s recorded %d inversions", bs.Backend, bs.Inversions)
		}
	}
}

// TestRunDeterministic: identical options must reproduce the identical
// report, including the rendered summary.
func TestRunDeterministic(t *testing.T) {
	opts := Options{Scenarios: 6, Seed: 42}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("non-deterministic reports:\n--- first\n%s\n--- second\n%s", a.Summary(), b.Summary())
	}
}

// TestRunBackendSelection: restricting Options.Backends runs only the
// named targets, and unknown names error.
func TestRunBackendSelection(t *testing.T) {
	r, err := Run(Options{Scenarios: 3, Seed: 7, Backends: []string{"fifo", "drr"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Backends) != 2 || r.Backends[0].Backend != "fifo" || r.Backends[1].Backend != "drr" {
		t.Fatalf("unexpected backend selection: %+v", r.Backends)
	}
	if !r.Passed() {
		t.Fatalf("violations:\n%s", r.Summary())
	}
	if _, err := Run(Options{Scenarios: 1, Backends: []string{"nope"}}); err == nil {
		t.Fatal("unknown backend name accepted")
	}
}

// TestRefPIFOSortedOrder cross-checks the oracle itself against plain
// sorting: without buffer pressure, draining a RefPIFO yields ranks in
// non-decreasing order and equal ranks in arrival order.
func TestRefPIFOSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := NewRefPIFO(1<<30, nil)
	type key struct {
		rank int64
		id   uint64
	}
	var want []key
	for i := 0; i < 500; i++ {
		p := &pkt.Packet{ID: uint64(i), Rank: int64(rng.Intn(40)), Size: 100}
		if !ref.Enqueue(p) {
			t.Fatalf("packet %d refused without pressure", i)
		}
		want = append(want, key{p.Rank, p.ID})
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].rank < want[j].rank })
	for i := 0; ; i++ {
		p := ref.Dequeue()
		if p == nil {
			if i != len(want) {
				t.Fatalf("drained %d packets, want %d", i, len(want))
			}
			break
		}
		if p.Rank != want[i].rank || p.ID != want[i].id {
			t.Fatalf("dequeue %d: packet %d rank %d, want packet %d rank %d",
				i, p.ID, p.Rank, want[i].id, want[i].rank)
		}
	}
	if ref.Len() != 0 || ref.Bytes() != 0 {
		t.Fatalf("drained oracle reports len=%d bytes=%d", ref.Len(), ref.Bytes())
	}
}

// TestRefPIFOEviction pins the oracle's buffer semantics: evict the worst
// queued packet when a better packet arrives, drop the arrival otherwise,
// ties favoring the queued packet.
func TestRefPIFOEviction(t *testing.T) {
	var dropped []uint64
	ref := NewRefPIFO(300, func(p *pkt.Packet, _ sched.DropCause) { dropped = append(dropped, p.ID) })
	mk := func(id uint64, rank int64) *pkt.Packet {
		return &pkt.Packet{ID: id, Rank: rank, Size: 100}
	}
	for id, rank := range map[uint64]int64{0: 5, 1: 7, 2: 3} {
		if !ref.Enqueue(mk(id, rank)) {
			t.Fatalf("packet %d refused", id)
		}
	}
	// Full. A worse arrival (rank 9 >= worst 7) is dropped.
	if ref.Enqueue(mk(3, 9)) {
		t.Fatal("rank-9 arrival accepted over rank-7 worst")
	}
	// An equal arrival loses the tie to the queued packet.
	if ref.Enqueue(mk(4, 7)) {
		t.Fatal("tie arrival accepted")
	}
	// A better arrival evicts the worst (packet 1, rank 7).
	if !ref.Enqueue(mk(5, 4)) {
		t.Fatal("better arrival refused")
	}
	wantDropped := []uint64{3, 4, 1}
	if len(dropped) != len(wantDropped) {
		t.Fatalf("dropped %v, want %v", dropped, wantDropped)
	}
	for i := range dropped {
		if dropped[i] != wantDropped[i] {
			t.Fatalf("dropped %v, want %v", dropped, wantDropped)
		}
	}
	var got []int64
	for p := ref.Dequeue(); p != nil; p = ref.Dequeue() {
		got = append(got, p.Rank)
	}
	want := []int64{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

// TestRefApplyMatchesTransform spot-checks the big-integer reference
// against the production transform across the exact integer regime.
func TestRefApplyMatchesTransform(t *testing.T) {
	trs := []core.Transform{
		{Lo: 0, Hi: 100, Levels: 10, Stride: 1, Weight: 1},
		{Lo: -50, Hi: 50, Levels: 64, Stride: 3, Phase: 1, Weight: 2, Offset: 1000},
		{Lo: 7, Hi: 7, Levels: 1, Stride: 5, Weight: 1, Offset: 3},
	}
	for _, tr := range trs {
		for _, in := range TransformSamples(tr) {
			want, exact := RefApply(tr, in)
			if !exact {
				t.Fatalf("transform %v unexpectedly inexact", tr)
			}
			if got := tr.Apply(in); got != want {
				t.Fatalf("transform %v: Apply(%d)=%d, reference %d", tr, in, got, want)
			}
		}
	}
}

// TestRefApplyInexactRegime: extreme spans must be flagged as inexact so
// the checker falls back to monotonicity and range containment.
func TestRefApplyInexactRegime(t *testing.T) {
	tr := core.Transform{Lo: 0, Hi: 1 << 45, Levels: 1 << 20, Stride: 1, Weight: 1}
	if _, exact := RefApply(tr, 12345); exact {
		t.Fatal("2^45-span transform reported exact")
	}
	if v := CheckTransform(tr, TransformSamples(tr)); v != nil {
		t.Fatalf("monotone/range check failed in inexact regime: %s", v.Detail)
	}
}

// TestCheckTransformCatchesBugs plants deliberately broken transforms and
// expects CheckTransform to flag them.
func TestCheckTransformCatchesBugs(t *testing.T) {
	// Stride narrower than the weight makes the slot placement overlap
	// the next cycle: output escapes the declared bounds or loses
	// monotonicity, depending on the probe points.
	broken := core.Transform{Lo: 0, Hi: 100, Levels: 50, Stride: 1, Weight: 5}
	if v := CheckTransform(broken, TransformSamples(broken)); v == nil {
		t.Fatal("broken transform passed CheckTransform")
	}
}

// TestGenScenarioShapes sanity-checks the generator across many seeds:
// valid specs, non-empty traces, ranks inside the joint output range
// (plus the UnknownWorst sentinel).
func TestGenScenarioShapes(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(scenarioSeed(seed, 0)))
		sc, err := GenScenario(int(seed), rng, 400)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sc.Trace) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if len(sc.Trace) > 400 {
			t.Fatalf("seed %d: trace %d exceeds cap", seed, len(sc.Trace))
		}
		if err := sc.Spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec %q: %v", seed, sc.Spec, err)
		}
		out := rank.Bounds{Lo: sc.Joint.Output.Lo, Hi: sc.Joint.Output.Hi + 1}
		for _, p := range sc.Trace {
			if p.Rank < out.Lo || p.Rank > out.Hi {
				t.Fatalf("seed %d: packet %d rank %d outside joint output %v (+unknown)",
					seed, p.ID, p.Rank, sc.Joint.Output)
			}
		}
	}
}

// TestScenarioSeedDecorrelated: the SplitMix64 derivation must give
// distinct streams per scenario index.
func TestScenarioSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := scenarioSeed(1, i)
		if seen[s] {
			t.Fatalf("scenario seed collision at index %d", i)
		}
		seen[s] = true
	}
	if scenarioSeed(1, 0) == scenarioSeed(2, 0) {
		t.Fatal("base seed does not influence scenario seeds")
	}
}
