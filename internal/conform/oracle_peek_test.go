package conform

import (
	"math/rand"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

func TestRefPIFOPeeks(t *testing.T) {
	r := NewRefPIFO(1<<20, nil)
	if _, ok := r.MinRank(); ok {
		t.Fatal("MinRank on empty queue reported ok")
	}
	if _, ok := r.MaxRank(); ok {
		t.Fatal("MaxRank on empty queue reported ok")
	}
	for _, rank := range []int64{30, 10, 20, 10, 40} {
		r.Enqueue(&pkt.Packet{ID: uint64(rank), Rank: rank, Size: 100})
	}
	if min, ok := r.MinRank(); !ok || min != 10 {
		t.Errorf("MinRank = %d, %v; want 10, true", min, ok)
	}
	if max, ok := r.MaxRank(); !ok || max != 40 {
		t.Errorf("MaxRank = %d, %v; want 40, true", max, ok)
	}
	// Peeks must not disturb dequeue order.
	if p := r.Dequeue(); p == nil || p.Rank != 10 {
		t.Errorf("Dequeue after peeks = %v, want rank 10", p)
	}
}

func TestRefPIFORemoveByID(t *testing.T) {
	r := NewRefPIFO(1<<20, nil)
	for i := 1; i <= 5; i++ {
		r.Enqueue(&pkt.Packet{ID: uint64(i), Rank: int64(i * 10), Size: 100})
	}
	if _, ok := r.RemoveByID(99); ok {
		t.Error("RemoveByID(99) found a packet that was never enqueued")
	}
	p, ok := r.RemoveByID(3)
	if !ok || p.ID != 3 {
		t.Fatalf("RemoveByID(3) = %v, %v", p, ok)
	}
	if r.Len() != 4 || r.Bytes() != 400 {
		t.Errorf("after removal Len=%d Bytes=%d, want 4, 400", r.Len(), r.Bytes())
	}
	if _, ok := r.RemoveByID(3); ok {
		t.Error("RemoveByID(3) succeeded twice")
	}
	// Remaining packets still dequeue in rank order with no gap damage.
	want := []uint64{1, 2, 4, 5}
	for _, id := range want {
		p := r.Dequeue()
		if p == nil || p.ID != id {
			t.Fatalf("Dequeue = %v, want ID %d", p, id)
		}
	}
	if r.Len() != 0 || r.Bytes() != 0 {
		t.Errorf("drained queue Len=%d Bytes=%d", r.Len(), r.Bytes())
	}
}

// TestRefPIFORemoveByIDRandomized cross-checks RemoveByID against a naive
// map model under random interleaved operations.
func TestRefPIFORemoveByIDRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	drops := 0
	r := NewRefPIFO(100*60, func(p *pkt.Packet, cause sched.DropCause) { drops++ })
	live := map[uint64]int64{}
	var ids []uint64
	nextID := uint64(1)
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // enqueue
			p := &pkt.Packet{ID: nextID, Rank: rng.Int63n(1000), Size: 100}
			nextID++
			before := r.Len()
			ok := r.Enqueue(p)
			expect := before
			if ok {
				live[p.ID] = p.Rank
				ids = append(ids, p.ID)
				expect++
			}
			// Evictions under the byte bound surface via onDrop; the
			// model only learns about them through the length delta,
			// so rebuild from the queue when one happened.
			if r.Len() != expect {
				rebuildModel(r, live, &ids)
			}
		case op < 8: // remove a random live packet
			if len(ids) == 0 {
				continue
			}
			i := rng.Intn(len(ids))
			id := ids[i]
			ids = append(ids[:i], ids[i+1:]...)
			if _, inModel := live[id]; !inModel {
				continue
			}
			p, ok := r.RemoveByID(id)
			if !ok || p.ID != id {
				t.Fatalf("step %d: RemoveByID(%d) = %v, %v", step, id, p, ok)
			}
			delete(live, id)
		default: // dequeue the head
			p := r.Dequeue()
			if p == nil {
				if len(live) != 0 {
					t.Fatalf("step %d: Dequeue nil with %d live", step, len(live))
				}
				continue
			}
			if _, inModel := live[p.ID]; !inModel {
				t.Fatalf("step %d: dequeued unknown packet %d", step, p.ID)
			}
			delete(live, p.ID)
		}
		if r.Len() != len(live) {
			t.Fatalf("step %d: Len=%d, model=%d", step, r.Len(), len(live))
		}
		if r.Bytes() != 100*len(live) {
			t.Fatalf("step %d: Bytes=%d, model=%d", step, r.Bytes(), 100*len(live))
		}
	}
}

// rebuildModel resyncs the naive model with the queue after an eviction
// (drain and re-enqueue — RefPIFO has no iterator by design).
func rebuildModel(r *RefPIFO, live map[uint64]int64, ids *[]uint64) {
	var held []*pkt.Packet
	for {
		p := r.Dequeue()
		if p == nil {
			break
		}
		held = append(held, p)
	}
	for id := range live {
		delete(live, id)
	}
	*ids = (*ids)[:0]
	for _, p := range held {
		r.Enqueue(p)
		live[p.ID] = p.Rank
		*ids = append(*ids, p.ID)
	}
}
