package conform

import (
	"strings"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/trace"
)

func epochPolicies(t *testing.T) map[uint64]*core.JointPolicy {
	t.Helper()
	spec, err := policy.Parse("a >> b")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(hi int64) *core.JointPolicy {
		jp, err := core.Synthesize([]*core.Tenant{
			{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: hi}},
			{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: hi}},
		}, spec, core.SynthOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return jp
	}
	return map[uint64]*core.JointPolicy{1: mk(100), 2: mk(200)}
}

// transformEvent builds a conforming transform event for tenant ID under
// generation gen.
func transformEvent(policies map[uint64]*core.JointPolicy, pktID uint64, tenant uint16, gen uint64, preRank int64) trace.Event {
	jp := policies[gen]
	rank := preRank
	if tr, ok := jp.Transforms[1]; ok && tenant == 1 {
		rank = tr.Apply(preRank)
	} else if tr, ok := jp.Transforms[2]; ok && tenant == 2 {
		rank = tr.Apply(preRank)
	} else {
		rank = jp.Output.Hi + 1 // UnknownWorst
	}
	return trace.Event{
		Kind: trace.KindTransform, ID: pktID, Tenant: tenant,
		Epoch: gen, PreRank: preRank, Rank: rank, Where: "leaf0",
	}
}

func TestCheckEpochsClean(t *testing.T) {
	policies := epochPolicies(t)
	events := []trace.Event{
		transformEvent(policies, 1, 1, 1, 10),
		{Kind: trace.KindDeliver, ID: 1, Epoch: 1},
		transformEvent(policies, 2, 2, 1, 20),
		// Generation 2 published mid-run; packet 3 pins it.
		transformEvent(policies, 3, 1, 2, 30),
		{Kind: trace.KindDeliver, ID: 3, Epoch: 2},
		// Packet 2 drains on its start epoch after the publish.
		{Kind: trace.KindDrop, ID: 2, Epoch: 1, Cause: "overflow"},
		// Unknown tenant under UnknownWorst: worst rank of the pinned gen.
		{Kind: trace.KindTransform, ID: 4, Tenant: 99, Epoch: 2,
			PreRank: 5, Rank: policies[2].Output.Hi + 1},
	}
	c := CheckEpochs(events, policies)
	if !c.Passed() {
		t.Fatalf("clean stream failed: %s\n%s", c, strings.Join(c.Details, "\n"))
	}
	if c.Packets != 4 || c.Transforms != 4 {
		t.Errorf("counts: %s", c)
	}
	if c.Violations() != 0 {
		t.Errorf("violations = %d, want 0", c.Violations())
	}
}

func TestCheckEpochsViolations(t *testing.T) {
	policies := epochPolicies(t)
	t.Run("mixed epoch", func(t *testing.T) {
		events := []trace.Event{
			transformEvent(policies, 1, 1, 1, 10),
			// The same packet later names generation 2: the torn-policy
			// read the store exists to prevent.
			{Kind: trace.KindDeliver, ID: 1, Epoch: 2},
		}
		c := CheckEpochs(events, policies)
		if c.MixedEpochPackets != 1 {
			t.Errorf("mixed = %d, want 1 (%s)", c.MixedEpochPackets, c)
		}
		if c.Passed() {
			t.Error("mixed-epoch stream passed")
		}
	})
	t.Run("duplicate transform", func(t *testing.T) {
		events := []trace.Event{
			transformEvent(policies, 1, 1, 1, 10),
			transformEvent(policies, 1, 1, 1, 10),
		}
		c := CheckEpochs(events, policies)
		if c.DuplicateTransforms != 1 {
			t.Errorf("dup = %d, want 1 (%s)", c.DuplicateTransforms, c)
		}
	})
	t.Run("unpinned transform", func(t *testing.T) {
		events := []trace.Event{
			{Kind: trace.KindTransform, ID: 1, Tenant: 1, PreRank: 10, Rank: 11},
		}
		c := CheckEpochs(events, policies)
		if c.Unpinned != 1 {
			t.Errorf("unpinned = %d, want 1 (%s)", c.Unpinned, c)
		}
	})
	t.Run("unknown generation", func(t *testing.T) {
		events := []trace.Event{
			{Kind: trace.KindTransform, ID: 1, Tenant: 1, Epoch: 9,
				PreRank: 10, Rank: 11},
		}
		c := CheckEpochs(events, policies)
		if c.UnknownGeneration != 1 {
			t.Errorf("unknown-gen = %d, want 1 (%s)", c.UnknownGeneration, c)
		}
	})
	t.Run("rank mismatch", func(t *testing.T) {
		e := transformEvent(policies, 1, 1, 1, 10)
		e.Rank++ // not what generation 1's table says
		c := CheckEpochs([]trace.Event{e}, policies)
		if c.RankMismatches != 1 {
			t.Errorf("rank mismatch = %d, want 1 (%s)", c.RankMismatches, c)
		}
	})
	t.Run("rewrite from the wrong generation", func(t *testing.T) {
		// The packet claims generation 1 but carries generation 2's
		// rewrite — exactly what a torn mid-flight policy swap produces.
		e := transformEvent(policies, 1, 1, 2, 50)
		e.Epoch = 1
		c := CheckEpochs([]trace.Event{e}, policies)
		if c.RankMismatches != 1 {
			t.Errorf("rank mismatch = %d, want 1 (%s)", c.RankMismatches, c)
		}
	})
	t.Run("details capped", func(t *testing.T) {
		var events []trace.Event
		for i := 0; i < 2*maxEpochDetails; i++ {
			events = append(events, trace.Event{
				Kind: trace.KindTransform, ID: uint64(i), Tenant: 1,
				PreRank: 1, Rank: 2,
			})
		}
		c := CheckEpochs(events, policies)
		if c.Unpinned != 2*maxEpochDetails {
			t.Errorf("unpinned = %d", c.Unpinned)
		}
		if len(c.Details) != maxEpochDetails {
			t.Errorf("details = %d, want cap %d", len(c.Details), maxEpochDetails)
		}
	})
}
