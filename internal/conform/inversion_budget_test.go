package conform

import (
	"math/rand"
	"testing"

	"qvisor/internal/sched"
)

// The scenarios pinned here were found by scanning 50k random scenarios
// against the harness's previous per-scenario inversion budget, which
// held every approximation to the FIFO baseline plus max(16, fifo/8)
// slack. The first two genuinely violate it — SP-PIFO's queue-bound
// adaptation backfires 4–6× past the slack — which made the conform
// sweep flaky at roughly the 1-in-25k scenario level. The rest came
// within 40% of the budget. All are deterministic given (seed, index).
type pinnedScenario struct {
	seed        int64
	index       int
	violatesOld bool // breached the old fifo+max(16,fifo/8) budget
}

func pinnedInversionScenarios() []pinnedScenario {
	return []pinnedScenario{
		{677, 12, true},   // sppifo inv=219, fifo=145, old budget 163
		{886, 22, true},   // sppifo inv=247, fifo=145, old budget 163
		{122, 32, false},  // sppifo inv=516, fifo=467, old budget 525
		{1878, 3, false},  // sppifo inv=455, fifo=410, old budget 461
		{1515, 21, false}, // sppifo inv=359, fifo=332, old budget 373
	}
}

// pinnedReplays regenerates a pinned scenario and replays the three
// approximations the inversion bound applies to, returning the FIFO
// baseline alongside.
func pinnedReplays(t *testing.T, ps pinnedScenario) (fifo *replayResult, approx map[string]*replayResult) {
	t.Helper()
	rng := rand.New(rand.NewSource(scenarioSeed(ps.seed, ps.index)))
	sc, err := GenScenario(ps.index, rng, 1500)
	if err != nil {
		t.Fatalf("seed %d scenario %d: %v", ps.seed, ps.index, err)
	}
	fifo, err = replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewFIFO(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx = map[string]*replayResult{}
	sp, err := replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewSPPIFO(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}, 8), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx["sppifo"] = sp
	buckets := 16
	span := sc.Joint.Output.Span() + 2
	width := (span + int64(buckets) - 1) / int64(buckets)
	if width < 1 {
		width = 1
	}
	cal, err := replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewCalendar(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}, buckets, width), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx["calendar"] = cal
	adm, err := replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewAdmission(sched.AdmissionConfig{
			Config: sched.Config{CapacityBytes: hugeCapacity, OnDrop: d},
		}), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	approx["admission"] = adm
	return fifo, approx
}

// TestInversionBudgetOldBoundViolations documents why the FIFO-relative
// budget was replaced: the pinned scenarios marked violatesOld
// deterministically breach it, so any harness carrying that budget flakes
// on them.
func TestInversionBudgetOldBoundViolations(t *testing.T) {
	for _, ps := range pinnedInversionScenarios() {
		fifo, approx := pinnedReplays(t, ps)
		slack := fifo.inv.Inversions / 8
		if slack < 16 {
			slack = 16
		}
		breached := approx["sppifo"].inv.Inversions > fifo.inv.Inversions+slack
		if breached != ps.violatesOld {
			t.Errorf("seed %d scenario %d: old-budget breach = %v, want %v (sppifo %d, fifo %d, slack %d)",
				ps.seed, ps.index, breached, ps.violatesOld,
				approx["sppifo"].inv.Inversions, fifo.inv.Inversions, slack)
		}
	}
}

// TestInversionBudgetRegression holds every pinned scenario — including
// the two that broke the old budget — to the replacement bound for 1000
// consecutive seeded runs: streaming inversions never exceed the pair
// inversions of the realized departure order against its ideal rank
// order. The bound is a theorem of the counter (each streaming inversion
// witnesses a distinct inverted pair), so a single failure here is a
// scheduler or counter bug, not an unlucky trace.
func TestInversionBudgetRegression(t *testing.T) {
	runs := 1000
	if testing.Short() {
		runs = 10
	}
	pins := pinnedInversionScenarios()
	for run := 0; run < runs; run++ {
		for _, ps := range pins {
			_, approx := pinnedReplays(t, ps)
			for name, res := range approx {
				pairInv := pairInversionsVsIdeal(res.dequeued)
				if int64(res.inv.Inversions) > pairInv {
					t.Fatalf("run %d seed %d scenario %d [%s]: %d streaming inversions exceed %d pair inversions",
						run, ps.seed, ps.index, name, res.inv.Inversions, pairInv)
				}
			}
		}
		if t.Failed() {
			break
		}
	}
}

// TestAggregateInversionDrift exercises the run-level ceilings that
// replaced the old budget's empirical role: a 25-scenario sweep stays
// under every replay-fidelity-derived ceiling, and the ceilings really
// are armed (a fabricated report with an inflated sppifo count trips
// them).
func TestAggregateInversionDrift(t *testing.T) {
	r, err := Run(Options{Scenarios: 25, Seed: 677, Backends: []string{"fifo", "sppifo", "calendar", "admission"}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Fatalf("drift ceilings fired on a healthy sweep:\n%s", r.Summary())
	}
	fake := &Report{
		Scenarios: aggregateDriftFloor,
		Backends: []BackendStats{
			{Backend: "fifo", Inversions: 1000},
			{Backend: "sppifo", Inversions: 900}, // 0.90 > the 0.80 ceiling
		},
	}
	fake.Options = fake.Options.defaults()
	checkAggregateInversionDrift(fake)
	if fake.TotalViolations != 1 {
		t.Fatalf("inflated sppifo count raised %d violations, want 1", fake.TotalViolations)
	}
	short := &Report{
		Scenarios: aggregateDriftFloor - 1,
		Backends:  fake.Backends,
	}
	short.Options = short.Options.defaults()
	checkAggregateInversionDrift(short)
	if short.TotalViolations != 0 {
		t.Fatal("drift ceiling applied below the scenario floor")
	}
}
