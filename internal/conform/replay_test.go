package conform

import (
	"reflect"
	"strings"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
)

// rp builds a delivered packet for the hand-computed schedules.
func rp(id uint64, tenant pkt.TenantID, rank int64) pkt.Packet {
	return pkt.Packet{ID: id, Tenant: tenant, Rank: rank}
}

// TestScoreReplayTable checks ScoreReplay against hand-computed 4–8
// packet schedules. Every expectation below is derivable on paper from
// the metric definitions: positions are within the schedules restricted
// to the matched (delivered-by-both) set, pair inversions count matched
// pairs in the opposite relative order from ideal, and drop divergence
// counts packets delivered by exactly one side.
func TestScoreReplayTable(t *testing.T) {
	cases := []struct {
		name          string
		ideal, actual Schedule
		want          ReplayScore
	}{
		{
			// Four packets, two tenants, byte-identical schedules.
			name: "exact replay",
			ideal: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(2, 2, 20), rp(3, 1, 30), rp(4, 2, 40)},
				Dropped:   []uint64{9},
			},
			actual: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(2, 2, 20), rp(3, 1, 30), rp(4, 2, 40)},
				Dropped:   []uint64{9},
			},
			want: ReplayScore{
				Exact: true, Matched: 4,
				PerTenant: map[pkt.TenantID]TenantScore{
					1: {Matched: 2}, 2: {Matched: 2},
				},
			},
		},
		{
			// Same delivered multiset, adjacent swap of packets 2 and 3:
			// one inverted pair, both displaced by one position, rank
			// displacement |20-30| + |30-20| = 20. Same drop set, but the
			// order diverged, so Exact is false.
			name: "single inversion",
			ideal: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(2, 1, 20), rp(3, 2, 30), rp(4, 2, 40)},
			},
			actual: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(3, 2, 30), rp(2, 1, 20), rp(4, 2, 40)},
			},
			want: ReplayScore{
				Matched: 4, PairInversions: 1, Displacement: 2, RankDisplacement: 20,
				PerTenant: map[pkt.TenantID]TenantScore{
					1: {Matched: 2, Displaced: 1, Displacement: 1},
					2: {Matched: 2, Displaced: 1, Displacement: 1},
				},
			},
		},
		{
			// Admission-drop divergence: the ideal delivers 1,2,3 and
			// drops 4 (evict-worst); the backend's admission gate refused
			// 2 (rank 99) and delivered 4 instead. Matched set is {1,3} in
			// the same relative order: no inversions, no displacement.
			// Packets 2 and 4 are each delivered by exactly one side:
			// drop divergence 2, charged to their tenants.
			name: "admission drop divergence",
			ideal: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(2, 2, 99), rp(3, 1, 100)},
				Dropped:   []uint64{4},
			},
			actual: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(3, 1, 100), rp(4, 2, 120)},
				Dropped:   []uint64{2},
			},
			want: ReplayScore{
				Matched: 2, DropDivergence: 2,
				PerTenant: map[pkt.TenantID]TenantScore{
					1: {Matched: 2},
					2: {DropDivergence: 2},
				},
			},
		},
		{
			// Eight packets, full reversal: C(4,2)=6 inversions among the
			// four matched (even-ID) packets... carefully: ideal delivers
			// 1..8, actual delivers 8..1. All eight match; reversal of n=8
			// has C(8,2)=28 inverted pairs, displacement Σ|i-(7-i)| = 2*(7+5+3+1)
			// = 32, rank displacement Σ|rank diff| with ranks 1..8 likewise
			// doubled pairwise = 32.
			name: "full reversal",
			ideal: Schedule{
				Delivered: []pkt.Packet{
					rp(1, 1, 1), rp(2, 1, 2), rp(3, 1, 3), rp(4, 1, 4),
					rp(5, 1, 5), rp(6, 1, 6), rp(7, 1, 7), rp(8, 1, 8),
				},
			},
			actual: Schedule{
				Delivered: []pkt.Packet{
					rp(8, 1, 8), rp(7, 1, 7), rp(6, 1, 6), rp(5, 1, 5),
					rp(4, 1, 4), rp(3, 1, 3), rp(2, 1, 2), rp(1, 1, 1),
				},
			},
			want: ReplayScore{
				Matched: 8, PairInversions: 28, Displacement: 32, RankDisplacement: 32,
				PerTenant: map[pkt.TenantID]TenantScore{
					1: {Matched: 8, Displaced: 8, Displacement: 32},
				},
			},
		},
		{
			// Same delivered sequence but different drop sets: not exact,
			// even though all positional metrics are zero.
			name: "drop set mismatch only",
			ideal: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(2, 1, 20)},
				Dropped:   []uint64{3},
			},
			actual: Schedule{
				Delivered: []pkt.Packet{rp(1, 1, 10), rp(2, 1, 20)},
				Dropped:   []uint64{4},
			},
			want: ReplayScore{
				Matched: 2,
				PerTenant: map[pkt.TenantID]TenantScore{
					1: {Matched: 2},
				},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ScoreReplay(tc.ideal, tc.actual)
			if got.Exact != tc.want.Exact {
				t.Errorf("Exact = %v, want %v", got.Exact, tc.want.Exact)
			}
			if got.Matched != tc.want.Matched {
				t.Errorf("Matched = %d, want %d", got.Matched, tc.want.Matched)
			}
			if got.PairInversions != tc.want.PairInversions {
				t.Errorf("PairInversions = %d, want %d", got.PairInversions, tc.want.PairInversions)
			}
			if got.Displacement != tc.want.Displacement {
				t.Errorf("Displacement = %d, want %d", got.Displacement, tc.want.Displacement)
			}
			if got.RankDisplacement != tc.want.RankDisplacement {
				t.Errorf("RankDisplacement = %d, want %d", got.RankDisplacement, tc.want.RankDisplacement)
			}
			if got.DropDivergence != tc.want.DropDivergence {
				t.Errorf("DropDivergence = %d, want %d", got.DropDivergence, tc.want.DropDivergence)
			}
			if !reflect.DeepEqual(got.PerTenant, tc.want.PerTenant) {
				t.Errorf("PerTenant = %+v, want %+v", got.PerTenant, tc.want.PerTenant)
			}
		})
	}
}

// TestScoreReplayDropOrderIrrelevant: the drop *set* matters for
// exactness, not the callback order (evict-worst can fire callbacks in
// backend-specific order for identical outcomes).
func TestScoreReplayDropOrderIrrelevant(t *testing.T) {
	ideal := Schedule{
		Delivered: []pkt.Packet{rp(1, 1, 10)},
		Dropped:   []uint64{2, 3},
	}
	actual := Schedule{
		Delivered: []pkt.Packet{rp(1, 1, 10)},
		Dropped:   []uint64{3, 2},
	}
	if got := ScoreReplay(ideal, actual); !got.Exact {
		t.Errorf("permuted drop callbacks broke exactness: %+v", got)
	}
}

func TestCountInversions(t *testing.T) {
	cases := []struct {
		perm []int
		want int64
	}{
		{nil, 0},
		{[]int{0}, 0},
		{[]int{0, 1, 2, 3}, 0},
		{[]int{1, 0}, 1},
		{[]int{3, 2, 1, 0}, 6},
		{[]int{2, 0, 1}, 2},
		{[]int{0, 3, 1, 2}, 2},
	}
	for _, tc := range cases {
		before := append([]int(nil), tc.perm...)
		if got := countInversions(tc.perm); got != tc.want {
			t.Errorf("countInversions(%v) = %d, want %d", tc.perm, got, tc.want)
		}
		if !reflect.DeepEqual(before, append([]int(nil), tc.perm...)) {
			t.Errorf("countInversions mutated its argument: %v -> %v", before, tc.perm)
		}
	}
}

// TestRunReplaySmall runs a small sweep end to end: the exact PIFO
// discipline must replay every scenario perfectly, every replay must
// conserve packets, and two identical invocations must agree field for
// field (the scoreboard is deterministic).
func TestRunReplaySmall(t *testing.T) {
	opts := ReplayOptions{Scenarios: 8, Seed: 42}
	r1, err := RunReplay(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Passed() {
		t.Fatalf("replay errors:\n%s", strings.Join(r1.Errors, "\n"))
	}
	if r1.Scenarios != 8 {
		t.Fatalf("Scenarios = %d", r1.Scenarios)
	}
	if got := len(r1.Backends); got != len(ReplayBackendNames()) {
		t.Fatalf("backends = %d, want %d", got, len(ReplayBackendNames()))
	}
	byName := map[string]BackendFidelity{}
	for _, f := range r1.Backends {
		byName[f.Backend] = f
	}
	pifo := byName["pifo"]
	if pifo.ExactReplays != pifo.Scenarios || pifo.PairInversions != 0 ||
		pifo.Displacement != 0 || pifo.DropDivergence != 0 {
		t.Errorf("exact PIFO did not replay perfectly: %+v", pifo)
	}
	// Admission control (aifo, admission) tracks the ideal drop profile
	// far better than buffer-pressure-only tail drop (fifo).
	if byName["admission"].DropDivergenceRate() >= byName["fifo"].DropDivergenceRate() {
		t.Errorf("admission drop divergence %.4f not below fifo's %.4f",
			byName["admission"].DropDivergenceRate(), byName["fifo"].DropDivergenceRate())
	}
	r2, err := RunReplay(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("identical options produced different scoreboards")
	}
}

// TestRunReplayBackendSelection: restricting the sweep works and unknown
// names are rejected.
func TestRunReplayBackendSelection(t *testing.T) {
	r, err := RunReplay(ReplayOptions{Scenarios: 2, Seed: 1, Backends: []string{"pifo", "admission"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Backends) != 2 || r.Backends[0].Backend != "pifo" || r.Backends[1].Backend != "admission" {
		t.Fatalf("selected backends = %+v", r.Backends)
	}
	if _, err := RunReplay(ReplayOptions{Scenarios: 1, Backends: []string{"nope"}}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestReplayProfiles: the scoreboard distills into core fidelity profiles
// for every discipline with a deployment backend (all but drr), and the
// profile values match the scoreboard rates.
func TestReplayProfiles(t *testing.T) {
	r, err := RunReplay(ReplayOptions{Scenarios: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	profiles := r.Profiles()
	if len(profiles) != len(r.Backends)-1 {
		t.Fatalf("profiles = %d, want %d (drr has no deployment backend)",
			len(profiles), len(r.Backends)-1)
	}
	seen := map[core.Backend]bool{}
	for _, p := range profiles {
		seen[p.Backend] = true
	}
	for _, b := range []core.Backend{core.BackendPIFO, core.BackendFIFO, core.BackendSPQueues,
		core.BackendSPPIFO, core.BackendCalendar, core.BackendAIFO, core.BackendAdmission} {
		if !seen[b] {
			t.Errorf("no profile for backend %v", b)
		}
	}
	byBackend := map[core.Backend]BackendFidelity{}
	for _, f := range r.Backends {
		if b, ok := profileBackends[f.Backend]; ok {
			byBackend[b] = f
		}
	}
	for _, p := range profiles {
		f := byBackend[p.Backend]
		if p.ExactReplayRate != f.ExactReplayRate() || p.DropDivergenceRate != f.DropDivergenceRate() {
			t.Errorf("%v: profile %+v diverges from scoreboard %+v", p.Backend, p, f)
		}
	}
	// With an ideal PIFO in the feasible set, selection must pick it.
	best, ok := core.SelectBackend(profiles, nil)
	if !ok || best.Backend != core.BackendPIFO {
		t.Errorf("SelectBackend picked %v, want pifo", best.Backend)
	}
}

// TestReplaySummaryDeterministic pins the Summary rendering to be
// byte-identical across runs (CI compares scoreboard output textually).
func TestReplaySummaryDeterministic(t *testing.T) {
	opts := ReplayOptions{Scenarios: 3, Seed: 9}
	r1, err := RunReplay(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunReplay(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary() != r2.Summary() {
		t.Error("summary not deterministic")
	}
	if !strings.Contains(r1.Summary(), "replay fidelity: 3 scenarios") {
		t.Errorf("summary header malformed:\n%s", r1.Summary())
	}
}
