// Package conform is QVISOR's conformance subsystem: a differential and
// metamorphic test harness that cross-checks every scheduler backend, the
// PIFO tree, and the control-plane synthesizer against slow,
// obviously-correct reference models.
//
// QVISOR's central claim (§3.2) is that the synthesized rank transforms
// make one joint scheduler behave *as if* each tenant ran its own policy.
// This package makes that claim mechanically checkable, in the spirit of
// two lines of related work: Formal Abstractions for Packet Scheduling
// (Mohan et al.) gives PIFO-tree behaviours a precise reference semantics
// worth testing against, and Universal Packet Scheduling (Mittal et al.)
// frames "replay an ideal schedule and count deviations" as the natural
// conformance metric.
//
// The harness has four parts:
//
//   - a reference oracle (oracle.go): an O(n log n) sorted-list PIFO with
//     sched.PIFO's exact buffer semantics, and a brute-force transform
//     evaluator using arbitrary-precision arithmetic;
//   - seeded scenario generators (scenario.go): random tenant sets with
//     random rank bounds, random valid policy strings built through the
//     internal/policy AST, and random packet traces derived from
//     internal/workload flow generators;
//   - a differential runner (diff.go) feeding identical pooled traces
//     through each backend and the oracle, asserting exact dequeue-order
//     equality where the backend is exact (PIFO, PIFO tree) and bounded
//     inversion/deviation properties where it approximates (SP-PIFO,
//     calendar, AIFO), reusing internal/trace's inversion analysis;
//   - metamorphic properties of the synthesizer (metamorphic.go):
//     rank-shift invariance, tier-composition congruence, and idempotence
//     of re-synthesis.
//
// The same entry point backs `go test ./internal/conform` and the
// long-running soak CLI cmd/qvisor-conform.
package conform

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ViolationKind classifies a conformance failure.
type ViolationKind string

const (
	// ViolationTransformMismatch: production Transform.Apply disagrees
	// with the exact big-integer reference in the integer regime.
	ViolationTransformMismatch ViolationKind = "transform-mismatch"
	// ViolationTransformRange: a transform output escaped its declared
	// output bounds.
	ViolationTransformRange ViolationKind = "transform-range"
	// ViolationTransformMonotone: a transform is not monotone.
	ViolationTransformMonotone ViolationKind = "transform-monotone"
	// ViolationExactOrder: an exact backend's dequeue sequence diverged
	// from the reference PIFO.
	ViolationExactOrder ViolationKind = "exact-order"
	// ViolationDropMismatch: an exact backend's drop/evict stream diverged
	// from the reference PIFO under buffer pressure.
	ViolationDropMismatch ViolationKind = "drop-mismatch"
	// ViolationConservation: a backend lost or duplicated packets
	// (accepted multiset != dequeued multiset after draining).
	ViolationConservation ViolationKind = "conservation"
	// ViolationArrivalOrder: a FIFO-class backend reordered packets that
	// must stay in arrival order (FIFO globally; MQ per queue; DRR per
	// flow).
	ViolationArrivalOrder ViolationKind = "arrival-order"
	// ViolationInversionBound: an approximating backend exceeded its
	// inversion bound (more inversions than the rank-oblivious FIFO
	// baseline on the identical trace).
	ViolationInversionBound ViolationKind = "inversion-bound"
	// ViolationSPPIFOBound: SP-PIFO's queue bounds lost monotonicity.
	ViolationSPPIFOBound ViolationKind = "sppifo-bound"
	// ViolationCalendarOrder: a batch-mode calendar drained buckets out of
	// ascending order.
	ViolationCalendarOrder ViolationKind = "calendar-bucket"
	// ViolationBucketQOrder: a batch-mode bucket queue broke its
	// quantization contract (quantized index decreased, or FIFO order
	// broke within one quantized index).
	ViolationBucketQOrder ViolationKind = "bucketq-order"
	// ViolationAdmission: an admission-controlled backend (AIFO or the
	// combined admission+scheduling backend) dropped packets with no
	// admission pressure (its no-pressure behaviour must equal FIFO).
	ViolationAdmission ViolationKind = "admission"
	// ViolationAdmissionBound: the admission backend's dynamic per-queue
	// bounds lost monotonicity.
	ViolationAdmissionBound ViolationKind = "admission-bound"
	// ViolationMetamorphic: a synthesizer metamorphic property failed.
	ViolationMetamorphic ViolationKind = "metamorphic"
	// ViolationScenario: a scenario failed to build (synthesis or policy
	// round-trip error) — always a bug, the generator only emits valid
	// inputs.
	ViolationScenario ViolationKind = "scenario"
)

// Violation is one conformance failure.
type Violation struct {
	// Scenario is the scenario index the violation occurred in.
	Scenario int
	// Backend names the backend involved ("" for control-plane checks).
	Backend string
	// Kind classifies the failure.
	Kind ViolationKind
	// Detail is a human-readable explanation.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	b := v.Backend
	if b == "" {
		b = "synth"
	}
	return fmt.Sprintf("scenario %d [%s] %s: %s", v.Scenario, b, v.Kind, v.Detail)
}

func violationf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// Options parametrize a conformance run.
type Options struct {
	// Scenarios is the number of random scenarios (default 50).
	Scenarios int
	// Seed is the base seed; every scenario derives its private
	// deterministic source from it, so identical options reproduce
	// identical reports byte for byte.
	Seed int64
	// MaxPackets caps the per-scenario trace length (default 1500).
	MaxPackets int
	// Backends restricts the differential runner to the named backends
	// (nil or "all" = every registered backend). Names are matched
	// against BackendNames.
	Backends []string
	// MaxViolations caps how many violations are retained in the report
	// (counting continues past the cap; default 50).
	MaxViolations int
}

func (o Options) defaults() Options {
	if o.Scenarios <= 0 {
		o.Scenarios = 50
	}
	if o.MaxPackets <= 0 {
		o.MaxPackets = 1500
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 50
	}
	return o
}

// BackendStats aggregates one backend's behaviour across all scenarios.
type BackendStats struct {
	// Backend names the discipline.
	Backend string
	// Exact reports whether the backend is held to exact oracle equality.
	Exact bool
	// Enqueued, Dequeued, Dropped count packets across all scenarios.
	Enqueued, Dequeued, Dropped int
	// Inversions counts rank-order violations (approximations only; exact
	// backends must report zero).
	Inversions int
	// MaxInversionMagnitude is the worst observed inversion magnitude.
	MaxInversionMagnitude int64
	// Violations counts conformance failures attributed to this backend.
	Violations int
}

// InversionRate returns Inversions / Dequeued.
func (b BackendStats) InversionRate() float64 {
	if b.Dequeued == 0 {
		return 0
	}
	return float64(b.Inversions) / float64(b.Dequeued)
}

// Report is the result of a conformance run.
type Report struct {
	// Options echoes the (defaulted) options of the run.
	Options Options
	// Scenarios counts scenarios executed.
	Scenarios int
	// Packets counts trace packets generated across all scenarios.
	Packets int
	// MetamorphicChecks counts synthesizer properties verified.
	MetamorphicChecks int
	// TransformChecks counts transform/reference comparisons.
	TransformChecks int
	// Backends holds per-backend aggregates in deterministic order.
	Backends []BackendStats
	// TotalViolations counts every violation, including those beyond the
	// retention cap.
	TotalViolations int
	// Violations retains the first Options.MaxViolations failures.
	Violations []Violation
}

// Passed reports whether the run found no violations.
func (r *Report) Passed() bool { return r.TotalViolations == 0 }

// WriteSummary renders the report as a table.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d scenarios, %d packets, seed %d\n",
		r.Scenarios, r.Packets, r.Options.Seed)
	fmt.Fprintf(&b, "checks: %d transform, %d metamorphic\n",
		r.TransformChecks, r.MetamorphicChecks)
	fmt.Fprintf(&b, "%-12s %-6s %9s %9s %8s %10s %9s %6s\n",
		"backend", "class", "enqueued", "dequeued", "dropped", "inversions", "inv-rate", "viol")
	for _, bs := range r.Backends {
		class := "approx"
		if bs.Exact {
			class = "exact"
		}
		fmt.Fprintf(&b, "%-12s %-6s %9d %9d %8d %10d %9.4f %6d\n",
			bs.Backend, class, bs.Enqueued, bs.Dequeued, bs.Dropped,
			bs.Inversions, bs.InversionRate(), bs.Violations)
	}
	if r.TotalViolations == 0 {
		fmt.Fprintf(&b, "PASS: no violations\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d violations (%d shown)\n", r.TotalViolations, len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// report accumulation helpers.

func (r *Report) addViolation(v Violation) {
	r.TotalViolations++
	if len(r.Violations) < r.Options.MaxViolations {
		r.Violations = append(r.Violations, v)
	}
	for i := range r.Backends {
		if r.Backends[i].Backend == v.Backend {
			r.Backends[i].Violations++
			break
		}
	}
}

// scenarioSeed derives scenario i's private seed from the base seed with a
// SplitMix64 avalanche mix (same construction as experiments.TrialSeeds),
// so scenarios are mutually decorrelated and independent of evaluation
// order.
func scenarioSeed(base int64, i int) int64 {
	x := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// Run executes a full conformance run: for every scenario it generates a
// random joint policy and packet trace, verifies the synthesizer's
// metamorphic properties, checks every transform against the
// brute-force reference, and replays the trace differentially through
// every selected backend and the reference oracle.
func Run(opts Options) (*Report, error) {
	opts = opts.defaults()
	selected, err := selectBackends(opts.Backends)
	if err != nil {
		return nil, err
	}
	r := &Report{Options: opts}
	for _, bk := range selected {
		r.Backends = append(r.Backends, BackendStats{Backend: bk.name, Exact: bk.exact})
	}
	for i := 0; i < opts.Scenarios; i++ {
		rng := rand.New(rand.NewSource(scenarioSeed(opts.Seed, i)))
		sc, err := GenScenario(i, rng, opts.MaxPackets)
		if err != nil {
			r.addViolation(Violation{Scenario: i, Kind: ViolationScenario, Detail: err.Error()})
			continue
		}
		r.Scenarios++
		r.Packets += len(sc.Trace)
		checkTransforms(r, sc)
		checkMetamorphic(r, sc)
		runDifferential(r, sc, selected)
	}
	checkAggregateInversionDrift(r)
	sort.SliceStable(r.Violations, func(a, b int) bool {
		return r.Violations[a].Scenario < r.Violations[b].Scenario
	})
	return r, nil
}

// aggregateDriftFloor is the minimum scenario count before the aggregate
// inversion-drift ceilings apply: single scenarios can legitimately land
// well above a backend's long-run rate (the reason the old per-scenario
// FIFO-relative budget flaked), but across ≥20 scenarios the rates
// concentrate tightly.
const aggregateDriftFloor = 20

// inversionDriftCeilings bounds each approximation's aggregate streaming
// inversion count relative to the rank-oblivious FIFO baseline on the
// identical traces. The ceilings derive from the replay-fidelity
// measurements recorded in EXPERIMENTS.md: across seeds the aggregate
// ratios concentrate at ~0.60 (sppifo), ~0.87 (calendar), ~0.63
// (bucketq, whose 128-bucket quantization is 8× finer than the
// calendar's), and ~0.56 (admission) of FIFO's count, so ceilings a
// third above those are far outside sampling noise yet still catch an
// approximation drifting toward — or past — a scheduler that ignores
// ranks entirely.
var inversionDriftCeilings = map[string]float64{
	"sppifo":    0.80,
	"calendar":  1.00,
	"bucketq":   0.85,
	"admission": 0.75,
}

// checkAggregateInversionDrift applies the replay-fidelity-derived drift
// ceilings. It needs the FIFO baseline row for scale, so it is skipped
// when fifo was not among the selected backends or the run is too short
// for the aggregate rates to have concentrated.
func checkAggregateInversionDrift(r *Report) {
	if r.Scenarios < aggregateDriftFloor {
		return
	}
	var fifo *BackendStats
	for i := range r.Backends {
		if r.Backends[i].Backend == "fifo" {
			fifo = &r.Backends[i]
		}
	}
	if fifo == nil || fifo.Inversions == 0 {
		return
	}
	for i := range r.Backends {
		st := &r.Backends[i]
		ceiling, ok := inversionDriftCeilings[st.Backend]
		if !ok {
			continue
		}
		if limit := ceiling * float64(fifo.Inversions); float64(st.Inversions) > limit {
			r.addViolation(Violation{
				Scenario: -1, Backend: st.Backend, Kind: ViolationInversionBound,
				Detail: violationf("aggregate inversions %d exceed %.2f× the FIFO baseline's %d over %d scenarios",
					st.Inversions, ceiling, fifo.Inversions, r.Scenarios),
			})
		}
	}
}

// checkTransforms verifies every tenant transform of the scenario against
// the brute-force reference evaluator.
func checkTransforms(r *Report, sc *Scenario) {
	for _, t := range sc.Tenants {
		tr, ok := sc.Joint.Transforms[t.ID]
		if !ok {
			r.addViolation(Violation{
				Scenario: sc.Index, Kind: ViolationScenario,
				Detail: violationf("tenant %q has no transform", t.Name),
			})
			continue
		}
		r.TransformChecks++
		if v := CheckTransform(tr, TransformSamples(tr)); v != nil {
			v.Scenario = sc.Index
			r.addViolation(*v)
		}
	}
}
