package conform

import (
	"fmt"
	"math/rand"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sim"
	"qvisor/internal/workload"
)

// Scenario is one randomized conformance case: a tenant set, an operator
// policy, the synthesized joint policy, and a pre-processed packet trace
// with a service pattern, all derived deterministically from the
// scenario's private random source.
type Scenario struct {
	// Index is the scenario's position in the run.
	Index int
	// Tenants are the per-tenant policies (random rank bounds and levels).
	Tenants []*core.Tenant
	// Spec is the operator composition policy.
	Spec *policy.Spec
	// Opts are the synthesizer options used.
	Opts core.SynthOptions
	// Joint is the synthesized joint policy.
	Joint *core.JointPolicy
	// Trace is the pre-processed packet trace: ranks already carry the
	// joint policy's output (value packets; the runner makes pooled
	// copies per backend so schedulers can be destructive).
	Trace []pkt.Packet
	// Serve is the randomized service pattern: Serve[i] true means a
	// dequeue burst is attempted after arrival i.
	Serve []bool
}

// unknownTenantID is a label outside every generated tenant set, used to
// exercise the pre-processor's UnknownWorst path in a fraction of traces.
const unknownTenantID = pkt.TenantID(0xFFF0)

// GenScenario builds scenario i from rng. Generation only produces valid
// inputs, so any returned error is itself a conformance finding.
func GenScenario(i int, rng *rand.Rand, maxPackets int) (*Scenario, error) {
	tenants := genTenants(rng)
	spec := genSpec(rng, tenants)
	// Round-trip the spec through the printer and parser: the canonical
	// form must reparse to an equivalent spec, or scenario inputs would
	// not be reproducible from their textual form.
	reparsed, err := policy.Parse(spec.String())
	if err != nil {
		return nil, fmt.Errorf("canonical spec %q does not reparse: %w", spec, err)
	}
	if got, want := reparsed.String(), spec.String(); got != want {
		return nil, fmt.Errorf("spec round-trip drift: %q reparsed as %q", want, got)
	}
	opts := genSynthOptions(rng)
	jp, err := core.Synthesize(tenants, spec, opts)
	if err != nil {
		return nil, fmt.Errorf("synthesize %q: %w", spec, err)
	}
	sc := &Scenario{
		Index:   i,
		Tenants: tenants,
		Spec:    spec,
		Opts:    opts,
		Joint:   jp,
	}
	if err := sc.genTrace(rng, maxPackets); err != nil {
		return nil, err
	}
	return sc, nil
}

// genTenants draws 2–6 tenants with random rank bounds and quantization
// levels. Most spans are moderate; occasionally a tenant gets an extreme
// span (~2^45) so the float-fallback quantization regime is exercised too.
func genTenants(rng *rand.Rand) []*core.Tenant {
	n := 2 + rng.Intn(5)
	tenants := make([]*core.Tenant, n)
	for i := range tenants {
		lo := int64(rng.Intn(2001) - 1000)
		var span int64
		switch rng.Intn(10) {
		case 0: // degenerate: single-rank tenant
			span = 0
		case 1: // extreme span: quantization falls back to float math
			span = (1 << 45) + int64(rng.Intn(1<<20))
		default:
			span = 1 + int64(rng.Intn(1_000_000))
		}
		var levels int64
		if rng.Intn(2) == 0 {
			levels = 1 + int64(rng.Intn(100))
		} // else 0: synthesizer picks min(DefaultLevels, span+1)
		tenants[i] = &core.Tenant{
			ID:     pkt.TenantID(i + 1),
			Name:   fmt.Sprintf("t%d", i+1),
			Bounds: rank.Bounds{Lo: lo, Hi: lo + span},
			Levels: levels,
		}
	}
	return tenants
}

// genSpec partitions the tenants into a random policy expression: random
// tier breaks (">>"), random preference-level breaks (">") inside tiers,
// and random share weights ("*k") inside levels.
func genSpec(rng *rand.Rand, tenants []*core.Tenant) *policy.Spec {
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.Name
	}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })

	spec := &policy.Spec{}
	var tier policy.Tier
	var lvl policy.Level
	flushLevel := func() {
		if len(lvl.Tenants) == 0 {
			return
		}
		// Weights slice stays nil unless some weight exceeds 1, matching
		// the parser's canonical representation.
		weighted := false
		for _, w := range lvl.Weights {
			if w > 1 {
				weighted = true
				break
			}
		}
		if !weighted {
			lvl.Weights = nil
		}
		tier.Levels = append(tier.Levels, lvl)
		lvl = policy.Level{}
	}
	flushTier := func() {
		flushLevel()
		if len(tier.Levels) == 0 {
			return
		}
		spec.Tiers = append(spec.Tiers, tier)
		tier = policy.Tier{}
	}
	for i, name := range names {
		lvl.Tenants = append(lvl.Tenants, name)
		lvl.Weights = append(lvl.Weights, 1+int64(rng.Intn(3)))
		if i == len(names)-1 {
			break
		}
		switch rng.Intn(4) {
		case 0: // ">>": close the tier
			flushTier()
		case 1: // ">": close the level
			flushLevel()
		} // else "+": keep sharing
	}
	flushTier()
	return spec
}

// genSynthOptions draws synthesizer options covering the default and the
// boundary settings of each knob.
func genSynthOptions(rng *rand.Rand) core.SynthOptions {
	var o core.SynthOptions
	switch rng.Intn(3) {
	case 0:
		o.DefaultLevels = 8
	case 1:
		o.DefaultLevels = 128
	} // else 0: default 64
	switch rng.Intn(3) {
	case 0:
		o.PreferenceBias = 0.25
	case 1:
		o.PreferenceBias = 1.0
	} // else 0: default 0.5
	o.Base = int64(rng.Intn(2))
	return o
}

// genTrace builds the packet trace: flow sizes are drawn from
// internal/workload's Poisson generator with the pFabric data-mining
// distribution (scaled down), packetized into ≤1500-byte packets, assigned
// to random tenants with in-bounds ranks (plus occasional out-of-bounds
// and unknown-tenant packets), shuffled, and pre-processed through the
// joint policy so every packet carries its output rank.
func (sc *Scenario) genTrace(rng *rand.Rand, maxPackets int) error {
	flows, err := workload.Poisson(workload.PoissonConfig{
		Hosts:            4,
		Load:             0.4 + rng.Float64()*0.4,
		AccessBitsPerSec: 1e9,
		Sizes:            workload.DataMining().Scaled(0.01),
		Horizon:          20 * sim.Millisecond,
		Rng:              rng,
	})
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	pp := core.NewPreprocessor(sc.Joint, core.UnknownWorst)
	var id uint64
	for fi, f := range flows {
		if len(sc.Trace) >= maxPackets {
			break
		}
		npkts := int((f.Size + 1499) / 1500)
		if npkts < 1 {
			npkts = 1
		}
		if npkts > 16 {
			npkts = 16 // giant flows: a prefix is enough for scheduling
		}
		t := sc.Tenants[rng.Intn(len(sc.Tenants))]
		for j := 0; j < npkts && len(sc.Trace) < maxPackets; j++ {
			size := 1500
			if j == npkts-1 {
				if rem := int(f.Size % 1500); rem > 0 {
					size = rem
				}
			}
			p := pkt.Packet{
				ID:     id,
				Flow:   uint64(fi),
				Tenant: t.ID,
				Size:   size,
				Src:    f.Src,
				Dst:    f.Dst,
			}
			id++
			span := t.Bounds.Hi - t.Bounds.Lo
			switch rng.Intn(20) {
			case 0: // below bounds: exercises the clamp
				p.Rank = t.Bounds.Lo - 1 - int64(rng.Intn(1000))
			case 1: // above bounds
				p.Rank = t.Bounds.Hi + 1 + int64(rng.Intn(1000))
			case 2: // unknown tenant: exercises UnknownWorst
				p.Tenant = unknownTenantID
				p.Rank = int64(rng.Intn(1000))
			default:
				p.Rank = t.Bounds.Lo + randInt64(rng, span+1)
			}
			if !pp.Process(&p) {
				return fmt.Errorf("preprocessor refused packet %d", p.ID)
			}
			sc.Trace = append(sc.Trace, p)
		}
	}
	// The per-flow bursts above arrive back to back; shuffle so backends
	// see interleaved tenants the way a switch port would.
	rng.Shuffle(len(sc.Trace), func(i, j int) {
		sc.Trace[i], sc.Trace[j] = sc.Trace[j], sc.Trace[i]
	})
	sc.Serve = make([]bool, len(sc.Trace))
	for i := range sc.Serve {
		sc.Serve[i] = rng.Intn(2) == 0
	}
	return nil
}

// randInt64 draws uniformly from [0, n) for any positive n, including
// values beyond the int range rng.Intn accepts.
func randInt64(rng *rand.Rand, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return rng.Int63n(n)
}
