package conform

import (
	"reflect"

	"qvisor/internal/core"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
)

// checkMetamorphic verifies the synthesizer's metamorphic properties on
// the scenario's inputs: re-synthesis idempotence, rank-shift invariance,
// and tier-composition congruence. These are theorems of the §3.2
// construction — synthesis depends only on bound spans and spec shape, and
// processes strict tiers sequentially — so any failure is a synthesizer
// bug, not an approximation artifact.
func checkMetamorphic(r *Report, sc *Scenario) {
	checkIdempotence(r, sc)
	checkShiftInvariance(r, sc)
	checkTierCongruence(r, sc)
}

func metaViolation(r *Report, sc *Scenario, detail string) {
	r.addViolation(Violation{Scenario: sc.Index, Kind: ViolationMetamorphic, Detail: detail})
}

// checkIdempotence re-synthesizes the identical inputs and requires a
// deep-equal joint policy: the synthesizer must be a pure function of its
// arguments.
func checkIdempotence(r *Report, sc *Scenario) {
	r.MetamorphicChecks++
	jp2, err := core.Synthesize(sc.Tenants, sc.Spec, sc.Opts)
	if err != nil {
		metaViolation(r, sc, violationf("re-synthesis failed: %v", err))
		return
	}
	switch {
	case !reflect.DeepEqual(jp2.Transforms, sc.Joint.Transforms):
		metaViolation(r, sc, "re-synthesis produced different transforms")
	case !reflect.DeepEqual(jp2.Tiers, sc.Joint.Tiers):
		metaViolation(r, sc, "re-synthesis produced different tier plans")
	case jp2.Output != sc.Joint.Output:
		metaViolation(r, sc, violationf("re-synthesis produced output bounds %v, originally %v",
			jp2.Output, sc.Joint.Output))
	}
}

// shiftDelta picks the scenario's deterministic bound shift: varied across
// scenarios, sign-alternating, never zero.
func shiftDelta(index int) int64 {
	c := int64(index%7+1) * 977
	if index%2 == 1 {
		c = -c
	}
	return c
}

// checkShiftInvariance shifts one tenant's rank bounds by a constant and
// re-synthesizes: the synthesizer only analyzes bound *spans*, so the
// shifted tenant's transform must satisfy T'(r+c) == T(r) and every other
// tenant's transform must be unchanged.
func checkShiftInvariance(r *Report, sc *Scenario) {
	for k, tk := range sc.Tenants {
		r.MetamorphicChecks++
		c := shiftDelta(sc.Index + k)
		b, err := tk.EffectiveBounds()
		if err != nil {
			metaViolation(r, sc, violationf("tenant %q bounds: %v", tk.Name, err))
			continue
		}
		shifted := rank.Bounds{Lo: b.Lo + c, Hi: b.Hi + c}
		if shifted == (rank.Bounds{}) {
			// The zero Bounds value means "ask the algorithm"; nudge off it.
			c++
			shifted = rank.Bounds{Lo: b.Lo + c, Hi: b.Hi + c}
		}
		tenants2 := make([]*core.Tenant, len(sc.Tenants))
		copy(tenants2, sc.Tenants)
		tk2 := *tk
		tk2.Bounds = shifted
		tenants2[k] = &tk2
		jp2, err := core.Synthesize(tenants2, sc.Spec, sc.Opts)
		if err != nil {
			metaViolation(r, sc, violationf("synthesis with tenant %q shifted by %d failed: %v", tk.Name, c, err))
			continue
		}
		for j, tj := range sc.Tenants {
			t1 := sc.Joint.Transforms[tj.ID]
			t2, ok := jp2.Transforms[tj.ID]
			if !ok {
				metaViolation(r, sc, violationf("shifted synthesis lost tenant %q", tj.Name))
				break
			}
			if j != k {
				if t1 != t2 {
					metaViolation(r, sc, violationf(
						"shifting tenant %q by %d changed tenant %q's transform: %v -> %v",
						tk.Name, c, tj.Name, t1, t2))
					break
				}
				continue
			}
			bad := false
			for _, in := range TransformSamples(t1) {
				if got, want := t2.Apply(in+c), t1.Apply(in); got != want {
					metaViolation(r, sc, violationf(
						"shift invariance: tenant %q shifted by %d: T'(%d)=%d, T(%d)=%d",
						tk.Name, c, in+c, got, in, want))
					bad = true
					break
				}
			}
			if bad {
				break
			}
		}
	}
}

// checkTierCongruence synthesizes each strict tier as a standalone policy
// and requires the full policy's transforms to be the standalone ones
// translated by the tier's base offset: ">>" composition must not change
// anything about a tier's internal layout except where it starts.
func checkTierCongruence(r *Report, sc *Scenario) {
	for ti, tier := range sc.Spec.Tiers {
		r.MetamorphicChecks++
		sub := &policy.Spec{Tiers: []policy.Tier{tier}}
		jpSub, err := core.Synthesize(sc.Tenants, sub, sc.Opts)
		if err != nil {
			metaViolation(r, sc, violationf("standalone synthesis of tier %d failed: %v", ti, err))
			continue
		}
		// Every tenant in the tier must be translated by the same delta.
		var delta int64
		haveDelta := false
		bad := false
		for _, lvl := range tier.Levels {
			for _, name := range lvl.Tenants {
				tFull, ok1 := sc.Joint.TransformOf(name)
				tSub, ok2 := jpSub.TransformOf(name)
				if !ok1 || !ok2 {
					metaViolation(r, sc, violationf("tier %d tenant %q missing a transform", ti, name))
					bad = true
					break
				}
				d := tFull.Offset - tSub.Offset
				if !haveDelta {
					delta, haveDelta = d, true
				} else if d != delta {
					metaViolation(r, sc, violationf(
						"tier %d: tenant %q translated by %d, tier translated by %d", ti, name, d, delta))
					bad = true
					break
				}
				norm := tFull
				norm.Offset = tSub.Offset
				if norm != tSub {
					metaViolation(r, sc, violationf(
						"tier %d: tenant %q layout differs beyond translation: full %v, standalone %v",
						ti, name, tFull, tSub))
					bad = true
					break
				}
				for _, in := range TransformSamples(tSub) {
					if got, want := tFull.Apply(in), tSub.Apply(in)+delta; got != want {
						metaViolation(r, sc, violationf(
							"tier %d tenant %q: full Apply(%d)=%d, standalone+%d=%d",
							ti, name, in, got, delta, want))
						bad = true
						break
					}
				}
				if bad {
					break
				}
			}
			if bad {
				break
			}
		}
	}
}
