package conform

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

// The UPS replay oracle, after Universal Packet Scheduling (Mittal et
// al.): record the departure schedule an ideal PIFO produces for a
// scenario, feed the *identical* arrivals and service pattern to each
// approximate backend, and measure how closely it reproduces the ideal
// schedule. Where the differential runner (diff.go) asks a boolean
// question per backend — "did an invariant break?" — the replay oracle
// asks a quantitative one: "how far from ideal?", scored as an
// exact-replay rate, UPS pair inversions, positional and rank-weighted
// displacement, and drop-profile divergence, with a per-tenant breakdown.
// The resulting scoreboard (see EXPERIMENTS.md) is what the synthesizer's
// backend auto-selection consumes via Profiles.

// replayCapacity is the per-port buffer the replay runs under: tight
// enough (32 full-size packets, same as diff.go's tightCapacity) that
// every backend faces real buffer and admission pressure, so the drop
// profile is part of the measurement rather than vacuously empty.
const replayCapacity = tightCapacity

// Schedule is one backend's observable outcome of replaying a scenario:
// the delivered packets in departure order and the dropped packet IDs in
// callback order.
type Schedule struct {
	// Delivered holds value copies of the departed packets, in order.
	Delivered []pkt.Packet
	// Dropped holds the IDs of refused or evicted packets.
	Dropped []uint64
}

// TenantScore is the per-tenant slice of a ReplayScore.
type TenantScore struct {
	// Matched counts packets delivered by both backend and ideal.
	Matched int
	// Displaced counts matched packets whose restricted schedule
	// position differs from the ideal's.
	Displaced int
	// Displacement sums |actual position − ideal position| over the
	// tenant's matched packets.
	Displacement int64
	// DropDivergence counts the tenant's packets delivered by exactly
	// one of {backend, ideal}.
	DropDivergence int
}

// ReplayScore quantifies how faithfully one schedule reproduces the
// ideal. All positional metrics are computed on the *matched* set — the
// packets both schedules delivered — after restricting both schedules to
// it, so a backend is not charged positional error for packets the two
// drop profiles disagree on; that disagreement is scored separately as
// DropDivergence.
type ReplayScore struct {
	// Exact reports a perfect replay: identical delivered sequences and
	// identical drop sets.
	Exact bool
	// Matched counts packets delivered by both schedules.
	Matched int
	// PairInversions counts UPS inversions: matched pairs delivered in
	// the opposite relative order from the ideal schedule.
	PairInversions int64
	// Displacement sums |actual position − ideal position| over matched
	// packets (positions within the restricted schedules).
	Displacement int64
	// RankDisplacement sums |rank(actual[i]) − rank(ideal[i])| over
	// restricted schedule positions i — zero iff the backend delivers
	// the ideal rank profile, weighting each slot by how far in rank
	// space the substitution strayed.
	RankDisplacement int64
	// DropDivergence counts packets delivered by exactly one schedule.
	DropDivergence int
	// PerTenant breaks the score down by tenant ID.
	PerTenant map[pkt.TenantID]TenantScore
}

// ScoreReplay scores an actual schedule against the ideal one. Both
// schedules must be over the same offered trace (the caller's replay
// harness guarantees conservation; ScoreReplay only measures).
func ScoreReplay(ideal, actual Schedule) ReplayScore {
	s := ReplayScore{PerTenant: make(map[pkt.TenantID]TenantScore)}

	posIdeal := make(map[uint64]int, len(ideal.Delivered))
	for i := range ideal.Delivered {
		posIdeal[ideal.Delivered[i].ID] = i
	}
	inActual := make(map[uint64]bool, len(actual.Delivered))
	for i := range actual.Delivered {
		inActual[actual.Delivered[i].ID] = true
	}

	// Restrict both schedules to the matched set, preserving order.
	var restIdeal, restActual []pkt.Packet
	for _, p := range ideal.Delivered {
		if inActual[p.ID] {
			restIdeal = append(restIdeal, p)
		} else {
			s.DropDivergence++
			ts := s.PerTenant[p.Tenant]
			ts.DropDivergence++
			s.PerTenant[p.Tenant] = ts
		}
	}
	for _, p := range actual.Delivered {
		if _, ok := posIdeal[p.ID]; ok {
			restActual = append(restActual, p)
		} else {
			s.DropDivergence++
			ts := s.PerTenant[p.Tenant]
			ts.DropDivergence++
			s.PerTenant[p.Tenant] = ts
		}
	}
	s.Matched = len(restActual)

	// The actual restricted schedule as a permutation of the ideal
	// restricted positions.
	restPos := make(map[uint64]int, len(restIdeal))
	for i := range restIdeal {
		restPos[restIdeal[i].ID] = i
	}
	perm := make([]int, len(restActual))
	for i, p := range restActual {
		perm[i] = restPos[p.ID]
		d := int64(i - perm[i])
		if d < 0 {
			d = -d
		}
		s.Displacement += d
		ts := s.PerTenant[p.Tenant]
		ts.Matched++
		if d != 0 {
			ts.Displaced++
		}
		ts.Displacement += d
		s.PerTenant[p.Tenant] = ts
		if r := p.Rank - restIdeal[i].Rank; r >= 0 {
			s.RankDisplacement += r
		} else {
			s.RankDisplacement -= r
		}
	}
	s.PairInversions = countInversions(perm)

	// Exact: same delivered sequence and same drop set.
	s.Exact = len(ideal.Delivered) == len(actual.Delivered) &&
		len(ideal.Dropped) == len(actual.Dropped) &&
		s.DropDivergence == 0
	if s.Exact {
		for i := range ideal.Delivered {
			if ideal.Delivered[i].ID != actual.Delivered[i].ID {
				s.Exact = false
				break
			}
		}
	}
	if s.Exact {
		di := append([]uint64(nil), ideal.Dropped...)
		da := append([]uint64(nil), actual.Dropped...)
		sort.Slice(di, func(a, b int) bool { return di[a] < di[b] })
		sort.Slice(da, func(a, b int) bool { return da[a] < da[b] })
		for i := range di {
			if di[i] != da[i] {
				s.Exact = false
				break
			}
		}
	}
	return s
}

// countInversions returns the number of inverted pairs (i<j with
// perm[i]>perm[j]) via merge sort, O(n log n). perm is left unmodified.
func countInversions(perm []int) int64 {
	n := len(perm)
	if n < 2 {
		return 0
	}
	work := append([]int(nil), perm...)
	buf := make([]int, n)
	var merge func(lo, hi int) int64
	merge = func(lo, hi int) int64 {
		if hi-lo < 2 {
			return 0
		}
		mid := (lo + hi) / 2
		inv := merge(lo, mid) + merge(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if work[i] <= work[j] {
				buf[k] = work[i]
				i++
			} else {
				// work[j] jumps ahead of every remaining left element.
				inv += int64(mid - i)
				buf[k] = work[j]
				j++
			}
			k++
		}
		copy(buf[k:], work[i:mid])
		copy(buf[k+mid-i:hi], work[j:hi])
		copy(work[lo:hi], buf[lo:hi])
		return inv
	}
	return merge(0, n)
}

// TenantFidelity aggregates one tenant's replay fidelity for one backend
// across all scenarios of a sweep.
type TenantFidelity struct {
	// Tenant is the tenant's name ("t1"..., or "unknown").
	Tenant string
	// Matched, Displaced, Displacement, DropDivergence aggregate the
	// TenantScore fields.
	Matched, Displaced int
	Displacement       int64
	DropDivergence     int
}

// BackendFidelity is one backend's row of the fidelity scoreboard.
type BackendFidelity struct {
	// Backend names the discipline.
	Backend string
	// Scenarios counts scenarios replayed.
	Scenarios int
	// ExactReplays counts scenarios reproduced exactly (order + drops).
	ExactReplays int
	// Offered counts trace packets across all scenarios.
	Offered int
	// IdealDelivered counts packets the ideal schedule delivered.
	IdealDelivered int
	// Delivered counts packets this backend delivered.
	Delivered int
	// Matched counts packets delivered by both.
	Matched int
	// PairInversions, Displacement, RankDisplacement, DropDivergence
	// aggregate the per-scenario scores.
	PairInversions   int64
	Displacement     int64
	RankDisplacement int64
	DropDivergence   int
	// PerTenant holds the per-tenant breakdown, sorted by tenant name.
	PerTenant []TenantFidelity
	// Errors counts replay failures (conservation/pool leaks) — always a
	// bug in the backend under test.
	Errors int
}

// ExactReplayRate returns ExactReplays / Scenarios.
func (f BackendFidelity) ExactReplayRate() float64 {
	if f.Scenarios == 0 {
		return 0
	}
	return float64(f.ExactReplays) / float64(f.Scenarios)
}

// InversionsPerPacket returns PairInversions / Matched.
func (f BackendFidelity) InversionsPerPacket() float64 {
	if f.Matched == 0 {
		return 0
	}
	return float64(f.PairInversions) / float64(f.Matched)
}

// DisplacementPerPacket returns Displacement / Matched.
func (f BackendFidelity) DisplacementPerPacket() float64 {
	if f.Matched == 0 {
		return 0
	}
	return float64(f.Displacement) / float64(f.Matched)
}

// DropDivergenceRate returns DropDivergence / Offered.
func (f BackendFidelity) DropDivergenceRate() float64 {
	if f.Offered == 0 {
		return 0
	}
	return float64(f.DropDivergence) / float64(f.Offered)
}

// ReplayOptions parametrize a replay sweep.
type ReplayOptions struct {
	// Scenarios is the number of random scenarios (default 50).
	Scenarios int
	// Seed is the base seed; identical options reproduce identical
	// scoreboards byte for byte (scenario seeds derive exactly as in the
	// differential runner, so scenario i here is scenario i there).
	Seed int64
	// MaxPackets caps the per-scenario trace length (default 1500).
	MaxPackets int
	// Backends restricts the sweep to the named disciplines (nil or
	// "all" = all nine). Names are matched against ReplayBackendNames.
	Backends []string
}

func (o ReplayOptions) defaults() ReplayOptions {
	if o.Scenarios <= 0 {
		o.Scenarios = 50
	}
	if o.MaxPackets <= 0 {
		o.MaxPackets = 1500
	}
	return o
}

// ReplayReport is the result of a replay sweep: the per-backend fidelity
// scoreboard.
type ReplayReport struct {
	// Options echoes the (defaulted) options.
	Options ReplayOptions
	// Scenarios counts scenarios replayed; Packets the trace packets.
	Scenarios, Packets int
	// Backends holds the scoreboard rows in deterministic order.
	Backends []BackendFidelity
	// Errors retains replay failures (conservation bugs), capped at 50.
	Errors []string
	// TotalErrors counts every failure, including beyond the cap.
	TotalErrors int
}

// Passed reports whether every replay conserved packets.
func (r *ReplayReport) Passed() bool { return r.TotalErrors == 0 }

// replayBackendDef builds one discipline for the replay sweep. The
// capacity is fixed at replayCapacity; cfg carries the drop callback.
type replayBackendDef struct {
	name  string
	build func(sc *Scenario, cfg sched.Config) (sched.Scheduler, error)
}

// replayBackends lists the nine scheduling disciplines in scoreboard
// order: the exact reference first, then the FIFO-family baselines, then
// the PIFO approximations.
func replayBackends() []replayBackendDef {
	return []replayBackendDef{
		{"pifo", func(_ *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			return sched.NewPIFO(cfg), nil
		}},
		{"fifo", func(_ *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			return sched.NewFIFO(cfg), nil
		}},
		{"drr", func(_ *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			return sched.NewDRR(sched.DRRConfig{Config: cfg}), nil
		}},
		{"sp-queues", func(sc *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			queues := 8
			if nt := len(sc.Joint.Tiers); nt > queues {
				queues = nt
			}
			dep, err := sc.Joint.Deploy(core.BackendSPQueues, core.DeployOptions{
				Queues: queues, Sched: cfg,
			})
			if err != nil {
				return nil, err
			}
			return dep.Scheduler, nil
		}},
		{"sppifo", func(_ *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			return sched.NewSPPIFO(cfg, 8), nil
		}},
		{"calendar", func(sc *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			buckets := 16
			span := sc.Joint.Output.Span() + 2
			width := (span + int64(buckets) - 1) / int64(buckets)
			if width < 1 {
				width = 1
			}
			return sched.NewCalendar(cfg, buckets, width), nil
		}},
		{"bucketq", func(sc *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			buckets := 128
			span := sc.Joint.Output.Span() + 2
			width := (span + int64(buckets) - 1) / int64(buckets)
			if width < 1 {
				width = 1
			}
			return sched.NewBucketQ(cfg, buckets, width), nil
		}},
		{"aifo", func(_ *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			return sched.NewAIFO(sched.AIFOConfig{Config: cfg}), nil
		}},
		{"admission", func(_ *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			return sched.NewAdmission(sched.AdmissionConfig{Config: cfg}), nil
		}},
	}
}

// ReplayBackendNames returns the names of the replay sweep's disciplines.
func ReplayBackendNames() []string {
	all := replayBackends()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.name
	}
	return out
}

func selectReplayBackends(names []string) ([]replayBackendDef, error) {
	all := replayBackends()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool)
	for _, n := range names {
		if n == "all" {
			return all, nil
		}
		want[strings.TrimSpace(n)] = true
	}
	var out []replayBackendDef
	for _, b := range all {
		if want[b.name] {
			out = append(out, b)
			delete(want, b.name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("conform: unknown replay backend %q (known: %s)",
			n, strings.Join(ReplayBackendNames(), ", "))
	}
	return out, nil
}

// replaySchedule runs the scenario through build at replayCapacity and
// returns the observable schedule.
func replaySchedule(sc *Scenario, build func(sc *Scenario, cfg sched.Config) (sched.Scheduler, error)) (Schedule, error) {
	res, err := replay(sc, false, func(d sched.DropFn) (sched.Scheduler, error) {
		return build(sc, sched.Config{CapacityBytes: replayCapacity, OnDrop: d})
	}, nil)
	if err != nil {
		return Schedule{}, err
	}
	return Schedule{Delivered: res.dequeued, Dropped: res.drops}, nil
}

// RunReplay executes a replay sweep: for every scenario it records the
// ideal schedule under the reference PIFO, replays the identical arrivals
// through each selected backend, and aggregates the fidelity scoreboard.
func RunReplay(opts ReplayOptions) (*ReplayReport, error) {
	opts = opts.defaults()
	selected, err := selectReplayBackends(opts.Backends)
	if err != nil {
		return nil, err
	}
	r := &ReplayReport{Options: opts}
	perTenant := make([]map[string]*TenantFidelity, len(selected))
	for i, b := range selected {
		r.Backends = append(r.Backends, BackendFidelity{Backend: b.name})
		perTenant[i] = make(map[string]*TenantFidelity)
	}
	addErr := func(msg string) {
		r.TotalErrors++
		if len(r.Errors) < 50 {
			r.Errors = append(r.Errors, msg)
		}
	}
	for i := 0; i < opts.Scenarios; i++ {
		rng := rand.New(rand.NewSource(scenarioSeed(opts.Seed, i)))
		sc, err := GenScenario(i, rng, opts.MaxPackets)
		if err != nil {
			addErr(fmt.Sprintf("scenario %d: %v", i, err))
			continue
		}
		r.Scenarios++
		r.Packets += len(sc.Trace)
		ideal, err := replaySchedule(sc, func(_ *Scenario, cfg sched.Config) (sched.Scheduler, error) {
			return refScheduler{NewRefPIFO(cfg.CapacityBytes, cfg.OnDrop)}, nil
		})
		if err != nil {
			addErr(fmt.Sprintf("scenario %d [ideal]: %v", i, err))
			continue
		}
		nameOf := tenantNamer(sc)
		for bi, b := range selected {
			bf := &r.Backends[bi]
			actual, err := replaySchedule(sc, b.build)
			if err != nil {
				bf.Errors++
				addErr(fmt.Sprintf("scenario %d [%s]: %v", i, b.name, err))
				continue
			}
			score := ScoreReplay(ideal, actual)
			bf.Scenarios++
			if score.Exact {
				bf.ExactReplays++
			}
			bf.Offered += len(sc.Trace)
			bf.IdealDelivered += len(ideal.Delivered)
			bf.Delivered += len(actual.Delivered)
			bf.Matched += score.Matched
			bf.PairInversions += score.PairInversions
			bf.Displacement += score.Displacement
			bf.RankDisplacement += score.RankDisplacement
			bf.DropDivergence += score.DropDivergence
			ids := make([]int, 0, len(score.PerTenant))
			for id := range score.PerTenant {
				ids = append(ids, int(id))
			}
			sort.Ints(ids)
			for _, id := range ids {
				ts := score.PerTenant[pkt.TenantID(id)]
				name := nameOf(pkt.TenantID(id))
				tf := perTenant[bi][name]
				if tf == nil {
					tf = &TenantFidelity{Tenant: name}
					perTenant[bi][name] = tf
				}
				tf.Matched += ts.Matched
				tf.Displaced += ts.Displaced
				tf.Displacement += ts.Displacement
				tf.DropDivergence += ts.DropDivergence
			}
		}
	}
	for bi := range r.Backends {
		names := make([]string, 0, len(perTenant[bi]))
		for name := range perTenant[bi] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r.Backends[bi].PerTenant = append(r.Backends[bi].PerTenant, *perTenant[bi][name])
		}
	}
	return r, nil
}

// tenantNamer maps the scenario's tenant IDs to their names ("unknown"
// for the out-of-set label the generator injects).
func tenantNamer(sc *Scenario) func(pkt.TenantID) string {
	byID := make(map[pkt.TenantID]string, len(sc.Tenants))
	for _, t := range sc.Tenants {
		byID[t.ID] = t.Name
	}
	return func(id pkt.TenantID) string {
		if n, ok := byID[id]; ok {
			return n
		}
		return "unknown"
	}
}

// Summary renders the fidelity scoreboard.
func (r *ReplayReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay fidelity: %d scenarios, %d packets, seed %d (UPS replay vs ideal PIFO, %d-byte buffers)\n",
		r.Scenarios, r.Packets, r.Options.Seed, replayCapacity)
	fmt.Fprintf(&b, "%-10s %6s %9s %9s %10s %10s %11s %9s %6s\n",
		"backend", "exact", "delivered", "matched", "inv/pkt", "disp/pkt", "rankdisp", "drop-div", "err")
	for _, f := range r.Backends {
		fmt.Fprintf(&b, "%-10s %5.0f%% %9d %9d %10.3f %10.3f %11.1f %8.4f%% %6d\n",
			f.Backend, 100*f.ExactReplayRate(), f.Delivered, f.Matched,
			f.InversionsPerPacket(), f.DisplacementPerPacket(),
			rankDispPerPacket(f), 100*f.DropDivergenceRate(), f.Errors)
	}
	for _, f := range r.Backends {
		if f.ExactReplayRate() == 1 || len(f.PerTenant) == 0 {
			continue
		}
		fmt.Fprintf(&b, "per-tenant [%s]:", f.Backend)
		for _, tf := range f.PerTenant {
			fmt.Fprintf(&b, " %s: %d/%d displaced (Σ%d, drop-div %d)",
				tf.Tenant, tf.Displaced, tf.Matched, tf.Displacement, tf.DropDivergence)
		}
		fmt.Fprintf(&b, "\n")
	}
	if r.TotalErrors == 0 {
		fmt.Fprintf(&b, "PASS: every replay conserved packets\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d replay errors (%d shown)\n", r.TotalErrors, len(r.Errors))
		for _, e := range r.Errors {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}

func rankDispPerPacket(f BackendFidelity) float64 {
	if f.Matched == 0 {
		return 0
	}
	return float64(f.RankDisplacement) / float64(f.Matched)
}

// profileBackends maps replay discipline names to deployment backends.
// DRR has no deployment backend (it realizes fair sharing, not rank
// order), so it contributes no profile.
var profileBackends = map[string]core.Backend{
	"pifo":      core.BackendPIFO,
	"fifo":      core.BackendFIFO,
	"sp-queues": core.BackendSPQueues,
	"sppifo":    core.BackendSPPIFO,
	"aifo":      core.BackendAIFO,
	"calendar":  core.BackendCalendar,
	"bucketq":   core.BackendBucketQ,
	"admission": core.BackendAdmission,
}

// Profiles distills the scoreboard into the fidelity profiles the
// synthesizer's backend auto-selection consumes (core.SelectBackend,
// JointPolicy.DeployBest). Rows without a deployment backend (DRR) or
// without scenarios are skipped.
func (r *ReplayReport) Profiles() []core.FidelityProfile {
	var out []core.FidelityProfile
	for _, f := range r.Backends {
		b, ok := profileBackends[f.Backend]
		if !ok || f.Scenarios == 0 {
			continue
		}
		out = append(out, core.FidelityProfile{
			Backend:               b,
			ExactReplayRate:       f.ExactReplayRate(),
			InversionsPerPacket:   f.InversionsPerPacket(),
			DisplacementPerPacket: f.DisplacementPerPacket(),
			DropDivergenceRate:    f.DropDivergenceRate(),
		})
	}
	return out
}
