package conform

import (
	"fmt"
	"sort"
	"strings"

	"qvisor/internal/core"
	"qvisor/internal/pifotree"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/trace"
)

// hugeCapacity removes buffer pressure: the trace's byte volume is far
// below it, so every backend accepts every packet and differences reflect
// ordering semantics only.
const hugeCapacity = 1 << 30

// tightCapacity forces drops and evictions, exercising the PIFO buffer
// semantics (evict-worst, ties favor the queued packet) differentially.
const tightCapacity = 32 * 1500

// maxOccupancy bounds the replay backlog (same cap as the experiment
// harness) so inversion rates reflect realistic queue depths.
const maxOccupancy = 64

// backendDef is one differential target.
type backendDef struct {
	name  string
	exact bool
	run   func(r *Report, ctx *diffCtx, st *BackendStats)
}

// allBackends lists every differential target in report order. FIFO-exact
// and oracle replays are materialized lazily by diffCtx, so restricting
// Options.Backends skips the work of unselected ones.
func allBackends() []backendDef {
	return []backendDef{
		{"pifo", true, runPIFO},
		{"pifo-tight", true, runPIFOTight},
		{"pifotree", true, runPIFOTree},
		{"fifo", true, runFIFO},
		{"aifo", true, runAIFO},
		{"sp-queues", true, runSPQueues},
		{"drr", true, runDRR},
		{"sppifo", false, runSPPIFO},
		{"calendar", false, runCalendar},
		{"bucketq", false, runBucketQ},
		{"admission", false, runAdmission},
	}
}

// selectBackends resolves Options.Backends against the registry.
func selectBackends(names []string) ([]backendDef, error) {
	all := allBackends()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool)
	for _, n := range names {
		if n == "all" {
			return all, nil
		}
		want[strings.TrimSpace(n)] = true
	}
	var out []backendDef
	for _, b := range all {
		if want[b.name] {
			out = append(out, b)
			delete(want, b.name)
		}
	}
	if len(want) > 0 {
		known := make([]string, len(all))
		for i, b := range all {
			known[i] = b.name
		}
		for n := range want {
			return nil, fmt.Errorf("conform: unknown backend %q (known: %s)", n, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// BackendNames returns the names of every differential target.
func BackendNames() []string {
	all := allBackends()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.name
	}
	return out
}

// replayEvent is one observable scheduler action: 'd' = drop/evict,
// 'q' = dequeue. Drop events also carry the reported cause, so exact
// backends must agree with the oracle on why a packet was dropped
// (overflow vs. eviction), not just which packet left.
type replayEvent struct {
	kind  byte
	id    uint64
	cause sched.DropCause // meaningful only when kind == 'd'
}

// replayResult captures everything observable about one backend's replay
// of a scenario trace.
type replayResult struct {
	// accepted holds value copies of accepted arrivals, arrival order.
	accepted []pkt.Packet
	// dequeued holds value copies in dequeue order.
	dequeued []pkt.Packet
	// drops holds dropped/evicted packet IDs in callback order.
	drops []uint64
	// events interleaves drops and dequeues in observation order.
	events []replayEvent
	// inv counts rank inversions (nil when counting was disabled).
	inv *trace.InversionCounter
	// stepViolation is the first invariant breach reported by the step
	// hook ("" = none).
	stepViolation string
}

// replay feeds the scenario trace through a scheduler built by build,
// using the scenario's service pattern. Packets are pooled copies; the
// drop callback is the single release point for refused/evicted packets
// and the dequeue loop for serviced ones, so a non-zero outstanding count
// at the end is a conservation bug. countInv must be false when the
// scheduler can evict accepted packets (the inversion model has no
// eviction hook). step, when non-nil, runs after every enqueue and
// dequeue and reports the first invariant violation it sees.
func replay(sc *Scenario, countInv bool, build func(drop sched.DropFn) (sched.Scheduler, error), step func() string) (*replayResult, error) {
	pool := pkt.NewPool()
	res := &replayResult{}
	if countInv {
		res.inv = trace.NewInversionCounter()
	}
	drop := func(p *pkt.Packet, cause sched.DropCause) {
		res.drops = append(res.drops, p.ID)
		res.events = append(res.events, replayEvent{'d', p.ID, cause})
		pool.Put(p)
	}
	s, err := build(drop)
	if err != nil {
		return nil, err
	}
	checkStep := func() {
		if step == nil || res.stepViolation != "" {
			return
		}
		res.stepViolation = step()
	}
	for i := range sc.Trace {
		cp := pool.Get()
		*cp = sc.Trace[i]
		if s.Enqueue(cp) {
			res.accepted = append(res.accepted, sc.Trace[i])
			if res.inv != nil {
				res.inv.OnEnqueue(sc.Trace[i].Rank)
			}
		}
		checkStep()
		for serveOne := sc.Serve[i] || s.Len() > maxOccupancy; serveOne; serveOne = s.Len() > maxOccupancy {
			got := s.Dequeue()
			if got == nil {
				break
			}
			if res.inv != nil {
				res.inv.OnDequeue(got.Rank)
			}
			res.dequeued = append(res.dequeued, *got)
			res.events = append(res.events, replayEvent{kind: 'q', id: got.ID})
			pool.Put(got)
			checkStep()
		}
	}
	for got := s.Dequeue(); got != nil; got = s.Dequeue() {
		if res.inv != nil {
			res.inv.OnDequeue(got.Rank)
		}
		res.dequeued = append(res.dequeued, *got)
		res.events = append(res.events, replayEvent{kind: 'q', id: got.ID})
		pool.Put(got)
		checkStep()
	}
	if n := pool.Outstanding(); n != 0 {
		return nil, fmt.Errorf("%s leaked %d packets", s.Name(), n)
	}
	return res, nil
}

// diffCtx carries lazily-materialized shared replays for one scenario:
// the huge- and tight-capacity reference oracles and the FIFO baseline's
// inversion count.
type diffCtx struct {
	sc          *Scenario
	oracleHuge  *replayResult
	oracleTight *replayResult
	fifoRes     *replayResult
	err         error
}

// refScheduler adapts RefPIFO to sched.Scheduler so the oracle replays
// through the same harness as the backends under test.
type refScheduler struct{ *RefPIFO }

func (refScheduler) Name() string { return "ref-pifo" }
func (refScheduler) Reset()       {}

func (c *diffCtx) oracle(capacity int) *replayResult {
	cached := &c.oracleHuge
	if capacity == tightCapacity {
		cached = &c.oracleTight
	}
	if *cached == nil && c.err == nil {
		*cached, c.err = replay(c.sc, false, func(d sched.DropFn) (sched.Scheduler, error) {
			return refScheduler{NewRefPIFO(capacity, d)}, nil
		}, nil)
	}
	return *cached
}

func (c *diffCtx) fifo() *replayResult {
	if c.fifoRes == nil && c.err == nil {
		c.fifoRes, c.err = replay(c.sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
			return sched.NewFIFO(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}), nil
		}, nil)
	}
	return c.fifoRes
}

// runDifferential replays the scenario through every selected backend and
// records violations and statistics.
func runDifferential(r *Report, sc *Scenario, backends []backendDef) {
	ctx := &diffCtx{sc: sc}
	for i, b := range backends {
		st := &r.Backends[i]
		b.run(r, ctx, st)
		if ctx.err != nil {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: b.name, Kind: ViolationConservation,
				Detail: ctx.err.Error(),
			})
			ctx.err = nil
		}
	}
}

// accumulate folds a replay into the backend's aggregate statistics.
func accumulate(st *BackendStats, res *replayResult) {
	st.Enqueued += len(res.accepted)
	st.Dequeued += len(res.dequeued)
	st.Dropped += len(res.drops)
	if res.inv != nil {
		st.Inversions += res.inv.Inversions
		if res.inv.MaxMagnitude > st.MaxInversionMagnitude {
			st.MaxInversionMagnitude = res.inv.MaxMagnitude
		}
	}
}

// checkConservation verifies the accepted and dequeued ID multisets match:
// no packet lost, duplicated, or invented.
func checkConservation(r *Report, sc *Scenario, name string, res *replayResult) bool {
	if len(res.accepted)+len(res.drops) != len(sc.Trace) {
		r.addViolation(Violation{
			Scenario: sc.Index, Backend: name, Kind: ViolationConservation,
			Detail: violationf("%d accepted + %d dropped != %d offered",
				len(res.accepted), len(res.drops), len(sc.Trace)),
		})
		return false
	}
	if len(res.dequeued) != len(res.accepted) {
		r.addViolation(Violation{
			Scenario: sc.Index, Backend: name, Kind: ViolationConservation,
			Detail: violationf("accepted %d packets, dequeued %d", len(res.accepted), len(res.dequeued)),
		})
		return false
	}
	a := make([]uint64, len(res.accepted))
	d := make([]uint64, len(res.dequeued))
	for i := range res.accepted {
		a[i] = res.accepted[i].ID
		d[i] = res.dequeued[i].ID
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	for i := range a {
		if a[i] != d[i] {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: name, Kind: ViolationConservation,
				Detail: violationf("accepted/dequeued ID multisets differ at sorted index %d: %d vs %d", i, a[i], d[i]),
			})
			return false
		}
	}
	return true
}

// checkExactOrder asserts the backend's dequeue ID sequence equals the
// oracle's.
func checkExactOrder(r *Report, sc *Scenario, name string, got, oracle *replayResult) {
	if len(got.dequeued) != len(oracle.dequeued) {
		r.addViolation(Violation{
			Scenario: sc.Index, Backend: name, Kind: ViolationExactOrder,
			Detail: violationf("dequeued %d packets, oracle %d", len(got.dequeued), len(oracle.dequeued)),
		})
		return
	}
	for i := range got.dequeued {
		g, w := got.dequeued[i], oracle.dequeued[i]
		if g.ID != w.ID {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: name, Kind: ViolationExactOrder,
				Detail: violationf("dequeue %d: packet %d (rank %d), oracle %d (rank %d)",
					i, g.ID, g.Rank, w.ID, w.Rank),
			})
			return
		}
	}
}

// checkArrivalOrder asserts dequeues preserve accepted arrival order
// (plain FIFO semantics).
func checkArrivalOrder(r *Report, sc *Scenario, name string, res *replayResult) {
	n := len(res.dequeued)
	if len(res.accepted) < n {
		n = len(res.accepted)
	}
	for i := 0; i < n; i++ {
		if res.dequeued[i].ID != res.accepted[i].ID {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: name, Kind: ViolationArrivalOrder,
				Detail: violationf("dequeue %d: packet %d, arrival order expects %d",
					i, res.dequeued[i].ID, res.accepted[i].ID),
			})
			return
		}
	}
}

// --- per-backend runners ---

func runPIFO(r *Report, ctx *diffCtx, st *BackendStats) {
	res, err := replay(ctx.sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewPIFO(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}), nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if !checkConservation(r, ctx.sc, st.Backend, res) {
		return
	}
	oracle := ctx.oracle(hugeCapacity)
	if oracle == nil {
		return
	}
	checkExactOrder(r, ctx.sc, st.Backend, res, oracle)
	if res.inv != nil && res.inv.Inversions != 0 {
		r.addViolation(Violation{
			Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationInversionBound,
			Detail: violationf("ideal PIFO produced %d inversions", res.inv.Inversions),
		})
	}
}

// runPIFOTight replays the production PIFO under buffer pressure and
// requires its full observable event stream — every drop, eviction, and
// dequeue, in order — to match the reference oracle's.
func runPIFOTight(r *Report, ctx *diffCtx, st *BackendStats) {
	res, err := replay(ctx.sc, false, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewPIFO(sched.Config{CapacityBytes: tightCapacity, OnDrop: d}), nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	oracle := ctx.oracle(tightCapacity)
	if oracle == nil {
		return
	}
	if len(res.events) != len(oracle.events) {
		r.addViolation(Violation{
			Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationDropMismatch,
			Detail: violationf("%d events, oracle %d", len(res.events), len(oracle.events)),
		})
		return
	}
	for i := range res.events {
		g, w := res.events[i], oracle.events[i]
		if g != w {
			r.addViolation(Violation{
				Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationDropMismatch,
				Detail: violationf("event %d: %c(%d,%v), oracle %c(%d,%v)",
					i, g.kind, g.id, g.cause, w.kind, w.id, w.cause),
			})
			return
		}
	}
}

// runPIFOTree replays a one-level PIFO tree — one leaf per tenant, the
// packet rank as scheduling transaction at root and leaves — which must be
// observationally identical to the flat reference PIFO (the merge of
// per-leaf sorted sequences is the global sorted sequence, with arrival
// tie-breaks preserved by the per-node sequence numbers).
func runPIFOTree(r *Report, ctx *diffCtx, st *BackendStats) {
	sc := ctx.sc
	res, err := replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		rankTx := func(p *pkt.Packet) int64 { return p.Rank }
		nameOf := make(map[pkt.TenantID]string, len(sc.Tenants))
		for _, t := range sc.Tenants {
			nameOf[t.ID] = t.Name
		}
		classify := func(p *pkt.Packet) string {
			if n, ok := nameOf[p.Tenant]; ok {
				return n
			}
			return "unknown"
		}
		tree := pifotree.NewTree(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}, rankTx, classify)
		for _, t := range sc.Tenants {
			if err := tree.AddLeaf("root", t.Name, rankTx); err != nil {
				return nil, err
			}
		}
		if err := tree.AddLeaf("root", "unknown", rankTx); err != nil {
			return nil, err
		}
		return tree, nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if !checkConservation(r, sc, st.Backend, res) {
		return
	}
	oracle := ctx.oracle(hugeCapacity)
	if oracle == nil {
		return
	}
	checkExactOrder(r, sc, st.Backend, res, oracle)
}

func runFIFO(r *Report, ctx *diffCtx, st *BackendStats) {
	res := ctx.fifo()
	if res == nil {
		return
	}
	accumulate(st, res)
	if !checkConservation(r, ctx.sc, st.Backend, res) {
		return
	}
	checkArrivalOrder(r, ctx.sc, st.Backend, res)
}

// runAIFO replays AIFO without buffer pressure: with the queue far below
// both capacity and the admission headroom, the quantile admission test
// always passes, so AIFO must behave exactly like a plain FIFO — any drop
// or reordering is a violation.
func runAIFO(r *Report, ctx *diffCtx, st *BackendStats) {
	res, err := replay(ctx.sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewAIFO(sched.AIFOConfig{Config: sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}}), nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if len(res.drops) != 0 {
		r.addViolation(Violation{
			Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationAdmission,
			Detail: violationf("AIFO dropped %d packets with no admission pressure", len(res.drops)),
		})
	}
	if !checkConservation(r, ctx.sc, st.Backend, res) {
		return
	}
	checkArrivalOrder(r, ctx.sc, st.Backend, res)
}

// runSPQueues deploys the joint policy's static queue mapping
// (BackendSPQueues) and checks the scheduler against a strict-priority
// multi-queue model rebuilt from the deployment's published ranges: every
// dequeue must come from the lowest-index backlogged queue and preserve
// FIFO order within it.
func runSPQueues(r *Report, ctx *diffCtx, st *BackendStats) {
	sc := ctx.sc
	queues := 8
	if nt := len(sc.Joint.Tiers); nt > queues {
		queues = nt
	}
	var dep *core.Deployment
	res, err := replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		var err error
		dep, err = sc.Joint.Deploy(core.BackendSPQueues, core.DeployOptions{
			Queues: queues,
			Sched:  sched.Config{CapacityBytes: hugeCapacity, OnDrop: d},
		})
		if err != nil {
			return nil, err
		}
		return dep.Scheduler, nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if !checkConservation(r, sc, st.Backend, res) {
		return
	}
	// Rebuild the rank→queue mapping from the published ranges, exactly
	// as the deployment's mapper does.
	bounds := make([]int64, len(dep.Ranges))
	for i, qr := range dep.Ranges {
		bounds[i] = qr.Hi
	}
	queueOf := func(rank int64) int {
		i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= rank })
		if i == len(bounds) {
			i = len(bounds) - 1
		}
		return i
	}
	// Model: per-queue FIFO lists, drained strict-priority. Replaying the
	// accepted arrivals and dequeues against it in lockstep.
	model := make([][]uint64, len(dep.Ranges))
	ai := 0
	for _, q := range res.dequeued {
		// Admit arrivals up to (and including) this dequeue's position:
		// arrival i precedes dequeue j iff the packet was accepted before
		// the dequeue happened. Event order gives the interleaving.
		for ai < len(res.accepted) && !queuedInModel(model, q.ID) {
			p := res.accepted[ai]
			model[queueOf(p.Rank)] = append(model[queueOf(p.Rank)], p.ID)
			ai++
		}
		qi := queueOf(q.Rank)
		// Strict priority: no lower-index queue may be backlogged.
		for i := 0; i < qi; i++ {
			if len(model[i]) > 0 {
				r.addViolation(Violation{
					Scenario: sc.Index, Backend: st.Backend, Kind: ViolationArrivalOrder,
					Detail: violationf("dequeued packet %d from queue %d while queue %d backlogged",
						q.ID, qi, i),
				})
				return
			}
		}
		if len(model[qi]) == 0 || model[qi][0] != q.ID {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: st.Backend, Kind: ViolationArrivalOrder,
				Detail: violationf("dequeued packet %d out of FIFO order within queue %d", q.ID, qi),
			})
			return
		}
		model[qi] = model[qi][1:]
	}
}

func queuedInModel(model [][]uint64, id uint64) bool {
	for _, q := range model {
		for _, v := range q {
			if v == id {
				return true
			}
		}
	}
	return false
}

// runDRR checks deficit round robin's only rank-free guarantee: packets of
// the same flow leave in arrival order.
func runDRR(r *Report, ctx *diffCtx, st *BackendStats) {
	res, err := replay(ctx.sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewDRR(sched.DRRConfig{Config: sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}}), nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if !checkConservation(r, ctx.sc, st.Backend, res) {
		return
	}
	perFlow := make(map[uint64][]uint64)
	for _, p := range res.accepted {
		perFlow[p.Flow] = append(perFlow[p.Flow], p.ID)
	}
	for _, p := range res.dequeued {
		q := perFlow[p.Flow]
		if len(q) == 0 || q[0] != p.ID {
			r.addViolation(Violation{
				Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationArrivalOrder,
				Detail: violationf("flow %d dequeued packet %d out of per-flow FIFO order", p.Flow, p.ID),
			})
			return
		}
		perFlow[p.Flow] = q[1:]
	}
}

// runSPPIFO replays the SP-PIFO approximation, holding it to its
// structural invariant — queue bounds monotone non-decreasing from the
// highest-priority queue — and to the baseline deviation bound: adapting
// queue bounds must never invert more than the rank-oblivious FIFO on the
// identical trace.
func runSPPIFO(r *Report, ctx *diffCtx, st *BackendStats) {
	var q *sched.SPPIFO
	step := func() string {
		for i := 0; i+1 < q.NumQueues(); i++ {
			if q.Bound(i) > q.Bound(i+1) {
				return violationf("bounds not monotone: q%d=%d > q%d=%d",
					i, q.Bound(i), i+1, q.Bound(i+1))
			}
		}
		return ""
	}
	res, err := replay(ctx.sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		q = sched.NewSPPIFO(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}, 8)
		return q, nil
	}, step)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if res.stepViolation != "" {
		r.addViolation(Violation{
			Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationSPPIFOBound,
			Detail: res.stepViolation,
		})
	}
	if !checkConservation(r, ctx.sc, st.Backend, res) {
		return
	}
	checkInversionBound(r, ctx, st.Backend, res)
}

// runCalendar replays the calendar queue twice: interleaved (for the
// FIFO-baseline deviation bound) and batch mode, where all enqueues
// precede all dequeues and the drain must visit buckets in non-decreasing
// index order — the calendar's structural ordering theorem.
func runCalendar(r *Report, ctx *diffCtx, st *BackendStats) {
	sc := ctx.sc
	buckets := 16
	span := sc.Joint.Output.Span() + 2 // +1 for the UnknownWorst rank
	width := (span + int64(buckets) - 1) / int64(buckets)
	if width < 1 {
		width = 1
	}
	res, err := replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewCalendar(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}, buckets, width), nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if !checkConservation(r, sc, st.Backend, res) {
		return
	}
	checkInversionBound(r, ctx, st.Backend, res)

	// Batch mode: enqueue everything, then drain. The bucket index of
	// every dequeued packet (floor(rank/width), clamped to the horizon)
	// must be non-decreasing.
	cal := sched.NewCalendar(sched.Config{CapacityBytes: hugeCapacity}, buckets, width)
	for i := range sc.Trace {
		p := sc.Trace[i] // local copy; this replay is not pooled
		cal.Enqueue(&p)
	}
	prev := -1
	for p := cal.Dequeue(); p != nil; p = cal.Dequeue() {
		b := 0
		if p.Rank > 0 {
			b = int(p.Rank / width)
			if b >= buckets {
				b = buckets - 1
			}
		}
		if b < prev {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: st.Backend, Kind: ViolationCalendarOrder,
				Detail: violationf("batch drain visited bucket %d after bucket %d (packet %d rank %d)",
					b, prev, p.ID, p.Rank),
			})
			break
		}
		prev = b
	}
}

// runBucketQ replays the FFS bucket queue the same two ways as the
// calendar: interleaved for the FIFO-baseline deviation bound, and in
// batch mode, where its approximation contract is checked exactly — the
// drain must equal the ideal order up to rank quantization. Concretely,
// the quantized index floor(rank/width) of successive dequeues must be
// non-decreasing (no clamp to the horizon: packets past it overflow and
// re-file, preserving the global quantized order), and within one
// quantized index packets must leave in arrival order (per-bucket FIFO
// chains, re-filed in arrival order on rebase).
func runBucketQ(r *Report, ctx *diffCtx, st *BackendStats) {
	sc := ctx.sc
	buckets := 128                     // exercises both FFS bitmap levels (two words + summary)
	span := sc.Joint.Output.Span() + 2 // +1 for the UnknownWorst rank
	width := (span + int64(buckets) - 1) / int64(buckets)
	if width < 1 {
		width = 1
	}
	res, err := replay(sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		return sched.NewBucketQ(sched.Config{CapacityBytes: hugeCapacity, OnDrop: d}, buckets, width), nil
	}, nil)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if !checkConservation(r, sc, st.Backend, res) {
		return
	}
	checkInversionBound(r, ctx, st.Backend, res)

	// Batch mode: enqueue everything, then drain.
	bq := sched.NewBucketQ(sched.Config{CapacityBytes: hugeCapacity}, buckets, width)
	arrival := make(map[uint64]int, len(sc.Trace))
	for i := range sc.Trace {
		p := sc.Trace[i] // local copy; this replay is not pooled
		arrival[p.ID] = i
		bq.Enqueue(&p)
	}
	prev, prevArr := -1, -1
	for p := bq.Dequeue(); p != nil; p = bq.Dequeue() {
		b := 0
		if p.Rank > 0 {
			b = int(p.Rank / width)
		}
		if b < prev {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: st.Backend, Kind: ViolationBucketQOrder,
				Detail: violationf("batch drain visited quantized index %d after %d (packet %d rank %d)",
					b, prev, p.ID, p.Rank),
			})
			break
		}
		if b > prev {
			prevArr = -1
		}
		if ai := arrival[p.ID]; ai < prevArr {
			r.addViolation(Violation{
				Scenario: sc.Index, Backend: st.Backend, Kind: ViolationBucketQOrder,
				Detail: violationf("batch drain broke FIFO within quantized index %d (packet %d arrived before its predecessor)",
					b, p.ID),
			})
			break
		} else {
			prevArr = ai
		}
		prev = b
	}
}

// runAdmission replays the combined admission+scheduling backend, holding
// it to its structural invariants: the dynamic per-queue admission bounds
// stay monotone non-decreasing from the highest-priority queue after every
// observable action, and with no buffer pressure (hugeCapacity) the
// quantile admission rule admits everything — any drop is a violation.
// As an approximation it is also held to the inversion deviation bound.
func runAdmission(r *Report, ctx *diffCtx, st *BackendStats) {
	var q *sched.Admission
	step := func() string {
		for i := 0; i+1 < q.NumQueues(); i++ {
			if q.Bound(i) > q.Bound(i+1) {
				return violationf("admission bounds not monotone: q%d=%d > q%d=%d",
					i, q.Bound(i), i+1, q.Bound(i+1))
			}
		}
		return ""
	}
	res, err := replay(ctx.sc, true, func(d sched.DropFn) (sched.Scheduler, error) {
		q = sched.NewAdmission(sched.AdmissionConfig{
			Config: sched.Config{CapacityBytes: hugeCapacity, OnDrop: d},
		})
		return q, nil
	}, step)
	if err != nil {
		ctx.err = err
		return
	}
	accumulate(st, res)
	if res.stepViolation != "" {
		r.addViolation(Violation{
			Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationAdmissionBound,
			Detail: res.stepViolation,
		})
	}
	if len(res.drops) != 0 {
		r.addViolation(Violation{
			Scenario: ctx.sc.Index, Backend: st.Backend, Kind: ViolationAdmission,
			Detail: violationf("admission backend dropped %d packets with no buffer pressure", len(res.drops)),
		})
	}
	if !checkConservation(r, ctx.sc, st.Backend, res) {
		return
	}
	checkInversionBound(r, ctx, st.Backend, res)
}

// checkInversionBound holds an approximating backend to the UPS replay
// theorem: the streaming inversion count (dequeues made while a strictly
// lower rank was still queued) never exceeds the pair-inversion count of
// the realized departure order against the ideal rank order — the same
// departures stably sorted by rank. Each streaming inversion at the
// dequeue of packet p witnesses a queued q with rank lower than p's; q
// departs after p yet precedes p in the ideal order, so (p, q) is an
// inverted pair, and distinct dequeues witness distinct pairs.
//
// This replaces the earlier FIFO-relative budget (fifo + max(16, fifo/8)
// slack), which random scenarios genuinely violated — SP-PIFO's queue-
// bound adaptation can locally backfire several-fold past the slack (see
// TestInversionBudgetRegression for pinned examples). The theorem form
// cannot flake: a breach is a bug in the scheduler or the counter, never
// an unlucky trace. The empirical "don't drift far past FIFO" guard that
// the old per-scenario budget aimed at lives on as the aggregate,
// replay-fidelity-derived ceilings checked at the end of Run.
func checkInversionBound(r *Report, ctx *diffCtx, name string, res *replayResult) {
	if res.inv == nil {
		return
	}
	pairInv := pairInversionsVsIdeal(res.dequeued)
	if int64(res.inv.Inversions) > pairInv {
		r.addViolation(Violation{
			Scenario: ctx.sc.Index, Backend: name, Kind: ViolationInversionBound,
			Detail: violationf("%d streaming inversions exceed the %d pair inversions vs ideal rank order",
				res.inv.Inversions, pairInv),
		})
	}
}

// pairInversionsVsIdeal counts UPS pair inversions of a departure order
// against its own ideal: the same packets stably sorted by rank. Stable
// means equal-rank pairs keep their realized order and are never counted.
func pairInversionsVsIdeal(deq []pkt.Packet) int64 {
	idx := make([]int, len(deq))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return deq[idx[a]].Rank < deq[idx[b]].Rank })
	// pos[i] = position of realized departure i in the ideal order; the
	// realized order read through pos is a permutation whose inversions
	// are exactly the rank-inverted pairs.
	pos := make([]int, len(deq))
	for ideal, orig := range idx {
		pos[orig] = ideal
	}
	return countInversions(pos)
}
