// Package orchestrator deploys a joint scheduling policy across a fabric
// of heterogeneous devices — the §5 "cross-device virtualization"
// direction: "we expect future research to propose mechanisms to
// orchestrate the scheduling virtualization from a network-wide
// perspective".
//
// Every device (leaf, spine, ...) may be a different hardware model. The
// orchestrator compiles the joint policy against each device's target
// description, builds the per-device deployment, and reports the
// network-wide guarantee for every requirement — the weakest link across
// the path, since one coarse device can reorder what every other device
// preserved.
package orchestrator

import (
	"fmt"
	"sort"
	"strings"

	"qvisor/internal/core"
	"qvisor/internal/sched"
)

// Device is one switch in the fabric.
type Device struct {
	// Name identifies the device ("leaf0").
	Name string
	// Role groups devices that share a hardware model ("leaf", "spine").
	Role string
	// Target describes the device's scheduler capabilities.
	Target core.Target
}

// DevicePlan is the compilation and deployment for one device.
type DevicePlan struct {
	Device Device
	// Plan grades the spec's requirements on this device.
	Plan *core.Plan
	// Backend is the deployment backend matching the target.
	Backend core.Backend
}

// FabricPlan is the network-wide result.
type FabricPlan struct {
	// Devices holds one plan per device, input order.
	Devices []DevicePlan
	// Guarantees is the fabric-wide (weakest-link) level per requirement
	// kind.
	Guarantees map[core.ReqKind]core.GuaranteeLevel
	// Feasible reports whether every device can realize the full spec.
	Feasible bool
	// Bottleneck names the device limiting each requirement kind.
	Bottleneck map[core.ReqKind]string
}

// Describe renders the fabric plan.
func (fp *FabricPlan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric: %d devices, feasible=%v\n", len(fp.Devices), fp.Feasible)
	kinds := make([]core.ReqKind, 0, len(fp.Guarantees))
	for k := range fp.Guarantees {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-20s %-12s (bottleneck: %s)\n", k, fp.Guarantees[k], fp.Bottleneck[k])
	}
	for _, dp := range fp.Devices {
		fmt.Fprintf(&b, "  device %-8s role=%-6s target=%-14s backend=%s feasible=%v\n",
			dp.Device.Name, dp.Device.Role, dp.Device.Target.Name, dp.Backend, dp.Plan.Feasible)
	}
	return b.String()
}

// Plan compiles the joint policy against every device and aggregates the
// fabric-wide guarantees.
func Plan(jp *core.JointPolicy, devices []Device) (*FabricPlan, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("orchestrator: no devices")
	}
	fp := &FabricPlan{
		Feasible:   true,
		Guarantees: make(map[core.ReqKind]core.GuaranteeLevel),
		Bottleneck: make(map[core.ReqKind]string),
	}
	seen := make(map[string]bool)
	for _, d := range devices {
		if d.Name == "" {
			return nil, fmt.Errorf("orchestrator: device with empty name")
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("orchestrator: duplicate device %q", d.Name)
		}
		seen[d.Name] = true
		plan, err := jp.CompileTo(d.Target)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: device %q: %w", d.Name, err)
		}
		fp.Devices = append(fp.Devices, DevicePlan{
			Device:  d,
			Plan:    plan,
			Backend: backendFor(d.Target),
		})
		if !plan.Feasible {
			fp.Feasible = false
		}
		// Weakest link per requirement kind.
		worst := make(map[core.ReqKind]core.GuaranteeLevel)
		for _, r := range plan.Requirements {
			if lvl, ok := worst[r.Kind]; !ok || r.Level < lvl {
				worst[r.Kind] = r.Level
			}
		}
		for kind, lvl := range worst {
			if cur, ok := fp.Guarantees[kind]; !ok || lvl < cur {
				fp.Guarantees[kind] = lvl
				fp.Bottleneck[kind] = d.Name
			}
		}
	}
	return fp, nil
}

// backendFor maps a target description to the matching deployment backend
// by capability alone (no fidelity measurements): the richest discipline
// the hardware expresses wins. PlanWithProfiles refines this choice with
// measured replay-fidelity scores.
func backendFor(t core.Target) core.Backend {
	switch {
	case t.Sorted:
		return core.BackendPIFO
	case t.Admission && t.Queues > 1:
		return core.BackendAdmission
	case t.Admission:
		return core.BackendAIFO
	case t.Queues >= 64:
		// A queue bank that deep is a software scheduler (smart NIC, DPDK
		// host), where the O(1) FFS bucket queue beats a static SP split.
		return core.BackendBucketQ
	case t.Queues > 1:
		return core.BackendSPQueues
	default:
		return core.BackendFIFO
	}
}

// PlanWithProfiles is Plan with measured replay-fidelity profiles (see
// conform.ReplayReport.Profiles): each device deploys the highest-scoring
// backend among those its target can realize, instead of backendFor's
// capability heuristic. Devices whose supported set intersects none of
// the profiled backends keep the heuristic choice, so a partial sweep
// still produces a full fabric plan.
func PlanWithProfiles(jp *core.JointPolicy, devices []Device, profiles []core.FidelityProfile) (*FabricPlan, error) {
	fp, err := Plan(jp, devices)
	if err != nil {
		return nil, err
	}
	for i := range fp.Devices {
		supported := make(map[core.Backend]bool)
		for _, b := range fp.Devices[i].Device.Target.SupportedBackends() {
			supported[b] = true
		}
		if p, ok := core.SelectBackend(profiles, func(b core.Backend) bool { return supported[b] }); ok {
			fp.Devices[i].Backend = p.Backend
		}
	}
	return fp, nil
}

// Deploy builds the concrete scheduler for one device plan, wiring the
// drop callback. Infeasible devices deploy their best effort (the partial
// spec's shape is already encoded in the joint policy's bands).
func (dp *DevicePlan) Deploy(jp *core.JointPolicy, cfg sched.Config) (sched.Scheduler, error) {
	dep, err := jp.Deploy(dp.Backend, core.DeployOptions{
		Queues: dp.Device.Target.Queues,
		Sched:  cfg,
	})
	if err != nil {
		return nil, err
	}
	return dep.Scheduler, nil
}
