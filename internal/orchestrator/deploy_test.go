package orchestrator

import (
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
)

// TestDevicePlanDeployInfeasible covers Deploy's error path: a
// strict-priority-queue device with fewer queues than the policy has
// strict tiers cannot isolate them, and the deployment must refuse rather
// than silently merge tiers.
func TestDevicePlanDeployInfeasible(t *testing.T) {
	tenants := []*core.Tenant{
		{ID: 1, Name: "a", Bounds: rank.Bounds{Lo: 0, Hi: 100}, Levels: 8},
		{ID: 2, Name: "b", Bounds: rank.Bounds{Lo: 0, Hi: 100}, Levels: 8},
		{ID: 3, Name: "c", Bounds: rank.Bounds{Lo: 0, Hi: 100}, Levels: 8},
	}
	jp, err := core.Synthesize(tenants, policy.MustParse("a >> b >> c"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dp := DevicePlan{
		Device:  Device{Name: "tiny", Target: core.Target{Name: "2q", Queues: 2}},
		Backend: core.BackendSPQueues,
	}
	if _, err := dp.Deploy(jp, sched.Config{}); err == nil {
		t.Fatal("2-queue device deployed a 3-tier policy")
	}

	// The same policy deploys fine once the queue count suffices.
	dp.Device.Target.Queues = 4
	s, err := dp.Deploy(jp, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Len() != 0 {
		t.Fatal("deployed scheduler not empty")
	}
}
