package orchestrator

import (
	"strings"
	"testing"

	"qvisor/internal/core"
	"qvisor/internal/pkt"
	"qvisor/internal/policy"
	"qvisor/internal/rank"
	"qvisor/internal/sched"
)

func twoTenantPolicy(t *testing.T) *core.JointPolicy {
	t.Helper()
	tenants := []*core.Tenant{
		{ID: 1, Name: "hi", Bounds: rank.Bounds{Lo: 0, Hi: 1000}, Levels: 32},
		{ID: 2, Name: "lo", Bounds: rank.Bounds{Lo: 0, Hi: 1000}, Levels: 32},
	}
	jp, err := core.Synthesize(tenants, policy.MustParse("hi >> lo"), core.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return jp
}

func TestFabricPlanHomogeneousPIFO(t *testing.T) {
	jp := twoTenantPolicy(t)
	devices := []Device{
		{Name: "leaf0", Role: "leaf", Target: core.TargetPIFO},
		{Name: "leaf1", Role: "leaf", Target: core.TargetPIFO},
		{Name: "spine0", Role: "spine", Target: core.TargetPIFO},
	}
	fp, err := Plan(jp, devices)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Feasible {
		t.Fatal("all-PIFO fabric must be feasible")
	}
	for kind, lvl := range fp.Guarantees {
		if lvl != core.GuaranteeExact {
			t.Errorf("%v: level %v, want exact", kind, lvl)
		}
	}
}

func TestFabricWeakestLink(t *testing.T) {
	jp := twoTenantPolicy(t)
	devices := []Device{
		{Name: "leaf0", Role: "leaf", Target: core.TargetPIFO},
		{Name: "spine0", Role: "spine", Target: core.TargetCommodity8Q},
	}
	fp, err := Plan(jp, devices)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Feasible {
		t.Fatal("both devices individually feasible")
	}
	// Intra-tenant order degrades to the commodity device's level.
	if got := fp.Guarantees[core.ReqIntraOrder]; got != core.GuaranteeApprox {
		t.Fatalf("fabric intra-order = %v, want approximate (weakest link)", got)
	}
	if fp.Bottleneck[core.ReqIntraOrder] != "spine0" {
		t.Fatalf("bottleneck = %q, want spine0", fp.Bottleneck[core.ReqIntraOrder])
	}
	// Isolation remains exact everywhere (dedicated queues suffice).
	if got := fp.Guarantees[core.ReqIsolation]; got != core.GuaranteeExact {
		t.Fatalf("fabric isolation = %v, want exact", got)
	}
}

func TestFabricInfeasibleDevice(t *testing.T) {
	jp := twoTenantPolicy(t)
	devices := []Device{
		{Name: "old0", Role: "leaf", Target: core.Target{Name: "legacy-1q", Queues: 1}},
	}
	fp, err := Plan(jp, devices)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Feasible {
		t.Fatal("1 queue for 2 tiers must make the fabric infeasible")
	}
	if fp.Devices[0].Plan.Partial == nil {
		t.Fatal("infeasible device should carry a partial-spec proposal")
	}
}

func TestPlanValidation(t *testing.T) {
	jp := twoTenantPolicy(t)
	if _, err := Plan(jp, nil); err == nil {
		t.Fatal("no devices accepted")
	}
	if _, err := Plan(jp, []Device{{Name: "", Target: core.TargetPIFO}}); err == nil {
		t.Fatal("empty device name accepted")
	}
	dup := []Device{
		{Name: "a", Target: core.TargetPIFO},
		{Name: "a", Target: core.TargetPIFO},
	}
	if _, err := Plan(jp, dup); err == nil {
		t.Fatal("duplicate device accepted")
	}
	bad := []Device{{Name: "x", Target: core.Target{Name: "none"}}}
	if _, err := Plan(jp, bad); err == nil {
		t.Fatal("resourceless target accepted")
	}
}

func TestBackendMapping(t *testing.T) {
	cases := []struct {
		target core.Target
		want   core.Backend
	}{
		{core.TargetPIFO, core.BackendPIFO},
		{core.TargetCommodity8Q, core.BackendSPQueues},
		{core.Target{Name: "aifo", Queues: 1, Admission: true}, core.BackendAIFO},
		{core.Target{Name: "dumb", Queues: 1}, core.BackendFIFO},
	}
	for _, c := range cases {
		if got := backendFor(c.target); got != c.want {
			t.Errorf("backendFor(%s) = %v, want %v", c.target.Name, got, c.want)
		}
	}
}

func TestDevicePlanDeploy(t *testing.T) {
	jp := twoTenantPolicy(t)
	fp, err := Plan(jp, []Device{
		{Name: "leaf0", Role: "leaf", Target: core.TargetCommodity8Q},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := fp.Devices[0].Deploy(jp, sched.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := &pkt.Packet{Rank: 3, Size: 100}
	if !s.Enqueue(p) || s.Dequeue() == nil {
		t.Fatal("deployed scheduler does not pass packets")
	}
}

func TestDescribe(t *testing.T) {
	jp := twoTenantPolicy(t)
	fp, err := Plan(jp, []Device{
		{Name: "leaf0", Role: "leaf", Target: core.TargetPIFO},
		{Name: "spine0", Role: "spine", Target: core.TargetCommodity8Q},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := fp.Describe()
	for _, want := range []string{"leaf0", "spine0", "bottleneck", "intra-tenant order"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestPlanWithProfiles(t *testing.T) {
	jp := twoTenantPolicy(t)
	// Measured-fidelity profiles: admission beats the queue-bank family,
	// PIFO beats everything.
	profiles := []core.FidelityProfile{
		{Backend: core.BackendPIFO, ExactReplayRate: 1},
		{Backend: core.BackendSPQueues, InversionsPerPacket: 5.2, DisplacementPerPacket: 8.5, DropDivergenceRate: 0.18},
		{Backend: core.BackendSPPIFO, InversionsPerPacket: 8.8, DisplacementPerPacket: 13.9, DropDivergenceRate: 0.47},
		{Backend: core.BackendAdmission, InversionsPerPacket: 4.1, DisplacementPerPacket: 6.0, DropDivergenceRate: 0.17},
	}
	devices := []Device{
		{Name: "leaf0", Role: "leaf", Target: core.TargetPIFO},
		{Name: "spine0", Role: "spine", Target: core.TargetCommodity8Q},
		{Name: "edge0", Role: "edge", Target: core.Target{Name: "adm-8q", Queues: 8, Admission: true}},
	}
	fp, err := PlanWithProfiles(jp, devices, profiles)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]core.Backend{
		"leaf0":  core.BackendPIFO,      // sorted queue realizes the ideal
		"spine0": core.BackendSPQueues,  // best profile an 8Q bank supports
		"edge0":  core.BackendAdmission, // admission stage unlocks the best profile
	}
	for _, dp := range fp.Devices {
		if dp.Backend != want[dp.Device.Name] {
			t.Errorf("%s: backend %v, want %v", dp.Device.Name, dp.Backend, want[dp.Device.Name])
		}
	}
	// With no feasible profile for a device, the capability heuristic
	// stands.
	fp, err = PlanWithProfiles(jp, devices, []core.FidelityProfile{
		{Backend: core.BackendCalendar, InversionsPerPacket: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dp := range fp.Devices {
		if dp.Device.Name == "leaf0" && dp.Backend != core.BackendPIFO {
			t.Errorf("leaf0 fell back to %v, want the pifo heuristic", dp.Backend)
		}
	}
	if _, err := PlanWithProfiles(jp, nil, profiles); err == nil {
		t.Fatal("device validation bypassed")
	}
}
