// Package trace records packet-level event traces from the simulator as
// JSON lines, for debugging scheduling behaviour and feeding external
// analysis (each line is one event; streams compress and grep well).
package trace

import (
	"encoding/json"
	"io"
	"sync"

	"qvisor/internal/pkt"
	"qvisor/internal/sim"
)

// Event is one recorded packet event.
type Event struct {
	// TimeNs is the simulated time in nanoseconds.
	TimeNs int64 `json:"t"`
	// Kind is the event type: "emit", "deliver", "drop".
	Kind string `json:"kind"`
	// Where locates the event ("host3", "leaf0→spine1").
	Where string `json:"where,omitempty"`
	// Packet identity and labels.
	ID      uint64 `json:"id"`
	Flow    uint64 `json:"flow"`
	Tenant  uint16 `json:"tenant"`
	Rank    int64  `json:"rank"`
	Size    int    `json:"size"`
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	PktKind string `json:"pkt_kind"`
	Retx    bool   `json:"retx,omitempty"`
}

// Options tune what gets recorded.
type Options struct {
	// FlowSample records only flows whose ID satisfies
	// flow % FlowSample == 0. Zero or one records every flow.
	FlowSample uint64
	// Kinds restricts recording to the listed event kinds (nil = all).
	Kinds []string
}

// Recorder writes events as JSON lines. Safe for use from a single
// simulation goroutine; the mutex only guards against accidental misuse.
type Recorder struct {
	mu    sync.Mutex
	enc   *json.Encoder
	opts  Options
	kinds map[string]bool
	count uint64
}

// NewRecorder writes events to w.
func NewRecorder(w io.Writer, opts Options) *Recorder {
	r := &Recorder{enc: json.NewEncoder(w), opts: opts}
	if opts.Kinds != nil {
		r.kinds = make(map[string]bool, len(opts.Kinds))
		for _, k := range opts.Kinds {
			r.kinds[k] = true
		}
	}
	return r
}

// Count returns the number of events written.
func (r *Recorder) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Record writes one event if it passes the filters.
func (r *Recorder) Record(now sim.Time, kind, where string, p *pkt.Packet) {
	if r == nil {
		return
	}
	if s := r.opts.FlowSample; s > 1 && p.Flow%s != 0 {
		return
	}
	if r.kinds != nil && !r.kinds[kind] {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = r.enc.Encode(Event{
		TimeNs:  int64(now),
		Kind:    kind,
		Where:   where,
		ID:      p.ID,
		Flow:    p.Flow,
		Tenant:  uint16(p.Tenant),
		Rank:    p.Rank,
		Size:    p.Size,
		Src:     p.Src,
		Dst:     p.Dst,
		PktKind: p.Kind.String(),
		Retx:    p.Retx,
	})
	r.count++
}
