// Package trace is the packet-lifecycle flight recorder: it captures
// per-packet events across the whole pipeline — host emit → port queue →
// switch arrival → rank transform → scheduler enqueue/dequeue → deliver
// or drop — into a fixed-size ring buffer and/or a JSON-lines stream,
// with flow-consistent sampling and per-tenant filters.
//
// The recorder is designed for an always-on deployment: when a packet's
// flow is not sampled, Record costs one modulo and returns without
// allocating, so the data plane's zero-allocation budget holds with a
// recorder attached. Ring recording is also allocation-free (events are
// value copies into a preallocated ring); only the optional JSONL stream
// pays encoding costs.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"qvisor/internal/pkt"
	"qvisor/internal/sim"
)

// Lifecycle event kinds, in pipeline order. A packet's span is the
// ordered sequence of its events: one emit, then per switch hop an
// arrive (and, at the first switch with QVISOR deployed, a transform),
// per port an enqueue and a dequeue, and finally one deliver or one
// drop. Drops carry a cause (sched.DropCause names, plus "fault" for
// network-level losses); packets with neither deliver nor drop when the
// trace ends are in-flight losses, attributed by the analyzers.
const (
	KindEmit      = "emit"      // host handed the packet to its uplink
	KindArrive    = "arrive"    // packet reached a switch ingress
	KindTransform = "transform" // pre-processor rewrote the rank (PreRank → Rank)
	KindEnqueue   = "enqueue"   // port scheduler accepted the packet
	KindDequeue   = "dequeue"   // port scheduler released it for transmission
	KindDeliver   = "deliver"   // destination host consumed the packet
	KindDrop      = "drop"      // packet left the pipeline; Cause says why
)

// CauseInFlight is the analyzer-assigned drop cause for packets that
// were emitted but neither delivered nor dropped by the time the trace
// ended. No Record call ever reports it.
const CauseInFlight = "in-flight-loss"

// Event is one recorded packet event.
type Event struct {
	// TimeNs is the simulated time in nanoseconds.
	TimeNs int64 `json:"t"`
	// Kind is the event type (see the Kind* constants).
	Kind string `json:"kind"`
	// Where locates the event ("host3", "leaf0→spine1").
	Where string `json:"where,omitempty"`
	// Packet identity and labels.
	ID      uint64 `json:"id"`
	Flow    uint64 `json:"flow"`
	Tenant  uint16 `json:"tenant"`
	Rank    int64  `json:"rank"`
	Size    int    `json:"size"`
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	PktKind string `json:"pkt_kind"`
	Retx    bool   `json:"retx,omitempty"`
	// Cause classifies drop events ("overflow", "evicted", "admission",
	// "fault"); empty on every other kind.
	Cause string `json:"cause,omitempty"`
	// PreRank is the rank before a transform event rewrote it (Rank
	// holds the post-transform rank). Zero on every other kind.
	PreRank int64 `json:"pre_rank,omitempty"`
	// Epoch is the policy generation the packet is pinned to, when the
	// sim runs with an epoch store (zero otherwise).
	Epoch uint64 `json:"epoch,omitempty"`
	// Shard is the simulation shard that recorded the event (zero in a
	// single-threaded run). Merged sharded traces sort by (TimeNs, Shard)
	// so same-nanosecond events keep a stable global order.
	Shard int `json:"shard,omitempty"`
}

// Options tune what gets recorded.
type Options struct {
	// FlowSample records only flows whose ID satisfies
	// flow % FlowSample == 0 — flow-consistent 1-in-N sampling: every
	// event of a sampled flow is recorded, no event of an unsampled one.
	// Zero or one records every flow.
	FlowSample uint64
	// Kinds restricts recording to the listed event kinds (nil = all).
	Kinds []string
	// Tenants restricts recording to the listed tenants (nil = all).
	Tenants []pkt.TenantID
	// RingSize is the capacity of the in-memory event ring. Recording
	// wraps, keeping the most recent RingSize events. Zero disables the
	// ring for stream recorders and means DefaultRingSize for
	// NewFlightRecorder.
	RingSize int
	// Shard is stamped on every event this recorder commits — the sharded
	// simulator gives each shard a private recorder (same filters, its
	// own Shard) and merges the rings into the parent after the run.
	Shard int
}

// DefaultRingSize is the flight-recorder ring capacity when Options
// leaves RingSize zero: 64Ki events, ~10 MB resident.
const DefaultRingSize = 1 << 16

// Recorder captures events into an optional fixed-size ring and an
// optional JSON-lines stream. All methods are nil-safe no-ops. Safe for
// use from a single simulation goroutine plus concurrent Snapshot
// readers (the control-plane trace endpoint).
type Recorder struct {
	opts    Options
	kinds   map[string]bool
	tenants map[pkt.TenantID]bool

	mu   sync.Mutex
	enc  *json.Encoder
	ring []Event
	seq  uint64 // total events recorded; ring cursor and snapshot ETag
}

// NewRecorder writes events to w as JSON lines. A ring is kept as well
// when opts.RingSize > 0.
func NewRecorder(w io.Writer, opts Options) *Recorder {
	r := newRecorder(opts)
	r.enc = json.NewEncoder(w)
	return r
}

// NewFlightRecorder records into a fixed-size ring only (no stream):
// the always-on, allocation-free configuration served by GET /v1/trace.
func NewFlightRecorder(opts Options) *Recorder {
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	return newRecorder(opts)
}

func newRecorder(opts Options) *Recorder {
	r := &Recorder{opts: opts}
	if opts.Kinds != nil {
		r.kinds = make(map[string]bool, len(opts.Kinds))
		for _, k := range opts.Kinds {
			r.kinds[k] = true
		}
	}
	if opts.Tenants != nil {
		r.tenants = make(map[pkt.TenantID]bool, len(opts.Tenants))
		for _, t := range opts.Tenants {
			r.tenants[t] = true
		}
	}
	if opts.RingSize > 0 {
		r.ring = make([]Event, opts.RingSize)
	}
	return r
}

// Options returns the recorder's configuration — the sharded simulator
// reads it to build per-shard recorders with matching filters.
func (r *Recorder) Options() Options {
	if r == nil {
		return Options{}
	}
	return r.opts
}

// Count returns the number of events recorded (not the number still in
// the ring; the ring keeps the most recent RingSize of them).
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// sampled reports whether p's events pass the flow and tenant filters.
func (r *Recorder) sampled(p *pkt.Packet) bool {
	if s := r.opts.FlowSample; s > 1 && p.Flow%s != 0 {
		return false
	}
	if r.tenants != nil && !r.tenants[p.Tenant] {
		return false
	}
	return true
}

// Record writes one event if it passes the filters.
func (r *Recorder) Record(now sim.Time, kind, where string, p *pkt.Packet) {
	if r == nil || !r.sampled(p) {
		return
	}
	if r.kinds != nil && !r.kinds[kind] {
		return
	}
	r.commit(eventOf(now, kind, where, p))
}

// RecordDrop writes a drop event carrying its cause (a sched.DropCause
// name, or "fault" for network-level losses).
func (r *Recorder) RecordDrop(now sim.Time, where string, p *pkt.Packet, cause string) {
	if r == nil || !r.sampled(p) {
		return
	}
	if r.kinds != nil && !r.kinds[KindDrop] {
		return
	}
	e := eventOf(now, KindDrop, where, p)
	e.Cause = cause
	r.commit(e)
}

// RecordTransform writes a transform event: preRank is the rank before
// the pre-processor ran; p.Rank is the rewritten rank.
func (r *Recorder) RecordTransform(now sim.Time, where string, p *pkt.Packet, preRank int64) {
	if r == nil || !r.sampled(p) {
		return
	}
	if r.kinds != nil && !r.kinds[KindTransform] {
		return
	}
	e := eventOf(now, KindTransform, where, p)
	e.PreRank = preRank
	r.commit(e)
}

func eventOf(now sim.Time, kind, where string, p *pkt.Packet) Event {
	return Event{
		TimeNs:  int64(now),
		Kind:    kind,
		Where:   where,
		ID:      p.ID,
		Flow:    p.Flow,
		Tenant:  uint16(p.Tenant),
		Rank:    p.Rank,
		Size:    p.Size,
		Src:     p.Src,
		Dst:     p.Dst,
		PktKind: p.Kind.String(),
		Retx:    p.Retx,
		Epoch:   p.Epoch,
	}
}

func (r *Recorder) commit(e Event) {
	e.Shard = r.opts.Shard
	r.mu.Lock()
	defer r.mu.Unlock()
	r.put(e)
}

func (r *Recorder) put(e Event) {
	if r.ring != nil {
		r.ring[r.seq%uint64(len(r.ring))] = e
	}
	if r.enc != nil {
		_ = r.enc.Encode(e)
	}
	r.seq++
}

// Append commits pre-built events verbatim: no filtering, and the events
// keep the Shard they already carry. The sharded simulator uses it to
// merge per-shard rings (sorted by time, then shard) into the parent
// recorder after a run.
func (r *Recorder) Append(events []Event) {
	if r == nil || len(events) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range events {
		r.put(e)
	}
}

// Filter selects events from a ring snapshot.
type Filter struct {
	// Tenant keeps only this tenant's events when >= 0; negative keeps
	// all tenants.
	Tenant int
	// Kinds keeps only the listed kinds (nil = all).
	Kinds []string
	// Limit keeps only the most recent Limit matching events when > 0.
	Limit int
}

// AllEvents matches every event in the ring.
var AllEvents = Filter{Tenant: -1}

// Snapshot copies the ring's events, oldest first, applying the filter.
// The returned sequence number counts all events ever recorded — it
// advances on every Record, so equal sequence numbers imply identical
// snapshots (the control plane uses it as an ETag). A recorder without
// a ring returns no events.
func (r *Recorder) Snapshot(f Filter) (events []Event, seq uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ring == nil {
		return nil, r.seq
	}
	n := uint64(len(r.ring))
	start := uint64(0)
	count := r.seq
	if count > n {
		start = r.seq - n
		count = n
	}
	for i := uint64(0); i < count; i++ {
		e := r.ring[(start+i)%n]
		if f.Tenant >= 0 && int(e.Tenant) != f.Tenant {
			continue
		}
		if f.Kinds != nil && !containsKind(f.Kinds, e.Kind) {
			continue
		}
		events = append(events, e)
	}
	if f.Limit > 0 && len(events) > f.Limit {
		events = events[len(events)-f.Limit:]
	}
	return events, r.seq
}

func containsKind(kinds []string, k string) bool {
	for _, v := range kinds {
		if v == k {
			return true
		}
	}
	return false
}

// ReadEvents parses a JSON-lines trace into memory. Malformed lines are
// an error.
func ReadEvents(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", len(events)+1, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
