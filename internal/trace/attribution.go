package trace

import (
	"fmt"
	"io"
	"sort"

	"qvisor/internal/sim"
)

// Latency attribution: given a packet's full lifecycle span, every
// nanosecond between emit and deliver belongs to exactly one stage:
//
//   - queueing: enqueue → dequeue, summed over every port on the path
//   - transform: switch arrival → pre-processor completion (zero in the
//     simulator, where the rank rewrite is instantaneous, but attributed
//     structurally so hardware traces break down the same way)
//   - transmission: dequeue → next switch arrival or final delivery —
//     serialization plus propagation
//
// Dropped packets contribute to the per-cause drop counts instead;
// packets still in flight when the trace ends count as CauseInFlight.

// Dist summarizes a latency distribution.
type Dist struct {
	Mean, P50, P99, P999 sim.Time
}

func distOf(v []sim.Time) Dist {
	if len(v) == 0 {
		return Dist{}
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	var sum float64
	for _, x := range v {
		sum += float64(x)
	}
	return Dist{
		Mean: sim.Time(sum / float64(len(v))),
		P50:  v[len(v)/2],
		P99:  v[(len(v)*99)/100],
		P999: v[(len(v)*999)/1000],
	}
}

// HopAttribution is the mean stage breakdown at one hop position along
// the path (hop 0 = the sending host's uplink port).
type HopAttribution struct {
	Hop          int
	Packets      int
	Queueing     Dist
	Transmission Dist
}

// TenantAttribution breaks one tenant's sojourn time into pipeline
// stages.
type TenantAttribution struct {
	// Tenant is the tenant label.
	Tenant uint16
	// Packets counts delivered packets with a complete recorded span.
	Packets int
	// Sojourn is end-to-end emit → deliver.
	Sojourn Dist
	// Queueing, Transform, Transmission are the per-packet stage totals
	// (each packet's stages sum to its sojourn).
	Queueing, Transform, Transmission Dist
	// Hops is the per-hop breakdown, indexed by hop position.
	Hops []HopAttribution
	// Drops counts dropped packets by cause, including CauseInFlight.
	Drops map[string]int
}

// Attribution is the result of attributing a trace.
type Attribution struct {
	// Events counts events consumed.
	Events int
	// Tenants holds per-tenant attributions, sorted by tenant label.
	Tenants []TenantAttribution
}

// pktSpan accumulates one packet's stage times while its events stream
// past.
type pktSpan struct {
	tenant  uint16
	emit    int64
	lastEnq int64
	lastDeq int64
	lastArr int64
	queue   int64
	tx      int64
	xform   int64
	hopQ    []sim.Time // per-hop queueing
	hopT    []sim.Time // per-hop transmission
	bad     bool       // span incomplete (ring wrapped mid-packet)
}

// Attribute computes the per-tenant latency attribution of an event
// list. Events must be in record order (the order the simulator emitted
// them — ring snapshots and JSONL traces both preserve it). Packets
// whose span is incomplete (the ring wrapped over their early events)
// are skipped.
func Attribute(events []Event) *Attribution {
	spans := make(map[uint64]*pktSpan)
	type acc struct {
		sojourn, queue, xform, tx []sim.Time
		hops                      []HopAttribution
		hopQ, hopT                [][]sim.Time
		drops                     map[string]int
	}
	tenants := make(map[uint16]*acc)
	get := func(t uint16) *acc {
		a, ok := tenants[t]
		if !ok {
			a = &acc{drops: make(map[string]int)}
			tenants[t] = a
		}
		return a
	}

	at := &Attribution{}
	for i := range events {
		e := &events[i]
		at.Events++
		switch e.Kind {
		case KindEmit:
			spans[e.ID] = &pktSpan{
				tenant:  e.Tenant,
				emit:    e.TimeNs,
				lastEnq: -1, lastDeq: -1, lastArr: -1,
			}
		case KindArrive:
			s := spans[e.ID]
			if s == nil {
				continue
			}
			if s.lastDeq >= 0 {
				s.tx += e.TimeNs - s.lastDeq
				s.hopT = append(s.hopT, sim.Time(e.TimeNs-s.lastDeq))
				s.lastDeq = -1
			} else {
				s.bad = true
			}
			s.lastArr = e.TimeNs
		case KindTransform:
			s := spans[e.ID]
			if s == nil {
				continue
			}
			if s.lastArr >= 0 {
				s.xform += e.TimeNs - s.lastArr
			}
			s.lastArr = e.TimeNs
		case KindEnqueue:
			s := spans[e.ID]
			if s == nil {
				continue
			}
			s.lastEnq = e.TimeNs
		case KindDequeue:
			s := spans[e.ID]
			if s == nil {
				continue
			}
			if s.lastEnq >= 0 {
				s.queue += e.TimeNs - s.lastEnq
				s.hopQ = append(s.hopQ, sim.Time(e.TimeNs-s.lastEnq))
				s.lastEnq = -1
			} else {
				s.bad = true
			}
			s.lastDeq = e.TimeNs
		case KindDeliver:
			s := spans[e.ID]
			if s == nil {
				continue
			}
			delete(spans, e.ID)
			if s.lastDeq >= 0 {
				s.tx += e.TimeNs - s.lastDeq
				s.hopT = append(s.hopT, sim.Time(e.TimeNs-s.lastDeq))
			} else {
				s.bad = true
			}
			if s.bad || len(s.hopQ) != len(s.hopT) {
				continue
			}
			a := get(s.tenant)
			a.sojourn = append(a.sojourn, sim.Time(e.TimeNs-s.emit))
			a.queue = append(a.queue, sim.Time(s.queue))
			a.xform = append(a.xform, sim.Time(s.xform))
			a.tx = append(a.tx, sim.Time(s.tx))
			for h := range s.hopQ {
				for len(a.hopQ) <= h {
					a.hopQ = append(a.hopQ, nil)
					a.hopT = append(a.hopT, nil)
				}
				a.hopQ[h] = append(a.hopQ[h], s.hopQ[h])
				a.hopT[h] = append(a.hopT[h], s.hopT[h])
			}
		case KindDrop:
			s := spans[e.ID]
			if s == nil {
				continue
			}
			delete(spans, e.ID)
			cause := e.Cause
			if cause == "" {
				cause = "unknown"
			}
			get(s.tenant).drops[cause]++
		}
	}
	// Packets still in flight when the trace ended.
	for _, s := range spans {
		get(s.tenant).drops[CauseInFlight]++
	}

	ids := make([]uint16, 0, len(tenants))
	for t := range tenants {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, t := range ids {
		a := tenants[t]
		ta := TenantAttribution{
			Tenant:       t,
			Packets:      len(a.sojourn),
			Sojourn:      distOf(a.sojourn),
			Queueing:     distOf(a.queue),
			Transform:    distOf(a.xform),
			Transmission: distOf(a.tx),
			Drops:        a.drops,
		}
		for h := range a.hopQ {
			ta.Hops = append(ta.Hops, HopAttribution{
				Hop:          h,
				Packets:      len(a.hopQ[h]),
				Queueing:     distOf(a.hopQ[h]),
				Transmission: distOf(a.hopT[h]),
			})
		}
		at.Tenants = append(at.Tenants, ta)
	}
	return at
}

// WriteReport renders the attribution as tables.
func (at *Attribution) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "%d events\n", at.Events)
	fmt.Fprintf(w, "latency attribution (per delivered packet):\n")
	fmt.Fprintf(w, "tenant  packets  stage         mean         p50          p99          p99.9\n")
	for _, t := range at.Tenants {
		rows := []struct {
			name string
			d    Dist
		}{
			{"sojourn", t.Sojourn},
			{"queueing", t.Queueing},
			{"transform", t.Transform},
			{"transmission", t.Transmission},
		}
		for i, r := range rows {
			label := fmt.Sprintf("%-7d %-8d", t.Tenant, t.Packets)
			if i > 0 {
				label = fmt.Sprintf("%-7s %-8s", "", "")
			}
			fmt.Fprintf(w, "%s %-13s %-12v %-12v %-12v %-12v\n",
				label, r.name, r.d.Mean, r.d.P50, r.d.P99, r.d.P999)
		}
	}
	anyHops := false
	for _, t := range at.Tenants {
		if len(t.Hops) > 0 {
			anyHops = true
		}
	}
	if anyHops {
		fmt.Fprintf(w, "\nper-hop breakdown (hop 0 = host uplink):\n")
		fmt.Fprintf(w, "tenant  hop  packets  queueing-mean  queueing-p99  tx-mean\n")
		for _, t := range at.Tenants {
			for _, h := range t.Hops {
				fmt.Fprintf(w, "%-7d %-4d %-8d %-14v %-13v %-12v\n",
					t.Tenant, h.Hop, h.Packets, h.Queueing.Mean, h.Queueing.P99, h.Transmission.Mean)
			}
		}
	}
	anyDrops := false
	for _, t := range at.Tenants {
		if len(t.Drops) > 0 {
			anyDrops = true
		}
	}
	if anyDrops {
		fmt.Fprintf(w, "\ndrop causes:\n")
		fmt.Fprintf(w, "tenant  cause            count\n")
		for _, t := range at.Tenants {
			causes := make([]string, 0, len(t.Drops))
			for c := range t.Drops {
				causes = append(causes, c)
			}
			sort.Strings(causes)
			for _, c := range causes {
				fmt.Fprintf(w, "%-7d %-16s %d\n", t.Tenant, c, t.Drops[c])
			}
		}
	}
}
