package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run %s -update` to create it)", err, t.Name())
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file %s:\n--- got\n%s--- want\n%s", t.Name(), path, got, want)
	}
}

// goldenEvents is a small deterministic lifecycle covering every event
// kind and every analyzer edge: a fully traced two-hop delivery with a
// rank transform, a delivered packet on a second tenant, an evicted
// packet, an overflow drop, and an in-flight loss.
func goldenEvents() []Event {
	rec := NewFlightRecorder(Options{RingSize: 64})
	us := func(n int64) sim.Time { return sim.Time(n * 1000) }

	// Packet 1 (tenant 1): host0 → leaf0 → host2, rank 7 → 21 at leaf0.
	p1 := &pkt.Packet{ID: 1, Flow: 10, Tenant: 1, Rank: 7, Size: 1500, Src: 0, Dst: 2, Kind: pkt.Data}
	rec.Record(us(1), KindEmit, "host0", p1)
	rec.Record(us(1), KindEnqueue, "host0→leaf0", p1)
	rec.Record(us(3), KindDequeue, "host0→leaf0", p1)
	rec.Record(us(4), KindArrive, "leaf0", p1)
	p1.Rank = 21
	rec.RecordTransform(us(4), "leaf0", p1, 7)
	rec.Record(us(4), KindEnqueue, "leaf0→host2", p1)
	rec.Record(us(9), KindDequeue, "leaf0→host2", p1)
	rec.Record(us(10), KindDeliver, "host2", p1)

	// Packet 2 (tenant 2): delivered after one hop.
	p2 := &pkt.Packet{ID: 2, Flow: 20, Tenant: 2, Rank: 5, Size: 400, Src: 1, Dst: 3, Kind: pkt.Datagram}
	rec.Record(us(2), KindEmit, "host1", p2)
	rec.Record(us(2), KindEnqueue, "host1→leaf0", p2)
	rec.Record(us(6), KindDequeue, "host1→leaf0", p2)
	rec.Record(us(7), KindArrive, "leaf0", p2)
	rec.Record(us(7), KindEnqueue, "leaf0→host3", p2)
	rec.Record(us(8), KindDequeue, "leaf0→host3", p2)
	rec.Record(us(9), KindDeliver, "host3", p2)

	// Packet 3 (tenant 2): evicted from the leaf queue.
	p3 := &pkt.Packet{ID: 3, Flow: 20, Tenant: 2, Rank: 90, Size: 400, Src: 1, Dst: 3, Kind: pkt.Datagram}
	rec.Record(us(3), KindEmit, "host1", p3)
	rec.Record(us(3), KindEnqueue, "host1→leaf0", p3)
	rec.RecordDrop(us(5), "host1→leaf0", p3, "evicted")

	// Packet 4 (tenant 1): refused outright for lack of buffer space.
	p4 := &pkt.Packet{ID: 4, Flow: 10, Tenant: 1, Rank: 50, Size: 1500, Src: 0, Dst: 2, Kind: pkt.Data}
	rec.Record(us(5), KindEmit, "host0", p4)
	rec.RecordDrop(us(5), "host0→leaf0", p4, "overflow")

	// Packet 5 (tenant 1): emitted, never resolved — an in-flight loss.
	p5 := &pkt.Packet{ID: 5, Flow: 10, Tenant: 1, Rank: 8, Size: 1500, Src: 0, Dst: 2, Kind: pkt.Data}
	rec.Record(us(6), KindEmit, "host0", p5)

	events, _ := rec.Snapshot(AllEvents)
	return events
}

// TestPerfettoGolden pins the Chrome trace-event JSON rendering: queue
// and tx duration spans per hop, instants for emit/transform/deliver/
// drop, and the pid/tid metadata that names tenants and flows in the
// Perfetto UI.
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "perfetto", buf.String())
}

// TestAttributionGolden pins the latency-attribution report: per-stage
// distributions (queueing vs. transform vs. transmission), the per-hop
// breakdown, and the drop-cause table including the analyzer-assigned
// in-flight loss.
func TestAttributionGolden(t *testing.T) {
	var buf bytes.Buffer
	Attribute(goldenEvents()).WriteReport(&buf)
	checkGolden(t, "attribution", buf.String())
}

// TestAttributionNumbers spot-checks the arithmetic behind the golden
// file: packet 1 queues 2µs+5µs and spends 1µs+1µs on the wire.
func TestAttributionNumbers(t *testing.T) {
	at := Attribute(goldenEvents())
	var t1 *TenantAttribution
	for i := range at.Tenants {
		if at.Tenants[i].Tenant == 1 {
			t1 = &at.Tenants[i]
		}
	}
	if t1 == nil {
		t.Fatal("tenant 1 missing")
	}
	if t1.Packets != 1 {
		t.Fatalf("tenant 1 delivered packets = %d, want 1", t1.Packets)
	}
	if want := 7 * sim.Microsecond; t1.Queueing.Mean != want {
		t.Fatalf("queueing mean = %v, want %v", t1.Queueing.Mean, want)
	}
	if want := 2 * sim.Microsecond; t1.Transmission.Mean != want {
		t.Fatalf("transmission mean = %v, want %v", t1.Transmission.Mean, want)
	}
	if want := 9 * sim.Microsecond; t1.Sojourn.Mean != want {
		t.Fatalf("sojourn mean = %v, want %v", t1.Sojourn.Mean, want)
	}
	if t1.Drops["overflow"] != 1 || t1.Drops[CauseInFlight] != 1 {
		t.Fatalf("tenant 1 drops: %+v", t1.Drops)
	}
	for _, ta := range at.Tenants {
		if ta.Tenant == 2 && ta.Drops["evicted"] != 1 {
			t.Fatalf("tenant 2 drops: %+v", ta.Drops)
		}
	}
}
