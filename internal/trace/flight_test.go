package trace

import (
	"bytes"
	"testing"

	"qvisor/internal/pkt"
	"qvisor/internal/sim"
)

func TestRingSnapshotWraps(t *testing.T) {
	r := NewFlightRecorder(Options{RingSize: 4})
	for i := 0; i < 6; i++ {
		r.Record(sim.Time(i), KindEmit, "host0", &pkt.Packet{ID: uint64(i)})
	}
	events, seq := r.Snapshot(AllEvents)
	if seq != 6 {
		t.Fatalf("seq = %d, want 6", seq)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want ring size 4", len(events))
	}
	for i, e := range events {
		if want := uint64(i + 2); e.ID != want { // oldest two overwritten
			t.Fatalf("event %d: id = %d, want %d", i, e.ID, want)
		}
	}
}

func TestSnapshotFilters(t *testing.T) {
	r := NewFlightRecorder(Options{RingSize: 16})
	r.Record(1, KindEmit, "host0", &pkt.Packet{ID: 1, Tenant: 1})
	r.Record(2, KindDeliver, "host1", &pkt.Packet{ID: 1, Tenant: 1})
	r.Record(3, KindEmit, "host0", &pkt.Packet{ID: 2, Tenant: 2})
	r.RecordDrop(4, "leaf0", &pkt.Packet{ID: 2, Tenant: 2}, "overflow")

	if ev, _ := r.Snapshot(Filter{Tenant: 2}); len(ev) != 2 {
		t.Fatalf("tenant filter kept %d events, want 2", len(ev))
	}
	if ev, _ := r.Snapshot(Filter{Tenant: -1, Kinds: []string{KindDrop}}); len(ev) != 1 || ev[0].Cause != "overflow" {
		t.Fatalf("kind filter: %+v", ev)
	}
	ev, _ := r.Snapshot(Filter{Tenant: -1, Limit: 2})
	if len(ev) != 2 || ev[0].ID != 2 || ev[1].Kind != KindDrop {
		t.Fatalf("limit filter kept wrong tail: %+v", ev)
	}
	// Equal sequence numbers must imply identical snapshots (the ETag
	// contract): nothing recorded between the two calls.
	_, s1 := r.Snapshot(AllEvents)
	_, s2 := r.Snapshot(AllEvents)
	if s1 != s2 || s1 != 4 {
		t.Fatalf("seq unstable without writes: %d, %d", s1, s2)
	}
}

func TestRecordDropAndTransformFields(t *testing.T) {
	r := NewFlightRecorder(Options{RingSize: 8})
	p := &pkt.Packet{ID: 9, Flow: 3, Tenant: 2, Rank: 21}
	r.RecordTransform(100, "leaf0", p, 7)
	r.RecordDrop(200, "leaf0", p, "admission")
	ev, _ := r.Snapshot(AllEvents)
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Kind != KindTransform || ev[0].PreRank != 7 || ev[0].Rank != 21 {
		t.Fatalf("transform event: %+v", ev[0])
	}
	if ev[1].Kind != KindDrop || ev[1].Cause != "admission" {
		t.Fatalf("drop event: %+v", ev[1])
	}
}

func TestTenantOptionFilter(t *testing.T) {
	r := NewFlightRecorder(Options{Tenants: []pkt.TenantID{2}, RingSize: 8})
	r.Record(1, KindEmit, "", &pkt.Packet{Tenant: 1})
	r.Record(2, KindEmit, "", &pkt.Packet{Tenant: 2})
	if n := r.Count(); n != 1 {
		t.Fatalf("recorded %d events, want tenant-2 only", n)
	}
}

func TestStreamRecorderKeepsRingToo(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, Options{RingSize: 8})
	r.Record(1, KindEmit, "host0", &pkt.Packet{ID: 1})
	ev, seq := r.Snapshot(AllEvents)
	if len(ev) != 1 || seq != 1 {
		t.Fatalf("ring missing alongside stream: %d events, seq %d", len(ev), seq)
	}
	if buf.Len() == 0 {
		t.Fatal("stream not written")
	}
	// A pure stream recorder has no ring; Snapshot still reports seq.
	r2 := NewRecorder(&buf, Options{})
	r2.Record(1, KindEmit, "", &pkt.Packet{})
	if ev, seq := r2.Snapshot(AllEvents); ev != nil || seq != 1 {
		t.Fatalf("ringless snapshot: %v, %d", ev, seq)
	}
}

// TestAllocBudgetRecorder pins the recorder's hot-path allocation budget:
// an unsampled Record (the common case at 1-in-N sampling) and a sampled
// ring write must both be allocation-free, so an always-on flight
// recorder preserves the data plane's zero-allocation guarantee.
func TestAllocBudgetRecorder(t *testing.T) {
	off := NewFlightRecorder(Options{FlowSample: 64, RingSize: 1 << 10})
	unsampled := &pkt.Packet{ID: 1, Flow: 1, Tenant: 1}
	if a := testing.AllocsPerRun(1000, func() {
		off.Record(0, KindEnqueue, "leaf0", unsampled)
	}); a != 0 {
		t.Fatalf("sampling-off Record allocates %.1f objects/op, budget is 0", a)
	}
	sampled := &pkt.Packet{ID: 2, Flow: 64, Tenant: 1}
	if a := testing.AllocsPerRun(1000, func() {
		off.Record(0, KindEnqueue, "leaf0", sampled)
		off.RecordDrop(0, "leaf0", sampled, "overflow")
		off.RecordTransform(0, "leaf0", sampled, 7)
	}); a != 0 {
		t.Fatalf("ring Record allocates %.1f objects/op, budget is 0", a)
	}
	var nilRec *Recorder
	if a := testing.AllocsPerRun(1000, func() {
		nilRec.Record(0, KindEnqueue, "leaf0", sampled)
	}); a != 0 {
		t.Fatalf("nil recorder allocates %.1f objects/op", a)
	}
}

// BenchmarkTraceOff is the cost a flight recorder adds to packets whose
// flow is not sampled: one modulo and a return.
func BenchmarkTraceOff(b *testing.B) {
	r := NewFlightRecorder(Options{FlowSample: 64})
	p := &pkt.Packet{ID: 1, Flow: 1, Tenant: 1, Rank: 10, Size: 1500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(0, KindEnqueue, "leaf0", p)
	}
}

// BenchmarkTraceSampled is the cost of recording a sampled packet into
// the ring (lock, value copy, cursor bump — no encoding, no allocation).
func BenchmarkTraceSampled(b *testing.B) {
	r := NewFlightRecorder(Options{FlowSample: 64, RingSize: 1 << 16})
	p := &pkt.Packet{ID: 1, Flow: 64, Tenant: 1, Rank: 10, Size: 1500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(0, KindEnqueue, "leaf0", p)
	}
}
