package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"qvisor/internal/pkt"
)

func TestRecorderWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, Options{})
	p := &pkt.Packet{ID: 1, Flow: 2, Tenant: 3, Rank: 4, Size: 100, Src: 0, Dst: 5, Kind: pkt.Data}
	r.Record(1000, "emit", "host0", p)
	r.Record(2000, "deliver", "host5", p)
	if r.Count() != 2 {
		t.Fatalf("count = %d", r.Count())
	}
	sc := bufio.NewScanner(&buf)
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSON line: %v", err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("lines = %d", len(events))
	}
	if events[0].Kind != "emit" || events[0].TimeNs != 1000 || events[0].Where != "host0" {
		t.Fatalf("first event: %+v", events[0])
	}
	if events[1].Kind != "deliver" || events[1].Flow != 2 || events[1].PktKind != "data" {
		t.Fatalf("second event: %+v", events[1])
	}
}

func TestFlowSampling(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, Options{FlowSample: 4})
	for flow := uint64(0); flow < 16; flow++ {
		r.Record(0, "emit", "", &pkt.Packet{Flow: flow})
	}
	if r.Count() != 4 { // flows 0, 4, 8, 12
		t.Fatalf("sampled count = %d, want 4", r.Count())
	}
}

func TestKindFilter(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, Options{Kinds: []string{"drop"}})
	p := &pkt.Packet{Flow: 1}
	r.Record(0, "emit", "", p)
	r.Record(0, "drop", "leaf0", p)
	if r.Count() != 1 {
		t.Fatalf("filtered count = %d, want 1", r.Count())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, "emit", "", &pkt.Packet{}) // must not panic
}

func TestAnalyze(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, Options{})
	// Tenant 1: two delivered packets (latency 100 and 300), one dropped.
	r.Record(0, "emit", "host0", &pkt.Packet{ID: 1, Tenant: 1})
	r.Record(100, "deliver", "host1", &pkt.Packet{ID: 1, Tenant: 1})
	r.Record(0, "emit", "host0", &pkt.Packet{ID: 2, Tenant: 1})
	r.Record(300, "deliver", "host1", &pkt.Packet{ID: 2, Tenant: 1})
	r.Record(50, "emit", "host0", &pkt.Packet{ID: 3, Tenant: 1})
	r.Record(60, "drop", "leaf0", &pkt.Packet{ID: 3, Tenant: 1})
	// Tenant 2: one still in flight at trace end.
	r.Record(10, "emit", "host2", &pkt.Packet{ID: 4, Tenant: 2})

	an, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if an.Events != 7 {
		t.Fatalf("events = %d", an.Events)
	}
	if len(an.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(an.Tenants))
	}
	t1 := an.Tenants[0]
	if t1.Tenant != 1 || t1.Delivered != 2 || t1.Dropped != 1 || t1.Lost != 0 {
		t.Fatalf("tenant 1: %+v", t1)
	}
	if t1.Mean != 200 || t1.P50 != 300 || t1.P99 != 300 {
		t.Fatalf("tenant 1 latency: %+v", t1)
	}
	t2 := an.Tenants[1]
	if t2.Tenant != 2 || t2.Lost != 1 || t2.Delivered != 0 {
		t.Fatalf("tenant 2: %+v", t2)
	}
	var rep bytes.Buffer
	an.WriteReport(&rep)
	if rep.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestAnalyzeMalformed(t *testing.T) {
	if _, err := Analyze(bytes.NewBufferString("{bad json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	// Empty input is fine.
	an, err := Analyze(bytes.NewBufferString(""))
	if err != nil || an.Events != 0 {
		t.Fatalf("empty trace: %v %+v", err, an)
	}
}
