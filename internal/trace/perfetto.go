package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto export: renders a recorded trace in the Chrome trace-event
// JSON format, loadable in ui.perfetto.dev (or chrome://tracing).
//
// Mapping: each tenant is a "process" (pid) and each flow a "thread"
// (tid) within it, so the UI groups spans by tenant and lines flows up
// on their own tracks. Queueing and transmission are complete ("X")
// duration events named after the port; emit, transform, deliver, and
// drop are instant ("i") events. Drop instants carry the cause and
// transform instants the pre/post rank in their args. Timestamps are
// microseconds (the format's unit); durations keep nanosecond precision
// as fractional microseconds.

// perfettoEvent is one Chrome trace-event object.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WritePerfetto renders events (in record order) as Chrome trace-event
// JSON. Spans whose opening event fell outside the trace (a wrapped
// ring) are rendered as instants only.
func WritePerfetto(w io.Writer, events []Event) error {
	type openSpan struct {
		at    int64
		where string
	}
	type pktState struct {
		enq *openSpan // enqueue awaiting dequeue
		tx  *openSpan // dequeue awaiting arrive/deliver
	}
	state := make(map[uint64]*pktState)
	st := func(id uint64) *pktState {
		s, ok := state[id]
		if !ok {
			s = &pktState{}
			state[id] = s
		}
		return s
	}

	var out []perfettoEvent
	seenPid := make(map[uint64]bool)
	seenTid := make(map[[2]uint64]bool)
	meta := func(e *Event) {
		pid, tid := uint64(e.Tenant), e.Flow
		if !seenPid[pid] {
			seenPid[pid] = true
			out = append(out, perfettoEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": fmt.Sprintf("tenant %d", e.Tenant)},
			})
		}
		k := [2]uint64{pid, tid}
		if !seenTid[k] {
			seenTid[k] = true
			out = append(out, perfettoEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("flow %d", e.Flow)},
			})
		}
	}
	instant := func(e *Event, name string, args map[string]any) {
		out = append(out, perfettoEvent{
			Name: name, Cat: "packet", Ph: "i", Ts: us(e.TimeNs),
			Pid: uint64(e.Tenant), Tid: e.Flow, S: "t", Args: args,
		})
	}
	span := func(e *Event, cat string, open *openSpan) {
		d := us(e.TimeNs - open.at)
		out = append(out, perfettoEvent{
			Name: cat + " " + open.where, Cat: cat, Ph: "X",
			Ts: us(open.at), Dur: &d,
			Pid: uint64(e.Tenant), Tid: e.Flow,
			Args: map[string]any{"pkt": e.ID},
		})
	}

	for i := range events {
		e := &events[i]
		meta(e)
		switch e.Kind {
		case KindEmit:
			instant(e, "emit "+e.Where, map[string]any{
				"pkt": e.ID, "rank": e.Rank, "size": e.Size, "pkt_kind": e.PktKind,
			})
		case KindArrive:
			s := st(e.ID)
			if s.tx != nil {
				span(e, "tx", s.tx)
				s.tx = nil
			}
		case KindTransform:
			instant(e, "transform "+e.Where, map[string]any{
				"pkt": e.ID, "pre_rank": e.PreRank, "rank": e.Rank,
			})
		case KindEnqueue:
			st(e.ID).enq = &openSpan{at: e.TimeNs, where: e.Where}
		case KindDequeue:
			s := st(e.ID)
			if s.enq != nil {
				span(e, "queue", s.enq)
				s.enq = nil
			}
			s.tx = &openSpan{at: e.TimeNs, where: e.Where}
		case KindDeliver:
			s := st(e.ID)
			if s.tx != nil {
				span(e, "tx", s.tx)
			}
			delete(state, e.ID)
			instant(e, "deliver "+e.Where, map[string]any{"pkt": e.ID})
		case KindDrop:
			delete(state, e.ID)
			instant(e, "drop "+e.Where, map[string]any{"pkt": e.ID, "cause": e.Cause})
		}
	}
	// Stable output: metadata first, then events by (ts, pid, tid, name).
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		if out[i].Pid != out[j].Pid {
			return out[i].Pid < out[j].Pid
		}
		return out[i].Tid < out[j].Tid
	})

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range out {
		b, err := json.Marshal(&out[i])
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
