package trace

import (
	"math/rand"
	"testing"
)

func TestRankMultisetBasics(t *testing.T) {
	m := NewRankMultiset()
	if _, ok := m.Min(); ok || m.Len() != 0 {
		t.Fatal("empty multiset reports a minimum")
	}
	m.Add(5)
	m.Add(3)
	m.Add(3)
	m.Add(9)
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	if min, ok := m.Min(); !ok || min != 3 {
		t.Fatalf("Min = %d,%v, want 3,true", min, ok)
	}
	// Removing one of two occurrences keeps the minimum.
	m.Remove(3)
	if min, ok := m.Min(); !ok || min != 3 {
		t.Fatalf("Min after partial remove = %d,%v, want 3,true", min, ok)
	}
	// Removing the last occurrence forces the dirty-rebuild path.
	m.Remove(3)
	if min, ok := m.Min(); !ok || min != 5 {
		t.Fatalf("Min after full remove = %d,%v, want 5,true", min, ok)
	}
	// Removing an absent rank is a no-op.
	m.Remove(42)
	if m.Len() != 2 {
		t.Fatalf("Len = %d after no-op remove, want 2", m.Len())
	}
	m.Remove(5)
	m.Remove(9)
	if _, ok := m.Min(); ok || m.Len() != 0 {
		t.Fatal("drained multiset reports a minimum")
	}
	// A new minimum arriving after a drain must register.
	m.Add(7)
	if min, ok := m.Min(); !ok || min != 7 {
		t.Fatalf("Min after refill = %d,%v, want 7,true", min, ok)
	}
}

// TestRankMultisetAgainstNaive cross-checks the cached-minimum
// implementation against a brute-force model under random churn.
func TestRankMultisetAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewRankMultiset()
	naive := make(map[int64]int)
	naiveMin := func() (int64, bool) {
		first := true
		var min int64
		for r, c := range naive {
			if c > 0 && (first || r < min) {
				min, first = r, false
			}
		}
		return min, !first
	}
	for step := 0; step < 5000; step++ {
		r := int64(rng.Intn(50))
		if rng.Intn(2) == 0 {
			m.Add(r)
			naive[r]++
		} else {
			m.Remove(r)
			if naive[r] > 0 {
				naive[r]--
				if naive[r] == 0 {
					delete(naive, r)
				}
			}
		}
		wantMin, wantOK := naiveMin()
		gotMin, gotOK := m.Min()
		if gotOK != wantOK || (wantOK && gotMin != wantMin) {
			t.Fatalf("step %d: Min = %d,%v, want %d,%v", step, gotMin, gotOK, wantMin, wantOK)
		}
		wantLen := 0
		for _, c := range naive {
			wantLen += c
		}
		if m.Len() != wantLen {
			t.Fatalf("step %d: Len = %d, want %d", step, m.Len(), wantLen)
		}
	}
}

func TestInversionCounter(t *testing.T) {
	c := NewInversionCounter()
	// Ideal PIFO order: no inversions.
	for _, r := range []int64{5, 3, 9} {
		c.OnEnqueue(r)
	}
	if c.Queued() != 3 {
		t.Fatalf("Queued = %d, want 3", c.Queued())
	}
	for _, r := range []int64{3, 5, 9} {
		if c.OnDequeue(r) {
			t.Fatalf("sorted dequeue of %d flagged as inversion", r)
		}
	}
	if c.Inversions != 0 || c.Dequeues != 3 || c.Rate() != 0 {
		t.Fatalf("clean run miscounted: %+v", c)
	}

	// FIFO order over descending ranks: every dequeue but the last
	// inverts, and the magnitude tracks the worst gap.
	c = NewInversionCounter()
	for _, r := range []int64{30, 20, 10} {
		c.OnEnqueue(r)
	}
	if !c.OnDequeue(30) {
		t.Fatal("dequeue of 30 with 10 queued not an inversion")
	}
	if !c.OnDequeue(20) {
		t.Fatal("dequeue of 20 with 10 queued not an inversion")
	}
	if c.OnDequeue(10) {
		t.Fatal("final dequeue flagged as inversion")
	}
	if c.Inversions != 2 || c.Dequeues != 3 {
		t.Fatalf("Inversions=%d Dequeues=%d, want 2,3", c.Inversions, c.Dequeues)
	}
	if c.MaxMagnitude != 20 {
		t.Fatalf("MaxMagnitude = %d, want 20 (30 dequeued while 10 queued)", c.MaxMagnitude)
	}
	if got, want := c.Rate(), 2.0/3.0; got != want {
		t.Fatalf("Rate = %v, want %v", got, want)
	}

	// Rate on a fresh counter is 0, not NaN.
	if NewInversionCounter().Rate() != 0 {
		t.Fatal("empty counter rate not 0")
	}
}
