package trace

// Rank-order (inversion) analysis shared by the experiment harness
// (internal/experiments) and the conformance subsystem (internal/conform).
//
// A dequeue is an *inversion* — "unpifoness" in the SP-PIFO paper's
// terminology — when the scheduler serves a packet while a packet with a
// strictly lower rank is still queued. An ideal PIFO scores zero by
// construction; the approximations of §3.4 (SP-PIFO, calendar queues,
// AIFO) trade inversions for hardware simplicity, so counting them against
// a min-rank oracle is the natural conformance metric (cf. Universal
// Packet Scheduling's "replay and count deviations").

// RankMultiset tracks a multiset of queued ranks with cheap Min queries.
// Add/Remove are O(1); Min is O(1) amortized (the cached minimum is only
// rebuilt after the current minimum was removed). The zero value is not
// ready for use; call NewRankMultiset.
type RankMultiset struct {
	counts map[int64]int
	size   int
	minVal int64
	dirty  bool
}

// NewRankMultiset returns an empty multiset.
func NewRankMultiset() *RankMultiset {
	return &RankMultiset{counts: make(map[int64]int)}
}

// Add inserts one occurrence of rank r.
func (m *RankMultiset) Add(r int64) {
	m.counts[r]++
	m.size++
	if !m.dirty && (len(m.counts) == 1 || r < m.minVal) {
		m.minVal = r
	}
}

// Remove deletes one occurrence of rank r. Removing a rank that is not
// present is a no-op.
func (m *RankMultiset) Remove(r int64) {
	c, ok := m.counts[r]
	if !ok {
		return
	}
	m.size--
	if c <= 1 {
		delete(m.counts, r)
		if r == m.minVal {
			m.dirty = true
		}
	} else {
		m.counts[r] = c - 1
	}
}

// Len returns the number of ranks in the multiset.
func (m *RankMultiset) Len() int { return m.size }

// Min returns the smallest rank present, or false when empty.
func (m *RankMultiset) Min() (int64, bool) {
	if len(m.counts) == 0 {
		return 0, false
	}
	if m.dirty {
		first := true
		for r := range m.counts {
			if first || r < m.minVal {
				m.minVal = r
				first = false
			}
		}
		m.dirty = false
	}
	return m.minVal, true
}

// InversionCounter replays a scheduler's enqueue/dequeue stream and counts
// rank inversions against the min-rank oracle over the still-queued ranks.
type InversionCounter struct {
	queued *RankMultiset
	// Dequeues counts observed dequeues.
	Dequeues int
	// Inversions counts dequeues that violated global rank order.
	Inversions int
	// MaxMagnitude is the largest observed inversion magnitude
	// (dequeued rank minus the minimum queued rank).
	MaxMagnitude int64
}

// NewInversionCounter returns a counter with an empty queue model.
func NewInversionCounter() *InversionCounter {
	return &InversionCounter{queued: NewRankMultiset()}
}

// OnEnqueue records that a packet of the given rank was accepted.
func (c *InversionCounter) OnEnqueue(rank int64) { c.queued.Add(rank) }

// OnDequeue records a dequeue and returns true when it was an inversion:
// a strictly lower rank was still queued. The dequeued rank is removed
// from the queue model.
func (c *InversionCounter) OnDequeue(rank int64) bool {
	c.Dequeues++
	inv := false
	if min, ok := c.queued.Min(); ok && rank > min {
		inv = true
		c.Inversions++
		if mag := rank - min; mag > c.MaxMagnitude {
			c.MaxMagnitude = mag
		}
	}
	c.queued.Remove(rank)
	return inv
}

// Queued returns the number of ranks currently in the queue model.
func (c *InversionCounter) Queued() int { return c.queued.Len() }

// Rate returns Inversions / Dequeues (0 when nothing was dequeued).
func (c *InversionCounter) Rate() float64 {
	if c.Dequeues == 0 {
		return 0
	}
	return float64(c.Inversions) / float64(c.Dequeues)
}
