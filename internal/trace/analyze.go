package trace

import (
	"fmt"
	"io"
	"sort"

	"qvisor/internal/sim"
)

// TenantLatency summarizes one tenant's end-to-end packet latency from a
// recorded trace: emit→deliver matched by packet ID.
type TenantLatency struct {
	// Tenant is the tenant label.
	Tenant uint16
	// Delivered counts matched emit/deliver pairs.
	Delivered int
	// Dropped counts emitted packets with a recorded drop.
	Dropped int
	// Lost counts emitted packets with neither delivery nor drop (still
	// in flight when the trace ended).
	Lost int
	// Causes breaks Dropped down by recorded drop cause; Lost packets
	// appear under CauseInFlight. Drops without a recorded cause (traces
	// from before causes existed) count under "unknown".
	Causes map[string]int
	// Mean, P50, P99 are one-way latency statistics.
	Mean, P50, P99 sim.Time
}

// Analysis is the result of replaying a trace.
type Analysis struct {
	// Events counts trace lines consumed.
	Events int
	// Tenants holds per-tenant summaries, sorted by tenant label.
	Tenants []TenantLatency
}

// Analyze reads a JSON-lines trace and computes per-tenant latency
// statistics. Unknown event kinds are ignored; malformed lines are an
// error.
func Analyze(r io.Reader) (*Analysis, error) {
	events, err := ReadEvents(r)
	if err != nil {
		return nil, err
	}
	return AnalyzeEvents(events), nil
}

// AnalyzeEvents computes per-tenant latency statistics from an in-memory
// event list (a ring snapshot or a parsed JSONL trace). Unknown event
// kinds are ignored.
func AnalyzeEvents(events []Event) *Analysis {
	type pending struct {
		tenant uint16
		at     int64
	}
	emits := make(map[uint64]pending)
	type acc struct {
		lat     []sim.Time
		dropped int
		causes  map[string]int
	}
	tenants := make(map[uint16]*acc)
	get := func(t uint16) *acc {
		a, ok := tenants[t]
		if !ok {
			a = &acc{causes: make(map[string]int)}
			tenants[t] = a
		}
		return a
	}

	an := &Analysis{}
	for _, e := range events {
		an.Events++
		switch e.Kind {
		case KindEmit:
			emits[e.ID] = pending{tenant: e.Tenant, at: e.TimeNs}
		case KindDeliver:
			if p, ok := emits[e.ID]; ok {
				get(p.tenant).lat = append(get(p.tenant).lat, sim.Time(e.TimeNs-p.at))
				delete(emits, e.ID)
			}
		case KindDrop:
			if p, ok := emits[e.ID]; ok {
				a := get(p.tenant)
				a.dropped++
				cause := e.Cause
				if cause == "" {
					cause = "unknown"
				}
				a.causes[cause]++
				delete(emits, e.ID)
			}
		}
	}
	// In-flight at trace end.
	lost := make(map[uint16]int)
	for _, p := range emits {
		lost[p.tenant]++
	}

	ids := make([]uint16, 0, len(tenants))
	for t := range tenants {
		ids = append(ids, t)
	}
	for t := range lost {
		if _, ok := tenants[t]; !ok {
			ids = append(ids, t)
			tenants[t] = &acc{causes: make(map[string]int)}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, t := range ids {
		a := tenants[t]
		if n := lost[t]; n > 0 {
			a.causes[CauseInFlight] = n
		}
		tl := TenantLatency{
			Tenant:    t,
			Delivered: len(a.lat),
			Dropped:   a.dropped,
			Lost:      lost[t],
			Causes:    a.causes,
		}
		if len(a.lat) > 0 {
			sort.Slice(a.lat, func(i, j int) bool { return a.lat[i] < a.lat[j] })
			var sum float64
			for _, l := range a.lat {
				sum += float64(l)
			}
			tl.Mean = sim.Time(sum / float64(len(a.lat)))
			tl.P50 = a.lat[len(a.lat)/2]
			tl.P99 = a.lat[(len(a.lat)*99)/100]
		}
		an.Tenants = append(an.Tenants, tl)
	}
	return an
}

// WriteReport renders the analysis as a table, followed by a per-tenant
// drop-cause breakdown when any packet was lost.
func (an *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "%d events\n", an.Events)
	fmt.Fprintf(w, "tenant  delivered  dropped  lost   mean         p50          p99\n")
	anyDrops := false
	for _, t := range an.Tenants {
		fmt.Fprintf(w, "%-7d %-10d %-8d %-6d %-12v %-12v %-12v\n",
			t.Tenant, t.Delivered, t.Dropped, t.Lost, t.Mean, t.P50, t.P99)
		if len(t.Causes) > 0 {
			anyDrops = true
		}
	}
	if !anyDrops {
		return
	}
	fmt.Fprintf(w, "\ndrop causes:\n")
	fmt.Fprintf(w, "tenant  cause            count\n")
	for _, t := range an.Tenants {
		causes := make([]string, 0, len(t.Causes))
		for c := range t.Causes {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		for _, c := range causes {
			fmt.Fprintf(w, "%-7d %-16s %d\n", t.Tenant, c, t.Causes[c])
		}
	}
}
