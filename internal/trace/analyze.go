package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"qvisor/internal/sim"
)

// TenantLatency summarizes one tenant's end-to-end packet latency from a
// recorded trace: emit→deliver matched by packet ID.
type TenantLatency struct {
	// Tenant is the tenant label.
	Tenant uint16
	// Delivered counts matched emit/deliver pairs.
	Delivered int
	// Dropped counts emitted packets with a recorded drop.
	Dropped int
	// Lost counts emitted packets with neither delivery nor drop (still
	// in flight when the trace ended).
	Lost int
	// Mean, P50, P99 are one-way latency statistics.
	Mean, P50, P99 sim.Time
}

// Analysis is the result of replaying a trace.
type Analysis struct {
	// Events counts trace lines consumed.
	Events int
	// Tenants holds per-tenant summaries, sorted by tenant label.
	Tenants []TenantLatency
}

// Analyze reads a JSON-lines trace and computes per-tenant latency
// statistics. Unknown event kinds are ignored; malformed lines are an
// error.
func Analyze(r io.Reader) (*Analysis, error) {
	type pending struct {
		tenant uint16
		at     int64
	}
	emits := make(map[uint64]pending)
	type acc struct {
		lat     []sim.Time
		dropped int
	}
	tenants := make(map[uint16]*acc)
	get := func(t uint16) *acc {
		a, ok := tenants[t]
		if !ok {
			a = &acc{}
			tenants[t] = a
		}
		return a
	}

	an := &Analysis{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", an.Events+1, err)
		}
		an.Events++
		switch e.Kind {
		case "emit":
			emits[e.ID] = pending{tenant: e.Tenant, at: e.TimeNs}
		case "deliver":
			if p, ok := emits[e.ID]; ok {
				get(p.tenant).lat = append(get(p.tenant).lat, sim.Time(e.TimeNs-p.at))
				delete(emits, e.ID)
			}
		case "drop":
			if p, ok := emits[e.ID]; ok {
				get(p.tenant).dropped++
				delete(emits, e.ID)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// In-flight at trace end.
	lost := make(map[uint16]int)
	for _, p := range emits {
		lost[p.tenant]++
	}

	ids := make([]uint16, 0, len(tenants))
	for t := range tenants {
		ids = append(ids, t)
	}
	for t := range lost {
		if _, ok := tenants[t]; !ok {
			ids = append(ids, t)
			tenants[t] = &acc{}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, t := range ids {
		a := tenants[t]
		tl := TenantLatency{
			Tenant:    t,
			Delivered: len(a.lat),
			Dropped:   a.dropped,
			Lost:      lost[t],
		}
		if len(a.lat) > 0 {
			sort.Slice(a.lat, func(i, j int) bool { return a.lat[i] < a.lat[j] })
			var sum float64
			for _, l := range a.lat {
				sum += float64(l)
			}
			tl.Mean = sim.Time(sum / float64(len(a.lat)))
			tl.P50 = a.lat[len(a.lat)/2]
			tl.P99 = a.lat[(len(a.lat)*99)/100]
		}
		an.Tenants = append(an.Tenants, tl)
	}
	return an, nil
}

// WriteReport renders the analysis as a table.
func (an *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "%d events\n", an.Events)
	fmt.Fprintf(w, "tenant  delivered  dropped  lost   mean         p50          p99\n")
	for _, t := range an.Tenants {
		fmt.Fprintf(w, "%-7d %-10d %-8d %-6d %-12v %-12v %-12v\n",
			t.Tenant, t.Delivered, t.Dropped, t.Lost, t.Mean, t.P50, t.P99)
	}
}
