package trace

import (
	"fmt"
	"testing"

	"qvisor/internal/pkt"
)

// TestRecordFilterComposition pins the record-time filter semantics when
// all three filters run together: an event is recorded iff it passes the
// flow sample AND the tenant list AND the kind list. One filter must
// never mask another's decision, and the flow sample must stay
// flow-consistent (all-or-nothing per flow) within the composition.
func TestRecordFilterComposition(t *testing.T) {
	rec := NewFlightRecorder(Options{
		FlowSample: 2,
		Tenants:    []pkt.TenantID{1},
		Kinds:      []string{KindEnqueue, KindDrop},
	})
	type stim struct {
		flow   uint64
		tenant pkt.TenantID
		kind   string
	}
	var want []stim
	id := uint64(0)
	for _, flow := range []uint64{0, 1, 2, 3} {
		for _, tenant := range []pkt.TenantID{1, 2} {
			for _, kind := range []string{KindEnqueue, KindDequeue, KindDrop} {
				id++
				p := &pkt.Packet{ID: id, Flow: flow, Tenant: tenant, Rank: 5, Size: 100}
				if kind == KindDrop {
					rec.RecordDrop(10, "port", p, "overflow")
				} else {
					rec.Record(10, kind, "port", p)
				}
				if flow%2 == 0 && tenant == 1 && kind != KindDequeue {
					want = append(want, stim{flow, tenant, kind})
				}
			}
		}
	}
	events, _ := rec.Snapshot(AllEvents)
	if len(events) != len(want) {
		t.Fatalf("recorded %d events, want %d (sample∩tenant∩kind)", len(events), len(want))
	}
	for i, e := range events {
		w := want[i]
		if e.Flow != w.flow || pkt.TenantID(e.Tenant) != w.tenant || e.Kind != w.kind {
			t.Errorf("event %d = flow %d/tenant %d/%s, want flow %d/tenant %d/%s",
				i, e.Flow, e.Tenant, e.Kind, w.flow, w.tenant, w.kind)
		}
	}
	// Flow consistency within the composition: every surviving flow kept
	// ALL its matching events — no flow appears partially.
	perFlow := map[uint64]int{}
	for _, e := range events {
		perFlow[e.Flow]++
	}
	for flow, n := range perFlow {
		if n != 2 { // enqueue + drop for tenant 1
			t.Errorf("flow %d kept %d events, want 2 — sampling not flow-consistent", flow, n)
		}
	}
}

// TestRecordFilterCompositionTransform: RecordTransform and RecordDrop
// apply the same composed predicate as Record — the specialized entry
// points must not bypass any filter.
func TestRecordFilterCompositionTransform(t *testing.T) {
	rec := NewFlightRecorder(Options{
		FlowSample: 4,
		Tenants:    []pkt.TenantID{7},
		Kinds:      []string{KindTransform},
	})
	cases := []struct {
		flow   uint64
		tenant pkt.TenantID
		keep   bool
	}{
		{0, 7, true},  // sampled flow, listed tenant
		{4, 7, true},  // sampled flow, listed tenant
		{1, 7, false}, // unsampled flow
		{0, 8, false}, // unlisted tenant
		{3, 9, false}, // neither
	}
	for i, c := range cases {
		p := &pkt.Packet{ID: uint64(i + 1), Flow: c.flow, Tenant: c.tenant, Rank: 20}
		rec.RecordTransform(5, "preproc", p, 40)
		rec.RecordDrop(5, "port", p, "overflow") // KindDrop unlisted: never kept
		rec.Record(5, KindEnqueue, "port", p)    // KindEnqueue unlisted: never kept
	}
	events, _ := rec.Snapshot(AllEvents)
	var kept int
	for _, c := range cases {
		if c.keep {
			kept++
		}
	}
	if len(events) != kept {
		t.Fatalf("recorded %d events, want %d", len(events), kept)
	}
	for _, e := range events {
		if e.Kind != KindTransform || pkt.TenantID(e.Tenant) != 7 || e.Flow%4 != 0 {
			t.Errorf("event leaked through composed filters: %+v", e)
		}
		if e.PreRank != 40 {
			t.Errorf("transform event lost PreRank: %+v", e)
		}
	}
}

// TestRecordFilterCompositionAgainstModel cross-checks the composed
// record-time filters against an oracle predicate over a pseudo-random
// stimulus stream, for several filter configurations.
func TestRecordFilterCompositionAgainstModel(t *testing.T) {
	configs := []Options{
		{FlowSample: 3},
		{Tenants: []pkt.TenantID{2, 5}},
		{Kinds: []string{KindDequeue}},
		{FlowSample: 3, Tenants: []pkt.TenantID{2, 5}},
		{FlowSample: 5, Kinds: []string{KindEnqueue, KindDeliver}},
		{FlowSample: 2, Tenants: []pkt.TenantID{2}, Kinds: []string{KindDrop}},
	}
	kinds := []string{KindEnqueue, KindDequeue, KindDeliver, KindDrop}
	for ci, opts := range configs {
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			rec := NewFlightRecorder(opts)
			oracle := func(flow uint64, tenant pkt.TenantID, kind string) bool {
				if s := opts.FlowSample; s > 1 && flow%s != 0 {
					return false
				}
				if opts.Tenants != nil {
					ok := false
					for _, want := range opts.Tenants {
						if tenant == want {
							ok = true
						}
					}
					if !ok {
						return false
					}
				}
				if opts.Kinds != nil {
					ok := false
					for _, want := range opts.Kinds {
						if kind == want {
							ok = true
						}
					}
					if !ok {
						return false
					}
				}
				return true
			}
			want := 0
			// Deterministic pseudo-random stimulus (LCG, seeded per config).
			state := uint64(ci)*2654435761 + 12345
			next := func(n uint64) uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return (state >> 33) % n
			}
			for i := 0; i < 500; i++ {
				flow := next(10)
				tenant := pkt.TenantID(next(6))
				kind := kinds[next(uint64(len(kinds)))]
				p := &pkt.Packet{ID: uint64(i + 1), Flow: flow, Tenant: tenant, Rank: 1}
				if kind == KindDrop {
					rec.RecordDrop(1, "x", p, "overflow")
				} else {
					rec.Record(1, kind, "x", p)
				}
				if oracle(flow, tenant, kind) {
					want++
				}
			}
			if got := int(rec.Count()); got != want {
				t.Fatalf("recorded %d events, oracle says %d", got, want)
			}
		})
	}
}
