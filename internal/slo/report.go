package slo

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteReport renders a snapshot as the human-readable report printed by
// `qvisorctl slo` and the CLIs' -slo flags.
func WriteReport(out io.Writer, s Snapshot) error {
	var b strings.Builder
	fmt.Fprintf(&b, "fidelity watchdog: %s (rev %d, 1-in-%d sampling, t=%dns)\n",
		strings.ToUpper(string(s.State)), s.Revision, s.SampleN, s.NowNs)

	g := s.Global
	fmt.Fprintf(&b, "  sampled: %d enq / %d deq / %d drop / %d delivered\n",
		g.SampledEnqueues, g.SampledDequeues, g.SampledDrops, g.SampledDelivered)
	fmt.Fprintf(&b, "  inversions: %d (%.2f per 10k deq), displacement p50=%.0f p99=%.0f max=%d\n",
		g.Inversions, g.InversionsPer10k, g.DisplacementP50, g.DisplacementP99, g.MaxDisplacement)
	fmt.Fprintf(&b, "  drop divergence: %d (%.2f per 10k drops), slow dequeues: %d\n",
		g.DropDiverged, g.DropDivergedPer10k, g.SlowDequeues)

	if len(s.Health) > 0 {
		fmt.Fprintf(&b, "  %-16s %-5s %8s %11s %11s\n",
			"slo", "state", "budget", "burn(short)", "burn(long)")
		for _, h := range s.Health {
			fmt.Fprintf(&b, "  %-16s %-5s %8.4f %11.2f %11.2f\n",
				h.Name, h.State, h.Budget, h.BurnShort, h.BurnLong)
		}
	}

	for _, t := range s.Tenants {
		fmt.Fprintf(&b, "  tenant %-10s delay p50/p99/p999 = %.0f/%.0f/%.0f ns, share %.3f",
			t.Tenant, t.DelayP50Ns, t.DelayP99Ns, t.DelayP999Ns, t.AchievedShare)
		if t.EntitledShare > 0 {
			fmt.Fprintf(&b, " (entitled %.3f)", t.EntitledShare)
		}
		if len(t.Drops) > 0 {
			causes := make([]string, 0, len(t.Drops))
			for c := range t.Drops {
				causes = append(causes, c)
			}
			sort.Strings(causes)
			parts := make([]string, 0, len(causes))
			for _, c := range causes {
				parts = append(parts, fmt.Sprintf("%s=%d", c, t.Drops[c]))
			}
			fmt.Fprintf(&b, ", drops %s", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}

	_, err := io.WriteString(out, b.String())
	return err
}
