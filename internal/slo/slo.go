// Package slo is QVISOR's online fidelity watchdog: it turns the offline
// conformance oracles (internal/conform) into always-on telemetry an
// operator can page on.
//
// The core promise of QVISOR is that a virtualized policy running on an
// approximate backend behaves like the ideal PIFO deployment. Offline,
// that is checked by qvisor-conform batch sweeps; online, this package
// checks it continuously on a sampled mirror of live traffic:
//
//   - Shadow-oracle sampling. A flow-consistent 1-in-N sample (the same
//     flow % N == 0 predicate the flight recorder uses, so trace and SLO
//     always observe the same packets) feeds a bounded conform.RefPIFO
//     shadow per port. On every sampled dequeue the watchdog compares the
//     backend's choice against the shadow's ideal head: a strictly lower
//     shadow rank is a scheduling inversion, and the rank delta feeds a
//     log2 displacement histogram. On every sampled drop it compares
//     against the shadow's worst rank: dropping a packet while a strictly
//     worse one stays queued is drop divergence from the ideal.
//   - Per-tenant SLIs: queueing-delay quantiles (p50/p99/p999 over log2
//     buckets via obs.BucketsQuantile), drop counts by sched.DropCause,
//     and achieved throughput share vs an optional entitlement.
//   - Burn-rate health. Every SLI feeds fixed sim-time windows; health is
//     the SRE multi-window burn rate (error rate over budget) on a short
//     and a long horizon, yielding OK/WARN/PAGE per SLO.
//
// Hot-path contract: the unsampled path is one nil check and one modulo —
// zero allocations (pinned by TestAllocBudgetSimSteadyStateWatchdog in
// internal/netsim). Sampled work happens under one mutex per watchdog so
// /v1/slo snapshots can read concurrently with a live simulation.
//
// Sharding: like trace rings and pre-processor stats, the watchdog forks
// one child per shard (Shard) and merges them after the run (Absorb). All
// SLIs are defined to be independent of tie order among equal-rank and
// same-nanosecond events — strict rank inequalities, rank deltas rather
// than queue positions, and windows keyed by absolute sim-time index — so
// a sharded run reports byte-identical snapshots to a single-threaded one.
package slo

import (
	"strconv"
	"sync"

	"qvisor/internal/conform"
	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
	"qvisor/internal/sim"
)

// Defaults. One base window of simulated time stands in for one minute of
// wall clock on a production box, so the default short/long burn horizons
// (5 and 60 windows) mirror the classic 5m/1h multi-window alert.
const (
	// DefaultSampleN samples one flow in 64, matching the flight
	// recorder's default overhead envelope (≤3% end to end).
	DefaultSampleN = 64
	// DefaultWindowNs is the base SLI window: 1ms of simulated time.
	DefaultWindowNs = int64(time1ms)
	// DefaultShortWindows and DefaultLongWindows are the burn-rate
	// horizons in base windows ("5 minutes" and "1 hour" equivalents).
	DefaultShortWindows = 5
	DefaultLongWindows  = 60
	// DefaultShadowCapacityBytes bounds each per-port shadow queue. The
	// shadow holds the sampled subset of the real queue, so with the
	// default 150KB port buffers this bound is never hit; it exists to
	// keep a leak (a backend dropping packets without the drop callback)
	// from growing the shadow without limit.
	DefaultShadowCapacityBytes = 1 << 20
	// DefaultDelayBudgetNs is the per-hop queueing-delay SLO threshold.
	DefaultDelayBudgetNs = int64(time1ms)
	// DefaultWarnBurn and DefaultPageBurn are the burn-rate thresholds:
	// WARN when the error budget burns 2x faster than sustainable, PAGE
	// at 10x (both horizons must agree, the standard multi-window guard
	// against paging on a blip).
	DefaultWarnBurn = 2.0
	DefaultPageBurn = 10.0
)

const time1ms = 1_000_000 // sim ns

// Default error budgets: the budgeted fraction of sampled events that may
// be errors before the SLO burns at exactly 1x.
const (
	// DefaultInversionBudget allows 1% of sampled dequeues to be
	// inversions.
	DefaultInversionBudget = 0.01
	// DefaultDivergenceBudget allows 0.5% of sampled drops to diverge
	// from the ideal eviction choice.
	DefaultDivergenceBudget = 0.005
	// DefaultDelayBudgetFraction allows 5% of sampled dequeues to exceed
	// DelayBudgetNs.
	DefaultDelayBudgetFraction = 0.05
)

// Config parameterizes a Watchdog. The zero value is usable: every field
// falls back to the defaults above.
type Config struct {
	// SampleN enables flow-consistent 1-in-N sampling: packets with
	// Flow % SampleN == 0 are mirrored. 0 defaults to DefaultSampleN;
	// 1 samples every packet.
	SampleN uint64
	// WindowNs is the base SLI window in simulated nanoseconds.
	WindowNs int64
	// ShortWindows and LongWindows are the burn-rate horizons in base
	// windows. LongWindows is also the ring retention.
	ShortWindows, LongWindows int
	// ShadowCapacityBytes bounds each per-port shadow queue.
	ShadowCapacityBytes int
	// DelayBudgetNs is the queueing-delay SLO threshold per hop.
	DelayBudgetNs int64
	// InversionBudget, DivergenceBudget, DelayBudgetFraction are the
	// per-SLO error budgets (fractions in (0, 1]).
	InversionBudget, DivergenceBudget, DelayBudgetFraction float64
	// WarnBurn and PageBurn are the burn-rate thresholds.
	WarnBurn, PageBurn float64
	// Tenants optionally names tenant IDs for snapshots; unnamed IDs
	// render as "tenant<id>".
	Tenants map[pkt.TenantID]string
	// Entitlements optionally declares each tenant's entitled throughput
	// share (fraction of delivered bytes) for the achieved-vs-entitled
	// SLI.
	Entitlements map[pkt.TenantID]float64
	// Shard stamps which shard a child watchdog observes (set by Shard).
	Shard int
}

func (c Config) withDefaults() Config {
	if c.SampleN == 0 {
		c.SampleN = DefaultSampleN
	}
	if c.WindowNs <= 0 {
		c.WindowNs = DefaultWindowNs
	}
	if c.ShortWindows <= 0 {
		c.ShortWindows = DefaultShortWindows
	}
	if c.LongWindows <= 0 {
		c.LongWindows = DefaultLongWindows
	}
	if c.LongWindows < c.ShortWindows {
		c.LongWindows = c.ShortWindows
	}
	if c.ShadowCapacityBytes <= 0 {
		c.ShadowCapacityBytes = DefaultShadowCapacityBytes
	}
	if c.DelayBudgetNs <= 0 {
		c.DelayBudgetNs = DefaultDelayBudgetNs
	}
	if c.InversionBudget <= 0 {
		c.InversionBudget = DefaultInversionBudget
	}
	if c.DivergenceBudget <= 0 {
		c.DivergenceBudget = DefaultDivergenceBudget
	}
	if c.DelayBudgetFraction <= 0 {
		c.DelayBudgetFraction = DefaultDelayBudgetFraction
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = DefaultWarnBurn
	}
	if c.PageBurn <= 0 {
		c.PageBurn = DefaultPageBurn
	}
	return c
}

// window is one base SLI window. All fields are integer counts so shard
// merges (plain sums keyed by the absolute window index) commute.
type window struct {
	idx  int64  // absolute window index (now / WindowNs); -1 when empty
	arr  uint64 // sampled enqueues
	deq  uint64 // sampled dequeues
	inv  uint64 // inversions among them
	div  uint64 // drop divergences
	slow uint64 // dequeues over the delay budget
}

func (w *window) add(o *window) {
	w.arr += o.arr
	w.deq += o.deq
	w.inv += o.inv
	w.div += o.div
	w.slow += o.slow
}

// tenantState accumulates one tenant's SLIs. Integer counts only, for the
// same merge-commutativity reason as window.
type tenantState struct {
	delayBuckets [obs.HistogramBuckets + 1]uint64
	delaySum     int64
	delayCount   uint64
	drops        [sched.NumDropCauses]uint64
	deliveredB   uint64
	deliveredP   uint64
}

// Watchdog is the online fidelity watchdog. A nil *Watchdog is a no-op
// on every method, so call sites instrument unconditionally. Use New to
// construct one; hand ports a PortWatch each via PortWatch.
type Watchdog struct {
	cfg Config

	mu     sync.Mutex
	rev    uint64 // sampled events processed; serves as the snapshot ETag
	lastNs int64  // latest event time observed

	// Cumulative (whole-run) counters.
	sampledEnq     uint64
	sampledDeq     uint64
	sampledDrop    uint64
	sampledDeliver uint64
	inversions     uint64
	dropDiverged   uint64
	slowDeq        uint64

	// Rank displacement of inversions: p.Rank − shadow minimum, a pure
	// rank delta so it does not depend on tie order among equal ranks.
	dispBuckets [obs.HistogramBuckets + 1]uint64
	dispSum     int64
	dispCount   uint64
	maxDisp     int64

	// Rolling windows: a ring of LongWindows slots addressed by absolute
	// window index mod ring length. Slots are claimed lazily; a slot is
	// live iff slot.idx > curIdx − len(win).
	win     []window
	curIdx  int64
	scratch window // discard target for out-of-retention events

	tenants map[pkt.TenantID]*tenantState

	// ports tracks every PortWatch handed out, for shadow-occupancy
	// accounting (a drained simulation must leave every shadow empty).
	ports []*PortWatch

	// free recycles watchdog-owned packet copies for the shadow queues.
	// The shadow never retains simulator-owned *pkt.Packet pointers:
	// those are pooled and recycled the moment the simulator releases
	// them, so every mirrored packet is copied into watchdog memory.
	free []*pkt.Packet
}

// New returns a Watchdog for the given configuration.
func New(cfg Config) *Watchdog {
	cfg = cfg.withDefaults()
	w := &Watchdog{
		cfg:     cfg,
		win:     make([]window, cfg.LongWindows),
		curIdx:  -1,
		tenants: make(map[pkt.TenantID]*tenantState),
	}
	for i := range w.win {
		w.win[i].idx = -1
	}
	return w
}

// Config returns the effective (defaulted) configuration.
func (w *Watchdog) Config() Config {
	if w == nil {
		return Config{}
	}
	return w.cfg
}

// Shard forks a child watchdog for shard i, sharing the parent's
// configuration. Children observe their shard's events during a run and
// are merged back with Absorb afterwards — the same fork/merge lifecycle
// as per-shard trace recorders. A nil parent yields a nil child.
func (w *Watchdog) Shard(i int) *Watchdog {
	if w == nil {
		return nil
	}
	cfg := w.cfg
	cfg.Shard = i
	return New(cfg)
}

// Absorb merges a quiescent child watchdog into w: cumulative counters
// and histograms sum, windows merge by absolute index, revisions add.
// The merge is commutative across children, so absorb order (and the
// shard partition itself) cannot change the merged snapshot.
func (w *Watchdog) Absorb(child *Watchdog) {
	if w == nil || child == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	child.mu.Lock()
	defer child.mu.Unlock()

	if child.curIdx > w.curIdx {
		w.curIdx = child.curIdx
	}
	if child.lastNs > w.lastNs {
		w.lastNs = child.lastNs
	}
	w.rev += child.rev
	w.sampledEnq += child.sampledEnq
	w.sampledDeq += child.sampledDeq
	w.sampledDrop += child.sampledDrop
	w.sampledDeliver += child.sampledDeliver
	w.inversions += child.inversions
	w.dropDiverged += child.dropDiverged
	w.slowDeq += child.slowDeq
	for i, n := range child.dispBuckets {
		w.dispBuckets[i] += n
	}
	w.dispSum += child.dispSum
	w.dispCount += child.dispCount
	if child.maxDisp > w.maxDisp {
		w.maxDisp = child.maxDisp
	}
	for i := range child.win {
		cw := &child.win[i]
		if cw.idx < 0 {
			continue
		}
		if slot := w.slotFor(cw.idx); slot != &w.scratch {
			slot.add(cw)
		}
	}
	w.ports = append(w.ports, child.ports...)
	for id, ct := range child.tenants {
		t := w.tenant(id)
		for i, n := range ct.delayBuckets {
			t.delayBuckets[i] += n
		}
		t.delaySum += ct.delaySum
		t.delayCount += ct.delayCount
		for i, n := range ct.drops {
			t.drops[i] += n
		}
		t.deliveredB += ct.deliveredB
		t.deliveredP += ct.deliveredP
	}
}

// sampled reports whether p is in the flow-consistent mirror sample —
// the same predicate trace.Recorder applies, so the flight recorder and
// the watchdog always agree on which packets they observed.
func (w *Watchdog) sampled(p *pkt.Packet) bool {
	if s := w.cfg.SampleN; s > 1 && p.Flow%s != 0 {
		return false
	}
	return true
}

// slotFor returns the live window slot for absolute index idx, claiming
// (and resetting) the slot if a retired window occupies it. Indices that
// fell out of retention resolve to the scratch window. Callers hold mu.
func (w *Watchdog) slotFor(idx int64) *window {
	n := int64(len(w.win))
	if idx <= w.curIdx-n {
		return &w.scratch
	}
	slot := &w.win[idx%n]
	if slot.idx != idx {
		if slot.idx > idx {
			return &w.scratch
		}
		*slot = window{idx: idx}
	}
	return slot
}

// advance moves the window cursor to now and returns its slot. Callers
// hold mu.
func (w *Watchdog) advance(now sim.Time) *window {
	ns := int64(now)
	if ns > w.lastNs {
		w.lastNs = ns
	}
	idx := ns / w.cfg.WindowNs
	if idx > w.curIdx {
		w.curIdx = idx
	}
	return w.slotFor(idx)
}

// tenant returns the accumulator for id, creating it on first use.
// Callers hold mu.
func (w *Watchdog) tenant(id pkt.TenantID) *tenantState {
	t := w.tenants[id]
	if t == nil {
		t = &tenantState{}
		w.tenants[id] = t
	}
	return t
}

// getCopy returns a watchdog-owned packet to copy a sampled packet into.
// Callers hold mu.
func (w *Watchdog) getCopy() *pkt.Packet {
	if n := len(w.free); n > 0 {
		cp := w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		return cp
	}
	return &pkt.Packet{}
}

// putCopy recycles a watchdog-owned copy. Callers hold mu.
func (w *Watchdog) putCopy(cp *pkt.Packet) {
	w.free = append(w.free, cp)
}

// OnDeliver records a sampled end-to-end delivery (per-tenant achieved
// throughput). Called by the simulator when a host consumes a packet.
func (w *Watchdog) OnDeliver(now sim.Time, p *pkt.Packet) {
	if w == nil || !w.sampled(p) {
		return
	}
	w.mu.Lock()
	w.advance(now)
	t := w.tenant(p.Tenant)
	t.deliveredB += uint64(p.Size)
	t.deliveredP++
	w.sampledDeliver++
	w.rev++
	w.mu.Unlock()
}

// OnDrop records a sampled drop that happened outside any port scheduler
// (host-side admission control, for example), where no shadow queue
// exists to judge divergence: it books the tenant drop only.
func (w *Watchdog) OnDrop(now sim.Time, p *pkt.Packet, cause sched.DropCause) {
	if w == nil || !w.sampled(p) {
		return
	}
	w.mu.Lock()
	w.advance(now)
	w.bookDrop(p, cause)
	w.mu.Unlock()
}

// bookDrop shares the tenant/drop bookkeeping between watchdog-level and
// port-level drops. Callers hold mu.
func (w *Watchdog) bookDrop(p *pkt.Packet, cause sched.DropCause) {
	w.sampledDrop++
	t := w.tenant(p.Tenant)
	if int(cause) < len(t.drops) {
		t.drops[cause]++
	}
	w.rev++
}

// PortWatch mirrors one port's scheduler into a bounded shadow oracle.
// A nil *PortWatch is a no-op on every method.
type PortWatch struct {
	w      *Watchdog
	shadow *conform.RefPIFO
}

// PortWatch hands out a per-port mirror. Returns nil from a nil
// watchdog, so ports can hold and call the result unconditionally.
func (w *Watchdog) PortWatch() *PortWatch {
	if w == nil {
		return nil
	}
	pw := &PortWatch{w: w}
	w.mu.Lock()
	pw.shadow = conform.NewRefPIFO(w.cfg.ShadowCapacityBytes,
		func(p *pkt.Packet, _ sched.DropCause) {
			// Shadow-internal eviction under the byte bound: the copy
			// retires to the freelist. mu is held — shadow operations
			// only happen inside the hooks below.
			w.putCopy(p)
		})
	w.ports = append(w.ports, pw)
	w.mu.Unlock()
	return pw
}

// ShadowPackets sums the shadow-queue occupancy over every port watch —
// zero after a fully drained run, because every mirrored packet retires
// at its dequeue or drop. A persistent nonzero residue after drain means
// a backend dropped packets without its drop callback (a leak the
// bounded shadow then caps). Absorbed children count too.
func (w *Watchdog) ShadowPackets() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	t := 0
	for _, pw := range w.ports {
		t += pw.shadow.Len()
	}
	return t
}

// OnEnqueue mirrors a successfully enqueued packet into the shadow. Must
// be called only after the real scheduler accepted the packet. It also
// stamps p.EnqueuedAt (the same value instrumented schedulers write) so
// OnDequeue can measure sojourn without a lookup table.
func (pw *PortWatch) OnEnqueue(now sim.Time, p *pkt.Packet) {
	if pw == nil || !pw.w.sampled(p) {
		return
	}
	w := pw.w
	w.mu.Lock()
	p.EnqueuedAt = now
	cp := w.getCopy()
	*cp = *p
	pw.shadow.Enqueue(cp)
	win := w.advance(now)
	win.arr++
	w.sampledEnq++
	w.rev++
	w.mu.Unlock()
}

// OnDequeue judges a sampled dequeue against the shadow's ideal head: a
// strictly lower shadow rank is an inversion, and its rank displacement
// (dequeued rank minus ideal rank) feeds the displacement histogram. It
// also books the per-tenant queueing delay.
func (pw *PortWatch) OnDequeue(now sim.Time, p *pkt.Packet) {
	if pw == nil || !pw.w.sampled(p) {
		return
	}
	w := pw.w
	w.mu.Lock()
	win := w.advance(now)
	win.deq++
	w.sampledDeq++
	if min, ok := pw.shadow.MinRank(); ok && min < p.Rank {
		d := p.Rank - min
		win.inv++
		w.inversions++
		w.dispBuckets[obs.BucketIndex(d)]++
		w.dispSum += d
		w.dispCount++
		if d > w.maxDisp {
			w.maxDisp = d
		}
	}
	if cp, ok := pw.shadow.RemoveByID(p.ID); ok {
		w.putCopy(cp)
	}
	delay := int64(now - p.EnqueuedAt)
	if delay < 0 {
		delay = 0
	}
	t := w.tenant(p.Tenant)
	t.delayBuckets[obs.BucketIndex(delay)]++
	t.delaySum += delay
	t.delayCount++
	if delay > w.cfg.DelayBudgetNs {
		win.slow++
		w.slowDeq++
	}
	w.rev++
	w.mu.Unlock()
}

// OnDrop judges a sampled drop (tail drop, eviction, admission reject,
// or injected fault) against the shadow: the ideal PIFO always sheds the
// worst-ranked packet, so dropping p while a strictly worse packet stays
// queued is divergence. The shadow copy of p, if queued, retires.
func (pw *PortWatch) OnDrop(now sim.Time, p *pkt.Packet, cause sched.DropCause) {
	if pw == nil || !pw.w.sampled(p) {
		return
	}
	w := pw.w
	w.mu.Lock()
	win := w.advance(now)
	if worst, ok := pw.shadow.MaxRank(); ok && worst > p.Rank {
		win.div++
		w.dropDiverged++
	}
	if cp, ok := pw.shadow.RemoveByID(p.ID); ok {
		w.putCopy(cp)
	}
	w.bookDrop(p, cause)
	w.mu.Unlock()
}

// ShadowLen returns the current shadow queue depth (tests only).
func (pw *PortWatch) ShadowLen() int {
	if pw == nil {
		return 0
	}
	pw.w.mu.Lock()
	defer pw.w.mu.Unlock()
	return pw.shadow.Len()
}

// tenantName renders a tenant ID for snapshots.
func (w *Watchdog) tenantName(id pkt.TenantID) string {
	if name, ok := w.cfg.Tenants[id]; ok {
		return name
	}
	if id == pkt.NoTenant {
		return "untagged"
	}
	return "tenant" + strconv.Itoa(int(id))
}
