package slo

import (
	"sort"

	"qvisor/internal/obs"
	"qvisor/internal/pkt"
	"qvisor/internal/sched"
)

func bucketsQuantile(counts []uint64, q float64) float64 {
	return obs.BucketsQuantile(counts, q)
}

func tenantID(i int) pkt.TenantID { return pkt.TenantID(i) }

func dropCauseName(cause int) string { return sched.DropCause(cause).String() }

// State is a health verdict, ordered ok < warn < page.
type State string

// Health states. PAGE means both burn horizons exceed PageBurn; WARN
// means both exceed WarnBurn.
const (
	StateOK   State = "ok"
	StateWarn State = "warn"
	StatePage State = "page"
)

func (s State) rank() int {
	switch s {
	case StatePage:
		return 2
	case StateWarn:
		return 1
	default:
		return 0
	}
}

// Worse returns the worse of two states.
func (s State) Worse(o State) State {
	if o.rank() > s.rank() {
		return o
	}
	return s
}

// SLO names.
const (
	SLOInversions = "inversion_rate"
	SLODivergence = "drop_divergence"
	SLODelay      = "queueing_delay"
)

// SLOHealth is one SLO's burn-rate verdict.
type SLOHealth struct {
	// Name identifies the SLO (SLOInversions, SLODivergence, SLODelay).
	Name string `json:"name"`
	// State is the verdict for this SLO.
	State State `json:"state"`
	// Budget is the error budget: the sustainable error fraction.
	Budget float64 `json:"budget"`
	// ShortRate and LongRate are the observed error fractions over the
	// short and long horizons.
	ShortRate float64 `json:"short_rate"`
	LongRate  float64 `json:"long_rate"`
	// BurnShort and BurnLong are rate/budget: 1.0 burns the budget
	// exactly at the sustainable pace.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
}

// GlobalSLI is the deployment-wide fidelity signal.
type GlobalSLI struct {
	SampledEnqueues  uint64 `json:"sampled_enqueues"`
	SampledDequeues  uint64 `json:"sampled_dequeues"`
	SampledDrops     uint64 `json:"sampled_drops"`
	SampledDelivered uint64 `json:"sampled_delivered"`
	// Inversions counts sampled dequeues where the ideal PIFO held a
	// strictly better-ranked packet; InversionsPer10k normalizes per
	// 10k sampled dequeues.
	Inversions       uint64  `json:"inversions"`
	InversionsPer10k float64 `json:"inversions_per_10k"`
	// Rank displacement of those inversions (dequeued rank − ideal
	// rank).
	DisplacementP50 float64 `json:"rank_displacement_p50"`
	DisplacementP99 float64 `json:"rank_displacement_p99"`
	MaxDisplacement int64   `json:"rank_displacement_max"`
	// DropDiverged counts sampled drops where the ideal would have
	// evicted a strictly worse queued packet instead.
	DropDiverged       uint64  `json:"drop_diverged"`
	DropDivergedPer10k float64 `json:"drop_diverged_per_10k"`
	// SlowDequeues counts sampled dequeues over the delay budget.
	SlowDequeues uint64 `json:"slow_dequeues"`
}

// TenantSLI is one tenant's service levels.
type TenantSLI struct {
	Tenant string `json:"tenant"`
	// Queueing-delay quantiles in simulated nanoseconds (per hop).
	DelayP50Ns  float64 `json:"delay_p50_ns"`
	DelayP99Ns  float64 `json:"delay_p99_ns"`
	DelayP999Ns float64 `json:"delay_p999_ns"`
	DelayMeanNs float64 `json:"delay_mean_ns"`
	// SampledDequeues is the quantiles' sample size.
	SampledDequeues uint64 `json:"sampled_dequeues"`
	// Drops by sched.DropCause name; zero causes are omitted.
	Drops map[string]uint64 `json:"drops,omitempty"`
	// Delivered traffic and the achieved share of all delivered bytes.
	DeliveredBytes   uint64  `json:"delivered_bytes"`
	DeliveredPackets uint64  `json:"delivered_packets"`
	AchievedShare    float64 `json:"achieved_share"`
	// EntitledShare echoes Config.Entitlements (0 when undeclared).
	EntitledShare float64 `json:"entitled_share,omitempty"`
}

// Snapshot is a consistent, JSON-serializable view of the watchdog. Two
// runs that observed the same sampled events produce byte-identical
// encodings regardless of shard count — every field is derived from
// shard-merge-commutative integers.
type Snapshot struct {
	// Revision counts sampled events processed; it only grows, so it
	// doubles as the /v1/slo ETag.
	Revision uint64 `json:"revision"`
	// NowNs is the latest event time observed, WindowNs the base window.
	NowNs    int64  `json:"now_ns"`
	WindowNs int64  `json:"window_ns"`
	SampleN  uint64 `json:"sample_n"`
	// State is the worst per-SLO state.
	State   State       `json:"state"`
	Global  GlobalSLI   `json:"global"`
	Tenants []TenantSLI `json:"tenants,omitempty"`
	Health  []SLOHealth `json:"health"`
}

// sloDef wires one SLO to its window counters.
type sloDef struct {
	name   string
	budget float64
	err    func(*window) uint64
	tot    func(*window) uint64
}

func (w *Watchdog) sloDefs() []sloDef {
	return []sloDef{
		{SLOInversions, w.cfg.InversionBudget,
			func(x *window) uint64 { return x.inv },
			func(x *window) uint64 { return x.deq }},
		{SLODivergence, w.cfg.DivergenceBudget,
			func(x *window) uint64 { return x.div },
			func(x *window) uint64 { return x.arr }},
		{SLODelay, w.cfg.DelayBudgetFraction,
			func(x *window) uint64 { return x.slow },
			func(x *window) uint64 { return x.deq }},
	}
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Snapshot computes the current SLIs and burn-rate health. Safe to call
// concurrently with the hooks; a nil watchdog yields a zero snapshot.
func (w *Watchdog) Snapshot() Snapshot {
	if w == nil {
		return Snapshot{State: StateOK}
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	snap := Snapshot{
		Revision: w.rev,
		NowNs:    w.lastNs,
		WindowNs: w.cfg.WindowNs,
		SampleN:  w.cfg.SampleN,
		State:    StateOK,
		Global: GlobalSLI{
			SampledEnqueues:    w.sampledEnq,
			SampledDequeues:    w.sampledDeq,
			SampledDrops:       w.sampledDrop,
			SampledDelivered:   w.sampledDeliver,
			Inversions:         w.inversions,
			InversionsPer10k:   1e4 * ratio(w.inversions, w.sampledDeq),
			MaxDisplacement:    w.maxDisp,
			DropDiverged:       w.dropDiverged,
			DropDivergedPer10k: 1e4 * ratio(w.dropDiverged, w.sampledDrop),
			SlowDequeues:       w.slowDeq,
		},
	}
	if w.dispCount > 0 {
		snap.Global.DisplacementP50 = bucketsQuantile(w.dispBuckets[:], 0.50)
		snap.Global.DisplacementP99 = bucketsQuantile(w.dispBuckets[:], 0.99)
	}

	// Burn-rate health over the live windows. A window is live iff its
	// absolute index is within ring retention of the cursor.
	var short, long window
	n := int64(len(w.win))
	for i := range w.win {
		x := &w.win[i]
		if x.idx < 0 || x.idx <= w.curIdx-n {
			continue
		}
		long.add(x)
		if x.idx > w.curIdx-int64(w.cfg.ShortWindows) {
			short.add(x)
		}
	}
	for _, def := range w.sloDefs() {
		h := SLOHealth{Name: def.name, State: StateOK, Budget: def.budget,
			ShortRate: ratio(def.err(&short), def.tot(&short)),
			LongRate:  ratio(def.err(&long), def.tot(&long)),
		}
		h.BurnShort = h.ShortRate / def.budget
		h.BurnLong = h.LongRate / def.budget
		switch {
		case h.BurnShort >= w.cfg.PageBurn && h.BurnLong >= w.cfg.PageBurn:
			h.State = StatePage
		case h.BurnShort >= w.cfg.WarnBurn && h.BurnLong >= w.cfg.WarnBurn:
			h.State = StateWarn
		}
		snap.State = snap.State.Worse(h.State)
		snap.Health = append(snap.Health, h)
	}

	// Tenant table, sorted by tenant ID so the order is stable across
	// runs and shard counts.
	ids := make([]int, 0, len(w.tenants))
	for id := range w.tenants {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	var totalB uint64
	for _, t := range w.tenants {
		totalB += t.deliveredB
	}
	for _, idInt := range ids {
		id := tenantID(idInt)
		t := w.tenants[id]
		ts := TenantSLI{
			Tenant:           w.tenantName(id),
			SampledDequeues:  t.delayCount,
			DeliveredBytes:   t.deliveredB,
			DeliveredPackets: t.deliveredP,
			AchievedShare:    ratio(t.deliveredB, totalB),
			EntitledShare:    w.cfg.Entitlements[id],
		}
		if t.delayCount > 0 {
			ts.DelayP50Ns = bucketsQuantile(t.delayBuckets[:], 0.50)
			ts.DelayP99Ns = bucketsQuantile(t.delayBuckets[:], 0.99)
			ts.DelayP999Ns = bucketsQuantile(t.delayBuckets[:], 0.999)
			ts.DelayMeanNs = float64(t.delaySum) / float64(t.delayCount)
		}
		for cause, nDrop := range t.drops {
			if nDrop == 0 {
				continue
			}
			if ts.Drops == nil {
				ts.Drops = make(map[string]uint64, len(t.drops))
			}
			ts.Drops[dropCauseName(cause)] = nDrop
		}
		snap.Tenants = append(snap.Tenants, ts)
	}
	return snap
}

// Revision returns the current revision without computing a snapshot.
func (w *Watchdog) Revision() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rev
}
